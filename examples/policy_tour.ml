(* A tour of the operator policy language and the deployment story for
   commodity switches (§3.1, §3.4).

   We synthesize the paper's five-tenant example policy
       T1 >> T2 > T3 + T4 >> T5
   analyze its worst-case guarantees, derive a strict-priority queue
   mapping for an 8-queue switch, and show that the queue-based deployment
   preserves the strict tiers.

   Run with:  dune exec examples/policy_tour.exe *)

let () =
  let tenants =
    [
      Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:30_000 ~id:1
        ~name:"T1" ();
      Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:0 ~rank_hi:150 ~id:2
        ~name:"T2" ();
      Qvisor.Tenant.make ~algorithm:"stfq" ~rank_lo:0 ~rank_hi:4_000 ~id:3
        ~name:"T3" ();
      Qvisor.Tenant.make ~algorithm:"stfq" ~rank_lo:0 ~rank_hi:4_000
        ~weight:2.0 ~id:4 ~name:"T4" ();
      Qvisor.Tenant.make ~algorithm:"fifo+" ~rank_lo:0 ~rank_hi:1_000_000
        ~id:5 ~name:"T5" ();
    ]
  in
  let policy = Qvisor.Policy.parse_exn "T1 >> T2 > T3 + T4 >> T5" in
  let plan = Qvisor.Synthesizer.synthesize_exn ~tenants ~policy () in

  Format.printf "== Synthesized joint scheduling function ==@.%a@.@."
    Qvisor.Synthesizer.pp_plan plan;

  Format.printf "== Worst-case analysis ==@.%a@.@." Qvisor.Analysis.pp_report
    (Qvisor.Analysis.check plan);
  Format.printf "tenants starvable under worst-case pressure (a >> consequence): %s@.@."
    (String.concat ", "
       (List.map (fun t -> t.Qvisor.Tenant.name)
          (Qvisor.Analysis.starvation_risk plan)));

  (* Deployment to an 8-queue strict-priority switch. *)
  let bounds =
    match Qvisor.Deploy.queue_bounds_of_plan ~plan ~num_queues:8 with
    | Ok bounds -> bounds
    | Error e -> failwith (Qvisor.Error.to_string e)
  in
  Format.printf "== 8-queue strict-priority mapping ==@.";
  Array.iteri
    (fun i b ->
      let lo = if i = 0 then plan.Qvisor.Synthesizer.rank_lo else bounds.(i - 1) + 1 in
      Format.printf "queue %d serves transformed ranks [%d, %d]@." i lo b)
    bounds;

  (* Show the guarantee ladder across backends. *)
  Format.printf "@.== Backend guarantees ==@.";
  List.iter
    (fun backend ->
      let g =
        match Qvisor.Deploy.guarantees ~plan backend with
        | Qvisor.Deploy.Exact -> "exact rank order"
        | Qvisor.Deploy.Tiered n ->
          Printf.sprintf "strict tiers kept; <=%d queues per tier" n
        | Qvisor.Deploy.Approximate -> "statistical approximation"
      in
      Format.printf "%-55s -> %s@." (Qvisor.Deploy.describe backend) g)
    [
      Qvisor.Deploy.Ideal_pifo { capacity_pkts = 128 };
      Qvisor.Deploy.Sp_bank { num_queues = 8; queue_capacity_pkts = 64 };
      Qvisor.Deploy.Sp_pifo { num_queues = 8; queue_capacity_pkts = 64 };
      Qvisor.Deploy.Aifo { capacity_pkts = 128; window = 1024; k = 0.1 };
    ];

  (* Worst-case delay bounds from declared (sigma, rho) traffic envelopes
     on a 1 Gb/s link (network-calculus analysis). *)
  let envelopes =
    [
      (1, Qvisor.Latency.envelope ~sigma:150_000. ~rho:40e6);
      (2, Qvisor.Latency.envelope ~sigma:30_000. ~rho:12.5e6);
      (3, Qvisor.Latency.envelope ~sigma:500_000. ~rho:25e6);
      (4, Qvisor.Latency.envelope ~sigma:500_000. ~rho:25e6);
      (5, Qvisor.Latency.envelope ~sigma:2_000_000. ~rho:12.5e6);
    ]
  in
  Format.printf "@.== Worst-case delay bounds (1 Gb/s link, declared envelopes) ==@.";
  List.iter
    (fun (tenant, bound) ->
      Format.printf "%-4s %a@." tenant.Qvisor.Tenant.name Qvisor.Latency.pp_bound
        bound)
    (Qvisor.Latency.report ~plan ~envelopes ~link_rate:1e9 ());

  (* Demonstrate that the SP-bank deployment preserves the strict tiers:
     load it with low-tier traffic first, then a high-tier burst. *)
  let pre = Qvisor.Preprocessor.of_plan plan in
  let bank =
    Qvisor.Deploy.instantiate_exn ~plan
      (Qvisor.Deploy.Sp_bank { num_queues = 8; queue_capacity_pkts = 64 })
  in
  let offer tenant rank =
    let p = Sched.Packet.make ~tenant ~rank ~flow:tenant ~size:1500 () in
    Qvisor.Preprocessor.process pre p;
    ignore (bank.Sched.Qdisc.enqueue p)
  in
  List.iter (fun (t, r) -> offer t r)
    [ (5, 100); (3, 1000); (4, 1000); (2, 10); (1, 20_000); (1, 50) ];
  Format.printf "@.== SP-bank service order (T1 burst arrived last) ==@.  ";
  List.iter
    (fun (p : Sched.Packet.t) -> Format.printf "T%d " p.Sched.Packet.tenant)
    (Sched.Qdisc.drain bank);
  Format.printf "@."
