(* The paper's Fig. 2 timeline, run through the runtime controller
   (ablation A3): tenants T1 (pFabric) and T2 (EDF) are active first;
   at t1 a background tenant T3 joins with the lowest priority, and the
   controller re-synthesizes and hot-swaps the pre-processor without
   touching the data plane's scheduler.

   We send a burst through a PIFO before and after the churn and check the
   service order each time.  We also exercise `refresh`: after observing
   that T1 only uses a sliver of its declared rank range, re-synthesis
   from observations improves T1's effective resolution.

   Run with:  dune exec examples/runtime_churn.exe *)

let burst rt pifo specs =
  List.iter
    (fun (tenant, rank) ->
      let p = Sched.Packet.make ~tenant ~rank ~flow:tenant ~size:1500 () in
      Qvisor.Runtime.process rt p;
      ignore (pifo.Sched.Qdisc.enqueue p))
    specs;
  List.map (fun (p : Sched.Packet.t) -> p.Sched.Packet.tenant)
    (Sched.Qdisc.drain pifo)

let pp_order ppf order =
  List.iter (fun t -> Format.fprintf ppf "T%d " t) order

let () =
  let t1 =
    Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:30_000 ~id:1
      ~name:"T1" ()
  in
  let t2 =
    Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:0 ~rank_hi:150 ~id:2
      ~name:"T2" ()
  in
  let rt =
    Qvisor.Runtime.create_exn ~tenants:[ t1; t2 ]
      ~policy:(Qvisor.Policy.parse_exn "T1 + T2")
      ()
  in
  let pifo = Sched.Pifo_queue.create ~capacity_pkts:64 () in

  (* Before t1: T1 and T2 share. *)
  Format.printf "t < t1 — policy %a@."
    Qvisor.Policy.pp (Qvisor.Runtime.plan rt).Qvisor.Synthesizer.policy;
  let order =
    burst rt pifo [ (1, 20_000); (2, 10); (1, 50); (2, 140); (1, 9_000) ]
  in
  Format.printf "  service order: %a@.@." pp_order order;

  (* t1: the background tenant T3 arrives.  The operator extends the
     policy; the controller re-synthesizes and swaps the plan. *)
  let t3 =
    Qvisor.Tenant.make ~algorithm:"stfq" ~rank_lo:0 ~rank_hi:5_000 ~id:3
      ~name:"T3" ()
  in
  (match
     Qvisor.Runtime.add_tenant rt t3
       ~policy:(Qvisor.Policy.parse_exn "T1 + T2 >> T3") ()
   with
  | Ok () -> Format.printf "t = t1 — T3 joined; plan re-synthesized (%d swaps)@."
               (Qvisor.Runtime.resyntheses rt)
  | Error e -> failwith (Qvisor.Error.to_string e));
  let order =
    burst rt pifo
      [ (3, 100); (3, 2_000); (1, 20_000); (2, 10); (1, 50); (2, 140) ]
  in
  Format.printf "  service order: %a (T3 strictly last)@.@." pp_order order;

  (* Observation-driven refresh: T1's traffic actually only spans ranks
     0..100 (all-small-flows phase).  `refresh` adopts observed ranges. *)
  List.iter
    (fun rank ->
      Qvisor.Runtime.process rt
        (Sched.Packet.make ~tenant:1 ~rank ~flow:1 ~size:1500 ()))
    [ 0; 10; 40; 100 ];
  (match Qvisor.Runtime.refresh rt with
  | Ok () -> ()
  | Error e -> failwith (Qvisor.Error.to_string e));
  let a =
    List.find
      (fun a -> a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.id = 1)
      (Qvisor.Runtime.plan rt).Qvisor.Synthesizer.assignments
  in
  let observed_lo = a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.rank_lo in
  let observed_hi = a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.rank_hi in
  Format.printf
    "after refresh — T1's transformation source range tightened to [%d, %d] \
     (declared [0, 30000]), improving its band resolution %dx@."
    observed_lo observed_hi
    (30_001 / (observed_hi - observed_lo + 1));

  (* Tenants T1 and T2 leave (beyond t1 in Fig. 2): only T3 remains. *)
  (match
     Qvisor.Runtime.remove_tenant rt ~tenant_id:1
       ~policy:(Qvisor.Policy.parse_exn "T2 >> T3") ()
   with
  | Ok () -> ()
  | Error e -> failwith (Qvisor.Error.to_string e));
  (match
     Qvisor.Runtime.remove_tenant rt ~tenant_id:2
       ~policy:(Qvisor.Policy.parse_exn "T3") ()
   with
  | Ok () -> ()
  | Error e -> failwith (Qvisor.Error.to_string e));
  Format.printf
    "after departures — %d re-syntheses total; T3 now owns the whole rank \
     space: %a@."
    (Qvisor.Runtime.resyntheses rt)
    Qvisor.Synthesizer.pp_plan (Qvisor.Runtime.plan rt)
