(* A scaled-down rendition of the paper's evaluation (§4): a pFabric
   tenant running a data-mining workload shares a leaf-spine fabric with
   an EDF tenant running CBR flows.  We compare three configurations at
   one load and print mean FCTs for small and large flows.

   Run with:  dune exec examples/datacenter_fct.exe
   (The full sweep lives in `dune exec bin/experiments.exe -- fig4`.) *)

let () =
  let params = { Experiments.Fig4.quick with Experiments.Fig4.load = 0.6 } in
  let schemes =
    [
      Experiments.Fig4.Fifo_both;
      Experiments.Fig4.Pifo_naive;
      Experiments.Fig4.Pifo_pfabric_only;
      Experiments.Fig4.Qvisor_policy "pfabric >> edf";
      Experiments.Fig4.Qvisor_policy "pfabric + edf";
    ]
  in
  Format.printf
    "Two tenants on a %d-host leaf-spine fabric, pFabric load %.1f:@.@."
    (params.Experiments.Fig4.leaves * params.Experiments.Fig4.hosts_per_leaf)
    params.Experiments.Fig4.load;
  Format.printf "%-30s | %14s | %14s | %8s@." "scheme" "small FCT (ms)"
    "large FCT (ms)" "cbr-ok";
  List.iter
    (fun scheme ->
      let r = Experiments.Fig4.run_exn params scheme in
      Format.printf "%-30s | %14.3f | %14.3f | %8s@." r.Experiments.Fig4.scheme
        r.Experiments.Fig4.small_mean_ms r.Experiments.Fig4.large_mean_ms
        (if Float.is_nan r.Experiments.Fig4.cbr_deadline_fraction then "-"
         else Printf.sprintf "%.3f" r.Experiments.Fig4.cbr_deadline_fraction))
    schemes;
  Format.printf
    "@.Reading it like the paper: FIFO hurts everyone; a naive shared PIFO \
     lets EDF crush pFabric's large flows; QVISOR with 'pfabric >> edf' \
     recovers the pFabric-alone ideal, and 'pfabric + edf' stays close \
     while treating the EDF tenant far better.@."
