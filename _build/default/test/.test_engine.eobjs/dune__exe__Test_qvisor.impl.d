test/test_qvisor.ml: Alcotest Array Engine Format List Option Printf QCheck QCheck_alcotest Qvisor Result Sched String
