test/test_extensions.ml: Alcotest Array Engine Experiments Float Hashtbl List Netsim Option Printf Qvisor Result Sched
