test/test_qvisor.mli:
