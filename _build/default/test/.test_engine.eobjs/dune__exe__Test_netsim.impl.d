test/test_netsim.ml: Alcotest Engine Filename Float Fun Hashtbl List Netsim Option Printf Sched Sys
