test/test_sched.ml: Alcotest Array Engine Gen List Option Printf QCheck QCheck_alcotest Sched
