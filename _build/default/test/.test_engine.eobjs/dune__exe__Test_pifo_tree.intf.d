test/test_pifo_tree.mli:
