test/test_engine.ml: Alcotest Array Engine Float Format Fun Gen List Option Printf QCheck QCheck_alcotest Result
