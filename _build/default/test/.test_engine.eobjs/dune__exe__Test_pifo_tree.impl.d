test/test_pifo_tree.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Qvisor Result Sched
