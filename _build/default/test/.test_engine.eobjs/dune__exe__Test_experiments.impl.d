test/test_experiments.ml: Alcotest Experiments Filename Float Fun In_channel List Out_channel Printf Result String Sys
