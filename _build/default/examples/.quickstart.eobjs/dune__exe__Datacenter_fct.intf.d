examples/datacenter_fct.mli:
