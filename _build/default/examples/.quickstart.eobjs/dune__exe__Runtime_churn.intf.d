examples/runtime_churn.mli:
