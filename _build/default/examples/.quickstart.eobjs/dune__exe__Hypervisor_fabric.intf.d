examples/hypervisor_fabric.mli:
