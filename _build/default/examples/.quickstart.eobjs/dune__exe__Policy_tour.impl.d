examples/policy_tour.ml: Array Format List Printf Qvisor Sched String
