examples/hypervisor_fabric.ml: Engine Filename Format List Netsim Qvisor Sched Sys
