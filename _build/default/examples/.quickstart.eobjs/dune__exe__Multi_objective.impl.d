examples/multi_objective.ml: Engine Format List Netsim Printf Sched String
