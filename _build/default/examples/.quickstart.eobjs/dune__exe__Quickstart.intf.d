examples/quickstart.mli:
