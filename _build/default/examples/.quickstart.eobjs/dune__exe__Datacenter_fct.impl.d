examples/datacenter_fct.ml: Experiments Float Format List Printf
