examples/runtime_churn.ml: Format List Qvisor Sched
