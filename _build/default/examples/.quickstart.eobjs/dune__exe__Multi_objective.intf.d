examples/multi_objective.mli:
