examples/quickstart.ml: Format List Qvisor Sched
