(* Quickstart: the paper's Fig. 3, step by step.

   Three tenants rank their own packets with their own algorithms
   (pFabric, EDF, fair queuing); the operator wants T1 strictly above T2
   and T3, which share.  QVISOR synthesizes per-tenant rank
   transformations and rewrites ranks at line rate so that a single PIFO
   realizes the multi-tenant policy.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Tenants declare their scheduling specs: algorithm + rank range. *)
  let tenants =
    [
      Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:7 ~rank_hi:9 ~id:1
        ~name:"T1" ();
      Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:1 ~rank_hi:3 ~id:2
        ~name:"T2" ();
      Qvisor.Tenant.make ~algorithm:"fq" ~rank_lo:3 ~rank_hi:5 ~id:3
        ~name:"T3" ();
    ]
  in

  (* 2. The operator writes the inter-tenant policy. *)
  let policy = Qvisor.Policy.parse_exn "T1 >> T2 + T3" in
  Format.printf "operator policy: %a@.@." Qvisor.Policy.pp policy;

  (* 3. QVISOR's synthesizer produces the joint scheduling function.  A
     9-rank space keeps the numbers readable, like the figure. *)
  let config =
    { Qvisor.Synthesizer.default_config with rank_lo = 1; rank_hi = 9 }
  in
  let plan = Qvisor.Synthesizer.synthesize_exn ~config ~tenants ~policy () in
  Format.printf "%a@.@." Qvisor.Synthesizer.pp_plan plan;

  (* 4. Static analysis: does the plan satisfy the policy in the worst
     case? *)
  let report = Qvisor.Analysis.check plan in
  Format.printf "%a@.@." Qvisor.Analysis.pp_report report;

  (* 5. The pre-processor rewrites ranks at line rate; a PIFO schedules
     the transformed ranks.  Offer the figure's seven packets. *)
  let pre = Qvisor.Preprocessor.of_plan plan in
  let pifo = Sched.Pifo_queue.create ~capacity_pkts:16 () in
  let offer tenant rank =
    let p = Sched.Packet.make ~tenant ~rank ~flow:tenant ~size:1500 () in
    let raw = p.Sched.Packet.rank in
    Qvisor.Preprocessor.process pre p;
    Format.printf "  T%d rank %d -> %d@." tenant raw p.Sched.Packet.rank;
    ignore (pifo.Sched.Qdisc.enqueue p)
  in
  Format.printf "pre-processor transformations:@.";
  List.iter (fun (t, r) -> offer t r)
    [ (1, 9); (2, 1); (3, 3); (1, 7); (2, 3); (3, 5); (1, 8) ];

  Format.printf "@.PIFO service order:@.  ";
  List.iter
    (fun (p : Sched.Packet.t) ->
      Format.printf "T%d(rank %d) " p.Sched.Packet.tenant p.Sched.Packet.rank)
    (Sched.Qdisc.drain pifo);
  Format.printf
    "@.@.T1's packets drained first (isolation), then T2 and T3 interleaved \
     (sharing) — each tenant still in its own algorithm's order.@."
