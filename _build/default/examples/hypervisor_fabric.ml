(* The assembled hypervisor on a live fabric, driven by a recorded trace.

   This example exercises the "production" workflow end to end:

   1. synthesize a flow trace offline and freeze it to disk (the stand-in
      for importing a measured production trace);
   2. create a Hypervisor (synthesizer + pre-processor + runtime monitor
      + adversarial guard) for two tenants and an operator policy;
   3. replay the trace through a leaf-spine fabric whose ports run PIFOs
      behind the hypervisor's line-rate hook, while a third, misbehaving
      traffic source hammers top ranks;
   4. report FCTs, the guard's verdicts, and the hottest links.

   Run with:  dune exec examples/hypervisor_fabric.exe *)

let () =
  let seed = 7 in
  let rng = Engine.Rng.create ~seed in

  (* 1. Freeze a workload trace to disk, then load it back. *)
  let trace_path = Filename.temp_file "qvisor_demo" ".trace" in
  let specs =
    Netsim.Trace.synthesize ~rng:(Engine.Rng.split rng)
      ~dist:(Netsim.Workload.data_mining ()) ~num_hosts:8 ~load:0.4
      ~access_rate:1e9 ~tenant:0 ~until:0.05
  in
  Netsim.Trace.save trace_path specs;
  let specs =
    match Netsim.Trace.load trace_path with
    | Ok s -> s
    | Error e -> failwith e
  in
  Format.printf "trace: %d flows frozen to %s and reloaded@." (List.length specs)
    trace_path;

  (* 2. The hypervisor: an interactive pFabric tenant isolated above a
     deadline tenant, guard armed. *)
  let tenants =
    [
      Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:30_000 ~id:0
        ~name:"interactive" ();
      Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:0 ~rank_hi:150 ~id:1
        ~name:"deadline" ();
      Qvisor.Tenant.make ~algorithm:"stfq" ~rank_lo:0 ~rank_hi:10_000 ~id:2
        ~name:"rogue" ();
    ]
  in
  let hv =
    Qvisor.Hypervisor.create_exn
      ~guard:{ Qvisor.Guard.default_config with window = 128 }
      ~tenants ~policy:"interactive >> deadline + rogue" ()
  in

  (* 3. Fabric with the hypervisor's hook installed on every port. *)
  let topo =
    Netsim.Topology.leaf_spine ~leaves:2 ~spines:2 ~hosts_per_leaf:4
      ~access_rate:1e9 ~fabric_rate:4e9 ~link_delay:1e-6
  in
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create () in
  let transport = Netsim.Transport.create ~sim () in
  let net =
    Netsim.Net.create ~sim ~topo ~routing
      ~make_qdisc:(fun _ -> Sched.Pifo_queue.create ~capacity_pkts:100 ())
      ~preprocess:(Qvisor.Hypervisor.process hv)
      ~deliver:(Netsim.Transport.deliver transport)
      ()
  in
  Netsim.Transport.attach transport net;

  let metrics = Netsim.Metrics.create () in
  Netsim.Trace.replay ~sim ~transport
    ~ranker_of_tenant:(fun _ -> Sched.Ranker.pfabric ())
    ~on_complete:(Netsim.Metrics.record metrics)
    specs;
  ignore
    (Netsim.Workload.cbr_tenant ~sim ~rng:(Engine.Rng.split rng) ~transport
       ~tenant:1
       ~ranker:(Sched.Ranker.edf ~unit_seconds:2e-5 ~horizon:3e-3 ())
       ~num_hosts:8 ~flows:5 ~rate:0.25e9 ~deadline_budget:2e-3 ~until:0.05 ());

  (* The rogue tenant declared an STFQ rank function over [0, 10000] but
     tags every packet rank 0 — claiming the head of its shared band
     forever.  The guard's flooding detector should park it. *)
  let attacker_rng = Engine.Rng.split rng in
  let rec attack () =
    if Engine.Sim.now sim < 0.05 then begin
      let src, dst = Engine.Rng.pair_distinct attacker_rng ~n:8 in
      Netsim.Net.inject net
        (Sched.Packet.make ~tenant:2 ~rank:0 ~flow:999_999 ~src ~dst
           ~size:1518 ~created_at:(Engine.Sim.now sim) ());
      ignore (Engine.Sim.schedule_after sim ~delay:20e-6 attack)
    end
  in
  attack ();

  Engine.Sim.run ~until:0.4 sim;

  (* 4. Report. *)
  Format.printf "@.interactive tenant FCTs:@.  %a@." Netsim.Metrics.pp_summary
    metrics;
  let verdict_str id =
    match Qvisor.Hypervisor.verdict hv ~tenant_id:id with
    | Qvisor.Guard.Conforming -> "conforming"
    | Qvisor.Guard.Suspicious _ -> "SUSPICIOUS"
    | Qvisor.Guard.Malicious _ -> "MALICIOUS (parked at worst rank)"
  in
  Format.printf "@.guard verdicts: interactive=%s, deadline=%s, rogue=%s@."
    (verdict_str 0) (verdict_str 1) (verdict_str 2);
  Format.printf "@.hottest links over the run:@.";
  List.iter
    (fun (link_id, u) ->
      Format.printf "  link %2d: %4.1f%% utilized@." link_id (100. *. u))
    (Netsim.Net.busiest_links net ~now:0.05 ~top:5);
  Format.printf "@.packets through the hypervisor: %d@."
    (Qvisor.Hypervisor.packets_processed hv);
  Sys.remove trace_path
