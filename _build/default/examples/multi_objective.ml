(* Multi-objective scheduling (§5) and non-work-conserving tenants.

   One tenant wants small flows fast *and* deadlines met: we blend pFabric
   and EDF with the `weighted` combinator, and compare against each pure
   policy on the same traffic through a PIFO.  Then we rate-limit a
   tenant's uplink with a token-bucket shaper and watch it pace.

   Run with:  dune exec examples/multi_objective.exe *)

let pfabric_range = (0, 1000)

let edf_range = (0, 1000)

(* Synthetic packets spanning both axes: remaining size and deadline. *)
let population () =
  Sched.Packet.reset_uid_counter ();
  List.concat_map
    (fun remaining ->
      List.map
        (fun deadline ->
          Sched.Packet.make ~flow:remaining ~size:1500
            ~remaining:(remaining * 100_000)
            ~deadline:(float_of_int deadline /. 1000.)
            ())
        [ 50; 400; 900 ])
    [ 1; 5; 9 ]

let service_order ranker =
  let pifo = Sched.Pifo_queue.create ~capacity_pkts:64 () in
  List.iter
    (fun p ->
      ignore (Sched.Ranker.tag ranker ~now:0. p);
      ignore (pifo.Sched.Qdisc.enqueue p))
    (population ());
  List.map
    (fun (p : Sched.Packet.t) ->
      Printf.sprintf "(%dKB,%3.0fms)" (p.Sched.Packet.remaining / 1000)
        (1e3 *. p.Sched.Packet.deadline))
    (Sched.Qdisc.drain pifo)

let () =
  let pfabric = Sched.Ranker.pfabric ~unit_bytes:1000 () in
  let edf = Sched.Ranker.edf ~unit_seconds:1e-3 ~horizon:1.0 () in
  let blend =
    Sched.Ranker.weighted
      ~components:[ (Sched.Ranker.pfabric ~unit_bytes:1000 (), pfabric_range, 1.0);
                    (Sched.Ranker.edf ~unit_seconds:1e-3 ~horizon:1.0 (), edf_range, 1.0) ]
      ()
  in
  let lex =
    Sched.Ranker.lexicographic
      ~primary:(Sched.Ranker.pfabric ~unit_bytes:1000 (), pfabric_range)
      ~secondary:(Sched.Ranker.edf ~unit_seconds:1e-3 ~horizon:1.0 (), edf_range)
      ()
  in
  Format.printf "service order of 9 packets (remaining KB, deadline ms):@.@.";
  List.iter
    (fun (name, ranker) ->
      Format.printf "%-22s: %s@." name
        (String.concat " " (service_order ranker)))
    [
      ("pure pFabric", pfabric);
      ("pure EDF", edf);
      ("weighted 50/50 blend", blend);
      ("lex (size, deadline)", lex);
    ];
  Format.printf
    "@.pFabric ignores deadlines, EDF ignores sizes; the blend trades both \
     off; the lexicographic form keeps strict size order and uses \
     deadlines only to break ties.@.";

  (* Non-work-conserving: shape one host's uplink to 100 Mb/s. *)
  let topo = Netsim.Topology.create ~num_hosts:2 ~num_switches:1 in
  ignore (Netsim.Topology.add_duplex topo ~a:0 ~b:2 ~rate:1e9 ~delay:1e-6);
  ignore (Netsim.Topology.add_duplex topo ~a:1 ~b:2 ~rate:1e9 ~delay:1e-6);
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create () in
  let timeline = Engine.Timeseries.create ~bucket:0.001 () in
  let net =
    Netsim.Net.create ~sim ~topo ~routing
      ~make_qdisc:(fun _ -> Sched.Fifo_queue.create ~capacity_pkts:4000 ())
      ~shaper_of:(fun l ->
        if l.Netsim.Topology.id = 0 then
          Some { Netsim.Net.shaper_rate = 12.5e6; shaper_burst = 15_000. }
        else None)
      ~deliver:(fun p ->
        Engine.Timeseries.add timeline ~time:(Engine.Sim.now sim)
          (float_of_int p.Sched.Packet.size))
      ()
  in
  (* Offer 2x the shaped rate for 10 ms. *)
  let rec blast () =
    if Engine.Sim.now sim < 0.01 then begin
      Netsim.Net.inject net
        (Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1518
           ~created_at:(Engine.Sim.now sim) ());
      ignore (Engine.Sim.schedule_after sim ~delay:(1518. *. 8. /. 200e6) blast)
    end
  in
  blast ();
  Engine.Sim.run ~until:0.2 sim;
  Format.printf
    "@.shaped uplink (100 Mb/s token bucket, 200 Mb/s offered for 10 ms) — \
     delivered bytes per ms:@.%a@."
    (Engine.Timeseries.pp ~width:40 ())
    timeline
