lib/sched/sp_pifo.ml: Array Packet Qdisc Queue
