lib/sched/pifo_tree.mli: Packet Qdisc
