lib/sched/packet.mli: Format
