lib/sched/drr_bank.ml: Array Packet Qdisc Queue
