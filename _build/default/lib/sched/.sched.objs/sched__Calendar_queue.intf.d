lib/sched/calendar_queue.mli: Qdisc
