lib/sched/pifo_queue.mli: Qdisc
