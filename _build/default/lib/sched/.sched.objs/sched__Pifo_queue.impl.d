lib/sched/pifo_queue.ml: Map Option Packet Qdisc
