lib/sched/fifo_queue.ml: Packet Qdisc Queue
