lib/sched/sp_bank.mli: Packet Qdisc
