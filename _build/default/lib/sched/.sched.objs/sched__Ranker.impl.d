lib/sched/ranker.ml: Float Hashtbl List Option Packet Printf String
