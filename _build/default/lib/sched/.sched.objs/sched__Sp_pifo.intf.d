lib/sched/sp_pifo.mli: Qdisc
