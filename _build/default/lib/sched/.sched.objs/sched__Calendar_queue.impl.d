lib/sched/calendar_queue.ml: Array Packet Qdisc Queue
