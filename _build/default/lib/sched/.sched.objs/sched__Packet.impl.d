lib/sched/packet.ml: Format
