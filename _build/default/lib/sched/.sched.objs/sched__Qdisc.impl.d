lib/sched/qdisc.ml: Format List Packet
