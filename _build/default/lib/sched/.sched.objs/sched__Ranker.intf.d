lib/sched/ranker.mli: Packet
