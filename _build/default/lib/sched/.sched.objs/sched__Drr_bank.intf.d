lib/sched/drr_bank.mli: Packet Qdisc
