lib/sched/fifo_queue.mli: Qdisc
