lib/sched/qdisc.mli: Format Packet
