lib/sched/pifo_tree.ml: Array Float List Map Option Packet Qdisc
