lib/sched/aifo.ml: Array Packet Qdisc Queue
