lib/sched/sp_bank.ml: Array Packet Qdisc Queue
