lib/sched/aifo.mli: Qdisc
