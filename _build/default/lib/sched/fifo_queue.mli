(** Tail-drop FIFO — the baseline "conventional scheduler" of the paper's
    evaluation (Fig. 4, "FIFO: pFabric and EDF"). *)

val create : ?name:string -> capacity_pkts:int -> unit -> Qdisc.t
(** A FIFO holding at most [capacity_pkts] packets; an arrival to a full
    queue is dropped (tail drop).
    @raise Invalid_argument if [capacity_pkts <= 0]. *)
