(** Tenant rank functions.

    A ranker computes the scheduling rank a tenant assigns to its own
    packets — the paper's per-tenant "rank function", evaluated at the
    end-host (or an upstream switch) before packets reach QVISOR's
    pre-processor.  Lower rank means higher priority.

    Each policy ranks on its own natural metric and scale — remaining flow
    bytes for pFabric, microseconds-to-deadline for EDF, virtual start
    times for STFQ…  These scales deliberately clash (the paper's
    Problem 1); reconciling them is the synthesizer's job, not the
    ranker's. *)

type t

val name : t -> string

val tag : t -> now:float -> Packet.t -> int
(** Compute the packet's rank at time [now] and store it into both the
    immutable-in-flight [label] and the scheduling [rank] fields.
    Stateful policies (STFQ) update their per-flow state. *)

val on_dequeue : t -> Packet.t -> unit
(** Feedback hook for policies that track a virtual clock from served
    packets (STFQ).  A no-op for stateless policies. *)

val pfabric : ?unit_bytes:int -> unit -> t
(** Shortest-remaining-flow-first: rank = remaining bytes / [unit_bytes]
    (default 1000, i.e. KB granularity). *)

val srpt : ?unit_bytes:int -> unit -> t
(** Alias of {!pfabric} under its queueing-theory name. *)

val edf : ?unit_seconds:float -> ?horizon:float -> unit -> t
(** Earliest-deadline-first: rank = time to deadline in [unit_seconds]
    (default 1e-6: microseconds), clamped to [\[0, horizon\]] (default 10 s
    worth of units).  Packets with no deadline rank at the horizon. *)

val stfq : ?unit_bytes:int -> ?weight:(flow:int -> float) -> unit -> t
(** Start-time fair queueing: rank = per-flow virtual start time (bytes
    scaled by flow weight and [unit_bytes], default 1000).  [weight]
    defaults to 1.0 for every flow.  The virtual clock advances with
    assigned start tags and, when connected, with {!on_dequeue} feedback. *)

val fifo : ?unit_seconds:float -> unit -> t
(** Rank = packet creation time in [unit_seconds] (default 1e-6), i.e.
    global FIFO order — the identity policy. *)

val fifo_plus : ?unit_seconds:float -> unit -> t
(** FIFO+ (Clark/Shenker/Zhang): rank by creation time minus the flow's
    accumulated scheduling advantage, which at a single tagging point
    reduces to creation-time order with per-flow age correction. *)

val lstf : ?unit_seconds:float -> ?line_rate:float -> unit -> t
(** Least-slack-time-first: rank = (deadline - now - remaining
    transmission time at [line_rate], default 1 Gb/s) in [unit_seconds].
    Negative slack clamps to 0. *)

val constant : int -> t
(** Every packet gets the same rank — useful in tests. *)

val of_fn : string -> (now:float -> Packet.t -> int) -> t
(** Escape hatch: wrap an arbitrary tagging function. *)

(** {2 Multi-objective combinators}

    The paper's "multi-objective scheduling algorithms" direction (§5):
    instead of one tenant per objective, a single rank function can blend
    several objectives on the same traffic.  Since component policies rank
    on different scales, each component is declared with the range its raw
    ranks live in and is normalized before combination — the same
    homogenization trick the synthesizer uses across tenants. *)

val weighted :
  ?name:string ->
  ?resolution:int ->
  components:(t * (int * int) * float) list ->
  unit ->
  t
(** [weighted ~components ()] ranks by the weighted average of the
    components' normalized ranks.  Each component is
    [(ranker, (lo, hi), weight)]: raw ranks are clamped to [\[lo, hi\]]
    and mapped onto [\[0, resolution\]] (default 1000) before averaging
    with the given positive weights.  Dequeue feedback reaches every
    component.
    @raise Invalid_argument on an empty component list, empty ranges, or
    non-positive weights. *)

val lexicographic :
  ?name:string ->
  ?secondary_levels:int ->
  primary:t * (int * int) ->
  secondary:t * (int * int) ->
  unit ->
  t
(** [lexicographic ~primary ~secondary ()] ranks by the primary objective
    and breaks ties by the secondary: the primary's normalized rank is
    scaled by [secondary_levels] (default 64) and the secondary,
    quantized to that many levels, is added.  E.g. minimize FCT first and
    prefer earlier deadlines among equals. *)
