type t = {
  name : string;
  enqueue : Packet.t -> Packet.t list;
  dequeue : unit -> Packet.t option;
  peek : unit -> Packet.t option;
  length : unit -> int;
  bytes : unit -> int;
  drops : unit -> int;
}

let accepted _q p dropped = not (List.exists (fun d -> d.Packet.uid = p.Packet.uid) dropped)

let drain q =
  let rec loop acc =
    match q.dequeue () with None -> List.rev acc | Some p -> loop (p :: acc)
  in
  loop []

let pp ppf q =
  Format.fprintf ppf "%s[len=%d bytes=%d drops=%d]" q.name (q.length ())
    (q.bytes ()) (q.drops ())
