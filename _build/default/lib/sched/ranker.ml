type t = {
  name : string;
  tag : now:float -> Packet.t -> int;
  on_dequeue : Packet.t -> unit;
}

let name t = t.name

let tag t ~now p =
  let r = t.tag ~now p in
  p.Packet.label <- r;
  p.Packet.rank <- r;
  r

let on_dequeue t p = t.on_dequeue p

let no_feedback = fun _ -> ()

let of_fn name tag = { name; tag; on_dequeue = no_feedback }

let pfabric ?(unit_bytes = 1000) () =
  if unit_bytes <= 0 then invalid_arg "Ranker.pfabric: unit_bytes <= 0";
  of_fn "pfabric" (fun ~now:_ p -> p.Packet.remaining / unit_bytes)

let srpt ?unit_bytes () =
  let r = pfabric ?unit_bytes () in
  { r with name = "srpt" }

let edf ?(unit_seconds = 1e-6) ?horizon () =
  if unit_seconds <= 0. then invalid_arg "Ranker.edf: unit_seconds <= 0";
  let horizon_units =
    match horizon with
    | Some h when h <= 0. -> invalid_arg "Ranker.edf: horizon <= 0"
    | Some h -> int_of_float (h /. unit_seconds)
    | None -> int_of_float (10. /. unit_seconds)
  in
  let tag ~now p =
    let d = p.Packet.deadline in
    if d = infinity then horizon_units
    else begin
      let units = int_of_float ((d -. now) /. unit_seconds) in
      max 0 (min horizon_units units)
    end
  in
  of_fn "edf" tag

let stfq ?(unit_bytes = 1000) ?(weight = fun ~flow:_ -> 1.0) () =
  if unit_bytes <= 0 then invalid_arg "Ranker.stfq: unit_bytes <= 0";
  (* Virtual time in weighted bytes; per-flow last finish tags. *)
  let virtual_time = ref 0. in
  let last_finish : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let tag ~now:_ p =
    let flow = p.Packet.flow in
    let w = weight ~flow in
    if w <= 0. then invalid_arg "Ranker.stfq: non-positive flow weight";
    let prev = Option.value (Hashtbl.find_opt last_finish flow) ~default:0. in
    let start = Float.max !virtual_time prev in
    Hashtbl.replace last_finish flow
      (start +. (float_of_int p.Packet.size /. w));
    (* Without dequeue feedback the virtual clock advances with the start
       tags it hands out, which keeps newly active flows from starving
       backlogged ones (the PIFO-paper STFQ formulation). *)
    virtual_time := Float.max !virtual_time start;
    int_of_float (start /. float_of_int unit_bytes)
  in
  let on_dequeue p =
    let served_start = float_of_int (p.Packet.rank * unit_bytes) in
    virtual_time := Float.max !virtual_time served_start
  in
  { name = "stfq"; tag; on_dequeue }

let fifo ?(unit_seconds = 1e-6) () =
  if unit_seconds <= 0. then invalid_arg "Ranker.fifo: unit_seconds <= 0";
  of_fn "fifo" (fun ~now:_ p -> int_of_float (p.Packet.created_at /. unit_seconds))

let fifo_plus ?(unit_seconds = 1e-6) () =
  if unit_seconds <= 0. then invalid_arg "Ranker.fifo_plus: unit_seconds <= 0";
  (* Per-flow age advantage: the first packet of a flow anchors the flow's
     offset; later packets are ranked as if they arrived at the anchor plus
     their in-flow spacing, which emulates FIFO+'s "rank by expected
     arrival at an unloaded queue". *)
  let anchors : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let tag ~now:_ p =
    let flow = p.Packet.flow in
    let anchor =
      match Hashtbl.find_opt anchors flow with
      | Some a -> a
      | None ->
        Hashtbl.add anchors flow p.Packet.created_at;
        p.Packet.created_at
    in
    let expected = Float.max anchor p.Packet.created_at in
    int_of_float (expected /. unit_seconds)
  in
  { name = "fifo+"; tag; on_dequeue = no_feedback }

let lstf ?(unit_seconds = 1e-6) ?(line_rate = 1e9) () =
  if unit_seconds <= 0. then invalid_arg "Ranker.lstf: unit_seconds <= 0";
  if line_rate <= 0. then invalid_arg "Ranker.lstf: line_rate <= 0";
  let tag ~now p =
    if p.Packet.deadline = infinity then max_int / 2
    else begin
      let tx_time = 8. *. float_of_int p.Packet.remaining /. line_rate in
      let slack = p.Packet.deadline -. now -. tx_time in
      max 0 (int_of_float (slack /. unit_seconds))
    end
  in
  of_fn "lstf" tag

let constant n = of_fn "constant" (fun ~now:_ _ -> n)

(* ------------------------------------------------------------------ *)
(* Multi-objective combinators                                        *)
(* ------------------------------------------------------------------ *)

let normalized_component ~resolution (ranker, (lo, hi), ()) ~now p =
  if lo > hi then invalid_arg "Ranker: empty component range";
  let raw = ranker.tag ~now p in
  let clamped = max lo (min hi raw) in
  if hi = lo then 0.
  else
    float_of_int (clamped - lo)
    /. float_of_int (hi - lo)
    *. float_of_int resolution

let weighted ?name ?(resolution = 1000) ~components () =
  if components = [] then invalid_arg "Ranker.weighted: no components";
  if resolution <= 0 then invalid_arg "Ranker.weighted: resolution <= 0";
  List.iter
    (fun ((_ : t), (lo, hi), w) ->
      if lo > hi then invalid_arg "Ranker.weighted: empty component range";
      if w <= 0. then invalid_arg "Ranker.weighted: non-positive weight")
    components;
  let total_weight = List.fold_left (fun acc (_, _, w) -> acc +. w) 0. components in
  let name =
    match name with
    | Some n -> n
    | None ->
      "weighted("
      ^ String.concat "," (List.map (fun (r, _, _) -> r.name) components)
      ^ ")"
  in
  let tag ~now p =
    let sum =
      List.fold_left
        (fun acc (r, range, w) ->
          acc +. (w *. normalized_component ~resolution (r, range, ()) ~now p))
        0. components
    in
    int_of_float (sum /. total_weight)
  in
  let on_dequeue p = List.iter (fun (r, _, _) -> r.on_dequeue p) components in
  { name; tag; on_dequeue }

let lexicographic ?name ?(secondary_levels = 64) ~primary ~secondary () =
  if secondary_levels <= 0 then
    invalid_arg "Ranker.lexicographic: secondary_levels <= 0";
  let primary_ranker, primary_range = primary in
  let secondary_ranker, secondary_range = secondary in
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "lex(%s,%s)" primary_ranker.name secondary_ranker.name
  in
  let resolution = 1000 in
  let tag ~now p =
    let prim =
      normalized_component ~resolution (primary_ranker, primary_range, ()) ~now p
    in
    let sec =
      normalized_component ~resolution (secondary_ranker, secondary_range, ())
        ~now p
    in
    let sec_level =
      min (secondary_levels - 1)
        (int_of_float (sec /. float_of_int resolution *. float_of_int secondary_levels))
    in
    (int_of_float prim * secondary_levels) + sec_level
  in
  let on_dequeue p =
    primary_ranker.on_dequeue p;
    secondary_ranker.on_dequeue p
  in
  { name; tag; on_dequeue }
