(** PIFO trees (Sivaraman et al., SIGCOMM 2016) — hierarchical
    programmable scheduling.

    A scheduling tree has a PIFO at every node.  Enqueuing a packet walks
    the tree from the root to the packet's leaf: at each internal node an
    entry for the taken child is pushed into that node's PIFO with a rank
    computed by the node's scheduling discipline; at the leaf the packet
    itself is pushed with its own rank.  Dequeuing pops the root PIFO to
    learn which subtree to serve and recurses.  This realizes hierarchical
    policies — e.g. weighted fairness {e between} tenant subtrees while
    each tenant runs its own algorithm {e within} its leaf — which is the
    "PIFO trees / higher expressivity" extension of the paper's §5.

    Node disciplines provided here:
    - {!leaf}: schedules packets by their (already computed) rank;
    - {!strict}: serves children in fixed priority order;
    - {!wfq}: start-time fair queueing across children with weights. *)

type tree

val leaf : ?rank_of:(Packet.t -> int) -> unit -> tree
(** A leaf.  [rank_of] defaults to the packet's current [rank] field. *)

val strict : tree list -> tree
(** Strict priority across children, first child highest.
    @raise Invalid_argument on an empty list. *)

val wfq : (tree * float) list -> tree
(** Weighted fair queueing across children (node-local STFQ on bytes:
    child virtual finish times advance by [size /. weight]).
    @raise Invalid_argument on an empty list or non-positive weights. *)

val num_leaves : tree -> int

val to_qdisc :
  ?name:string ->
  classify:(Packet.t -> int) ->
  capacity_pkts:int ->
  tree ->
  Qdisc.t
(** Build the queue discipline.  [classify] maps a packet to a leaf index
    (leaves are numbered left to right, depth first, starting at 0);
    out-of-range results are clamped.  Total occupancy is bounded by
    [capacity_pkts] with tail drop.
    @raise Invalid_argument if [capacity_pkts <= 0]. *)
