type kind = Data | Ack

type t = {
  uid : int;
  kind : kind;
  flow : int;
  tenant : int;
  src : int;
  dst : int;
  size : int;
  seq : int;
  payload : int;
  remaining : int;
  deadline : float;
  created_at : float;
  mutable label : int;
  mutable rank : int;
  mutable enqueued_at : float;
}

let header_bytes = 58

let uid_counter = ref 0

let reset_uid_counter () = uid_counter := 0

let make ?(kind = Data) ?(tenant = 0) ?(src = 0) ?(dst = 0) ?(seq = 0) ?payload
    ?remaining ?(deadline = infinity) ?(created_at = 0.) ?(rank = 0) ~flow
    ~size () =
  let payload =
    match payload with Some p -> p | None -> max 0 (size - header_bytes)
  in
  let remaining = match remaining with Some r -> r | None -> payload in
  incr uid_counter;
  {
    uid = !uid_counter;
    kind;
    flow;
    tenant;
    src;
    dst;
    size;
    seq;
    payload;
    remaining;
    deadline;
    created_at;
    label = rank;
    rank;
    enqueued_at = created_at;
  }

let compare_rank a b =
  let c = compare a.rank b.rank in
  if c <> 0 then c else compare a.uid b.uid

let pp ppf p =
  Format.fprintf ppf "pkt#%d(flow=%d tenant=%d rank=%d size=%dB)" p.uid p.flow
    p.tenant p.rank p.size
