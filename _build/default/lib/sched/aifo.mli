(** AIFO (Yu et al., SIGCOMM 2021): approximating PIFO behaviour with a
    single FIFO queue plus rank-aware admission control.

    A sliding window of recent packet ranks estimates the rank
    distribution; an arrival with rank [r] is admitted only if the fraction
    of recent ranks smaller than [r] does not exceed the remaining queue
    headroom (scaled by the burst-tolerance parameter [k]).  Admitted
    packets are served FIFO. *)

val create :
  ?name:string ->
  ?window:int ->
  ?k:float ->
  capacity_pkts:int ->
  unit ->
  Qdisc.t
(** [window] defaults to [8 * capacity_pkts] samples; [k] (burst
    tolerance) defaults to [0.1] and must lie in [\[0, 1)].
    @raise Invalid_argument on bad parameters. *)
