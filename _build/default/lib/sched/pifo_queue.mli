(** PIFO (push-in first-out) queue — the ideal programmable scheduler
    abstraction (Sivaraman et al., SIGCOMM 2016) that QVISOR presents to
    tenants.

    Packets are dequeued in non-decreasing rank order; ties are served in
    arrival order (FIFO).  When the queue is full, the lowest-priority
    packet loses: if the arrival's rank is no better than the current worst,
    the arrival is dropped, otherwise the worst-ranked (most recently
    arrived among equals) queued packet is evicted to make room. *)

val create : ?name:string -> capacity_pkts:int -> unit -> Qdisc.t
(** @raise Invalid_argument if [capacity_pkts <= 0]. *)
