(** Queue disciplines as first-class values.

    A discipline is a record of closures over hidden state.  This lets a
    switch port swap its discipline at runtime (needed for QVISOR's runtime
    re-synthesis experiments) and lets heterogeneous banks mix disciplines,
    which a functor-based encoding would make awkward. *)

type t = {
  name : string;
  enqueue : Packet.t -> Packet.t list;
      (** Offer a packet.  Returns the packets dropped by the operation —
          possibly the offered packet itself (tail drop), possibly queued
          packets evicted to make room (PIFO worst-rank eviction), or [[]]
          when everything fit. *)
  dequeue : unit -> Packet.t option;
      (** Remove the packet the discipline schedules next. *)
  peek : unit -> Packet.t option;
  length : unit -> int;  (** queued packets *)
  bytes : unit -> int;  (** queued bytes *)
  drops : unit -> int;  (** cumulative packets dropped by enqueue *)
}

val accepted : t -> Packet.t -> Packet.t list -> bool
(** [accepted q p dropped] is [true] when packet [p] survived the enqueue
    that returned [dropped] (i.e. [p] is not among the dropped). *)

val drain : t -> Packet.t list
(** Dequeue everything, in service order. *)

val pp : Format.formatter -> t -> unit
