let create_with_day ?(name = "calendar") ~num_buckets ~bucket_width
    ~capacity_pkts () =
  if num_buckets <= 0 then invalid_arg "Calendar_queue: num_buckets <= 0";
  if bucket_width <= 0 then invalid_arg "Calendar_queue: bucket_width <= 0";
  if capacity_pkts <= 0 then invalid_arg "Calendar_queue: capacity <= 0";
  let buckets : Packet.t Queue.t array =
    Array.init num_buckets (fun _ -> Queue.create ())
  in
  let head = ref 0 in
  let day_rank = ref 0 in
  let count = ref 0 in
  let bytes = ref 0 in
  let drops = ref 0 in
  let enqueue p =
    if !count >= capacity_pkts then begin
      incr drops;
      [ p ]
    end
    else begin
      let offset = max 0 ((p.Packet.rank - !day_rank) / bucket_width) in
      let slot = min offset (num_buckets - 1) in
      Queue.push p buckets.((!head + slot) mod num_buckets);
      incr count;
      bytes := !bytes + p.Packet.size;
      []
    end
  in
  let rec rotate_to_nonempty () =
    if Queue.is_empty buckets.(!head) then begin
      head := (!head + 1) mod num_buckets;
      day_rank := !day_rank + bucket_width;
      rotate_to_nonempty ()
    end
  in
  let dequeue () =
    if !count = 0 then None
    else begin
      rotate_to_nonempty ();
      let p = Queue.pop buckets.(!head) in
      decr count;
      bytes := !bytes - p.Packet.size;
      Some p
    end
  in
  let peek () =
    if !count = 0 then None
    else begin
      rotate_to_nonempty ();
      Queue.peek_opt buckets.(!head)
    end
  in
  let qdisc =
    {
      Qdisc.name;
      enqueue;
      dequeue;
      peek;
      length = (fun () -> !count);
      bytes = (fun () -> !bytes);
      drops = (fun () -> !drops);
    }
  in
  (qdisc, fun () -> !day_rank)

let create ?name ~num_buckets ~bucket_width ~capacity_pkts () =
  fst (create_with_day ?name ~num_buckets ~bucket_width ~capacity_pkts ())
