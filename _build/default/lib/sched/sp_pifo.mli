(** SP-PIFO (Gran Alcoz et al., NSDI 2020): approximating a PIFO on a bank
    of strict-priority FIFO queues with adaptive per-queue rank bounds.

    Arriving packets scan the queues bottom-up (lowest priority first) and
    enter the first queue whose bound does not exceed their rank; the bound
    is then raised to the rank ("push-up").  A packet smaller than every
    bound enters the highest-priority queue and all bounds decrease by the
    inversion cost ("push-down").  This is the mechanism the QVISOR paper
    cites for running on existing switches. *)

val create :
  ?name:string ->
  num_queues:int ->
  queue_capacity_pkts:int ->
  unit ->
  Qdisc.t
(** @raise Invalid_argument if [num_queues <= 0] or
    [queue_capacity_pkts <= 0]. *)

val create_with_bounds :
  ?name:string ->
  num_queues:int ->
  queue_capacity_pkts:int ->
  unit ->
  Qdisc.t * (unit -> int array)
(** Like {!create} but also returns an inspector for the current queue
    bounds (used in tests and the deployment-fidelity ablation). *)
