(** A bank of strict-priority FIFO queues — the scheduling hardware that
    commodity switches actually provide (§3.4 of the paper).

    A classifier maps each arriving packet to a queue index; queue 0 has the
    highest priority.  Dequeue serves the lowest-index non-empty queue.
    Each queue tail-drops independently. *)

val create :
  ?name:string ->
  num_queues:int ->
  queue_capacity_pkts:int ->
  classify:(Packet.t -> int) ->
  unit ->
  Qdisc.t
(** [classify] results are clamped into [\[0, num_queues)].
    @raise Invalid_argument if [num_queues <= 0] or
    [queue_capacity_pkts <= 0]. *)

val queue_of_rank : bounds:int array -> int -> int
(** Helper for rank-range classifiers: [queue_of_rank ~bounds r] is the
    index of the first queue whose upper bound is [>= r]; ranks above the
    last bound map to the last queue.  [bounds] must be non-decreasing. *)
