(** Deficit round robin (Shreedhar & Varghese, SIGCOMM 1995) over a bank
    of FIFO queues — the classic fair-queuing discipline of commodity
    switches, byte-accurate across variable packet sizes.

    Each queue accumulates [quantum * weight] bytes of credit per round
    and transmits head packets while credit lasts.  Used as a deployment
    substrate for [+]-heavy policies where per-queue fairness matters
    more than rank fidelity. *)

val create :
  ?name:string ->
  ?weights:float array ->
  num_queues:int ->
  queue_capacity_pkts:int ->
  quantum_bytes:int ->
  classify:(Packet.t -> int) ->
  unit ->
  Qdisc.t
(** [weights] defaults to all-1.0 and must have length [num_queues] with
    positive entries.  [classify] results are clamped into range.
    @raise Invalid_argument on non-positive sizes or bad weights. *)
