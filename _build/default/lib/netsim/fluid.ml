let ack_bytes = Sched.Packet.header_bytes

let path_rtt ~rates ~link_delay ~mtu_payload =
  let data_wire = float_of_int (mtu_payload + Sched.Packet.header_bytes) in
  let ack_wire = float_of_int ack_bytes in
  List.fold_left
    (fun acc rate ->
      acc
      +. (8. *. data_wire /. rate)
      +. (8. *. ack_wire /. rate)
      +. (2. *. link_delay))
    0. rates

let estimate_fct ~size ~mtu_payload ~window ~rates ~link_delay ~load =
  if size <= 0 then invalid_arg "Fluid.estimate_fct: size <= 0";
  if mtu_payload <= 0 then invalid_arg "Fluid.estimate_fct: mtu <= 0";
  if window <= 0 then invalid_arg "Fluid.estimate_fct: window <= 0";
  if rates = [] then invalid_arg "Fluid.estimate_fct: empty path";
  List.iter
    (fun r -> if r <= 0. then invalid_arg "Fluid.estimate_fct: rate <= 0")
    rates;
  if load < 0. || load >= 1. then
    invalid_arg "Fluid.estimate_fct: load outside [0, 1)";
  let rtt = path_rtt ~rates ~link_delay ~mtu_payload in
  let bottleneck = List.fold_left Float.min infinity rates in
  let residual = bottleneck *. (1. -. load) in
  (* Goodput excludes header overhead. *)
  let goodput_fraction =
    float_of_int mtu_payload /. float_of_int (mtu_payload + Sched.Packet.header_bytes)
  in
  let window_limited_rate =
    float_of_int (window * mtu_payload) *. 8. /. rtt
  in
  let achievable = Float.min window_limited_rate (residual *. goodput_fraction) in
  rtt +. (8. *. float_of_int size /. achievable)

let leaf_spine_path_rates ~intra_leaf ~access_rate ~fabric_rate =
  if intra_leaf then [ access_rate; access_rate ]
  else [ access_rate; fabric_rate; fabric_rate; access_rate ]
