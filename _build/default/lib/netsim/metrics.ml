type bucket = Small | Medium | Large

let small_cutoff = 100_000 (* bytes: (0, 100 KB) *)

let large_cutoff = 1_000_000 (* bytes: [1 MB, inf) *)

let bucket_of_size size =
  if size < small_cutoff then Small
  else if size >= large_cutoff then Large
  else Medium

type t = {
  small : Engine.Stats.t;
  medium : Engine.Stats.t;
  large : Engine.Stats.t;
  all : Engine.Stats.t;
  mutable completed : int;
}

let create () =
  {
    small = Engine.Stats.create ();
    medium = Engine.Stats.create ();
    large = Engine.Stats.create ();
    all = Engine.Stats.create ();
    completed = 0;
  }

let fct_stats t = function
  | Small -> t.small
  | Medium -> t.medium
  | Large -> t.large

let record t (r : Transport.flow_result) =
  let fct = Transport.fct r in
  t.completed <- t.completed + 1;
  Engine.Stats.add t.all fct;
  Engine.Stats.add (fct_stats t (bucket_of_size r.Transport.size)) fct

let overall t = t.all

let completed t = t.completed

let mean_fct_ms t bucket = 1e3 *. Engine.Stats.mean (fct_stats t bucket)

let p99_fct_ms t bucket = 1e3 *. Engine.Stats.quantile (fct_stats t bucket) 0.99

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>flows=%d@,small:  %a@,medium: %a@,large:  %a@]" t.completed
    Engine.Stats.pp t.small Engine.Stats.pp t.medium Engine.Stats.pp t.large
