(** Analytic flow-completion-time model, for cross-validating the
    packet-level simulator.

    A windowed flow over a store-and-forward path is either
    {e window-limited} (it can keep at most [window] packets in flight, so
    it moves [window * mtu] bytes per round trip) or {e bandwidth-limited}
    (the bottleneck link's residual capacity caps it).  Under Poisson
    background load [rho] on the bottleneck, processor-sharing theory
    scales the service time by [1 / (1 - rho)].

    The model ignores losses, retransmissions, and transient queueing, so
    it is a {e lower-bound-flavoured} estimate: simulator FCTs should land
    within a small constant factor above it at low-to-moderate load —
    which is exactly what the validation tests assert. *)

val path_rtt :
  rates:float list -> link_delay:float -> mtu_payload:int -> float
(** Unloaded round-trip time of a full data packet out along the links of
    [rates] (one way) and its 58-byte ack back: per hop, transmission plus
    propagation, store-and-forward. *)

val estimate_fct :
  size:int ->
  mtu_payload:int ->
  window:int ->
  rates:float list ->
  link_delay:float ->
  load:float ->
  float
(** Expected FCT (seconds) of a [size]-byte flow over the path.
    @raise Invalid_argument on non-positive sizes/rates or [load]
    outside [\[0, 1)]. *)

val leaf_spine_path_rates :
  intra_leaf:bool -> access_rate:float -> fabric_rate:float -> float list
(** The one-way link-rate sequence of a leaf-spine path: host→leaf→host
    for [intra_leaf], host→leaf→spine→leaf→host otherwise. *)
