(** End-host transports.

    Two senders are provided, matching the paper's evaluation:

    - a {e windowed transport} in the style of Netbench's simplified
      pFabric transport: a fixed window of unacknowledged packets, per-packet
      acknowledgements on the reverse path, and timeout-driven
      retransmission.  Flow completion is measured at the receiver, when
      the last payload byte arrives.
    - a {e constant-bit-rate (CBR) sender} for the deadline tenant: paced
      packets carrying per-packet deadlines, no acknowledgements, no
      retransmission (a late or lost deadline packet is worthless).

    Ranks are computed at the sending host by the tenant's rank function,
    exactly as §3.1 prescribes ("ranks … always have to be specified before
    reaching QVISOR's pre-processor"). *)

type t

val create : sim:Engine.Sim.t -> unit -> t

val attach : t -> Net.t -> unit
(** Connect the transport to a fabric.  Must be called exactly once,
    before any flow starts.  Wire [Net.create ~deliver:(deliver t)] to
    route arriving packets back into the transport. *)

val deliver : t -> Sched.Packet.t -> unit
(** The fabric's delivery callback. *)

type flow_result = {
  flow_id : int;
  tenant : int;
  size : int;  (** payload bytes *)
  started_at : float;
  completed_at : float;
}

val fct : flow_result -> float
(** Flow completion time in seconds. *)

val start_flow :
  t ->
  tenant:int ->
  ranker:Sched.Ranker.t ->
  src:int ->
  dst:int ->
  size:int ->
  ?window:int ->
  ?rto:float ->
  ?mtu_payload:int ->
  ?deadline:float ->
  on_complete:(flow_result -> unit) ->
  unit ->
  int
(** Start a windowed flow of [size] payload bytes now; returns the flow id.
    [window] is the unacknowledged-packet budget (default 12), [rto] the
    retransmission timeout (default 1 ms), [mtu_payload] the payload bytes
    per packet (default 1460).  [deadline], if given, is stamped on every
    packet (absolute time) for deadline-aware rankers.
    @raise Invalid_argument on non-positive [size] or bad parameters. *)

type cbr_stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable deadline_met : int;
  delay : Engine.Stats.t;  (** one-way packet delay of delivered packets *)
}

val start_cbr :
  t ->
  tenant:int ->
  ranker:Sched.Ranker.t ->
  src:int ->
  dst:int ->
  rate:float ->
  ?mtu_payload:int ->
  ?deadline_budget:float ->
  ?jitter:Engine.Rng.t ->
  until:float ->
  unit ->
  cbr_stats
(** Start a CBR stream of [rate] bits/s from now until absolute time
    [until].  Each packet carries deadline [now + deadline_budget]
    (default 1 ms).  With [jitter], packet gaps are exponentially
    distributed with the same mean (a Poisson stream of the same rate),
    which avoids phase-locking artifacts between synchronized senders. *)

val active_flows : t -> int
(** Windowed flows started but not yet completed at the receiver. *)
