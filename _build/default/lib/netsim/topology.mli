(** Network topologies.

    Nodes are dense integer ids: hosts first ([0 .. num_hosts - 1]), then
    switches.  Links are unidirectional (a full-duplex cable is two links)
    and carry a rate, a propagation delay, and the id of the output port
    that feeds them. *)

type node_kind = Host | Switch

type link = {
  id : int;  (** dense link id, also the output-port id *)
  src : int;
  dst : int;
  rate : float;  (** bits per second *)
  delay : float;  (** propagation delay, seconds *)
}

type t

val create : num_hosts:int -> num_switches:int -> t

val add_link : t -> src:int -> dst:int -> rate:float -> delay:float -> link
(** Add one unidirectional link.
    @raise Invalid_argument on unknown nodes, non-positive rate, or
    negative delay. *)

val add_duplex : t -> a:int -> b:int -> rate:float -> delay:float -> link * link
(** Two links, [a]→[b] and [b]→[a]. *)

val num_nodes : t -> int

val num_hosts : t -> int

val num_links : t -> int

val kind : t -> int -> node_kind

val links_from : t -> int -> link list
(** Outgoing links of a node, in insertion order. *)

val link : t -> int -> link
(** Link by id. *)

val leaf_spine :
  leaves:int ->
  spines:int ->
  hosts_per_leaf:int ->
  access_rate:float ->
  fabric_rate:float ->
  link_delay:float ->
  t
(** The paper's evaluation fabric: every host connects to its leaf at
    [access_rate]; every leaf connects to every spine at [fabric_rate].
    Node layout: hosts [0 .. leaves*hosts_per_leaf - 1] (host [h] hangs off
    leaf [h / hosts_per_leaf]), then leaf switches, then spine switches. *)

val leaf_of_host : leaves:int -> hosts_per_leaf:int -> int -> int
(** Node id of the leaf switch serving a host in a {!leaf_spine} fabric. *)

val pp : Format.formatter -> t -> unit
