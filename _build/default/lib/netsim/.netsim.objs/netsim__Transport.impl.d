lib/netsim/transport.ml: Engine Hashtbl Int List Net Sched Set
