lib/netsim/routing.mli: Topology
