lib/netsim/workload.ml: Array Engine Fun List Transport
