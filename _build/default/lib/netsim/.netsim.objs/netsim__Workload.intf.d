lib/netsim/workload.mli: Engine Sched Transport
