lib/netsim/trace.ml: Buffer Engine Fun In_channel List Printf String Transport Workload
