lib/netsim/fluid.mli:
