lib/netsim/routing.ml: Array Int64 List Queue Topology
