lib/netsim/transport.mli: Engine Net Sched
