lib/netsim/net.mli: Engine Routing Sched Topology
