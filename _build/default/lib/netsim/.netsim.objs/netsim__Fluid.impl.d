lib/netsim/fluid.ml: Float List Sched
