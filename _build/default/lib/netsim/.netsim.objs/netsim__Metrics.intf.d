lib/netsim/metrics.mli: Engine Format Transport
