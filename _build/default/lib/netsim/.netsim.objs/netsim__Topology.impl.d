lib/netsim/topology.ml: Array Engine Format List
