lib/netsim/metrics.ml: Engine Format Transport
