lib/netsim/trace.mli: Engine Sched Transport
