lib/netsim/net.ml: Array Engine Float List Routing Sched Topology
