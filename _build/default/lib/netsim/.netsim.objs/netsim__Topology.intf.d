lib/netsim/topology.mli: Format
