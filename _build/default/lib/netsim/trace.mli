(** Flow traces: record, save, load, and replay workloads.

    The paper's workloads come from production-derived distributions; real
    deployments replay measured traces.  This module defines a minimal
    flow-trace format (one flow per line:
    [start_time src dst size_bytes tenant], '#' comments allowed) so
    experiments can be frozen to disk and replayed bit-for-bit, and so
    external traces can be imported. *)

type flow_spec = {
  start : float;  (** absolute start time, seconds *)
  src : int;
  dst : int;
  size : int;  (** payload bytes *)
  tenant : int;
}

val to_string : flow_spec list -> string

val of_string : string -> (flow_spec list, string) result
(** Parse; errors carry the offending line number. *)

val save : string -> flow_spec list -> unit
(** Write to a file. *)

val load : string -> (flow_spec list, string) result

val synthesize :
  rng:Engine.Rng.t ->
  dist:Engine.Rng.Empirical.dist ->
  num_hosts:int ->
  load:float ->
  access_rate:float ->
  tenant:int ->
  until:float ->
  flow_spec list
(** Generate a Poisson open-loop trace offline (same model as
    {!Workload.poisson_open_loop}), sorted by start time. *)

val replay :
  sim:Engine.Sim.t ->
  transport:Transport.t ->
  ranker_of_tenant:(int -> Sched.Ranker.t) ->
  ?window:int ->
  ?rto:float ->
  on_complete:(Transport.flow_result -> unit) ->
  flow_spec list ->
  unit
(** Schedule every flow of the trace on the simulator.  Flows whose
    [start] is in the simulated past are rejected by the engine, so
    replay before running the simulation. *)
