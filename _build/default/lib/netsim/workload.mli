(** Workload generation for the paper's evaluation.

    The pFabric tenant runs a {e data-mining} workload: flow sizes drawn
    from the heavy-tailed empirical CDF published with pFabric (VL2's
    data-mining cluster), arriving as an open-loop Poisson process whose
    rate is set from a target load on the aggregate access capacity.  The
    EDF tenant runs constant-bit-rate flows between uniformly random
    server pairs.

    The data-mining CDF here is the published one with its tail capped at
    30 MB (the original reaches 1 GB; flows that large never finish within
    a simulated second and only shift absolute FCTs, not the comparisons —
    see DESIGN.md, Substitutions). *)

val data_mining : unit -> Engine.Rng.Empirical.dist
(** Heavy-tailed data-mining flow sizes, in bytes: half the flows are
    ≤ 1.1 KB while >95% of the bytes come from multi-megabyte flows. *)

val web_search : unit -> Engine.Rng.Empirical.dist
(** The DCTCP web-search flow-size distribution (bytes), tail-capped at
    30 MB; used in extension experiments. *)

val flow_arrival_rate :
  load:float -> num_hosts:int -> access_rate:float -> mean_flow_size:float -> float
(** Open-loop arrival rate (flows/s) that drives the hosts' aggregate
    access capacity at [load]: [load * num_hosts * access_rate / (8 * mean)]. *)

type arrivals = {
  mutable flows_started : int;
  mutable bytes_offered : int;
}

val poisson_open_loop :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  transport:Transport.t ->
  tenant:int ->
  ranker:Sched.Ranker.t ->
  num_hosts:int ->
  load:float ->
  access_rate:float ->
  dist:Engine.Rng.Empirical.dist ->
  ?window:int ->
  ?rto:float ->
  until:float ->
  on_complete:(Transport.flow_result -> unit) ->
  unit ->
  arrivals
(** Start a Poisson open-loop flow generator: flows arrive with
    exponential gaps, each between a uniformly random distinct host pair,
    sized from [dist].  Stops creating flows at [until]; flows in flight
    keep running.  Requires [num_hosts >= 2] and [0 < load]. *)

val incast :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  transport:Transport.t ->
  tenant:int ->
  ranker:Sched.Ranker.t ->
  num_hosts:int ->
  fanin:int ->
  bytes_per_sender:int ->
  ?window:int ->
  ?rto:float ->
  ?receiver:int ->
  at:float ->
  on_complete:(Transport.flow_result -> unit) ->
  unit ->
  unit
(** Schedule an incast at absolute time [at]: [fanin] distinct senders
    each start a flow of [bytes_per_sender] to a common receiver
    simultaneously — the classic partition/aggregate pattern that
    stresses the receiver's access queue.  Requires
    [2 <= fanin + 1 <= num_hosts]. *)

val permutation :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  transport:Transport.t ->
  tenant:int ->
  ranker:Sched.Ranker.t ->
  num_hosts:int ->
  bytes_per_flow:int ->
  ?window:int ->
  ?rto:float ->
  at:float ->
  on_complete:(Transport.flow_result -> unit) ->
  unit ->
  unit
(** Schedule a random permutation traffic matrix at time [at]: every host
    sends one flow to a distinct peer (a derangement-free random
    permutation with self-loops skipped), the standard fabric stress
    test. *)

val cbr_tenant :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  transport:Transport.t ->
  tenant:int ->
  ranker:Sched.Ranker.t ->
  num_hosts:int ->
  flows:int ->
  rate:float ->
  ?deadline_budget:float ->
  ?budget_spread:float ->
  ?jitter:bool ->
  until:float ->
  unit ->
  Transport.cbr_stats list
(** Start [flows] CBR streams at [rate] bits/s each, between uniformly
    random distinct host pairs, with per-packet deadlines — the paper's
    second tenant (100 flows at 0.5 Gb/s).  Each stream's budget is drawn
    uniformly from [deadline_budget * (1 ± budget_spread)]
    ([budget_spread] defaults to 0.5) so the EDF rank function actually
    discriminates between flows; a spread of 0 gives every stream the
    same budget.  [jitter] (default true) uses Poisson packet gaps to
    avoid phase locking. *)
