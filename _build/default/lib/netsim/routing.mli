(** Shortest-path routing with ECMP.

    Routes are precomputed with one BFS per destination host.  At each node
    every outgoing link on {e some} shortest path to the destination is an
    equal-cost candidate; the forwarding decision hashes the flow id so a
    flow sticks to one path (per-flow ECMP, as in Netbench and real
    fabrics). *)

type t

val compute : Topology.t -> t
(** Precompute next-hop candidate sets for every (node, destination-host)
    pair. *)

val next_link : t -> node:int -> dst:int -> flow:int -> Topology.link
(** The link on which [node] forwards a packet of [flow] towards host
    [dst].
    @raise Invalid_argument if [dst] is unreachable from [node] or equal
    to [node]. *)

val candidates : t -> node:int -> dst:int -> Topology.link list
(** All equal-cost next-hop links (for tests). *)

val path : t -> src:int -> dst:int -> flow:int -> int list
(** Node sequence a flow's packets traverse, [src] and [dst] included. *)
