(** Flow-completion-time bookkeeping, bucketed by flow size the way the
    paper reports it: small flows (0, 100 KB), large flows [1 MB, ∞),
    plus the in-between and the overall population. *)

type bucket = Small | Medium | Large

val bucket_of_size : int -> bucket
(** [Small] below 100 KB, [Large] at or above 1 MB, [Medium] otherwise. *)

type t

val create : unit -> t

val record : t -> Transport.flow_result -> unit

val fct_stats : t -> bucket -> Engine.Stats.t
(** FCTs (seconds) of completed flows in a bucket. *)

val overall : t -> Engine.Stats.t

val completed : t -> int

val mean_fct_ms : t -> bucket -> float
(** Mean FCT of a bucket in milliseconds ([nan] when the bucket is
    empty) — the y-axis of the paper's Fig. 4. *)

val p99_fct_ms : t -> bucket -> float

val pp_summary : Format.formatter -> t -> unit
