type node_kind = Host | Switch

type link = { id : int; src : int; dst : int; rate : float; delay : float }

type t = {
  num_hosts : int;
  num_switches : int;
  links : link Engine.Vec.t;
  outgoing : link list array; (* reversed insertion order, fixed on read *)
}

let create ~num_hosts ~num_switches =
  if num_hosts < 0 || num_switches < 0 then
    invalid_arg "Topology.create: negative node count";
  {
    num_hosts;
    num_switches;
    links = Engine.Vec.create ();
    outgoing = Array.make (num_hosts + num_switches) [];
  }

let num_nodes t = t.num_hosts + t.num_switches

let num_hosts t = t.num_hosts

let num_links t = Engine.Vec.length t.links

let kind t n =
  if n < 0 || n >= num_nodes t then invalid_arg "Topology.kind: unknown node";
  if n < t.num_hosts then Host else Switch

let add_link t ~src ~dst ~rate ~delay =
  let n = num_nodes t in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Topology.add_link: unknown node";
  if src = dst then invalid_arg "Topology.add_link: self loop";
  if rate <= 0. then invalid_arg "Topology.add_link: non-positive rate";
  if delay < 0. then invalid_arg "Topology.add_link: negative delay";
  let link = { id = Engine.Vec.length t.links; src; dst; rate; delay } in
  Engine.Vec.add_last t.links link;
  t.outgoing.(src) <- link :: t.outgoing.(src);
  link

let add_duplex t ~a ~b ~rate ~delay =
  let ab = add_link t ~src:a ~dst:b ~rate ~delay in
  let ba = add_link t ~src:b ~dst:a ~rate ~delay in
  (ab, ba)

let links_from t n =
  if n < 0 || n >= num_nodes t then
    invalid_arg "Topology.links_from: unknown node";
  List.rev t.outgoing.(n)

let link t id =
  if id < 0 || id >= num_links t then invalid_arg "Topology.link: unknown id";
  Engine.Vec.get t.links id

let leaf_of_host ~leaves ~hosts_per_leaf h =
  let num_hosts = leaves * hosts_per_leaf in
  if h < 0 || h >= num_hosts then
    invalid_arg "Topology.leaf_of_host: not a host";
  num_hosts + (h / hosts_per_leaf)

let leaf_spine ~leaves ~spines ~hosts_per_leaf ~access_rate ~fabric_rate
    ~link_delay =
  if leaves <= 0 || spines <= 0 || hosts_per_leaf <= 0 then
    invalid_arg "Topology.leaf_spine: non-positive dimension";
  let num_hosts = leaves * hosts_per_leaf in
  let t = create ~num_hosts ~num_switches:(leaves + spines) in
  for h = 0 to num_hosts - 1 do
    let leaf = leaf_of_host ~leaves ~hosts_per_leaf h in
    ignore (add_duplex t ~a:h ~b:leaf ~rate:access_rate ~delay:link_delay)
  done;
  for l = 0 to leaves - 1 do
    for s = 0 to spines - 1 do
      let leaf = num_hosts + l in
      let spine = num_hosts + leaves + s in
      ignore (add_duplex t ~a:leaf ~b:spine ~rate:fabric_rate ~delay:link_delay)
    done
  done;
  t

let pp ppf t =
  Format.fprintf ppf "topology(hosts=%d switches=%d links=%d)" t.num_hosts
    t.num_switches (num_links t)
