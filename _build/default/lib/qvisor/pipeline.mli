(** Compiling the joint scheduling function to a match-action pipeline
    (§5, "Compiling scheduling policies into hardware").

    Programmable switch pipelines cannot divide: a per-packet action is
    limited to integer multiply-shift-add.  This module compiles a
    synthesized plan's transformations into a one-stage match-action
    table:

    - {e match}: the packet's tenant id (exact match);
    - {e action}: [rank := clamp(label, lo, hi) * mult >> rshift + add],
      with [mult] capped at [max_mult] (hardware multiplier width).

    Because [mult / 2^rshift] only approximates the normalization slope
    [dst_width / src_width], compiled ranks can deviate from the exact
    transformation.  The compiler reports the {e worst-case rank error}
    per entry — computed exactly by scanning the quantization breakpoints
    — and refuses configurations whose error would break a strict-tier
    boundary (the deviation could push a packet into a neighbouring
    band). *)

type action = {
  clamp_lo : int;  (** clamp the label into the declared source range *)
  clamp_hi : int;
  mult : int;
  rshift : int;
  add : int;
}

type entry = {
  tenant_id : int;
  action : action;
  worst_error : int;
      (** max |compiled - exact| over the whole source range *)
}

type resources = {
  max_mult : int;  (** multiplier magnitude bound, e.g. 2^16 *)
  max_rshift : int;  (** barrel-shifter width, e.g. 31 *)
  max_entries : int;  (** table capacity *)
}

val default_resources : resources
(** [{max_mult = 65536; max_rshift = 31; max_entries = 1024}] — a Tofino
    -class stage. *)

type program = {
  entries : entry list;
  fallback : action;  (** applied to unknown tenant ids *)
  worst_error : int;  (** max over entries *)
}

val compile :
  ?resources:resources -> Synthesizer.plan -> (program, string) result
(** Compile every tenant's transformation.  Fails when the table
    overflows, a multiplier cannot be represented, or the worst-case
    error of some entry reaches its band's distance to the next strict
    tier (which would let packets defect across an isolation boundary). *)

val apply_action : action -> int -> int
(** Execute one action in software (bit-exact model of the hardware). *)

val execute : program -> Sched.Packet.t -> unit
(** The compiled pre-processor: look up the tenant, run the action on the
    label, store the scheduling rank. *)

val pp_program : Format.formatter -> program -> unit
