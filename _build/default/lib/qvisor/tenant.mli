(** Tenant scheduling specifications.

    Per §3.1, a tenant is a traffic segment plus a scheduling algorithm:
    the tenant tags its packets with a tenant identifier and a rank
    computed by its rank function.  For the synthesizer, a tenant also
    declares the {e range} its raw ranks live in (the paper's "rank
    distributions … bounded and known in advance") and a weight used when
    sharing a band with other tenants. *)

type t = {
  id : int;  (** the tenant identifier carried by packets *)
  name : string;  (** the identifier used in the operator's policy string *)
  algorithm : string;  (** descriptive rank-function name (e.g. "pfabric") *)
  rank_lo : int;  (** smallest raw rank the tenant emits *)
  rank_hi : int;  (** largest raw rank the tenant emits *)
  weight : float;  (** share weight within a [+] group (default 1.0) *)
}

val make :
  ?algorithm:string ->
  ?rank_lo:int ->
  ?rank_hi:int ->
  ?weight:float ->
  id:int ->
  name:string ->
  unit ->
  t
(** Defaults: [algorithm = "custom"], range [0, 65535], weight 1.0.
    @raise Invalid_argument if [rank_lo > rank_hi], the name is empty,
    or [weight <= 0]. *)

val range_width : t -> int
(** [rank_hi - rank_lo + 1]. *)

val pp : Format.formatter -> t -> unit
