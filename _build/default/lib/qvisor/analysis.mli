(** Static worst-case analysis of synthesized plans (the paper's Idea 2,
    offline flavour).

    The analyzer computes, by interval analysis over the transformations,
    the band each tenant's packets can occupy after pre-processing, and
    checks the operator's policy against the worst case: a [>>] relation
    holds only if even the {e worst} transformed rank of the higher side
    beats the {e best} transformed rank of the lower side.

    Constraints are checked between {e groups} — the operands of each
    policy operator — not tenant pairs: in [T1 + (T2 >> T3)] the sharing
    requirement binds T1 against the {e whole} sub-policy [(T2 >> T3)]
    (whose band is the union of its members'), while the nested strict
    requirement binds T2 against T3. *)

type relation =
  | Isolated  (** bands disjoint in the right order: [>>] guaranteed *)
  | Preferred of float
      (** bands overlap but the first starts strictly lower; the float is
          the fraction of the first band's width that is contested *)
  | Shared of float
      (** bands start at the same rank; the float is the Jaccard overlap
          of the two bands (1.0 = identical) *)
  | Inverted
      (** the supposedly-preferred band starts {e above} the other — a
          misconfiguration the synthesizer should never emit *)

type group = {
  label : string;  (** the operand, rendered in policy syntax *)
  members : Tenant.t list;
}

type pair_report = {
  high : group;  (** the operand the policy favours (or lists first) *)
  low : group;
  required : [ `Strict | `Prefer | `Share ];
  actual : relation;
  satisfied : bool;
}

type report = {
  pairs : pair_report list;
  feasible : bool;  (** every policy requirement satisfied in the worst case *)
  violations : string list;
}

val effective_band : Synthesizer.plan -> Tenant.t -> int * int
(** Worst-case transformed rank interval of a tenant's traffic. *)

val group_band : Synthesizer.plan -> group -> int * int
(** Union interval of the members' effective bands. *)

val relation_between : Synthesizer.plan -> Tenant.t -> Tenant.t -> relation
(** Worst-case relation between two individual tenants. *)

val check : Synthesizer.plan -> report
(** Analyze every operand pair the policy relates (directly or through
    nesting) and report worst-case guarantees. *)

val starvation_risk : Synthesizer.plan -> Tenant.t list
(** Tenants that can be starved indefinitely under worst-case pressure:
    those strictly below some other tenant ([>>]).  This is by design —
    the analysis names them so the operator can see the consequence. *)

val pp_report : Format.formatter -> report -> unit
