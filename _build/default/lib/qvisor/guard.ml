type reason = Out_of_range of float | Top_band_flooding of float

type verdict = Conforming | Suspicious of reason list | Malicious of reason list

type config = {
  window : int;
  out_of_range_threshold : float;
  flooding_threshold : float;
  flooding_exempt : string list;
}

let default_config =
  {
    window = 256;
    out_of_range_threshold = 0.05;
    flooding_threshold = 0.5;
    flooding_exempt = [ "pfabric"; "srpt"; "edf"; "lstf" ];
  }

type tenant_state = {
  spec : Tenant.t;
  mutable in_window : int; (* packets *)
  mutable window_bytes : int;
  mutable out_of_range : int; (* bytes *)
  mutable top_band : int; (* bytes *)
  mutable strikes : int;
  mutable last_reasons : reason list;
}

type t = {
  config : config;
  states : (int, tenant_state) Hashtbl.t;
}

let fresh_state spec =
  {
    spec;
    in_window = 0;
    window_bytes = 0;
    out_of_range = 0;
    top_band = 0;
    strikes = 0;
    last_reasons = [];
  }

let create ?(config = default_config) ~tenants () =
  if config.window <= 0 then invalid_arg "Guard.create: window <= 0";
  let states = Hashtbl.create 16 in
  List.iter
    (fun spec -> Hashtbl.replace states spec.Tenant.id (fresh_state spec))
    tenants;
  { config; states }

let watch t spec = Hashtbl.replace t.states spec.Tenant.id (fresh_state spec)

let unwatch t ~tenant_id = Hashtbl.remove t.states tenant_id

(* The "best decile": the lowest tenth of the tenant's declared range —
   the ranks that always win within the tenant's own band. *)
let top_band_cutoff spec =
  spec.Tenant.rank_lo + (max 1 (Tenant.range_width spec / 10)) - 1

let close_window t s =
  (* Fractions are byte-weighted so that small control packets (acks ride
     at the tenant's best rank by design) cannot trip the detectors. *)
  let n = float_of_int (max 1 s.window_bytes) in
  let oor = float_of_int s.out_of_range /. n in
  let flood = float_of_int s.top_band /. n in
  let flooding_applies =
    not (List.mem s.spec.Tenant.algorithm t.config.flooding_exempt)
  in
  let reasons =
    (if oor > t.config.out_of_range_threshold then [ Out_of_range oor ] else [])
    @
    if flooding_applies && flood > t.config.flooding_threshold then
      [ Top_band_flooding flood ]
    else []
  in
  (match reasons with
  | [] -> s.strikes <- max 0 (s.strikes - 1)
  | _ :: _ -> s.strikes <- s.strikes + 1);
  s.last_reasons <- reasons;
  s.in_window <- 0;
  s.window_bytes <- 0;
  s.out_of_range <- 0;
  s.top_band <- 0

let observe t (p : Sched.Packet.t) =
  match Hashtbl.find_opt t.states p.Sched.Packet.tenant with
  | None -> () (* undeclared tenants are already parked by the fallback *)
  | Some s ->
    let r = p.Sched.Packet.label in
    let size = p.Sched.Packet.size in
    s.in_window <- s.in_window + 1;
    s.window_bytes <- s.window_bytes + size;
    if r < s.spec.Tenant.rank_lo || r > s.spec.Tenant.rank_hi then
      s.out_of_range <- s.out_of_range + size
    else if r <= top_band_cutoff s.spec then s.top_band <- s.top_band + size;
    if s.in_window >= t.config.window then close_window t s

let verdict t ~tenant_id =
  match Hashtbl.find_opt t.states tenant_id with
  | None -> Conforming
  | Some s ->
    if s.strikes >= 3 then Malicious s.last_reasons
    else if s.strikes >= 1 then Suspicious s.last_reasons
    else Conforming

let mitigation t ~tenant_id =
  match Hashtbl.find_opt t.states tenant_id with
  | None -> Transform.Identity
  | Some s -> (
    let lo = s.spec.Tenant.rank_lo and hi = s.spec.Tenant.rank_hi in
    match verdict t ~tenant_id with
    | Conforming -> Transform.Identity
    | Suspicious _ ->
      (* Clamp escapes back into the declared range. *)
      Transform.normalize ~src:(lo, hi) ~dst:(lo, hi) ()
    | Malicious _ ->
      (* Stop the attack: everything this tenant sends competes at its own
         worst declared rank. *)
      Transform.normalize ~src:(lo, hi) ~dst:(hi, hi) ~levels:1 ())

let process t pre (p : Sched.Packet.t) =
  observe t p;
  let conditioning = mitigation t ~tenant_id:p.Sched.Packet.tenant in
  Preprocessor.process_conditioned pre ~conditioning p

let strikes t ~tenant_id =
  match Hashtbl.find_opt t.states tenant_id with
  | None -> 0
  | Some s -> s.strikes
