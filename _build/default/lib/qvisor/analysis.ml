type relation =
  | Isolated
  | Preferred of float
  | Shared of float
  | Inverted

type group = { label : string; members : Tenant.t list }

type pair_report = {
  high : group;
  low : group;
  required : [ `Strict | `Prefer | `Share ];
  actual : relation;
  satisfied : bool;
}

type report = {
  pairs : pair_report list;
  feasible : bool;
  violations : string list;
}

let tenant_of_plan plan name =
  let a =
    List.find
      (fun a -> a.Synthesizer.tenant.Tenant.name = name)
      plan.Synthesizer.assignments
  in
  a.Synthesizer.tenant

let effective_band plan (tenant : Tenant.t) =
  let transform = Synthesizer.transform_of plan ~tenant_id:tenant.Tenant.id in
  Transform.range transform (tenant.Tenant.rank_lo, tenant.Tenant.rank_hi)

let group_band plan g =
  match g.members with
  | [] -> invalid_arg "Analysis.group_band: empty group"
  | members ->
    List.fold_left
      (fun (lo, hi) tenant ->
        let tlo, thi = effective_band plan tenant in
        (min lo tlo, max hi thi))
      (max_int, min_int)
      (List.map Fun.id members)

let relation_of_bands (la, ha) (lb, hb) =
  if ha < lb then Isolated
  else if la < lb then begin
    let contested = float_of_int (min ha hb - lb + 1) in
    let width_a = float_of_int (ha - la + 1) in
    Preferred (Float.max 0. (contested /. width_a))
  end
  else if la = lb then begin
    let inter = float_of_int (max 0 (min ha hb - max la lb + 1)) in
    let union = float_of_int (max ha hb - min la lb + 1) in
    Shared (inter /. union)
  end
  else Inverted

let relation_between plan a b =
  relation_of_bands (effective_band plan a) (effective_band plan b)

let satisfied required actual =
  match (required, actual) with
  | `Strict, Isolated -> true
  | `Strict, (Preferred _ | Shared _ | Inverted) -> false
  | `Prefer, (Isolated | Preferred _) -> true
  | `Prefer, (Shared _ | Inverted) -> false
  | `Share, Shared _ -> true
  | `Share, (Isolated | Preferred _ | Inverted) -> false

let group_of_node plan node =
  {
    label = Policy.to_string node;
    members = List.map (tenant_of_plan plan) (Policy.tenant_names node);
  }

(* Collect (high-operand, low-operand, required) constraints implied by
   the policy tree: one constraint per ordered operand pair of every
   operator node, plus whatever the operands imply recursively. *)
let rec constraints node =
  let cross required operands =
    let rec pairs = function
      | [] -> []
      | g :: rest -> List.map (fun g' -> (g, g', required)) rest @ pairs rest
    in
    pairs operands
  in
  match node with
  | Policy.Tenant _ -> []
  | Policy.Share members ->
    cross `Share members @ List.concat_map constraints members
  | Policy.Prefer groups ->
    cross `Prefer groups @ List.concat_map constraints groups
  | Policy.Strict tiers ->
    cross `Strict tiers @ List.concat_map constraints tiers

let check plan =
  let pairs =
    List.map
      (fun (hi_node, lo_node, required) ->
        let high = group_of_node plan hi_node in
        let low = group_of_node plan lo_node in
        let actual =
          relation_of_bands (group_band plan high) (group_band plan low)
        in
        { high; low; required; actual; satisfied = satisfied required actual })
      (constraints plan.Synthesizer.policy)
  in
  let violations =
    List.filter_map
      (fun p ->
        if p.satisfied then None
        else
          Some
            (Printf.sprintf "(%s) vs (%s): required %s not met in the worst case"
               p.high.label p.low.label
               (match p.required with
               | `Strict -> "strict priority (>>)"
               | `Prefer -> "preference (>)"
               | `Share -> "sharing (+)")))
      pairs
  in
  { pairs; feasible = violations = []; violations }

let starvation_risk plan =
  let rec lower_tiers = function
    | Policy.Tenant _ -> []
    | Policy.Share l | Policy.Prefer l -> List.concat_map lower_tiers l
    | Policy.Strict (first :: rest) ->
      List.concat_map Policy.tenant_names rest
      @ List.concat_map lower_tiers (first :: rest)
    | Policy.Strict [] -> []
  in
  lower_tiers plan.Synthesizer.policy
  |> List.sort_uniq compare
  |> List.map (tenant_of_plan plan)

let pp_relation ppf = function
  | Isolated -> Format.pp_print_string ppf "isolated"
  | Preferred f -> Format.fprintf ppf "preferred (%.0f%% contested)" (100. *. f)
  | Shared f -> Format.fprintf ppf "shared (%.0f%% aligned)" (100. *. f)
  | Inverted -> Format.pp_print_string ppf "INVERTED"

let pp_report ppf r =
  Format.fprintf ppf "@[<v>feasible: %b" r.feasible;
  List.iter
    (fun p ->
      Format.fprintf ppf "@,%s vs %s: %a%s" p.high.label p.low.label
        pp_relation p.actual
        (if p.satisfied then "" else "  [VIOLATION]"))
    r.pairs;
  Format.fprintf ppf "@]"
