(** Worst-case delay bounds via network calculus.

    The paper's offline analysis (Idea 2) calls for reasoning about the
    {e worst case} of combined workloads.  Band isolation gives ordering
    guarantees; this module adds {e timing} guarantees: given per-tenant
    token-bucket arrival envelopes (burst [sigma] bytes, rate [rho]
    bytes/s — the standard (σ, ρ) characterization), it derives each
    tenant's worst-case queueing delay at a link scheduled by the
    synthesized plan.

    For a tenant in strict tier [k] of a work-conserving scheduler of
    capacity [c] the classic bound applies: the tenant's backlog clears
    only after all higher-tier backlog, so

    {v delay <= (Σ_{i<=k} sigma_i + mtu) / (c - Σ_{i<k} rho_i) v}

    provided the higher tiers leave capacity ([Σ_{i<k} rho_i < c]) — the
    [mtu] term accounts for one in-flight lower-priority packet
    (non-preemption).  Tenants sharing a tier are mutually
    FIFO-equivalent in the worst case, so their envelopes pool. *)

type envelope = {
  sigma : float;  (** burst, bytes *)
  rho : float;  (** sustained rate, bytes/s *)
}

val envelope : sigma:float -> rho:float -> envelope
(** @raise Invalid_argument on negative burst or non-positive rate. *)

type bound =
  | Bounded of float  (** worst-case queueing delay, seconds *)
  | Unstable
      (** the tenant's tier (plus everything above it) over-subscribes
          the link: no finite worst case exists *)

val tier_of_tenant : Synthesizer.plan -> tenant_id:int -> int
(** Index of the top-level strict tier containing the tenant (0 =
    highest priority).
    @raise Invalid_argument for an unknown tenant. *)

val delay_bound :
  plan:Synthesizer.plan ->
  envelopes:(int * envelope) list ->
  link_rate:float ->
  ?mtu_bytes:int ->
  tenant_id:int ->
  unit ->
  bound
(** Worst-case delay of a tenant's packets at a link of [link_rate]
    (bits/s) scheduled according to [plan]'s strict tiers.  [envelopes]
    maps tenant ids to their declared arrival envelopes; a tenant with no
    envelope contributes nothing (treat with care).  [mtu_bytes] defaults
    to 1518.
    @raise Invalid_argument on bad rates or an unknown [tenant_id]. *)

val report :
  plan:Synthesizer.plan ->
  envelopes:(int * envelope) list ->
  link_rate:float ->
  ?mtu_bytes:int ->
  unit ->
  (Tenant.t * bound) list
(** Bounds for every tenant of the plan, in tenant-id order. *)

val pp_bound : Format.formatter -> bound -> unit
