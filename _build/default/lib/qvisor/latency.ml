type envelope = { sigma : float; rho : float }

let envelope ~sigma ~rho =
  if sigma < 0. then invalid_arg "Latency.envelope: negative burst";
  if rho <= 0. then invalid_arg "Latency.envelope: non-positive rate";
  { sigma; rho }

type bound = Bounded of float | Unstable

let tier_of_tenant (plan : Synthesizer.plan) ~tenant_id =
  let tiers = Policy.strict_tiers plan.Synthesizer.policy in
  let name =
    match
      List.find_opt
        (fun a -> a.Synthesizer.tenant.Tenant.id = tenant_id)
        plan.Synthesizer.assignments
    with
    | Some a -> a.Synthesizer.tenant.Tenant.name
    | None -> invalid_arg "Latency.tier_of_tenant: unknown tenant"
  in
  let rec find k = function
    | [] -> invalid_arg "Latency.tier_of_tenant: tenant not in any tier"
    | tier :: rest ->
      if List.mem name (Policy.tenant_names tier) then k else find (k + 1) rest
  in
  find 0 tiers

(* Pool the envelopes of every tenant in tiers [0..k]. *)
let pooled_envelopes (plan : Synthesizer.plan) ~envelopes ~upto_tier =
  let tiers = Policy.strict_tiers plan.Synthesizer.policy in
  let tenants_by_name =
    List.map
      (fun a -> (a.Synthesizer.tenant.Tenant.name, a.Synthesizer.tenant))
      plan.Synthesizer.assignments
  in
  let sigma_total = ref 0. in
  let rho_same_or_higher = ref 0. in
  let rho_strictly_higher = ref 0. in
  List.iteri
    (fun k tier ->
      if k <= upto_tier then
        List.iter
          (fun name ->
            match List.assoc_opt name tenants_by_name with
            | None -> ()
            | Some tenant -> (
              match List.assoc_opt tenant.Tenant.id envelopes with
              | None -> ()
              | Some e ->
                sigma_total := !sigma_total +. e.sigma;
                rho_same_or_higher := !rho_same_or_higher +. e.rho;
                if k < upto_tier then
                  rho_strictly_higher := !rho_strictly_higher +. e.rho))
          (Policy.tenant_names tier))
    tiers;
  (!sigma_total, !rho_strictly_higher, !rho_same_or_higher)

let delay_bound ~plan ~envelopes ~link_rate ?(mtu_bytes = 1518) ~tenant_id () =
  if link_rate <= 0. then invalid_arg "Latency.delay_bound: link_rate <= 0";
  if mtu_bytes <= 0 then invalid_arg "Latency.delay_bound: mtu <= 0";
  let tier = tier_of_tenant plan ~tenant_id in
  let capacity_bytes = link_rate /. 8. in
  let sigma, rho_higher, rho_incl =
    pooled_envelopes plan ~envelopes ~upto_tier:tier
  in
  (* Stability needs the tenant's own tier (plus everything above) to fit
     within the link; the service left after higher tiers is what drains
     this tier's pooled burst. *)
  if rho_incl >= capacity_bytes then Unstable
  else begin
    let residual = capacity_bytes -. rho_higher in
    Bounded ((sigma +. float_of_int mtu_bytes) /. residual)
  end

let report ~plan ~envelopes ~link_rate ?mtu_bytes () =
  plan.Synthesizer.assignments
  |> List.map (fun a ->
         let tenant = a.Synthesizer.tenant in
         ( tenant,
           delay_bound ~plan ~envelopes ~link_rate ?mtu_bytes
             ~tenant_id:tenant.Tenant.id () ))

let pp_bound ppf = function
  | Bounded d -> Format.fprintf ppf "%.3f ms" (1e3 *. d)
  | Unstable -> Format.pp_print_string ppf "unstable (over-subscribed)"
