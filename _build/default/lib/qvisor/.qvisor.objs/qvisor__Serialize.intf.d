lib/qvisor/serialize.mli: Analysis Engine Policy Synthesizer Tenant Transform
