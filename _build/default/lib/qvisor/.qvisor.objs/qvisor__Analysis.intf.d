lib/qvisor/analysis.mli: Format Synthesizer Tenant
