lib/qvisor/latency.ml: Format List Policy Synthesizer Tenant
