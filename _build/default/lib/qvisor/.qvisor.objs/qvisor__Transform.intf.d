lib/qvisor/transform.mli: Format
