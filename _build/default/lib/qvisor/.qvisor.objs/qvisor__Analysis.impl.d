lib/qvisor/analysis.ml: Float Format Fun List Policy Printf Synthesizer Tenant Transform
