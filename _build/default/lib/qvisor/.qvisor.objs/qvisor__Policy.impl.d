lib/qvisor/policy.ml: Format List Printf String
