lib/qvisor/hypervisor.mli: Analysis Deploy Guard Latency Pipeline Sched Synthesizer Tenant
