lib/qvisor/pipeline.mli: Format Sched Synthesizer
