lib/qvisor/runtime.mli: Policy Preprocessor Sched Synthesizer Tenant
