lib/qvisor/synthesizer.mli: Format Policy Tenant Transform
