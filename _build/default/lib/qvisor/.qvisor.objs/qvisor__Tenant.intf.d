lib/qvisor/tenant.mli: Format
