lib/qvisor/transform.ml: Format
