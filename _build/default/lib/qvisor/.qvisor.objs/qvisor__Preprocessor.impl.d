lib/qvisor/preprocessor.ml: Array Hashtbl List Sched Synthesizer Tenant Transform
