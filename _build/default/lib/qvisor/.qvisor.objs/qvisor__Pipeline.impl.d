lib/qvisor/pipeline.ml: Float Format List Policy Printf Sched Synthesizer Tenant Transform
