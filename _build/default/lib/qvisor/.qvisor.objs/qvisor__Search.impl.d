lib/qvisor/search.ml: Array Deploy Format List Policy Synthesizer
