lib/qvisor/deploy.ml: Array Hashtbl List Policy Printf Sched Synthesizer Tenant
