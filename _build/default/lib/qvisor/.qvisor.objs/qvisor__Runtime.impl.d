lib/qvisor/runtime.ml: Engine Hashtbl List Option Policy Preprocessor Printf Sched Synthesizer Tenant
