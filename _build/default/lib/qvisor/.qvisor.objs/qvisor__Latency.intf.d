lib/qvisor/latency.mli: Format Synthesizer Tenant
