lib/qvisor/synthesizer.ml: Float Format List Option Policy Result Tenant Transform
