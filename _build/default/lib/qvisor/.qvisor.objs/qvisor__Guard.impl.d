lib/qvisor/guard.ml: Hashtbl List Preprocessor Sched Tenant Transform
