lib/qvisor/hypervisor.ml: Analysis Deploy Guard Latency Option Pipeline Policy Result Runtime
