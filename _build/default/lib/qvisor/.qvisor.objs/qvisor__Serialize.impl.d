lib/qvisor/serialize.ml: Analysis Engine List Option Policy Printf Result Synthesizer Tenant Transform
