lib/qvisor/preprocessor.mli: Sched Synthesizer Transform
