lib/qvisor/guard.mli: Preprocessor Sched Tenant Transform
