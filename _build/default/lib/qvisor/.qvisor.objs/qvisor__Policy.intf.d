lib/qvisor/policy.mli: Format
