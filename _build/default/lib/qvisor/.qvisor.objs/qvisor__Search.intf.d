lib/qvisor/search.mli: Format Policy Synthesizer Tenant
