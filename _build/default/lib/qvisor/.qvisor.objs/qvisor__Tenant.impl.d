lib/qvisor/tenant.ml: Format
