lib/qvisor/deploy.mli: Policy Sched Synthesizer Tenant
