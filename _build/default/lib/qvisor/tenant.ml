type t = {
  id : int;
  name : string;
  algorithm : string;
  rank_lo : int;
  rank_hi : int;
  weight : float;
}

let make ?(algorithm = "custom") ?(rank_lo = 0) ?(rank_hi = 65535)
    ?(weight = 1.0) ~id ~name () =
  if name = "" then invalid_arg "Tenant.make: empty name";
  if rank_lo > rank_hi then invalid_arg "Tenant.make: rank_lo > rank_hi";
  if weight <= 0. then invalid_arg "Tenant.make: weight <= 0";
  { id; name; algorithm; rank_lo; rank_hi; weight }

let range_width t = t.rank_hi - t.rank_lo + 1

let pp ppf t =
  Format.fprintf ppf "%s(id=%d %s ranks=[%d,%d] w=%g)" t.name t.id t.algorithm
    t.rank_lo t.rank_hi t.weight
