type t = {
  runtime : Runtime.t;
  guard : Guard.t option;
  mutable processed : int;
}

let parse_policy s =
  match Policy.parse s with
  | Ok p -> Ok p
  | Error e -> Error ("policy: " ^ e)

let create ?config ?guard ?(guarded = true) ~tenants ~policy () =
  match parse_policy policy with
  | Error _ as e -> e
  | Ok policy -> (
    match Runtime.create ?config ~tenants ~policy () with
    | runtime ->
      let guard =
        if guarded then Some (Guard.create ?config:guard ~tenants ())
        else None
      in
      Ok { runtime; guard; processed = 0 }
    | exception Invalid_argument e -> Error e)

let create_exn ?config ?guard ?guarded ~tenants ~policy () =
  match create ?config ?guard ?guarded ~tenants ~policy () with
  | Ok t -> t
  | Error e -> invalid_arg ("Hypervisor.create: " ^ e)

let process t p =
  t.processed <- t.processed + 1;
  match t.guard with
  | Some guard ->
    Runtime.observe t.runtime p;
    Guard.process guard (Runtime.preprocessor t.runtime) p
  | None -> Runtime.process t.runtime p

let make_scheduler t backend =
  Deploy.instantiate ~plan:(Runtime.plan t.runtime) backend

let plan t = Runtime.plan t.runtime

let analyze t = Analysis.check (plan t)

let delay_bounds t ~envelopes ~link_rate =
  Latency.report ~plan:(plan t) ~envelopes ~link_rate ()

let compile_pipeline t ?resources () = Pipeline.compile ?resources (plan t)

let verdict t ~tenant_id =
  match t.guard with
  | None -> Guard.Conforming
  | Some guard -> Guard.verdict guard ~tenant_id

let add_tenant t tenant ?policy () =
  let policy =
    match policy with
    | None -> Ok None
    | Some s -> Result.map Option.some (parse_policy s)
  in
  match policy with
  | Error _ as e -> Result.map ignore e
  | Ok policy -> (
    match Runtime.add_tenant t.runtime tenant ?policy () with
    | Ok () ->
      Option.iter (fun guard -> Guard.watch guard tenant) t.guard;
      Ok ()
    | Error _ as e -> e)

let remove_tenant t ~tenant_id ?policy () =
  let policy =
    match policy with
    | None -> Ok None
    | Some s -> Result.map Option.some (parse_policy s)
  in
  match policy with
  | Error _ as e -> Result.map ignore e
  | Ok policy -> (
    match Runtime.remove_tenant t.runtime ~tenant_id ?policy () with
    | Ok () ->
      Option.iter (fun guard -> Guard.unwatch guard ~tenant_id) t.guard;
      Ok ()
    | Error _ as e -> e)

let refresh t = Runtime.refresh t.runtime

let packets_processed t = t.processed
