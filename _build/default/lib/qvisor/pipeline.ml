type action = {
  clamp_lo : int;
  clamp_hi : int;
  mult : int;
  rshift : int;
  add : int;
}

type entry = { tenant_id : int; action : action; worst_error : int }

type resources = { max_mult : int; max_rshift : int; max_entries : int }

let default_resources = { max_mult = 65536; max_rshift = 31; max_entries = 1024 }

type program = { entries : entry list; fallback : action; worst_error : int }

let apply_action a x =
  let clamped = max a.clamp_lo (min a.clamp_hi x) in
  ((clamped * a.mult) asr a.rshift) + a.add

(* Widest source range we are willing to verify exhaustively. *)
let max_scan_width = 1 lsl 22

(* Fit mult/2^rshift to the slope: the largest shift whose rounded
   multiplier still fits the hardware multiplier. *)
let fit_slope ~resources slope =
  if slope <= 0. then Some (0, 0)
  else begin
    let rec search rshift =
      if rshift < 0 then None
      else begin
        let mult = Float.round (slope *. float_of_int (1 lsl rshift)) in
        if mult <= float_of_int resources.max_mult && mult >= 1. then
          Some (int_of_float mult, rshift)
        else search (rshift - 1)
      end
    in
    search resources.max_rshift
  end

let compile_entry ~resources (a : Synthesizer.assignment) ~tier_lo ~tier_hi =
  let tenant = a.Synthesizer.tenant in
  let lo = tenant.Tenant.rank_lo and hi = tenant.Tenant.rank_hi in
  let width = hi - lo in
  if width > max_scan_width then
    Error
      (Printf.sprintf "tenant %s: source range too wide to verify (%d)"
         tenant.Tenant.name width)
  else begin
    let exact x = Transform.apply a.Synthesizer.transform x in
    let slope =
      if width = 0 then 0.
      else float_of_int (exact hi - exact lo) /. float_of_int width
    in
    match fit_slope ~resources slope with
    | None ->
      Error
        (Printf.sprintf "tenant %s: slope %g not representable"
           tenant.Tenant.name slope)
    | Some (mult, rshift) ->
      let add = exact lo - ((lo * mult) asr rshift) in
      let action = { clamp_lo = lo; clamp_hi = hi; mult; rshift; add } in
      (* Exhaustive verification over the declared source range. *)
      let worst = ref 0 in
      let out_lo = ref max_int and out_hi = ref min_int in
      for x = lo to hi do
        let compiled = apply_action action x in
        let err = abs (compiled - exact x) in
        if err > !worst then worst := err;
        if compiled < !out_lo then out_lo := compiled;
        if compiled > !out_hi then out_hi := compiled
      done;
      if !out_lo < tier_lo || !out_hi > tier_hi then
        Error
          (Printf.sprintf
             "tenant %s: compiled ranks [%d,%d] escape tier [%d,%d] — \
              approximation would break isolation"
             tenant.Tenant.name !out_lo !out_hi tier_lo tier_hi)
      else
        Ok { tenant_id = tenant.Tenant.id; action; worst_error = !worst }
  end

(* The strict-tier span containing each tenant (compiled ranks must stay
   inside it to preserve isolation). *)
let tier_span_of (plan : Synthesizer.plan) tenant_name =
  let tiers = Policy.strict_tiers plan.Synthesizer.policy in
  let band_of name =
    let a =
      List.find
        (fun a -> a.Synthesizer.tenant.Tenant.name = name)
        plan.Synthesizer.assignments
    in
    a.Synthesizer.band
  in
  let tier =
    List.find (fun t -> List.mem tenant_name (Policy.tenant_names t)) tiers
  in
  List.fold_left
    (fun (lo, hi) name ->
      let b = band_of name in
      (min lo b.Synthesizer.lo, max hi b.Synthesizer.hi))
    (max_int, min_int)
    (Policy.tenant_names tier)

let compile ?(resources = default_resources) (plan : Synthesizer.plan) =
  let n = List.length plan.Synthesizer.assignments in
  if n + 1 > resources.max_entries then
    Error
      (Printf.sprintf "table overflow: %d entries needed, %d available"
         (n + 1) resources.max_entries)
  else begin
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | a :: rest -> (
        let tier_lo, tier_hi =
          tier_span_of plan a.Synthesizer.tenant.Tenant.name
        in
        match compile_entry ~resources a ~tier_lo ~tier_hi with
        | Error _ as e -> e
        | Ok entry -> build (entry :: acc) rest)
    in
    match build [] plan.Synthesizer.assignments with
    | Error e -> Error e
    | Ok entries ->
      (* Unknown tenants park at the very worst rank, as in the plan. *)
      let fallback =
        {
          clamp_lo = 0;
          clamp_hi = 0;
          mult = 0;
          rshift = 0;
          add = plan.Synthesizer.rank_hi;
        }
      in
      let worst_error =
        List.fold_left (fun acc (e : entry) -> max acc e.worst_error) 0 entries
      in
      Ok { entries; fallback; worst_error }
  end

let execute program (p : Sched.Packet.t) =
  let action =
    match
      List.find_opt
        (fun e -> e.tenant_id = p.Sched.Packet.tenant)
        program.entries
    with
    | Some e -> e.action
    | None -> program.fallback
  in
  p.Sched.Packet.rank <- apply_action action p.Sched.Packet.label

let pp_program ppf program =
  Format.fprintf ppf "@[<v>match-action table (%d entries, worst error %d):"
    (List.length program.entries)
    program.worst_error;
  List.iter
    (fun (e : entry) ->
      Format.fprintf ppf
        "@,tenant %d -> clamp[%d,%d]; rank := (label * %d) >> %d %+d   \
         (err <= %d)"
        e.tenant_id e.action.clamp_lo e.action.clamp_hi e.action.mult
        e.action.rshift e.action.add e.worst_error)
    program.entries;
  Format.fprintf ppf "@,default -> rank := %d@]" program.fallback.add
