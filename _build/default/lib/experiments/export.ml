let fig4_header =
  "scheme,load,small_mean_ms,small_p99_ms,large_mean_ms,large_p99_ms,\
   overall_mean_ms,flows_started,flows_completed,drops,cbr_deadline_fraction"

let cell x = if Float.is_nan x then "" else Printf.sprintf "%.6f" x

let quote s = "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let fig4_row (r : Fig4.result) =
  String.concat ","
    [
      quote r.Fig4.scheme;
      Printf.sprintf "%.2f" r.Fig4.load;
      cell r.Fig4.small_mean_ms;
      cell r.Fig4.small_p99_ms;
      cell r.Fig4.large_mean_ms;
      cell r.Fig4.large_p99_ms;
      cell r.Fig4.overall_mean_ms;
      string_of_int r.Fig4.flows_started;
      string_of_int r.Fig4.flows_completed;
      string_of_int r.Fig4.drops;
      cell r.Fig4.cbr_deadline_fraction;
    ]

let fig4_to_csv results =
  String.concat "\n" (fig4_header :: List.map fig4_row results) ^ "\n"

let save_fig4 path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (fig4_to_csv results))
