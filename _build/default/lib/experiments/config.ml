let parse text =
  let ( let* ) = Result.bind in
  let parse_line lineno params line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    if line = "" then Ok params
    else begin
      match String.index_opt line '=' with
      | None -> Error (Printf.sprintf "line %d: expected key = value" lineno)
      | Some eq ->
        let key = String.trim (String.sub line 0 eq) in
        let value =
          String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
        in
        let int_v () =
          match int_of_string_opt value with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "line %d: %s wants an integer" lineno key)
        in
        let float_v () =
          match float_of_string_opt value with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "line %d: %s wants a number" lineno key)
        in
        (match key with
        | "leaves" ->
          let* v = int_v () in
          Ok { params with Fig4.leaves = v }
        | "spines" ->
          let* v = int_v () in
          Ok { params with Fig4.spines = v }
        | "hosts_per_leaf" ->
          let* v = int_v () in
          Ok { params with Fig4.hosts_per_leaf = v }
        | "access_rate" ->
          let* v = float_v () in
          Ok { params with Fig4.access_rate = v }
        | "fabric_rate" ->
          let* v = float_v () in
          Ok { params with Fig4.fabric_rate = v }
        | "link_delay" ->
          let* v = float_v () in
          Ok { params with Fig4.link_delay = v }
        | "queue_capacity_pkts" ->
          let* v = int_v () in
          Ok { params with Fig4.queue_capacity_pkts = v }
        | "load" ->
          let* v = float_v () in
          Ok { params with Fig4.load = v }
        | "cbr_flows" ->
          let* v = int_v () in
          Ok { params with Fig4.cbr_flows = v }
        | "cbr_rate" ->
          let* v = float_v () in
          Ok { params with Fig4.cbr_rate = v }
        | "cbr_deadline" ->
          let* v = float_v () in
          Ok { params with Fig4.cbr_deadline = v }
        | "duration" ->
          let* v = float_v () in
          Ok { params with Fig4.duration = v }
        | "warmup" ->
          let* v = float_v () in
          Ok { params with Fig4.warmup = v }
        | "drain" ->
          let* v = float_v () in
          Ok { params with Fig4.drain = v }
        | "pfabric_unit_bytes" ->
          let* v = int_v () in
          Ok { params with Fig4.pfabric_unit_bytes = v }
        | "edf_unit_seconds" ->
          let* v = float_v () in
          Ok { params with Fig4.edf_unit_seconds = v }
        | "window" ->
          let* v = int_v () in
          Ok { params with Fig4.window = v }
        | "rto" ->
          let* v = float_v () in
          Ok { params with Fig4.rto = v }
        | "seed" ->
          let* v = int_v () in
          Ok { params with Fig4.seed = v }
        | "levels" ->
          let* v = int_v () in
          Ok { params with Fig4.levels = Some v }
        | _ -> Error (Printf.sprintf "line %d: unknown key %S" lineno key))
    end
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno params = function
    | [] -> Ok params
    | line :: rest ->
      let* params = parse_line lineno params line in
      go (lineno + 1) params rest
  in
  go 1 Fig4.default lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

let to_string (p : Fig4.params) =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "# fabric";
  add "leaves = %d" p.Fig4.leaves;
  add "spines = %d" p.Fig4.spines;
  add "hosts_per_leaf = %d" p.Fig4.hosts_per_leaf;
  add "access_rate = %g" p.Fig4.access_rate;
  add "fabric_rate = %g" p.Fig4.fabric_rate;
  add "link_delay = %g" p.Fig4.link_delay;
  add "queue_capacity_pkts = %d" p.Fig4.queue_capacity_pkts;
  add "# workloads";
  add "load = %g" p.Fig4.load;
  add "cbr_flows = %d" p.Fig4.cbr_flows;
  add "cbr_rate = %g" p.Fig4.cbr_rate;
  add "cbr_deadline = %g" p.Fig4.cbr_deadline;
  add "pfabric_unit_bytes = %d" p.Fig4.pfabric_unit_bytes;
  add "edf_unit_seconds = %g" p.Fig4.edf_unit_seconds;
  add "# run";
  add "duration = %g" p.Fig4.duration;
  add "warmup = %g" p.Fig4.warmup;
  add "drain = %g" p.Fig4.drain;
  add "window = %d" p.Fig4.window;
  add "rto = %g" p.Fig4.rto;
  add "seed = %d" p.Fig4.seed;
  (match p.Fig4.levels with
  | Some l -> add "levels = %d" l
  | None -> ());
  Buffer.contents b
