(** Config-file driven experiments, in the spirit of Netbench's
    [.properties] runs.

    A config is a plain-text file of [key = value] lines ('#' comments).
    Unknown keys are an error (catching typos beats silently ignoring
    them).  Keys mirror the {!Fig4.params} fields:

    {v
      # fabric
      leaves = 3            spines = 2           hosts_per_leaf = 8
      access_rate = 1e9     fabric_rate = 4e9    link_delay = 1e-6
      queue_capacity_pkts = 100
      # workloads
      load = 0.5            cbr_flows = 17       cbr_rate = 0.5e9
      cbr_deadline = 2e-3
      # run
      duration = 0.2        warmup = 0.05        drain = 0.6
      seed = 1              window = 16          rto = 4e-3
      pfabric_unit_bytes = 1000                  edf_unit_seconds = 2e-5
      levels = 64           # optional; omit for full resolution
    v} *)

val parse : string -> (Fig4.params, string) result
(** Parse config text on top of {!Fig4.default}; errors carry the line
    number and key. *)

val load : string -> (Fig4.params, string) result
(** Read and parse a file. *)

val to_string : Fig4.params -> string
(** Render parameters back as config text ([parse (to_string p)] gives
    [p] back, modulo the backend/tree fields which have no config
    syntax). *)
