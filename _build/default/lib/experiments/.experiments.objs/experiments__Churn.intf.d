lib/experiments/churn.mli: Engine Format
