lib/experiments/config.ml: Buffer Fig4 In_channel Printf Result String
