lib/experiments/churn.ml: Array Engine Format List Netsim Qvisor Sched
