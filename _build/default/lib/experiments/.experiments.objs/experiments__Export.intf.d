lib/experiments/export.mli: Fig4
