lib/experiments/fig4.ml: Engine Float Format List Netsim Printf Qvisor Sched
