lib/experiments/export.ml: Fig4 Float Fun List Printf String
