lib/experiments/config.mli: Fig4
