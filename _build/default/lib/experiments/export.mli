(** CSV export of experiment results, for plotting with external tools.

    Columns are fixed and documented here so downstream notebooks do not
    need to parse the human-readable tables:

    {v scheme,load,small_mean_ms,small_p99_ms,large_mean_ms,large_p99_ms,
       overall_mean_ms,flows_started,flows_completed,drops,
       cbr_deadline_fraction v} *)

val fig4_header : string

val fig4_row : Fig4.result -> string
(** One CSV line (no trailing newline).  The scheme name is quoted; [nan]
    serializes as an empty cell. *)

val fig4_to_csv : Fig4.result list -> string

val save_fig4 : string -> Fig4.result list -> unit
(** Write header + rows to a file. *)
