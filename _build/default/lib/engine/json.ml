type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if Float.is_nan x || x = infinity || x = neg_infinity then
    invalid_arg "Json.to_string: non-finite number"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number x -> Buffer.add_string buf (number_to_string x)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (depth + 1);
          emit (depth + 1) item)
        items;
      newline ();
      indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (key, value) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          indent (depth + 1);
          escape_string buf key;
          Buffer.add_string buf (if pretty then ": " else ":");
          emit (depth + 1) value)
        fields;
      newline ();
      indent depth;
      Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Fail of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub input !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = input.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "dangling escape";
           let e = input.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub input !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with Failure _ -> fail "bad \\u escape"
             in
             (* Encode the code point as UTF-8 (BMP only; surrogate pairs
                are passed through as-is, which suffices for config and
                report payloads). *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> fail "unknown escape");
          go ()
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char input.[!pos] do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match float_of_string_opt text with
    | Some x -> x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Number (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at %d" !pos)
    else Ok v
  with Fail (pos, msg) -> Error (Printf.sprintf "%s at %d" msg pos)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Number x -> Some x | _ -> None

let to_int = function
  | Number x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
