lib/engine/p2_quantile.mli:
