lib/engine/timeseries.mli: Format
