lib/engine/rng.mli:
