lib/engine/vec.mli:
