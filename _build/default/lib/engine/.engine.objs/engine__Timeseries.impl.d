lib/engine/timeseries.ml: Float Format Hashtbl List Option String
