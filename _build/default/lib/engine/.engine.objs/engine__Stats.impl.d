lib/engine/stats.ml: Array Float Format Vec
