lib/engine/json.mli:
