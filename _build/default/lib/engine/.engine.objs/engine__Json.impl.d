lib/engine/json.ml: Buffer Char Float List Printf String
