lib/engine/sim.mli:
