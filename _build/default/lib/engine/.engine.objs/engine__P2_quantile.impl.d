lib/engine/p2_quantile.ml: Array Float
