type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let add_last t x =
  if t.size = Array.length t.data then begin
    let ncap = max 8 (2 * Array.length t.data) in
    let a = Array.make ncap x in
    Array.blit t.data 0 a 0 t.size;
    t.data <- a
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let pop_last t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    Some t.data.(t.size)
  end

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.size

let to_list t = Array.to_list (to_array t)

let of_list l =
  let t = create () in
  List.iter (add_last t) l;
  t

let clear t =
  t.data <- [||];
  t.size <- 0
