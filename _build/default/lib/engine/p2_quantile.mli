(** Streaming quantile estimation with the P² algorithm
    (Jain & Chlamtac, CACM 1985).

    Constant memory (five markers), suitable for estimating rank-distribution
    quantiles of a live packet stream inside QVISOR's runtime monitor, where
    retaining samples is not an option. *)

type t

val create : q:float -> t
(** [create ~q] tracks the [q]-quantile, [0. < q < 1.].
    @raise Invalid_argument otherwise. *)

val add : t -> float -> unit

val count : t -> int

val estimate : t -> float
(** Current estimate.  With fewer than five observations this is the exact
    quantile of what has been seen; [nan] when empty. *)
