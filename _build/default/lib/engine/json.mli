(** A minimal JSON library (emitter + recursive-descent parser).

    Self-contained so the toolkit has no external dependency; covers the
    full JSON grammar except that numbers are always represented as OCaml
    floats (ints round-trip exactly up to 2^53, far beyond any rank). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default false) adds newlines and 2-space
    indentation.  Strings are escaped per RFC 8259 (including control
    characters); non-finite numbers raise [Invalid_argument]. *)

val of_string : string -> (t, string) result
(** Parse; errors carry a character position. *)

(** Accessors returning [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an object. *)

val to_float : t -> float option

val to_int : t -> int option
(** A [Number] that is integral. *)

val to_str : t -> string option

val to_list : t -> t list option

val to_bool : t -> bool option
