(** Growable arrays (a minimal stand-in for OCaml 5.2's [Dynarray],
    which is not available on the 5.1 toolchain used here). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add_last : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-bounds access. *)

val pop_last : 'a t -> 'a option
(** Remove and return the most recently added element. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val clear : 'a t -> unit
