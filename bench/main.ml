(* Benchmark harness.

   Two sections:

   1. Bechamel micro-benchmarks — one group per paper artifact: the Fig. 3
      data-plane path (pre-processor + PIFO), the scheduler substrate the
      Fig. 4 fabric runs on, and the control-plane synthesizer/policy
      machinery.  These quantify the "at line rate" and "control plane"
      claims of §3.2/§3.3.

   2. Figure regeneration — the Fig. 4 sweep (both panels) and the two
      ablations at CI scale, printing the same rows/series the paper
      reports.  The full-scale sweep lives in `bin/experiments.exe`.

   3. Parallel scaling — the quick Fig. 4 sweep timed at 1/2/4/8 worker
      domains, verifying the merged results are identical at every
      worker count (see Engine.Parallel).

   4. Conformance throughput — scenario generation, the ideal-PIFO
      oracle, and one differential replay pass per backend, reported in
      cases/sec (the cost of `qvisor-cli conformance` per case).

   5. Engine benchmarks — Engine.Perf.Bench repeated-trial runs (PIFO
      and FIFO churn, the simulator event loop, the pre-processor and
      the flight recorder) reporting min/median/MAD for both ns/op and
      allocated bytes/op, written to BENCH_engine.json — the baseline
      `qvisor-cli bench diff` gates CI against.

   6. Profiling overhead — Engine.Recorder and Engine.Span micro costs
      (armed vs disabled), the end-to-end events/sec cost of arming
      every port's flight recorder on a quick Fig. 4 point (< 10% by
      design), the Engine.Perf telemetry layer's overhead on the same
      point (also < 10%), and the span breakdown of a quick run (the
      source of results_profile.txt).

   Run everything:        dune exec bench/main.exe
   Only micro-benches:    dune exec bench/main.exe -- micro
   Only figures:          dune exec bench/main.exe -- figures
   Only scaling:          dune exec bench/main.exe -- scaling
   Only conformance:      dune exec bench/main.exe -- conformance
   Only engine benches:   dune exec bench/main.exe -- engine [--quick]
   Only profiling:        dune exec bench/main.exe -- profile *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                   *)
(* ------------------------------------------------------------------ *)

let fig3_plan () =
  let tenants =
    [
      Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:30_000 ~id:0
        ~name:"T1" ();
      Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:0 ~rank_hi:150 ~id:1
        ~name:"T2" ();
      Qvisor.Tenant.make ~algorithm:"stfq" ~rank_lo:0 ~rank_hi:4_000 ~id:2
        ~name:"T3" ();
    ]
  in
  Qvisor.Synthesizer.synthesize_exn ~tenants
    ~policy:(Qvisor.Policy.parse_exn "T1 >> T2 + T3")
    ()

let test_preprocessor =
  let pre = Qvisor.Preprocessor.of_plan (fig3_plan ()) in
  let packet = Sched.Packet.make ~tenant:1 ~rank:100 ~flow:1 ~size:1500 () in
  Test.make ~name:"fig3/preprocessor-per-packet"
    (Staged.stage (fun () ->
         packet.Sched.Packet.rank <- 100;
         Qvisor.Preprocessor.process pre packet))

let qdisc_churn_test ~name make =
  (* Steady-state enqueue+dequeue on a part-full queue. *)
  let q = make () in
  let rng = Engine.Rng.create ~seed:7 in
  for _ = 1 to 64 do
    ignore
      (q.Sched.Qdisc.enqueue
         (Sched.Packet.make
            ~rank:(Engine.Rng.int_range rng ~lo:0 ~hi:65535)
            ~flow:1 ~size:1500 ()))
  done;
  Test.make ~name
    (Staged.stage (fun () ->
         ignore
           (q.Sched.Qdisc.enqueue
              (Sched.Packet.make
                 ~rank:(Engine.Rng.int_range rng ~lo:0 ~hi:65535)
                 ~flow:1 ~size:1500 ()));
         ignore (q.Sched.Qdisc.dequeue ())))

let test_fifo =
  qdisc_churn_test ~name:"sched/fifo-enq-deq" (fun () ->
      Sched.Fifo_queue.create ~capacity_pkts:256 ())

let test_pifo =
  qdisc_churn_test ~name:"fig3/pifo-enq-deq" (fun () ->
      Sched.Bucket_queue.create ~capacity_pkts:256 ())

let test_pifo_map =
  qdisc_churn_test ~name:"sched/pifo-map-enq-deq" (fun () ->
      Sched.Pifo_queue.create ~capacity_pkts:256 ())

let test_sp_pifo =
  qdisc_churn_test ~name:"sched/sp-pifo-enq-deq" (fun () ->
      Sched.Sp_pifo.create ~num_queues:8 ~queue_capacity_pkts:256 ())

let test_aifo =
  qdisc_churn_test ~name:"sched/aifo-enq-deq" (fun () ->
      Sched.Aifo.create ~capacity_pkts:256 ())

let test_drr =
  qdisc_churn_test ~name:"sched/drr-enq-deq" (fun () ->
      Sched.Drr_bank.create ~num_queues:8 ~queue_capacity_pkts:64
        ~quantum_bytes:1518
        ~classify:(fun p -> p.Sched.Packet.rank / 8192)
        ())

let test_calendar =
  qdisc_churn_test ~name:"sched/calendar-enq-deq" (fun () ->
      Sched.Calendar_queue.create ~num_buckets:32 ~bucket_width:2048
        ~capacity_pkts:256 ())

let test_pifo_tree =
  qdisc_churn_test ~name:"sched/pifo-tree-enq-deq" (fun () ->
      Sched.Pifo_tree.to_qdisc
        ~classify:(fun p -> p.Sched.Packet.rank mod 3)
        ~capacity_pkts:256
        (Sched.Pifo_tree.strict
           [
             Sched.Pifo_tree.leaf ();
             Sched.Pifo_tree.wfq
               [ (Sched.Pifo_tree.leaf (), 1.0); (Sched.Pifo_tree.leaf (), 2.0) ];
           ]))

let test_synthesizer_small =
  let tenants =
    [
      Qvisor.Tenant.make ~rank_hi:30_000 ~id:0 ~name:"pfabric" ();
      Qvisor.Tenant.make ~rank_hi:150 ~id:1 ~name:"edf" ();
    ]
  in
  let policy = Qvisor.Policy.parse_exn "pfabric >> edf" in
  Test.make ~name:"synthesizer/2-tenant"
    (Staged.stage (fun () ->
         ignore (Qvisor.Synthesizer.synthesize_exn ~tenants ~policy ())))

let test_synthesizer_large =
  let tenants =
    List.init 16 (fun i ->
        Qvisor.Tenant.make ~rank_hi:10_000 ~id:i
          ~name:(Printf.sprintf "T%d" i) ())
  in
  let policy =
    Qvisor.Policy.parse_exn
      "T0 >> T1 > T2 + T3 >> T4 + T5 + T6 + T7 >> T8 > T9 > T10 >> T11 + \
       T12 >> T13 >> T14 + T15"
  in
  Test.make ~name:"synthesizer/16-tenant"
    (Staged.stage (fun () ->
         ignore (Qvisor.Synthesizer.synthesize_exn ~tenants ~policy ())))

let test_policy_parse =
  Test.make ~name:"policy/parse"
    (Staged.stage (fun () ->
         ignore (Qvisor.Policy.parse_exn "T1 >> T2 > T3 + T4 >> T5")))

let test_ranker_pfabric =
  let ranker = Sched.Ranker.pfabric () in
  let p = Sched.Packet.make ~remaining:250_000 ~flow:1 ~size:1500 () in
  Test.make ~name:"ranker/pfabric-tag"
    (Staged.stage (fun () -> ignore (Sched.Ranker.tag ranker ~now:0. p)))

let test_ranker_stfq =
  let ranker = Sched.Ranker.stfq () in
  let p = Sched.Packet.make ~flow:1 ~size:1500 () in
  Test.make ~name:"ranker/stfq-tag"
    (Staged.stage (fun () -> ignore (Sched.Ranker.tag ranker ~now:0. p)))

let test_analysis =
  let plan = fig3_plan () in
  Test.make ~name:"analysis/check-plan"
    (Staged.stage (fun () -> ignore (Qvisor.Analysis.check plan)))

let test_telemetry_counter =
  let tel = Engine.Telemetry.create () in
  let c = Engine.Telemetry.counter tel "bench.counter" in
  Test.make ~name:"telemetry/counter-incr"
    (Staged.stage (fun () -> Engine.Telemetry.Counter.incr c))

let test_telemetry_counter_disabled =
  (* The disabled registry hands out inert handles: this measures the
     cost instrumented code pays when telemetry is off. *)
  let c = Engine.Telemetry.counter Engine.Telemetry.disabled "bench.counter" in
  Test.make ~name:"telemetry/counter-incr-disabled"
    (Staged.stage (fun () -> Engine.Telemetry.Counter.incr c))

let test_telemetry_histogram =
  let tel = Engine.Telemetry.create () in
  let h = Engine.Telemetry.histogram tel "bench.histogram" in
  let x = ref 0. in
  Test.make ~name:"telemetry/histogram-observe"
    (Staged.stage (fun () ->
         x := !x +. 1.;
         Engine.Telemetry.Histogram.observe h !x))

let test_telemetry_instrumented_preprocessor =
  (* fig3/preprocessor-per-packet with a live registry attached: the
     delta against the uninstrumented test is the observability tax. *)
  let tel = Engine.Telemetry.create () in
  let pre = Qvisor.Preprocessor.of_plan ~telemetry:tel (fig3_plan ()) in
  let packet = Sched.Packet.make ~tenant:1 ~rank:100 ~flow:1 ~size:1500 () in
  Test.make ~name:"telemetry/preprocessor-per-packet"
    (Staged.stage (fun () ->
         packet.Sched.Packet.rank <- 100;
         Qvisor.Preprocessor.process pre packet))

let all_micro =
  Test.make_grouped ~name:"qvisor"
    [
      test_preprocessor;
      test_pifo;
      test_pifo_map;
      test_fifo;
      test_sp_pifo;
      test_aifo;
      test_drr;
      test_calendar;
      test_pifo_tree;
      test_synthesizer_small;
      test_synthesizer_large;
      test_policy_parse;
      test_ranker_pfabric;
      test_ranker_stfq;
      test_analysis;
      test_telemetry_counter;
      test_telemetry_counter_disabled;
      test_telemetry_histogram;
      test_telemetry_instrumented_preprocessor;
    ]

let run_micro () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances all_micro in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "@[<v>== micro-benchmarks (ns/op, OLS on monotonic clock) ==@,";
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, ns) -> Format.printf "%-40s %12.1f ns/op@," name ns) rows;
  Format.printf "@]@."

(* ------------------------------------------------------------------ *)
(* Figure regeneration (CI scale)                                     *)
(* ------------------------------------------------------------------ *)

let ok = function
  | Ok v -> v
  | Error e -> failwith (Qvisor.Error.to_string e)

(* Machine-readable snapshots next to the human results_*.txt: the
   committed BENCH_*.json seeds are the perf trajectory across PRs.
   Atomic, so an interrupted bench run never leaves a truncated
   baseline for `qvisor-cli bench diff` to choke on. *)
let write_json path json =
  Engine.Perf.write_atomic path (fun oc ->
      output_string oc (Engine.Json.to_string ~pretty:true json);
      output_char oc '\n');
  Format.printf "wrote %s@." path

let run_figures () =
  let params = Experiments.Fig4.quick in
  let loads = [ 0.2; 0.5; 0.8 ] in
  Format.printf
    "== Fig. 4 (quick scale: %d hosts; full sweep via bin/experiments.exe) ==@."
    (params.Experiments.Fig4.leaves * params.Experiments.Fig4.hosts_per_leaf);
  let results =
    ok
      (Experiments.Fig4.sweep params ~loads
         ~schemes:Experiments.Fig4.paper_schemes)
  in
  Format.printf "%a@." Experiments.Fig4.print_fig4 results;
  (* Engine throughput across the sweep — the discrete-event simulator's
     own events/sec, from the per-run profiling counters. *)
  let events, wall =
    List.fold_left
      (fun (e, w) r ->
        ( e + r.Experiments.Fig4.events_fired,
          w +. r.Experiments.Fig4.wall_seconds ))
      (0, 0.) results
  in
  if wall > 0. then
    Format.printf "engine: %d events in %.2f s (%.3g events/s)@." events wall
      (float_of_int events /. wall);
  write_json "BENCH_fig4.json"
    (Engine.Json.Obj
       [
         ("scale", Engine.Json.String "quick");
         ( "rows",
           Engine.Json.List
             (List.map
                (fun (r : Experiments.Fig4.result) ->
                  Engine.Json.Obj
                    [
                      ("scheme", Engine.Json.String r.Experiments.Fig4.scheme);
                      ("load", Engine.Json.Number r.Experiments.Fig4.load);
                      ( "small_mean_ms",
                        Engine.Json.Number r.Experiments.Fig4.small_mean_ms );
                      ( "large_mean_ms",
                        Engine.Json.Number r.Experiments.Fig4.large_mean_ms );
                      ( "drops",
                        Engine.Json.Number
                          (float_of_int r.Experiments.Fig4.drops) );
                      ( "events_fired",
                        Engine.Json.Number
                          (float_of_int r.Experiments.Fig4.events_fired) );
                      ( "events_per_sec",
                        Engine.Json.Number
                          (if r.Experiments.Fig4.wall_seconds > 0. then
                             float_of_int r.Experiments.Fig4.events_fired
                             /. r.Experiments.Fig4.wall_seconds
                           else nan) );
                    ])
                results) );
         ( "engine_events_per_sec",
           Engine.Json.Number
             (if wall > 0. then float_of_int events /. wall else nan) );
       ]);
  (* Ablation A1: quantization levels. *)
  Format.printf
    "@.== Ablation A1: quantization levels (QVISOR pfabric + edf, load %.1f) ==@."
    params.Experiments.Fig4.load;
  List.iter
    (fun levels ->
      let r =
        Experiments.Fig4.run_exn
          { params with Experiments.Fig4.levels = Some levels }
          (Experiments.Fig4.Qvisor_policy "pfabric + edf")
      in
      Format.printf "levels %4d: small %.3f ms, large %.3f ms, cbr-ok %.3f@."
        levels r.Experiments.Fig4.small_mean_ms r.Experiments.Fig4.large_mean_ms
        r.Experiments.Fig4.cbr_deadline_fraction)
    [ 4; 16; 64; 256 ];
  (* Ablation A2: deployment backends. *)
  let cap = params.Experiments.Fig4.queue_capacity_pkts in
  Format.printf
    "@.== Ablation A2: deployment backends (QVISOR pfabric >> edf, load %.1f) ==@."
    params.Experiments.Fig4.load;
  List.iter
    (fun (name, backend) ->
      let r =
        Experiments.Fig4.run_exn
          { params with Experiments.Fig4.backend }
          (Experiments.Fig4.Qvisor_policy "pfabric >> edf")
      in
      Format.printf "%-18s: small %.3f ms, large %.3f ms, drops %d@." name
        r.Experiments.Fig4.small_mean_ms r.Experiments.Fig4.large_mean_ms
        r.Experiments.Fig4.drops)
    [
      ("ideal PIFO", None);
      ( "SP bank (2q)",
        Some (Qvisor.Deploy.Sp_bank { num_queues = 2; queue_capacity_pkts = cap }) );
      ( "SP bank (8q)",
        Some (Qvisor.Deploy.Sp_bank { num_queues = 8; queue_capacity_pkts = cap }) );
      ( "SP-PIFO (8q)",
        Some (Qvisor.Deploy.Sp_pifo { num_queues = 8; queue_capacity_pkts = cap }) );
    ];
  (* Ablation A3: tenant churn (Fig. 2 timeline) at CI scale. *)
  let churn_params =
    {
      Experiments.Churn.default with
      Experiments.Churn.t_end = 0.15;
      t_join = 0.06;
      drain = 0.2;
    }
  in
  let naive = Experiments.Churn.run churn_params ~qvisor:false in
  let qvisor = Experiments.Churn.run churn_params ~qvisor:true in
  Format.printf "@.%a@." Experiments.Churn.print [ naive; qvisor ]

(* ------------------------------------------------------------------ *)
(* Parallel scaling (Engine.Parallel over the Fig. 4 grid)             *)
(* ------------------------------------------------------------------ *)

let run_scaling () =
  let params = Experiments.Fig4.quick in
  let loads = [ 0.2; 0.5; 0.8 ] in
  let schemes = Experiments.Fig4.paper_schemes in
  let grid = List.length loads * List.length schemes in
  Format.printf
    "== parallel scaling: quick Fig. 4 sweep (%d grid points) ==@." grid;
  Format.printf "recommended domain count on this machine: %d@."
    (Domain.recommended_domain_count ());
  (* Compare CSV rows (nan-safe: nan fields serialize empty) plus the
     simulator event counts; wall_seconds is wall-clock and excluded. *)
  let strip r =
    ( Experiments.Export.fig4_row r,
      r.Experiments.Fig4.events_fired )
  in
  let time_once jobs =
    let t0 = Unix.gettimeofday () in
    let results = ok (Experiments.Fig4.sweep ~jobs params ~loads ~schemes) in
    (Unix.gettimeofday () -. t0, List.map strip results)
  in
  (* One untimed pass to warm code paths and the allocator. *)
  ignore (time_once 1);
  let serial, baseline = time_once 1 in
  Format.printf "jobs 1: %7.2f s  speedup 1.00x  (baseline)@." serial;
  List.iter
    (fun jobs ->
      let dt, results = time_once jobs in
      let identical = results = baseline in
      Format.printf "jobs %d: %7.2f s  speedup %.2fx  results %s@." jobs dt
        (serial /. dt)
        (if identical then "identical" else "DIFFER");
      if not identical then begin
        Format.printf "scaling: results differ at jobs=%d@." jobs;
        exit 1
      end)
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Conformance throughput (scenario verification as a workload)        *)
(* ------------------------------------------------------------------ *)

let run_conformance () =
  let cases = 200 and seed = 42 in
  Format.printf "== conformance throughput (%d seeded cases, seed %d) ==@."
    cases seed;
  Format.printf
    "recommended domain count on this machine: %d (parallel rows below are \
     overhead-bound when this is 1)@."
    (Domain.recommended_domain_count ());
  (* Pre-generate the fleet so the timings below isolate verification. *)
  let t0 = Unix.gettimeofday () in
  let scenarios =
    List.init cases (fun i ->
        Conformance.Scenario.generate ~seed:(Engine.Rng.derive ~seed i))
  in
  let gen_dt = Unix.gettimeofday () -. t0 in
  let events =
    List.fold_left (fun a sc -> a + Conformance.Scenario.num_events sc) 0
      scenarios
  in
  Format.printf "generate: %7.3f s  (%8.0f cases/s, %d events)@." gen_dt
    (float_of_int cases /. gen_dt)
    events;
  let plans =
    List.map (fun sc -> (sc, ok (Conformance.Scenario.plan sc))) scenarios
  in
  (* Oracle pass alone, then one full replay pass per backend. *)
  let time name f =
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "%-14s %7.3f s  (%8.0f cases/s)@." name dt
      (float_of_int cases /. dt)
  in
  time "oracle" (fun () ->
      List.iter
        (fun (sc, plan) -> ignore (Conformance.Oracle.run ~plan sc))
        plans);
  List.iter
    (fun spec ->
      time spec.Conformance.Differential.bname (fun () ->
          List.iter
            (fun (sc, plan) ->
              match
                spec.Conformance.Differential.make ~plan
                  ~capacity_pkts:sc.Conformance.Scenario.capacity_pkts
              with
              | Error _ -> ()
              | Ok qdisc ->
                ignore (Conformance.Differential.replay ~plan ~qdisc sc))
            plans))
    (Conformance.Differential.standard_backends ());
  (* The end-to-end pipeline (generate + oracle + all backends + stats),
     serial vs parallel, on a fleet large enough to amortize domain
     startup. *)
  let pipeline_cases = 10 * cases in
  Format.printf "pipeline below: %d cases@." pipeline_cases;
  List.iter
    (fun jobs ->
      let t0 = Unix.gettimeofday () in
      ignore
        (Conformance.Differential.run_cases ~jobs ~seed ~cases:pipeline_cases ());
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%-14s %7.3f s  (%8.0f cases/s)@."
        (Printf.sprintf "pipeline(j=%d)" jobs)
        dt
        (float_of_int pipeline_cases /. dt))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Engine micro-benchmarks (Perf.Bench -> BENCH_engine.json)          *)
(* ------------------------------------------------------------------ *)

(* Unlike the bechamel section (OLS point estimates, human-oriented),
   these use Engine.Perf.Bench: repeated trials with min/median/MAD for
   both ns/op and allocated bytes/op, serialized to the schema that
   `qvisor-cli bench diff` gates CI on. *)
let run_engine ~trials ~min_time_s ~out ~mode () =
  Format.printf
    "== engine benchmarks (%d trials, >= %g s each; %s mode) ==@." trials
    min_time_s mode;
  let bench name f = Engine.Perf.Bench.run ~trials ~min_time_s ~name f in
  (* Steady-state enqueue+dequeue churn on a part-full queue: one op is
     one dequeue plus one enqueue, so occupancy never drifts.  Runs on
     the allocation-free [enqueue_drop] hot path, as the fabric does, and
     recycles the dequeued packet with a freshly rolled rank — the entry
     measures the qdisc, not [Packet.make], and its alloc B/op column
     documents the backend's own allocation per operation. *)
  let drop_sink (_ : Sched.Packet.t) = () in
  let churn_bench ?(prefill = 64) ?(rank_hi = 65535) name make =
    let q = make () in
    let rng = Engine.Rng.create ~seed:7 in
    for _ = 1 to prefill do
      q.Sched.Qdisc.enqueue_drop
        (Sched.Packet.make
           ~rank:(Engine.Rng.int_range rng ~lo:0 ~hi:rank_hi)
           ~flow:1 ~size:1500 ())
        drop_sink
    done;
    bench name (fun n ->
        for _ = 1 to n do
          match q.Sched.Qdisc.dequeue () with
          | Some p ->
            p.Sched.Packet.rank <- Engine.Rng.int_range rng ~lo:0 ~hi:rank_hi;
            q.Sched.Qdisc.enqueue_drop p drop_sink
          | None -> ()
        done)
  in
  (* The default exact backend (what `pifo` deploys today). *)
  let bench_pifo () =
    churn_bench "pifo/enqueue-dequeue" (fun () ->
        Sched.Bucket_queue.create ~capacity_pkts:256 ())
  in
  (* The retired Map-based PIFO, kept for the heap-vs-bucket delta. *)
  let bench_pifo_map () =
    churn_bench "pifo-map/enqueue-dequeue" (fun () ->
        Sched.Pifo_queue.create ~capacity_pkts:256 ())
  in
  (* Bucket-queue stress shapes: a deep queue (where the Map backend's
     O(log n) bites) and a dense rank space (all FIFO-tie traffic). *)
  let bench_bucket_deep () =
    churn_bench ~prefill:4096 "bucket/enqueue-dequeue-deep" (fun () ->
        Sched.Bucket_queue.create ~capacity_pkts:8192 ())
  in
  let bench_bucket_dense () =
    churn_bench ~rank_hi:63 "bucket/enqueue-dequeue-dense" (fun () ->
        Sched.Bucket_queue.create ~capacity_pkts:256 ())
  in
  let bench_fifo () =
    churn_bench "fifo/enqueue-dequeue" (fun () ->
        Sched.Fifo_queue.create ~capacity_pkts:256 ())
  in
  (* The simulator's schedule+fire cycle, batched so the event queue
     stays shallow (as it does in the fabric's steady state). *)
  let bench_event_loop () =
    let sim = Engine.Sim.create () in
    bench "engine/event-loop" (fun n ->
        let batch = 1024 in
        let remaining = ref n in
        while !remaining > 0 do
          let k = Stdlib.min batch !remaining in
          for _ = 1 to k do
            Engine.Sim.schedule_after_ sim ~delay:1e-9 (fun () -> ())
          done;
          Engine.Sim.run sim;
          remaining := !remaining - k
        done)
  in
  let bench_preprocessor () =
    let pre = Qvisor.Preprocessor.of_plan (fig3_plan ()) in
    let packet = Sched.Packet.make ~tenant:1 ~rank:100 ~flow:1 ~size:1500 () in
    bench "preprocessor/process" (fun n ->
        for _ = 1 to n do
          packet.Sched.Packet.rank <- 100;
          Qvisor.Preprocessor.process pre packet
        done)
  in
  (* The armed flight-recorder ring: its alloc B/op column documents the
     zero-allocation steady state the forensics PR promised. *)
  let bench_recorder () =
    let recorder = Engine.Recorder.create () in
    bench "recorder/record" (fun n ->
        for i = 1 to n do
          Engine.Recorder.record recorder ~time:(float_of_int i)
            ~kind:Engine.Recorder.Enqueue ~uid:i ~link:2 ~tenant:0 ~flow:3
            ~rank_before:(-1) ~rank:42
        done)
  in
  (* The retention store's hot path: one observation folded into every
     tier.  Its alloc B/op column documents the allocation-free ingest
     the /query PR promised. *)
  let bench_tsdb () =
    let store = Engine.Tsdb.create () in
    let s = Engine.Tsdb.series store ~kind:Engine.Tsdb.Gauge "bench.gauge" in
    let t = ref 0. in
    bench "tsdb/observe" (fun n ->
        for i = 1 to n do
          t := !t +. 0.001;
          Engine.Tsdb.observe store s ~time:!t (float_of_int i)
        done)
  in
  let entries =
    [
      bench_pifo ();
      bench_pifo_map ();
      bench_bucket_deep ();
      bench_bucket_dense ();
      bench_fifo ();
      bench_event_loop ();
      bench_preprocessor ();
      bench_recorder ();
      bench_tsdb ();
    ]
  in
  List.iter
    (fun (e : Engine.Perf.Bench.entry) ->
      Format.printf
        "%-28s %10.1f ns/op (min %.1f, MAD %.2f)  %8.1f alloc B/op@."
        e.Engine.Perf.Bench.b_name e.b_ns_per_op.Engine.Perf.Summary.s_median
        e.b_ns_per_op.Engine.Perf.Summary.s_min
        e.b_ns_per_op.Engine.Perf.Summary.s_mad
        e.b_alloc_per_op.Engine.Perf.Summary.s_median)
    entries;
  write_json out (Engine.Perf.Bench.report_to_json ~mode entries)

(* ------------------------------------------------------------------ *)
(* Profiling & flight-recorder overhead                               *)
(* ------------------------------------------------------------------ *)

let run_profile () =
  Format.printf "== profiling & flight-recorder overhead ==@.";
  (* Micro: Recorder.record, armed ring vs the shared disabled recorder
     (the cost instrumented code pays when flight recording is off). *)
  let iters = 5_000_000 in
  let time_record recorder =
    let t0 = Unix.gettimeofday () in
    for i = 1 to iters do
      Engine.Recorder.record recorder ~time:(float_of_int i)
        ~kind:Engine.Recorder.Enqueue ~uid:i ~link:2 ~tenant:0 ~flow:3
        ~rank_before:(-1) ~rank:42
    done;
    Unix.gettimeofday () -. t0
  in
  ignore (time_record (Engine.Recorder.create ()));
  let armed = time_record (Engine.Recorder.create ()) in
  let off = time_record Engine.Recorder.disabled in
  Format.printf
    "recorder.record: armed %5.1f ns/event (%.3g events/s), disabled %5.1f \
     ns/event@."
    (1e9 *. armed /. float_of_int iters)
    (float_of_int iters /. armed)
    (1e9 *. off /. float_of_int iters);
  (* Micro: Span.with_, enabled vs the shared disabled profiler. *)
  let span_iters = 1_000_000 in
  let time_span profiler =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to span_iters do
      Engine.Span.with_ profiler ~name:"bench.span" Fun.id
    done;
    Unix.gettimeofday () -. t0
  in
  let span_on = time_span (Engine.Span.create ()) in
  let span_off = time_span Engine.Span.disabled in
  Format.printf
    "span.with_:      enabled %5.1f ns/span, disabled %5.1f ns/span@."
    (1e9 *. span_on /. float_of_int span_iters)
    (1e9 *. span_off /. float_of_int span_iters);
  (* End to end: a quick Fig. 4 point with every port's flight recorder
     armed vs off, compared on engine events/sec.  The ring is meant to
     be cheap enough to leave always-on: overhead should stay under 10%. *)
  let params =
    (* Three quick-scale arrival windows: long enough that one run's
       events/sec is stable, short enough to afford interleaved reps. *)
    {
      Experiments.Fig4.quick with
      Experiments.Fig4.load = 0.5;
      duration = 3. *. Experiments.Fig4.quick.Experiments.Fig4.duration;
    }
  in
  let scheme = Experiments.Fig4.Qvisor_policy "pfabric >> edf" in
  let rate ?flight ?(slo = false) () =
    match Experiments.Fig4.run ?flight ~slo params scheme with
    | Error e -> failwith (Qvisor.Error.to_string e)
    | Ok r ->
      float_of_int r.Experiments.Fig4.events_fired
      /. r.Experiments.Fig4.wall_seconds
  in
  (* Interleaved best-of-8: events/sec drifts run to run on a busy
     machine, and alternating off/on/slo triples expose every
     configuration to the same drift; the per-configuration best
     approximates the noise-free rate.  The SLO run arms the flight
     recorder by default, so its marginal auditing cost is measured
     against the recorder-on rate, not the bare one. *)
  ignore (rate ());
  let rate_off = ref 0. and rate_on = ref 0. and rate_slo = ref 0. in
  for _ = 1 to 8 do
    rate_off := Float.max !rate_off (rate ());
    rate_on := Float.max !rate_on (rate ~flight:Netsim.Net.default_flight ());
    rate_slo := Float.max !rate_slo (rate ~slo:true ())
  done;
  let rate_off = !rate_off and rate_on = !rate_on and rate_slo = !rate_slo in
  let overhead = 100. *. (1. -. (rate_on /. rate_off)) in
  let slo_overhead = 100. *. (1. -. (rate_slo /. rate_on)) in
  Format.printf
    "fig4 quick point: recorder off %.3g events/s, on %.3g events/s \
     (overhead %.1f%%)@."
    rate_off rate_on overhead;
  Format.printf
    "fig4 quick point: slo audit %.3g events/s (%.1f%% over the \
     recorder-armed rate it builds on)@."
    rate_slo slo_overhead;
  (* The Engine.Perf layer (stage meters + GC sampling + pause monitor),
     armed by an enabled telemetry registry.  Both sides run the same
     telemetry+SLO configuration so the only delta is the perf
     instrumentation itself; it is designed to stay under 10%. *)
  let rate_perf ~perf () =
    let tel = Engine.Telemetry.create () in
    match Experiments.Fig4.run ~telemetry:tel ~slo:true ~perf params scheme with
    | Error e -> failwith (Qvisor.Error.to_string e)
    | Ok r ->
      float_of_int r.Experiments.Fig4.events_fired
      /. r.Experiments.Fig4.wall_seconds
  in
  ignore (rate_perf ~perf:false ());
  let rate_perf_off = ref 0. and rate_perf_on = ref 0. in
  for _ = 1 to 8 do
    rate_perf_off := Float.max !rate_perf_off (rate_perf ~perf:false ());
    rate_perf_on := Float.max !rate_perf_on (rate_perf ~perf:true ())
  done;
  let rate_perf_off = !rate_perf_off and rate_perf_on = !rate_perf_on in
  let perf_overhead = 100. *. (1. -. (rate_perf_on /. rate_perf_off)) in
  Format.printf
    "fig4 quick point: perf telemetry off %.3g events/s, on %.3g events/s \
     (overhead %.1f%%)@."
    rate_perf_off rate_perf_on perf_overhead;
  (* The serve-loop snapshotter: fold the whole live registry into the
     retention store, the walk Daemon.Server.snapshot performs once per
     snapshot interval (default: every simulated second).  Measured
     against a registry populated by a real quick-scale run, and reported
     as a fraction of that run's wall time per simulated second — the
     budget says < 2%. *)
  let snap_tel = Engine.Telemetry.create () in
  let snap_run =
    match
      Experiments.Fig4.run ~telemetry:snap_tel ~slo:true params scheme
    with
    | Error e -> failwith (Qvisor.Error.to_string e)
    | Ok r -> r
  in
  let store = Engine.Tsdb.create () in
  let snapshot ~time =
    let obs kind name v =
      Engine.Tsdb.observe store (Engine.Tsdb.series store ~kind name) ~time v
    in
    List.iter
      (fun (name, v) -> obs Engine.Tsdb.Counter name (float_of_int v))
      (Engine.Telemetry.exported_counters snap_tel);
    List.iter
      (fun (name, v) -> obs Engine.Tsdb.Gauge name v)
      (Engine.Telemetry.exported_gauges snap_tel);
    List.iter
      (fun (name, h) ->
        let count = Engine.Telemetry.Histogram.count h in
        obs Engine.Tsdb.Counter (name ^ ".count") (float_of_int count);
        if count > 0 then begin
          obs Engine.Tsdb.Gauge (name ^ ".p50")
            (Engine.Telemetry.Histogram.quantile h 0.5);
          obs Engine.Tsdb.Gauge (name ^ ".p99")
            (Engine.Telemetry.Histogram.quantile h 0.99)
        end)
      (Engine.Telemetry.exported_histograms snap_tel)
  in
  let snap_iters = 20_000 in
  snapshot ~time:0.;
  let t0 = Unix.gettimeofday () in
  for i = 1 to snap_iters do
    snapshot ~time:(float_of_int i)
  done;
  let snap_dt = Unix.gettimeofday () -. t0 in
  let snap_ns = 1e9 *. snap_dt /. float_of_int snap_iters in
  (* Wall seconds this run needs to simulate one second, vs one snapshot
     per simulated second. *)
  let wall_per_sim_s =
    snap_run.Experiments.Fig4.wall_seconds
    /. params.Experiments.Fig4.duration
  in
  let snap_overhead = 100. *. (snap_ns /. 1e9) /. wall_per_sim_s in
  Format.printf
    "tsdb snapshot: %d series in %.1f us/snapshot (%.4f%% of the fig4 quick \
     point's wall time per simulated second)@."
    (Engine.Tsdb.series_count store)
    (snap_ns /. 1e3) snap_overhead;
  write_json "BENCH_profile.json"
    (Engine.Json.Obj
       [
         ( "recorder_ns_per_event",
           Engine.Json.Obj
             [
               ( "armed",
                 Engine.Json.Number (1e9 *. armed /. float_of_int iters) );
               ( "disabled",
                 Engine.Json.Number (1e9 *. off /. float_of_int iters) );
             ] );
         ( "span_ns_per_span",
           Engine.Json.Obj
             [
               ( "enabled",
                 Engine.Json.Number
                   (1e9 *. span_on /. float_of_int span_iters) );
               ( "disabled",
                 Engine.Json.Number
                   (1e9 *. span_off /. float_of_int span_iters) );
             ] );
         ( "fig4_quick_events_per_sec",
           Engine.Json.Obj
             [
               ("off", Engine.Json.Number rate_off);
               ("recorder", Engine.Json.Number rate_on);
               ("slo", Engine.Json.Number rate_slo);
             ] );
         ("recorder_overhead_pct", Engine.Json.Number overhead);
         ("slo_overhead_pct", Engine.Json.Number slo_overhead);
         ( "perf_telemetry_events_per_sec",
           Engine.Json.Obj
             [
               ("off", Engine.Json.Number rate_perf_off);
               ("on", Engine.Json.Number rate_perf_on);
             ] );
         ("perf_overhead_pct", Engine.Json.Number perf_overhead);
         ( "tsdb_snapshot",
           Engine.Json.Obj
             [
               ( "series",
                 Engine.Json.Number
                   (float_of_int (Engine.Tsdb.series_count store)) );
               ("ns_per_snapshot", Engine.Json.Number snap_ns);
               ("overhead_pct", Engine.Json.Number snap_overhead);
             ] );
       ]);
  (* Where a quick Fig. 4 run spends its time (the committed span
     breakdown in results_profile.txt comes from here). *)
  let profiler = Engine.Span.create () in
  ignore (Experiments.Fig4.run_exn ~profiler params scheme);
  Format.printf "@.span breakdown of one quick Fig. 4 run:@.%a@."
    Engine.Span.pp_table profiler

let () =
  let open Cmdliner in
  let mode_arg =
    let doc =
      "Section to run: $(b,micro), $(b,figures), $(b,scaling), \
       $(b,conformance), $(b,engine), $(b,profile), or $(b,all)."
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"MODE" ~doc)
  in
  let trials_arg =
    let doc =
      "Timed trials per engine benchmark (default 7; 5 with --quick)."
    in
    Arg.(
      value & opt (some Cliopts.pos_int) None & info [ "trials" ] ~docv:"N" ~doc)
  in
  let min_time_arg =
    let doc =
      "Minimum seconds per engine-benchmark trial (default 0.05; 0.02 with \
       --quick)."
    in
    Arg.(
      value
      & opt (some Cliopts.pos_float) None
      & info [ "min-time" ] ~docv:"SECONDS" ~doc)
  in
  let out_arg =
    let doc = "Where the engine mode writes its report." in
    Arg.(
      value & opt string "BENCH_engine.json" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let quick_arg =
    let doc =
      "CI-sized engine benchmarks: fewer, shorter trials (noisier — pair \
       with a generous `bench diff --threshold`)."
    in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let run mode trials min_time out quick =
    let trials =
      match trials with Some t -> t | None -> if quick then 5 else 7
    in
    let min_time_s =
      match min_time with Some x -> x | None -> if quick then 0.02 else 0.05
    in
    let bench_mode = if quick then "quick" else "full" in
    let engine () = run_engine ~trials ~min_time_s ~out ~mode:bench_mode () in
    (match mode with
    | "micro" -> run_micro ()
    | "figures" -> run_figures ()
    | "scaling" -> run_scaling ()
    | "conformance" -> run_conformance ()
    | "engine" -> engine ()
    | "profile" -> run_profile ()
    | "all" ->
      run_micro ();
      run_figures ();
      run_scaling ();
      run_conformance ();
      engine ();
      run_profile ()
    | m ->
      Format.eprintf
        "unknown mode %S (expected micro|figures|scaling|conformance|engine|profile|all)@."
        m;
      exit 2);
    Format.printf "@.bench: done@."
  in
  let doc = "QVISOR benchmark harness." in
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "qvisor-bench" ~doc)
          Term.(
            const run $ mode_arg $ trials_arg $ min_time_arg $ out_arg
            $ quick_arg)))
