(* Engine.Tsdb: the fixed-memory multi-resolution retention store.
   Ring wraparound at every tier boundary, counter-reset rate handling,
   downsample alignment invariants, annotation ordering, and the
   documented memory bound. *)

module Tsdb = Engine.Tsdb

let tiers =
  [
    { Tsdb.resolution = 1.; slots = 10 };
    { Tsdb.resolution = 10.; slots = 12 };
    { Tsdb.resolution = 60.; slots = 4 };
  ]

let mk () = Tsdb.create ~tiers ()

let points_of r =
  Array.to_list r.Tsdb.r_points
  |> List.map (function
       | None -> None
       | Some (p : Tsdb.point) -> Some (p.Tsdb.p_count, p.Tsdb.p_sum))

let query_exn t ~name ~start ~stop ?step () =
  match Tsdb.query t ~name ~start ~stop ?step () with
  | Some r -> r
  | None -> Alcotest.failf "query %S [%g,%g) returned None" name start stop

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let test_create_validation () =
  let bad tiers msg =
    try
      ignore (Tsdb.create ~tiers ());
      Alcotest.failf "create accepted %s" msg
    with Invalid_argument _ -> ()
  in
  bad [] "an empty tier list";
  bad [ { Tsdb.resolution = 0.; slots = 4 } ] "a zero resolution";
  bad [ { Tsdb.resolution = 1.; slots = 0 } ] "zero slots";
  bad
    [ { Tsdb.resolution = 10.; slots = 4 }; { Tsdb.resolution = 1.; slots = 40 } ]
    "coarsest-first ordering";
  bad
    [ { Tsdb.resolution = 1.; slots = 100 }; { Tsdb.resolution = 10.; slots = 2 } ]
    "a coarser tier with shorter retention";
  ignore (Tsdb.create ())

let test_kind_stable () =
  let t = mk () in
  ignore (Tsdb.series t ~kind:Tsdb.Counter "x");
  (* Same kind re-interns to the same rings... *)
  ignore (Tsdb.series t ~kind:Tsdb.Counter "x");
  Alcotest.(check int) "one series" 1 (Tsdb.series_count t);
  (* ...a different kind is a caller bug. *)
  try
    ignore (Tsdb.series t ~kind:Tsdb.Gauge "x");
    Alcotest.fail "kind change accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Wraparound at each tier boundary                                   *)
(* ------------------------------------------------------------------ *)

(* One gauge sample per second for 130 s.  The 1 s x 10 tier must hold
   exactly the last 10 s, the 10 s x 12 tier the last 120 s, and the
   60 s x 4 tier everything (240 s retention > 130 s run). *)
let test_wraparound_tiers () =
  let t = mk () in
  let s = Tsdb.series t ~kind:Tsdb.Gauge "g" in
  for sec = 0 to 129 do
    Tsdb.observe t s ~time:(float_of_int sec) (float_of_int sec)
  done;
  (* Raw tier: the last 10 whole seconds are live, anything older lapped. *)
  let r = query_exn t ~name:"g" ~start:120. ~stop:130. () in
  Alcotest.(check (float 0.)) "raw step" 1. r.Tsdb.r_step;
  Array.iteri
    (fun i p ->
      match p with
      | Some (p : Tsdb.point) ->
        Alcotest.(check (float 0.))
          (Printf.sprintf "raw bucket %d holds its own second" i)
          (120. +. float_of_int i)
          p.Tsdb.p_last
      | None -> Alcotest.failf "raw bucket %d empty" i)
    r.Tsdb.r_points;
  (* One second older than raw retention: the slot was recycled, so the
     same query window served from the raw tier has no bucket 119...
     but the 10 s tier still covers it, and choose_ring must fall back. *)
  let r = query_exn t ~name:"g" ~start:110. ~stop:130. () in
  Alcotest.(check (float 0.)) "falls back to the 10s tier" 10. r.Tsdb.r_step;
  (* The 10 s tier aggregates 10 raw samples per bucket. *)
  Array.iter
    (function
      | Some (p : Tsdb.point) ->
        Alcotest.(check int) "10 samples per 10s bucket" 10 p.Tsdb.p_count
      | None -> Alcotest.fail "10s bucket empty")
    r.Tsdb.r_points;
  (* Beyond the 10 s tier's 120 s retention, only the 60 s tier covers. *)
  let r = query_exn t ~name:"g" ~start:0. ~stop:130. () in
  Alcotest.(check (float 0.)) "falls back to the 60s tier" 60. r.Tsdb.r_step;
  (match r.Tsdb.r_points.(0) with
  | Some p ->
    Alcotest.(check int) "first minute fully retained" 60 p.Tsdb.p_count;
    Alcotest.(check (float 1e-9)) "its mean is 29.5"
      29.5
      (p.Tsdb.p_sum /. float_of_int p.Tsdb.p_count)
  | None -> Alcotest.fail "first minute lapped in the 60s tier");
  (* A stale write into a lapped raw bucket must not clobber newer data. *)
  Tsdb.observe t s ~time:5. 9999.;
  let r = query_exn t ~name:"g" ~start:120. ~stop:130. () in
  (match r.Tsdb.r_points.(5) with
  | Some p ->
    Alcotest.(check (float 0.)) "stale write dropped" 125. p.Tsdb.p_last
  | None -> Alcotest.fail "bucket 125 empty")

(* ------------------------------------------------------------------ *)
(* Counter semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_counter_increments () =
  let t = mk () in
  let s = Tsdb.series t ~kind:Tsdb.Counter "c" in
  (* Cumulative 0,3,10 -> increments 0,3,7. *)
  Tsdb.observe t s ~time:0.5 0.;
  Tsdb.observe t s ~time:1.5 3.;
  Tsdb.observe t s ~time:2.5 10.;
  let r = query_exn t ~name:"c" ~start:0. ~stop:3. () in
  Alcotest.(check (list (option (pair int (float 0.)))))
    "per-bucket increases"
    [ Some (1, 0.); Some (1, 3.); Some (1, 7.) ]
    (points_of r)

let test_counter_reset () =
  let t = mk () in
  let s = Tsdb.series t ~kind:Tsdb.Counter "c" in
  Tsdb.observe t s ~time:0.5 100.;
  Tsdb.observe t s ~time:1.5 110.;
  (* The process restarted: cumulative fell to 4.  Prometheus rate()
     semantics: the post-reset value is itself the increment. *)
  Tsdb.observe t s ~time:2.5 4.;
  Tsdb.observe t s ~time:3.5 6.;
  let r = query_exn t ~name:"c" ~start:0. ~stop:4. () in
  Alcotest.(check (list (option (pair int (float 0.)))))
    "reset yields the post-reset value, not a negative rate"
    [ Some (1, 0.); Some (1, 10.); Some (1, 4.); Some (1, 2.) ]
    (points_of r)

(* ------------------------------------------------------------------ *)
(* Downsample alignment                                               *)
(* ------------------------------------------------------------------ *)

let test_alignment_invariants () =
  let t = mk () in
  let s = Tsdb.series t ~kind:Tsdb.Gauge "g" in
  for tick = 0 to 99 do
    Tsdb.observe t s ~time:(0.1 *. float_of_int tick) 1.
  done;
  List.iter
    (fun (start, stop, step) ->
      let r = query_exn t ~name:"g" ~start ~stop ?step () in
      let sr = r.Tsdb.r_step in
      (* The effective step is a whole multiple of some tier resolution
         and at least the requested step. *)
      (match step with
      | Some st ->
        Alcotest.(check bool)
          (Printf.sprintf "step %g >= requested %g" sr st)
          true (sr >= st -. 1e-9)
      | None -> ());
      let quotient = r.Tsdb.r_start /. sr in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "r_start %g aligned to step %g" r.Tsdb.r_start sr)
        (Float.round quotient) quotient;
      Alcotest.(check bool) "r_start covers start" true
        (r.Tsdb.r_start <= start +. 1e-9);
      let n = Array.length r.Tsdb.r_points in
      Alcotest.(check bool) "bounded length" true (n <= Tsdb.max_points);
      Alcotest.(check bool) "window covered" true
        (r.Tsdb.r_start +. (float_of_int n *. sr) >= stop -. 1e-9))
    [
      (0., 9.9, None);
      (0.25, 7.75, Some 0.5);
      (3., 9., Some 2.);
      (0., 9.9, Some 3.);
    ]

let test_max_points_cap () =
  (* 4000 one-second buckets requested at step 1 must widen, not grow. *)
  let t =
    Tsdb.create ~tiers:[ { Tsdb.resolution = 1.; slots = 4000 } ] ()
  in
  let s = Tsdb.series t ~kind:Tsdb.Gauge "g" in
  for sec = 0 to 3999 do
    Tsdb.observe t s ~time:(float_of_int sec) 1.
  done;
  let r = query_exn t ~name:"g" ~start:0. ~stop:4000. ~step:1. () in
  Alcotest.(check bool) "capped" true
    (Array.length r.Tsdb.r_points <= Tsdb.max_points);
  Alcotest.(check (float 0.)) "step widened to fit" 8. r.Tsdb.r_step;
  Array.iter
    (function
      | Some (p : Tsdb.point) ->
        Alcotest.(check int) "widened buckets merge 8 samples" 8 p.Tsdb.p_count
      | None -> Alcotest.fail "gap in a fully-written ring")
    r.Tsdb.r_points

let test_query_edge_cases () =
  let t = mk () in
  Alcotest.(check bool) "unknown series" true
    (Tsdb.query t ~name:"nope" ~start:0. ~stop:1. () = None);
  let s = Tsdb.series t ~kind:Tsdb.Gauge "g" in
  Tsdb.observe t s ~time:1. 1.;
  Alcotest.(check bool) "empty interval" true
    (Tsdb.query t ~name:"g" ~start:5. ~stop:5. () = None);
  (* NaN dropped, negative time clamped — neither must corrupt state. *)
  Tsdb.observe t s ~time:2. Float.nan;
  Tsdb.observe t s ~time:(-3.) 7.;
  let r = query_exn t ~name:"g" ~start:0. ~stop:3. () in
  match r.Tsdb.r_points.(0) with
  | Some p ->
    Alcotest.(check (float 0.)) "negative time landed in bucket 0" 7.
      p.Tsdb.p_last
  | None -> Alcotest.fail "bucket 0 empty"

(* ------------------------------------------------------------------ *)
(* Memory bound                                                       *)
(* ------------------------------------------------------------------ *)

let test_memory_bound () =
  let t = mk () in
  (* (10 + 12 + 4) slots x 6 words x 8 bytes. *)
  Alcotest.(check int) "per-series bytes" ((10 + 12 + 4) * 6 * 8)
    (Tsdb.per_series_bytes t);
  Alcotest.(check int) "empty store" 0 (Tsdb.memory_bytes t);
  let s1 = Tsdb.series t ~kind:Tsdb.Gauge "a" in
  let s2 = Tsdb.series t ~kind:Tsdb.Counter "b" in
  let bound = 2 * Tsdb.per_series_bytes t in
  Alcotest.(check int) "two series" bound (Tsdb.memory_bytes t);
  (* The bound is independent of run length: a million observations
     later it has not moved. *)
  for i = 0 to 999_999 do
    let time = 0.001 *. float_of_int i in
    Tsdb.observe t s1 ~time 1.;
    Tsdb.observe t s2 ~time (float_of_int i)
  done;
  Alcotest.(check int) "unchanged after 1M observations" bound
    (Tsdb.memory_bytes t);
  Alcotest.(check int) "default tiers per-series"
    25_920
    (Tsdb.per_series_bytes (Tsdb.create ()))

(* ------------------------------------------------------------------ *)
(* Annotations                                                        *)
(* ------------------------------------------------------------------ *)

let test_annotation_ordering () =
  let t = Tsdb.create ~annotation_capacity:4 () in
  let ann time kind = Tsdb.annotate t ~time ~kind ~detail:kind () in
  (* Recorded out of order: reads come back time-sorted. *)
  ann 3. "c";
  ann 1. "a";
  ann 2. "b";
  let kinds l = List.map (fun (a : Tsdb.annotation) -> a.Tsdb.a_kind) l in
  Alcotest.(check (list string)) "sorted by time" [ "a"; "b"; "c" ]
    (kinds (Tsdb.annotations t));
  Alcotest.(check (list string)) "window filter is [start, stop)" [ "b" ]
    (kinds (Tsdb.annotations ~start:2. ~stop:3. t));
  (* Overflow: capacity 4, so the oldest-recorded entry is overwritten. *)
  ann 5. "d";
  ann 4. "e";
  Alcotest.(check int) "total counts overwritten entries" 5
    (Tsdb.annotations_total t);
  Alcotest.(check (list string)) "oldest-recorded dropped, rest sorted"
    [ "a"; "b"; "e"; "d" ]
    (kinds (Tsdb.annotations t))

let test_annotation_tenant () =
  let t = Tsdb.create () in
  Tsdb.annotate t ~time:1. ~kind:"health" ~tenant:"pfabric" ~detail:"d" ();
  match Tsdb.annotations t with
  | [ a ] ->
    Alcotest.(check (option string)) "tenant carried" (Some "pfabric")
      a.Tsdb.a_tenant
  | l -> Alcotest.failf "expected 1 annotation, got %d" (List.length l)

let () =
  Alcotest.run "tsdb"
    [
      ( "create",
        [
          Alcotest.test_case "tier validation" `Quick test_create_validation;
          Alcotest.test_case "kind stability" `Quick test_kind_stable;
        ] );
      ( "rings",
        [
          Alcotest.test_case "wraparound at each tier" `Quick
            test_wraparound_tiers;
          Alcotest.test_case "counter increments" `Quick
            test_counter_increments;
          Alcotest.test_case "counter reset" `Quick test_counter_reset;
        ] );
      ( "query",
        [
          Alcotest.test_case "alignment invariants" `Quick
            test_alignment_invariants;
          Alcotest.test_case "max_points cap" `Quick test_max_points_cap;
          Alcotest.test_case "edge cases" `Quick test_query_edge_cases;
        ] );
      ( "memory",
        [ Alcotest.test_case "fixed bound" `Quick test_memory_bound ] );
      ( "annotations",
        [
          Alcotest.test_case "ordering and overflow" `Quick
            test_annotation_ordering;
          Alcotest.test_case "tenant tag" `Quick test_annotation_tenant;
        ] );
    ]
