(* Tests for the forensics layer: Engine.Recorder (ring semantics, the
   drop-rate anomaly trigger and its hysteresis), Engine.Span (nesting,
   exception safety, balanced Chrome export, worker-count-independent
   merge structure), Engine.Lineage (the NDJSON join behind
   `qvisor-cli trace query`, against a golden fixture), and the
   Telemetry satellites (Histogram.quantile, sink replacement flush). *)

module Rec = Engine.Recorder
module Span = Engine.Span
module Lin = Engine.Lineage
module Tel = Engine.Telemetry

let with_temp_file ?(suffix = ".ndjson") f =
  let path = Filename.temp_file "qvisor_forensics" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Recorder ring                                                      *)
(* ------------------------------------------------------------------ *)

let record_simple r i =
  Rec.record r ~time:(float_of_int i) ~kind:Rec.Enqueue ~uid:i ~link:1
    ~tenant:0 ~flow:2 ~rank_before:(-1) ~rank:(10 * i)

let test_ring_wraparound () =
  let r = Rec.create ~capacity:4 () in
  for i = 0 to 9 do
    record_simple r i
  done;
  Alcotest.(check int) "seen counts overwritten" 10 (Rec.seen r);
  Alcotest.(check int) "length capped" 4 (Rec.length r);
  Alcotest.(check (list int))
    "last four, oldest first"
    [ 6; 7; 8; 9 ]
    (List.map (fun (e : Rec.event) -> e.Rec.uid) (Rec.to_list r));
  let newest = List.nth (Rec.to_list r) 3 in
  Alcotest.(check int) "fields survive the ring" 90 newest.Rec.rank

let test_ring_capacity_one () =
  let r = Rec.create ~capacity:1 () in
  Alcotest.(check (list int)) "starts empty" []
    (List.map (fun (e : Rec.event) -> e.Rec.uid) (Rec.to_list r));
  record_simple r 1;
  record_simple r 2;
  Alcotest.(check (list int))
    "holds only the newest" [ 2 ]
    (List.map (fun (e : Rec.event) -> e.Rec.uid) (Rec.to_list r));
  Alcotest.(check int) "seen still counts" 2 (Rec.seen r);
  Rec.clear r;
  Alcotest.(check int) "clear empties" 0 (Rec.length r);
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "capacity 0 rejected" true
    (raises (fun () -> ignore (Rec.create ~capacity:0 ())))

let test_ring_disabled () =
  Alcotest.(check bool) "disabled" false (Rec.is_enabled Rec.disabled);
  record_simple Rec.disabled 7;
  Alcotest.(check int) "record is a no-op" 0 (Rec.seen Rec.disabled);
  Alcotest.(check int) "capacity 0" 0 (Rec.capacity Rec.disabled)

let test_dump_lineage_roundtrip () =
  let r = Rec.create ~capacity:8 () in
  Rec.record r ~time:1.5 ~kind:Rec.Preprocess ~uid:3 ~link:0 ~tenant:1
    ~flow:1 ~rank_before:17 ~rank:42;
  Rec.record r ~time:1.5 ~kind:Rec.Enqueue ~uid:3 ~link:0 ~tenant:1 ~flow:1
    ~rank_before:(-1) ~rank:42;
  Rec.record r ~time:2.25 ~kind:Rec.Drop ~uid:3 ~link:0 ~tenant:1 ~flow:1
    ~rank_before:(-1) ~rank:(-1);
  with_temp_file (fun path ->
      let oc = open_out path in
      Rec.dump r oc;
      close_out oc;
      match Lin.load_file path with
      | Error e -> Alcotest.failf "load_file: %s" e
      | Ok events ->
        Alcotest.(check int) "all lines parse" 3 (List.length events);
        Alcotest.(check (list string))
          "stages in dump order"
          [ "preprocess"; "enqueue"; "drop" ]
          (List.map (fun (e : Lin.event) -> e.Lin.ev) events);
        let pre = List.hd events in
        Alcotest.(check (option int)) "rank_before kept" (Some 17)
          pre.Lin.rank_before;
        let drop = List.nth events 2 in
        Alcotest.(check (option int)) "negative fields omitted" None
          drop.Lin.rank;
        Alcotest.(check (option int)) "uid kept" (Some 3) drop.Lin.uid)

(* ------------------------------------------------------------------ *)
(* Anomaly trigger                                                    *)
(* ------------------------------------------------------------------ *)

let test_trigger_needs_full_window () =
  let tr = Rec.Trigger.create ~window:4 ~threshold:0.5 () in
  (* Three straight drops exceed the ratio but the window isn't full. *)
  Alcotest.(check bool) "1st drop silent" false
    (Rec.Trigger.observe tr ~dropped:true);
  Alcotest.(check bool) "2nd drop silent" false
    (Rec.Trigger.observe tr ~dropped:true);
  Alcotest.(check bool) "3rd drop silent" false
    (Rec.Trigger.observe tr ~dropped:true);
  Alcotest.(check bool) "4th observation fires" true
    (Rec.Trigger.observe tr ~dropped:false);
  Alcotest.(check int) "fired once" 1 (Rec.Trigger.fired tr)

let test_trigger_hysteresis_no_storm () =
  let window = 4 and cooldown = 8 in
  let tr = Rec.Trigger.create ~window ~threshold:0.5 ~cooldown () in
  (* A sustained 100%-drop incident: without hysteresis this would fire
     on every observation once the window fills. *)
  let fires = ref [] in
  for i = 1 to 100 do
    if Rec.Trigger.observe tr ~dropped:true then fires := i :: !fires
  done;
  let fires = List.rev !fires in
  Alcotest.(check int) "first fire when the window fills" window
    (List.hd fires);
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun gap ->
      Alcotest.(check bool)
        (Printf.sprintf "gap %d respects cooldown" gap)
        true
        (gap > cooldown))
    (gaps fires);
  Alcotest.(check int) "one fire per cooldown period, not a storm"
    (1 + ((100 - window) / (cooldown + 1)))
    (List.length fires);
  Alcotest.(check int) "fired matches" (List.length fires)
    (Rec.Trigger.fired tr)

let test_trigger_recovers () =
  let tr = Rec.Trigger.create ~window:4 ~threshold:0.5 ~cooldown:0 () in
  for _ = 1 to 4 do
    ignore (Rec.Trigger.observe tr ~dropped:true)
  done;
  (* Healthy traffic slides the drops out of the window. *)
  let refires = ref 0 in
  for _ = 1 to 10 do
    if Rec.Trigger.observe tr ~dropped:false then incr refires
  done;
  (* The first healthy observations still see >= 2 drops in-window, so a
     couple of fires are legitimate; after the window turns over the
     trigger must go quiet. *)
  let late = ref 0 in
  for _ = 1 to 20 do
    if Rec.Trigger.observe tr ~dropped:false then incr late
  done;
  Alcotest.(check int) "quiet once the window is clean" 0 !late

let test_trigger_force_and_validation () =
  let tr = Rec.Trigger.create ~window:4 ~cooldown:3 () in
  Alcotest.(check bool) "force fires" true (Rec.Trigger.force tr);
  Alcotest.(check bool) "force respects cooldown" false
    (Rec.Trigger.force tr);
  for _ = 1 to 3 do
    ignore (Rec.Trigger.observe tr ~dropped:false)
  done;
  Alcotest.(check bool) "force rearms after cooldown" true
    (Rec.Trigger.force tr);
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "window < 1" true
    (raises (fun () -> ignore (Rec.Trigger.create ~window:0 ())));
  Alcotest.(check bool) "threshold 0" true
    (raises (fun () -> ignore (Rec.Trigger.create ~threshold:0. ())));
  Alcotest.(check bool) "threshold > 1" true
    (raises (fun () -> ignore (Rec.Trigger.create ~threshold:1.5 ())));
  Alcotest.(check bool) "cooldown < 0" true
    (raises (fun () -> ignore (Rec.Trigger.create ~cooldown:(-1) ())))

(* ------------------------------------------------------------------ *)
(* Span profiler                                                      *)
(* ------------------------------------------------------------------ *)

let structure profiler =
  List.map (fun (t : Span.total) -> (t.Span.name, t.Span.count))
    (Span.totals profiler)

let test_span_nesting_totals () =
  let p = Span.create () in
  Span.with_ p ~name:"outer" (fun () ->
      Span.with_ p ~name:"inner" (fun () -> ());
      Span.with_ p ~name:"inner" (fun () -> ()));
  Alcotest.(check int) "three closed spans" 3 (Span.span_count p);
  Alcotest.(check (list (pair string int)))
    "totals sorted by name with counts"
    [ ("inner", 2); ("outer", 1) ]
    (structure p);
  let find name =
    List.find (fun (t : Span.total) -> t.Span.name = name) (Span.totals p)
  in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check bool) "child time within parent" true
    (inner.Span.total_s <= outer.Span.total_s +. 1e-6);
  Alcotest.(check bool) "parent self excludes children" true
    (outer.Span.self_s <= outer.Span.total_s -. inner.Span.total_s +. 1e-6)

let test_span_exception_safety () =
  let p = Span.create () in
  (try Span.with_ p ~name:"boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  Alcotest.(check int) "span closed despite raise" 1 (Span.span_count p);
  Alcotest.(check int) "balanced entries" 2 (List.length (Span.entries p))

let test_span_chrome_balanced () =
  let p = Span.create () in
  Span.with_ p ~name:"a" (fun () -> Span.with_ p ~name:"b" (fun () -> ()));
  match Span.to_chrome_json p with
  | Engine.Json.Obj fields ->
    Alcotest.(check bool) "has displayTimeUnit" true
      (List.mem_assoc "displayTimeUnit" fields);
    (match List.assoc "traceEvents" fields with
    | Engine.Json.List events ->
      let phase ev =
        match ev with
        | Engine.Json.Obj f -> (
          match List.assoc "ph" f with
          | Engine.Json.String s -> s
          | _ -> Alcotest.fail "ph not a string")
        | _ -> Alcotest.fail "event not an object"
      in
      let phases = List.map phase events in
      let count p = List.length (List.filter (String.equal p) phases) in
      Alcotest.(check int) "one B per span" 2 (count "B");
      Alcotest.(check int) "one E per span" 2 (count "E")
    | _ -> Alcotest.fail "traceEvents not a list")
  | _ -> Alcotest.fail "chrome export not an object"

let test_span_disabled_passthrough () =
  Alcotest.(check int) "result passes through" 41
    (Span.with_ Span.disabled ~name:"x" (fun () -> 41));
  Alcotest.(check int) "nothing recorded" 0 (Span.span_count Span.disabled)

let test_span_merge_jobs_invariant () =
  (* The same conformance workload profiled at 1 and 4 workers must
     produce the same merged span structure (names and counts); only the
     measured durations may differ. *)
  let profile jobs =
    let profiler = Span.create () in
    ignore
      (Conformance.Differential.run_cases ~jobs ~profiler ~seed:11 ~cases:6
         ());
    structure profiler
  in
  let s1 = profile 1 and s4 = profile 4 in
  Alcotest.(check (list (pair string int))) "structure jobs 1 = jobs 4" s1 s4;
  Alcotest.(check bool) "profile is non-trivial" true (List.length s1 >= 2)

(* ------------------------------------------------------------------ *)
(* Lineage queries (golden fixture)                                   *)
(* ------------------------------------------------------------------ *)

(* Hand-written in the shared NDJSON schema: two packets interleaved in
   time, plus one uid-less line (a telemetry event with sampling off for
   ids).  Matches what a Telemetry trace sink or Recorder dump emits. *)
let golden_ndjson =
  {|{"t":0.000135,"ev":"preprocess","uid":12,"link":4,"tenant":3,"flow":5,"rank_before":17,"rank":42}
{"t":0.000135,"ev":"enqueue","uid":12,"link":4,"tenant":3,"flow":5,"rank":42}
{"t":0.000140,"ev":"enqueue","uid":13,"link":4,"tenant":0,"flow":9,"rank":7}
{"t":0.000200,"ev":"dequeue","uid":13,"link":4,"tenant":0,"flow":9,"rank":7}

{"t":0.000481,"ev":"dequeue","uid":12,"link":4,"tenant":3,"flow":5,"rank":42}
{"t":0.000500,"ev":"drop"}
|}

let load_golden () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc golden_ndjson;
      close_out oc;
      match Lin.load_file path with
      | Ok events -> events
      | Error e -> Alcotest.failf "golden fixture rejected: %s" e)

let test_lineage_golden_load () =
  let events = load_golden () in
  Alcotest.(check int) "blank line skipped, six events" 6
    (List.length events);
  let uids = List.filter_map (fun (e : Lin.event) -> e.Lin.uid) events in
  Alcotest.(check (list int)) "file order kept" [ 12; 12; 13; 13; 12 ] uids

let test_lineage_query_uid () =
  let events = load_golden () in
  let journey = Lin.lineage ~uid:12 events in
  Alcotest.(check (list string))
    "stage-by-stage journey"
    [ "preprocess"; "enqueue"; "dequeue" ]
    (List.map (fun (e : Lin.event) -> e.Lin.ev) journey);
  (* Same-timestamp stages keep recorded order: preprocess first. *)
  let first = List.hd journey in
  Alcotest.(check (option int)) "rank journey start" (Some 17)
    first.Lin.rank_before;
  Alcotest.(check (option int)) "rank journey end" (Some 42) first.Lin.rank

let test_lineage_grouping_and_filters () =
  let events = load_golden () in
  let all = Lin.lineage events in
  (* Grouped by uid (12 then 13 by first appearance), uid-less last. *)
  let uids = List.map (fun (e : Lin.event) -> e.Lin.uid) all in
  Alcotest.(check (list (option int)))
    "per-packet grouping, uid-less last"
    [ Some 12; Some 12; Some 12; Some 13; Some 13; None ]
    uids;
  Alcotest.(check int) "tenant filter" 3
    (List.length (Lin.lineage ~tenant:3 events));
  Alcotest.(check int) "flow+uid conjunction" 0
    (List.length (Lin.lineage ~uid:12 ~flow:9 events));
  (* The uid-less drop has no tenant: it must not match a tenant query. *)
  Alcotest.(check bool) "missing field does not match" false
    (Lin.matches ~tenant:3 (List.nth events 5))

let test_lineage_rejects_malformed () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "{\"t\":1.0,\"ev\":\"enqueue\"}\nnot json\n";
      close_out oc;
      match Lin.load_file path with
      | Ok _ -> Alcotest.fail "malformed line accepted"
      | Error e ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "error names line 2: %s" e)
          true (contains e "line 2"))

(* ------------------------------------------------------------------ *)
(* Telemetry satellites                                               *)
(* ------------------------------------------------------------------ *)

let test_histogram_quantile () =
  let tel = Tel.create () in
  let h = Tel.histogram tel "h" in
  for i = 1 to 1000 do
    Tel.Histogram.observe h (float_of_int i)
  done;
  let near q lo hi =
    let v = Tel.Histogram.quantile h q in
    Alcotest.(check bool)
      (Printf.sprintf "p%.0f=%.1f in [%.0f, %.0f]" (100. *. q) v lo hi)
      true
      (v >= lo && v <= hi)
  in
  (* P-squared sketches are approximate; the bands are generous. *)
  near 0.5 450. 550.;
  near 0.9 850. 950.;
  near 0.99 950. 1000.;
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "unsupported quantile rejected" true
    (raises (fun () -> ignore (Tel.Histogram.quantile h 0.25)))

let test_attach_sink_replacement_flushes () =
  with_temp_file (fun path1 ->
      with_temp_file (fun path2 ->
          let tel = Tel.create () in
          let oc1 = open_out path1 and oc2 = open_out path2 in
          Tel.attach_sink tel oc1;
          Tel.event tel ~time:1.0 ~kind:"enqueue" ~uid:1 ();
          (* Replacing the sink must flush the old one: the caller still
             owns oc1 and may close it without losing lines. *)
          Tel.attach_sink tel oc2;
          let lines path =
            let ic = open_in path in
            let rec go acc =
              match input_line ic with
              | l -> go (l :: acc)
              | exception End_of_file -> close_in ic; List.rev acc
            in
            go []
          in
          Alcotest.(check int) "old sink flushed on replace" 1
            (List.length (lines path1));
          Tel.event tel ~time:2.0 ~kind:"dequeue" ~uid:1 ();
          (* The counter is per-sink: the replacement starts fresh. *)
          Alcotest.(check int) "replacement sink saw one event" 1
            (Tel.events_written tel);
          Tel.detach_sink tel;
          Alcotest.(check int) "detach flushes the new sink" 1
            (List.length (lines path2));
          close_out oc1;
          close_out oc2))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "forensics"
    [
      ( "recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "capacity one" `Quick test_ring_capacity_one;
          Alcotest.test_case "disabled no-op" `Quick test_ring_disabled;
          Alcotest.test_case "dump/lineage round-trip" `Quick
            test_dump_lineage_roundtrip;
        ] );
      ( "trigger",
        [
          Alcotest.test_case "needs a full window" `Quick
            test_trigger_needs_full_window;
          Alcotest.test_case "hysteresis prevents storms" `Quick
            test_trigger_hysteresis_no_storm;
          Alcotest.test_case "recovers when drops stop" `Quick
            test_trigger_recovers;
          Alcotest.test_case "force and validation" `Quick
            test_trigger_force_and_validation;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting totals" `Quick test_span_nesting_totals;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "chrome export balanced" `Quick
            test_span_chrome_balanced;
          Alcotest.test_case "disabled passthrough" `Quick
            test_span_disabled_passthrough;
          Alcotest.test_case "merge structure jobs-invariant" `Quick
            test_span_merge_jobs_invariant;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "golden fixture loads" `Quick
            test_lineage_golden_load;
          Alcotest.test_case "uid journey" `Quick test_lineage_query_uid;
          Alcotest.test_case "grouping and filters" `Quick
            test_lineage_grouping_and_filters;
          Alcotest.test_case "malformed line rejected" `Quick
            test_lineage_rejects_malformed;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "histogram quantile" `Quick
            test_histogram_quantile;
          Alcotest.test_case "sink replacement flushes" `Quick
            test_attach_sink_replacement_flushes;
        ] );
    ]
