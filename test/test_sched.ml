(* Tests for the scheduler substrate: Packet, Qdisc helpers, FIFO, PIFO,
   SP bank, SP-PIFO, AIFO, and the tenant rank functions. *)

let mk ?(tenant = 0) ?(flow = 0) ?(size = 1000) ?remaining ?deadline
    ?(created_at = 0.) ?(rank = 0) () =
  Sched.Packet.make ~tenant ~flow ~size ?remaining ?deadline ~created_at ~rank ()

let ranks_of packets = List.map (fun p -> p.Sched.Packet.rank) packets

let uids_of packets = List.map (fun p -> p.Sched.Packet.uid) packets

(* ------------------------------------------------------------------ *)
(* Packet                                                             *)
(* ------------------------------------------------------------------ *)

let test_packet_defaults () =
  let p = Sched.Packet.make ~flow:1 ~size:1458 () in
  Alcotest.(check int) "payload excludes headers" 1400 p.Sched.Packet.payload;
  Alcotest.(check int) "remaining defaults to payload" 1400 p.Sched.Packet.remaining;
  Alcotest.(check bool) "no deadline" true (p.Sched.Packet.deadline = infinity)

let test_packet_uids_unique () =
  let a = mk () and b = mk () in
  Alcotest.(check bool) "distinct uids" true (a.Sched.Packet.uid <> b.Sched.Packet.uid)

let test_packet_compare_rank () =
  Sched.Packet.reset_uid_counter ();
  let a = mk ~rank:5 () in
  let b = mk ~rank:3 () in
  let c = mk ~rank:5 () in
  Alcotest.(check bool) "lower rank first" true (Sched.Packet.compare_rank b a < 0);
  Alcotest.(check bool) "tie broken by arrival" true
    (Sched.Packet.compare_rank a c < 0)

(* ------------------------------------------------------------------ *)
(* FIFO                                                               *)
(* ------------------------------------------------------------------ *)

let test_fifo_fifo_order () =
  let q = Sched.Fifo_queue.create ~capacity_pkts:10 () in
  let ps = List.init 5 (fun i -> mk ~rank:(10 - i) ()) in
  List.iter (fun p -> ignore (q.Sched.Qdisc.enqueue p)) ps;
  let out = Sched.Qdisc.drain q in
  Alcotest.(check (list int)) "FIFO ignores rank" (uids_of ps) (uids_of out)

let test_fifo_tail_drop () =
  let q = Sched.Fifo_queue.create ~capacity_pkts:2 () in
  let a = mk () and b = mk () and c = mk () in
  Alcotest.(check int) "a fits" 0 (List.length (q.Sched.Qdisc.enqueue a));
  Alcotest.(check int) "b fits" 0 (List.length (q.Sched.Qdisc.enqueue b));
  let dropped = q.Sched.Qdisc.enqueue c in
  Alcotest.(check (list int)) "c dropped" [ c.Sched.Packet.uid ] (uids_of dropped);
  Alcotest.(check int) "drop counter" 1 (q.Sched.Qdisc.drops ());
  Alcotest.(check int) "length" 2 (q.Sched.Qdisc.length ())

let test_fifo_bytes_accounting () =
  let q = Sched.Fifo_queue.create ~capacity_pkts:10 () in
  ignore (q.Sched.Qdisc.enqueue (mk ~size:100 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~size:200 ()));
  Alcotest.(check int) "bytes" 300 (q.Sched.Qdisc.bytes ());
  ignore (q.Sched.Qdisc.dequeue ());
  Alcotest.(check int) "bytes after dequeue" 200 (q.Sched.Qdisc.bytes ())

let test_fifo_invalid_capacity () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero capacity" true
    (raises (fun () -> ignore (Sched.Fifo_queue.create ~capacity_pkts:0 ())))

(* ------------------------------------------------------------------ *)
(* PIFO                                                               *)
(* ------------------------------------------------------------------ *)

let test_pifo_rank_order () =
  let q = Sched.Pifo_queue.create ~capacity_pkts:10 () in
  List.iter
    (fun r -> ignore (q.Sched.Qdisc.enqueue (mk ~rank:r ())))
    [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (list int)) "sorted by rank" [ 1; 3; 5; 7; 9 ]
    (ranks_of (Sched.Qdisc.drain q))

let test_pifo_stable_ties () =
  Sched.Packet.reset_uid_counter ();
  let q = Sched.Pifo_queue.create ~capacity_pkts:10 () in
  let ps = List.init 5 (fun _ -> mk ~rank:4 ()) in
  List.iter (fun p -> ignore (q.Sched.Qdisc.enqueue p)) ps;
  Alcotest.(check (list int)) "FIFO among equal ranks" (uids_of ps)
    (uids_of (Sched.Qdisc.drain q))

let test_pifo_paper_example () =
  (* Fig. 3's scheduler: offered ranks 1,3,8,7,9 → served 1,3,7,8,9. *)
  let q = Sched.Pifo_queue.create ~capacity_pkts:16 () in
  List.iter
    (fun r -> ignore (q.Sched.Qdisc.enqueue (mk ~rank:r ())))
    [ 1; 3; 8; 7; 9 ];
  Alcotest.(check (list int)) "PIFO sorts" [ 1; 3; 7; 8; 9 ]
    (ranks_of (Sched.Qdisc.drain q))

let test_pifo_worst_eviction () =
  let q = Sched.Pifo_queue.create ~capacity_pkts:3 () in
  let worst = mk ~rank:100 () in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:5 ()));
  ignore (q.Sched.Qdisc.enqueue worst);
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:7 ()));
  (* Full.  A better-ranked arrival evicts the worst packet. *)
  let better = mk ~rank:1 () in
  let dropped = q.Sched.Qdisc.enqueue better in
  Alcotest.(check (list int)) "worst evicted" [ worst.Sched.Packet.uid ]
    (uids_of dropped);
  Alcotest.(check (list int)) "queue keeps best three" [ 1; 5; 7 ]
    (ranks_of (Sched.Qdisc.drain q))

let test_pifo_worse_arrival_dropped () =
  let q = Sched.Pifo_queue.create ~capacity_pkts:2 () in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:1 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:2 ()));
  let worse = mk ~rank:50 () in
  let dropped = q.Sched.Qdisc.enqueue worse in
  Alcotest.(check (list int)) "arrival dropped" [ worse.Sched.Packet.uid ]
    (uids_of dropped);
  Alcotest.(check int) "drops counted" 1 (q.Sched.Qdisc.drops ())

let test_pifo_equal_rank_full_drops_arrival () =
  (* An arrival equal to the worst must not evict it (no churn). *)
  let q = Sched.Pifo_queue.create ~capacity_pkts:1 () in
  let first = mk ~rank:5 () in
  ignore (q.Sched.Qdisc.enqueue first);
  let second = mk ~rank:5 () in
  let dropped = q.Sched.Qdisc.enqueue second in
  Alcotest.(check (list int)) "newcomer dropped" [ second.Sched.Packet.uid ]
    (uids_of dropped);
  Alcotest.(check (list int)) "original kept" [ first.Sched.Packet.uid ]
    (uids_of (Sched.Qdisc.drain q))

let prop_pifo_sorted =
  QCheck.Test.make ~name:"pifo dequeues in rank order" ~count:300
    QCheck.(list (int_bound 1000))
    (fun ranks ->
      let q = Sched.Pifo_queue.create ~capacity_pkts:(max 1 (List.length ranks)) () in
      List.iter (fun r -> ignore (q.Sched.Qdisc.enqueue (mk ~rank:r ()))) ranks;
      let out = ranks_of (Sched.Qdisc.drain q) in
      out = List.sort compare ranks)

let prop_pifo_bounded_keeps_best =
  QCheck.Test.make ~name:"bounded pifo keeps the best-ranked packets" ~count:300
    QCheck.(pair (int_range 1 20) (list_of_size (Gen.int_range 0 60) (int_bound 100)))
    (fun (cap, ranks) ->
      let q = Sched.Pifo_queue.create ~capacity_pkts:cap () in
      List.iter (fun r -> ignore (q.Sched.Qdisc.enqueue (mk ~rank:r ()))) ranks;
      let kept = ranks_of (Sched.Qdisc.drain q) in
      let expected =
        let sorted = List.sort compare ranks in
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: tl -> x :: take (n - 1) tl
        in
        take cap sorted
      in
      (* Multiset equality of kept vs the cap best ranks.  Ties at the
         boundary are broken by arrival order, so only rank multisets are
         compared. *)
      List.sort compare kept = expected)

(* ------------------------------------------------------------------ *)
(* Bucket queue (the O(1) exact PIFO)                                 *)
(* ------------------------------------------------------------------ *)

let test_bucket_rank_order () =
  let q = Sched.Bucket_queue.create ~capacity_pkts:10 () in
  List.iter
    (fun r -> ignore (q.Sched.Qdisc.enqueue (mk ~rank:r ())))
    [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (list int)) "sorted by rank" [ 1; 3; 5; 7; 9 ]
    (ranks_of (Sched.Qdisc.drain q))

let test_bucket_stable_ties () =
  Sched.Packet.reset_uid_counter ();
  let q = Sched.Bucket_queue.create ~capacity_pkts:10 () in
  let ps = List.init 5 (fun _ -> mk ~rank:4 ()) in
  List.iter (fun p -> ignore (q.Sched.Qdisc.enqueue p)) ps;
  Alcotest.(check (list int)) "FIFO among equal ranks" (uids_of ps)
    (uids_of (Sched.Qdisc.drain q))

let test_bucket_worst_eviction () =
  let q = Sched.Bucket_queue.create ~capacity_pkts:3 () in
  let worst = mk ~rank:100 () in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:5 ()));
  ignore (q.Sched.Qdisc.enqueue worst);
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:7 ()));
  let better = mk ~rank:1 () in
  let dropped = q.Sched.Qdisc.enqueue better in
  Alcotest.(check (list int)) "worst evicted" [ worst.Sched.Packet.uid ]
    (uids_of dropped);
  Alcotest.(check (list int)) "queue keeps best three" [ 1; 5; 7 ]
    (ranks_of (Sched.Qdisc.drain q))

let test_bucket_equal_rank_full_drops_arrival () =
  (* Same no-churn rule as Pifo_queue: among a full queue's worst rank,
     the newest packet is the eviction victim, so an equal-rank arrival
     (necessarily the newest) is tail-dropped. *)
  let q = Sched.Bucket_queue.create ~capacity_pkts:1 () in
  let first = mk ~rank:5 () in
  ignore (q.Sched.Qdisc.enqueue first);
  let second = mk ~rank:5 () in
  let dropped = q.Sched.Qdisc.enqueue second in
  Alcotest.(check (list int)) "newcomer dropped" [ second.Sched.Packet.uid ]
    (uids_of dropped);
  Alcotest.(check (list int)) "original kept" [ first.Sched.Packet.uid ]
    (uids_of (Sched.Qdisc.drain q))

let test_bucket_rank_clamping () =
  (* Out-of-range ranks order as if clamped to [0, rank_max] but the
     packets themselves are untouched. *)
  let q = Sched.Bucket_queue.create ~rank_max:15 ~capacity_pkts:10 () in
  let over = mk ~rank:1_000 () in
  let neg = mk ~rank:(-3) () in
  let mid = mk ~rank:7 () in
  List.iter (fun p -> ignore (q.Sched.Qdisc.enqueue p)) [ over; neg; mid ];
  Alcotest.(check (list int)) "clamped ordering, ranks preserved"
    [ -3; 7; 1_000 ]
    (ranks_of (Sched.Qdisc.drain q))

let test_bucket_accounting () =
  let q = Sched.Bucket_queue.create ~capacity_pkts:4 () in
  ignore (q.Sched.Qdisc.enqueue (mk ~size:100 ~rank:1 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~size:200 ~rank:2 ()));
  Alcotest.(check int) "length" 2 (q.Sched.Qdisc.length ());
  Alcotest.(check int) "bytes" 300 (q.Sched.Qdisc.bytes ());
  (match q.Sched.Qdisc.peek () with
  | Some p -> Alcotest.(check int) "peek best" 1 p.Sched.Packet.rank
  | None -> Alcotest.fail "peek on non-empty queue");
  ignore (q.Sched.Qdisc.dequeue ());
  Alcotest.(check int) "bytes after dequeue" 200 (q.Sched.Qdisc.bytes ())

(* One (op list) ~ one scenario: enqueue a rank, or dequeue. *)
let bucket_ops_gen =
  QCheck.(
    pair (int_range 1 12)
      (list_of_size (Gen.int_range 0 120)
         (option (int_bound 64))))

let prop_bucket_matches_pifo_map =
  (* Heap-vs-bucket differential: on any interleaving of enqueues (dense
     ranks, forcing ties and evictions at small capacity) and dequeues,
     Bucket_queue emits byte-identical uid sequences — served and
     dropped — to the Map-based Pifo_queue. *)
  QCheck.Test.make ~name:"bucket queue matches map-based pifo" ~count:300
    bucket_ops_gen
    (fun (cap, ops) ->
      let bucket = Sched.Bucket_queue.create ~capacity_pkts:cap () in
      let map = Sched.Pifo_queue.create ~capacity_pkts:cap () in
      let run (q : Sched.Qdisc.t) =
        (* Replay under a reset uid counter so both backends see packets
           with identical uids. *)
        Sched.Packet.reset_uid_counter ();
        let trace = ref [] in
        List.iter
          (fun op ->
            match op with
            | Some rank ->
              q.Sched.Qdisc.enqueue_drop (mk ~rank ()) (fun d ->
                  trace := `Drop d.Sched.Packet.uid :: !trace)
            | None -> (
              match q.Sched.Qdisc.dequeue () with
              | Some p -> trace := `Serve p.Sched.Packet.uid :: !trace
              | None -> trace := `Empty :: !trace))
          ops;
        List.iter
          (fun (p : Sched.Packet.t) ->
            trace := `Serve p.Sched.Packet.uid :: !trace)
          (Sched.Qdisc.drain q);
        List.rev !trace
      in
      run bucket = run map)

(* ------------------------------------------------------------------ *)
(* SP bank                                                            *)
(* ------------------------------------------------------------------ *)

let classify_by_rank_div ~per_queue p = p.Sched.Packet.rank / per_queue

let test_sp_bank_strict_priority () =
  let q =
    Sched.Sp_bank.create ~num_queues:4 ~queue_capacity_pkts:10
      ~classify:(classify_by_rank_div ~per_queue:10) ()
  in
  List.iter
    (fun r -> ignore (q.Sched.Qdisc.enqueue (mk ~rank:r ())))
    [ 35; 5; 25; 15; 6 ];
  Alcotest.(check (list int)) "served by queue priority" [ 5; 6; 15; 25; 35 ]
    (ranks_of (Sched.Qdisc.drain q))

let test_sp_bank_fifo_within_queue () =
  Sched.Packet.reset_uid_counter ();
  let q =
    Sched.Sp_bank.create ~num_queues:2 ~queue_capacity_pkts:10
      ~classify:(fun _ -> 0) ()
  in
  let ps = List.init 4 (fun i -> mk ~rank:(100 - i) ()) in
  List.iter (fun p -> ignore (q.Sched.Qdisc.enqueue p)) ps;
  Alcotest.(check (list int)) "FIFO within a queue" (uids_of ps)
    (uids_of (Sched.Qdisc.drain q))

let test_sp_bank_per_queue_drop () =
  let q =
    Sched.Sp_bank.create ~num_queues:2 ~queue_capacity_pkts:1
      ~classify:(fun p -> p.Sched.Packet.rank) ()
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:0 ()));
  let d1 = q.Sched.Qdisc.enqueue (mk ~rank:0 ()) in
  Alcotest.(check int) "queue 0 full" 1 (List.length d1);
  let d2 = q.Sched.Qdisc.enqueue (mk ~rank:1 ()) in
  Alcotest.(check int) "queue 1 has room" 0 (List.length d2)

let test_sp_bank_classifier_clamped () =
  let q =
    Sched.Sp_bank.create ~num_queues:2 ~queue_capacity_pkts:10
      ~classify:(fun p -> p.Sched.Packet.rank) ()
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:(-5) ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:99 ()));
  Alcotest.(check int) "both enqueued" 2 (q.Sched.Qdisc.length ())

let test_queue_of_rank () =
  let bounds = [| 10; 20; 30 |] in
  Alcotest.(check int) "below first bound" 0 (Sched.Sp_bank.queue_of_rank ~bounds 5);
  Alcotest.(check int) "at bound" 0 (Sched.Sp_bank.queue_of_rank ~bounds 10);
  Alcotest.(check int) "middle" 1 (Sched.Sp_bank.queue_of_rank ~bounds 15);
  Alcotest.(check int) "above last bound" 2 (Sched.Sp_bank.queue_of_rank ~bounds 99)

(* ------------------------------------------------------------------ *)
(* SP-PIFO                                                            *)
(* ------------------------------------------------------------------ *)

let inversions out =
  (* Count adjacent-pair rank inversions in the service order. *)
  let rec count acc = function
    | a :: (b :: _ as tl) ->
      count (if a > b then acc + 1 else acc) tl
    | _ -> acc
  in
  count 0 (ranks_of out)

let test_sp_pifo_reduces_inversions () =
  (* With as many queues as distinct ranks, a settled SP-PIFO orders a
     repeating rank pattern with far fewer inversions than FIFO. *)
  let r = Engine.Rng.create ~seed:3 in
  let arrivals = Array.init 400 (fun _ -> Engine.Rng.int_range r ~lo:0 ~hi:7) in
  let run qdisc =
    Array.iter (fun rank -> ignore (qdisc.Sched.Qdisc.enqueue (mk ~rank ()))) arrivals;
    Sched.Qdisc.drain qdisc
  in
  let sp_pifo =
    Sched.Sp_pifo.create ~num_queues:8 ~queue_capacity_pkts:1000 ()
  in
  let fifo = Sched.Fifo_queue.create ~capacity_pkts:1000 () in
  let i_sp = inversions (run sp_pifo) in
  let i_fifo = inversions (run fifo) in
  if i_sp >= i_fifo then
    Alcotest.failf "sp-pifo (%d) not better than fifo (%d)" i_sp i_fifo

let test_sp_pifo_single_queue_is_fifo () =
  Sched.Packet.reset_uid_counter ();
  let q = Sched.Sp_pifo.create ~num_queues:1 ~queue_capacity_pkts:10 () in
  let ps = List.init 4 (fun i -> mk ~rank:(4 - i) ()) in
  List.iter (fun p -> ignore (q.Sched.Qdisc.enqueue p)) ps;
  Alcotest.(check (list int)) "degenerates to FIFO" (uids_of ps)
    (uids_of (Sched.Qdisc.drain q))

let test_sp_pifo_push_up () =
  let q, bounds =
    Sched.Sp_pifo.create_with_bounds ~num_queues:2 ~queue_capacity_pkts:10 ()
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:5 ()));
  (* Rank 5 lands in the lowest-priority queue (bound 0 <= 5) and raises
     its bound to 5. *)
  Alcotest.(check (array int)) "push-up" [| 0; 5 |] (bounds ())

let test_sp_pifo_push_down () =
  let q, bounds =
    Sched.Sp_pifo.create_with_bounds ~num_queues:2 ~queue_capacity_pkts:10 ()
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:5 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:10 ()));
  (* bounds now [5(after q0 push-up? no: q0 bound is 0), ...] — rank 5 went
     to q1 (bound 0<=5 → bound 5), rank 10 to q1 again (5<=10 → bound 10).
     Wait: scan is bottom-up so q1 is checked first. bounds = [0; 10]. *)
  Alcotest.(check (array int)) "after two push-ups" [| 0; 10 |] (bounds ());
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:3 ()));
  (* 3 < 10 so q1 rejected; q0 bound 0 <= 3 → q0, bound 3. *)
  Alcotest.(check (array int)) "hi queue used" [| 3; 10 |] (bounds ());
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:1 ()));
  (* 1 < both bounds → inversion, push-down by cost 3-1=2. *)
  Alcotest.(check (array int)) "push-down" [| 1; 8 |] (bounds ())

let test_sp_pifo_never_loses_packets () =
  let q = Sched.Sp_pifo.create ~num_queues:4 ~queue_capacity_pkts:1000 () in
  let r = Engine.Rng.create ~seed:9 in
  for _ = 1 to 500 do
    ignore (q.Sched.Qdisc.enqueue (mk ~rank:(Engine.Rng.int_range r ~lo:0 ~hi:100) ()))
  done;
  Alcotest.(check int) "all queued" 500 (q.Sched.Qdisc.length ());
  Alcotest.(check int) "all drained" 500 (List.length (Sched.Qdisc.drain q))

let test_sp_pifo_bounds_track_distribution () =
  (* Feed a stationary two-modal rank distribution and sample the bounds
     over time: adaptation should keep the low bound at the low mode and
     push the high bound to the high mode most of the time (push-downs
     make any single snapshot noisy — that is the algorithm's documented
     cost mechanism, so we assert on the sampled majority). *)
  let q, bounds =
    Sched.Sp_pifo.create_with_bounds ~num_queues:2 ~queue_capacity_pkts:10_000 ()
  in
  let r = Engine.Rng.create ~seed:77 in
  let separated = ref 0 in
  let samples = ref 0 in
  for i = 1 to 4_000 do
    let rank =
      if Engine.Rng.bool r then Engine.Rng.int_range r ~lo:0 ~hi:10
      else Engine.Rng.int_range r ~lo:1000 ~hi:1010
    in
    ignore (q.Sched.Qdisc.enqueue (mk ~rank ()));
    ignore (q.Sched.Qdisc.dequeue ());
    if i > 500 && i mod 10 = 0 then begin
      incr samples;
      let b = bounds () in
      if b.(1) - b.(0) > 500 then incr separated
    end
  done;
  let fraction = float_of_int !separated /. float_of_int !samples in
  Alcotest.(check bool)
    (Printf.sprintf "modes separated in %.0f%% of samples" (100. *. fraction))
    true
    (fraction > 0.5)

let prop_sp_pifo_conserves =
  QCheck.Test.make ~name:"sp-pifo conserves packets (no capacity pressure)"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 0 200) (int_bound 500))
    (fun ranks ->
      let q = Sched.Sp_pifo.create ~num_queues:8 ~queue_capacity_pkts:10_000 () in
      List.iter (fun rank -> ignore (q.Sched.Qdisc.enqueue (mk ~rank ()))) ranks;
      let out = Sched.Qdisc.drain q in
      List.sort compare (ranks_of out) = List.sort compare ranks)

(* ------------------------------------------------------------------ *)
(* AIFO                                                               *)
(* ------------------------------------------------------------------ *)

let test_aifo_admits_when_empty () =
  let q = Sched.Aifo.create ~capacity_pkts:10 () in
  let d = q.Sched.Qdisc.enqueue (mk ~rank:50 ()) in
  Alcotest.(check int) "first packet admitted" 0 (List.length d)

let test_aifo_serves_fifo () =
  Sched.Packet.reset_uid_counter ();
  let q = Sched.Aifo.create ~capacity_pkts:100 () in
  let ps = List.init 5 (fun i -> mk ~rank:i ()) in
  List.iter (fun p -> ignore (q.Sched.Qdisc.enqueue p)) ps;
  Alcotest.(check (list int)) "FIFO service" (uids_of ps)
    (uids_of (Sched.Qdisc.drain q))

let test_aifo_rejects_high_rank_under_pressure () =
  let q = Sched.Aifo.create ~window:64 ~k:0.1 ~capacity_pkts:10 () in
  (* Fill most of the queue with low ranks to consume headroom. *)
  for _ = 1 to 9 do
    ignore (q.Sched.Qdisc.enqueue (mk ~rank:1 ()))
  done;
  (* Now a very high-rank packet should be rejected: its quantile is ~1 but
     headroom is ~10%. *)
  let d = q.Sched.Qdisc.enqueue (mk ~rank:1000 ()) in
  Alcotest.(check int) "high rank rejected" 1 (List.length d);
  (* A rank at the bottom of the distribution is still admitted. *)
  let d2 = q.Sched.Qdisc.enqueue (mk ~rank:0 ()) in
  Alcotest.(check int) "low rank admitted" 0 (List.length d2)

let test_aifo_full_drops () =
  let q = Sched.Aifo.create ~capacity_pkts:2 ~k:0.0 () in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:0 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:0 ()));
  let d = q.Sched.Qdisc.enqueue (mk ~rank:0 ()) in
  Alcotest.(check int) "full queue drops" 1 (List.length d)

let test_aifo_invalid_params () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "k = 1" true
    (raises (fun () -> ignore (Sched.Aifo.create ~k:1.0 ~capacity_pkts:4 ())));
  Alcotest.(check bool) "negative window" true
    (raises (fun () -> ignore (Sched.Aifo.create ~window:0 ~capacity_pkts:4 ())))

(* ------------------------------------------------------------------ *)
(* DRR bank                                                           *)
(* ------------------------------------------------------------------ *)

let drr ?(weights = None) ?(quantum = 1500) () =
  Sched.Drr_bank.create ?weights:(Option.map Array.of_list weights)
    ~num_queues:2 ~queue_capacity_pkts:64 ~quantum_bytes:quantum
    ~classify:(fun p -> p.Sched.Packet.tenant) ()

let test_drr_equal_interleave () =
  (* Quantum = packet size: each visit's credit covers exactly one packet
     with no leftover deficit, so service alternates strictly. *)
  let q = drr ~quantum:1000 () in
  for _ = 1 to 4 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~size:1000 ()));
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~size:1000 ()))
  done;
  let served =
    List.map (fun (p : Sched.Packet.t) -> p.Sched.Packet.tenant) (Sched.Qdisc.drain q)
  in
  Alcotest.(check (list int)) "alternating service" [ 0; 1; 0; 1; 0; 1; 0; 1 ] served

let test_drr_deficit_carry_over () =
  (* Quantum 1500 with 1000 B packets: the 500 B leftover lets a queue
     serve two packets every other visit — the canonical DRR pattern. *)
  let q = drr ~quantum:1500 () in
  for _ = 1 to 4 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~size:1000 ()));
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~size:1000 ()))
  done;
  let served =
    List.map (fun (p : Sched.Packet.t) -> p.Sched.Packet.tenant) (Sched.Qdisc.drain q)
  in
  Alcotest.(check (list int)) "deficit carry-over pattern"
    [ 0; 1; 0; 0; 1; 1; 0; 1 ] served

let test_drr_weights_bias () =
  let q = drr ~weights:(Some [ 3.0; 1.0 ]) () in
  for _ = 1 to 12 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~size:1400 ()));
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~size:1400 ()))
  done;
  let first8 =
    List.filteri (fun i _ -> i < 8)
      (List.map (fun (p : Sched.Packet.t) -> p.Sched.Packet.tenant) (Sched.Qdisc.drain q))
  in
  let t0 = List.length (List.filter (fun t -> t = 0) first8) in
  Alcotest.(check bool) (Printf.sprintf "weighted queue got %d of 8" t0) true (t0 >= 5)

let test_drr_byte_fairness () =
  (* Tenant 0 sends big packets, tenant 1 small ones: byte shares should
     still be near equal, so tenant 1 serves ~3 packets per tenant-0
     packet. *)
  let q = drr ~quantum:1500 () in
  for _ = 1 to 6 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~size:1500 ()))
  done;
  for _ = 1 to 18 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~size:500 ()))
  done;
  let served = Sched.Qdisc.drain q in
  let bytes tenant =
    List.fold_left
      (fun acc (p : Sched.Packet.t) ->
        if p.Sched.Packet.tenant = tenant then acc + p.Sched.Packet.size else acc)
      0
      (List.filteri (fun i _ -> i < 12) served)
  in
  let b0 = bytes 0 and b1 = bytes 1 in
  Alcotest.(check bool)
    (Printf.sprintf "byte shares near equal (%d vs %d)" b0 b1)
    true
    (abs (b0 - b1) <= 1500)

let test_drr_work_conserving () =
  let q = drr () in
  for i = 1 to 5 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~size:(500 * i) ()))
  done;
  Alcotest.(check int) "all served from one queue" 5
    (List.length (Sched.Qdisc.drain q))

let test_drr_drops_per_queue () =
  let q =
    Sched.Drr_bank.create ~num_queues:2 ~queue_capacity_pkts:1
      ~quantum_bytes:1500 ~classify:(fun p -> p.Sched.Packet.tenant) ()
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ()));
  let d = q.Sched.Qdisc.enqueue (mk ~tenant:0 ()) in
  Alcotest.(check int) "full queue drops" 1 (List.length d);
  let d2 = q.Sched.Qdisc.enqueue (mk ~tenant:1 ()) in
  Alcotest.(check int) "other queue open" 0 (List.length d2)

let test_drr_invalid () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad quantum" true
    (raises (fun () ->
         ignore
           (Sched.Drr_bank.create ~num_queues:2 ~queue_capacity_pkts:4
              ~quantum_bytes:0 ~classify:(fun _ -> 0) ())));
  Alcotest.(check bool) "weights length" true
    (raises (fun () ->
         ignore
           (Sched.Drr_bank.create ~weights:[| 1.0 |] ~num_queues:2
              ~queue_capacity_pkts:4 ~quantum_bytes:100 ~classify:(fun _ -> 0) ())))

(* ------------------------------------------------------------------ *)
(* Calendar queue                                                     *)
(* ------------------------------------------------------------------ *)

let test_calendar_orders_by_bucket () =
  let q =
    Sched.Calendar_queue.create ~num_buckets:8 ~bucket_width:10
      ~capacity_pkts:64 ()
  in
  List.iter
    (fun rank -> ignore (q.Sched.Qdisc.enqueue (mk ~rank ())))
    [ 35; 5; 25; 15 ];
  Alcotest.(check (list int)) "bucket order" [ 5; 15; 25; 35 ]
    (ranks_of (Sched.Qdisc.drain q))

let test_calendar_fifo_within_bucket () =
  Sched.Packet.reset_uid_counter ();
  let q =
    Sched.Calendar_queue.create ~num_buckets:4 ~bucket_width:100
      ~capacity_pkts:64 ()
  in
  (* Ranks 90 and 10 share bucket 0: FIFO between them despite ranks. *)
  let a = mk ~rank:90 () in
  let b = mk ~rank:10 () in
  ignore (q.Sched.Qdisc.enqueue a);
  ignore (q.Sched.Qdisc.enqueue b);
  Alcotest.(check (list int)) "FIFO within bucket"
    [ a.Sched.Packet.uid; b.Sched.Packet.uid ]
    (uids_of (Sched.Qdisc.drain q))

let test_calendar_horizon_aliases () =
  let q =
    Sched.Calendar_queue.create ~num_buckets:2 ~bucket_width:10
      ~capacity_pkts:64 ()
  in
  (* Rank 1000 is far beyond the 2-bucket horizon: it aliases into the
     last bucket and is served right after the current day. *)
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:1000 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:5 ()));
  Alcotest.(check (list int)) "alias into horizon" [ 5; 1000 ]
    (ranks_of (Sched.Qdisc.drain q))

let test_calendar_day_advances () =
  let q, day =
    Sched.Calendar_queue.create_with_day ~num_buckets:4 ~bucket_width:10
      ~capacity_pkts:64 ()
  in
  Alcotest.(check int) "day starts at 0" 0 (day ());
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:25 ()));
  ignore (q.Sched.Qdisc.dequeue ());
  Alcotest.(check int) "rotated to the packet's bucket" 20 (day ())

let test_calendar_late_packet_served_now () =
  let q, day =
    Sched.Calendar_queue.create_with_day ~num_buckets:4 ~bucket_width:10
      ~capacity_pkts:64 ()
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:35 ()));
  ignore (q.Sched.Qdisc.dequeue ());
  Alcotest.(check bool) "day moved on" true (day () > 0);
  (* A rank below the current day lands in today's bucket. *)
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:0 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:(day () + 35) ()));
  Alcotest.(check int) "late packet first" 0
    (match q.Sched.Qdisc.dequeue () with
    | Some p -> p.Sched.Packet.rank
    | None -> -1)

let test_calendar_capacity () =
  let q =
    Sched.Calendar_queue.create ~num_buckets:2 ~bucket_width:10
      ~capacity_pkts:1 ()
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:1 ()));
  Alcotest.(check int) "overflow dropped" 1
    (List.length (q.Sched.Qdisc.enqueue (mk ~rank:2 ())));
  Alcotest.(check int) "drop counted" 1 (q.Sched.Qdisc.drops ())

(* ------------------------------------------------------------------ *)
(* Rankers                                                            *)
(* ------------------------------------------------------------------ *)

let test_pfabric_rank_is_remaining () =
  let rk = Sched.Ranker.pfabric ~unit_bytes:1000 () in
  let p = mk ~remaining:250_000 () in
  Alcotest.(check int) "250 KB -> rank 250" 250 (Sched.Ranker.tag rk ~now:0. p);
  Alcotest.(check int) "rank stored on packet" 250 p.Sched.Packet.rank

let test_pfabric_monotone_in_remaining () =
  let rk = Sched.Ranker.pfabric () in
  let small = mk ~remaining:10_000 () in
  let big = mk ~remaining:1_000_000 () in
  Alcotest.(check bool) "short flows first" true
    (Sched.Ranker.tag rk ~now:0. small < Sched.Ranker.tag rk ~now:0. big)

let test_edf_earlier_deadline_first () =
  let rk = Sched.Ranker.edf () in
  let soon = mk ~deadline:0.001 () in
  let late = mk ~deadline:0.5 () in
  Alcotest.(check bool) "earlier deadline ranks lower" true
    (Sched.Ranker.tag rk ~now:0. soon < Sched.Ranker.tag rk ~now:0. late)

let test_edf_expired_deadline_clamps () =
  let rk = Sched.Ranker.edf () in
  let overdue = mk ~deadline:1.0 () in
  Alcotest.(check int) "expired clamps to 0" 0 (Sched.Ranker.tag rk ~now:2.0 overdue)

let test_edf_no_deadline_is_horizon () =
  let rk = Sched.Ranker.edf ~unit_seconds:1e-3 ~horizon:1.0 () in
  let p = mk () in
  Alcotest.(check int) "no deadline -> horizon" 1000 (Sched.Ranker.tag rk ~now:0. p)

let test_edf_rank_decreases_with_time () =
  let rk = Sched.Ranker.edf () in
  let p1 = mk ~deadline:1.0 () in
  let p2 = mk ~deadline:1.0 () in
  let early = Sched.Ranker.tag rk ~now:0.0 p1 in
  let later = Sched.Ranker.tag rk ~now:0.5 p2 in
  Alcotest.(check bool) "urgency grows as deadline nears" true (later < early)

let test_stfq_backlogged_flow_accumulates () =
  let rk = Sched.Ranker.stfq ~unit_bytes:100 () in
  let tag () = Sched.Ranker.tag rk ~now:0. (mk ~flow:1 ~size:1000 ()) in
  let r1 = tag () in
  let r2 = tag () in
  let r3 = tag () in
  Alcotest.(check (list int)) "start times advance by len/weight"
    [ 0; 10; 20 ] [ r1; r2; r3 ]

let test_stfq_new_flow_not_starved () =
  let rk = Sched.Ranker.stfq ~unit_bytes:100 () in
  (* Flow 1 backlogs 50 packets. *)
  for _ = 1 to 50 do
    ignore (Sched.Ranker.tag rk ~now:0. (mk ~flow:1 ~size:1000 ()))
  done;
  let f1_next = Sched.Ranker.tag rk ~now:0. (mk ~flow:1 ~size:1000 ()) in
  let f2_first = Sched.Ranker.tag rk ~now:0. (mk ~flow:2 ~size:1000 ()) in
  Alcotest.(check bool) "newcomer joins near the virtual clock, not at 0" true
    (f2_first <= f1_next && f2_first > 0)

let test_stfq_weights () =
  let weight ~flow = if flow = 1 then 2.0 else 1.0 in
  let rk = Sched.Ranker.stfq ~unit_bytes:100 ~weight () in
  (* Two flows, same arrivals: the weight-2 flow's start times advance at
     half the pace, so it is served twice as often. *)
  let r1a = Sched.Ranker.tag rk ~now:0. (mk ~flow:1 ~size:1000 ()) in
  let r2a = Sched.Ranker.tag rk ~now:0. (mk ~flow:2 ~size:1000 ()) in
  let r1b = Sched.Ranker.tag rk ~now:0. (mk ~flow:1 ~size:1000 ()) in
  let r2b = Sched.Ranker.tag rk ~now:0. (mk ~flow:2 ~size:1000 ()) in
  Alcotest.(check int) "both start at 0 (a)" 0 r1a;
  Alcotest.(check int) "both start at 0 (b)" 0 r2a;
  Alcotest.(check bool) "weighted flow advances slower" true (r1b < r2b)

let test_fifo_ranker_orders_by_creation () =
  let rk = Sched.Ranker.fifo () in
  let a = mk ~created_at:0.001 () in
  let b = mk ~created_at:0.002 () in
  Alcotest.(check bool) "earlier creation ranks lower" true
    (Sched.Ranker.tag rk ~now:1. a < Sched.Ranker.tag rk ~now:1. b)

let test_lstf_slack () =
  let rk = Sched.Ranker.lstf ~line_rate:1e9 () in
  let tight = mk ~deadline:0.01 ~remaining:1_000_000 () in
  let loose = mk ~deadline:0.01 ~remaining:1_000 () in
  Alcotest.(check bool) "less slack ranks lower" true
    (Sched.Ranker.tag rk ~now:0. tight < Sched.Ranker.tag rk ~now:0. loose)

let test_constant_ranker () =
  let rk = Sched.Ranker.constant 7 in
  Alcotest.(check int) "constant" 7 (Sched.Ranker.tag rk ~now:0. (mk ()))

let test_ranker_names () =
  Alcotest.(check string) "pfabric" "pfabric" (Sched.Ranker.name (Sched.Ranker.pfabric ()));
  Alcotest.(check string) "srpt" "srpt" (Sched.Ranker.name (Sched.Ranker.srpt ()));
  Alcotest.(check string) "edf" "edf" (Sched.Ranker.name (Sched.Ranker.edf ()));
  Alcotest.(check string) "stfq" "stfq" (Sched.Ranker.name (Sched.Ranker.stfq ()))

let test_pfabric_plus_pifo_is_srpt () =
  (* End-to-end sanity: pFabric ranks + a PIFO queue serve the shortest
     remaining flow first. *)
  let rk = Sched.Ranker.pfabric () in
  let q = Sched.Pifo_queue.create ~capacity_pkts:10 () in
  let flows = [ (1, 900_000); (2, 5_000); (3, 90_000) ] in
  List.iter
    (fun (flow, remaining) ->
      let p = mk ~flow ~remaining () in
      ignore (Sched.Ranker.tag rk ~now:0. p);
      ignore (q.Sched.Qdisc.enqueue p))
    flows;
  let served = List.map (fun p -> p.Sched.Packet.flow) (Sched.Qdisc.drain q) in
  Alcotest.(check (list int)) "shortest flow first" [ 2; 3; 1 ] served

let prop_edf_order_matches_deadline_order =
  QCheck.Test.make ~name:"edf rank order matches deadline order" ~count:200
    QCheck.(pair (float_bound_exclusive 1.) (float_bound_exclusive 1.))
    (fun (d1, d2) ->
      let rk = Sched.Ranker.edf ~unit_seconds:1e-9 () in
      let p1 = mk ~deadline:(1. +. d1) () in
      let p2 = mk ~deadline:(1. +. d2) () in
      let r1 = Sched.Ranker.tag rk ~now:0. p1 in
      let r2 = Sched.Ranker.tag rk ~now:0. p2 in
      (compare d1 d2 = 0) || (d1 < d2) = (r1 < r2))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sched"
    [
      ( "packet",
        [
          Alcotest.test_case "defaults" `Quick test_packet_defaults;
          Alcotest.test_case "uids unique" `Quick test_packet_uids_unique;
          Alcotest.test_case "compare_rank" `Quick test_packet_compare_rank;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "service order" `Quick test_fifo_fifo_order;
          Alcotest.test_case "tail drop" `Quick test_fifo_tail_drop;
          Alcotest.test_case "bytes accounting" `Quick test_fifo_bytes_accounting;
          Alcotest.test_case "invalid capacity" `Quick test_fifo_invalid_capacity;
        ] );
      ( "pifo",
        [
          Alcotest.test_case "rank order" `Quick test_pifo_rank_order;
          Alcotest.test_case "stable ties" `Quick test_pifo_stable_ties;
          Alcotest.test_case "paper example" `Quick test_pifo_paper_example;
          Alcotest.test_case "worst eviction" `Quick test_pifo_worst_eviction;
          Alcotest.test_case "worse arrival dropped" `Quick test_pifo_worse_arrival_dropped;
          Alcotest.test_case "equal rank keeps incumbent" `Quick
            test_pifo_equal_rank_full_drops_arrival;
          qc prop_pifo_sorted;
          qc prop_pifo_bounded_keeps_best;
        ] );
      ( "bucket",
        [
          Alcotest.test_case "rank order" `Quick test_bucket_rank_order;
          Alcotest.test_case "stable ties" `Quick test_bucket_stable_ties;
          Alcotest.test_case "worst eviction" `Quick test_bucket_worst_eviction;
          Alcotest.test_case "equal-rank full drops arrival" `Quick
            test_bucket_equal_rank_full_drops_arrival;
          Alcotest.test_case "rank clamping" `Quick test_bucket_rank_clamping;
          Alcotest.test_case "accounting" `Quick test_bucket_accounting;
          qc prop_bucket_matches_pifo_map;
        ] );
      ( "sp_bank",
        [
          Alcotest.test_case "strict priority" `Quick test_sp_bank_strict_priority;
          Alcotest.test_case "FIFO within queue" `Quick test_sp_bank_fifo_within_queue;
          Alcotest.test_case "per-queue drop" `Quick test_sp_bank_per_queue_drop;
          Alcotest.test_case "classifier clamped" `Quick test_sp_bank_classifier_clamped;
          Alcotest.test_case "queue_of_rank" `Quick test_queue_of_rank;
        ] );
      ( "sp_pifo",
        [
          Alcotest.test_case "reduces inversions vs FIFO" `Quick
            test_sp_pifo_reduces_inversions;
          Alcotest.test_case "single queue = FIFO" `Quick test_sp_pifo_single_queue_is_fifo;
          Alcotest.test_case "push-up" `Quick test_sp_pifo_push_up;
          Alcotest.test_case "push-down" `Quick test_sp_pifo_push_down;
          Alcotest.test_case "conserves packets" `Quick test_sp_pifo_never_loses_packets;
          Alcotest.test_case "bounds track distribution" `Quick test_sp_pifo_bounds_track_distribution;
          qc prop_sp_pifo_conserves;
        ] );
      ( "aifo",
        [
          Alcotest.test_case "admits when empty" `Quick test_aifo_admits_when_empty;
          Alcotest.test_case "serves FIFO" `Quick test_aifo_serves_fifo;
          Alcotest.test_case "rejects high rank under pressure" `Quick
            test_aifo_rejects_high_rank_under_pressure;
          Alcotest.test_case "full drops" `Quick test_aifo_full_drops;
          Alcotest.test_case "invalid params" `Quick test_aifo_invalid_params;
        ] );
      ( "drr_bank",
        [
          Alcotest.test_case "equal interleave" `Quick test_drr_equal_interleave;
          Alcotest.test_case "deficit carry-over" `Quick test_drr_deficit_carry_over;
          Alcotest.test_case "weights bias" `Quick test_drr_weights_bias;
          Alcotest.test_case "byte fairness" `Quick test_drr_byte_fairness;
          Alcotest.test_case "work conserving" `Quick test_drr_work_conserving;
          Alcotest.test_case "drops per queue" `Quick test_drr_drops_per_queue;
          Alcotest.test_case "invalid" `Quick test_drr_invalid;
        ] );
      ( "calendar_queue",
        [
          Alcotest.test_case "bucket order" `Quick test_calendar_orders_by_bucket;
          Alcotest.test_case "FIFO within bucket" `Quick test_calendar_fifo_within_bucket;
          Alcotest.test_case "horizon aliases" `Quick test_calendar_horizon_aliases;
          Alcotest.test_case "day advances" `Quick test_calendar_day_advances;
          Alcotest.test_case "late packet" `Quick test_calendar_late_packet_served_now;
          Alcotest.test_case "capacity" `Quick test_calendar_capacity;
        ] );
      ( "ranker",
        [
          Alcotest.test_case "pfabric remaining" `Quick test_pfabric_rank_is_remaining;
          Alcotest.test_case "pfabric monotone" `Quick test_pfabric_monotone_in_remaining;
          Alcotest.test_case "edf order" `Quick test_edf_earlier_deadline_first;
          Alcotest.test_case "edf clamp" `Quick test_edf_expired_deadline_clamps;
          Alcotest.test_case "edf horizon" `Quick test_edf_no_deadline_is_horizon;
          Alcotest.test_case "edf urgency" `Quick test_edf_rank_decreases_with_time;
          Alcotest.test_case "stfq accumulation" `Quick test_stfq_backlogged_flow_accumulates;
          Alcotest.test_case "stfq newcomer" `Quick test_stfq_new_flow_not_starved;
          Alcotest.test_case "stfq weights" `Quick test_stfq_weights;
          Alcotest.test_case "fifo ranker" `Quick test_fifo_ranker_orders_by_creation;
          Alcotest.test_case "lstf slack" `Quick test_lstf_slack;
          Alcotest.test_case "constant" `Quick test_constant_ranker;
          Alcotest.test_case "names" `Quick test_ranker_names;
          Alcotest.test_case "pfabric+pifo = srpt" `Quick test_pfabric_plus_pifo_is_srpt;
          qc prop_edf_order_matches_deadline_order;
        ] );
    ]
