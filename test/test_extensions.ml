(* Tests for the "Looking Forward" (§5) extensions: nested policies
   (parentheses), resource-constrained synthesis (Search), adversarial
   workload detection (Guard), multi-objective rank combinators, link
   utilization instrumentation, and the incast/permutation workloads. *)

let parse = Qvisor.Policy.parse_exn

let mk_tenant ?(rank_lo = 0) ?(rank_hi = 100) ?(weight = 1.0) id name =
  Qvisor.Tenant.make ~rank_lo ~rank_hi ~weight ~id ~name ()

let mk_packet ~tenant ~rank =
  Sched.Packet.make ~tenant ~rank ~flow:0 ~size:1000 ()

(* ------------------------------------------------------------------ *)
(* Nested policies                                                    *)
(* ------------------------------------------------------------------ *)

let test_parens_parse () =
  match parse "T1 + (T2 >> T3)" with
  | Qvisor.Policy.Share
      [
        Qvisor.Policy.Tenant "T1";
        Qvisor.Policy.Strict [ Qvisor.Policy.Tenant "T2"; Qvisor.Policy.Tenant "T3" ];
      ] -> ()
  | p -> Alcotest.failf "unexpected AST: %s" (Qvisor.Policy.to_string p)

let test_parens_round_trip () =
  List.iter
    (fun s ->
      let p = parse s in
      let printed = Qvisor.Policy.to_string p in
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips (printed %s)" s printed)
        true
        (parse printed = p))
    [
      "T1 + (T2 >> T3)";
      "(T1 > T2) >> (T3 + T4)";
      "((T1))";
      "(T1 + T2) + T3";
      "T1 >> (T2 >> T3) >> T4";
    ]

let test_parens_redundant_dropped () =
  Alcotest.(check string) "redundant parens canonicalized" "T1 >> T2 + T3"
    (Qvisor.Policy.to_string (parse "(T1) >> ((T2 + T3))"))

let test_parens_errors () =
  let is_error s =
    match Qvisor.Policy.parse s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "unbalanced open" true (is_error "(T1 >> T2");
  Alcotest.(check bool) "unbalanced close" true (is_error "T1 >> T2)");
  Alcotest.(check bool) "empty parens" true (is_error "T1 >> ()");
  Alcotest.(check bool) "adjacent atoms" true (is_error "(T1)(T2)")

let test_nested_synthesis () =
  (* Share of a strict subtree: T1 shares with a sub-policy where T2 is
     strictly above T3.  T2/T3 stay ordered inside the shared band. *)
  let tenants = [ mk_tenant 1 "T1"; mk_tenant 2 "T2"; mk_tenant 3 "T3" ] in
  let plan =
    Qvisor.Synthesizer.synthesize_exn ~tenants
      ~policy:(parse "T1 + (T2 >> T3)") ()
  in
  let band id =
    match Qvisor.Synthesizer.band_of plan ~tenant_id:id with
    | Some b -> (b.Qvisor.Synthesizer.lo, b.Qvisor.Synthesizer.hi)
    | None -> Alcotest.failf "no band for %d" id
  in
  let _, t2_hi = band 2 in
  let t3_lo, _ = band 3 in
  Alcotest.(check bool) "T2 above T3 inside the shared band" true
    (t2_hi < t3_lo);
  let report = Qvisor.Analysis.check plan in
  Alcotest.(check bool) "nested plan feasible" true
    report.Qvisor.Analysis.feasible

let test_nested_analysis_constraints () =
  let tenants = [ mk_tenant 1 "T1"; mk_tenant 2 "T2"; mk_tenant 3 "T3" ] in
  let plan =
    Qvisor.Synthesizer.synthesize_exn ~tenants
      ~policy:(parse "T1 + (T2 >> T3)") ()
  in
  let report = Qvisor.Analysis.check plan in
  (* The nested >> between T2 and T3 must be among the checked pairs. *)
  Alcotest.(check bool) "nested strict pair checked" true
    (List.exists
       (fun p ->
         p.Qvisor.Analysis.high.Qvisor.Analysis.label = "T2"
         && p.Qvisor.Analysis.low.Qvisor.Analysis.label = "T3"
         && p.Qvisor.Analysis.required = `Strict)
       report.Qvisor.Analysis.pairs)

(* ------------------------------------------------------------------ *)
(* Search (resource-constrained synthesis)                            *)
(* ------------------------------------------------------------------ *)

let search_tenants () =
  [ mk_tenant 1 "A"; mk_tenant 2 "B"; mk_tenant 3 "C"; mk_tenant 4 "D" ]

let test_search_exact_fit () =
  let resources = { Qvisor.Search.num_queues = 4; queue_capacity_pkts = 64 } in
  match
    Qvisor.Search.fit ~tenants:(search_tenants ())
      ~policy:(parse "A >> B >> C >> D") ~resources ()
  with
  | Error e -> Alcotest.failf "fit failed: %s" (Qvisor.Error.to_string e)
  | Ok proposal ->
    Alcotest.(check bool) "exact" true proposal.Qvisor.Search.exact_fit;
    Alcotest.(check (list (pair string string))) "no demotions" []
      proposal.Qvisor.Search.demotions;
    Alcotest.(check string) "policy unchanged" "A >> B >> C >> D"
      (Qvisor.Policy.to_string proposal.Qvisor.Search.relaxed)

let test_search_demotes_lowest () =
  (* Four strict tiers onto three queues: the cheapest relaxation merges
     the two lowest tiers. *)
  let resources = { Qvisor.Search.num_queues = 3; queue_capacity_pkts = 64 } in
  match
    Qvisor.Search.fit ~tenants:(search_tenants ())
      ~policy:(parse "A >> B >> C >> D") ~resources ()
  with
  | Error e -> Alcotest.failf "fit failed: %s" (Qvisor.Error.to_string e)
  | Ok proposal ->
    Alcotest.(check bool) "not exact" false proposal.Qvisor.Search.exact_fit;
    Alcotest.(check string) "lowest >> demoted" "A >> B >> C > D"
      (Qvisor.Policy.to_string proposal.Qvisor.Search.relaxed);
    Alcotest.(check (list (pair string string))) "demotion recorded"
      [ ("C", "D") ]
      proposal.Qvisor.Search.demotions;
    Alcotest.(check int) "bounds sized to queues" 3
      (Array.length proposal.Qvisor.Search.bounds)

let test_search_multiple_demotions () =
  let resources = { Qvisor.Search.num_queues = 2; queue_capacity_pkts = 64 } in
  match
    Qvisor.Search.fit ~tenants:(search_tenants ())
      ~policy:(parse "A >> B >> C >> D") ~resources ()
  with
  | Error e -> Alcotest.failf "fit failed: %s" (Qvisor.Error.to_string e)
  | Ok proposal ->
    Alcotest.(check int) "two demotions" 2
      (List.length proposal.Qvisor.Search.demotions);
    Alcotest.(check int) "two tiers left" 2
      (Qvisor.Search.required_queues proposal.Qvisor.Search.relaxed);
    (* The top tier survives untouched. *)
    (match proposal.Qvisor.Search.relaxed with
    | Qvisor.Policy.Strict (Qvisor.Policy.Tenant "A" :: _) -> ()
    | p -> Alcotest.failf "top tier lost: %s" (Qvisor.Policy.to_string p))

let test_search_single_queue () =
  let resources = { Qvisor.Search.num_queues = 1; queue_capacity_pkts = 64 } in
  match
    Qvisor.Search.fit ~tenants:(search_tenants ())
      ~policy:(parse "A >> B >> C >> D") ~resources ()
  with
  | Error e -> Alcotest.failf "fit failed: %s" (Qvisor.Error.to_string e)
  | Ok proposal ->
    Alcotest.(check int) "single tier" 1
      (Qvisor.Search.required_queues proposal.Qvisor.Search.relaxed)

let test_search_invalid () =
  let resources = { Qvisor.Search.num_queues = 0; queue_capacity_pkts = 64 } in
  Alcotest.(check bool) "zero queues rejected" true
    (Result.is_error
       (Qvisor.Search.fit ~tenants:(search_tenants ())
          ~policy:(parse "A >> B >> C >> D") ~resources ()))

let test_search_plan_feasible () =
  let resources = { Qvisor.Search.num_queues = 3; queue_capacity_pkts = 64 } in
  match
    Qvisor.Search.fit ~tenants:(search_tenants ())
      ~policy:(parse "A >> B >> C >> D") ~resources ()
  with
  | Error e -> Alcotest.failf "fit failed: %s" (Qvisor.Error.to_string e)
  | Ok proposal ->
    let report = Qvisor.Analysis.check proposal.Qvisor.Search.plan in
    Alcotest.(check bool) "relaxed plan satisfies its own policy" true
      report.Qvisor.Analysis.feasible

(* ------------------------------------------------------------------ *)
(* Guard                                                              *)
(* ------------------------------------------------------------------ *)

let guard_config = { Qvisor.Guard.default_config with window = 10 }

let feed guard ~tenant ~rank n =
  for _ = 1 to n do
    Qvisor.Guard.observe guard (mk_packet ~tenant ~rank)
  done

let test_guard_conforming () =
  let guard =
    Qvisor.Guard.create ~config:guard_config
      ~tenants:[ mk_tenant ~rank_lo:0 ~rank_hi:100 1 "T1" ] ()
  in
  (* Ranks spread over the range: no flooding, no escapes. *)
  for i = 0 to 99 do
    Qvisor.Guard.observe guard (mk_packet ~tenant:1 ~rank:(i mod 101))
  done;
  Alcotest.(check bool) "conforming" true
    (Qvisor.Guard.verdict guard ~tenant_id:1 = Qvisor.Guard.Conforming);
  Alcotest.(check bool) "no mitigation" true
    (Qvisor.Guard.mitigation guard ~tenant_id:1 = Qvisor.Transform.Identity)

let test_guard_out_of_range_escalates () =
  let guard =
    Qvisor.Guard.create ~config:guard_config
      ~tenants:[ mk_tenant ~rank_lo:0 ~rank_hi:100 1 "T1" ] ()
  in
  (* One dirty window -> Suspicious. *)
  feed guard ~tenant:1 ~rank:(-50) 10;
  (match Qvisor.Guard.verdict guard ~tenant_id:1 with
  | Qvisor.Guard.Suspicious [ Qvisor.Guard.Out_of_range f ] ->
    Alcotest.(check (float 1e-9)) "all out of range" 1.0 f
  | _ -> Alcotest.fail "expected Suspicious(Out_of_range)");
  (* Two more dirty windows -> Malicious. *)
  feed guard ~tenant:1 ~rank:(-50) 20;
  (match Qvisor.Guard.verdict guard ~tenant_id:1 with
  | Qvisor.Guard.Malicious _ -> ()
  | _ -> Alcotest.fail "expected Malicious");
  Alcotest.(check int) "three strikes" 3 (Qvisor.Guard.strikes guard ~tenant_id:1)

let test_guard_flooding_detected () =
  let guard =
    Qvisor.Guard.create ~config:guard_config
      ~tenants:[ mk_tenant ~rank_lo:0 ~rank_hi:100 1 "T1" ] ()
  in
  (* Everything at rank 0: inside range, but the whole window sits in the
     best decile. *)
  feed guard ~tenant:1 ~rank:0 10;
  match Qvisor.Guard.verdict guard ~tenant_id:1 with
  | Qvisor.Guard.Suspicious [ Qvisor.Guard.Top_band_flooding f ] ->
    Alcotest.(check (float 1e-9)) "fully flooded" 1.0 f
  | _ -> Alcotest.fail "expected Suspicious(Top_band_flooding)"

let test_guard_recovery () =
  let guard =
    Qvisor.Guard.create ~config:guard_config
      ~tenants:[ mk_tenant ~rank_lo:0 ~rank_hi:100 1 "T1" ] ()
  in
  feed guard ~tenant:1 ~rank:(-50) 10;
  Alcotest.(check int) "one strike" 1 (Qvisor.Guard.strikes guard ~tenant_id:1);
  (* A clean window (spread ranks) clears the strike. *)
  for i = 0 to 9 do
    Qvisor.Guard.observe guard (mk_packet ~tenant:1 ~rank:(20 + (i * 8)))
  done;
  Alcotest.(check int) "strike cleared" 0 (Qvisor.Guard.strikes guard ~tenant_id:1);
  Alcotest.(check bool) "conforming again" true
    (Qvisor.Guard.verdict guard ~tenant_id:1 = Qvisor.Guard.Conforming)

let test_guard_mitigation_ladder () =
  let guard =
    Qvisor.Guard.create ~config:guard_config
      ~tenants:[ mk_tenant ~rank_lo:0 ~rank_hi:100 1 "T1" ] ()
  in
  feed guard ~tenant:1 ~rank:(-50) 10;
  (* Suspicious: escapes clamp back into the declared range. *)
  let clamp = Qvisor.Guard.mitigation guard ~tenant_id:1 in
  Alcotest.(check int) "below clamps to lo" 0 (Qvisor.Transform.apply clamp (-50));
  Alcotest.(check int) "in range unchanged" 42 (Qvisor.Transform.apply clamp 42);
  feed guard ~tenant:1 ~rank:(-50) 20;
  (* Malicious: everything parks at the tenant's worst declared rank. *)
  let park = Qvisor.Guard.mitigation guard ~tenant_id:1 in
  Alcotest.(check int) "best rank parked" 100 (Qvisor.Transform.apply park 0);
  Alcotest.(check int) "escape parked" 100 (Qvisor.Transform.apply park (-50))

let test_guard_end_to_end_protection () =
  (* A malicious tenant hammering rank 0 cannot keep beating an honest
     tenant once the guard trips, even when both share a band. *)
  Sched.Packet.reset_uid_counter ();
  let honest = mk_tenant ~rank_lo:0 ~rank_hi:100 1 "honest" in
  let attacker = mk_tenant ~rank_lo:0 ~rank_hi:100 2 "attacker" in
  let plan =
    Qvisor.Synthesizer.synthesize_exn ~tenants:[ honest; attacker ]
      ~policy:(parse "honest + attacker") ()
  in
  let pre = Qvisor.Preprocessor.of_plan plan in
  let guard =
    Qvisor.Guard.create ~config:guard_config ~tenants:[ honest; attacker ] ()
  in
  (* Attacker floods the top band long enough to trip three windows. *)
  for _ = 1 to 30 do
    Qvisor.Guard.observe guard (mk_packet ~tenant:2 ~rank:0)
  done;
  let pifo = Sched.Pifo_queue.create ~capacity_pkts:16 () in
  let offer tenant rank =
    let p = mk_packet ~tenant ~rank in
    Qvisor.Guard.process guard pre p;
    ignore (pifo.Sched.Qdisc.enqueue p)
  in
  offer 2 0;
  offer 1 50;
  offer 2 0;
  let order =
    List.map (fun (p : Sched.Packet.t) -> p.Sched.Packet.tenant)
      (Sched.Qdisc.drain pifo)
  in
  Alcotest.(check (list int)) "honest served first despite attack" [ 1; 2; 2 ]
    order

let test_guard_flooding_exemption () =
  (* A pFabric tenant's legitimate traffic concentrates at its best ranks
     (tiny flows, acks at remaining 0): the flooding detector must not
     fire for exempt algorithms, but out-of-range still must. *)
  let pfabric_tenant =
    Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:30_000 ~id:1
      ~name:"T1" ()
  in
  let guard = Qvisor.Guard.create ~config:guard_config ~tenants:[ pfabric_tenant ] () in
  feed guard ~tenant:1 ~rank:0 30;
  Alcotest.(check bool) "best-rank concentration tolerated" true
    (Qvisor.Guard.verdict guard ~tenant_id:1 = Qvisor.Guard.Conforming);
  feed guard ~tenant:1 ~rank:(-5) 30;
  (match Qvisor.Guard.verdict guard ~tenant_id:1 with
  | Qvisor.Guard.Malicious _ -> ()
  | _ -> Alcotest.fail "out-of-range still detected for exempt algorithms")

let test_guard_byte_weighting () =
  (* 10 tiny flooding packets and one large clean packet per window: the
     byte-weighted flooding fraction stays below 0.5. *)
  let guard =
    Qvisor.Guard.create
      ~config:{ guard_config with Qvisor.Guard.window = 11 }
      ~tenants:[ mk_tenant ~rank_lo:0 ~rank_hi:100 1 "T1" ] ()
  in
  for _ = 1 to 10 do
    Qvisor.Guard.observe guard
      (Sched.Packet.make ~tenant:1 ~rank:0 ~flow:0 ~size:58 ())
  done;
  Qvisor.Guard.observe guard
    (Sched.Packet.make ~tenant:1 ~rank:80 ~flow:0 ~size:1518 ());
  Alcotest.(check bool) "small control packets don't trip flooding" true
    (Qvisor.Guard.verdict guard ~tenant_id:1 = Qvisor.Guard.Conforming)

let test_preprocessor_idempotent_across_hops () =
  (* Processing the same packet at several hops (as a network-wide deploy
     does) must give the same scheduling rank as processing it once,
     because the transformation reads the immutable label. *)
  let tenants =
    [ mk_tenant ~rank_lo:0 ~rank_hi:100 1 "A"; mk_tenant ~rank_lo:0 ~rank_hi:100 2 "B" ]
  in
  let plan =
    Qvisor.Synthesizer.synthesize_exn ~tenants ~policy:(parse "A >> B") ()
  in
  let pre = Qvisor.Preprocessor.of_plan plan in
  let p = mk_packet ~tenant:2 ~rank:42 in
  Qvisor.Preprocessor.process pre p;
  let once = p.Sched.Packet.rank in
  Qvisor.Preprocessor.process pre p;
  Qvisor.Preprocessor.process pre p;
  Alcotest.(check int) "hop-idempotent" once p.Sched.Packet.rank;
  Alcotest.(check int) "label untouched" 42 p.Sched.Packet.label

let test_guard_unknown_tenant_ignored () =
  let guard =
    Qvisor.Guard.create ~tenants:[ mk_tenant ~rank_lo:0 ~rank_hi:100 1 "T1" ] ()
  in
  Qvisor.Guard.observe guard (mk_packet ~tenant:99 ~rank:0);
  Alcotest.(check bool) "unknown tenant conforming" true
    (Qvisor.Guard.verdict guard ~tenant_id:99 = Qvisor.Guard.Conforming);
  Alcotest.(check bool) "identity mitigation" true
    (Qvisor.Guard.mitigation guard ~tenant_id:99 = Qvisor.Transform.Identity)

(* ------------------------------------------------------------------ *)
(* Latency bounds (network calculus)                                  *)
(* ------------------------------------------------------------------ *)

let latency_plan () =
  let tenants =
    [ mk_tenant 1 "Hi"; mk_tenant 2 "Mid"; mk_tenant 3 "Lo" ]
  in
  Qvisor.Synthesizer.synthesize_exn ~tenants ~policy:(parse "Hi >> Mid >> Lo") ()

let gbps = 1e9

let test_latency_tiers () =
  let plan = latency_plan () in
  Alcotest.(check int) "Hi tier" 0 (Qvisor.Latency.tier_of_tenant plan ~tenant_id:1);
  Alcotest.(check int) "Mid tier" 1 (Qvisor.Latency.tier_of_tenant plan ~tenant_id:2);
  Alcotest.(check int) "Lo tier" 2 (Qvisor.Latency.tier_of_tenant plan ~tenant_id:3)

let test_latency_top_tier_bound () =
  (* The top tier's delay only depends on its own burst + one mtu. *)
  let plan = latency_plan () in
  let envelopes =
    [
      (1, Qvisor.Latency.envelope ~sigma:125_000. ~rho:12.5e6);
      (2, Qvisor.Latency.envelope ~sigma:1e6 ~rho:50e6);
      (3, Qvisor.Latency.envelope ~sigma:1e7 ~rho:60e6);
    ]
  in
  match
    Qvisor.Latency.delay_bound ~plan ~envelopes ~link_rate:gbps ~tenant_id:1 ()
  with
  | Qvisor.Latency.Bounded d ->
    (* (125000 + 1518) / 125e6 B/s ~ 1.01 ms. *)
    Alcotest.(check bool) (Printf.sprintf "top tier %.4f ms" (1e3 *. d)) true
      (d > 0.9e-3 && d < 1.1e-3)
  | Qvisor.Latency.Unstable -> Alcotest.fail "top tier should be stable"

let test_latency_lower_tier_larger () =
  let plan = latency_plan () in
  let envelopes =
    [
      (1, Qvisor.Latency.envelope ~sigma:125_000. ~rho:12.5e6);
      (2, Qvisor.Latency.envelope ~sigma:1e6 ~rho:50e6);
      (3, Qvisor.Latency.envelope ~sigma:1e6 ~rho:10e6);
    ]
  in
  let bound id =
    match
      Qvisor.Latency.delay_bound ~plan ~envelopes ~link_rate:gbps ~tenant_id:id ()
    with
    | Qvisor.Latency.Bounded d -> d
    | Qvisor.Latency.Unstable -> Alcotest.fail "unexpected instability"
  in
  Alcotest.(check bool) "delay grows down the tiers" true
    (bound 1 < bound 2 && bound 2 < bound 3)

let test_latency_unstable () =
  (* Higher tiers consume the whole link: the bottom tier has no finite
     worst case. *)
  let plan = latency_plan () in
  let envelopes =
    [
      (1, Qvisor.Latency.envelope ~sigma:0. ~rho:80e6);
      (2, Qvisor.Latency.envelope ~sigma:0. ~rho:50e6);
      (3, Qvisor.Latency.envelope ~sigma:0. ~rho:1e6);
    ]
  in
  (* Link is 1 Gb/s = 125e6 B/s; tiers 1+2 need 130e6 B/s. *)
  (match
     Qvisor.Latency.delay_bound ~plan ~envelopes ~link_rate:gbps ~tenant_id:2 ()
   with
  | Qvisor.Latency.Unstable -> ()
  | Qvisor.Latency.Bounded _ -> Alcotest.fail "tier 2 should be unstable");
  match
    Qvisor.Latency.delay_bound ~plan ~envelopes ~link_rate:gbps ~tenant_id:1 ()
  with
  | Qvisor.Latency.Bounded _ -> ()
  | Qvisor.Latency.Unstable -> Alcotest.fail "tier 1 alone fits"

let test_latency_shared_tier_pools () =
  (* Two tenants sharing a tier see each other's bursts. *)
  let tenants = [ mk_tenant 1 "A"; mk_tenant 2 "B" ] in
  let plan =
    Qvisor.Synthesizer.synthesize_exn ~tenants ~policy:(parse "A + B") ()
  in
  let small = Qvisor.Latency.envelope ~sigma:10_000. ~rho:1e6 in
  let big = Qvisor.Latency.envelope ~sigma:1e6 ~rho:1e6 in
  let bound envelopes =
    match
      Qvisor.Latency.delay_bound ~plan ~envelopes ~link_rate:gbps ~tenant_id:1 ()
    with
    | Qvisor.Latency.Bounded d -> d
    | Qvisor.Latency.Unstable -> Alcotest.fail "stable setup"
  in
  let alone = bound [ (1, small) ] in
  let with_peer = bound [ (1, small); (2, big) ] in
  Alcotest.(check bool) "peer burst inflates the bound" true
    (with_peer > 10. *. alone)

let test_latency_report_and_validation () =
  let plan = latency_plan () in
  let envelopes = [ (1, Qvisor.Latency.envelope ~sigma:1e5 ~rho:1e6) ] in
  let report =
    Qvisor.Latency.report ~plan ~envelopes ~link_rate:gbps ()
  in
  Alcotest.(check int) "one row per tenant" 3 (List.length report);
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad link rate" true
    (raises (fun () ->
         ignore
           (Qvisor.Latency.delay_bound ~plan ~envelopes ~link_rate:0.
              ~tenant_id:1 ())));
  Alcotest.(check bool) "unknown tenant" true
    (raises (fun () ->
         ignore
           (Qvisor.Latency.delay_bound ~plan ~envelopes ~link_rate:gbps
              ~tenant_id:99 ())));
  Alcotest.(check bool) "negative burst" true
    (raises (fun () -> ignore (Qvisor.Latency.envelope ~sigma:(-1.) ~rho:1.)))

let test_latency_bound_holds_in_sim () =
  (* Empirical check: a strict-top-tier CBR stream through a congested
     PIFO port never waits longer than its analytic bound. *)
  let tenants = [ mk_tenant ~rank_hi:100 1 "hi"; mk_tenant ~rank_hi:100 2 "lo" ] in
  let plan =
    Qvisor.Synthesizer.synthesize_exn ~tenants ~policy:(parse "hi >> lo") ()
  in
  let pre = Qvisor.Preprocessor.of_plan plan in
  (* A 1 Gb/s output port: serve one 1518 B packet per 12.144 us. *)
  let q = Sched.Pifo_queue.create ~capacity_pkts:10_000 () in
  let hi_rate = 12.5e6 (* B/s *) and hi_sigma = 30_000. in
  let envelopes = [ (1, Qvisor.Latency.envelope ~sigma:hi_sigma ~rho:hi_rate) ] in
  let bound =
    match
      Qvisor.Latency.delay_bound ~plan ~envelopes ~link_rate:1e9 ~tenant_id:1 ()
    with
    | Qvisor.Latency.Bounded d -> d
    | Qvisor.Latency.Unstable -> Alcotest.fail "stable by construction"
  in
  (* Simulate: every 12.144 us the port serves one packet.  The hi tenant
     sends a 30 KB burst (20 pkts) then paces at hi_rate; the lo tenant
     floods.  Track hi packets' queueing delay. *)
  let sim = Engine.Sim.create () in
  let service = 1518. *. 8. /. 1e9 in
  let worst_wait = ref 0. in
  let rec serve () =
    (match q.Sched.Qdisc.dequeue () with
    | Some p when p.Sched.Packet.tenant = 1 ->
      worst_wait :=
        Float.max !worst_wait (Engine.Sim.now sim -. p.Sched.Packet.enqueued_at)
    | Some _ | None -> ());
    ignore (Engine.Sim.schedule_after sim ~delay:service serve)
  in
  let offer tenant rank =
    let p = Sched.Packet.make ~tenant ~rank ~flow:tenant ~size:1518 () in
    p.Sched.Packet.enqueued_at <- Engine.Sim.now sim;
    Qvisor.Preprocessor.process pre p;
    ignore (q.Sched.Qdisc.enqueue p)
  in
  (* lo floods every service slot. *)
  let rec flood () =
    offer 2 50;
    ignore (Engine.Sim.schedule_after sim ~delay:service flood)
  in
  (* hi: burst of 20 then paced. *)
  let rec paced () =
    offer 1 50;
    ignore (Engine.Sim.schedule_after sim ~delay:(1518. /. hi_rate) paced)
  in
  ignore (Engine.Sim.schedule_at sim ~time:0. flood);
  ignore
    (Engine.Sim.schedule_at sim ~time:0.001 (fun () ->
         for _ = 1 to 20 do
           offer 1 50
         done;
         paced ()));
  ignore (Engine.Sim.schedule_at sim ~time:0. serve);
  Engine.Sim.run ~until:0.05 sim;
  Alcotest.(check bool)
    (Printf.sprintf "worst observed %.3f ms <= bound %.3f ms"
       (1e3 *. !worst_wait) (1e3 *. bound))
    true
    (!worst_wait <= bound)

(* ------------------------------------------------------------------ *)
(* Multi-objective rankers                                            *)
(* ------------------------------------------------------------------ *)

let test_weighted_blend () =
  (* Blend pFabric (remaining) and EDF (deadline): a packet small on one
     axis and large on the other lands in the middle. *)
  let rk =
    Sched.Ranker.weighted
      ~components:
        [
          (Sched.Ranker.pfabric ~unit_bytes:1000 (), (0, 1000), 1.0);
          (Sched.Ranker.edf ~unit_seconds:1e-3 ~horizon:1.0 (), (0, 1000), 1.0);
        ]
      ()
  in
  let small_urgent =
    Sched.Packet.make ~flow:1 ~size:1000 ~remaining:0 ~deadline:0.0 ()
  in
  let big_lazy =
    Sched.Packet.make ~flow:2 ~size:1000 ~remaining:1_000_000 ~deadline:10.0 ()
  in
  let mixed =
    Sched.Packet.make ~flow:3 ~size:1000 ~remaining:0 ~deadline:10.0 ()
  in
  let r_su = Sched.Ranker.tag rk ~now:0. small_urgent in
  let r_bl = Sched.Ranker.tag rk ~now:0. big_lazy in
  let r_mx = Sched.Ranker.tag rk ~now:0. mixed in
  Alcotest.(check int) "best on both axes" 0 r_su;
  Alcotest.(check int) "worst on both axes" 1000 r_bl;
  Alcotest.(check bool) "mixed in between" true (r_su < r_mx && r_mx < r_bl)

let test_weighted_weights_matter () =
  let mk alpha =
    Sched.Ranker.weighted
      ~components:
        [
          (Sched.Ranker.pfabric ~unit_bytes:1000 (), (0, 1000), alpha);
          (Sched.Ranker.edf ~unit_seconds:1e-3 ~horizon:1.0 (), (0, 1000), 1.0);
        ]
      ()
  in
  (* A packet bad on the pFabric axis only: the heavier pFabric weighs,
     the worse its combined rank. *)
  let p () =
    Sched.Packet.make ~flow:1 ~size:1000 ~remaining:1_000_000 ~deadline:0.0 ()
  in
  let light = Sched.Ranker.tag (mk 0.5) ~now:0. (p ()) in
  let heavy = Sched.Ranker.tag (mk 4.0) ~now:0. (p ()) in
  Alcotest.(check bool) "weight shifts the blend" true (light < heavy)

let test_weighted_invalid () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty components" true
    (raises (fun () -> ignore (Sched.Ranker.weighted ~components:[] ())));
  Alcotest.(check bool) "bad weight" true
    (raises (fun () ->
         ignore
           (Sched.Ranker.weighted
              ~components:[ (Sched.Ranker.constant 0, (0, 1), -1.0) ]
              ())))

let test_lexicographic_order () =
  let rk =
    Sched.Ranker.lexicographic
      ~primary:(Sched.Ranker.pfabric ~unit_bytes:1000 (), (0, 1000))
      ~secondary:(Sched.Ranker.edf ~unit_seconds:1e-3 ~horizon:1.0 (), (0, 1000))
      ()
  in
  let mk ~remaining ~deadline =
    Sched.Packet.make ~flow:1 ~size:1000 ~remaining ~deadline ()
  in
  (* Primary dominates... *)
  let small_late = Sched.Ranker.tag rk ~now:0. (mk ~remaining:1000 ~deadline:10.0) in
  let big_urgent = Sched.Ranker.tag rk ~now:0. (mk ~remaining:900_000 ~deadline:0.0) in
  Alcotest.(check bool) "primary dominates" true (small_late < big_urgent);
  (* ... and the secondary breaks primary ties. *)
  let tie_urgent = Sched.Ranker.tag rk ~now:0. (mk ~remaining:1000 ~deadline:0.0) in
  let tie_late = Sched.Ranker.tag rk ~now:0. (mk ~remaining:1000 ~deadline:10.0) in
  Alcotest.(check bool) "secondary breaks ties" true (tie_urgent < tie_late)

let test_combinator_names () =
  let w =
    Sched.Ranker.weighted
      ~components:[ (Sched.Ranker.pfabric (), (0, 10), 1.0) ]
      ()
  in
  Alcotest.(check string) "weighted name" "weighted(pfabric)" (Sched.Ranker.name w);
  let l =
    Sched.Ranker.lexicographic
      ~primary:(Sched.Ranker.pfabric (), (0, 10))
      ~secondary:(Sched.Ranker.edf (), (0, 10))
      ()
  in
  Alcotest.(check string) "lex name" "lex(pfabric,edf)" (Sched.Ranker.name l)

(* ------------------------------------------------------------------ *)
(* Pipeline compiler                                                  *)
(* ------------------------------------------------------------------ *)

let pipeline_plan ?(policy = "A >> B") ?(hi_a = 30_000) ?(hi_b = 150) () =
  let tenants =
    [
      mk_tenant ~rank_lo:0 ~rank_hi:hi_a 1 "A";
      mk_tenant ~rank_lo:0 ~rank_hi:hi_b 2 "B";
    ]
  in
  Qvisor.Synthesizer.synthesize_exn ~tenants ~policy:(parse policy) ()

let test_pipeline_compiles () =
  match Qvisor.Pipeline.compile (pipeline_plan ()) with
  | Error e -> Alcotest.failf "compile failed: %s" e
  | Ok program ->
    Alcotest.(check int) "two entries" 2
      (List.length program.Qvisor.Pipeline.entries);
    (* A 16-bit multiplier over 16-bit bands keeps the error tiny
       relative to the 32768-wide bands. *)
    Alcotest.(check bool)
      (Printf.sprintf "worst error %d small" program.Qvisor.Pipeline.worst_error)
      true
      (program.Qvisor.Pipeline.worst_error < 64)

let test_pipeline_matches_exact_preprocessor () =
  let plan = pipeline_plan () in
  let pre = Qvisor.Preprocessor.of_plan plan in
  match Qvisor.Pipeline.compile plan with
  | Error e -> Alcotest.failf "compile failed: %s" e
  | Ok program ->
    let worst = ref 0 in
    for label = 0 to 30_000 do
      let exact = mk_packet ~tenant:1 ~rank:label in
      let compiled = mk_packet ~tenant:1 ~rank:label in
      Qvisor.Preprocessor.process pre exact;
      Qvisor.Pipeline.execute program compiled;
      worst := max !worst (abs (exact.Sched.Packet.rank - compiled.Sched.Packet.rank))
    done;
    Alcotest.(check bool)
      (Printf.sprintf "measured max deviation %d within reported bound %d"
         !worst program.Qvisor.Pipeline.worst_error)
      true
      (!worst <= program.Qvisor.Pipeline.worst_error)

let test_pipeline_preserves_isolation () =
  let plan = pipeline_plan () in
  match Qvisor.Pipeline.compile plan with
  | Error e -> Alcotest.failf "compile failed: %s" e
  | Ok program ->
    (* Worst A rank still beats best B rank after compilation. *)
    let a = mk_packet ~tenant:1 ~rank:30_000 in
    let b = mk_packet ~tenant:2 ~rank:0 in
    Qvisor.Pipeline.execute program a;
    Qvisor.Pipeline.execute program b;
    Alcotest.(check bool) "isolation survives compilation" true
      (a.Sched.Packet.rank < b.Sched.Packet.rank)

let test_pipeline_monotone () =
  let plan = pipeline_plan () in
  match Qvisor.Pipeline.compile plan with
  | Error e -> Alcotest.failf "compile failed: %s" e
  | Ok program ->
    let entry = List.hd program.Qvisor.Pipeline.entries in
    let prev = ref min_int in
    for label = 0 to 30_000 do
      let r = Qvisor.Pipeline.apply_action entry.Qvisor.Pipeline.action label in
      if r < !prev then Alcotest.failf "non-monotone at %d" label;
      prev := r
    done

let test_pipeline_fallback_parks () =
  let plan = pipeline_plan () in
  match Qvisor.Pipeline.compile plan with
  | Error e -> Alcotest.failf "compile failed: %s" e
  | Ok program ->
    let stranger = mk_packet ~tenant:77 ~rank:0 in
    Qvisor.Pipeline.execute program stranger;
    Alcotest.(check int) "parked at worst" plan.Qvisor.Synthesizer.rank_hi
      stranger.Sched.Packet.rank

let test_pipeline_table_overflow () =
  let resources =
    { Qvisor.Pipeline.default_resources with max_entries = 2 }
  in
  Alcotest.(check bool) "overflow rejected" true
    (Result.is_error (Qvisor.Pipeline.compile ~resources (pipeline_plan ())))

let test_pipeline_tiny_multiplier_fails_or_errs () =
  (* A 1-bit multiplier cannot express the slope without distorting far
     beyond the tier: the compiler must refuse rather than mis-deploy. *)
  let resources =
    { Qvisor.Pipeline.default_resources with max_mult = 1; max_rshift = 0 }
  in
  match Qvisor.Pipeline.compile ~resources (pipeline_plan ()) with
  | Error _ -> ()
  | Ok program ->
    (* If it did compile, the isolation check must have held. *)
    let a = mk_packet ~tenant:1 ~rank:30_000 in
    let b = mk_packet ~tenant:2 ~rank:0 in
    Qvisor.Pipeline.execute program a;
    Qvisor.Pipeline.execute program b;
    Alcotest.(check bool) "isolation never sacrificed" true
      (a.Sched.Packet.rank < b.Sched.Packet.rank)

let test_pipeline_share_policy () =
  (* Sharing tenants map onto one band; compilation still verifies. *)
  match Qvisor.Pipeline.compile (pipeline_plan ~policy:"A + B" ()) with
  | Error e -> Alcotest.failf "compile failed: %s" e
  | Ok program ->
    Alcotest.(check int) "entries" 2 (List.length program.Qvisor.Pipeline.entries)

(* ------------------------------------------------------------------ *)
(* Net utilization + new workloads                                    *)
(* ------------------------------------------------------------------ *)

let fabric () =
  let topo =
    Netsim.Topology.leaf_spine ~leaves:2 ~spines:2 ~hosts_per_leaf:2
      ~access_rate:1e9 ~fabric_rate:4e9 ~link_delay:1e-6
  in
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create () in
  let transport = Netsim.Transport.create ~sim () in
  let net =
    Netsim.Net.create ~sim ~topo ~routing
      ~make_qdisc:(fun _ -> Sched.Fifo_queue.create ~capacity_pkts:100 ())
      ~deliver:(Netsim.Transport.deliver transport)
      ()
  in
  Netsim.Transport.attach transport net;
  (sim, net, transport)

let test_utilization_counts_bytes () =
  let sim, net, transport = fabric () in
  ignore
    (Netsim.Transport.start_cbr transport ~tenant:0
       ~ranker:(Sched.Ranker.constant 0) ~src:0 ~dst:1 ~rate:0.5e9
       ~until:0.01 ());
  Engine.Sim.run sim;
  (* Host 0's uplink is link 0: it carried ~0.5 Gb/s for 10 ms. *)
  let u = Netsim.Net.link_utilization net ~link_id:0 ~now:0.01 in
  Alcotest.(check bool) "about half utilized" true (u > 0.45 && u < 0.55);
  Alcotest.(check bool) "tx bytes counted" true
    (Netsim.Net.port_tx_bytes net ~link_id:0 > 600_000)

let test_busiest_links () =
  let sim, net, transport = fabric () in
  ignore
    (Netsim.Transport.start_cbr transport ~tenant:0
       ~ranker:(Sched.Ranker.constant 0) ~src:0 ~dst:1 ~rate:0.8e9
       ~until:0.01 ());
  Engine.Sim.run sim;
  match Netsim.Net.busiest_links net ~now:0.01 ~top:2 with
  | (busiest, u) :: _ ->
    Alcotest.(check int) "host 0 uplink busiest" 0 busiest;
    Alcotest.(check bool) "high utilization" true (u > 0.7)
  | [] -> Alcotest.fail "no links"

let test_utilization_zero_time () =
  let _, net, _ = fabric () in
  Alcotest.(check (float 0.)) "zero at t=0" 0.
    (Netsim.Net.link_utilization net ~link_id:0 ~now:0.)

let test_incast_completes () =
  let sim, _, transport = fabric () in
  let rng = Engine.Rng.create ~seed:3 in
  let done_ = ref 0 in
  Netsim.Workload.incast ~sim ~rng ~transport ~tenant:0
    ~ranker:(Sched.Ranker.pfabric ()) ~num_hosts:4 ~fanin:3
    ~bytes_per_sender:30_000 ~receiver:0 ~at:0.001
    ~on_complete:(fun _ -> incr done_)
    ();
  Engine.Sim.run sim;
  Alcotest.(check int) "all senders complete" 3 !done_

let test_incast_validation () =
  let sim, _, transport = fabric () in
  let rng = Engine.Rng.create ~seed:3 in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "fanin too large" true
    (raises (fun () ->
         Netsim.Workload.incast ~sim ~rng ~transport ~tenant:0
           ~ranker:(Sched.Ranker.pfabric ()) ~num_hosts:4 ~fanin:4
           ~bytes_per_sender:1000 ~at:0.001
           ~on_complete:(fun _ -> ())
           ()))

let test_permutation_all_hosts_send () =
  let sim, _, transport = fabric () in
  let rng = Engine.Rng.create ~seed:9 in
  let sources = ref [] in
  Netsim.Workload.permutation ~sim ~rng ~transport ~tenant:0
    ~ranker:(Sched.Ranker.pfabric ()) ~num_hosts:4 ~bytes_per_flow:10_000
    ~at:0.001
    ~on_complete:(fun r -> sources := r.Netsim.Transport.flow_id :: !sources)
    ();
  Engine.Sim.run sim;
  (* A permutation over 4 hosts has at most 4 flows; self-loops skipped. *)
  Alcotest.(check bool) "some flows completed" true (List.length !sources >= 2)

(* ------------------------------------------------------------------ *)
(* Hypervisor hot-swap under live traffic                             *)
(* ------------------------------------------------------------------ *)

let test_hypervisor_hot_swap_live_fabric () =
  (* Traffic is in flight when a third tenant joins and the plan is
     swapped: nothing crashes, pre-swap packets finish, post-swap packets
     of the newcomer are scheduled below the incumbents. *)
  let topo =
    Netsim.Topology.leaf_spine ~leaves:2 ~spines:2 ~hosts_per_leaf:2
      ~access_rate:1e9 ~fabric_rate:4e9 ~link_delay:1e-6
  in
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create () in
  let transport = Netsim.Transport.create ~sim () in
  let hv =
    Qvisor.Hypervisor.create_exn
      ~tenants:
        [
          Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_hi:30_000 ~id:0
            ~name:"T1" ();
          Qvisor.Tenant.make ~algorithm:"edf" ~rank_hi:150 ~id:1 ~name:"T2" ();
        ]
      ~policy:"T1 + T2" ()
  in
  let net =
    Netsim.Net.create ~sim ~topo ~routing
      ~make_qdisc:(fun _ -> Sched.Pifo_queue.create ~capacity_pkts:100 ())
      ~preprocess:(Qvisor.Hypervisor.process hv)
      ~deliver:(Netsim.Transport.deliver transport)
      ()
  in
  ignore net;
  Netsim.Transport.attach transport net;
  let completions = Hashtbl.create 4 in
  let note tenant =
    Hashtbl.replace completions tenant
      (1 + Option.value (Hashtbl.find_opt completions tenant) ~default:0)
  in
  let start_flow ~tenant ~size =
    ignore
      (Netsim.Transport.start_flow transport ~tenant
         ~ranker:(Sched.Ranker.pfabric ()) ~src:0 ~dst:3 ~size
         ~on_complete:(fun r -> note r.Netsim.Transport.tenant)
         ())
  in
  start_flow ~tenant:0 ~size:500_000;
  (* Mid-flight: tenant 2 joins at the lowest priority. *)
  ignore
    (Engine.Sim.schedule_at sim ~time:0.001 (fun () ->
         (match
            Qvisor.Hypervisor.add_tenant hv
              (Qvisor.Tenant.make ~algorithm:"stfq" ~rank_hi:5_000 ~id:2
                 ~name:"T3" ())
              ~policy:"T1 + T2 >> T3" ()
          with
         | Ok () -> ()
         | Error e -> Alcotest.failf "hot add failed: %s" (Qvisor.Error.to_string e));
         start_flow ~tenant:2 ~size:100_000));
  Engine.Sim.run sim;
  Alcotest.(check (option int)) "incumbent finished" (Some 1)
    (Hashtbl.find_opt completions 0);
  Alcotest.(check (option int)) "newcomer finished" (Some 1)
    (Hashtbl.find_opt completions 2);
  (* The swapped plan actually governs the data path now. *)
  let p_new = Sched.Packet.make ~tenant:2 ~rank:0 ~flow:9 ~size:1000 () in
  let p_old = Sched.Packet.make ~tenant:0 ~rank:30_000 ~flow:9 ~size:1000 () in
  Qvisor.Hypervisor.process hv p_new;
  Qvisor.Hypervisor.process hv p_old;
  Alcotest.(check bool) "post-swap isolation" true
    (p_old.Sched.Packet.rank < p_new.Sched.Packet.rank)

(* ------------------------------------------------------------------ *)
(* Churn experiment smoke test                                        *)
(* ------------------------------------------------------------------ *)

let test_churn_qvisor_protects () =
  (* Tiny version of ablation A3: after T3 joins, QVISOR's T1 FCT must be
     substantially better than the naive deployment's. *)
  let params =
    {
      Experiments.Churn.default with
      Experiments.Churn.t_end = 0.15;
      t_join = 0.06;
      drain = 0.2;
    }
  in
  let naive = Experiments.Churn.run params ~qvisor:false in
  let qvisor = Experiments.Churn.run params ~qvisor:true in
  Alcotest.(check bool)
    (Printf.sprintf "qvisor after-join FCT (%.3f) beats naive (%.3f)"
       qvisor.Experiments.Churn.after_join_ms naive.Experiments.Churn.after_join_ms)
    true
    (qvisor.Experiments.Churn.after_join_ms
    < naive.Experiments.Churn.after_join_ms)

let () =
  Alcotest.run "extensions"
    [
      ( "nested_policy",
        [
          Alcotest.test_case "parse parens" `Quick test_parens_parse;
          Alcotest.test_case "round trips" `Quick test_parens_round_trip;
          Alcotest.test_case "redundant parens" `Quick test_parens_redundant_dropped;
          Alcotest.test_case "errors" `Quick test_parens_errors;
          Alcotest.test_case "nested synthesis" `Quick test_nested_synthesis;
          Alcotest.test_case "nested analysis" `Quick test_nested_analysis_constraints;
        ] );
      ( "search",
        [
          Alcotest.test_case "exact fit" `Quick test_search_exact_fit;
          Alcotest.test_case "demotes lowest" `Quick test_search_demotes_lowest;
          Alcotest.test_case "multiple demotions" `Quick test_search_multiple_demotions;
          Alcotest.test_case "single queue" `Quick test_search_single_queue;
          Alcotest.test_case "invalid" `Quick test_search_invalid;
          Alcotest.test_case "plan feasible" `Quick test_search_plan_feasible;
        ] );
      ( "guard",
        [
          Alcotest.test_case "conforming" `Quick test_guard_conforming;
          Alcotest.test_case "out of range escalates" `Quick test_guard_out_of_range_escalates;
          Alcotest.test_case "flooding detected" `Quick test_guard_flooding_detected;
          Alcotest.test_case "recovery" `Quick test_guard_recovery;
          Alcotest.test_case "mitigation ladder" `Quick test_guard_mitigation_ladder;
          Alcotest.test_case "end-to-end protection" `Quick test_guard_end_to_end_protection;
          Alcotest.test_case "unknown tenant" `Quick test_guard_unknown_tenant_ignored;
          Alcotest.test_case "flooding exemption" `Quick test_guard_flooding_exemption;
          Alcotest.test_case "byte weighting" `Quick test_guard_byte_weighting;
          Alcotest.test_case "hop idempotence" `Quick test_preprocessor_idempotent_across_hops;
        ] );
      ( "latency",
        [
          Alcotest.test_case "tiers" `Quick test_latency_tiers;
          Alcotest.test_case "top tier bound" `Quick test_latency_top_tier_bound;
          Alcotest.test_case "lower tiers larger" `Quick test_latency_lower_tier_larger;
          Alcotest.test_case "unstable" `Quick test_latency_unstable;
          Alcotest.test_case "shared tier pools" `Quick test_latency_shared_tier_pools;
          Alcotest.test_case "report+validation" `Quick test_latency_report_and_validation;
          Alcotest.test_case "bound holds in sim" `Quick test_latency_bound_holds_in_sim;
        ] );
      ( "multi_objective",
        [
          Alcotest.test_case "weighted blend" `Quick test_weighted_blend;
          Alcotest.test_case "weights matter" `Quick test_weighted_weights_matter;
          Alcotest.test_case "weighted invalid" `Quick test_weighted_invalid;
          Alcotest.test_case "lexicographic" `Quick test_lexicographic_order;
          Alcotest.test_case "names" `Quick test_combinator_names;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "compiles" `Quick test_pipeline_compiles;
          Alcotest.test_case "matches exact" `Quick test_pipeline_matches_exact_preprocessor;
          Alcotest.test_case "preserves isolation" `Quick test_pipeline_preserves_isolation;
          Alcotest.test_case "monotone" `Quick test_pipeline_monotone;
          Alcotest.test_case "fallback parks" `Quick test_pipeline_fallback_parks;
          Alcotest.test_case "table overflow" `Quick test_pipeline_table_overflow;
          Alcotest.test_case "tiny multiplier" `Quick test_pipeline_tiny_multiplier_fails_or_errs;
          Alcotest.test_case "share policy" `Quick test_pipeline_share_policy;
        ] );
      ( "net_instrumentation",
        [
          Alcotest.test_case "utilization" `Quick test_utilization_counts_bytes;
          Alcotest.test_case "busiest links" `Quick test_busiest_links;
          Alcotest.test_case "zero time" `Quick test_utilization_zero_time;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "incast completes" `Quick test_incast_completes;
          Alcotest.test_case "incast validation" `Quick test_incast_validation;
          Alcotest.test_case "permutation" `Quick test_permutation_all_hosts_send;
        ] );
      ( "hot_swap",
        [
          Alcotest.test_case "live fabric" `Quick test_hypervisor_hot_swap_live_fabric;
        ] );
      ( "churn",
        [ Alcotest.test_case "qvisor protects T1" `Slow test_churn_qvisor_protects ] );
    ]
