(* Tests for Engine.Perf: allocation probes, atomic file writes, the
   per-stage meters and their published gauges, GC sampling, the
   repeated-trial benchmark harness (summary statistics and JSON round
   trips), the `bench diff` comparator's verdict logic on hand-built
   reports, and the span profiler's per-span allocation deltas
   (including the recorder's zero-allocation steady state). *)

module Perf = Engine.Perf
module Tel = Engine.Telemetry

let check_float = Alcotest.(check (float 1e-9))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Summary statistics                                                 *)
(* ------------------------------------------------------------------ *)

let test_median () =
  check_float "odd" 3. (Perf.Summary.median [ 5.; 1.; 3. ]);
  check_float "even is midpoint" 2.5 (Perf.Summary.median [ 4.; 1.; 2.; 3. ]);
  check_float "singleton" 7. (Perf.Summary.median [ 7. ]);
  Alcotest.(check bool)
    "empty is nan" true
    (Float.is_nan (Perf.Summary.median []))

let test_of_samples () =
  let s = Perf.Summary.of_samples [ 2.; 1.; 3.; 4.; 100. ] in
  check_float "min" 1. s.Perf.Summary.s_min;
  check_float "median" 3. s.Perf.Summary.s_median;
  (* |x - 3| = [1; 2; 0; 1; 97] -> median 1 *)
  check_float "mad" 1. s.Perf.Summary.s_mad;
  Alcotest.(check (list (float 1e-9)))
    "samples keep trial order"
    [ 2.; 1.; 3.; 4.; 100. ]
    s.Perf.Summary.s_samples

let test_of_samples_empty () =
  let s = Perf.Summary.of_samples [] in
  Alcotest.(check bool) "min nan" true (Float.is_nan s.Perf.Summary.s_min);
  Alcotest.(check bool)
    "median nan" true
    (Float.is_nan s.Perf.Summary.s_median);
  Alcotest.(check bool) "mad nan" true (Float.is_nan s.Perf.Summary.s_mad)

(* ------------------------------------------------------------------ *)
(* Allocation probes and atomic writes                                *)
(* ------------------------------------------------------------------ *)

let test_allocated_bytes () =
  let a0 = Perf.allocated_bytes () in
  let keep = Sys.opaque_identity (Array.make 10_000 0.) in
  let a1 = Perf.allocated_bytes () in
  ignore (Sys.opaque_identity keep);
  Alcotest.(check bool) "monotonic" true (a1 >= a0);
  (* 10_000 floats in a float array: ~word_bytes per element. *)
  Alcotest.(check bool)
    "measures the array" true
    (a1 -. a0 >= 10_000. *. Perf.word_bytes);
  Alcotest.(check bool)
    "probe overhead calibrated" true
    (Perf.probe_overhead_bytes >= 0. && Perf.probe_overhead_bytes < 1024.)

let in_temp_dir f =
  let dir = Filename.temp_file "qvisor_perf" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_file path = In_channel.with_open_text path In_channel.input_all

let test_write_atomic () =
  in_temp_dir @@ fun dir ->
  let path = Filename.concat dir "out.json" in
  Perf.write_atomic path (fun oc -> output_string oc "first");
  Alcotest.(check string) "written" "first" (read_file path);
  Perf.write_atomic path (fun oc -> output_string oc "second");
  Alcotest.(check string) "replaced" "second" (read_file path);
  Alcotest.(check (list string))
    "no stray temp files" [ "out.json" ]
    (Array.to_list (Sys.readdir dir))

let test_write_atomic_failed_writer () =
  in_temp_dir @@ fun dir ->
  let path = Filename.concat dir "out.json" in
  Perf.write_atomic path (fun oc -> output_string oc "intact");
  (try
     Perf.write_atomic path (fun oc ->
         output_string oc "partial";
         failwith "writer died")
   with Failure _ -> ());
  Alcotest.(check string)
    "original preserved on writer failure" "intact" (read_file path);
  Alcotest.(check (list string))
    "temp file cleaned up" [ "out.json" ]
    (Array.to_list (Sys.readdir dir))

(* ------------------------------------------------------------------ *)
(* Meters                                                             *)
(* ------------------------------------------------------------------ *)

let test_meter_bad_sample () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Perf.Meter.create: sample must be a positive power of two")
    (fun () -> ignore (Perf.Meter.create ~sample:3 "x"));
  Alcotest.check_raises "zero"
    (Invalid_argument "Perf.Meter.create: sample must be a positive power of two")
    (fun () -> ignore (Perf.Meter.create ~sample:0 "x"))

let test_meter_counts () =
  let m = Perf.Meter.create ~sample:1 "stage" in
  Alcotest.(check string) "name" "stage" (Perf.Meter.name m);
  Alcotest.(check bool)
    "per-op nan before first sample" true
    (Float.is_nan (Perf.Meter.alloc_bytes_per_op m));
  for _ = 1 to 10 do
    Perf.Meter.before m;
    ignore (Sys.opaque_identity (Array.make 1000 0.));
    Perf.Meter.after m
  done;
  Alcotest.(check int) "ops" 10 (Perf.Meter.ops m);
  let bpe = Perf.Meter.alloc_bytes_per_op m in
  (* Every bracket allocates ~1000 words; sampling every event must see
     at least most of it (probe correction can only subtract). *)
  Alcotest.(check bool)
    (Printf.sprintf "alloc/op sampled (%.0f B)" bpe)
    true
    (bpe > 500. *. Perf.word_bytes);
  (* The disabled meter counts nothing. *)
  Perf.Meter.before Perf.Meter.disabled;
  Perf.Meter.after Perf.Meter.disabled;
  Alcotest.(check int) "disabled ops" 0 (Perf.Meter.ops Perf.Meter.disabled)

let test_meters_publish () =
  let ms = Perf.Meters.create () in
  Alcotest.(check bool) "enabled" true (Perf.Meters.is_enabled ms);
  Alcotest.(check bool)
    "disabled" false
    (Perf.Meters.is_enabled Perf.Meters.disabled);
  Alcotest.(check int) "five stages" 5 (List.length (Perf.Meters.all ms));
  let enq = Perf.Meters.enqueue ms in
  for _ = 1 to 7 do
    Perf.Meter.before enq;
    Perf.Meter.after enq
  done;
  let tel = Tel.create () in
  Perf.Meters.publish ms tel;
  Alcotest.(check int)
    "events counter carries the window" 7
    (Tel.Counter.value (Tel.counter tel "perf.stage.enqueue.events"));
  Alcotest.(check bool)
    "rate gauge set" true
    (Tel.Gauge.value (Tel.gauge tel "perf.stage.enqueue.events_per_sec") > 0.);
  (* A second publish with no new events adds zero, not the total again. *)
  Perf.Meters.publish ms tel;
  Alcotest.(check int)
    "windows, not totals" 7
    (Tel.Counter.value (Tel.counter tel "perf.stage.enqueue.events"));
  (* Publishing to a disabled registry (or from disabled meters) is a
     no-op and must not raise. *)
  Perf.Meters.publish ms Tel.disabled;
  Perf.Meters.publish Perf.Meters.disabled tel

(* ------------------------------------------------------------------ *)
(* GC sampling                                                        *)
(* ------------------------------------------------------------------ *)

let test_sample_gc () =
  let tel = Tel.create () in
  Perf.sample_gc tel;
  let gauge name = Tel.Gauge.value (Tel.gauge tel name) in
  Alcotest.(check bool) "heap words" true (gauge "gc.heap_words" > 0.);
  Alcotest.(check bool)
    "allocated bytes" true
    (gauge "gc.allocated_bytes" > 0.);
  Alcotest.(check bool)
    "minor collections" true
    (gauge "gc.minor_collections" >= 0.);
  Alcotest.(check bool)
    "top heap at least heap" true
    (gauge "gc.top_heap_words" >= gauge "gc.heap_words");
  (* Disabled registry: a silent no-op. *)
  Perf.sample_gc Tel.disabled

let test_pause_monitor () =
  match Perf.Pause.start () with
  | None -> () (* best-effort: environments without runtime events *)
  | Some pause ->
    Gc.minor ();
    Perf.Pause.poll pause;
    let tel = Tel.create () in
    Perf.sample_gc ~pause tel;
    let v = Tel.Gauge.value (Tel.gauge tel "gc.max_pause_seconds") in
    Alcotest.(check bool) "max pause is a sane figure" true (v >= 0. && v < 60.)

(* ------------------------------------------------------------------ *)
(* Bench harness                                                      *)
(* ------------------------------------------------------------------ *)

let test_bench_run () =
  let sink = ref 0 in
  let entry =
    Perf.Bench.run ~trials:3 ~min_time_s:0.001 ~name:"noop" (fun n ->
        for i = 1 to n do
          sink := !sink + i
        done)
  in
  Alcotest.(check string) "name" "noop" entry.Perf.Bench.b_name;
  Alcotest.(check int) "trials" 3 entry.Perf.Bench.b_trials;
  Alcotest.(check int)
    "one ns sample per trial" 3
    (List.length entry.Perf.Bench.b_ns_per_op.Perf.Summary.s_samples);
  Alcotest.(check bool)
    "iters calibrated" true
    (entry.Perf.Bench.b_iters >= 64);
  let ns = entry.Perf.Bench.b_ns_per_op.Perf.Summary.s_median in
  Alcotest.(check bool) "ns/op positive finite" true (Float.is_finite ns && ns > 0.);
  let ab = entry.Perf.Bench.b_alloc_per_op.Perf.Summary.s_median in
  (* The loop body allocates nothing; probe-corrected alloc/op ~ 0. *)
  Alcotest.(check bool)
    (Printf.sprintf "alloc/op about zero (%.3f B)" ab)
    true
    (Float.is_finite ab && ab >= 0. && ab < 1.)

let test_bench_run_invalid () =
  Alcotest.check_raises "trials must be positive"
    (Invalid_argument "Perf.Bench.run: trials must be positive") (fun () ->
      ignore (Perf.Bench.run ~trials:0 ~name:"x" (fun _ -> ())));
  Alcotest.check_raises "min_time must be positive"
    (Invalid_argument "Perf.Bench.run: min_time_s must be positive") (fun () ->
      ignore (Perf.Bench.run ~min_time_s:0. ~name:"x" (fun _ -> ())))

let mk_entry ?(iters = 1000) name ns alloc =
  {
    Perf.Bench.b_name = name;
    b_iters = iters;
    b_trials = List.length ns;
    b_ns_per_op = Perf.Summary.of_samples ns;
    b_alloc_per_op = Perf.Summary.of_samples alloc;
  }

let test_bench_json_round_trip () =
  let entries =
    [
      mk_entry "a" [ 1.; 2.; 3. ] [ 10.; 10.; 10. ];
      (* empty summaries serialize their nan statistics as null *)
      mk_entry "b/with-nan" [] [];
    ]
  in
  let json = Perf.Bench.report_to_json ~mode:"full" entries in
  (* The envelope must survive Json printing (nan would raise). *)
  let text = Engine.Json.to_string ~pretty:true json in
  Alcotest.(check bool)
    "schema in envelope" true
    (contains ~sub:Perf.Bench.schema text);
  match Perf.Bench.report_of_json json with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok back ->
    Alcotest.(check int) "entry count" 2 (List.length back);
    let a = List.nth back 0 and b = List.nth back 1 in
    Alcotest.(check string) "name" "a" a.Perf.Bench.b_name;
    Alcotest.(check int) "iters" 1000 a.Perf.Bench.b_iters;
    check_float "median survives" 2.
      a.Perf.Bench.b_ns_per_op.Perf.Summary.s_median;
    Alcotest.(check (list (float 1e-9)))
      "samples survive" [ 1.; 2.; 3. ]
      a.Perf.Bench.b_ns_per_op.Perf.Summary.s_samples;
    Alcotest.(check bool)
      "nan survives as nan" true
      (Float.is_nan b.Perf.Bench.b_ns_per_op.Perf.Summary.s_median)

let test_bench_read_report_errors () =
  (match Perf.Bench.read_report "/nonexistent/bench.json" with
  | Ok _ -> Alcotest.fail "read of missing file succeeded"
  | Error e ->
    Alcotest.(check bool)
      "error mentions the path" true
      (contains ~sub:"/nonexistent/bench.json" e));
  in_temp_dir @@ fun dir ->
  let path = Filename.concat dir "garbage.json" in
  Out_channel.with_open_text path (fun oc -> output_string oc "{not json");
  match Perf.Bench.read_report path with
  | Ok _ -> Alcotest.fail "read of garbage succeeded"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Diff comparator                                                    *)
(* ------------------------------------------------------------------ *)

let row_verdict report metric =
  match
    List.find_opt
      (fun r -> r.Perf.Diff.r_metric = metric)
      report.Perf.Diff.d_rows
  with
  | Some r -> r.Perf.Diff.r_verdict
  | None -> Alcotest.failf "no row for %S" metric

let verdict = Alcotest.testable Fmt.(of_to_string Perf.Diff.verdict_name) ( = )

let test_diff_identical () =
  let entries =
    [
      mk_entry "a" [ 100.; 101.; 99. ] [ 10.; 10.; 10. ];
      mk_entry "b" [ 5.; 5.; 5. ] [ 0.; 0.; 0. ];
    ]
  in
  let report = Perf.Diff.compare ~baseline:entries ~current:entries () in
  Alcotest.(check int) "four rows" 4 (List.length report.Perf.Diff.d_rows);
  Alcotest.(check int) "no regressions" 0 (Perf.Diff.regressions report);
  List.iter
    (fun r ->
      (* "b alloc B/op" has a zero baseline median: Incomparable, below. *)
      if r.Perf.Diff.r_metric <> "b alloc B/op" then
        Alcotest.check verdict r.Perf.Diff.r_metric Perf.Diff.Within_noise
          r.Perf.Diff.r_verdict)
    report.Perf.Diff.d_rows;
  (* A zero baseline median cannot express a relative change: reported
     but never gated, even on a self-diff. *)
  Alcotest.check verdict "zero baseline incomparable" Perf.Diff.Incomparable
    (row_verdict report "b alloc B/op")

let test_diff_one_sided () =
  let baseline = [ mk_entry "old-only" [ 10. ] [ 1. ] ] in
  let current = [ mk_entry "new-only" [ 10. ] [ 1. ] ] in
  let report = Perf.Diff.compare ~baseline ~current () in
  Alcotest.check verdict "gone metric" Perf.Diff.Missing_current
    (row_verdict report "old-only ns/op");
  Alcotest.check verdict "new metric" Perf.Diff.Missing_baseline
    (row_verdict report "new-only ns/op");
  Alcotest.(check int)
    "one-sided metrics never gate" 0
    (Perf.Diff.regressions report)

let test_diff_nan_baseline () =
  let baseline = [ mk_entry "a" [] [] ] in
  let current = [ mk_entry "a" [ 100.; 100.; 100. ] [ 5.; 5.; 5. ] ] in
  let report = Perf.Diff.compare ~baseline ~current () in
  Alcotest.check verdict "nan baseline" Perf.Diff.Incomparable
    (row_verdict report "a ns/op");
  Alcotest.(check int) "never gates" 0 (Perf.Diff.regressions report)

let test_diff_regression_at_threshold () =
  (* Noise-free samples: old median 100, new median exactly 150.  At
     threshold 0.5 the boundary counts, so this is a regression. *)
  let baseline = [ mk_entry "a" [ 100.; 100.; 100. ] [ 8.; 8.; 8. ] ] in
  let current = [ mk_entry "a" [ 150.; 150.; 150. ] [ 8.; 8.; 8. ] ] in
  let report = Perf.Diff.compare ~threshold:0.5 ~baseline ~current () in
  Alcotest.check verdict "boundary regresses" Perf.Diff.Regression
    (row_verdict report "a ns/op");
  Alcotest.(check int) "counted" 1 (Perf.Diff.regressions report);
  (* A hair under the threshold does not. *)
  let just_under = [ mk_entry "a" [ 149.; 149.; 149. ] [ 8.; 8.; 8. ] ] in
  let report = Perf.Diff.compare ~threshold:0.5 ~baseline ~current:just_under () in
  Alcotest.check verdict "under threshold" Perf.Diff.Within_noise
    (row_verdict report "a ns/op");
  Alcotest.(check int) "not counted" 0 (Perf.Diff.regressions report)

let test_diff_noise_band () =
  (* +30% median change, but both sides are noisy: MAD 10 each, so the
     band is 3 * 20 = 60 > the 30-unit delta -> within noise. *)
  let baseline =
    [ mk_entry "a" [ 100.; 90.; 110.; 10.; 190. ] [ 8.; 8.; 8.; 8.; 8. ] ]
  in
  let current =
    [ mk_entry "a" [ 130.; 120.; 140.; 40.; 220. ] [ 8.; 8.; 8.; 8.; 8. ] ]
  in
  let report = Perf.Diff.compare ~threshold:0.15 ~baseline ~current () in
  Alcotest.check verdict "drowned by noise" Perf.Diff.Within_noise
    (row_verdict report "a ns/op");
  Alcotest.(check int) "no regression" 0 (Perf.Diff.regressions report);
  (* The same relative change with quiet samples gates. *)
  let quiet_old = [ mk_entry "a" [ 100.; 100.; 100. ] [ 8.; 8.; 8. ] ] in
  let quiet_new = [ mk_entry "a" [ 130.; 130.; 130. ] [ 8.; 8.; 8. ] ] in
  let report =
    Perf.Diff.compare ~threshold:0.15 ~baseline:quiet_old ~current:quiet_new ()
  in
  Alcotest.check verdict "quiet change gates" Perf.Diff.Regression
    (row_verdict report "a ns/op")

let test_diff_improvement () =
  let baseline = [ mk_entry "a" [ 100.; 100.; 100. ] [ 8.; 8.; 8. ] ] in
  let current = [ mk_entry "a" [ 50.; 50.; 50. ] [ 8.; 8.; 8. ] ] in
  let report = Perf.Diff.compare ~baseline ~current () in
  Alcotest.check verdict "improvement" Perf.Diff.Improvement
    (row_verdict report "a ns/op");
  Alcotest.(check int)
    "improvements do not gate" 0
    (Perf.Diff.regressions report)

let test_diff_json_verdict () =
  let baseline = [ mk_entry "a" [ 100.; 100.; 100. ] [ 8.; 8.; 8. ] ] in
  let regressed = [ mk_entry "a" [ 200.; 200.; 200. ] [ 8.; 8.; 8. ] ] in
  let field name = function
    | Engine.Json.Obj fields -> List.assoc name fields
    | _ -> Alcotest.fail "verdict json is not an object"
  in
  let json report = Perf.Diff.report_to_json report in
  let pass = json (Perf.Diff.compare ~baseline ~current:baseline ()) in
  Alcotest.(check string)
    "pass verdict" "pass"
    (match field "verdict" pass with
    | Engine.Json.String s -> s
    | _ -> "?");
  let fail = json (Perf.Diff.compare ~baseline ~current:regressed ()) in
  Alcotest.(check string)
    "regression verdict" "regression"
    (match field "verdict" fail with
    | Engine.Json.String s -> s
    | _ -> "?");
  (* The table renders without raising and mentions the worst metric. *)
  let table =
    Format.asprintf "%a" Perf.Diff.pp_report
      (Perf.Diff.compare ~baseline ~current:regressed ())
  in
  Alcotest.(check bool)
    "table mentions metric" true
    (contains ~sub:"a ns/op" table)

(* ------------------------------------------------------------------ *)
(* Span allocation deltas                                             *)
(* ------------------------------------------------------------------ *)

let span_total prof name =
  match
    List.find_opt (fun t -> t.Engine.Span.name = name) (Engine.Span.totals prof)
  with
  | Some t -> t
  | None -> Alcotest.failf "no span total for %S" name

let test_span_alloc_delta () =
  let prof = Engine.Span.create () in
  Engine.Span.with_ prof ~name:"alloc" (fun () ->
      ignore (Sys.opaque_identity (Array.make 100_000 0.)));
  let t = span_total prof "alloc" in
  let expected = 100_000. *. Perf.word_bytes in
  (* Lower bound is exact; the upper bound is loose because a large
     array goes straight to the major heap and the collector's own
     major-heap allocations can ride along in the delta. *)
  Alcotest.(check bool)
    (Printf.sprintf "span saw the array (%.0f B)" t.Engine.Span.alloc_b)
    true
    (t.Engine.Span.alloc_b >= expected
    && t.Engine.Span.alloc_b < 2. *. expected)

let test_span_alloc_child_attribution () =
  let prof = Engine.Span.create () in
  Engine.Span.with_ prof ~name:"parent" (fun () ->
      Engine.Span.with_ prof ~name:"child" (fun () ->
          ignore (Sys.opaque_identity (Array.make 100_000 0.))));
  let parent = span_total prof "parent" and child = span_total prof "child" in
  let expected = 100_000. *. Perf.word_bytes in
  Alcotest.(check bool)
    "child carries the bytes" true
    (child.Engine.Span.self_alloc_b >= expected);
  Alcotest.(check bool)
    "parent total includes child" true
    (parent.Engine.Span.alloc_b >= expected);
  (* Parent self-allocation: just the child's instrumentation constant. *)
  Alcotest.(check bool)
    (Printf.sprintf "parent self is the instrumentation constant (%.0f B)"
       parent.Engine.Span.self_alloc_b)
    true
    (parent.Engine.Span.self_alloc_b < 2048.)

let test_span_zero_alloc_recorder () =
  (* The armed flight-recorder ring is pure scalar stores; a span around
     10k records must see (near) zero allocation — the instrumentation
     constant only. *)
  let recorder = Engine.Recorder.create () in
  let time = 1.0 in
  let prof = Engine.Span.create () in
  Engine.Span.with_ prof ~name:"recorder" (fun () ->
      for i = 1 to 10_000 do
        Engine.Recorder.record recorder ~time ~kind:Engine.Recorder.Enqueue
          ~uid:i ~link:2 ~tenant:0 ~flow:3 ~rank_before:(-1) ~rank:42
      done);
  let t = span_total prof "recorder" in
  Alcotest.(check bool)
    (Printf.sprintf "10k records allocate ~nothing (%.0f B)"
       t.Engine.Span.self_alloc_b)
    true
    (t.Engine.Span.self_alloc_b < 4096.)

let test_span_chrome_args () =
  let prof = Engine.Span.create () in
  Engine.Span.with_ prof ~name:"traced" (fun () ->
      ignore (Sys.opaque_identity (Array.make 50_000 0.)));
  let events =
    match Engine.Span.to_chrome_json prof with
    | Engine.Json.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | Engine.Json.List evs -> evs
      | _ -> Alcotest.fail "traceEvents not a list")
    | _ -> Alcotest.fail "chrome export not an object"
  in
  let assoc name = function
    | Engine.Json.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let is_end ev =
    match assoc "ph" ev with Some (Engine.Json.String "E") -> true | _ -> false
  in
  match List.find_opt is_end events with
  | None -> Alcotest.fail "no E event in chrome export"
  | Some ev -> (
    match assoc "args" ev with
    | Some (Engine.Json.Obj args) ->
      let num name =
        match List.assoc_opt name args with
        | Some (Engine.Json.Number v) -> v
        | _ -> Alcotest.failf "missing args.%s" name
      in
      Alcotest.(check bool)
        "alloc_bytes carries the delta" true
        (num "alloc_bytes" >= 50_000. *. Perf.word_bytes);
      (* A 50k-element float array lands on the major heap directly, so
         only the words split is checked for presence and sanity. *)
      Alcotest.(check bool) "minor words" true (num "minor_words" >= 0.);
      Alcotest.(check bool)
        "promoted words" true
        (num "promoted_words" >= 0.);
      Alcotest.(check bool) "major words" true (num "major_words" >= 0.)
    | _ -> Alcotest.fail "E event has no args object")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "perf"
    [
      ( "summary",
        [
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "of_samples" `Quick test_of_samples;
          Alcotest.test_case "of_samples empty" `Quick test_of_samples_empty;
        ] );
      ( "probes",
        [
          Alcotest.test_case "allocated_bytes" `Quick test_allocated_bytes;
          Alcotest.test_case "write_atomic" `Quick test_write_atomic;
          Alcotest.test_case "write_atomic failed writer" `Quick
            test_write_atomic_failed_writer;
        ] );
      ( "meters",
        [
          Alcotest.test_case "bad sample" `Quick test_meter_bad_sample;
          Alcotest.test_case "counts and sampling" `Quick test_meter_counts;
          Alcotest.test_case "publish" `Quick test_meters_publish;
        ] );
      ( "gc",
        [
          Alcotest.test_case "sample_gc" `Quick test_sample_gc;
          Alcotest.test_case "pause monitor" `Quick test_pause_monitor;
        ] );
      ( "bench",
        [
          Alcotest.test_case "run" `Quick test_bench_run;
          Alcotest.test_case "run invalid" `Quick test_bench_run_invalid;
          Alcotest.test_case "json round trip" `Quick
            test_bench_json_round_trip;
          Alcotest.test_case "read_report errors" `Quick
            test_bench_read_report_errors;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical" `Quick test_diff_identical;
          Alcotest.test_case "one-sided metrics" `Quick test_diff_one_sided;
          Alcotest.test_case "nan baseline" `Quick test_diff_nan_baseline;
          Alcotest.test_case "regression at threshold" `Quick
            test_diff_regression_at_threshold;
          Alcotest.test_case "noise band" `Quick test_diff_noise_band;
          Alcotest.test_case "improvement" `Quick test_diff_improvement;
          Alcotest.test_case "json verdict" `Quick test_diff_json_verdict;
        ] );
      ( "span_alloc",
        [
          Alcotest.test_case "delta" `Quick test_span_alloc_delta;
          Alcotest.test_case "child attribution" `Quick
            test_span_alloc_child_attribution;
          Alcotest.test_case "zero-alloc recorder" `Quick
            test_span_zero_alloc_recorder;
          Alcotest.test_case "chrome args" `Quick test_span_chrome_args;
        ] );
    ]
