(* Daemon tests: wire-protocol round trips, the duration converter, the
   admission pipeline (a rejected mutation must leave the old epoch
   serving), remediation hysteresis, and a socket-level integration run
   with the server in a background thread. *)

let policy s =
  match Qvisor.Policy.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "policy %S: %s" s (Qvisor.Error.to_string e)

let tenant ?(algorithm = "srpt") ?(rank_lo = 0) ?(rank_hi = 100_000) ~id name =
  Qvisor.Tenant.make ~algorithm ~rank_lo ~rank_hi ~id ~name ()

(* ------------------------------------------------------------------ *)
(* Proto round trips                                                  *)
(* ------------------------------------------------------------------ *)

let roundtrip_request req =
  match Daemon.Proto.parse_request (String.trim (Daemon.Proto.request_line req)) with
  | Error e -> Alcotest.failf "request did not parse back: %s" (Qvisor.Error.to_string e)
  | Ok req' ->
    Alcotest.(check string) "request round-trips"
      (Engine.Json.to_string (Daemon.Proto.request_to_json req))
      (Engine.Json.to_string (Daemon.Proto.request_to_json req'))

let roundtrip_outcome outcome =
  match Daemon.Proto.parse_outcome (String.trim (Daemon.Proto.outcome_line outcome)) with
  | Error e -> Alcotest.failf "outcome did not parse back: %s" (Qvisor.Error.to_string e)
  | Ok outcome' ->
    Alcotest.(check string) "outcome round-trips"
      (Engine.Json.to_string (Daemon.Proto.outcome_to_json outcome))
      (Engine.Json.to_string (Daemon.Proto.outcome_to_json outcome'))

let test_proto_requests () =
  List.iter roundtrip_request
    [
      Daemon.Proto.Tenant_add
        { tenant = tenant ~id:7 "srpt7"; policy = Some (policy "srpt7") };
      Daemon.Proto.Tenant_add { tenant = tenant ~id:3 "noq"; policy = None };
      Daemon.Proto.Tenant_remove
        { tenant_id = 7; policy = Some (policy "edf >> pfabric") };
      Daemon.Proto.Tenant_remove { tenant_id = 0; policy = None };
      Daemon.Proto.Policy_update (policy "edf >> pfabric + srpt7");
      Daemon.Proto.Status;
      Daemon.Proto.Drain;
      Daemon.Proto.Shutdown;
    ]

let test_proto_replies () =
  let status =
    {
      Daemon.Proto.epoch = 4;
      sim_time = 1.25;
      uptime_seconds = 3.5;
      draining = true;
      policy = "edf >> pfabric";
      tenants =
        [
          {
            Daemon.Proto.ts_id = 0;
            ts_name = "pfabric";
            ts_algorithm = "pfabric";
            ts_health = Engine.Health.Healthy;
          };
          {
            Daemon.Proto.ts_id = 1;
            ts_name = "edf";
            ts_algorithm = "edf";
            ts_health = Engine.Health.Violating;
          };
        ];
      resyntheses = 3;
      remediations = 2;
      tsdb_series = 42;
      tsdb_memory_bytes = 42 * 25_920;
    }
  in
  List.iter roundtrip_outcome
    [
      Ok (Daemon.Proto.Added { epoch = 2 });
      Ok (Daemon.Proto.Removed { epoch = 3 });
      Ok (Daemon.Proto.Updated { epoch = 4 });
      Ok (Daemon.Proto.Status_reply status);
      Ok Daemon.Proto.Draining;
      Ok Daemon.Proto.Shutting_down;
    ]

let test_proto_error_replies () =
  (* Every Error variant must survive the wire, kind and message. *)
  List.iter
    (fun e ->
      roundtrip_outcome (Error e);
      match
        Daemon.Proto.parse_outcome
          (String.trim (Daemon.Proto.outcome_line (Error e)))
      with
      | Ok (Error e') ->
        Alcotest.(check bool)
          (Printf.sprintf "error equal: %s" (Qvisor.Error.to_string e))
          true
          (Qvisor.Error.equal e e')
      | _ -> Alcotest.fail "error outcome decoded as success")
    [
      Qvisor.Error.Policy_parse "unexpected character '&'";
      Qvisor.Error.Unknown_tenant "id 7";
      Qvisor.Error.Synthesis "rank-space too narrow";
      Qvisor.Error.Deploy "fewer queues than strict tiers";
      Qvisor.Error.Config "bad levels";
      Qvisor.Error.Unavailable "daemon is draining";
    ]

let test_proto_malformed () =
  List.iter
    (fun line ->
      match Daemon.Proto.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "line %S should not parse" line)
    [
      "";
      "not json";
      "{\"no\":\"op\"}";
      "{\"op\":\"tenant-launch\"}";
      "{\"op\":\"tenant-add\"}";
      "{\"op\":\"tenant-remove\",\"id\":\"seven\"}";
      "{\"op\":\"policy-update\",\"policy\":\"t1 >>\"}";
    ]

(* ------------------------------------------------------------------ *)
(* Cliopts duration converter                                         *)
(* ------------------------------------------------------------------ *)

let test_duration_parse () =
  let ok s expected =
    match Cliopts.duration_of_string s with
    | Ok v -> Alcotest.(check (float 1e-9)) (Printf.sprintf "%S" s) expected v
    | Error e -> Alcotest.failf "%S should parse: %s" s e
  in
  ok "500ms" 0.5;
  ok "2s" 2.0;
  ok "1m" 60.0;
  ok "1.5m" 90.0;
  ok "0.25s" 0.25;
  ok "3" 3.0;
  ok "10ms" 0.01

let test_duration_reject () =
  List.iter
    (fun s ->
      match Cliopts.duration_of_string s with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "%S should be rejected (got %g)" s v)
    [ ""; "0"; "0s"; "-1s"; "abc"; "1h"; "ms"; "nan"; "inf" ]

(* ------------------------------------------------------------------ *)
(* Remediation hysteresis                                             *)
(* ------------------------------------------------------------------ *)

let remediation_config =
  {
    Daemon.Remediation.cooldown = 10.;
    backoff_factor = 2.;
    backoff_max = 80.;
    recovery = 30.;
  }

let test_remediation_ladder () =
  let r = Daemon.Remediation.create ~config:remediation_config () in
  (* First violation fires immediately, with the gentle action. *)
  (match Daemon.Remediation.observe r ~id:0 ~now:0. ~levels:None Engine.Health.Violating with
  | Daemon.Remediation.Fire { attempt = 1; action = Daemon.Remediation.Refresh } -> ()
  | _ -> Alcotest.fail "first violation should fire refresh");
  (* Still violating inside the cooldown: held. *)
  (match Daemon.Remediation.observe r ~id:0 ~now:5. ~levels:None Engine.Health.Violating with
  | Daemon.Remediation.Hold -> ()
  | _ -> Alcotest.fail "violation inside the cooldown should hold");
  (* Past the cooldown the ladder escalates to coarsening. *)
  (match Daemon.Remediation.observe r ~id:0 ~now:10. ~levels:None Engine.Health.Violating with
  | Daemon.Remediation.Fire
      { attempt = 2; action = Daemon.Remediation.Coarsen { levels = 128 } } ->
    ()
  | _ -> Alcotest.fail "second attempt should coarsen 256 -> 128");
  (* Coarsening halves the current resolution, floored at 4. *)
  (match
     Daemon.Remediation.observe r ~id:0 ~now:30. ~levels:(Some 6)
       Engine.Health.Violating
   with
  | Daemon.Remediation.Fire
      { attempt = 3; action = Daemon.Remediation.Coarsen { levels = 4 } } ->
    ()
  | _ -> Alcotest.fail "coarsening floors at 4 levels")

let test_remediation_no_flap () =
  (* A tenant alternating healthy/violating every 5 s (faster than the
     30 s recovery) must climb the backoff ladder, not re-trigger
     eagerly: over 200 s that is exactly 5 fires (t = 0, 10, 30, 70,
     150), not the 21 a naive per-window reset would produce. *)
  let r = Daemon.Remediation.create ~config:remediation_config () in
  let fires = ref [] in
  for step = 0 to 40 do
    let now = 5. *. float_of_int step in
    let state =
      if step mod 2 = 0 then Engine.Health.Violating else Engine.Health.Healthy
    in
    match Daemon.Remediation.observe r ~id:0 ~now ~levels:None state with
    | Daemon.Remediation.Fire { attempt; _ } -> fires := (now, attempt) :: !fires
    | Daemon.Remediation.Hold -> ()
  done;
  let fires = List.rev !fires in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "exponentially backed-off fire times"
    [ (0., 1); (10., 2); (30., 3); (70., 4); (150., 5) ]
    fires;
  Alcotest.(check int) "attempts kept climbing" 5
    (Daemon.Remediation.attempts r ~id:0)

let test_remediation_recovery_reset () =
  let r = Daemon.Remediation.create ~config:remediation_config () in
  (match Daemon.Remediation.observe r ~id:0 ~now:0. ~levels:None Engine.Health.Violating with
  | Daemon.Remediation.Fire { attempt = 1; _ } -> ()
  | _ -> Alcotest.fail "fire 1");
  (* 40 continuous healthy seconds (> recovery = 30) reset the ladder... *)
  ignore (Daemon.Remediation.observe r ~id:0 ~now:5. ~levels:None Engine.Health.Healthy);
  ignore (Daemon.Remediation.observe r ~id:0 ~now:45. ~levels:None Engine.Health.Healthy);
  Alcotest.(check int) "attempts reset" 0 (Daemon.Remediation.attempts r ~id:0);
  (match Daemon.Remediation.observe r ~id:0 ~now:50. ~levels:None Engine.Health.Violating with
  | Daemon.Remediation.Fire { attempt = 1; action = Daemon.Remediation.Refresh } -> ()
  | _ -> Alcotest.fail "post-recovery violation starts the ladder over")

let test_remediation_degraded_breaks_streak () =
  let r = Daemon.Remediation.create ~config:remediation_config () in
  (match Daemon.Remediation.observe r ~id:0 ~now:0. ~levels:None Engine.Health.Violating with
  | Daemon.Remediation.Fire { attempt = 1; _ } -> ()
  | _ -> Alcotest.fail "fire 1");
  (* 5..44 looks like 39 healthy seconds, but the degraded blip at t=10
     restarts the streak: no reset, and the next violation is attempt 2. *)
  ignore (Daemon.Remediation.observe r ~id:0 ~now:5. ~levels:None Engine.Health.Healthy);
  ignore (Daemon.Remediation.observe r ~id:0 ~now:10. ~levels:None Engine.Health.Degraded);
  ignore (Daemon.Remediation.observe r ~id:0 ~now:15. ~levels:None Engine.Health.Healthy);
  ignore (Daemon.Remediation.observe r ~id:0 ~now:44. ~levels:None Engine.Health.Healthy);
  Alcotest.(check int) "no reset across the degraded blip" 1
    (Daemon.Remediation.attempts r ~id:0);
  match Daemon.Remediation.observe r ~id:0 ~now:45. ~levels:None Engine.Health.Violating with
  | Daemon.Remediation.Fire { attempt = 2; _ } -> ()
  | _ -> Alcotest.fail "ladder continues at attempt 2"

(* ------------------------------------------------------------------ *)
(* Admission pipeline (handle_request, no sockets involved)           *)
(* ------------------------------------------------------------------ *)

let temp_server () =
  let dir = Filename.temp_dir "qvisor-daemon-test" "" in
  let config =
    {
      Daemon.Server.default_config with
      Daemon.Server.socket_path = Filename.concat dir "ctl.sock";
      http_port = 0;
      slice = 0.005;
      drain_timeout = 0.02;
      telemetry = Engine.Telemetry.create ();
    }
  in
  match Daemon.Server.create config with
  | Ok t -> t
  | Error e -> Alcotest.failf "create: %s" (Qvisor.Error.to_string e)

let get_status t =
  match Daemon.Server.handle_request t Daemon.Proto.Status with
  | Ok (Daemon.Proto.Status_reply st) -> st
  | _ -> Alcotest.fail "status request failed"

let test_admission_rejection_keeps_epoch () =
  let t = temp_server () in
  Alcotest.(check int) "initial epoch" 1 (Daemon.Server.epoch t);
  (* Duplicate name: refused before anything is synthesized. *)
  (match
     Daemon.Server.handle_request t
       (Daemon.Proto.Tenant_add
          { tenant = tenant ~id:9 "pfabric"; policy = None })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate tenant name must be refused");
  (* Policy naming a tenant that does not exist: refused by validation. *)
  (match
     Daemon.Server.handle_request t
       (Daemon.Proto.Policy_update (policy "edf >> pfabric + ghost"))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "policy naming a ghost tenant must be refused");
  (* Removing an unknown tenant: refused. *)
  (match
     Daemon.Server.handle_request t
       (Daemon.Proto.Tenant_remove { tenant_id = 42; policy = None })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tenant removal must be refused");
  let st = get_status t in
  Alcotest.(check int) "old epoch still serving" 1 st.Daemon.Proto.epoch;
  Alcotest.(check int) "both original tenants still serving" 2
    (List.length st.Daemon.Proto.tenants);
  (* And a good mutation still goes through afterwards. *)
  match
    Daemon.Server.handle_request t
      (Daemon.Proto.Tenant_add
         {
           tenant = tenant ~id:9 "srpt9";
           policy = Some (policy "edf >> pfabric + srpt9");
         })
  with
  | Ok (Daemon.Proto.Added { epoch = 2 }) -> ()
  | Ok _ -> Alcotest.fail "unexpected reply to a valid add"
  | Error e -> Alcotest.failf "valid add refused: %s" (Qvisor.Error.to_string e)

let test_draining_refuses_mutations () =
  let t = temp_server () in
  (match Daemon.Server.handle_request t Daemon.Proto.Drain with
  | Ok Daemon.Proto.Draining -> ()
  | _ -> Alcotest.fail "drain must be acknowledged");
  (match
     Daemon.Server.handle_request t
       (Daemon.Proto.Tenant_add { tenant = tenant ~id:9 "late"; policy = None })
   with
  | Error (Qvisor.Error.Unavailable _) -> ()
  | _ -> Alcotest.fail "mutation while draining must be Unavailable");
  (* Observability stays up. *)
  let st = get_status t in
  Alcotest.(check bool) "status reports draining" true st.Daemon.Proto.draining

(* ------------------------------------------------------------------ *)
(* Socket-level integration                                           *)
(* ------------------------------------------------------------------ *)

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n = Unix.write fd bytes off len in
    write_all fd bytes (off + n) (len - n)
  end

let send_line fd line =
  let bytes = Bytes.of_string line in
  write_all fd bytes 0 (Bytes.length bytes)

(* Read one newline-terminated line (the reply) off a stream socket. *)
let read_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1 in
  let rec go () =
    match Unix.read fd chunk 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
      if Bytes.get chunk 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get chunk 0);
        go ()
      end
  in
  go ()

let rpc fd req =
  send_line fd (Daemon.Proto.request_line req);
  match Daemon.Proto.parse_outcome (read_line fd) with
  | Ok outcome -> outcome
  | Error e -> Alcotest.failf "unparseable reply: %s" (Qvisor.Error.to_string e)

(* One full HTTP exchange against the scrape port; returns the body. *)
let http_get port target =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  send_line fd (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" target);
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  Unix.close fd;
  let doc = Buffer.contents buf in
  match String.index_opt doc '\r' with
  | None -> Alcotest.failf "no status line in %S" doc
  | Some _ -> (
    let marker = "\r\n\r\n" in
    let rec find i =
      if i + 4 > String.length doc then None
      else if String.sub doc i 4 = marker then Some (i + 4)
      else find (i + 1)
    in
    match find 0 with
    | None -> Alcotest.failf "no header/body split in %S" doc
    | Some body_at -> String.sub doc body_at (String.length doc - body_at))

let test_socket_integration () =
  let t = temp_server () in
  let server_thread = Thread.create Daemon.Server.serve t in
  let port = Daemon.Server.http_port t in
  (* Give the loop a moment to start serving before connecting. *)
  Unix.sleepf 0.05;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec connect tries =
    try Unix.connect fd (Unix.ADDR_UNIX (Daemon.Server.socket_path t))
    with Unix.Unix_error _ when tries > 0 ->
      Unix.sleepf 0.05;
      connect (tries - 1)
  in
  connect 40;
  (* Baseline: two tenants at epoch 1. *)
  (match rpc fd Daemon.Proto.Status with
  | Ok (Daemon.Proto.Status_reply st) ->
    Alcotest.(check int) "epoch 1" 1 st.Daemon.Proto.epoch;
    Alcotest.(check int) "two tenants" 2 (List.length st.Daemon.Proto.tenants)
  | _ -> Alcotest.fail "status over the socket");
  (* Admit a tenant; its families must appear in the live scrape. *)
  (match
     rpc fd
       (Daemon.Proto.Tenant_add
          {
            tenant = tenant ~id:7 "srpt7";
            policy = Some (policy "edf >> pfabric + srpt7");
          })
   with
  | Ok (Daemon.Proto.Added { epoch = 2 }) -> ()
  | Ok _ -> Alcotest.fail "unexpected add reply"
  | Error e -> Alcotest.failf "add refused: %s" (Qvisor.Error.to_string e));
  Unix.sleepf 0.1;
  let body = http_get port "/metrics" in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    n > 0 && at 0
  in
  Alcotest.(check bool) "srpt7 visible in /metrics" true
    (contains "srpt7" body);
  Alcotest.(check bool) "exposition is EOF-terminated" true
    (contains "# EOF" body);
  (match Engine.Exposition.parse body with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "live scrape does not parse strictly: %s" e);
  (* Evict the tenant; its families must disappear. *)
  (match
     rpc fd
       (Daemon.Proto.Tenant_remove
          { tenant_id = 7; policy = Some (policy "edf >> pfabric") })
   with
  | Ok (Daemon.Proto.Removed { epoch = 3 }) -> ()
  | Ok _ -> Alcotest.fail "unexpected remove reply"
  | Error e -> Alcotest.failf "remove refused: %s" (Qvisor.Error.to_string e));
  Unix.sleepf 0.05;
  let body = http_get port "/metrics" in
  Alcotest.(check bool) "srpt7 gone from /metrics" false
    (contains "srpt7" body);
  let health = http_get port "/healthz" in
  Alcotest.(check bool) "healthz answers" true (String.length health > 0);
  (* Clean shutdown over the wire. *)
  (match rpc fd Daemon.Proto.Shutdown with
  | Ok Daemon.Proto.Shutting_down -> ()
  | _ -> Alcotest.fail "shutdown must be acknowledged");
  Unix.close fd;
  Thread.join server_thread;
  Alcotest.(check bool) "control socket unlinked" false
    (Sys.file_exists (Daemon.Server.socket_path t))

(* ------------------------------------------------------------------ *)
(* HTTP target parsing                                                *)
(* ------------------------------------------------------------------ *)

let test_percent_decode () =
  let check input expected =
    Alcotest.(check string) (Printf.sprintf "%S" input) expected
      (Daemon.Http.percent_decode input)
  in
  check "" "";
  check "plain" "plain";
  check "%41%42c" "ABc";
  check "a+b" "a b";
  check "net.%2A" "net.*";
  check "100%25" "100%";
  (* Malformed escapes pass through literally. *)
  check "%" "%";
  check "%4" "%4";
  check "%zz" "%zz"

let test_split_target () =
  let kv = Alcotest.(pair string string) in
  let check target (path, params) =
    let path', params' = Daemon.Http.split_target target in
    Alcotest.(check string) (target ^ " path") path path';
    Alcotest.check (Alcotest.list kv) (target ^ " params") params params'
  in
  check "/metrics" ("/metrics", []);
  check "/query?" ("/query", []);
  check "/query?start=-60" ("/query", [ ("start", "-60") ]);
  check "/query?series=net.%2A&step=5"
    ("/query", [ ("series", "net.*"); ("step", "5") ]);
  check "/query?tenant=a+b&flag" ("/query", [ ("tenant", "a b"); ("flag", "") ])

(* ------------------------------------------------------------------ *)
(* /query + dashboard integration                                     *)
(* ------------------------------------------------------------------ *)

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n > 0 && at 0

(* Serve with the lifo-ties fault injected: the conformance oracle
   drives a health transition, which must surface as a /query annotation
   the dashboard and post-mortem can render. *)
let test_query_dashboard_integration () =
  let dir = Filename.temp_dir "qvisor-daemon-test" "" in
  let config =
    {
      Daemon.Server.default_config with
      Daemon.Server.socket_path = Filename.concat dir "ctl.sock";
      http_port = 0;
      slice = 0.01;
      drain_timeout = 0.02;
      snapshot_interval = 0.05;
      telemetry = Engine.Telemetry.create ();
      inject_qdisc = Some (Conformance.Fault.qdisc Conformance.Fault.Lifo_ties);
    }
  in
  let t =
    match Daemon.Server.create config with
    | Ok t -> t
    | Error e -> Alcotest.failf "create: %s" (Qvisor.Error.to_string e)
  in
  let server_thread = Thread.create Daemon.Server.serve t in
  let port = Daemon.Server.http_port t in
  Unix.sleepf 0.05;
  (* Poll until the snapshotter has populated the store and the injected
     fault has produced a health annotation. *)
  let deadline = Unix.gettimeofday () +. 30. in
  let has_health (d : Daemon.Dash.data) =
    List.exists
      (fun (a : Daemon.Dash.annotation) -> a.Daemon.Dash.a_kind = "health")
      d.Daemon.Dash.annotations
  in
  let rec settle () =
    let body = http_get port "/query?start=-120" in
    match Daemon.Dash.data_of_body body with
    | Error e -> Alcotest.failf "/query body did not decode: %s" e
    | Ok d ->
      (* The injected fault flips health on the very first tick, so also
         wait for a later snapshot that carries the per-tenant counters. *)
      if
        has_health d
        && Daemon.Dash.find_series d "net.tenant.0.enqueue" <> None
      then d
      else if Unix.gettimeofday () > deadline then
        Alcotest.fail "no health annotation within the deadline"
      else begin
        Unix.sleepf 0.1;
        settle ()
      end
  in
  let d = settle () in
  (* Shape: the documented fixed memory bound holds. *)
  Alcotest.(check int) "per-series bound is the documented 25920 B" 25_920
    d.Daemon.Dash.per_series_bytes;
  Alcotest.(check int) "memory = series * per-series"
    (d.Daemon.Dash.series_count * d.Daemon.Dash.per_series_bytes)
    d.Daemon.Dash.memory_bytes;
  Alcotest.(check bool) "store has interned series" true
    (d.Daemon.Dash.series_count > 0);
  (* Every range answer respects the hard point cap. *)
  List.iter
    (fun (s : Daemon.Dash.series) ->
      if Array.length s.Daemon.Dash.points > Engine.Tsdb.max_points then
        Alcotest.failf "series %s has %d points (cap %d)" s.Daemon.Dash.name
          (Array.length s.Daemon.Dash.points)
          Engine.Tsdb.max_points)
    d.Daemon.Dash.series;
  (* The paper's two tenants, each with a legal health state. *)
  let tenant_names =
    List.map (fun (tn : Daemon.Dash.tenant) -> tn.Daemon.Dash.name)
      d.Daemon.Dash.tenants
  in
  Alcotest.(check (list string)) "tenants" [ "edf"; "pfabric" ]
    (List.sort compare tenant_names);
  List.iter
    (fun (tn : Daemon.Dash.tenant) ->
      if not (List.mem tn.Daemon.Dash.health [ "healthy"; "degraded"; "violating" ])
      then Alcotest.failf "tenant %s: bad health %S" tn.Daemon.Dash.name
          tn.Daemon.Dash.health)
    d.Daemon.Dash.tenants;
  (* Per-tenant network counters are present and typed. *)
  (match Daemon.Dash.find_series d "net.tenant.0.enqueue" with
  | Some s ->
    Alcotest.(check string) "enqueue is a counter" "counter" s.Daemon.Dash.kind;
    Alcotest.(check bool) "enqueue carries a tenant tag" true
      (s.Daemon.Dash.tenant <> None);
    Alcotest.(check bool) "enqueue has live buckets" true
      (Array.exists Option.is_some s.Daemon.Dash.points)
  | None -> Alcotest.fail "net.tenant.0.enqueue missing from /query");
  (* Tenant filtering narrows the series list. *)
  (match Daemon.Dash.data_of_body (http_get port "/query?start=-120&tenant=pfabric") with
  | Error e -> Alcotest.failf "tenant-filtered /query: %s" e
  | Ok df ->
    Alcotest.(check bool) "filtered answer is non-empty" true
      (df.Daemon.Dash.series <> []);
    List.iter
      (fun (s : Daemon.Dash.series) ->
        Alcotest.(check (option string))
          (s.Daemon.Dash.name ^ " belongs to pfabric")
          (Some "pfabric") s.Daemon.Dash.tenant)
      df.Daemon.Dash.series);
  (* Glob filtering keeps only matching names. *)
  (match Daemon.Dash.data_of_body (http_get port "/query?start=-120&series=net.%2A") with
  | Error e -> Alcotest.failf "glob-filtered /query: %s" e
  | Ok dg ->
    Alcotest.(check bool) "glob answer is non-empty" true
      (dg.Daemon.Dash.series <> []);
    List.iter
      (fun (s : Daemon.Dash.series) ->
        if not (String.length s.Daemon.Dash.name >= 4
                && String.sub s.Daemon.Dash.name 0 4 = "net.")
        then Alcotest.failf "series %s escaped the net.* glob" s.Daemon.Dash.name)
      dg.Daemon.Dash.series);
  (* Bad parameters answer 400, not a crash. *)
  (match Daemon.Http.get ~port "/query?start=abc" with
  | Ok (status, _) -> Alcotest.(check int) "bad start is a 400" 400 status
  | Error e -> Alcotest.failf "bad-parameter GET failed at the socket: %s" e);
  (match Daemon.Http.get ~port "/query?tenant=ghost" with
  | Ok (status, _) -> Alcotest.(check int) "unknown tenant is a 400" 400 status
  | Error e -> Alcotest.failf "unknown-tenant GET failed at the socket: %s" e);
  (* The dashboard frame renders every tenant with a badge and the
     incident feed; color mode carries ANSI escapes, plain mode none. *)
  let frame = Daemon.Dash.render_top ~color:false d in
  Alcotest.(check bool) "top shows pfabric" true (contains "pfabric" frame);
  Alcotest.(check bool) "top shows edf" true (contains "edf" frame);
  Alcotest.(check bool) "top shows the incident feed" true
    (contains "recent incidents:" frame);
  Alcotest.(check bool) "top states the fixed memory bound" true
    (contains "(fixed)" frame);
  Alcotest.(check bool) "plain frame has no ANSI escapes" false
    (contains "\027[" frame);
  Alcotest.(check bool) "colored frame has ANSI escapes" true
    (contains "\027[" (Daemon.Dash.render_top ~color:true d));
  (* The post-mortem lists the injected-fault incident. *)
  let report = Daemon.Dash.render_report d in
  Alcotest.(check bool) "report has a header" true
    (contains "qvisor report" report);
  Alcotest.(check bool) "report lists the incident" true
    (contains "incident:" report);
  Alcotest.(check bool) "report names the health transition" true
    (contains "[health]" report);
  (* Status over the control socket reports the store's footprint. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX (Daemon.Server.socket_path t));
  (match rpc fd Daemon.Proto.Status with
  | Ok (Daemon.Proto.Status_reply st) ->
    Alcotest.(check int) "status mirrors /query series count"
      d.Daemon.Dash.series_count st.Daemon.Proto.tsdb_series;
    Alcotest.(check bool) "status reports uptime" true
      (st.Daemon.Proto.uptime_seconds > 0.)
  | _ -> Alcotest.fail "status over the socket");
  (match rpc fd Daemon.Proto.Shutdown with
  | Ok Daemon.Proto.Shutting_down -> ()
  | _ -> Alcotest.fail "shutdown must be acknowledged");
  Unix.close fd;
  Thread.join server_thread

let () =
  Alcotest.run "daemon"
    [
      ( "proto",
        [
          Alcotest.test_case "request round trips" `Quick test_proto_requests;
          Alcotest.test_case "reply round trips" `Quick test_proto_replies;
          Alcotest.test_case "error replies" `Quick test_proto_error_replies;
          Alcotest.test_case "malformed lines" `Quick test_proto_malformed;
        ] );
      ( "duration",
        [
          Alcotest.test_case "accepted forms" `Quick test_duration_parse;
          Alcotest.test_case "rejected forms" `Quick test_duration_reject;
        ] );
      ( "remediation",
        [
          Alcotest.test_case "action ladder" `Quick test_remediation_ladder;
          Alcotest.test_case "no flap on alternating windows" `Quick
            test_remediation_no_flap;
          Alcotest.test_case "recovery resets attempts" `Quick
            test_remediation_recovery_reset;
          Alcotest.test_case "degraded breaks the healthy streak" `Quick
            test_remediation_degraded_breaks_streak;
        ] );
      ( "admission",
        [
          Alcotest.test_case "rejection keeps the old epoch" `Quick
            test_admission_rejection_keeps_epoch;
          Alcotest.test_case "draining refuses mutations" `Quick
            test_draining_refuses_mutations;
        ] );
      ( "http",
        [
          Alcotest.test_case "percent decoding" `Quick test_percent_decode;
          Alcotest.test_case "target splitting" `Quick test_split_target;
        ] );
      ( "socket",
        [
          Alcotest.test_case "end-to-end over the wire" `Slow
            test_socket_integration;
          Alcotest.test_case "query, top and report end to end" `Slow
            test_query_dashboard_integration;
        ] );
    ]
