(* SLO derivation and audit, health-machine hysteresis, and the
   Prometheus exposition round trip — the judgment layer's contracts. *)

module Slo = Qvisor.Slo
module Health = Engine.Health
module Exp = Engine.Exposition

let plan_of policy =
  let tenants =
    [
      Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:30_000 ~id:0
        ~name:"T1" ();
      Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:0 ~rank_hi:100 ~id:1
        ~name:"T2" ();
    ]
  in
  Qvisor.Synthesizer.synthesize_exn ~tenants
    ~policy:(Qvisor.Policy.parse_exn policy)
    ()

(* ------------------------------------------------------------------ *)
(* Objective derivation                                               *)
(* ------------------------------------------------------------------ *)

let test_derive_strict_floor () =
  let objectives = Slo.derive ~plan:(plan_of "T1 >> T2") () in
  let budget name =
    (List.find
       (fun (o : Slo.objective) -> o.Slo.tenant.Qvisor.Tenant.name = name)
       objectives)
      .Slo.drop_budget
  in
  Alcotest.(check (float 1e-9)) "top strict tier keeps the real budget" 0.02
    (budget "T1");
  Alcotest.(check (float 1e-9))
    "below a strict edge only the sanity floor remains" 0.5 (budget "T2");
  let shared = Slo.derive ~plan:(plan_of "T1 + T2") () in
  List.iter
    (fun (o : Slo.objective) ->
      Alcotest.(check (float 1e-9))
        (o.Slo.tenant.Qvisor.Tenant.name ^ " under + keeps the real budget")
        0.02 o.Slo.drop_budget)
    shared;
  List.iter
    (fun (o : Slo.objective) ->
      Alcotest.(check bool) "no envelopes, no delay bound" true
        (o.Slo.delay_bound = None);
      Alcotest.(check bool) "rank-error budget has headroom" true
        (o.Slo.rank_error_budget >= 1.))
    objectives

let test_derive_validation () =
  let plan = plan_of "T1 >> T2" in
  Alcotest.check_raises "drop_budget <= 0"
    (Invalid_argument "Slo.derive: drop_budget <= 0") (fun () ->
      ignore (Slo.derive ~plan ~drop_budget:0. ()));
  Alcotest.check_raises "delay_headroom < 1"
    (Invalid_argument "Slo.derive: delay_headroom < 1") (fun () ->
      ignore (Slo.derive ~plan ~delay_headroom:0.5 ()))

(* ------------------------------------------------------------------ *)
(* Burn windows                                                       *)
(* ------------------------------------------------------------------ *)

let audit_with ~window ~drop_budget =
  let objectives = Slo.derive ~plan:(plan_of "T1 + T2") ~drop_budget () in
  Slo.create
    ~config:{ Slo.default_audit_config with window }
    ~objectives ()

let pkt tenant = Sched.Packet.make ~tenant ~rank:10 ~flow:1 ~size:1500 ()

let test_burn_window_capacity_one () =
  (* window = 1: every attempt closes a window, so the fast burn flips
     between 0 (clean attempt) and 1/budget with a one-attempt lag on
     drops (the drop lands after its attempt already closed). *)
  let t = audit_with ~window:1 ~drop_budget:0.5 in
  let p = pkt 0 in
  Slo.on_enqueue t p;
  (match Slo.status t ~tenant_id:0 with
  | None -> Alcotest.fail "tenant 0 audited"
  | Some st ->
    Alcotest.(check (float 1e-9)) "clean window burns nothing" 0. st.Slo.fast_burn);
  Slo.on_drop t p;
  Slo.on_enqueue t p;
  (match Slo.status t ~tenant_id:0 with
  | None -> Alcotest.fail "tenant 0 audited"
  | Some st ->
    Alcotest.(check (float 1e-9)) "dropped window burns 1/budget" 2.
      st.Slo.fast_burn;
    Alcotest.(check int) "attempts tracked" 2 st.Slo.attempts;
    Alcotest.(check int) "drops tracked" 1 st.Slo.drops);
  (* Sustained total loss with window 1 must breach, not wedge. *)
  for _ = 1 to 8 do
    Slo.on_drop t p;
    Slo.on_enqueue t p
  done;
  let signal, _detail = Slo.evaluate t ~tenant_id:0 in
  Alcotest.(check bool) "sustained loss breaches" true (signal = Health.Breach)

let test_unknown_tenant_ignored () =
  let t = audit_with ~window:4 ~drop_budget:0.02 in
  Slo.on_enqueue t (pkt 99);
  Slo.on_drop t (pkt 99);
  Slo.on_delay t ~tenant_id:99 1.0;
  Slo.on_rank_error t ~tenant_id:99 1.0;
  Slo.on_tie_inversion t ~tenant_id:99;
  Alcotest.(check bool) "unknown tenants have no status" true
    (Slo.status t ~tenant_id:99 = None);
  let signal, detail = Slo.evaluate t ~tenant_id:99 in
  Alcotest.(check bool) "unknown tenants pass" true (signal = Health.Pass);
  Alcotest.(check string) "with the no-objective detail" "no objective" detail

let test_tie_inversion_breaches () =
  let t = audit_with ~window:256 ~drop_budget:0.02 in
  Slo.on_enqueue t (pkt 0);
  Slo.on_tie_inversion t ~tenant_id:0;
  let signal, detail = Slo.evaluate t ~tenant_id:0 in
  Alcotest.(check bool) "one tie inversion is a breach" true
    (signal = Health.Breach);
  Alcotest.(check bool) "the detail names the inversion" true
    (String.length detail > 0
    && String.sub detail 0 1 = "1")

(* ------------------------------------------------------------------ *)
(* Health hysteresis                                                  *)
(* ------------------------------------------------------------------ *)

let test_health_never_flaps () =
  let h = Health.create () in
  Health.watch h ~id:0 ~name:"t";
  for i = 1 to 100 do
    Health.observe h ~id:0 ~time:(float_of_int i)
      (if i mod 2 = 0 then Health.Warn else Health.Pass);
    Alcotest.(check bool) "alternating pass/warn stays healthy" true
      (Health.state h ~id:0 = Health.Healthy)
  done;
  Alcotest.(check int) "and never transitions" 0 (Health.alerts_emitted h)

let test_health_ladder () =
  let h = Health.create () in
  Health.watch h ~id:0 ~name:"t";
  Health.observe h ~id:0 ~time:0.01 Health.Breach;
  Alcotest.(check bool) "one breach degrades" true
    (Health.state h ~id:0 = Health.Degraded);
  Health.observe h ~id:0 ~time:0.02 Health.Breach;
  Alcotest.(check bool) "two breaches violate" true
    (Health.state h ~id:0 = Health.Violating);
  (* Recovery requires persistent cleanliness, one strike per pass. *)
  Health.observe h ~id:0 ~time:0.03 Health.Pass;
  Alcotest.(check bool) "one pass is not forgiveness" true
    (Health.state h ~id:0 <> Health.Healthy);
  for i = 4 to 6 do
    Health.observe h ~id:0 ~time:(0.01 *. float_of_int i) Health.Pass
  done;
  Alcotest.(check bool) "persistent passes recover" true
    (Health.state h ~id:0 = Health.Healthy)

(* ------------------------------------------------------------------ *)
(* Exposition                                                         *)
(* ------------------------------------------------------------------ *)

let test_exposition_disabled () =
  Alcotest.(check int) "disabled registry exposes nothing" 0
    (List.length (Exp.families_of_registry Engine.Telemetry.disabled))

let test_exposition_empty () =
  let text = Exp.render (Engine.Telemetry.create ()) in
  Alcotest.(check bool) "renders something" true (String.length text > 0);
  match Exp.parse text with
  | Error e -> Alcotest.fail e
  | Ok lines ->
    (* The render is never fully empty: every scrape carries its own
       monotonic timestamp gauge (and nothing else here). *)
    let samples =
      List.filter_map
        (function Exp.Sample s -> Some s | _ -> None)
        lines
    in
    Alcotest.(check int) "only the scrape timestamp in an empty registry" 1
      (List.length samples);
    (match samples with
    | [ s ] ->
      Alcotest.(check string) "it is the scrape timestamp"
        "qvisor_scrape_timestamp_seconds" s.Exp.sample_name
    | _ -> ());
    Alcotest.(check bool) "terminated by # EOF" true
      (List.exists (function Exp.Comment " EOF" -> true | _ -> false) lines)

let test_sanitize () =
  Alcotest.(check string) "invalid chars collapse" "net_port_3_drop"
    (Exp.sanitize_name "net.port.3-drop");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Exp.sanitize_name "9lives");
  Alcotest.(check string) "empty becomes _" "_" (Exp.sanitize_name "");
  Alcotest.check_raises "family rejects an unsanitized name"
    (Invalid_argument "Exposition.family: invalid name \"no spaces\"")
    (fun () -> ignore (Exp.family ~name:"no spaces" ~help:"h" Exp.Counter []))

let test_parser_strictness () =
  (match Exp.parse "foo 1\n" with
  | Error e ->
    Alcotest.(check bool) "undeclared sample names its line" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "sample without # TYPE must not parse");
  match Exp.parse "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate # TYPE must not parse"

(* The property the test-side parser exists for: every line the renderer
   emits for a real, full registry parses, and re-renders verbatim. *)
let test_roundtrip_single_run () =
  let tel = Engine.Telemetry.create () in
  let params =
    {
      Experiments.Fig4.quick with
      Experiments.Fig4.duration = 0.04;
      warmup = 0.01;
      drain = 0.2;
      load = 0.5;
    }
  in
  (match
     Experiments.Fig4.run ~telemetry:tel ~slo:true params
       (Experiments.Fig4.Qvisor_policy "pfabric >> edf")
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Qvisor.Error.to_string e));
  let text = Exp.render ~tenant_names:[ (0, "pfabric"); (1, "edf") ] tel in
  (match Exp.parse text with
  | Error e -> Alcotest.fail e
  | Ok lines ->
    Alcotest.(check bool) "a full run exposes samples" true
      (List.exists (function Exp.Sample _ -> true | _ -> false) lines));
  List.iteri
    (fun i line ->
      match Exp.parse_line line with
      | Error e -> Alcotest.fail (Printf.sprintf "line %d: %s" (i + 1) e)
      | Ok parsed ->
        Alcotest.(check string)
          (Printf.sprintf "line %d round-trips" (i + 1))
          line (Exp.render_line parsed))
    (String.split_on_char '\n' (String.trim text))

(* Label values are untrusted (tenant names arrive over the control
   socket): the escaping of backslash / double-quote / newline must hold
   through a full render → strict-parse round trip, raw value restored. *)
let test_hostile_label_values () =
  Alcotest.(check string) "escape backslash" {|a\\b|}
    (Exp.escape_label_value {|a\b|});
  Alcotest.(check string) "escape quote" {|say \"hi\"|}
    (Exp.escape_label_value {|say "hi"|});
  Alcotest.(check string) "escape newline" {|two\nlines|}
    (Exp.escape_label_value "two\nlines");
  List.iter
    (fun hostile ->
      let tel = Engine.Telemetry.create () in
      Engine.Telemetry.Counter.add
        (Engine.Telemetry.counter tel "net.tenant.0.drop")
        7;
      let text = Exp.render ~tenant_names:[ (0, hostile) ] tel in
      match Exp.parse text with
      | Error e -> Alcotest.failf "hostile name %S: %s" hostile e
      | Ok lines ->
        let tenant_label =
          List.find_map
            (function
              | Exp.Sample s
                when s.Exp.sample_name = "qvisor_net_tenant_drop_total" ->
                List.assoc_opt "tenant" s.Exp.labels
              | _ -> None)
            lines
        in
        (match tenant_label with
        | Some v ->
          Alcotest.(check string)
            (Printf.sprintf "label value %S survives the round trip" hostile)
            hostile v
        | None -> Alcotest.failf "hostile name %S: tenant sample missing" hostile);
        (* And every emitted line stays canonical under re-rendering. *)
        List.iteri
          (fun i line ->
            match Exp.parse_line line with
            | Error e -> Alcotest.failf "line %d: %s" (i + 1) e
            | Ok parsed ->
              Alcotest.(check string)
                (Printf.sprintf "line %d canonical" (i + 1))
                line (Exp.render_line parsed))
          (String.split_on_char '\n' (String.trim text)))
    [
      {|back\slash|};
      {|quo"te|};
      "new\nline";
      "all\\three\"at\nonce";
      {|trailing\|};
    ]

(* ------------------------------------------------------------------ *)
(* Guard verdict counters                                             *)
(* ------------------------------------------------------------------ *)

let test_guard_transition_counters () =
  let tel = Engine.Telemetry.create () in
  let tenants =
    [
      Qvisor.Tenant.make ~algorithm:"stfq" ~rank_lo:0 ~rank_hi:100 ~id:0
        ~name:"T1" ();
    ]
  in
  let guard = Qvisor.Guard.create ~telemetry:tel ~tenants () in
  let suspicious = Engine.Telemetry.counter tel "guard.suspicious" in
  let malicious = Engine.Telemetry.counter tel "guard.malicious" in
  (* Three dirty windows walk the ladder Conforming -> Suspicious ->
     Malicious; each *entry* ticks its counter exactly once. *)
  let window = Qvisor.Guard.default_config.Qvisor.Guard.window in
  for _ = 1 to 3 * window do
    Qvisor.Guard.observe guard
      (Sched.Packet.make ~tenant:0 ~rank:10_000 ~flow:1 ~size:1500 ())
  done;
  (match Qvisor.Guard.verdict guard ~tenant_id:0 with
  | Qvisor.Guard.Malicious _ -> ()
  | _ -> Alcotest.fail "three dirty windows convict");
  Alcotest.(check int) "suspicious entered once" 1
    (Engine.Telemetry.Counter.value suspicious);
  Alcotest.(check int) "malicious entered once" 1
    (Engine.Telemetry.Counter.value malicious)

(* ------------------------------------------------------------------ *)
(* End-to-end verdicts                                                *)
(* ------------------------------------------------------------------ *)

let tiny_params =
  {
    Experiments.Fig4.quick with
    Experiments.Fig4.duration = 0.04;
    warmup = 0.01;
    drain = 0.2;
    load = 0.5;
  }

let verdict_fingerprint (r : Experiments.Fig4.result) =
  match r.Experiments.Fig4.slo with
  | None -> []
  | Some report ->
    List.map
      (fun ((tn : Qvisor.Tenant.t), state, (st : Slo.status)) ->
        ( tn.Qvisor.Tenant.name,
          Health.state_to_string state,
          st.Slo.attempts,
          st.Slo.drops,
          st.Slo.tie_inversions ))
      report.Experiments.Fig4.verdicts

let test_jobs_invariant_verdicts () =
  let sweep jobs =
    match
      Experiments.Fig4.sweep ~jobs ~slo:true tiny_params ~loads:[ 0.5 ]
        ~schemes:
          [
            Experiments.Fig4.Qvisor_policy "pfabric >> edf";
            Experiments.Fig4.Qvisor_policy "pfabric + edf";
          ]
    with
    | Ok results -> List.map verdict_fingerprint results
    | Error e -> Alcotest.fail (Qvisor.Error.to_string e)
  in
  let one = sweep 1 and four = sweep 4 in
  Alcotest.(check bool) "slo audited every job" true
    (List.for_all (fun v -> v <> []) one);
  Alcotest.(check bool) "jobs=1 and jobs=4 verdicts identical" true
    (one = four)

let test_injected_fault_fails_gate () =
  let run inject =
    match
      Experiments.Fig4.run ~slo:true
        { tiny_params with Experiments.Fig4.inject_qdisc = inject }
        (Experiments.Fig4.Qvisor_policy "pfabric >> edf")
    with
    | Ok r -> r
    | Error e -> Alcotest.fail (Qvisor.Error.to_string e)
  in
  let healthy = run None in
  (match healthy.Experiments.Fig4.slo with
  | None -> Alcotest.fail "slo report present"
  | Some report ->
    List.iter
      (fun (_, _, (st : Slo.status)) ->
        Alcotest.(check int) "a conforming backend never inverts ties" 0
          st.Slo.tie_inversions)
      report.Experiments.Fig4.verdicts);
  let lifo =
    run (Some (Conformance.Fault.qdisc Conformance.Fault.Lifo_ties))
  in
  match lifo.Experiments.Fig4.slo with
  | None -> Alcotest.fail "slo report present"
  | Some report ->
    Alcotest.(check bool) "lifo-ties inverts ties" true
      (List.exists
         (fun (_, _, (st : Slo.status)) -> st.Slo.tie_inversions > 0)
         report.Experiments.Fig4.verdicts);
    Alcotest.(check bool) "and ends the run violating" true
      (List.exists
         (fun (_, state, _) -> state = Health.Violating)
         report.Experiments.Fig4.verdicts)

let () =
  Alcotest.run "slo"
    [
      ( "derive",
        [
          Alcotest.test_case "strict-edge sanity floor" `Quick
            test_derive_strict_floor;
          Alcotest.test_case "validation" `Quick test_derive_validation;
        ] );
      ( "audit",
        [
          Alcotest.test_case "burn window capacity 1" `Quick
            test_burn_window_capacity_one;
          Alcotest.test_case "unknown tenant ignored" `Quick
            test_unknown_tenant_ignored;
          Alcotest.test_case "tie inversion breaches" `Quick
            test_tie_inversion_breaches;
        ] );
      ( "health",
        [
          Alcotest.test_case "alternating windows never flap" `Quick
            test_health_never_flaps;
          Alcotest.test_case "strike ladder" `Quick test_health_ladder;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "disabled registry" `Quick
            test_exposition_disabled;
          Alcotest.test_case "empty registry" `Quick test_exposition_empty;
          Alcotest.test_case "name sanitization" `Quick test_sanitize;
          Alcotest.test_case "parser strictness" `Quick test_parser_strictness;
          Alcotest.test_case "hostile label values" `Quick
            test_hostile_label_values;
          Alcotest.test_case "single-run round trip" `Slow
            test_roundtrip_single_run;
        ] );
      ( "guard",
        [
          Alcotest.test_case "verdict transition counters" `Quick
            test_guard_transition_counters;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 identical" `Slow
            test_jobs_invariant_verdicts;
          Alcotest.test_case "injected fault fails the gate" `Slow
            test_injected_fault_fails_gate;
        ] );
    ]
