(* Tests for the packet-level network simulator: topology construction,
   ECMP routing, the link/port model, the windowed and CBR transports, the
   workload generators, and the FCT metrics. *)

let fifo_ports ~capacity _link = Sched.Fifo_queue.create ~capacity_pkts:capacity ()

(* ------------------------------------------------------------------ *)
(* Topology                                                           *)
(* ------------------------------------------------------------------ *)

let test_topology_basic () =
  let t = Netsim.Topology.create ~num_hosts:2 ~num_switches:1 in
  let l, l' = Netsim.Topology.add_duplex t ~a:0 ~b:2 ~rate:1e9 ~delay:1e-6 in
  Alcotest.(check int) "link ids" 0 l.Netsim.Topology.id;
  Alcotest.(check int) "reverse id" 1 l'.Netsim.Topology.id;
  Alcotest.(check int) "num links" 2 (Netsim.Topology.num_links t);
  Alcotest.(check bool) "host kind" true (Netsim.Topology.kind t 0 = Netsim.Topology.Host);
  Alcotest.(check bool) "switch kind" true (Netsim.Topology.kind t 2 = Netsim.Topology.Switch)

let test_topology_invalid () =
  let t = Netsim.Topology.create ~num_hosts:2 ~num_switches:0 in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "self loop" true
    (raises (fun () -> ignore (Netsim.Topology.add_link t ~src:0 ~dst:0 ~rate:1. ~delay:0.)));
  Alcotest.(check bool) "unknown node" true
    (raises (fun () -> ignore (Netsim.Topology.add_link t ~src:0 ~dst:9 ~rate:1. ~delay:0.)));
  Alcotest.(check bool) "zero rate" true
    (raises (fun () -> ignore (Netsim.Topology.add_link t ~src:0 ~dst:1 ~rate:0. ~delay:0.)))

let test_leaf_spine_shape () =
  (* The paper's fabric: 9 leaves x 16 hosts, 4 spines. *)
  let t =
    Netsim.Topology.leaf_spine ~leaves:9 ~spines:4 ~hosts_per_leaf:16
      ~access_rate:1e9 ~fabric_rate:4e9 ~link_delay:1e-6
  in
  Alcotest.(check int) "hosts" 144 (Netsim.Topology.num_hosts t);
  Alcotest.(check int) "nodes" (144 + 13) (Netsim.Topology.num_nodes t);
  (* 144 host duplexes + 36 leaf-spine duplexes. *)
  Alcotest.(check int) "links" ((144 + 36) * 2) (Netsim.Topology.num_links t);
  let leaf = Netsim.Topology.leaf_of_host ~leaves:9 ~hosts_per_leaf:16 0 in
  Alcotest.(check int) "host 0's leaf" 144 leaf;
  Alcotest.(check int) "host 143's leaf" 152
    (Netsim.Topology.leaf_of_host ~leaves:9 ~hosts_per_leaf:16 143);
  (* Every leaf has 16 host downlinks + 4 spine uplinks. *)
  Alcotest.(check int) "leaf degree" 20 (List.length (Netsim.Topology.links_from t 144));
  (* Every spine has 9 leaf links. *)
  Alcotest.(check int) "spine degree" 9 (List.length (Netsim.Topology.links_from t 153))

let test_leaf_spine_rates () =
  let t =
    Netsim.Topology.leaf_spine ~leaves:2 ~spines:2 ~hosts_per_leaf:2
      ~access_rate:1e9 ~fabric_rate:4e9 ~link_delay:1e-6
  in
  List.iter
    (fun l ->
      let is_access =
        l.Netsim.Topology.src < 4 || l.Netsim.Topology.dst < 4
      in
      let expected = if is_access then 1e9 else 4e9 in
      Alcotest.(check (float 0.)) "rate" expected l.Netsim.Topology.rate)
    (List.init (Netsim.Topology.num_links t) (Netsim.Topology.link t))

(* ------------------------------------------------------------------ *)
(* Routing                                                            *)
(* ------------------------------------------------------------------ *)

let small_fabric () =
  Netsim.Topology.leaf_spine ~leaves:2 ~spines:2 ~hosts_per_leaf:2
    ~access_rate:1e9 ~fabric_rate:4e9 ~link_delay:1e-6

let test_routing_path_valid () =
  let topo = small_fabric () in
  let routing = Netsim.Routing.compute topo in
  (* Host 0 -> host 3 crosses leaf 4, some spine, leaf 5. *)
  let path = Netsim.Routing.path routing ~src:0 ~dst:3 ~flow:7 in
  (match path with
  | [ 0; 4; spine; 5; 3 ] ->
    Alcotest.(check bool) "via a spine" true (spine = 6 || spine = 7)
  | _ -> Alcotest.failf "unexpected path length %d" (List.length path));
  (* Same-leaf traffic stays under the leaf. *)
  Alcotest.(check (list int)) "intra-leaf path" [ 0; 4; 1 ]
    (Netsim.Routing.path routing ~src:0 ~dst:1 ~flow:1)

let test_routing_ecmp_spread () =
  let topo = small_fabric () in
  let routing = Netsim.Routing.compute topo in
  (* Cross-leaf flows should use both spines across many flow ids. *)
  let spines =
    List.init 64 (fun flow ->
        match Netsim.Routing.path routing ~src:0 ~dst:3 ~flow with
        | [ _; _; spine; _; _ ] -> spine
        | _ -> Alcotest.fail "bad path")
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "both spines used" [ 6; 7 ] spines

let test_routing_flow_sticky () =
  let topo = small_fabric () in
  let routing = Netsim.Routing.compute topo in
  let p1 = Netsim.Routing.path routing ~src:0 ~dst:3 ~flow:42 in
  let p2 = Netsim.Routing.path routing ~src:0 ~dst:3 ~flow:42 in
  Alcotest.(check (list int)) "same flow, same path" p1 p2

let test_routing_candidates () =
  let topo = small_fabric () in
  let routing = Netsim.Routing.compute topo in
  (* At leaf 4, towards a remote host, both spine uplinks are candidates. *)
  Alcotest.(check int) "two candidates" 2
    (List.length (Netsim.Routing.candidates routing ~node:4 ~dst:3));
  (* Towards a local host there is exactly one way down. *)
  Alcotest.(check int) "one candidate" 1
    (List.length (Netsim.Routing.candidates routing ~node:4 ~dst:1))

(* ------------------------------------------------------------------ *)
(* Net: link timing and queueing                                      *)
(* ------------------------------------------------------------------ *)

(* Two hosts joined by one switch; 1 Gb/s links with 1 us delay. *)
let tiny_net ?(capacity = 100) ?preprocess ?(qdisc = fifo_ports ~capacity) () =
  let topo = Netsim.Topology.create ~num_hosts:2 ~num_switches:1 in
  ignore (Netsim.Topology.add_duplex topo ~a:0 ~b:2 ~rate:1e9 ~delay:1e-6);
  ignore (Netsim.Topology.add_duplex topo ~a:1 ~b:2 ~rate:1e9 ~delay:1e-6);
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create () in
  let delivered = ref [] in
  let net =
    Netsim.Net.create ~sim ~topo ~routing ~make_qdisc:qdisc ?preprocess
      ~deliver:(fun p -> delivered := p :: !delivered)
      ()
  in
  (sim, net, delivered)

let test_net_delivery_timing () =
  let sim, net, delivered = tiny_net () in
  let p = Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1250 () in
  Netsim.Net.inject net p;
  Engine.Sim.run sim;
  Alcotest.(check int) "delivered" 1 (List.length !delivered);
  (* Two hops: 2 x (1250*8/1e9 tx + 1e-6 prop) = 2 * 11 us = 22 us. *)
  Alcotest.(check (float 1e-9)) "arrival time" 22e-6 (Engine.Sim.now sim)

let test_net_store_and_forward_serialization () =
  (* Two same-size packets on one path: the second finishes one
     transmission time after the first (pipeline). *)
  let sim, net, delivered = tiny_net () in
  let mk () = Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1250 () in
  Netsim.Net.inject net (mk ());
  Netsim.Net.inject net (mk ());
  Engine.Sim.run sim;
  Alcotest.(check int) "both delivered" 2 (List.length !delivered);
  Alcotest.(check (float 1e-9)) "second arrives 10us later" 32e-6
    (Engine.Sim.now sim)

let test_net_drop_counting () =
  let sim, net, delivered = tiny_net ~capacity:1 () in
  for _ = 1 to 5 do
    Netsim.Net.inject net (Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1250 ())
  done;
  Engine.Sim.run sim;
  (* Capacity 1 + 1 in flight: first is dequeued immediately (port idle),
     second queues; the rest drop. *)
  Alcotest.(check int) "drops" 3 (Netsim.Net.total_drops net);
  Alcotest.(check int) "delivered rest" 2 (List.length !delivered)

let test_net_preprocess_hook () =
  let stamped = ref 0 in
  let preprocess p =
    incr stamped;
    p.Sched.Packet.rank <- 99
  in
  let sim, net, delivered = tiny_net ~preprocess () in
  Netsim.Net.inject net (Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1250 ());
  Engine.Sim.run sim;
  (* Hook runs at the host NIC port and the switch port: twice. *)
  Alcotest.(check int) "hook ran per hop" 2 !stamped;
  match !delivered with
  | [ p ] -> Alcotest.(check int) "rank rewritten" 99 p.Sched.Packet.rank
  | _ -> Alcotest.fail "expected one delivery"

let test_net_inject_from_switch_rejected () =
  let sim, net, _ = tiny_net () in
  ignore sim;
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "switch cannot inject" true
    (raises (fun () ->
         Netsim.Net.inject net (Sched.Packet.make ~src:2 ~dst:1 ~flow:1 ~size:100 ())))

let test_net_pifo_ports_reorder () =
  (* With PIFO ports, a burst injected back-to-back leaves in rank order
     (after the head-of-line packet that seized the idle link). *)
  let sim, net, delivered =
    tiny_net ~qdisc:(fun _ -> Sched.Pifo_queue.create ~capacity_pkts:100 ()) ()
  in
  List.iter
    (fun r ->
      Netsim.Net.inject net
        (Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1250 ~rank:r ()))
    [ 5; 9; 1; 7; 3 ];
  Engine.Sim.run sim;
  let order = List.rev_map (fun p -> p.Sched.Packet.rank) !delivered in
  Alcotest.(check (list int)) "rank order after head" [ 5; 1; 3; 7; 9 ] order

let test_routing_ecmp_balance () =
  (* Over many flows between random cross-leaf pairs, both spines carry a
     comparable share (hash quality, not just coverage). *)
  let topo = small_fabric () in
  let routing = Netsim.Routing.compute topo in
  let counts = Hashtbl.create 4 in
  for flow = 0 to 999 do
    match Netsim.Routing.path routing ~src:0 ~dst:3 ~flow with
    | [ _; _; spine; _; _ ] ->
      Hashtbl.replace counts spine
        (1 + Option.value (Hashtbl.find_opt counts spine) ~default:0)
    | _ -> Alcotest.fail "bad path"
  done;
  let share spine =
    float_of_int (Option.value (Hashtbl.find_opt counts spine) ~default:0)
    /. 1000.
  in
  Alcotest.(check bool)
    (Printf.sprintf "spine shares %.2f/%.2f" (share 6) (share 7))
    true
    (share 6 > 0.40 && share 6 < 0.60)

(* ------------------------------------------------------------------ *)
(* Shaped ports                                                       *)
(* ------------------------------------------------------------------ *)

(* Two hosts, one switch; host 0's uplink (link 0) is shaped. *)
let shaped_net ~rate ~burst =
  let topo = Netsim.Topology.create ~num_hosts:2 ~num_switches:1 in
  ignore (Netsim.Topology.add_duplex topo ~a:0 ~b:2 ~rate:1e9 ~delay:1e-6);
  ignore (Netsim.Topology.add_duplex topo ~a:1 ~b:2 ~rate:1e9 ~delay:1e-6);
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create () in
  let delivered = ref [] in
  let net =
    Netsim.Net.create ~sim ~topo ~routing
      ~make_qdisc:(fun _ -> Sched.Fifo_queue.create ~capacity_pkts:1000 ())
      ~shaper_of:(fun l ->
        if l.Netsim.Topology.id = 0 then
          Some { Netsim.Net.shaper_rate = rate; shaper_burst = burst }
        else None)
      ~deliver:(fun p -> delivered := (Engine.Sim.now sim, p) :: !delivered)
      ()
  in
  (sim, net, delivered)

let test_shaper_limits_rate () =
  (* 100 packets of 1250 B through a 10 MB/s shaper with a one-packet
     bucket: draining takes ~ 125 KB / 10 MB/s = 12.5 ms even though the
     wire is 1 Gb/s. *)
  let sim, net, delivered = shaped_net ~rate:10e6 ~burst:1518. in
  for _ = 1 to 100 do
    Netsim.Net.inject net (Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1250 ())
  done;
  Engine.Sim.run sim;
  Alcotest.(check int) "all delivered" 100 (List.length !delivered);
  let finish = Engine.Sim.now sim in
  Alcotest.(check bool)
    (Printf.sprintf "finished at %.2f ms (paced)" (1e3 *. finish))
    true
    (finish > 11e-3 && finish < 14e-3)

let test_shaper_allows_burst () =
  (* A bucket holding 10 packets lets the first 10 out back-to-back. *)
  let sim, net, delivered = shaped_net ~rate:1e6 ~burst:12_500. in
  for _ = 1 to 10 do
    Netsim.Net.inject net (Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1250 ())
  done;
  Engine.Sim.run ~until:0.001 sim;
  (* At wire speed 10 x 1250 B take 100 us + delays: all arrive < 1 ms. *)
  Alcotest.(check int) "burst passed unshaped" 10 (List.length !delivered)

let test_shaper_idles_with_backlog () =
  (* Non-work-conservation: with an empty bucket the port waits even
     though a packet is queued. *)
  let sim, net, delivered = shaped_net ~rate:1e6 ~burst:1518. in
  Netsim.Net.inject net (Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1400 ());
  Netsim.Net.inject net (Sched.Packet.make ~src:0 ~dst:1 ~flow:1 ~size:1400 ());
  Engine.Sim.run ~until:0.0005 sim;
  Alcotest.(check int) "only the bucketful left" 1 (List.length !delivered);
  Alcotest.(check bool) "second packet still queued" true
    (Netsim.Net.queued_packets net = 1);
  Engine.Sim.run sim;
  Alcotest.(check int) "delivered once refilled" 2 (List.length !delivered)

let test_shaper_unshaped_ports_unaffected () =
  let sim, net, delivered = shaped_net ~rate:1e6 ~burst:1518. in
  (* Host 1 -> host 0 rides only unshaped links. *)
  Netsim.Net.inject net (Sched.Packet.make ~src:1 ~dst:0 ~flow:2 ~size:1250 ());
  Engine.Sim.run ~until:0.0001 sim;
  Alcotest.(check int) "full speed elsewhere" 1 (List.length !delivered)

let test_shaper_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero rate" true
    (raises (fun () -> ignore (shaped_net ~rate:0. ~burst:2000.)));
  Alcotest.(check bool) "tiny burst" true
    (raises (fun () -> ignore (shaped_net ~rate:1e6 ~burst:100.)))

(* ------------------------------------------------------------------ *)
(* Transport                                                          *)
(* ------------------------------------------------------------------ *)

let transport_net ?(capacity = 100) ?(qdisc = fifo_ports ~capacity) () =
  let topo = small_fabric () in
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create () in
  let transport = Netsim.Transport.create ~sim () in
  let net =
    Netsim.Net.create ~sim ~topo ~routing ~make_qdisc:qdisc
      ~deliver:(Netsim.Transport.deliver transport)
      ()
  in
  Netsim.Transport.attach transport net;
  (sim, net, transport)

let test_transport_validation () =
  let _sim, _net, transport = transport_net () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  let start ?(src = 0) ?(dst = 3) ?(size = 1000) ?(window = 4) () =
    ignore
      (Netsim.Transport.start_flow transport ~tenant:0
         ~ranker:(Sched.Ranker.pfabric ()) ~src ~dst ~size ~window
         ~on_complete:(fun _ -> ())
         ())
  in
  Alcotest.(check bool) "src = dst" true (raises (fun () -> start ~dst:0 ()));
  Alcotest.(check bool) "zero size" true (raises (fun () -> start ~size:0 ()));
  Alcotest.(check bool) "zero window" true (raises (fun () -> start ~window:0 ()))

let test_transport_window_one () =
  (* Stop-and-wait still completes, just slowly. *)
  let sim, _net, transport = transport_net () in
  let done_ = ref false in
  ignore
    (Netsim.Transport.start_flow transport ~tenant:0
       ~ranker:(Sched.Ranker.pfabric ()) ~src:0 ~dst:3 ~size:14_600 ~window:1
       ~on_complete:(fun _ -> done_ := true)
       ());
  Engine.Sim.run sim;
  Alcotest.(check bool) "completes with window 1" true !done_

let test_transport_bidirectional_pair () =
  (* Simultaneous flows in both directions between one host pair share the
     duplex links without interference artifacts. *)
  let sim, _net, transport = transport_net () in
  let completed = ref 0 in
  let start src dst =
    ignore
      (Netsim.Transport.start_flow transport ~tenant:0
         ~ranker:(Sched.Ranker.pfabric ()) ~src ~dst ~size:200_000
         ~on_complete:(fun r ->
           incr completed;
           (* Each direction gets full throughput: FCT close to isolated. *)
           Alcotest.(check bool) "near-isolated FCT" true
             (Netsim.Transport.fct r < 4e-3))
         ())
  in
  start 0 3;
  start 3 0;
  Engine.Sim.run sim;
  Alcotest.(check int) "both done" 2 !completed

let test_transport_single_flow_completes () =
  let sim, _net, transport = transport_net () in
  let result = ref None in
  ignore
    (Netsim.Transport.start_flow transport ~tenant:0
       ~ranker:(Sched.Ranker.pfabric ()) ~src:0 ~dst:3 ~size:100_000
       ~on_complete:(fun r -> result := Some r)
       ());
  Engine.Sim.run sim;
  match !result with
  | None -> Alcotest.fail "flow never completed"
  | Some r ->
    Alcotest.(check int) "size recorded" 100_000 r.Netsim.Transport.size;
    let fct = Netsim.Transport.fct r in
    (* 100 KB at 1 Gb/s is 0.8 ms minimum; with windowing it takes a bit
       longer but must stay well under 10 ms on an idle fabric. *)
    Alcotest.(check bool) "fct sane" true (fct > 0.8e-3 && fct < 10e-3)

let test_transport_tiny_flow () =
  let sim, _net, transport = transport_net () in
  let done_ = ref false in
  ignore
    (Netsim.Transport.start_flow transport ~tenant:0
       ~ranker:(Sched.Ranker.pfabric ()) ~src:0 ~dst:1 ~size:1
       ~on_complete:(fun _ -> done_ := true)
       ());
  Engine.Sim.run sim;
  Alcotest.(check bool) "1-byte flow completes" true !done_

let test_transport_active_flow_accounting () =
  let sim, _net, transport = transport_net () in
  ignore
    (Netsim.Transport.start_flow transport ~tenant:0
       ~ranker:(Sched.Ranker.pfabric ()) ~src:0 ~dst:3 ~size:10_000
       ~on_complete:(fun _ -> ())
       ());
  Alcotest.(check int) "active while running" 1
    (Netsim.Transport.active_flows transport);
  Engine.Sim.run sim;
  Alcotest.(check int) "quiescent after" 0 (Netsim.Transport.active_flows transport)

let test_transport_recovers_from_drops () =
  (* A tiny queue forces drops; retransmission must still complete the
     flow. *)
  let sim, net, transport = transport_net ~capacity:3 () in
  let done_ = ref false in
  ignore
    (Netsim.Transport.start_flow transport ~tenant:0
       ~ranker:(Sched.Ranker.pfabric ()) ~src:0 ~dst:3 ~size:60_000
       ~window:24 ~rto:0.5e-3
       ~on_complete:(fun _ -> done_ := true)
       ());
  Engine.Sim.run sim;
  Alcotest.(check bool) "drops occurred" true (Netsim.Net.total_drops net > 0);
  Alcotest.(check bool) "flow still completed" true !done_

let test_transport_concurrent_flows_share () =
  let sim, _net, transport = transport_net () in
  let completions = ref [] in
  let start src dst =
    ignore
      (Netsim.Transport.start_flow transport ~tenant:0
         ~ranker:(Sched.Ranker.pfabric ()) ~src ~dst ~size:50_000
         ~on_complete:(fun r -> completions := r :: !completions)
         ())
  in
  start 0 3;
  start 1 2;
  start 2 0;
  Engine.Sim.run sim;
  Alcotest.(check int) "all complete" 3 (List.length !completions)

let test_transport_srpt_under_contention () =
  (* Two flows from the same host to the same destination with PIFO ports
     and pFabric ranks: the short flow must finish first even though the
     long one started first. *)
  let sim, _net, transport =
    transport_net ~qdisc:(fun _ -> Sched.Pifo_queue.create ~capacity_pkts:100 ()) ()
  in
  let order = ref [] in
  let ranker = Sched.Ranker.pfabric () in
  ignore
    (Netsim.Transport.start_flow transport ~tenant:0 ~ranker ~src:0 ~dst:3
       ~size:2_000_000
       ~on_complete:(fun _ -> order := `Long :: !order)
       ());
  ignore
    (Engine.Sim.schedule_after sim ~delay:1e-4 (fun () ->
         ignore
           (Netsim.Transport.start_flow transport ~tenant:0 ~ranker ~src:0
              ~dst:3 ~size:30_000
              ~on_complete:(fun _ -> order := `Short :: !order)
              ())));
  Engine.Sim.run sim;
  Alcotest.(check bool) "short finished first" true
    (List.rev !order = [ `Short; `Long ])

let test_cbr_throughput_and_deadlines () =
  let sim, _net, transport = transport_net () in
  let stats =
    Netsim.Transport.start_cbr transport ~tenant:1
      ~ranker:(Sched.Ranker.edf ()) ~src:0 ~dst:3 ~rate:0.5e9
      ~deadline_budget:1e-3 ~until:0.01 ()
  in
  Engine.Sim.run sim;
  (* 0.5 Gb/s for 10 ms = 625 KB ~ 411 packets of 1518 B. *)
  Alcotest.(check bool) "sent about 411" true (abs (stats.Netsim.Transport.sent - 411) <= 2);
  Alcotest.(check int) "all delivered" stats.Netsim.Transport.sent
    stats.Netsim.Transport.delivered;
  Alcotest.(check int) "all met deadline" stats.Netsim.Transport.delivered
    stats.Netsim.Transport.deadline_met;
  (* One-way delay on an idle path ~ 24 us. *)
  Alcotest.(check bool) "delay sane" true
    (Engine.Stats.mean stats.Netsim.Transport.delay < 100e-6)

let test_cbr_respects_until () =
  let sim, _net, transport = transport_net () in
  let stats =
    Netsim.Transport.start_cbr transport ~tenant:1
      ~ranker:(Sched.Ranker.edf ()) ~src:0 ~dst:3 ~rate:1e8 ~until:0.001 ()
  in
  Engine.Sim.run sim;
  Alcotest.(check bool) "stopped sending" true (Engine.Sim.now sim < 0.01);
  Alcotest.(check bool) "sent some" true (stats.Netsim.Transport.sent > 0)

let test_net_on_dequeue_feedback () =
  (* The fabric's on_dequeue hook feeds served packets back to a
     virtual-clock ranker (the STFQ feedback loop of the PIFO paper). *)
  let ranker = Sched.Ranker.stfq ~unit_bytes:100 () in
  let topo = Netsim.Topology.create ~num_hosts:2 ~num_switches:1 in
  ignore (Netsim.Topology.add_duplex topo ~a:0 ~b:2 ~rate:1e9 ~delay:1e-6);
  ignore (Netsim.Topology.add_duplex topo ~a:1 ~b:2 ~rate:1e9 ~delay:1e-6);
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create () in
  let served = ref 0 in
  let net =
    Netsim.Net.create ~sim ~topo ~routing
      ~make_qdisc:(fun _ -> Sched.Pifo_queue.create ~capacity_pkts:100 ())
      ~on_dequeue:(fun p ->
        incr served;
        Sched.Ranker.on_dequeue ranker p)
      ~deliver:(fun _ -> ())
      ()
  in
  let p = Sched.Packet.make ~src:0 ~dst:1 ~flow:5 ~size:1000 () in
  ignore (Sched.Ranker.tag ranker ~now:0. p);
  Netsim.Net.inject net p;
  Engine.Sim.run sim;
  (* Two hops -> the hook fired twice; a later flow's first tag starts at
     or beyond the served packet's virtual start. *)
  Alcotest.(check int) "hook fired per hop" 2 !served;
  let q = Sched.Packet.make ~src:0 ~dst:1 ~flow:6 ~size:1000 () in
  Alcotest.(check bool) "virtual clock advanced for newcomers" true
    (Sched.Ranker.tag ranker ~now:0. q >= p.Sched.Packet.label)

(* ------------------------------------------------------------------ *)
(* Workload                                                           *)
(* ------------------------------------------------------------------ *)

let test_data_mining_shape () =
  let d = Netsim.Workload.data_mining () in
  let r = Engine.Rng.create ~seed:5 in
  let n = 20_000 in
  let small = ref 0 and large = ref 0 in
  for _ = 1 to n do
    let s = Engine.Rng.Empirical.sample d r in
    if s <= 1_100. then incr small;
    if s >= 1_000_000. then incr large
  done;
  let frac x = float_of_int x /. float_of_int n in
  (* Half the flows are tiny; 20%+ are >= 1 MB (the 0.8 CDF knee sits at
     2 MB). *)
  Alcotest.(check bool) "about half tiny" true
    (abs_float (frac !small -. 0.5) < 0.03);
  Alcotest.(check bool) "heavy tail present" true (frac !large > 0.15);
  Alcotest.(check bool) "mean in the MBs" true
    (Engine.Rng.Empirical.mean d > 1e6)

let test_flow_arrival_rate () =
  (* load 0.8, 144 hosts, 1 Gb/s, 2.74 MB mean: ~5.2 kflows/s. *)
  let rate =
    Netsim.Workload.flow_arrival_rate ~load:0.8 ~num_hosts:144 ~access_rate:1e9
      ~mean_flow_size:2.74e6
  in
  Alcotest.(check bool) "plausible rate" true (rate > 5000. && rate < 5500.)

let test_poisson_open_loop_generates () =
  let sim, _net, transport = transport_net () in
  let rng = Engine.Rng.create ~seed:11 in
  let metrics = Netsim.Metrics.create () in
  let arrivals =
    Netsim.Workload.poisson_open_loop ~sim ~rng ~transport ~tenant:0
      ~ranker:(Sched.Ranker.pfabric ()) ~num_hosts:4 ~load:0.3
      ~access_rate:1e9 ~dist:(Netsim.Workload.data_mining ()) ~until:0.05
      ~on_complete:(Netsim.Metrics.record metrics)
      ()
  in
  Engine.Sim.run ~until:1.0 sim;
  Alcotest.(check bool) "flows were started" true (arrivals.Netsim.Workload.flows_started > 0);
  Alcotest.(check bool) "most flows completed" true
    (Netsim.Metrics.completed metrics > arrivals.Netsim.Workload.flows_started / 2)

let test_cbr_tenant_spawns_flows () =
  let sim, _net, transport = transport_net () in
  let rng = Engine.Rng.create ~seed:13 in
  let stats_list =
    Netsim.Workload.cbr_tenant ~sim ~rng ~transport ~tenant:1
      ~ranker:(Sched.Ranker.edf ()) ~num_hosts:4 ~flows:5 ~rate:1e8
      ~until:0.005 ()
  in
  Engine.Sim.run sim;
  Alcotest.(check int) "five streams" 5 (List.length stats_list);
  List.iter
    (fun s -> Alcotest.(check bool) "stream sent packets" true (s.Netsim.Transport.sent > 0))
    stats_list

(* ------------------------------------------------------------------ *)
(* Fluid model cross-validation                                       *)
(* ------------------------------------------------------------------ *)

let test_fluid_rtt () =
  (* 2 x 1 Gb/s hops, 1 us propagation: data 1518 B (12.14 us) + ack
     58 B (0.46 us) + 2 us prop per hop. *)
  let rtt =
    Netsim.Fluid.path_rtt ~rates:[ 1e9; 1e9 ] ~link_delay:1e-6
      ~mtu_payload:1460
  in
  Alcotest.(check bool)
    (Printf.sprintf "rtt = %.1f us" (1e6 *. rtt))
    true
    (rtt > 28e-6 && rtt < 31e-6)

let test_fluid_bandwidth_limited () =
  (* A large flow with a big window is bandwidth-limited: ~ size*8/C. *)
  let fct =
    Netsim.Fluid.estimate_fct ~size:10_000_000 ~mtu_payload:1460 ~window:64
      ~rates:[ 1e9; 1e9 ] ~link_delay:1e-6 ~load:0.
  in
  let ideal = 8. *. 10e6 /. 1e9 in
  Alcotest.(check bool) "close to line rate" true
    (fct > ideal && fct < 1.15 *. ideal)

let test_fluid_window_limited () =
  (* window 1: one mtu per rtt. *)
  let rtt =
    Netsim.Fluid.path_rtt ~rates:[ 1e9; 1e9 ] ~link_delay:1e-6 ~mtu_payload:1460
  in
  let fct =
    Netsim.Fluid.estimate_fct ~size:14_600 ~mtu_payload:1460 ~window:1
      ~rates:[ 1e9; 1e9 ] ~link_delay:1e-6 ~load:0.
  in
  Alcotest.(check bool) "ten rtts plus one" true
    (fct > 10. *. rtt && fct < 12. *. rtt)

let test_fluid_load_slows () =
  let at load =
    Netsim.Fluid.estimate_fct ~size:1_000_000 ~mtu_payload:1460 ~window:64
      ~rates:[ 1e9 ] ~link_delay:1e-6 ~load
  in
  Alcotest.(check bool) "load halves residual" true
    (at 0.5 > 1.8 *. at 0. && at 0.5 < 2.2 *. at 0.)

let test_fluid_invalid () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "load 1 rejected" true
    (raises (fun () ->
         ignore
           (Netsim.Fluid.estimate_fct ~size:1 ~mtu_payload:1 ~window:1
              ~rates:[ 1. ] ~link_delay:0. ~load:1.)))

let test_fluid_vs_packet_sim () =
  (* The simulator's FCT for an isolated flow should sit within ~50% of
     the fluid prediction (the model skips slow-start-ish rampup and
     queueing, the simulator has no other traffic). *)
  let sim, _net, transport = transport_net () in
  let measured = ref nan in
  ignore
    (Netsim.Transport.start_flow transport ~tenant:0
       ~ranker:(Sched.Ranker.pfabric ()) ~src:0 ~dst:3 ~size:1_000_000
       ~window:16
       ~on_complete:(fun r -> measured := Netsim.Transport.fct r)
       ());
  Engine.Sim.run sim;
  let predicted =
    Netsim.Fluid.estimate_fct ~size:1_000_000 ~mtu_payload:1460 ~window:16
      ~rates:
        (Netsim.Fluid.leaf_spine_path_rates ~intra_leaf:false ~access_rate:1e9
           ~fabric_rate:4e9)
      ~link_delay:1e-6 ~load:0.
  in
  let ratio = !measured /. predicted in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.3f ms vs fluid %.3f ms (ratio %.2f)"
       (1e3 *. !measured) (1e3 *. predicted) ratio)
    true
    (ratio > 0.8 && ratio < 1.5)

let test_fluid_vs_packet_sim_small () =
  let sim, _net, transport = transport_net () in
  let measured = ref nan in
  ignore
    (Netsim.Transport.start_flow transport ~tenant:0
       ~ranker:(Sched.Ranker.pfabric ()) ~src:0 ~dst:1 ~size:20_000 ~window:12
       ~on_complete:(fun r -> measured := Netsim.Transport.fct r)
       ());
  Engine.Sim.run sim;
  let predicted =
    Netsim.Fluid.estimate_fct ~size:20_000 ~mtu_payload:1460 ~window:12
      ~rates:
        (Netsim.Fluid.leaf_spine_path_rates ~intra_leaf:true ~access_rate:1e9
           ~fabric_rate:4e9)
      ~link_delay:1e-6 ~load:0.
  in
  let ratio = !measured /. predicted in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.3f ms vs fluid %.3f ms (ratio %.2f)"
       (1e3 *. !measured) (1e3 *. predicted) ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let sample_trace () =
  [
    { Netsim.Trace.start = 0.001; src = 0; dst = 3; size = 10_000; tenant = 0 };
    { Netsim.Trace.start = 0.002; src = 1; dst = 2; size = 500; tenant = 1 };
  ]

let test_trace_round_trip () =
  let specs = sample_trace () in
  match Netsim.Trace.of_string (Netsim.Trace.to_string specs) with
  | Ok parsed ->
    Alcotest.(check int) "same count" 2 (List.length parsed);
    List.iter2
      (fun (a : Netsim.Trace.flow_spec) (b : Netsim.Trace.flow_spec) ->
        Alcotest.(check int) "src" a.Netsim.Trace.src b.Netsim.Trace.src;
        Alcotest.(check int) "size" a.Netsim.Trace.size b.Netsim.Trace.size;
        Alcotest.(check (float 1e-9)) "start" a.Netsim.Trace.start b.Netsim.Trace.start)
      specs parsed
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_trace_parse_errors () =
  let is_error s =
    match Netsim.Trace.of_string s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "wrong arity" true (is_error "1.0 2 3\n");
  Alcotest.(check bool) "bad number" true (is_error "x 0 1 100 0\n");
  Alcotest.(check bool) "zero size" true (is_error "0.1 0 1 0 0\n");
  Alcotest.(check bool) "self loop" true (is_error "0.1 2 2 100 0\n");
  Alcotest.(check bool) "comments and blanks ok" false
    (is_error "# header\n\n0.1 0 1 100 0\n")

let test_trace_parse_tabs () =
  (* Fields may be separated by any run of blanks — tabs included, as in
     traces exported from spreadsheets or TSV tooling. *)
  match
    Netsim.Trace.of_string "0.001\t0\t3\t10000\t0\n0.002  1\t2  500 1\n"
  with
  | Ok [ a; b ] ->
    Alcotest.(check int) "tab src" 0 a.Netsim.Trace.src;
    Alcotest.(check int) "tab size" 10_000 a.Netsim.Trace.size;
    Alcotest.(check int) "mixed dst" 2 b.Netsim.Trace.dst;
    Alcotest.(check int) "mixed tenant" 1 b.Netsim.Trace.tenant
  | Ok l -> Alcotest.failf "expected 2 specs, got %d" (List.length l)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_trace_save_load () =
  let path = Filename.temp_file "qvisor_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Netsim.Trace.save path (sample_trace ());
      match Netsim.Trace.load path with
      | Ok specs -> Alcotest.(check int) "loaded" 2 (List.length specs)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_trace_synthesize_sorted () =
  let rng = Engine.Rng.create ~seed:21 in
  let specs =
    Netsim.Trace.synthesize ~rng ~dist:(Netsim.Workload.data_mining ())
      ~num_hosts:8 ~load:0.5 ~access_rate:1e9 ~tenant:0 ~until:0.2
  in
  Alcotest.(check bool) "non-empty" true (List.length specs > 0);
  let sorted = ref true in
  let rec walk = function
    | (a : Netsim.Trace.flow_spec) :: (b :: _ as rest) ->
      if a.Netsim.Trace.start > b.Netsim.Trace.start then sorted := false;
      walk rest
    | _ -> ()
  in
  walk specs;
  Alcotest.(check bool) "sorted by start" true !sorted;
  List.iter
    (fun (f : Netsim.Trace.flow_spec) ->
      if f.Netsim.Trace.start >= 0.2 then Alcotest.fail "flow after horizon")
    specs

let test_trace_replay_runs () =
  let sim, _net, transport = transport_net () in
  let completed = ref 0 in
  let specs =
    [
      { Netsim.Trace.start = 0.001; src = 0; dst = 3; size = 5_000; tenant = 0 };
      { Netsim.Trace.start = 0.002; src = 1; dst = 2; size = 5_000; tenant = 0 };
    ]
  in
  Netsim.Trace.replay ~sim ~transport
    ~ranker_of_tenant:(fun _ -> Sched.Ranker.pfabric ())
    ~on_complete:(fun _ -> incr completed)
    specs;
  Engine.Sim.run sim;
  Alcotest.(check int) "trace flows completed" 2 !completed

let test_trace_replay_deterministic () =
  (* Synthesizing then replaying a trace twice gives identical FCTs. *)
  let run () =
    let sim, _net, transport = transport_net () in
    let fcts = ref [] in
    let rng = Engine.Rng.create ~seed:33 in
    let specs =
      Netsim.Trace.synthesize ~rng ~dist:(Netsim.Workload.data_mining ())
        ~num_hosts:4 ~load:0.3 ~access_rate:1e9 ~tenant:0 ~until:0.05
    in
    Netsim.Trace.replay ~sim ~transport
      ~ranker_of_tenant:(fun _ -> Sched.Ranker.pfabric ())
      ~on_complete:(fun r -> fcts := Netsim.Transport.fct r :: !fcts)
      specs;
    Engine.Sim.run ~until:0.5 sim;
    !fcts
  in
  let a = run () in
  let b = run () in
  Alcotest.(check (list (float 1e-12))) "bit-identical replays" a b

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_bucketing () =
  Alcotest.(check bool) "small" true (Netsim.Metrics.bucket_of_size 50_000 = Netsim.Metrics.Small);
  Alcotest.(check bool) "boundary 100KB is medium" true
    (Netsim.Metrics.bucket_of_size 100_000 = Netsim.Metrics.Medium);
  Alcotest.(check bool) "boundary 1MB is large" true
    (Netsim.Metrics.bucket_of_size 1_000_000 = Netsim.Metrics.Large);
  Alcotest.(check bool) "large" true (Netsim.Metrics.bucket_of_size 5_000_000 = Netsim.Metrics.Large)

let test_metrics_record () =
  let m = Netsim.Metrics.create () in
  let record size fct =
    Netsim.Metrics.record m
      {
        Netsim.Transport.flow_id = 0;
        tenant = 0;
        size;
        started_at = 0.;
        completed_at = fct;
      }
  in
  record 10_000 0.001;
  record 20_000 0.003;
  record 2_000_000 0.050;
  Alcotest.(check int) "completed" 3 (Netsim.Metrics.completed m);
  Alcotest.(check (float 1e-9)) "small mean ms" 2.0
    (Netsim.Metrics.mean_fct_ms m Netsim.Metrics.Small);
  Alcotest.(check (float 1e-9)) "large mean ms" 50.0
    (Netsim.Metrics.mean_fct_ms m Netsim.Metrics.Large);
  Alcotest.(check bool) "medium empty" true
    (Float.is_nan (Netsim.Metrics.mean_fct_ms m Netsim.Metrics.Medium))

let () =
  Alcotest.run "netsim"
    [
      ( "topology",
        [
          Alcotest.test_case "basic" `Quick test_topology_basic;
          Alcotest.test_case "invalid" `Quick test_topology_invalid;
          Alcotest.test_case "leaf-spine shape" `Quick test_leaf_spine_shape;
          Alcotest.test_case "leaf-spine rates" `Quick test_leaf_spine_rates;
        ] );
      ( "routing",
        [
          Alcotest.test_case "path valid" `Quick test_routing_path_valid;
          Alcotest.test_case "ecmp spread" `Quick test_routing_ecmp_spread;
          Alcotest.test_case "flow sticky" `Quick test_routing_flow_sticky;
          Alcotest.test_case "candidates" `Quick test_routing_candidates;
          Alcotest.test_case "ecmp balance" `Quick test_routing_ecmp_balance;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery timing" `Quick test_net_delivery_timing;
          Alcotest.test_case "serialization" `Quick test_net_store_and_forward_serialization;
          Alcotest.test_case "drop counting" `Quick test_net_drop_counting;
          Alcotest.test_case "preprocess hook" `Quick test_net_preprocess_hook;
          Alcotest.test_case "switch inject rejected" `Quick test_net_inject_from_switch_rejected;
          Alcotest.test_case "pifo ports reorder" `Quick test_net_pifo_ports_reorder;
          Alcotest.test_case "on_dequeue feedback" `Quick test_net_on_dequeue_feedback;
        ] );
      ( "shaper",
        [
          Alcotest.test_case "limits rate" `Quick test_shaper_limits_rate;
          Alcotest.test_case "allows burst" `Quick test_shaper_allows_burst;
          Alcotest.test_case "idles with backlog" `Quick test_shaper_idles_with_backlog;
          Alcotest.test_case "unshaped unaffected" `Quick test_shaper_unshaped_ports_unaffected;
          Alcotest.test_case "validation" `Quick test_shaper_validation;
        ] );
      ( "transport",
        [
          Alcotest.test_case "flow completes" `Quick test_transport_single_flow_completes;
          Alcotest.test_case "tiny flow" `Quick test_transport_tiny_flow;
          Alcotest.test_case "active accounting" `Quick test_transport_active_flow_accounting;
          Alcotest.test_case "recovers from drops" `Quick test_transport_recovers_from_drops;
          Alcotest.test_case "concurrent flows" `Quick test_transport_concurrent_flows_share;
          Alcotest.test_case "srpt under contention" `Quick test_transport_srpt_under_contention;
          Alcotest.test_case "cbr throughput+deadlines" `Quick test_cbr_throughput_and_deadlines;
          Alcotest.test_case "cbr until" `Quick test_cbr_respects_until;
          Alcotest.test_case "validation" `Quick test_transport_validation;
          Alcotest.test_case "window one" `Quick test_transport_window_one;
          Alcotest.test_case "bidirectional" `Quick test_transport_bidirectional_pair;
        ] );
      ( "workload",
        [
          Alcotest.test_case "data-mining shape" `Quick test_data_mining_shape;
          Alcotest.test_case "arrival rate" `Quick test_flow_arrival_rate;
          Alcotest.test_case "poisson open loop" `Quick test_poisson_open_loop_generates;
          Alcotest.test_case "cbr tenant" `Quick test_cbr_tenant_spawns_flows;
        ] );
      ( "fluid",
        [
          Alcotest.test_case "rtt" `Quick test_fluid_rtt;
          Alcotest.test_case "bandwidth limited" `Quick test_fluid_bandwidth_limited;
          Alcotest.test_case "window limited" `Quick test_fluid_window_limited;
          Alcotest.test_case "load slows" `Quick test_fluid_load_slows;
          Alcotest.test_case "invalid" `Quick test_fluid_invalid;
          Alcotest.test_case "vs packet sim (1MB)" `Quick test_fluid_vs_packet_sim;
          Alcotest.test_case "vs packet sim (20KB)" `Quick test_fluid_vs_packet_sim_small;
        ] );
      ( "trace",
        [
          Alcotest.test_case "round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "parse errors" `Quick test_trace_parse_errors;
          Alcotest.test_case "parse tabs" `Quick test_trace_parse_tabs;
          Alcotest.test_case "save/load" `Quick test_trace_save_load;
          Alcotest.test_case "synthesize sorted" `Quick test_trace_synthesize_sorted;
          Alcotest.test_case "replay runs" `Quick test_trace_replay_runs;
          Alcotest.test_case "replay deterministic" `Quick test_trace_replay_deterministic;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "bucketing" `Quick test_bucketing;
          Alcotest.test_case "record" `Quick test_metrics_record;
        ] );
    ]
