(* Tests for the PIFO-tree hierarchical scheduler and its use as a direct
   policy-to-tree QVISOR backend (the §5 expressivity extension). *)

let mk ?(tenant = 0) ?(rank = 0) ?(size = 1000) () =
  Sched.Packet.make ~tenant ~rank ~flow:tenant ~size ()

let drain_tenants q =
  List.map (fun (p : Sched.Packet.t) -> p.Sched.Packet.tenant) (Sched.Qdisc.drain q)

let drain_ranks q =
  List.map (fun (p : Sched.Packet.t) -> p.Sched.Packet.rank) (Sched.Qdisc.drain q)

(* ------------------------------------------------------------------ *)
(* Single leaf: behaves like a plain PIFO                             *)
(* ------------------------------------------------------------------ *)

let test_single_leaf_is_pifo () =
  let q =
    Sched.Pifo_tree.to_qdisc ~classify:(fun _ -> 0) ~capacity_pkts:16
      (Sched.Pifo_tree.leaf ())
  in
  List.iter (fun rank -> ignore (q.Sched.Qdisc.enqueue (mk ~rank ()))) [ 5; 1; 3 ];
  Alcotest.(check (list int)) "rank order" [ 1; 3; 5 ] (drain_ranks q)

let test_leaf_custom_rank () =
  (* Rank leaves by packet size instead of the rank field. *)
  let q =
    Sched.Pifo_tree.to_qdisc ~classify:(fun _ -> 0) ~capacity_pkts:16
      (Sched.Pifo_tree.leaf ~rank_of:(fun p -> p.Sched.Packet.size) ())
  in
  List.iter (fun size -> ignore (q.Sched.Qdisc.enqueue (mk ~size ()))) [ 900; 100; 500 ];
  let sizes =
    List.map (fun (p : Sched.Packet.t) -> p.Sched.Packet.size) (Sched.Qdisc.drain q)
  in
  Alcotest.(check (list int)) "smallest first" [ 100; 500; 900 ] sizes

(* ------------------------------------------------------------------ *)
(* Strict nodes                                                       *)
(* ------------------------------------------------------------------ *)

let two_leaf_strict () =
  Sched.Pifo_tree.to_qdisc
    ~classify:(fun p -> p.Sched.Packet.tenant)
    ~capacity_pkts:64
    (Sched.Pifo_tree.strict [ Sched.Pifo_tree.leaf (); Sched.Pifo_tree.leaf () ])

let test_strict_priority () =
  let q = two_leaf_strict () in
  (* Low-priority tenant 1 queues first; tenant 0 still drains first. *)
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:0 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:1 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~rank:9 ()));
  Alcotest.(check (list int)) "tenant 0 first" [ 0; 1; 1 ] (drain_tenants q)

let test_strict_intra_leaf_order () =
  let q = two_leaf_strict () in
  List.iter
    (fun rank -> ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~rank ())))
    [ 7; 2; 5 ];
  Alcotest.(check (list int)) "leaf still sorts" [ 2; 5; 7 ] (drain_ranks q)

let test_strict_interleaved_arrivals () =
  let q = two_leaf_strict () in
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:0 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~rank:5 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:1 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~rank:3 ()));
  Alcotest.(check (list int)) "all of tenant 0, then tenant 1" [ 0; 0; 1; 1 ]
    (drain_tenants q)

(* ------------------------------------------------------------------ *)
(* WFQ nodes                                                          *)
(* ------------------------------------------------------------------ *)

let test_wfq_equal_weights_interleave () =
  let q =
    Sched.Pifo_tree.to_qdisc
      ~classify:(fun p -> p.Sched.Packet.tenant)
      ~capacity_pkts:64
      (Sched.Pifo_tree.wfq
         [ (Sched.Pifo_tree.leaf (), 1.0); (Sched.Pifo_tree.leaf (), 1.0) ])
  in
  for i = 0 to 3 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~rank:i ()));
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:i ()))
  done;
  let served = drain_tenants q in
  (* Fair share: in any prefix of length 2k the split is k/k (within 1). *)
  let rec check_prefix acc0 acc1 = function
    | [] -> ()
    | t :: rest ->
      let acc0 = if t = 0 then acc0 + 1 else acc0 in
      let acc1 = if t = 1 then acc1 + 1 else acc1 in
      if abs (acc0 - acc1) > 1 then
        Alcotest.failf "unfair prefix: %d vs %d" acc0 acc1;
      check_prefix acc0 acc1 rest
  in
  check_prefix 0 0 served

let test_wfq_weights_bias_share () =
  let q =
    Sched.Pifo_tree.to_qdisc
      ~classify:(fun p -> p.Sched.Packet.tenant)
      ~capacity_pkts:256
      (Sched.Pifo_tree.wfq
         [ (Sched.Pifo_tree.leaf (), 3.0); (Sched.Pifo_tree.leaf (), 1.0) ])
  in
  for i = 0 to 19 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~rank:i ()));
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:i ()))
  done;
  (* In the first 12 services, the weight-3 tenant gets about 3/4. *)
  let first12 =
    List.filteri (fun i _ -> i < 12) (drain_tenants q)
  in
  let t0 = List.length (List.filter (fun t -> t = 0) first12) in
  Alcotest.(check bool)
    (Printf.sprintf "weight-3 tenant got %d of 12" t0)
    true
    (t0 >= 8)

let test_wfq_work_conserving () =
  let q =
    Sched.Pifo_tree.to_qdisc
      ~classify:(fun p -> p.Sched.Packet.tenant)
      ~capacity_pkts:64
      (Sched.Pifo_tree.wfq
         [ (Sched.Pifo_tree.leaf (), 1.0); (Sched.Pifo_tree.leaf (), 1.0) ])
  in
  (* Only tenant 1 is active: it gets everything. *)
  for i = 0 to 4 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:i ()))
  done;
  Alcotest.(check (list int)) "no idle share" [ 1; 1; 1; 1; 1 ] (drain_tenants q)

(* ------------------------------------------------------------------ *)
(* Nested trees                                                       *)
(* ------------------------------------------------------------------ *)

let test_nested_strict_over_wfq () =
  (* tenant 0 strictly above a fair pair (tenants 1 and 2). *)
  let q =
    Sched.Pifo_tree.to_qdisc
      ~classify:(fun p -> p.Sched.Packet.tenant)
      ~capacity_pkts:64
      (Sched.Pifo_tree.strict
         [
           Sched.Pifo_tree.leaf ();
           Sched.Pifo_tree.wfq
             [ (Sched.Pifo_tree.leaf (), 1.0); (Sched.Pifo_tree.leaf (), 1.0) ];
         ])
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:0 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:2 ~rank:0 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:1 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:2 ~rank:1 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:0 ~rank:99 ()));
  let served = drain_tenants q in
  Alcotest.(check int) "tenant 0 first" 0 (List.hd served);
  (* The wfq pair interleaves behind it. *)
  Alcotest.(check (list int)) "fair pair interleaves" [ 1; 2; 1; 2 ]
    (List.tl served)

let test_num_leaves () =
  let tree =
    Sched.Pifo_tree.strict
      [
        Sched.Pifo_tree.leaf ();
        Sched.Pifo_tree.wfq
          [ (Sched.Pifo_tree.leaf (), 1.0); (Sched.Pifo_tree.leaf (), 2.0) ];
      ]
  in
  Alcotest.(check int) "three leaves" 3 (Sched.Pifo_tree.num_leaves tree)

let test_capacity_and_drops () =
  let q =
    Sched.Pifo_tree.to_qdisc ~classify:(fun _ -> 0) ~capacity_pkts:2
      (Sched.Pifo_tree.leaf ())
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:1 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:2 ()));
  let third = mk ~rank:0 () in
  let dropped = q.Sched.Qdisc.enqueue third in
  Alcotest.(check int) "tail dropped" 1 (List.length dropped);
  Alcotest.(check int) "drop counted" 1 (q.Sched.Qdisc.drops ());
  Alcotest.(check int) "length stable" 2 (q.Sched.Qdisc.length ())

let test_bytes_accounting () =
  let q =
    Sched.Pifo_tree.to_qdisc ~classify:(fun _ -> 0) ~capacity_pkts:8
      (Sched.Pifo_tree.leaf ())
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~size:100 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~size:250 ()));
  Alcotest.(check int) "bytes" 350 (q.Sched.Qdisc.bytes ());
  ignore (q.Sched.Qdisc.dequeue ());
  Alcotest.(check int) "bytes after" 250 (q.Sched.Qdisc.bytes ())

let test_peek_nondestructive () =
  let q =
    Sched.Pifo_tree.to_qdisc ~classify:(fun _ -> 0) ~capacity_pkts:8
      (Sched.Pifo_tree.leaf ())
  in
  ignore (q.Sched.Qdisc.enqueue (mk ~rank:4 ()));
  (match q.Sched.Qdisc.peek () with
  | Some p -> Alcotest.(check int) "peek head" 4 p.Sched.Packet.rank
  | None -> Alcotest.fail "peek empty");
  Alcotest.(check int) "still queued" 1 (q.Sched.Qdisc.length ())

let test_classify_clamped () =
  let q = two_leaf_strict () in
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:99 ()));
  Alcotest.(check int) "out-of-range leaf clamped" 1 (q.Sched.Qdisc.length ())

let prop_tree_conserves_packets =
  QCheck.Test.make ~name:"tree conserves packets under random traffic" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 100) (pair (int_bound 2) (int_bound 500)))
    (fun arrivals ->
      let q =
        Sched.Pifo_tree.to_qdisc
          ~classify:(fun p -> p.Sched.Packet.tenant)
          ~capacity_pkts:1000
          (Sched.Pifo_tree.strict
             [
               Sched.Pifo_tree.leaf ();
               Sched.Pifo_tree.wfq
                 [ (Sched.Pifo_tree.leaf (), 1.0); (Sched.Pifo_tree.leaf (), 2.0) ];
             ])
      in
      List.iter
        (fun (tenant, rank) -> ignore (q.Sched.Qdisc.enqueue (mk ~tenant ~rank ())))
        arrivals;
      List.length (Sched.Qdisc.drain q) = List.length arrivals)

(* ------------------------------------------------------------------ *)
(* Policy-to-tree deployment                                          *)
(* ------------------------------------------------------------------ *)

let tree_tenants () =
  [
    Qvisor.Tenant.make ~rank_lo:0 ~rank_hi:100 ~id:1 ~name:"T1" ();
    Qvisor.Tenant.make ~rank_lo:0 ~rank_hi:100 ~id:2 ~name:"T2" ();
    Qvisor.Tenant.make ~rank_lo:0 ~rank_hi:100 ~id:3 ~name:"T3" ();
  ]

let deploy_tree policy_str =
  match
    Qvisor.Deploy.pifo_tree_of_policy ~tenants:(tree_tenants ())
      ~policy:(Qvisor.Policy.parse_exn policy_str) ~capacity_pkts:64 ()
  with
  | Ok q -> q
  | Error e -> Alcotest.failf "tree deployment failed: %s" (Qvisor.Error.to_string e)

let test_tree_backend_fig3 () =
  (* The Fig. 3 scenario through the tree backend: no pre-processor, raw
     ranks, yet T1 isolated and T2/T3 sharing. *)
  let q = deploy_tree "T1 >> T2 + T3" in
  let offer tenant rank = ignore (q.Sched.Qdisc.enqueue (mk ~tenant ~rank ())) in
  offer 2 1;
  offer 3 3;
  offer 2 3;
  offer 3 5;
  offer 1 9;
  offer 1 7;
  offer 1 8;
  let served = drain_tenants q in
  Alcotest.(check (list int)) "T1 drains first" [ 1; 1; 1 ]
    (List.filteri (fun i _ -> i < 3) served);
  Alcotest.(check (list int)) "T2/T3 interleave" [ 2; 3; 2; 3 ]
    (List.filteri (fun i _ -> i >= 3) served)

let test_tree_backend_prefer_biases () =
  let q = deploy_tree "T1 > T2 >> T3" in
  (* Equal backlogs for T1 and T2: the decayed weights serve T1 about 4x
     as often early on. *)
  for i = 0 to 15 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:i ()));
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:2 ~rank:i ()))
  done;
  let first10 = List.filteri (fun i _ -> i < 10) (drain_tenants q) in
  let t1 = List.length (List.filter (fun t -> t = 1) first10) in
  Alcotest.(check bool) (Printf.sprintf "T1 got %d of 10" t1) true (t1 >= 7)

let test_tree_backend_unknown_tenant_last_leaf () =
  let q = deploy_tree "T1 >> T2 >> T3" in
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:77 ~rank:0 ()));
  ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:50 ()));
  Alcotest.(check (list int)) "stranger served last" [ 1; 77 ] (drain_tenants q)

let test_tree_backend_validation () =
  Alcotest.(check bool) "unknown tenant in policy" true
    (Result.is_error
       (Qvisor.Deploy.pifo_tree_of_policy ~tenants:(tree_tenants ())
          ~policy:(Qvisor.Policy.parse_exn "T1 >> TX >> T2 >> T3")
          ~capacity_pkts:64 ()));
  Alcotest.(check bool) "bad decay" true
    (Result.is_error
       (Qvisor.Deploy.pifo_tree_of_policy ~tenants:(tree_tenants ())
          ~policy:(Qvisor.Policy.parse_exn "T1 >> T2 >> T3")
          ~capacity_pkts:64 ~prefer_decay:1.5 ()))

let test_tree_backend_nested_policy () =
  (* T1 + (T2 >> T3): sharing between T1 and the strict pair. *)
  let q = deploy_tree "T1 + (T2 >> T3)" in
  for i = 0 to 3 do
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:1 ~rank:i ()));
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:3 ~rank:i ()));
    ignore (q.Sched.Qdisc.enqueue (mk ~tenant:2 ~rank:i ()))
  done;
  let served = drain_tenants q in
  (* T1 gets every other slot; inside the subtree T2 fully precedes T3. *)
  let subtree = List.filter (fun t -> t <> 1) served in
  Alcotest.(check (list int)) "T2 strictly before T3 in the subtree"
    [ 2; 2; 2; 2; 3; 3; 3; 3 ] subtree;
  let t1_count_first_half =
    List.length
      (List.filter (fun t -> t = 1) (List.filteri (fun i _ -> i < 6) served))
  in
  Alcotest.(check bool) "T1 present in the head of service" true
    (t1_count_first_half >= 2)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "pifo_tree"
    [
      ( "leaf",
        [
          Alcotest.test_case "single leaf = pifo" `Quick test_single_leaf_is_pifo;
          Alcotest.test_case "custom rank" `Quick test_leaf_custom_rank;
        ] );
      ( "strict",
        [
          Alcotest.test_case "priority" `Quick test_strict_priority;
          Alcotest.test_case "intra-leaf order" `Quick test_strict_intra_leaf_order;
          Alcotest.test_case "interleaved arrivals" `Quick test_strict_interleaved_arrivals;
        ] );
      ( "wfq",
        [
          Alcotest.test_case "equal weights" `Quick test_wfq_equal_weights_interleave;
          Alcotest.test_case "weights bias" `Quick test_wfq_weights_bias_share;
          Alcotest.test_case "work conserving" `Quick test_wfq_work_conserving;
        ] );
      ( "nested",
        [
          Alcotest.test_case "strict over wfq" `Quick test_nested_strict_over_wfq;
          Alcotest.test_case "num leaves" `Quick test_num_leaves;
          Alcotest.test_case "capacity/drops" `Quick test_capacity_and_drops;
          Alcotest.test_case "bytes" `Quick test_bytes_accounting;
          Alcotest.test_case "peek" `Quick test_peek_nondestructive;
          Alcotest.test_case "classify clamped" `Quick test_classify_clamped;
          qc prop_tree_conserves_packets;
        ] );
      ( "policy_backend",
        [
          Alcotest.test_case "fig3 via tree" `Quick test_tree_backend_fig3;
          Alcotest.test_case "prefer biases" `Quick test_tree_backend_prefer_biases;
          Alcotest.test_case "unknown tenant" `Quick test_tree_backend_unknown_tenant_last_leaf;
          Alcotest.test_case "validation" `Quick test_tree_backend_validation;
          Alcotest.test_case "nested policy" `Quick test_tree_backend_nested_policy;
        ] );
    ]
