(* Tests for Engine.Telemetry: registry semantics (interning,
   accumulation, the disabled no-op registry), the snapshot JSON export,
   the sampled NDJSON trace sink (determinism under a fixed seed, line
   round-trips), and an end-to-end check that an instrumented network +
   pre-processor populate the metric names the docs promise. *)

module Tel = Engine.Telemetry

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_counter_interning () =
  let tel = Tel.create () in
  let a = Tel.counter tel "x" in
  let b = Tel.counter tel "x" in
  Tel.Counter.incr a;
  Tel.Counter.add b 4;
  (* Same name, same accumulator: both handles see all five. *)
  Alcotest.(check int) "shared accumulator" 5 (Tel.Counter.value a);
  Alcotest.(check int) "other handle agrees" 5 (Tel.Counter.value b);
  let other = Tel.counter tel "y" in
  Alcotest.(check int) "distinct name is fresh" 0 (Tel.Counter.value other)

let test_gauge_and_histogram () =
  let tel = Tel.create () in
  let g = Tel.gauge tel "g" in
  Tel.Gauge.set g 1.5;
  Tel.Gauge.set g 2.5;
  check_float "gauge keeps last" 2.5 (Tel.Gauge.value g);
  let h = Tel.histogram tel "h" in
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Tel.Histogram.mean h));
  List.iter (Tel.Histogram.observe h) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check int) "count" 3 (Tel.Histogram.count h);
  check_float "mean" 2.0 (Tel.Histogram.mean h)

let test_disabled_registry () =
  let tel = Tel.disabled in
  Alcotest.(check bool) "disabled" false (Tel.is_enabled tel);
  let c = Tel.counter tel "x" in
  Tel.Counter.incr c;
  (* The handle works but is detached: a later lookup sees nothing. *)
  Alcotest.(check int) "fresh handle empty" 0
    (Tel.Counter.value (Tel.counter tel "x"));
  Tel.Gauge.set (Tel.gauge tel "g") 9.;
  Tel.Histogram.observe (Tel.histogram tel "h") 1.;
  Tel.Series.record (Tel.series tel "s") ~time:0.1 1.;
  (* Sinks refuse to attach; events are dropped silently. *)
  let path = Filename.temp_file "qvisor_tel" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Tel.attach_sink tel oc;
      Alcotest.(check bool) "not tracing" false (Tel.tracing tel);
      Tel.event tel ~time:0. ~kind:"enqueue" ();
      Alcotest.(check int) "no events" 0 (Tel.events_seen tel);
      close_out oc);
  match Tel.snapshot tel with
  | Engine.Json.Obj fields ->
    List.iter
      (fun (name, v) ->
        match v with
        | Engine.Json.Obj [] -> ()
        | _ -> Alcotest.failf "disabled snapshot has content under %s" name)
      fields
  | _ -> Alcotest.fail "snapshot not an object"

let test_attach_sink_validates_sample () =
  let tel = Tel.create () in
  let raises f = try f (); false with Invalid_argument _ -> true in
  let path = Filename.temp_file "qvisor_tel" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Alcotest.(check bool) "negative rejected" true
        (raises (fun () -> Tel.attach_sink tel ~sample:(-0.1) oc));
      Alcotest.(check bool) "above one rejected" true
        (raises (fun () -> Tel.attach_sink tel ~sample:1.1 oc));
      close_out oc)

(* ------------------------------------------------------------------ *)
(* Snapshot                                                           *)
(* ------------------------------------------------------------------ *)

let member path json =
  List.fold_left
    (fun acc name ->
      match Option.bind acc (Engine.Json.member name) with
      | Some v -> Some v
      | None -> Alcotest.failf "missing %s" (String.concat "." path))
    (Some json) path
  |> Option.get

let test_snapshot_round_trips () =
  let tel = Tel.create () in
  Tel.Counter.add (Tel.counter tel "c") 7;
  Tel.Gauge.set (Tel.gauge tel "g") 2.5;
  let h = Tel.histogram tel "h" in
  List.iter (Tel.Histogram.observe h) [ 1.0; 2.0; 3.0 ];
  ignore (Tel.histogram tel "h_empty");
  Tel.Series.record (Tel.series tel ~bucket:1.0 "s") ~time:0.5 4.;
  (* The snapshot must serialize (empty-histogram moments are NaN and the
     serializer rejects NaN, so they have to come out as null) and parse
     back to the same values. *)
  let text = Engine.Json.to_string ~pretty:true (Tel.snapshot tel) in
  match Engine.Json.of_string text with
  | Error e -> Alcotest.failf "snapshot does not re-parse: %s" e
  | Ok snap ->
    Alcotest.(check (option int)) "counter" (Some 7)
      (Engine.Json.to_int (member [ "counters"; "c" ] snap));
    Alcotest.(check (option int)) "hist count" (Some 3)
      (Engine.Json.to_int (member [ "histograms"; "h"; "count" ] snap));
    Alcotest.(check bool) "empty hist mean is null" true
      (member [ "histograms"; "h_empty"; "mean" ] snap = Engine.Json.Null);
    Alcotest.(check bool) "series recorded" true
      (member [ "series"; "s"; "total" ] snap = Engine.Json.Number 4.)

(* ------------------------------------------------------------------ *)
(* Trace sink                                                         *)
(* ------------------------------------------------------------------ *)

(* Run [n] events into a fresh registry's sink and return the file's
   lines plus the (seen, written) counters. *)
let run_sink ?sample ?seed n =
  let path = Filename.temp_file "qvisor_tel" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let tel = Tel.create () in
      let oc = open_out path in
      Tel.attach_sink tel ?sample ?seed oc;
      for i = 0 to n - 1 do
        Tel.event tel
          ~time:(float_of_int i *. 1e-3)
          ~kind:"enqueue" ~link:(i mod 4) ~tenant:(i mod 2) ~flow:i ~rank:(i * 3)
          ()
      done;
      let seen = Tel.events_seen tel in
      let written = Tel.events_written tel in
      Tel.detach_sink tel;
      close_out oc;
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      (lines, seen, written))

let test_sink_unsampled_writes_all () =
  let lines, seen, written = run_sink 50 in
  Alcotest.(check int) "seen" 50 seen;
  Alcotest.(check int) "written" 50 written;
  Alcotest.(check int) "lines" 50 (List.length lines)

let test_sink_sampling_deterministic () =
  let lines_a, seen_a, written_a = run_sink ~sample:0.3 ~seed:42 400 in
  let lines_b, _, written_b = run_sink ~sample:0.3 ~seed:42 400 in
  Alcotest.(check int) "seen all" 400 seen_a;
  Alcotest.(check bool) "sampling thins" true (written_a > 0 && written_a < 400);
  Alcotest.(check int) "same seed, same count" written_a written_b;
  Alcotest.(check (list string)) "same seed, same lines" lines_a lines_b;
  let lines_c, _, _ = run_sink ~sample:0.3 ~seed:43 400 in
  Alcotest.(check bool) "different seed differs" true (lines_a <> lines_c)

let test_sink_sample_zero () =
  let lines, seen, written = run_sink ~sample:0. 100 in
  Alcotest.(check int) "all offered" 100 seen;
  Alcotest.(check int) "none written" 0 written;
  Alcotest.(check int) "file empty" 0 (List.length lines)

let test_sink_ndjson_round_trip () =
  let lines, _, _ = run_sink 3 in
  List.iteri
    (fun i line ->
      match Engine.Json.of_string line with
      | Error e -> Alcotest.failf "line %d is not JSON: %s" i e
      | Ok v ->
        Alcotest.(check (option string)) "ev" (Some "enqueue")
          (Option.bind (Engine.Json.member "ev" v) Engine.Json.to_str);
        Alcotest.(check (option int)) "flow" (Some i)
          (Option.bind (Engine.Json.member "flow" v) Engine.Json.to_int);
        Alcotest.(check (option int)) "rank" (Some (i * 3))
          (Option.bind (Engine.Json.member "rank" v) Engine.Json.to_int);
        (* rank_before was not supplied: the field must be absent, not 0. *)
        Alcotest.(check bool) "absent field omitted" true
          (Engine.Json.member "rank_before" v = None))
    lines

(* ------------------------------------------------------------------ *)
(* End-to-end instrumentation                                         *)
(* ------------------------------------------------------------------ *)

let test_instrumented_net_counters () =
  let tel = Tel.create () in
  (* Two hosts, one switch, FIFO ports of capacity 1: a 5-packet burst
     from tenant 3 forces drops (cf. the netsim drop-counting test). *)
  let topo = Netsim.Topology.create ~num_hosts:2 ~num_switches:1 in
  ignore (Netsim.Topology.add_duplex topo ~a:0 ~b:2 ~rate:1e9 ~delay:1e-6);
  ignore (Netsim.Topology.add_duplex topo ~a:1 ~b:2 ~rate:1e9 ~delay:1e-6);
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create () in
  let delivered = ref 0 in
  let net =
    Netsim.Net.create ~sim ~topo ~routing
      ~make_qdisc:(fun _ -> Sched.Fifo_queue.create ~capacity_pkts:1 ())
      ~telemetry:tel
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  for _ = 1 to 5 do
    Netsim.Net.inject net
      (Sched.Packet.make ~src:0 ~dst:1 ~tenant:3 ~flow:1 ~size:1250 ())
  done;
  Engine.Sim.run sim;
  let v name = Tel.Counter.value (Tel.counter tel name) in
  Alcotest.(check int) "drop counter matches qdiscs"
    (Netsim.Net.total_drops net) (v "net.drop");
  Alcotest.(check int) "per-tenant drops" (v "net.drop") (v "net.tenant.3.drop");
  (* Everything drained, so offered = transmitted + dropped. *)
  Alcotest.(check int) "enq = deq + drop" (v "net.enqueue")
    (v "net.dequeue" + v "net.drop");
  Alcotest.(check int) "tenant enq = deq + drop" (v "net.tenant.3.enqueue")
    (v "net.tenant.3.dequeue" + v "net.tenant.3.drop");
  let sojourn = Tel.histogram tel "net.sojourn_seconds" in
  Alcotest.(check int) "one sojourn per dequeue" (v "net.dequeue")
    (Tel.Histogram.count sojourn);
  let depth = Tel.histogram tel "net.queue_depth_pkts" in
  Alcotest.(check int) "one depth sample per enqueue" (v "net.enqueue")
    (Tel.Histogram.count depth);
  Alcotest.(check bool) "some events fired" true (Engine.Sim.events_fired sim > 0)

let test_instrumented_preprocessor () =
  let tel = Tel.create () in
  let tenants =
    [
      Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:1000 ~id:0
        ~name:"T1" ();
      Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:0 ~rank_hi:100 ~id:1
        ~name:"T2" ();
    ]
  in
  let plan =
    Qvisor.Synthesizer.synthesize_exn ~tenants
      ~policy:(Qvisor.Policy.parse_exn "T1 >> T2")
      ()
  in
  let pre = Qvisor.Preprocessor.of_plan ~telemetry:tel plan in
  for r = 0 to 9 do
    Qvisor.Preprocessor.process pre
      (Sched.Packet.make ~tenant:0 ~rank:(r * 100) ~flow:1 ~size:1500 ())
  done;
  (* An unknown tenant takes the fallback action. *)
  Qvisor.Preprocessor.process pre
    (Sched.Packet.make ~tenant:9 ~rank:5 ~flow:1 ~size:1500 ());
  let v name = Tel.Counter.value (Tel.counter tel name) in
  Alcotest.(check int) "table hits" 10 (v "preprocessor.table_hits");
  Alcotest.(check int) "fallback hits" 1 (v "preprocessor.fallback_hits");
  let err = Tel.histogram tel "preprocessor.rank_error" in
  Alcotest.(check int) "one error sample per packet" 11
    (Tel.Histogram.count err);
  Alcotest.(check bool) "error is finite and small" true
    (let m = Tel.Histogram.mean err in
     Float.is_finite m && m >= 0. && m < 100.)

(* ------------------------------------------------------------------ *)
(* Merge                                                              *)
(* ------------------------------------------------------------------ *)

let test_merge_combines_metrics () =
  let a = Tel.create () and b = Tel.create () in
  Tel.Counter.add (Tel.counter a "c") 2;
  Tel.Counter.add (Tel.counter b "c") 3;
  Tel.Counter.add (Tel.counter b "only_b") 1;
  Tel.Gauge.set (Tel.gauge a "g") 1.;
  Tel.Gauge.set (Tel.gauge b "g") 9.;
  List.iter (Tel.Histogram.observe (Tel.histogram a "h")) [ 1.; 2. ];
  List.iter (Tel.Histogram.observe (Tel.histogram b "h")) [ 3.; 4. ];
  Tel.Series.record (Tel.series a "s") ~time:0.1 1.;
  Tel.Series.record (Tel.series b "s") ~time:0.1 2.;
  Tel.merge_into ~into:a b;
  Alcotest.(check int) "counters add" 5 (Tel.Counter.value (Tel.counter a "c"));
  Alcotest.(check int) "src-only counter lands" 1
    (Tel.Counter.value (Tel.counter a "only_b"));
  check_float "gauge: src wins (serial order)" 9.
    (Tel.Gauge.value (Tel.gauge a "g"));
  let h = Tel.histogram a "h" in
  Alcotest.(check int) "histogram count" 4 (Tel.Histogram.count h);
  check_float "histogram mean" 2.5 (Tel.Histogram.mean h)

let test_merge_matches_serial () =
  (* Splitting a workload across two registries and merging in order must
     snapshot identically to one registry fed everything serially. *)
  let feed tel values =
    List.iter (Tel.Histogram.observe (Tel.histogram tel "lat")) values;
    List.iter (fun v -> Tel.Counter.add (Tel.counter tel "n") (int_of_float v)) values
  in
  let serial = Tel.create () in
  feed serial [ 1.; 2. ];
  feed serial [ 3.; 4. ];
  let p1 = Tel.create () and p2 = Tel.create () in
  feed p1 [ 1.; 2. ];
  feed p2 [ 3.; 4. ];
  let merged = Tel.create () in
  Tel.merge_into ~into:merged p1;
  Tel.merge_into ~into:merged p2;
  Alcotest.(check string) "snapshots identical"
    (Engine.Json.to_string (Tel.snapshot serial))
    (Engine.Json.to_string (Tel.snapshot merged))

let test_merge_disabled_noop () =
  let a = Tel.create () in
  Tel.Counter.add (Tel.counter a "c") 2;
  Tel.merge_into ~into:a Tel.disabled;
  Alcotest.(check int) "disabled src ignored" 2
    (Tel.Counter.value (Tel.counter a "c"));
  Tel.merge_into ~into:Tel.disabled a;
  Alcotest.(check int) "disabled into untouched" 0
    (Tel.Counter.value (Tel.counter Tel.disabled "c"))

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "counter interning" `Quick test_counter_interning;
          Alcotest.test_case "gauge+histogram" `Quick test_gauge_and_histogram;
          Alcotest.test_case "disabled registry" `Quick test_disabled_registry;
          Alcotest.test_case "sample validation" `Quick
            test_attach_sink_validates_sample;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "round trips" `Quick test_snapshot_round_trips ] );
      ( "merge",
        [
          Alcotest.test_case "combines metrics" `Quick
            test_merge_combines_metrics;
          Alcotest.test_case "matches serial" `Quick test_merge_matches_serial;
          Alcotest.test_case "disabled no-op" `Quick test_merge_disabled_noop;
        ] );
      ( "trace_sink",
        [
          Alcotest.test_case "unsampled writes all" `Quick
            test_sink_unsampled_writes_all;
          Alcotest.test_case "sampling deterministic" `Quick
            test_sink_sampling_deterministic;
          Alcotest.test_case "sample zero" `Quick test_sink_sample_zero;
          Alcotest.test_case "ndjson round trip" `Quick
            test_sink_ndjson_round_trip;
        ] );
      ( "integration",
        [
          Alcotest.test_case "instrumented net" `Quick
            test_instrumented_net_counters;
          Alcotest.test_case "instrumented preprocessor" `Quick
            test_instrumented_preprocessor;
        ] );
    ]
