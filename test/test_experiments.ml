(* Tests for the experiment harness: the Fig. 4 runner's invariants
   (determinism, scheme coverage), the CSV exporter, and cross-scheme
   sanity properties that mirror the paper's claims at CI scale. *)

let tiny_params =
  {
    Experiments.Fig4.quick with
    Experiments.Fig4.duration = 0.04;
    warmup = 0.01;
    drain = 0.2;
    load = 0.5;
  }

let run scheme = Experiments.Fig4.run_exn tiny_params scheme

(* ------------------------------------------------------------------ *)
(* Harness invariants                                                 *)
(* ------------------------------------------------------------------ *)

let test_deterministic_runs () =
  let a = run (Experiments.Fig4.Qvisor_policy "pfabric >> edf") in
  let b = run (Experiments.Fig4.Qvisor_policy "pfabric >> edf") in
  Alcotest.(check (float 0.)) "identical small FCT"
    a.Experiments.Fig4.small_mean_ms b.Experiments.Fig4.small_mean_ms;
  Alcotest.(check (float 0.)) "identical large FCT"
    a.Experiments.Fig4.large_mean_ms b.Experiments.Fig4.large_mean_ms;
  Alcotest.(check int) "identical drops" a.Experiments.Fig4.drops
    b.Experiments.Fig4.drops

let test_seed_changes_runs () =
  let a = run Experiments.Fig4.Pifo_pfabric_only in
  let b =
    Experiments.Fig4.run_exn
      { tiny_params with Experiments.Fig4.seed = 2 }
      Experiments.Fig4.Pifo_pfabric_only
  in
  Alcotest.(check bool) "different seeds differ" true
    (a.Experiments.Fig4.flows_started <> b.Experiments.Fig4.flows_started
    || a.Experiments.Fig4.small_mean_ms <> b.Experiments.Fig4.small_mean_ms)

let test_all_schemes_run () =
  List.iter
    (fun scheme ->
      let r = run scheme in
      Alcotest.(check bool)
        (Experiments.Fig4.scheme_name scheme ^ " completed flows")
        true
        (r.Experiments.Fig4.flows_completed > 0))
    Experiments.Fig4.paper_schemes

let test_ideal_has_no_cbr () =
  let r = run Experiments.Fig4.Pifo_pfabric_only in
  Alcotest.(check bool) "no CBR stats in the ideal" true
    (Float.is_nan r.Experiments.Fig4.cbr_deadline_fraction);
  let r' = run Experiments.Fig4.Fifo_both in
  Alcotest.(check bool) "CBR present otherwise" true
    (not (Float.is_nan r'.Experiments.Fig4.cbr_deadline_fraction))

let test_qvisor_tracks_ideal () =
  (* The paper's headline at CI scale: pfabric >> edf within 25% of the
     ideal on large flows; edf >> pfabric at least 3x worse than ideal on
     small flows. *)
  let ideal = run Experiments.Fig4.Pifo_pfabric_only in
  let good = run (Experiments.Fig4.Qvisor_policy "pfabric >> edf") in
  let bad = run (Experiments.Fig4.Qvisor_policy "edf >> pfabric") in
  let ratio =
    good.Experiments.Fig4.large_mean_ms /. ideal.Experiments.Fig4.large_mean_ms
  in
  Alcotest.(check bool)
    (Printf.sprintf "pfabric>>edf / ideal = %.3f" ratio)
    true
    (ratio < 1.25);
  Alcotest.(check bool) "edf>>pfabric hurts small flows" true
    (bad.Experiments.Fig4.small_mean_ms
    > 3. *. ideal.Experiments.Fig4.small_mean_ms)

let test_tree_backend_runs () =
  let r =
    Experiments.Fig4.run_exn
      { tiny_params with Experiments.Fig4.tree_backend = true }
      (Experiments.Fig4.Qvisor_policy "pfabric >> edf")
  in
  Alcotest.(check bool) "tree backend completes flows" true
    (r.Experiments.Fig4.flows_completed > 0)

let test_run_reports_bad_policy () =
  match
    Experiments.Fig4.run tiny_params
      (Experiments.Fig4.Qvisor_policy "pfabric >> nosuch")
  with
  | Ok _ -> Alcotest.fail "expected a policy error"
  | Error e ->
    Alcotest.(check bool) "unknown-tenant error" true
      (match e with Qvisor.Error.Unknown_tenant _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Parallel sweep determinism                                         *)
(* ------------------------------------------------------------------ *)

(* wall_seconds is wall-clock (and so is the sim.wall_seconds gauge):
   zero both before comparing runs. *)
let strip r = { r with Experiments.Fig4.wall_seconds = 0. }

let sweep_loads = [ 0.3; 0.6 ]

let sweep_schemes =
  [
    Experiments.Fig4.Pifo_pfabric_only;
    Experiments.Fig4.Qvisor_policy "pfabric >> edf";
  ]

(* Run the sweep with per-job registries and merge them in job order —
   the same shape bin/experiments.exe uses — returning the stripped
   result rows and the merged snapshot. *)
let sweep_with ~jobs =
  let grid =
    Experiments.Fig4.jobs_of_grid tiny_params ~loads:sweep_loads
      ~schemes:sweep_schemes
  in
  let tels =
    List.map
      (fun j -> (j.Experiments.Fig4.index, Engine.Telemetry.create ()))
      grid
  in
  let telemetry_for j = List.assoc j.Experiments.Fig4.index tels in
  match Experiments.Fig4.run_jobs ~jobs ~telemetry_for tiny_params grid with
  | Error e -> Alcotest.failf "sweep failed: %s" (Qvisor.Error.to_string e)
  | Ok results ->
    let merged = Engine.Telemetry.create () in
    List.iter
      (fun (_, tel) -> Engine.Telemetry.merge_into ~into:merged tel)
      tels;
    Engine.Telemetry.Gauge.set
      (Engine.Telemetry.gauge merged "sim.wall_seconds")
      0.;
    ( List.map strip results,
      Engine.Json.to_string (Engine.Telemetry.snapshot merged) )

let test_jobs_invariant_results () =
  let serial, snap1 = sweep_with ~jobs:1 in
  let four, snap4 = sweep_with ~jobs:4 in
  Alcotest.(check (list string)) "identical CSV rows"
    (List.map Experiments.Export.fig4_row serial)
    (List.map Experiments.Export.fig4_row four);
  Alcotest.(check string) "identical merged telemetry" snap1 snap4

let test_jobs_of_grid_order_and_seeds () =
  let grid =
    Experiments.Fig4.jobs_of_grid tiny_params ~loads:sweep_loads
      ~schemes:sweep_schemes
  in
  Alcotest.(check int) "grid size" 4 (List.length grid);
  List.iteri
    (fun i j -> Alcotest.(check int) "indexes are serial order" i
        j.Experiments.Fig4.index)
    grid;
  (* Load-major: the first |schemes| jobs carry the first load. *)
  (match grid with
  | a :: b :: c :: _ ->
    Alcotest.(check (float 0.)) "load-major order" a.Experiments.Fig4.job_load
      b.Experiments.Fig4.job_load;
    Alcotest.(check bool) "next load follows" true
      (c.Experiments.Fig4.job_load > a.Experiments.Fig4.job_load)
  | _ -> Alcotest.fail "unexpected grid");
  let seeds = List.map (fun j -> j.Experiments.Fig4.job_seed) grid in
  let distinct = List.sort_uniq compare seeds in
  Alcotest.(check int) "derived seeds distinct" (List.length seeds)
    (List.length distinct);
  List.iter
    (fun s -> Alcotest.(check bool) "seeds non-negative" true (s >= 0))
    seeds

let test_sweep_error_propagates () =
  let grid =
    Experiments.Fig4.jobs_of_grid tiny_params ~loads:[ 0.3; 0.6 ]
      ~schemes:
        [
          Experiments.Fig4.Pifo_pfabric_only;
          Experiments.Fig4.Qvisor_policy "pfabric >> nosuch";
        ]
  in
  match Experiments.Fig4.run_jobs ~jobs:2 tiny_params grid with
  | Ok _ -> Alcotest.fail "expected the bad grid point to fail the sweep"
  | Error (Qvisor.Error.Unknown_tenant _) -> ()
  | Error e ->
    Alcotest.failf "wrong error: %s" (Qvisor.Error.to_string e)

(* ------------------------------------------------------------------ *)
(* CSV export                                                         *)
(* ------------------------------------------------------------------ *)

let sample_result =
  {
    Experiments.Fig4.scheme = "QVISOR: \"quoted\"";
    load = 0.5;
    small_mean_ms = 0.123456;
    small_p99_ms = 1.0;
    large_mean_ms = nan;
    large_p99_ms = nan;
    overall_mean_ms = 2.5;
    flows_started = 10;
    flows_completed = 9;
    drops = 42;
    cbr_deadline_fraction = 0.75;
    events_fired = 1000;
    wall_seconds = 0.5;
    slo = None;
  }

let test_csv_header_matches_row_arity () =
  let header_cols =
    List.length (String.split_on_char ',' Experiments.Export.fig4_header)
  in
  Alcotest.(check int) "11 columns" 11 header_cols;
  (* The quoted scheme contains no comma, so arity is directly checkable. *)
  let row_cols =
    List.length (String.split_on_char ',' (Experiments.Export.fig4_row sample_result))
  in
  Alcotest.(check int) "row arity" header_cols row_cols

let test_csv_nan_is_empty () =
  let row = Experiments.Export.fig4_row sample_result in
  Alcotest.(check bool) "nan serializes empty" true
    (let parts = String.split_on_char ',' row in
     List.nth parts 4 = "" && List.nth parts 5 = "")

let test_csv_quotes_escaped () =
  let row = Experiments.Export.fig4_row sample_result in
  Alcotest.(check bool) "embedded quotes doubled" true
    (String.length row > 0
    &&
    let prefix = "\"QVISOR: \"\"quoted\"\"\"" in
    String.length row >= String.length prefix
    && String.sub row 0 (String.length prefix) = prefix)

let test_csv_save_and_shape () =
  let path = Filename.temp_file "qvisor_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Experiments.Export.save_fig4 path [ sample_result; sample_result ];
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
      Alcotest.(check string) "header first" Experiments.Export.fig4_header
        (List.hd lines))

(* ------------------------------------------------------------------ *)
(* Config files                                                       *)
(* ------------------------------------------------------------------ *)

let test_config_round_trip () =
  let params =
    {
      Experiments.Fig4.default with
      Experiments.Fig4.leaves = 5;
      load = 0.65;
      levels = Some 64;
      rto = 2e-3;
    }
  in
  match Experiments.Config.parse (Experiments.Config.to_string params) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok parsed ->
    Alcotest.(check int) "leaves" 5 parsed.Experiments.Fig4.leaves;
    Alcotest.(check (float 1e-9)) "load" 0.65 parsed.Experiments.Fig4.load;
    Alcotest.(check (float 1e-9)) "rto" 2e-3 parsed.Experiments.Fig4.rto;
    Alcotest.(check bool) "levels" true
      (parsed.Experiments.Fig4.levels = Some 64)

let test_config_defaults_and_comments () =
  match
    Experiments.Config.parse "# just a comment

load = 0.3   # inline
"
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
    Alcotest.(check (float 1e-9)) "load set" 0.3 p.Experiments.Fig4.load;
    Alcotest.(check int) "others defaulted"
      Experiments.Fig4.default.Experiments.Fig4.leaves
      p.Experiments.Fig4.leaves

let test_config_errors () =
  let is_error text =
    Result.is_error (Experiments.Config.parse text)
  in
  Alcotest.(check bool) "unknown key" true (is_error "loda = 0.3
");
  Alcotest.(check bool) "bad value" true (is_error "leaves = many
");
  Alcotest.(check bool) "no equals" true (is_error "leaves 3
")

let test_config_load_file () =
  let path = Filename.temp_file "qvisor_cfg" ".conf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "seed = 9
duration = 0.01
");
      match Experiments.Config.load path with
      | Ok p ->
        Alcotest.(check int) "seed" 9 p.Experiments.Fig4.seed;
        Alcotest.(check (float 1e-9)) "duration" 0.01 p.Experiments.Fig4.duration
      | Error e -> Alcotest.failf "load failed: %s" e)

let () =
  Alcotest.run "experiments"
    [
      ( "fig4_harness",
        [
          Alcotest.test_case "deterministic" `Slow test_deterministic_runs;
          Alcotest.test_case "seed sensitivity" `Slow test_seed_changes_runs;
          Alcotest.test_case "all schemes run" `Slow test_all_schemes_run;
          Alcotest.test_case "ideal has no CBR" `Slow test_ideal_has_no_cbr;
          Alcotest.test_case "qvisor tracks ideal" `Slow test_qvisor_tracks_ideal;
          Alcotest.test_case "tree backend" `Slow test_tree_backend_runs;
          Alcotest.test_case "bad policy is an Error" `Quick
            test_run_reports_bad_policy;
        ] );
      ( "parallel_sweep",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 identical" `Slow
            test_jobs_invariant_results;
          Alcotest.test_case "grid order and seeds" `Quick
            test_jobs_of_grid_order_and_seeds;
          Alcotest.test_case "error propagates" `Slow
            test_sweep_error_propagates;
        ] );
      ( "config",
        [
          Alcotest.test_case "round trip" `Quick test_config_round_trip;
          Alcotest.test_case "defaults+comments" `Quick test_config_defaults_and_comments;
          Alcotest.test_case "errors" `Quick test_config_errors;
          Alcotest.test_case "load file" `Quick test_config_load_file;
        ] );
      ( "csv",
        [
          Alcotest.test_case "header arity" `Quick test_csv_header_matches_row_arity;
          Alcotest.test_case "nan empty" `Quick test_csv_nan_is_empty;
          Alcotest.test_case "quotes escaped" `Quick test_csv_quotes_escaped;
          Alcotest.test_case "save+shape" `Quick test_csv_save_and_shape;
        ] );
    ]
