(* Tests for the QVISOR core: policy language, rank transformations, the
   synthesizer, the pre-processor, static analysis, deployment backends,
   and the runtime controller.  Includes the paper's Fig. 3 worked example
   end to end. *)

let parse = Qvisor.Policy.parse_exn

let mk_tenant ?(algorithm = "custom") ?(rank_lo = 0) ?(rank_hi = 100)
    ?(weight = 1.0) id name =
  Qvisor.Tenant.make ~algorithm ~rank_lo ~rank_hi ~weight ~id ~name ()

let mk_packet ~tenant ~rank =
  Sched.Packet.make ~tenant ~rank ~flow:0 ~size:1000 ()

(* ------------------------------------------------------------------ *)
(* Policy                                                             *)
(* ------------------------------------------------------------------ *)

let test_policy_single () =
  Alcotest.(check string) "single tenant" "T1"
    (Qvisor.Policy.to_string (parse "T1"))

let test_policy_paper_example () =
  (* The §3.1 example: T1 >> T2 > T3 + T4 >> T5. *)
  let p = parse "{T1 >> T2 > T3 + T4 >> T5}" in
  (match p with
  | Qvisor.Policy.Strict
      [
        Qvisor.Policy.Tenant "T1";
        Qvisor.Policy.Prefer
          [
            Qvisor.Policy.Tenant "T2";
            Qvisor.Policy.Share
              [ Qvisor.Policy.Tenant "T3"; Qvisor.Policy.Tenant "T4" ];
          ];
        Qvisor.Policy.Tenant "T5";
      ] -> ()
  | _ -> Alcotest.failf "unexpected AST: %s" (Qvisor.Policy.to_string p));
  Alcotest.(check string) "round trip" "T1 >> T2 > T3 + T4 >> T5"
    (Qvisor.Policy.to_string p)

let test_policy_precedence () =
  (* + binds tighter than > binds tighter than >>. *)
  match parse "A + B > C >> D" with
  | Qvisor.Policy.Strict
      [
        Qvisor.Policy.Prefer
          [
            Qvisor.Policy.Share [ Qvisor.Policy.Tenant "A"; Qvisor.Policy.Tenant "B" ];
            Qvisor.Policy.Tenant "C";
          ];
        Qvisor.Policy.Tenant "D";
      ] -> ()
  | p -> Alcotest.failf "unexpected AST: %s" (Qvisor.Policy.to_string p)

let test_policy_whitespace_braces () =
  Alcotest.(check string) "no spaces" "T1 >> T2"
    (Qvisor.Policy.to_string (parse "T1>>T2"));
  Alcotest.(check string) "braces dropped" "T1 + T2"
    (Qvisor.Policy.to_string (parse "{ T1 + T2 }"))

let test_policy_errors () =
  let is_error s =
    match Qvisor.Policy.parse s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty" true (is_error "");
  Alcotest.(check bool) "dangling op" true (is_error "T1 >>");
  Alcotest.(check bool) "double op" true (is_error "T1 >> >> T2");
  Alcotest.(check bool) "leading op" true (is_error "+ T1");
  Alcotest.(check bool) "bad char" true (is_error "T1 & T2");
  Alcotest.(check bool) "number alone" true (is_error "1 >> 2")

let test_policy_tenant_names () =
  Alcotest.(check (list string)) "left to right"
    [ "T1"; "T2"; "T3"; "T4"; "T5" ]
    (Qvisor.Policy.tenant_names (parse "T1 >> T2 > T3 + T4 >> T5"))

let test_policy_validate () =
  let p = parse "T1 >> T2" in
  Alcotest.(check bool) "ok" true
    (Result.is_ok (Qvisor.Policy.validate p ~known:[ "T1"; "T2" ]));
  Alcotest.(check bool) "unknown tenant" true
    (Result.is_error (Qvisor.Policy.validate p ~known:[ "T1" ]));
  Alcotest.(check bool) "uncovered tenant" true
    (Result.is_error (Qvisor.Policy.validate p ~known:[ "T1"; "T2"; "T3" ]));
  Alcotest.(check bool) "duplicate in policy" true
    (Result.is_error
       (Qvisor.Policy.validate (parse "T1 >> T1") ~known:[ "T1" ]))

let test_policy_validate_error_order () =
  (* A policy with both defects reports the unknown tenant first — an
     unknown name usually explains the rest. *)
  (match
     Qvisor.Policy.validate (parse "T1 + T1 + TX") ~known:[ "T1" ]
   with
  | Error (Qvisor.Error.Unknown_tenant "TX") -> ()
  | Error e ->
    Alcotest.failf "expected unknown tenant first, got: %s"
      (Qvisor.Error.to_string e)
  | Ok () -> Alcotest.fail "defective policy accepted");
  (match Qvisor.Policy.validate (parse "T1 + T1") ~known:[ "T1" ] with
  | Error (Qvisor.Error.Synthesis msg) ->
    Alcotest.(check bool) "duplicate reported" true
      (String.length msg > 0)
  | Error e ->
    Alcotest.failf "expected duplicate error, got: %s"
      (Qvisor.Error.to_string e)
  | Ok () -> Alcotest.fail "duplicate accepted");
  match Qvisor.Policy.validate (parse "T1") ~known:[ "T1"; "T2" ] with
  | Error (Qvisor.Error.Synthesis _) -> ()
  | Error e ->
    Alcotest.failf "expected coverage error, got: %s"
      (Qvisor.Error.to_string e)
  | Ok () -> Alcotest.fail "uncovered tenant accepted"

let test_policy_validate_scales () =
  (* The set-based validation pass stays fast and correct on wide share
     policies (the old List.mem pass was quadratic). *)
  let names = List.init 500 (fun i -> Printf.sprintf "T%d" i) in
  let policy = parse (String.concat " + " names) in
  Alcotest.(check bool) "wide policy validates" true
    (Result.is_ok (Qvisor.Policy.validate policy ~known:names))

let test_policy_strict_tiers () =
  Alcotest.(check int) "three tiers" 3
    (List.length (Qvisor.Policy.strict_tiers (parse "A >> B >> C")));
  Alcotest.(check int) "non-strict root is one tier" 1
    (List.length (Qvisor.Policy.strict_tiers (parse "A + B")))

let prop_policy_round_trip =
  (* Generate a random policy string from the grammar and check
     parse ∘ to_string is stable. *)
  let gen =
    QCheck.Gen.(
      let name = map (Printf.sprintf "T%d") (int_range 1 9) in
      let op = oneofl [ " >> "; " > "; " + " ] in
      let* n = int_range 0 5 in
      let* first = name in
      let* rest = list_repeat n (pair op name) in
      return (first ^ String.concat "" (List.map (fun (o, x) -> o ^ x) rest)))
  in
  QCheck.Test.make ~name:"policy to_string/parse round-trips" ~count:200
    (QCheck.make gen) (fun s ->
      match Qvisor.Policy.parse s with
      | Error _ -> true (* duplicates like "T1 + T1" may be rejected later *)
      | Ok p -> (
        let printed = Qvisor.Policy.to_string p in
        match Qvisor.Policy.parse printed with
        | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" (Qvisor.Error.to_string e)
        | Ok p' -> p = p'))

(* ------------------------------------------------------------------ *)
(* Transform                                                          *)
(* ------------------------------------------------------------------ *)

let test_transform_shift () =
  let t = Qvisor.Transform.shift 10 in
  Alcotest.(check int) "shift" 15 (Qvisor.Transform.apply t 5);
  Alcotest.(check (pair int int)) "range" (10, 20)
    (Qvisor.Transform.range t (0, 10))

let test_transform_normalize_affine () =
  (* [0,100] onto [0,10]: full-width quantization. *)
  let t = Qvisor.Transform.normalize ~src:(0, 100) ~dst:(0, 10) () in
  Alcotest.(check int) "lo" 0 (Qvisor.Transform.apply t 0);
  Alcotest.(check int) "hi" 10 (Qvisor.Transform.apply t 100);
  Alcotest.(check int) "mid" 5 (Qvisor.Transform.apply t 50)

let test_transform_normalize_clamps () =
  let t = Qvisor.Transform.normalize ~src:(10, 20) ~dst:(100, 110) () in
  Alcotest.(check int) "below clamps" 100 (Qvisor.Transform.apply t 0);
  Alcotest.(check int) "above clamps" 110 (Qvisor.Transform.apply t 999)

let test_transform_quantization_levels () =
  (* Two levels over [0,99] -> {0, 10}. *)
  let t = Qvisor.Transform.normalize ~src:(0, 99) ~dst:(0, 10) ~levels:2 () in
  Alcotest.(check int) "low half" 0 (Qvisor.Transform.apply t 49);
  Alcotest.(check int) "high half" 10 (Qvisor.Transform.apply t 50);
  (* One level collapses everything. *)
  let t1 = Qvisor.Transform.normalize ~src:(0, 99) ~dst:(7, 9) ~levels:1 () in
  Alcotest.(check int) "single level" 7 (Qvisor.Transform.apply t1 88)

let test_transform_compose () =
  let t =
    Qvisor.Transform.compose
      (Qvisor.Transform.normalize ~src:(0, 100) ~dst:(0, 10) ())
      (Qvisor.Transform.shift 5)
  in
  Alcotest.(check int) "normalize then shift" 10 (Qvisor.Transform.apply t 50);
  Alcotest.(check (pair int int)) "range composes" (5, 15)
    (Qvisor.Transform.range t (0, 100))

let test_transform_compose_identity () =
  let n = Qvisor.Transform.normalize ~src:(0, 1) ~dst:(0, 1) () in
  Alcotest.(check bool) "id left" true
    (Qvisor.Transform.compose Qvisor.Transform.Identity n = n);
  Alcotest.(check bool) "id right" true
    (Qvisor.Transform.compose n Qvisor.Transform.Identity = n)

let test_transform_invalid () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty src" true
    (raises (fun () -> ignore (Qvisor.Transform.normalize ~src:(5, 1) ~dst:(0, 1) ())));
  Alcotest.(check bool) "empty dst" true
    (raises (fun () -> ignore (Qvisor.Transform.normalize ~src:(0, 1) ~dst:(5, 1) ())));
  Alcotest.(check bool) "zero levels" true
    (raises (fun () ->
         ignore (Qvisor.Transform.normalize ~src:(0, 1) ~dst:(0, 1) ~levels:0 ())))

let prop_normalize_monotone =
  QCheck.Test.make ~name:"normalize preserves intra-tenant rank order"
    ~count:300
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_range 1 64))
    (fun (a, b, levels) ->
      let t =
        Qvisor.Transform.normalize ~src:(0, 1000) ~dst:(50, 150) ~levels ()
      in
      let fa = Qvisor.Transform.apply t a and fb = Qvisor.Transform.apply t b in
      if a <= b then fa <= fb else fa >= fb)

let prop_normalize_stays_in_dst =
  QCheck.Test.make ~name:"normalize lands inside the destination band"
    ~count:300
    QCheck.(pair (int_range (-500) 1500) (int_range 1 64))
    (fun (r, levels) ->
      let t =
        Qvisor.Transform.normalize ~src:(0, 1000) ~dst:(50, 150) ~levels ()
      in
      let out = Qvisor.Transform.apply t r in
      50 <= out && out <= 150)

let prop_transform_range_sound =
  (* The interval analysis is sound: for any point in the input interval,
     its image lies within [range]. *)
  QCheck.Test.make ~name:"transform range bounds every pointwise image"
    ~count:300
    QCheck.(
      quad (int_range (-100) 1000) (int_range 0 500) (int_bound 400)
        (pair (int_range 1 64) (int_bound 300)))
    (fun (lo, width, probe_offset, (levels, shift)) ->
      let hi = lo + width in
      let t =
        Qvisor.Transform.compose
          (Qvisor.Transform.normalize ~src:(lo, hi) ~dst:(0, 1000) ~levels ())
          (Qvisor.Transform.shift shift)
      in
      let rlo, rhi = Qvisor.Transform.range t (lo, hi) in
      let x = lo + (probe_offset mod (width + 1)) in
      let y = Qvisor.Transform.apply t x in
      rlo <= y && y <= rhi)

(* ------------------------------------------------------------------ *)
(* Synthesizer                                                        *)
(* ------------------------------------------------------------------ *)

let three_tenants () =
  [
    mk_tenant ~algorithm:"pfabric" ~rank_lo:7 ~rank_hi:9 1 "T1";
    mk_tenant ~algorithm:"edf" ~rank_lo:1 ~rank_hi:3 2 "T2";
    mk_tenant ~algorithm:"fq" ~rank_lo:3 ~rank_hi:5 3 "T3";
  ]

let synth ?config tenants policy_str =
  Qvisor.Synthesizer.synthesize_exn ?config ~tenants ~policy:(parse policy_str) ()

let band plan id =
  match Qvisor.Synthesizer.band_of plan ~tenant_id:id with
  | Some b -> (b.Qvisor.Synthesizer.lo, b.Qvisor.Synthesizer.hi)
  | None -> Alcotest.failf "no band for tenant %d" id

let test_synth_strict_disjoint () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let _, t1_hi = band plan 1 in
  let t2_lo, _ = band plan 2 in
  let t3_lo, _ = band plan 3 in
  Alcotest.(check bool) "T1 wholly above T2" true (t1_hi < t2_lo);
  Alcotest.(check bool) "T1 wholly above T3" true (t1_hi < t3_lo)

let test_synth_share_same_start () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let t2_lo, _ = band plan 2 in
  let t3_lo, _ = band plan 3 in
  Alcotest.(check int) "sharing tenants aligned" t2_lo t3_lo

let test_synth_prefer_offset () =
  let plan = synth (three_tenants ()) "T1 > T2 > T3" in
  let t1_lo, t1_hi = band plan 1 in
  let t2_lo, t2_hi = band plan 2 in
  let t3_lo, _ = band plan 3 in
  Alcotest.(check bool) "T1 starts below T2" true (t1_lo < t2_lo);
  Alcotest.(check bool) "T2 starts below T3" true (t2_lo < t3_lo);
  Alcotest.(check bool) "bands overlap (best-effort)" true (t2_lo <= t1_hi);
  Alcotest.(check bool) "ends aligned" true (t1_hi = t2_hi)

let test_synth_weighted_share () =
  let tenants =
    [
      mk_tenant ~weight:4.0 ~rank_lo:0 ~rank_hi:100 1 "Gold";
      mk_tenant ~weight:1.0 ~rank_lo:0 ~rank_hi:100 2 "Bronze";
    ]
  in
  let plan = synth tenants "Gold + Bronze" in
  let _, gold_hi = band plan 1 in
  let _, bronze_hi = band plan 2 in
  Alcotest.(check bool) "heavier weight compressed into better ranks" true
    (gold_hi < bronze_hi)

let test_synth_covers_rank_space () =
  let plan = synth (three_tenants ()) "T1 >> T2 >> T3" in
  let t1_lo, _ = band plan 1 in
  let _, t3_hi = band plan 3 in
  Alcotest.(check int) "starts at rank_lo" plan.Qvisor.Synthesizer.rank_lo t1_lo;
  Alcotest.(check int) "ends at rank_hi" plan.Qvisor.Synthesizer.rank_hi t3_hi

let test_synth_errors () =
  let tenants = three_tenants () in
  let is_err ?config tenants policy =
    Result.is_error
      (Qvisor.Synthesizer.synthesize ?config ~tenants ~policy:(parse policy) ())
  in
  Alcotest.(check bool) "unknown tenant" true (is_err tenants "T1 >> TX >> T2 >> T3");
  Alcotest.(check bool) "missing tenant" true (is_err tenants "T1 >> T2");
  Alcotest.(check bool) "duplicate ids" true
    (is_err (tenants @ [ mk_tenant 1 "T9" ]) "T1 >> T2 >> T3 >> T9");
  let narrow = { Qvisor.Synthesizer.default_config with rank_lo = 0; rank_hi = 1 } in
  Alcotest.(check bool) "narrow rank space" true
    (is_err ~config:narrow tenants "T1 >> T2 >> T3")

let test_synth_fallback_is_worst () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let tr = Qvisor.Synthesizer.transform_of plan ~tenant_id:999 in
  Alcotest.(check int) "stranger parks at the bottom"
    plan.Qvisor.Synthesizer.rank_hi
    (Qvisor.Transform.apply tr 0)

let prop_synth_strict_tiers_never_overlap =
  (* For random 3-tenant strict policies and random rank ranges, tiers are
     always disjoint and ordered. *)
  QCheck.Test.make ~name:"strict tiers are disjoint in policy order" ~count:200
    QCheck.(
      triple (pair (int_bound 1000) (int_bound 1000))
        (pair (int_bound 1000) (int_bound 1000))
        (pair (int_bound 1000) (int_bound 1000)))
    (fun ((a1, a2), (b1, b2), (c1, c2)) ->
      let r lo hi = (min lo hi, max lo hi) in
      let a1, a2 = r a1 a2 and b1, b2 = r b1 b2 and c1, c2 = r c1 c2 in
      let tenants =
        [
          mk_tenant ~rank_lo:a1 ~rank_hi:a2 1 "A";
          mk_tenant ~rank_lo:b1 ~rank_hi:b2 2 "B";
          mk_tenant ~rank_lo:c1 ~rank_hi:c2 3 "C";
        ]
      in
      let plan = synth tenants "A >> B >> C" in
      let _, ha = band plan 1 in
      let lb, hb = band plan 2 in
      let lc, _ = band plan 3 in
      ha < lb && hb < lc)

(* Random policy ASTs over a fixed tenant pool, with nesting. *)
let policy_gen =
  QCheck.Gen.(
    let tenant_pool = [| "T1"; "T2"; "T3"; "T4"; "T5"; "T6" |] in
    (* Build a random tree over a random subset of distinct tenants. *)
    let* n = int_range 1 6 in
    let names = Array.sub tenant_pool 0 n in
    let rec build lo hi =
      (* A policy tree over names[lo..hi-1]. *)
      if hi - lo = 1 then return (Qvisor.Policy.Tenant names.(lo))
      else
        let* split = int_range (lo + 1) (hi - 1) in
        let* left = build lo split in
        let* right = build split hi in
        let* op = int_range 0 2 in
        let combine ctor flat a b =
          ctor (flat a @ flat b)
        in
        return
          (match op with
          | 0 ->
            combine
              (fun l -> Qvisor.Policy.Strict l)
              (function Qvisor.Policy.Strict l -> l | x -> [ x ])
              left right
          | 1 ->
            combine
              (fun l -> Qvisor.Policy.Prefer l)
              (function Qvisor.Policy.Prefer l -> l | x -> [ x ])
              left right
          | _ ->
            combine
              (fun l -> Qvisor.Policy.Share l)
              (function Qvisor.Policy.Share l -> l | x -> [ x ])
              left right)
    in
    build 0 n)

let tenants_for policy =
  List.mapi
    (fun i name -> mk_tenant ~rank_lo:0 ~rank_hi:(100 + (i * 517)) (i + 1) name)
    (Qvisor.Policy.tenant_names policy)

let prop_random_policies_synthesize_feasible =
  QCheck.Test.make ~name:"random nested policies synthesize feasibly" ~count:300
    (QCheck.make policy_gen) (fun policy ->
      let tenants = tenants_for policy in
      match Qvisor.Synthesizer.synthesize ~tenants ~policy () with
      | Error e -> QCheck.Test.fail_reportf "synthesis failed: %s" (Qvisor.Error.to_string e)
      | Ok plan ->
        let report = Qvisor.Analysis.check plan in
        if not report.Qvisor.Analysis.feasible then
          QCheck.Test.fail_reportf "infeasible plan for %s: %s"
            (Qvisor.Policy.to_string policy)
            (String.concat "; " report.Qvisor.Analysis.violations)
        else true)

let prop_random_policies_preprocess_in_band =
  QCheck.Test.make ~name:"preprocessed ranks stay inside the tenant band"
    ~count:200
    QCheck.(pair (make policy_gen) (int_bound 10_000))
    (fun (policy, raw) ->
      let tenants = tenants_for policy in
      let plan = Qvisor.Synthesizer.synthesize_exn ~tenants ~policy () in
      let pre = Qvisor.Preprocessor.of_plan plan in
      List.for_all
        (fun t ->
          let p = mk_packet ~tenant:t.Qvisor.Tenant.id ~rank:raw in
          Qvisor.Preprocessor.process pre p;
          match Qvisor.Synthesizer.band_of plan ~tenant_id:t.Qvisor.Tenant.id with
          | Some b ->
            b.Qvisor.Synthesizer.lo <= p.Sched.Packet.rank
            && p.Sched.Packet.rank <= b.Qvisor.Synthesizer.hi
          | None -> false)
        tenants)

let prop_random_policies_round_trip_serialization =
  QCheck.Test.make ~name:"random policies survive JSON round trip" ~count:200
    (QCheck.make policy_gen) (fun policy ->
      match
        Qvisor.Serialize.policy_of_json (Qvisor.Serialize.policy_to_json policy)
      with
      | Ok p -> p = policy
      | Error e ->
        QCheck.Test.fail_reportf "round trip failed: %s"
          (Qvisor.Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Pre-processor + Fig. 3                                              *)
(* ------------------------------------------------------------------ *)

let test_preprocessor_rewrites_in_band () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let pre = Qvisor.Preprocessor.of_plan plan in
  let p = mk_packet ~tenant:1 ~rank:8 in
  Qvisor.Preprocessor.process pre p;
  let lo, hi = band plan 1 in
  Alcotest.(check bool) "rank inside T1's band" true
    (lo <= p.Sched.Packet.rank && p.Sched.Packet.rank <= hi)

let test_preprocessor_unknown_tenant () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let pre = Qvisor.Preprocessor.of_plan plan in
  let p = mk_packet ~tenant:42 ~rank:0 in
  Qvisor.Preprocessor.process pre p;
  Alcotest.(check int) "parked at worst rank" plan.Qvisor.Synthesizer.rank_hi
    p.Sched.Packet.rank

let test_preprocessor_counters () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let pre = Qvisor.Preprocessor.of_plan plan in
  Qvisor.Preprocessor.process pre (mk_packet ~tenant:1 ~rank:7);
  Qvisor.Preprocessor.process pre (mk_packet ~tenant:1 ~rank:8);
  Qvisor.Preprocessor.process pre (mk_packet ~tenant:2 ~rank:1);
  Alcotest.(check int) "processed" 3 (Qvisor.Preprocessor.processed pre);
  Alcotest.(check (list (pair int int))) "per tenant" [ (1, 2); (2, 1) ]
    (Qvisor.Preprocessor.per_tenant pre)

(* Fig. 3, literally: tenants T1 (pFabric, ranks {7,8,9}), T2 (EDF, ranks
   {1,3}), T3 (FQ, ranks {3,5}); policy T1 >> T2 + T3; scheduler a PIFO.
   Expected: all T1 packets first (in rank order), then T2/T3 interleaved
   fairly in their own rank orders. *)
let test_fig3_end_to_end () =
  Sched.Packet.reset_uid_counter ();
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let pre = Qvisor.Preprocessor.of_plan plan in
  let pifo = Sched.Pifo_queue.create ~capacity_pkts:16 () in
  let offer tenant rank =
    let p = mk_packet ~tenant ~rank in
    Qvisor.Preprocessor.process pre p;
    ignore (pifo.Sched.Qdisc.enqueue p)
  in
  (* Arrival sequence from the figure (right to left): 9,7,8 for T1;
     1,3 for T2; 3,5 for T3 — arrival order within a tenant shouldn't
     matter beyond rank ties. *)
  offer 1 9;
  offer 2 1;
  offer 3 3;
  offer 1 7;
  offer 2 3;
  offer 3 5;
  offer 1 8;
  let served = Sched.Qdisc.drain pifo in
  let tenants_served = List.map (fun p -> p.Sched.Packet.tenant) served in
  (* T1's three packets drain first. *)
  Alcotest.(check (list int)) "T1 isolated on top" [ 1; 1; 1 ]
    (List.filteri (fun i _ -> i < 3) tenants_served);
  (* T2 and T3 interleave afterwards. *)
  Alcotest.(check (list int)) "T2/T3 share" [ 2; 3; 2; 3 ]
    (List.filteri (fun i _ -> i >= 3) tenants_served);
  (* Intra-tenant rank order is preserved for every tenant. *)
  List.iter
    (fun tenant ->
      let ranks =
        List.filter_map
          (fun (p : Sched.Packet.t) ->
            if p.Sched.Packet.tenant = tenant then Some p.Sched.Packet.rank
            else None)
          served
      in
      Alcotest.(check (list int))
        (Printf.sprintf "tenant %d order preserved" tenant)
        (List.sort compare ranks) ranks)
    [ 1; 2; 3 ]

let test_fig3_naive_clash () =
  (* Without QVISOR the same packets clash: raw EDF ranks {1,3} and FQ
     ranks {3,5} beat pFabric's {7,8,9} even though the operator wants T1
     on top. *)
  Sched.Packet.reset_uid_counter ();
  let pifo = Sched.Pifo_queue.create ~capacity_pkts:16 () in
  let offer tenant rank =
    ignore (pifo.Sched.Qdisc.enqueue (mk_packet ~tenant ~rank))
  in
  offer 1 9;
  offer 2 1;
  offer 3 3;
  offer 1 7;
  offer 2 3;
  offer 3 5;
  offer 1 8;
  let served = Sched.Qdisc.drain pifo in
  let first_three =
    List.filteri (fun i _ -> i < 3) (List.map (fun p -> p.Sched.Packet.tenant) served)
  in
  Alcotest.(check bool) "T1 starved at the head" true
    (not (List.mem 1 first_three))

(* ------------------------------------------------------------------ *)
(* Analysis                                                           *)
(* ------------------------------------------------------------------ *)

let test_analysis_strict_isolated () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let report = Qvisor.Analysis.check plan in
  Alcotest.(check bool) "feasible" true report.Qvisor.Analysis.feasible;
  Alcotest.(check (list string)) "no violations" []
    report.Qvisor.Analysis.violations

let test_analysis_relations () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let t1 = List.nth (three_tenants ()) 0 in
  let t2 = List.nth (three_tenants ()) 1 in
  let t3 = List.nth (three_tenants ()) 2 in
  (match Qvisor.Analysis.relation_between plan t1 t2 with
  | Qvisor.Analysis.Isolated -> ()
  | r ->
    Alcotest.failf "expected Isolated, got %s"
      (Format.asprintf "%a" Qvisor.Analysis.pp_report
         { Qvisor.Analysis.pairs = []; feasible = true; violations = [] }
       |> fun _ -> match r with
          | Qvisor.Analysis.Preferred _ -> "Preferred"
          | Qvisor.Analysis.Shared _ -> "Shared"
          | Qvisor.Analysis.Inverted -> "Inverted"
          | Qvisor.Analysis.Isolated -> "Isolated"));
  match Qvisor.Analysis.relation_between plan t2 t3 with
  | Qvisor.Analysis.Shared f -> Alcotest.(check bool) "aligned" true (f > 0.)
  | _ -> Alcotest.fail "expected Shared"

let test_analysis_effective_band () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let t1 = List.nth (three_tenants ()) 0 in
  let lo, hi = Qvisor.Analysis.effective_band plan t1 in
  let blo, bhi = band plan 1 in
  Alcotest.(check bool) "band contains image" true (blo <= lo && hi <= bhi)

let test_analysis_detects_violation () =
  (* Hand-build a broken plan: both tenants mapped to the same band while
     the policy demands strict priority. *)
  let tenants =
    [ mk_tenant ~rank_lo:0 ~rank_hi:9 1 "A"; mk_tenant ~rank_lo:0 ~rank_hi:9 2 "B" ]
  in
  let plan = synth tenants "A >> B" in
  let same_band =
    Qvisor.Transform.normalize ~src:(0, 9) ~dst:(0, 9) ()
  in
  let broken =
    {
      plan with
      Qvisor.Synthesizer.assignments =
        List.map
          (fun a -> { a with Qvisor.Synthesizer.transform = same_band })
          plan.Qvisor.Synthesizer.assignments;
    }
  in
  let report = Qvisor.Analysis.check broken in
  Alcotest.(check bool) "infeasible" false report.Qvisor.Analysis.feasible;
  Alcotest.(check bool) "violation reported" true
    (List.length report.Qvisor.Analysis.violations > 0)

let test_analysis_starvation () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let at_risk =
    List.map (fun t -> t.Qvisor.Tenant.name) (Qvisor.Analysis.starvation_risk plan)
  in
  Alcotest.(check (list string)) "lower tiers at risk" [ "T2"; "T3" ] at_risk

let test_analysis_paper_policy () =
  let tenants =
    [
      mk_tenant 1 "T1"; mk_tenant 2 "T2"; mk_tenant 3 "T3"; mk_tenant 4 "T4";
      mk_tenant 5 "T5";
    ]
  in
  let plan = synth tenants "T1 >> T2 > T3 + T4 >> T5" in
  let report = Qvisor.Analysis.check plan in
  Alcotest.(check bool) "paper's five-tenant policy feasible" true
    report.Qvisor.Analysis.feasible;
  (* T1 must be isolated from everyone; T5 below everyone. *)
  List.iter
    (fun p ->
      if p.Qvisor.Analysis.high.Qvisor.Analysis.label = "T1" then
        match p.Qvisor.Analysis.actual with
        | Qvisor.Analysis.Isolated -> ()
        | _ -> Alcotest.fail "T1 not isolated")
    report.Qvisor.Analysis.pairs

(* ------------------------------------------------------------------ *)
(* Deploy                                                             *)
(* ------------------------------------------------------------------ *)

let bounds_exn ~plan ~num_queues =
  match Qvisor.Deploy.queue_bounds_of_plan ~plan ~num_queues with
  | Ok bounds -> bounds
  | Error e -> Alcotest.failf "queue bounds failed: %s" (Qvisor.Error.to_string e)

let test_deploy_bounds_cover_space () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let bounds = bounds_exn ~plan ~num_queues:4 in
  Alcotest.(check int) "four bounds" 4 (Array.length bounds);
  Alcotest.(check int) "last bound tops the space"
    plan.Qvisor.Synthesizer.rank_hi
    bounds.(Array.length bounds - 1);
  let sorted = Array.copy bounds in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "non-decreasing" sorted bounds

let test_deploy_bounds_respect_tiers () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let _, t1_hi = band plan 1 in
  let bounds = bounds_exn ~plan ~num_queues:4 in
  (* Some queue boundary must sit exactly at T1's tier edge so that no
     queue mixes the tiers. *)
  Alcotest.(check bool) "tier edge on a queue boundary" true
    (Array.exists (fun b -> b = t1_hi) bounds)

let test_deploy_too_few_queues () =
  let plan = synth (three_tenants ()) "T1 >> T2 >> T3" in
  match Qvisor.Deploy.queue_bounds_of_plan ~plan ~num_queues:2 with
  | Ok _ -> Alcotest.fail "fewer queues than tiers must be rejected"
  | Error (Qvisor.Error.Deploy _) -> ()
  | Error e ->
    Alcotest.failf "wrong error kind: %s" (Qvisor.Error.to_string e)

let test_deploy_sp_bank_preserves_strict () =
  Sched.Packet.reset_uid_counter ();
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  let pre = Qvisor.Preprocessor.of_plan plan in
  let q =
    Qvisor.Deploy.instantiate_exn ~plan
      (Qvisor.Deploy.Sp_bank { num_queues = 4; queue_capacity_pkts = 64 })
  in
  (* Low-tier packets first, then a high-tier burst: the high tier must
     still drain first. *)
  let offer tenant rank =
    let p = mk_packet ~tenant ~rank in
    Qvisor.Preprocessor.process pre p;
    ignore (q.Sched.Qdisc.enqueue p)
  in
  offer 2 1;
  offer 3 3;
  offer 2 3;
  offer 1 9;
  offer 1 7;
  let served = List.map (fun p -> p.Sched.Packet.tenant) (Sched.Qdisc.drain q) in
  Alcotest.(check (list int)) "tier 1 drains before tier 2" [ 1; 1; 2; 3; 2 ]
    served

let test_deploy_guarantees () =
  let plan = synth (three_tenants ()) "T1 >> T2 + T3" in
  Alcotest.(check bool) "pifo exact" true
    (Qvisor.Deploy.guarantees ~plan (Qvisor.Deploy.Ideal_pifo { capacity_pkts = 1 })
    = Qvisor.Deploy.Exact);
  (match
     Qvisor.Deploy.guarantees ~plan
       (Qvisor.Deploy.Sp_bank { num_queues = 8; queue_capacity_pkts = 1 })
   with
  | Qvisor.Deploy.Tiered _ -> ()
  | _ -> Alcotest.fail "sp bank should be tiered");
  Alcotest.(check bool) "sp-pifo approximate" true
    (Qvisor.Deploy.guarantees ~plan
       (Qvisor.Deploy.Sp_pifo { num_queues = 8; queue_capacity_pkts = 1 })
    = Qvisor.Deploy.Approximate)

let prop_deploy_bounds_total =
  (* Every transformed rank maps to exactly one queue, and queue order
     follows rank order. *)
  QCheck.Test.make ~name:"queue mapping is total and monotone" ~count:200
    QCheck.(pair (int_range 2 16) (int_bound 65535))
    (fun (num_queues, rank) ->
      let plan =
        Qvisor.Synthesizer.synthesize_exn ~tenants:(three_tenants ())
          ~policy:(parse "T1 >> T2 + T3") ()
      in
      let bounds =
        match Qvisor.Deploy.queue_bounds_of_plan ~plan ~num_queues with
        | Ok bounds -> bounds
        | Error e ->
          QCheck.Test.fail_reportf "queue bounds failed: %s"
            (Qvisor.Error.to_string e)
      in
      let queue = Sched.Sp_bank.queue_of_rank ~bounds rank in
      let queue_next = Sched.Sp_bank.queue_of_rank ~bounds (rank + 1) in
      0 <= queue
      && queue < num_queues
      && queue <= queue_next)

(* ------------------------------------------------------------------ *)
(* Runtime                                                            *)
(* ------------------------------------------------------------------ *)

let runtime_tenants () =
  [
    mk_tenant ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:1000 1 "T1";
    mk_tenant ~algorithm:"edf" ~rank_lo:0 ~rank_hi:100 2 "T2";
  ]

let test_runtime_initial_plan () =
  let rt =
    Qvisor.Runtime.create_exn ~tenants:(runtime_tenants ()) ~policy:(parse "T1 >> T2") ()
  in
  Alcotest.(check int) "no resyntheses yet" 0 (Qvisor.Runtime.resyntheses rt);
  let plan = Qvisor.Runtime.plan rt in
  Alcotest.(check bool) "plan has two assignments" true
    (List.length plan.Qvisor.Synthesizer.assignments = 2)

let test_runtime_process_observes () =
  let rt =
    Qvisor.Runtime.create_exn ~tenants:(runtime_tenants ()) ~policy:(parse "T1 >> T2") ()
  in
  Alcotest.(check (option (pair int int))) "nothing observed" None
    (Qvisor.Runtime.observed_range rt ~tenant_id:1);
  List.iter
    (fun rank -> Qvisor.Runtime.process rt (mk_packet ~tenant:1 ~rank))
    [ 500; 100; 900 ];
  Alcotest.(check (option (pair int int))) "raw range observed" (Some (100, 900))
    (Qvisor.Runtime.observed_range rt ~tenant_id:1)

let test_runtime_tenant_churn () =
  let rt =
    Qvisor.Runtime.create_exn ~tenants:(runtime_tenants ()) ~policy:(parse "T1 >> T2") ()
  in
  (* Fig. 2's t1 moment: a background tenant T3 joins at the lowest
     priority. *)
  let t3 = mk_tenant ~algorithm:"fq" ~rank_lo:0 ~rank_hi:50 3 "T3" in
  (match Qvisor.Runtime.add_tenant rt t3 ~policy:(parse "T1 >> T2 >> T3") () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "add failed: %s" (Qvisor.Error.to_string e));
  Alcotest.(check int) "one resynthesis" 1 (Qvisor.Runtime.resyntheses rt);
  let plan = Qvisor.Runtime.plan rt in
  Alcotest.(check int) "three tenants planned" 3
    (List.length plan.Qvisor.Synthesizer.assignments);
  (* And T1/T2 leave (Fig. 2 beyond t1). *)
  (match Qvisor.Runtime.remove_tenant rt ~tenant_id:1 ~policy:(parse "T2 >> T3") () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "remove failed: %s" (Qvisor.Error.to_string e));
  Alcotest.(check int) "two resyntheses" 2 (Qvisor.Runtime.resyntheses rt)

let test_runtime_add_duplicate_rejected () =
  let rt =
    Qvisor.Runtime.create_exn ~tenants:(runtime_tenants ()) ~policy:(parse "T1 >> T2") ()
  in
  let dup = mk_tenant 1 "T9" in
  Alcotest.(check bool) "duplicate id rejected" true
    (Result.is_error (Qvisor.Runtime.add_tenant rt dup ()))

let test_runtime_refresh_tightens () =
  let rt =
    Qvisor.Runtime.create_exn ~tenants:(runtime_tenants ()) ~policy:(parse "T1 >> T2") ()
  in
  (* T1 declared [0,1000] but only ever uses [0,10]: refresh should expand
     its effective resolution (its transformed band's source narrows). *)
  for rank = 0 to 10 do
    Qvisor.Runtime.process rt (mk_packet ~tenant:1 ~rank)
  done;
  Qvisor.Runtime.process rt (mk_packet ~tenant:2 ~rank:50);
  (match Qvisor.Runtime.refresh rt with
  | Ok () -> ()
  | Error e -> Alcotest.failf "refresh failed: %s" (Qvisor.Error.to_string e));
  let plan = Qvisor.Runtime.plan rt in
  let a =
    List.find
      (fun a -> a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.id = 1)
      plan.Qvisor.Synthesizer.assignments
  in
  Alcotest.(check int) "observed lo adopted" 0
    a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.rank_lo;
  Alcotest.(check int) "observed hi adopted" 10
    a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.rank_hi;
  (* Observation window reset. *)
  Alcotest.(check (option (pair int int))) "window reset" None
    (Qvisor.Runtime.observed_range rt ~tenant_id:1)

let test_runtime_swap_preserves_isolation () =
  (* After a swap, packets processed through the runtime still respect the
     new plan's strict tiers. *)
  let rt =
    Qvisor.Runtime.create_exn ~tenants:(runtime_tenants ()) ~policy:(parse "T1 >> T2") ()
  in
  let t3 = mk_tenant ~rank_lo:0 ~rank_hi:50 3 "T3" in
  (match Qvisor.Runtime.add_tenant rt t3 ~policy:(parse "T3 >> T1 >> T2") () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "add failed: %s" (Qvisor.Error.to_string e));
  let p3 = mk_packet ~tenant:3 ~rank:50 in
  let p1 = mk_packet ~tenant:1 ~rank:0 in
  Qvisor.Runtime.process rt p3;
  Qvisor.Runtime.process rt p1;
  Alcotest.(check bool) "T3's worst beats T1's best after swap" true
    (p3.Sched.Packet.rank < p1.Sched.Packet.rank)

(* ------------------------------------------------------------------ *)
(* Hypervisor facade                                                  *)
(* ------------------------------------------------------------------ *)

let hypervisor () =
  Qvisor.Hypervisor.create_exn
    ~tenants:
      [
        mk_tenant ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:1000 1 "T1";
        mk_tenant ~algorithm:"edf" ~rank_lo:0 ~rank_hi:100 2 "T2";
      ]
    ~policy:"T1 >> T2" ()

let test_hv_create_and_process () =
  let hv = hypervisor () in
  let p1 = mk_packet ~tenant:1 ~rank:500 in
  let p2 = mk_packet ~tenant:2 ~rank:0 in
  Qvisor.Hypervisor.process hv p1;
  Qvisor.Hypervisor.process hv p2;
  Alcotest.(check int) "processed" 2 (Qvisor.Hypervisor.packets_processed hv);
  Alcotest.(check bool) "T1 beats T2 after transformation" true
    (p1.Sched.Packet.rank < p2.Sched.Packet.rank)

let test_hv_bad_policy () =
  Alcotest.(check bool) "parse error surfaces" true
    (Result.is_error
       (Qvisor.Hypervisor.create
          ~tenants:[ mk_tenant 1 "T1" ]
          ~policy:"T1 >>" ()))

let test_hv_analysis_and_scheduler () =
  let hv = hypervisor () in
  let report = Qvisor.Hypervisor.analyze hv in
  Alcotest.(check bool) "feasible" true report.Qvisor.Analysis.feasible;
  let q =
    Qvisor.Hypervisor.make_scheduler_exn hv
      (Qvisor.Deploy.Ideal_pifo { capacity_pkts = 16 })
  in
  let p = mk_packet ~tenant:1 ~rank:0 in
  Qvisor.Hypervisor.process hv p;
  ignore (q.Sched.Qdisc.enqueue p);
  Alcotest.(check int) "scheduler usable" 1 (q.Sched.Qdisc.length ())

let test_hv_guard_integration () =
  let hv =
    Qvisor.Hypervisor.create_exn
      ~guard:{ Qvisor.Guard.default_config with window = 10 }
      ~tenants:
        [
          mk_tenant ~rank_lo:0 ~rank_hi:100 1 "honest";
          mk_tenant ~rank_lo:0 ~rank_hi:100 2 "attacker";
        ]
      ~policy:"honest + attacker" ()
  in
  (* Attacker floods best ranks for three windows. *)
  for _ = 1 to 30 do
    Qvisor.Hypervisor.process hv (mk_packet ~tenant:2 ~rank:0)
  done;
  (match Qvisor.Hypervisor.verdict hv ~tenant_id:2 with
  | Qvisor.Guard.Malicious _ -> ()
  | _ -> Alcotest.fail "attacker not flagged");
  (* Next attack packet is parked behind honest traffic. *)
  let attack = mk_packet ~tenant:2 ~rank:0 in
  let honest = mk_packet ~tenant:1 ~rank:99 in
  Qvisor.Hypervisor.process hv attack;
  Qvisor.Hypervisor.process hv honest;
  Alcotest.(check bool) "honest worst beats parked attacker" true
    (honest.Sched.Packet.rank <= attack.Sched.Packet.rank)

let test_hv_unguarded () =
  let hv =
    Qvisor.Hypervisor.create_exn ~guarded:false
      ~tenants:[ mk_tenant ~rank_lo:0 ~rank_hi:100 1 "T1" ]
      ~policy:"T1" ()
  in
  for _ = 1 to 100 do
    Qvisor.Hypervisor.process hv (mk_packet ~tenant:1 ~rank:0)
  done;
  Alcotest.(check bool) "no guard, always conforming" true
    (Qvisor.Hypervisor.verdict hv ~tenant_id:1 = Qvisor.Guard.Conforming)

let test_hv_churn () =
  let hv = hypervisor () in
  let t3 = mk_tenant ~rank_lo:0 ~rank_hi:50 3 "T3" in
  (match Qvisor.Hypervisor.add_tenant hv t3 ~policy:"T1 >> T2 >> T3" () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "add: %s" (Qvisor.Error.to_string e));
  Alcotest.(check int) "three tenants planned" 3
    (List.length (Qvisor.Hypervisor.plan hv).Qvisor.Synthesizer.assignments);
  (match Qvisor.Hypervisor.remove_tenant hv ~tenant_id:3 ~policy:"T1 >> T2" () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "remove: %s" (Qvisor.Error.to_string e));
  Alcotest.(check bool) "bad policy on churn rejected" true
    (Result.is_error (Qvisor.Hypervisor.add_tenant hv t3 ~policy:"T1 >>" ()))

let test_hv_delay_bounds_and_pipeline () =
  let hv = hypervisor () in
  let bounds =
    Qvisor.Hypervisor.delay_bounds hv
      ~envelopes:[ (1, Qvisor.Latency.envelope ~sigma:10_000. ~rho:1e6) ]
      ~link_rate:1e9
  in
  Alcotest.(check int) "bound per tenant" 2 (List.length bounds);
  (match Qvisor.Hypervisor.compile_pipeline hv () with
  | Ok program ->
    Alcotest.(check int) "pipeline entries" 2
      (List.length program.Qvisor.Pipeline.entries)
  | Error e -> Alcotest.failf "pipeline: %s" e)

let test_hv_refresh () =
  let hv = hypervisor () in
  for rank = 0 to 9 do
    Qvisor.Hypervisor.process hv (mk_packet ~tenant:1 ~rank)
  done;
  Qvisor.Hypervisor.process hv (mk_packet ~tenant:2 ~rank:50);
  (match Qvisor.Hypervisor.refresh hv with
  | Ok () -> ()
  | Error e -> Alcotest.failf "refresh: %s" (Qvisor.Error.to_string e));
  let a =
    List.find
      (fun a -> a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.id = 1)
      (Qvisor.Hypervisor.plan hv).Qvisor.Synthesizer.assignments
  in
  Alcotest.(check int) "observed range adopted" 9
    a.Qvisor.Synthesizer.tenant.Qvisor.Tenant.rank_hi

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let test_serialize_tenant_round_trip () =
  let t = mk_tenant ~algorithm:"pfabric" ~rank_lo:3 ~rank_hi:99 ~weight:2.5 7 "T7" in
  match Qvisor.Serialize.tenant_of_json (Qvisor.Serialize.tenant_to_json t) with
  | Ok t' ->
    Alcotest.(check string) "name" t.Qvisor.Tenant.name t'.Qvisor.Tenant.name;
    Alcotest.(check int) "id" t.Qvisor.Tenant.id t'.Qvisor.Tenant.id;
    Alcotest.(check int) "lo" t.Qvisor.Tenant.rank_lo t'.Qvisor.Tenant.rank_lo;
    Alcotest.(check int) "hi" t.Qvisor.Tenant.rank_hi t'.Qvisor.Tenant.rank_hi;
    Alcotest.(check (float 1e-9)) "weight" t.Qvisor.Tenant.weight t'.Qvisor.Tenant.weight
  | Error e -> Alcotest.failf "round trip failed: %s" (Qvisor.Error.to_string e)

let test_serialize_policy_round_trip () =
  let p = parse "T1 >> T2 > (T3 + T4) >> T5" in
  match Qvisor.Serialize.policy_of_json (Qvisor.Serialize.policy_to_json p) with
  | Ok p' -> Alcotest.(check bool) "same policy" true (p = p')
  | Error e -> Alcotest.failf "round trip failed: %s" (Qvisor.Error.to_string e)

let test_serialize_spec_round_trip () =
  let tenants = three_tenants () in
  let policy = parse "T1 >> T2 + T3" in
  let json = Qvisor.Serialize.spec_to_json ~tenants ~policy in
  (* Through text, as a file would. *)
  let text = Engine.Json.to_string ~pretty:true json in
  let reparsed =
    match Engine.Json.of_string text with
    | Ok v -> v
    | Error e -> Alcotest.failf "json parse: %s" e
  in
  match Qvisor.Serialize.spec_of_json reparsed with
  | Ok (tenants', policy') ->
    Alcotest.(check int) "tenant count" 3 (List.length tenants');
    Alcotest.(check bool) "policy" true (policy = policy');
    (* The round-tripped spec synthesizes to the same plan. *)
    let plan = Qvisor.Synthesizer.synthesize_exn ~tenants ~policy () in
    let plan' = Qvisor.Synthesizer.synthesize_exn ~tenants:tenants' ~policy:policy' () in
    List.iter2
      (fun a b ->
        Alcotest.(check bool) "same band" true
          (a.Qvisor.Synthesizer.band = b.Qvisor.Synthesizer.band))
      plan.Qvisor.Synthesizer.assignments plan'.Qvisor.Synthesizer.assignments
  | Error e ->
    Alcotest.failf "spec round trip failed: %s" (Qvisor.Error.to_string e)

let test_serialize_spec_errors () =
  let bad json_text =
    match Engine.Json.of_string json_text with
    | Error _ -> true
    | Ok v -> Result.is_error (Qvisor.Serialize.spec_of_json v)
  in
  Alcotest.(check bool) "missing tenants" true (bad "{\"policy\": \"T1\"}");
  Alcotest.(check bool) "bad tenant shape" true
    (bad "{\"tenants\": [{\"id\": 1}], \"policy\": \"T1\"}");
  Alcotest.(check bool) "bad policy string" true
    (bad
       "{\"tenants\": [{\"id\":1,\"name\":\"T1\",\"algorithm\":\"x\",\"rank_lo\":0,\"rank_hi\":1,\"weight\":1}], \"policy\": \"T1 >>\"}")

let test_serialize_plan_shape () =
  let plan =
    Qvisor.Synthesizer.synthesize_exn ~tenants:(three_tenants ())
      ~policy:(parse "T1 >> T2 + T3") ()
  in
  let json = Qvisor.Serialize.plan_to_json plan in
  Alcotest.(check (option string)) "policy field" (Some "T1 >> T2 + T3")
    (Option.bind (Engine.Json.member "policy" json) Engine.Json.to_str);
  match Option.bind (Engine.Json.member "assignments" json) Engine.Json.to_list with
  | Some l -> Alcotest.(check int) "three assignments" 3 (List.length l)
  | None -> Alcotest.fail "no assignments list"

let test_serialize_report_shape () =
  let plan =
    Qvisor.Synthesizer.synthesize_exn ~tenants:(three_tenants ())
      ~policy:(parse "T1 >> T2 + T3") ()
  in
  let json = Qvisor.Serialize.report_to_json (Qvisor.Analysis.check plan) in
  Alcotest.(check (option bool)) "feasible" (Some true)
    (Option.bind (Engine.Json.member "feasible" json) Engine.Json.to_bool);
  match Option.bind (Engine.Json.member "pairs" json) Engine.Json.to_list with
  | Some (first :: _) ->
    Alcotest.(check bool) "pair has required field" true
      (Engine.Json.member "required" first <> None)
  | Some [] | None -> Alcotest.fail "no pairs"

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "qvisor"
    [
      ( "policy",
        [
          Alcotest.test_case "single" `Quick test_policy_single;
          Alcotest.test_case "paper example" `Quick test_policy_paper_example;
          Alcotest.test_case "precedence" `Quick test_policy_precedence;
          Alcotest.test_case "whitespace/braces" `Quick test_policy_whitespace_braces;
          Alcotest.test_case "errors" `Quick test_policy_errors;
          Alcotest.test_case "tenant names" `Quick test_policy_tenant_names;
          Alcotest.test_case "validate" `Quick test_policy_validate;
          Alcotest.test_case "validate error order" `Quick
            test_policy_validate_error_order;
          Alcotest.test_case "validate scales" `Quick
            test_policy_validate_scales;
          Alcotest.test_case "strict tiers" `Quick test_policy_strict_tiers;
          qc prop_policy_round_trip;
        ] );
      ( "transform",
        [
          Alcotest.test_case "shift" `Quick test_transform_shift;
          Alcotest.test_case "normalize affine" `Quick test_transform_normalize_affine;
          Alcotest.test_case "normalize clamps" `Quick test_transform_normalize_clamps;
          Alcotest.test_case "quantization levels" `Quick test_transform_quantization_levels;
          Alcotest.test_case "compose" `Quick test_transform_compose;
          Alcotest.test_case "compose identity" `Quick test_transform_compose_identity;
          Alcotest.test_case "invalid" `Quick test_transform_invalid;
          qc prop_normalize_monotone;
          qc prop_normalize_stays_in_dst;
          qc prop_transform_range_sound;
        ] );
      ( "synthesizer",
        [
          Alcotest.test_case "strict disjoint" `Quick test_synth_strict_disjoint;
          Alcotest.test_case "share aligned" `Quick test_synth_share_same_start;
          Alcotest.test_case "prefer offset" `Quick test_synth_prefer_offset;
          Alcotest.test_case "weighted share" `Quick test_synth_weighted_share;
          Alcotest.test_case "covers rank space" `Quick test_synth_covers_rank_space;
          Alcotest.test_case "errors" `Quick test_synth_errors;
          Alcotest.test_case "fallback is worst" `Quick test_synth_fallback_is_worst;
          qc prop_synth_strict_tiers_never_overlap;
          qc prop_random_policies_synthesize_feasible;
          qc prop_random_policies_preprocess_in_band;
          qc prop_random_policies_round_trip_serialization;
        ] );
      ( "preprocessor",
        [
          Alcotest.test_case "rewrites in band" `Quick test_preprocessor_rewrites_in_band;
          Alcotest.test_case "unknown tenant" `Quick test_preprocessor_unknown_tenant;
          Alcotest.test_case "counters" `Quick test_preprocessor_counters;
          Alcotest.test_case "Fig. 3 end to end" `Quick test_fig3_end_to_end;
          Alcotest.test_case "Fig. 3 naive clash" `Quick test_fig3_naive_clash;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "strict isolated" `Quick test_analysis_strict_isolated;
          Alcotest.test_case "relations" `Quick test_analysis_relations;
          Alcotest.test_case "effective band" `Quick test_analysis_effective_band;
          Alcotest.test_case "detects violation" `Quick test_analysis_detects_violation;
          Alcotest.test_case "starvation" `Quick test_analysis_starvation;
          Alcotest.test_case "paper policy" `Quick test_analysis_paper_policy;
        ] );
      ( "deploy",
        [
          Alcotest.test_case "bounds cover space" `Quick test_deploy_bounds_cover_space;
          Alcotest.test_case "bounds respect tiers" `Quick test_deploy_bounds_respect_tiers;
          Alcotest.test_case "too few queues" `Quick test_deploy_too_few_queues;
          Alcotest.test_case "sp bank strict" `Quick test_deploy_sp_bank_preserves_strict;
          Alcotest.test_case "guarantees" `Quick test_deploy_guarantees;
          qc prop_deploy_bounds_total;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "tenant round trip" `Quick test_serialize_tenant_round_trip;
          Alcotest.test_case "policy round trip" `Quick test_serialize_policy_round_trip;
          Alcotest.test_case "spec round trip" `Quick test_serialize_spec_round_trip;
          Alcotest.test_case "spec errors" `Quick test_serialize_spec_errors;
          Alcotest.test_case "plan shape" `Quick test_serialize_plan_shape;
          Alcotest.test_case "report shape" `Quick test_serialize_report_shape;
        ] );
      ( "hypervisor",
        [
          Alcotest.test_case "create+process" `Quick test_hv_create_and_process;
          Alcotest.test_case "bad policy" `Quick test_hv_bad_policy;
          Alcotest.test_case "analysis+scheduler" `Quick test_hv_analysis_and_scheduler;
          Alcotest.test_case "guard integration" `Quick test_hv_guard_integration;
          Alcotest.test_case "unguarded" `Quick test_hv_unguarded;
          Alcotest.test_case "churn" `Quick test_hv_churn;
          Alcotest.test_case "refresh" `Quick test_hv_refresh;
          Alcotest.test_case "delay bounds + pipeline" `Quick test_hv_delay_bounds_and_pipeline;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "initial plan" `Quick test_runtime_initial_plan;
          Alcotest.test_case "observes" `Quick test_runtime_process_observes;
          Alcotest.test_case "tenant churn" `Quick test_runtime_tenant_churn;
          Alcotest.test_case "duplicate rejected" `Quick test_runtime_add_duplicate_rejected;
          Alcotest.test_case "refresh tightens" `Quick test_runtime_refresh_tightens;
          Alcotest.test_case "swap preserves isolation" `Quick test_runtime_swap_preserves_isolation;
        ] );
    ]
