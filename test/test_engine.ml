(* Tests for the discrete-event engine: Rng, Vec, Event_queue, Sim, Stats,
   P2_quantile. *)

let check_float = Alcotest.(check (float 1e-9))

let check_close msg ~tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Engine.Rng.create ~seed:42 in
  let b = Engine.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_float "same stream" (Engine.Rng.float a) (Engine.Rng.float b)
  done

let test_rng_seed_sensitivity () =
  let a = Engine.Rng.create ~seed:1 in
  let b = Engine.Rng.create ~seed:2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Engine.Rng.float a <> Engine.Rng.float b then distinct := true
  done;
  Alcotest.(check bool) "streams differ" true !distinct

let test_rng_split_independent () =
  let parent = Engine.Rng.create ~seed:7 in
  let child = Engine.Rng.split parent in
  let child_draws = Array.init 10 (fun _ -> Engine.Rng.float child) in
  (* A parent re-split from the same point yields the same child stream. *)
  let parent' = Engine.Rng.create ~seed:7 in
  let child' = Engine.Rng.split parent' in
  Array.iter
    (fun expected -> check_float "split deterministic" expected (Engine.Rng.float child'))
    child_draws

let test_rng_copy () =
  let a = Engine.Rng.create ~seed:3 in
  ignore (Engine.Rng.float a);
  let b = Engine.Rng.copy a in
  check_float "copy continues identically" (Engine.Rng.float a) (Engine.Rng.float b)

let test_rng_float_bounds () =
  let r = Engine.Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let x = Engine.Rng.float r in
    if x < 0. || x >= 1. then Alcotest.failf "float out of [0,1): %g" x
  done

let test_rng_float_mean () =
  let r = Engine.Rng.create ~seed:5 in
  let s = Engine.Stats.create () in
  for _ = 1 to 50_000 do
    Engine.Stats.add s (Engine.Rng.float r)
  done;
  check_close "uniform mean ~ 0.5" ~tolerance:0.01 0.5 (Engine.Stats.mean s)

let test_rng_int_range () =
  let r = Engine.Rng.create ~seed:13 in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    let x = Engine.Rng.int_range r ~lo:10 ~hi:14 in
    if x < 10 || x > 14 then Alcotest.failf "int_range out of range: %d" x;
    seen.(x - 10) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_int_range_singleton () =
  let r = Engine.Rng.create ~seed:1 in
  Alcotest.(check int) "singleton" 9 (Engine.Rng.int_range r ~lo:9 ~hi:9)

let test_rng_int_range_invalid () =
  let r = Engine.Rng.create ~seed:1 in
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.int_range: lo > hi")
    (fun () -> ignore (Engine.Rng.int_range r ~lo:2 ~hi:1))

let test_rng_exponential_mean () =
  let r = Engine.Rng.create ~seed:17 in
  let s = Engine.Stats.create () in
  for _ = 1 to 100_000 do
    Engine.Stats.add s (Engine.Rng.exponential r ~mean:3.0)
  done;
  check_close "exponential mean" ~tolerance:0.1 3.0 (Engine.Stats.mean s)

let test_rng_exponential_positive () =
  let r = Engine.Rng.create ~seed:19 in
  for _ = 1 to 10_000 do
    if Engine.Rng.exponential r ~mean:1.0 < 0. then
      Alcotest.fail "negative exponential draw"
  done

let test_rng_pareto_minimum () =
  let r = Engine.Rng.create ~seed:23 in
  for _ = 1 to 10_000 do
    if Engine.Rng.pareto r ~shape:1.5 ~scale:2.0 < 2.0 then
      Alcotest.fail "pareto draw below scale"
  done

let test_rng_pair_distinct () =
  let r = Engine.Rng.create ~seed:29 in
  for _ = 1 to 10_000 do
    let a, b = Engine.Rng.pair_distinct r ~n:5 in
    if a = b then Alcotest.fail "pair not distinct";
    if a < 0 || a >= 5 || b < 0 || b >= 5 then Alcotest.fail "pair out of range"
  done

let test_rng_shuffle_permutation () =
  let r = Engine.Rng.create ~seed:31 in
  let a = Array.init 100 Fun.id in
  Engine.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_empirical_point_mass () =
  let d = Engine.Rng.Empirical.of_points [ (5.0, 1.0) ] in
  let r = Engine.Rng.create ~seed:37 in
  for _ = 1 to 100 do
    check_float "always 5" 5.0 (Engine.Rng.Empirical.sample d r)
  done;
  check_float "mean" 5.0 (Engine.Rng.Empirical.mean d)

let test_empirical_mean_uniform () =
  (* CDF linear from (0,0) to (10,1) is Uniform(0,10): mean 5. *)
  let d = Engine.Rng.Empirical.of_points [ (0.0, 0.0); (10.0, 1.0) ] in
  check_float "analytic mean" 5.0 (Engine.Rng.Empirical.mean d);
  let r = Engine.Rng.create ~seed:41 in
  let s = Engine.Stats.create () in
  for _ = 1 to 50_000 do
    Engine.Stats.add s (Engine.Rng.Empirical.sample d r)
  done;
  check_close "sample mean" ~tolerance:0.1 5.0 (Engine.Stats.mean s)

let test_empirical_sample_range () =
  let d =
    Engine.Rng.Empirical.of_points [ (1.0, 0.3); (10.0, 0.7); (100.0, 1.0) ]
  in
  let r = Engine.Rng.create ~seed:43 in
  for _ = 1 to 10_000 do
    let x = Engine.Rng.Empirical.sample d r in
    if x < 1.0 || x > 100.0 then Alcotest.failf "sample out of support: %g" x
  done

let test_empirical_invalid () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty" true
    (raises (fun () -> ignore (Engine.Rng.Empirical.of_points [])));
  Alcotest.(check bool) "non-increasing values" true
    (raises (fun () ->
         ignore (Engine.Rng.Empirical.of_points [ (2.0, 0.5); (1.0, 1.0) ])));
  Alcotest.(check bool) "cdf not ending at 1" true
    (raises (fun () ->
         ignore (Engine.Rng.Empirical.of_points [ (1.0, 0.5); (2.0, 0.9) ])));
  Alcotest.(check bool) "decreasing cdf" true
    (raises (fun () ->
         ignore
           (Engine.Rng.Empirical.of_points [ (1.0, 0.5); (2.0, 0.4); (3.0, 1.0) ])))

(* ------------------------------------------------------------------ *)
(* Vec                                                                *)
(* ------------------------------------------------------------------ *)

let test_vec_basic () =
  let v = Engine.Vec.create () in
  Alcotest.(check bool) "empty" true (Engine.Vec.is_empty v);
  for i = 0 to 99 do
    Engine.Vec.add_last v i
  done;
  Alcotest.(check int) "length" 100 (Engine.Vec.length v);
  Alcotest.(check int) "get 0" 0 (Engine.Vec.get v 0);
  Alcotest.(check int) "get 99" 99 (Engine.Vec.get v 99);
  Engine.Vec.set v 50 (-1);
  Alcotest.(check int) "set/get" (-1) (Engine.Vec.get v 50)

let test_vec_bounds () =
  let v = Engine.Vec.of_list [ 1; 2; 3 ] in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "get -1" true (raises (fun () -> ignore (Engine.Vec.get v (-1))));
  Alcotest.(check bool) "get len" true (raises (fun () -> ignore (Engine.Vec.get v 3)))

let test_vec_pop () =
  let v = Engine.Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "pop" (Some 3) (Engine.Vec.pop_last v);
  Alcotest.(check int) "length after pop" 2 (Engine.Vec.length v);
  ignore (Engine.Vec.pop_last v);
  ignore (Engine.Vec.pop_last v);
  Alcotest.(check (option int)) "pop empty" None (Engine.Vec.pop_last v)

let test_vec_conversions () =
  let v = Engine.Vec.of_list [ 5; 6; 7 ] in
  Alcotest.(check (list int)) "to_list" [ 5; 6; 7 ] (Engine.Vec.to_list v);
  Alcotest.(check (array int)) "to_array" [| 5; 6; 7 |] (Engine.Vec.to_array v);
  Alcotest.(check int) "fold" 18 (Engine.Vec.fold_left ( + ) 0 v)

(* ------------------------------------------------------------------ *)
(* Event_queue                                                        *)
(* ------------------------------------------------------------------ *)

let test_eq_ordering () =
  let q = Engine.Event_queue.create () in
  Engine.Event_queue.push q ~time:3.0 "c";
  Engine.Event_queue.push q ~time:1.0 "a";
  Engine.Event_queue.push q ~time:2.0 "b";
  let pop () =
    match Engine.Event_queue.pop q with
    | Some (_, x) -> x
    | None -> Alcotest.fail "unexpected empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Engine.Event_queue.is_empty q)

let test_eq_fifo_ties () =
  let q = Engine.Event_queue.create () in
  for i = 0 to 9 do
    Engine.Event_queue.push q ~time:1.0 i
  done;
  for i = 0 to 9 do
    match Engine.Event_queue.pop q with
    | Some (_, x) -> Alcotest.(check int) "FIFO among ties" i x
    | None -> Alcotest.fail "unexpected empty"
  done

let test_eq_peek () =
  let q = Engine.Event_queue.create () in
  Alcotest.(check (option (float 0.))) "peek empty" None
    (Engine.Event_queue.peek_time q);
  Engine.Event_queue.push q ~time:4.2 ();
  Alcotest.(check (option (float 1e-9))) "peek" (Some 4.2)
    (Engine.Event_queue.peek_time q);
  Alcotest.(check int) "size" 1 (Engine.Event_queue.size q)

let test_eq_interleaved () =
  (* Random interleaving of pushes and pops must always pop in
     non-decreasing time order. *)
  let r = Engine.Rng.create ~seed:47 in
  let q = Engine.Event_queue.create () in
  let last = ref neg_infinity in
  for _ = 1 to 10_000 do
    if Engine.Rng.bool r || Engine.Event_queue.is_empty q then
      Engine.Event_queue.push q ~time:(Engine.Rng.float r) ()
    else begin
      match Engine.Event_queue.pop q with
      | Some (t, ()) ->
        if t < !last -. 1e-12 then Alcotest.fail "pop went backwards";
        last := t
      | None -> ()
    end;
    (* Monotonicity only holds among pops between which no earlier-timed
       push happened; reset the watermark on push. *)
    last := neg_infinity
  done;
  (* Drain and check global order of remaining items. *)
  let prev = ref neg_infinity in
  let rec drain () =
    match Engine.Event_queue.pop q with
    | Some (t, ()) ->
      if t < !prev then Alcotest.fail "drain out of order";
      prev := t;
      drain ()
    | None -> ()
  in
  drain ()

let prop_eq_sorted =
  QCheck.Test.make ~name:"event_queue pops sorted" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let q = Engine.Event_queue.create () in
      List.iter (fun t -> Engine.Event_queue.push q ~time:t ()) times;
      let rec drain acc =
        match Engine.Event_queue.pop q with
        | Some (t, ()) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let sorted = List.sort Float.compare times in
      popped = sorted)

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                        *)
(* ------------------------------------------------------------------ *)

(* The wheel's horizon at the defaults is 2^16 ticks of 1 ns = ~65 us;
   times comfortably beyond it exercise the overflow heap. *)
let far = 1e-3

let test_tw_ordering () =
  let q = Engine.Timer_wheel.create () in
  Engine.Timer_wheel.push q ~time:3e-6 "c";
  Engine.Timer_wheel.push q ~time:1e-6 "a";
  Engine.Timer_wheel.push q ~time:2e-6 "b";
  let pop () =
    match Engine.Timer_wheel.pop q with
    | Some (_, x) -> x
    | None -> Alcotest.fail "unexpected empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Engine.Timer_wheel.is_empty q)

let test_tw_same_instant_fifo () =
  (* FIFO among equal times must hold both inside a wheel slot and
     inside the overflow heap. *)
  let q = Engine.Timer_wheel.create () in
  for i = 0 to 9 do
    Engine.Timer_wheel.push q ~time:1e-6 i
  done;
  for i = 10 to 19 do
    Engine.Timer_wheel.push q ~time:far i
  done;
  Alcotest.(check int) "size" 20 (Engine.Timer_wheel.size q);
  for i = 0 to 19 do
    match Engine.Timer_wheel.pop q with
    | Some (_, x) -> Alcotest.(check int) "FIFO among ties" i x
    | None -> Alcotest.fail "unexpected empty"
  done

let test_tw_far_future_overflow () =
  (* Far-future events park in the overflow heap yet still interleave
     exactly with wheel-resident ones, including events pushed into the
     wheel after its base has advanced past the original horizon. *)
  let q = Engine.Timer_wheel.create () in
  Engine.Timer_wheel.push q ~time:far "far";
  Engine.Timer_wheel.push q ~time:1e-6 "near";
  Engine.Timer_wheel.push q ~time:(2. *. far) "farther";
  let pop () =
    match Engine.Timer_wheel.pop q with
    | Some (t, x) -> (t, x)
    | None -> Alcotest.fail "unexpected empty"
  in
  Alcotest.(check string) "wheel first" "near" (snd (pop ()));
  let t_far, x_far = pop () in
  Alcotest.(check string) "overflow next" "far" x_far;
  check_float "overflow time preserved" far t_far;
  (* The base now sits at [far]; a nearby time lands back in the wheel
     and must beat the remaining heap entry. *)
  Engine.Timer_wheel.push q ~time:(far +. 1e-6) "back-in-wheel";
  Alcotest.(check string) "rewheeled beats heap" "back-in-wheel"
    (snd (pop ()));
  Alcotest.(check string) "heap drains last" "farther" (snd (pop ()));
  Alcotest.(check bool) "empty" true (Engine.Timer_wheel.is_empty q)

let prop_tw_matches_event_queue =
  (* Differential: on any batch of (possibly tied, possibly
     beyond-horizon) times, the wheel pops the exact sequence the
     binary-heap Event_queue does, payloads included. *)
  QCheck.Test.make ~name:"timer wheel matches event queue" ~count:200
    QCheck.(list (int_bound 200))
    (fun grid ->
      let wheel = Engine.Timer_wheel.create () in
      let heap = Engine.Event_queue.create () in
      List.iteri
        (fun i g ->
          (* 0..200 us on a 1 us grid: dense ties, both sides of the
             ~65 us horizon. *)
          let time = float_of_int g *. 1e-6 in
          Engine.Timer_wheel.push wheel ~time i;
          Engine.Event_queue.push heap ~time i)
        grid;
      let rec drain pop acc =
        match pop () with
        | Some (t, x) -> drain pop ((t, x) :: acc)
        | None -> List.rev acc
      in
      drain (fun () -> Engine.Timer_wheel.pop wheel) []
      = drain (fun () -> Engine.Event_queue.pop heap) [])

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let test_sim_ordering () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  let note tag () = log := (tag, Engine.Sim.now sim) :: !log in
  ignore (Engine.Sim.schedule_at sim ~time:2.0 (note "b"));
  ignore (Engine.Sim.schedule_at sim ~time:1.0 (note "a"));
  ignore (Engine.Sim.schedule_at sim ~time:3.0 (note "c"));
  Engine.Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "fired in order"
    [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
    (List.rev !log)

let test_sim_cascade () =
  (* Events scheduling further events. *)
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 10 then ignore (Engine.Sim.schedule_after sim ~delay:1.0 tick)
  in
  ignore (Engine.Sim.schedule_after sim ~delay:1.0 tick);
  Engine.Sim.run sim;
  Alcotest.(check int) "ten ticks" 10 !count;
  check_float "clock at last tick" 10.0 (Engine.Sim.now sim)

let test_sim_cancel () =
  let sim = Engine.Sim.create () in
  let fired = ref false in
  let h = Engine.Sim.schedule_at sim ~time:1.0 (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Engine.Sim.is_pending h);
  Engine.Sim.cancel h;
  Alcotest.(check bool) "not pending" false (Engine.Sim.is_pending h);
  Engine.Sim.run sim;
  Alcotest.(check bool) "never fired" false !fired

let test_sim_until () =
  let sim = Engine.Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t ->
      ignore (Engine.Sim.schedule_at sim ~time:t (fun () -> fired := t :: !fired)))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Engine.Sim.run ~until:2.5 sim;
  Alcotest.(check (list (float 1e-9))) "only early events" [ 1.0; 2.0 ]
    (List.rev !fired);
  check_float "clock advanced to horizon" 2.5 (Engine.Sim.now sim);
  Engine.Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "rest after resume" [ 1.0; 2.0; 3.0; 4.0 ]
    (List.rev !fired)

let test_sim_past_rejected () =
  let sim = Engine.Sim.create () in
  ignore (Engine.Sim.schedule_at sim ~time:5.0 (fun () -> ()));
  Engine.Sim.run sim;
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "scheduling in the past raises" true
    (raises (fun () -> ignore (Engine.Sim.schedule_at sim ~time:1.0 (fun () -> ()))))

let test_sim_same_time_fifo () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.Sim.schedule_at sim ~time:1.0 (fun () -> log := i :: !log))
  done;
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "same-time events fire FIFO"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_sim_handle_free_fifo () =
  (* Handle-free and handled events scheduled for the same instant still
     fire in scheduling order — the wheel sequences them globally. *)
  let sim = Engine.Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    if i mod 2 = 0 then
      Engine.Sim.schedule_at_ sim ~time:1.0 (fun () -> log := i :: !log)
    else ignore (Engine.Sim.schedule_at sim ~time:1.0 (fun () -> log := i :: !log))
  done;
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "mixed scheduling is FIFO"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_sim_cancel_far_future () =
  (* A cancellable event far beyond the wheel horizon lives in the
     overflow heap; cancelling it there must still work. *)
  let sim = Engine.Sim.create () in
  let fired = ref [] in
  Engine.Sim.schedule_at_ sim ~time:1e-6 (fun () -> fired := "near" :: !fired);
  let h = Engine.Sim.schedule_at sim ~time:1.0 (fun () -> fired := "far" :: !fired) in
  Engine.Sim.cancel h;
  Engine.Sim.run sim;
  Alcotest.(check (list string)) "only the near event fired" [ "near" ] !fired;
  Alcotest.(check int) "cancelled event not counted" 1
    (Engine.Sim.events_fired sim)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Engine.Stats.create () in
  List.iter (Engine.Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Engine.Stats.count s);
  check_float "mean" 2.5 (Engine.Stats.mean s);
  check_float "min" 1.0 (Engine.Stats.min s);
  check_float "max" 4.0 (Engine.Stats.max s);
  check_float "sum" 10.0 (Engine.Stats.sum s);
  check_close "variance" ~tolerance:1e-9 (5.0 /. 3.0) (Engine.Stats.variance s)

let test_stats_empty () =
  let s = Engine.Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Engine.Stats.mean s));
  Alcotest.(check bool) "quantile nan" true
    (Float.is_nan (Engine.Stats.quantile s 0.5))

let test_stats_quantiles () =
  let s = Engine.Stats.create () in
  for i = 1 to 100 do
    Engine.Stats.add s (float_of_int i)
  done;
  check_float "p0 = min" 1.0 (Engine.Stats.quantile s 0.0);
  check_float "p100 = max" 100.0 (Engine.Stats.quantile s 1.0);
  check_close "median" ~tolerance:1e-9 50.5 (Engine.Stats.quantile s 0.5)

let test_stats_merge () =
  let a = Engine.Stats.create () in
  let b = Engine.Stats.create () in
  List.iter (Engine.Stats.add a) [ 1.0; 2.0 ];
  List.iter (Engine.Stats.add b) [ 3.0; 4.0 ];
  let m = Engine.Stats.merge a b in
  Alcotest.(check int) "merged count" 4 (Engine.Stats.count m);
  check_float "merged mean" 2.5 (Engine.Stats.mean m);
  check_float "merged quantile" 4.0 (Engine.Stats.quantile m 1.0)

let test_stats_merge_momentwise () =
  let a = Engine.Stats.create ~keep_samples:false () in
  let b = Engine.Stats.create ~keep_samples:false () in
  List.iter (Engine.Stats.add a) [ 1.0; 2.0; 3.0 ];
  List.iter (Engine.Stats.add b) [ 10.0; 20.0 ];
  let m = Engine.Stats.merge a b in
  Alcotest.(check int) "count" 5 (Engine.Stats.count m);
  check_close "mean" ~tolerance:1e-9 7.2 (Engine.Stats.mean m);
  (* Exact variance of {1,2,3,10,20}. *)
  let exact =
    let xs = [ 1.0; 2.0; 3.0; 10.0; 20.0 ] in
    let mu = 7.2 in
    List.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. xs /. 4.
  in
  check_close "variance" ~tolerance:1e-9 exact (Engine.Stats.variance m)

let test_stats_merge_momentwise_empty () =
  (* A fresh accumulator seeds min/max with NaN; merging an empty
     moment-only side must not let that NaN leak into the result. *)
  let a = Engine.Stats.create ~keep_samples:false () in
  let b = Engine.Stats.create ~keep_samples:false () in
  List.iter (Engine.Stats.add a) [ 2.0; 8.0 ];
  let m = Engine.Stats.merge a b in
  Alcotest.(check int) "count" 2 (Engine.Stats.count m);
  check_float "mean" 5.0 (Engine.Stats.mean m);
  check_float "min survives" 2.0 (Engine.Stats.min m);
  check_float "max survives" 8.0 (Engine.Stats.max m);
  let m' = Engine.Stats.merge b a in
  check_float "min (empty first)" 2.0 (Engine.Stats.min m');
  check_float "max (empty first)" 8.0 (Engine.Stats.max m');
  let e = Engine.Stats.merge b (Engine.Stats.create ~keep_samples:false ()) in
  Alcotest.(check int) "empty count" 0 (Engine.Stats.count e);
  Alcotest.(check bool) "empty mean nan" true
    (Float.is_nan (Engine.Stats.mean e))

let prop_stats_merge_moments_match_samples =
  (* The closed-form moment merge must agree with re-adding every sample. *)
  QCheck.Test.make ~name:"moment-only merge agrees with sample merge"
    ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 60) (float_bound_inclusive 1e3))
        (list_of_size (Gen.int_range 0 60) (float_bound_inclusive 1e3)))
    (fun (xs, ys) ->
      let fill keep vals =
        let s = Engine.Stats.create ~keep_samples:keep () in
        List.iter (Engine.Stats.add s) vals;
        s
      in
      let mm = Engine.Stats.merge (fill false xs) (fill false ys) in
      let sm = Engine.Stats.merge (fill true xs) (fill true ys) in
      let close a b =
        (Float.is_nan a && Float.is_nan b)
        || abs_float (a -. b) <= 1e-6 *. (1. +. abs_float b)
      in
      Engine.Stats.count mm = Engine.Stats.count sm
      && close (Engine.Stats.mean mm) (Engine.Stats.mean sm)
      && close (Engine.Stats.variance mm) (Engine.Stats.variance sm)
      && close (Engine.Stats.min mm) (Engine.Stats.min sm)
      && close (Engine.Stats.max mm) (Engine.Stats.max sm))

let prop_stats_mean_matches_naive =
  QCheck.Test.make ~name:"stats mean matches naive sum/n" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 200) (float_bound_inclusive 1e6))
    (fun xs ->
      let s = Engine.Stats.create () in
      List.iter (Engine.Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      abs_float (Engine.Stats.mean s -. naive) <= 1e-6 *. (1. +. abs_float naive))

let prop_stats_minmax =
  QCheck.Test.make ~name:"stats min/max bound all samples" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_inclusive 1e3))
    (fun xs ->
      let s = Engine.Stats.create () in
      List.iter (Engine.Stats.add s) xs;
      List.for_all
        (fun x -> Engine.Stats.min s <= x && x <= Engine.Stats.max s)
        xs)

(* ------------------------------------------------------------------ *)
(* P2_quantile                                                        *)
(* ------------------------------------------------------------------ *)

let test_p2_median_uniform () =
  let p2 = Engine.P2_quantile.create ~q:0.5 in
  let r = Engine.Rng.create ~seed:53 in
  for _ = 1 to 50_000 do
    Engine.P2_quantile.add p2 (Engine.Rng.float r)
  done;
  check_close "median ~ 0.5" ~tolerance:0.02 0.5 (Engine.P2_quantile.estimate p2)

let test_p2_p99_uniform () =
  let p2 = Engine.P2_quantile.create ~q:0.99 in
  let r = Engine.Rng.create ~seed:59 in
  for _ = 1 to 50_000 do
    Engine.P2_quantile.add p2 (Engine.Rng.float r)
  done;
  check_close "p99 ~ 0.99" ~tolerance:0.02 0.99 (Engine.P2_quantile.estimate p2)

let test_p2_small_stream_exact () =
  let p2 = Engine.P2_quantile.create ~q:0.5 in
  List.iter (Engine.P2_quantile.add p2) [ 3.0; 1.0; 2.0 ];
  check_float "exact small-sample median" 2.0 (Engine.P2_quantile.estimate p2)

let test_p2_empty () =
  let p2 = Engine.P2_quantile.create ~q:0.5 in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Engine.P2_quantile.estimate p2))

let test_p2_invalid_q () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "q = 0 rejected" true
    (raises (fun () -> ignore (Engine.P2_quantile.create ~q:0.)));
  Alcotest.(check bool) "q = 1 rejected" true
    (raises (fun () -> ignore (Engine.P2_quantile.create ~q:1.)))

let prop_p2_within_range =
  QCheck.Test.make ~name:"p2 estimate stays within sample range" ~count:100
    QCheck.(list_of_size (Gen.int_range 6 500) (float_bound_inclusive 1e3))
    (fun xs ->
      let p2 = Engine.P2_quantile.create ~q:0.9 in
      List.iter (Engine.P2_quantile.add p2) xs;
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      let e = Engine.P2_quantile.estimate p2 in
      lo <= e && e <= hi)

(* ------------------------------------------------------------------ *)
(* Timeseries                                                         *)
(* ------------------------------------------------------------------ *)

let test_ts_basic () =
  let ts = Engine.Timeseries.create ~bucket:1.0 () in
  Engine.Timeseries.add ts ~time:0.5 10.;
  Engine.Timeseries.add ts ~time:0.9 5.;
  Engine.Timeseries.add ts ~time:2.1 7.;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "buckets with gap"
    [ (0., 15.); (1., 0.); (2., 7.) ]
    (Engine.Timeseries.buckets ts);
  check_float "total" 22. (Engine.Timeseries.total ts)

let test_ts_rate () =
  let ts = Engine.Timeseries.create ~bucket:0.5 () in
  Engine.Timeseries.add ts ~time:0.1 100.;
  (match Engine.Timeseries.rate ts with
  | [ (_, r) ] -> check_float "rate = sum / width" 200. r
  | _ -> Alcotest.fail "expected one bucket")

let test_ts_rate_multi_bucket () =
  (* Rates across several buckets, including an empty gap bucket. *)
  let ts = Engine.Timeseries.create ~bucket:0.5 () in
  Engine.Timeseries.add ts ~time:0.1 100.;
  Engine.Timeseries.add ts ~time:0.3 100.;
  Engine.Timeseries.add ts ~time:0.6 25.;
  Engine.Timeseries.add ts ~time:1.6 50.;
  match Engine.Timeseries.rate ts with
  | [ (t0, r0); (_, r1); (_, r2); (_, r3) ] ->
    check_float "first bucket start" 0. t0;
    check_float "bucket 0 rate" 400. r0;
    check_float "bucket 1 rate" 50. r1;
    check_float "gap bucket rate" 0. r2;
    check_float "bucket 3 rate" 100. r3
  | l -> Alcotest.failf "expected four buckets, got %d" (List.length l)

let test_ts_empty () =
  let ts = Engine.Timeseries.create ~bucket:1.0 () in
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "empty" []
    (Engine.Timeseries.buckets ts);
  check_float "zero total" 0. (Engine.Timeseries.total ts)

let test_ts_invalid () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero bucket" true
    (raises (fun () -> ignore (Engine.Timeseries.create ~bucket:0. ())));
  let ts = Engine.Timeseries.create ~bucket:1.0 () in
  Alcotest.(check bool) "negative time" true
    (raises (fun () -> Engine.Timeseries.add ts ~time:(-1.) 1.))

let test_ts_out_of_order () =
  let ts = Engine.Timeseries.create ~bucket:1.0 () in
  Engine.Timeseries.add ts ~time:5.0 1.;
  Engine.Timeseries.add ts ~time:1.0 2.;
  (match Engine.Timeseries.buckets ts with
  | (t0, v0) :: _ ->
    check_float "starts at earliest" 1.0 t0;
    check_float "earliest sum" 2.0 v0
  | [] -> Alcotest.fail "no buckets");
  Alcotest.(check int) "span" 5 (List.length (Engine.Timeseries.buckets ts))

(* ------------------------------------------------------------------ *)
(* Merge machinery (P², Timeseries)                                    *)
(* ------------------------------------------------------------------ *)

let test_p2_merge_small_exact () =
  (* Sketches with <= 5 observations replay raw values: merging two small
     sketches equals one sketch fed everything. *)
  let a = Engine.P2_quantile.create ~q:0.5 in
  let b = Engine.P2_quantile.create ~q:0.5 in
  List.iter (Engine.P2_quantile.add a) [ 1.; 9. ];
  List.iter (Engine.P2_quantile.add b) [ 5.; 3. ];
  Engine.P2_quantile.merge_into ~into:a b;
  let direct = Engine.P2_quantile.create ~q:0.5 in
  List.iter (Engine.P2_quantile.add direct) [ 1.; 9.; 5.; 3. ];
  Alcotest.(check int) "counts add" 4 (Engine.P2_quantile.count a);
  check_float "small merge exact" (Engine.P2_quantile.estimate direct)
    (Engine.P2_quantile.estimate a)

let test_p2_merge_deterministic () =
  let build () =
    let sketches =
      List.init 3 (fun k ->
          let s = Engine.P2_quantile.create ~q:0.9 in
          for i = 0 to 99 do
            Engine.P2_quantile.add s (float_of_int (i + (100 * k)))
          done;
          s)
    in
    let into = Engine.P2_quantile.create ~q:0.9 in
    List.iter (fun s -> Engine.P2_quantile.merge_into ~into s) sketches;
    Engine.P2_quantile.estimate into
  in
  check_float "same merge order, same estimate" (build ()) (build ());
  (* The approximate merge must still land inside the observed range and
     near the true p90 of 0..299. *)
  let e = build () in
  Alcotest.(check bool) "estimate plausible" true (e > 200. && e < 300.)

let test_p2_merge_empty_and_mismatch () =
  let a = Engine.P2_quantile.create ~q:0.5 in
  Engine.P2_quantile.add a 4.;
  let empty = Engine.P2_quantile.create ~q:0.5 in
  Engine.P2_quantile.merge_into ~into:a empty;
  Alcotest.(check int) "empty src is a no-op" 1 (Engine.P2_quantile.count a);
  let other = Engine.P2_quantile.create ~q:0.99 in
  Alcotest.(check bool) "quantile mismatch rejected" true
    (try
       Engine.P2_quantile.merge_into ~into:a other;
       false
     with Invalid_argument _ -> true)

let test_ts_merge () =
  let a = Engine.Timeseries.create ~bucket:1.0 () in
  let b = Engine.Timeseries.create ~bucket:1.0 () in
  Engine.Timeseries.add a ~time:0.5 1.;
  Engine.Timeseries.add b ~time:0.5 2.;
  Engine.Timeseries.add b ~time:3.5 4.;
  Engine.Timeseries.merge_into ~into:a b;
  check_float "totals add" 7. (Engine.Timeseries.total a);
  (match Engine.Timeseries.buckets a with
  | (t0, v0) :: _ ->
    check_float "first bucket time" 0. t0;
    check_float "first bucket sums" 3. v0
  | [] -> Alcotest.fail "no buckets");
  Alcotest.(check int) "span covers src" 4
    (List.length (Engine.Timeseries.buckets a));
  let wide = Engine.Timeseries.create ~bucket:2.0 () in
  Alcotest.(check bool) "bucket mismatch rejected" true
    (try
       Engine.Timeseries.merge_into ~into:a wide;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Rng.derive                                                          *)
(* ------------------------------------------------------------------ *)

let test_rng_derive () =
  let s1 = Engine.Rng.derive ~seed:1 0 in
  Alcotest.(check int) "deterministic" s1 (Engine.Rng.derive ~seed:1 0);
  Alcotest.(check bool) "index-sensitive" true
    (s1 <> Engine.Rng.derive ~seed:1 1);
  Alcotest.(check bool) "seed-sensitive" true
    (s1 <> Engine.Rng.derive ~seed:2 0);
  List.iter
    (fun i ->
      Alcotest.(check bool) "non-negative" true
        (Engine.Rng.derive ~seed:12345 i >= 0))
    [ 0; 1; 7; 1000 ];
  Alcotest.(check bool) "negative index rejected" true
    (try
       ignore (Engine.Rng.derive ~seed:1 (-1));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Parallel                                                            *)
(* ------------------------------------------------------------------ *)

let test_parallel_default_jobs () =
  Alcotest.(check bool) "at least one worker" true
    (Engine.Parallel.default_jobs () >= 1)

let test_parallel_empty () =
  Alcotest.(check (list int)) "empty in, empty out (serial)" []
    (Engine.Parallel.map ~jobs:1 (fun x -> x) []);
  Alcotest.(check (list int)) "empty in, empty out (parallel)" []
    (Engine.Parallel.map ~jobs:4 (fun x -> x) [])

let test_parallel_ordering () =
  let items = List.init 50 Fun.id in
  let expected = List.map (fun x -> x * x) items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved at jobs=%d" jobs)
        expected
        (Engine.Parallel.map ~jobs (fun x -> x * x) items))
    [ 1; 2; 4; 8 ]

exception Boom of int

let test_parallel_try_map_errors () =
  let results =
    Engine.Parallel.try_map ~jobs:4
      (fun x -> if x = 2 then raise (Boom x) else x * 10)
      [ 0; 1; 2; 3 ]
  in
  let expect i = function
    | Ok v -> Alcotest.(check int) "ok value" (i * 10) v
    | Error (Boom n) when i = 2 -> Alcotest.(check int) "failing item" 2 n
    | Error e -> Alcotest.failf "unexpected error: %s" (Printexc.to_string e)
  in
  Alcotest.(check int) "arity" 4 (List.length results);
  List.iteri
    (fun i r ->
      if i = 2 then
        match r with
        | Error (Boom 2) -> ()
        | _ -> Alcotest.fail "index 2 should carry Boom"
      else expect i r)
    results

let test_parallel_map_reraises () =
  Alcotest.(check bool) "map re-raises the worker exception" true
    (try
       ignore (Engine.Parallel.map ~jobs:4 (fun x -> if x >= 3 then raise (Boom x) else x)
                 [ 0; 1; 2; 3; 4 ]);
       false
     with Boom 3 -> true)

(* ------------------------------------------------------------------ *)
(* Json                                                               *)
(* ------------------------------------------------------------------ *)

let json_eq = Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Engine.Json.to_string j)) ( = )

let parse_json s =
  match Engine.Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_atoms () =
  Alcotest.check json_eq "null" Engine.Json.Null (parse_json "null");
  Alcotest.check json_eq "true" (Engine.Json.Bool true) (parse_json "true");
  Alcotest.check json_eq "number" (Engine.Json.Number 42.) (parse_json "42");
  Alcotest.check json_eq "negative float" (Engine.Json.Number (-2.5)) (parse_json "-2.5");
  Alcotest.check json_eq "string" (Engine.Json.String "hi") (parse_json "\"hi\"")

let test_json_structures () =
  Alcotest.check json_eq "array"
    (Engine.Json.List [ Engine.Json.Number 1.; Engine.Json.Number 2. ])
    (parse_json "[1, 2]");
  Alcotest.check json_eq "object"
    (Engine.Json.Obj [ ("a", Engine.Json.Number 1.); ("b", Engine.Json.List []) ])
    (parse_json "{\"a\": 1, \"b\": []}");
  Alcotest.check json_eq "nested"
    (Engine.Json.Obj [ ("x", Engine.Json.Obj [ ("y", Engine.Json.Null) ]) ])
    (parse_json "{\"x\":{\"y\":null}}")

let test_json_escapes () =
  let original = Engine.Json.String "line\nquote\"back\\tab\t" in
  let round = parse_json (Engine.Json.to_string original) in
  Alcotest.check json_eq "escape round trip" original round;
  Alcotest.check json_eq "unicode escape" (Engine.Json.String "A") (parse_json "\"\\u0041\"")

let test_json_errors () =
  let is_error s = Result.is_error (Engine.Json.of_string s) in
  Alcotest.(check bool) "empty" true (is_error "");
  Alcotest.(check bool) "trailing" true (is_error "1 2");
  Alcotest.(check bool) "unterminated string" true (is_error "\"abc");
  Alcotest.(check bool) "bare word" true (is_error "nope");
  Alcotest.(check bool) "unclosed array" true (is_error "[1, 2");
  Alcotest.(check bool) "missing colon" true (is_error "{\"a\" 1}")

let test_json_accessors () =
  let v = parse_json "{\"a\": 3, \"b\": \"x\", \"c\": [true]}" in
  Alcotest.(check (option int)) "member int" (Some 3)
    (Option.bind (Engine.Json.member "a" v) Engine.Json.to_int);
  Alcotest.(check (option string)) "member str" (Some "x")
    (Option.bind (Engine.Json.member "b" v) Engine.Json.to_str);
  Alcotest.(check bool) "missing member" true (Engine.Json.member "z" v = None);
  Alcotest.(check (option int)) "non-integral int" None
    (Engine.Json.to_int (Engine.Json.Number 1.5))

let test_json_pretty_reparses () =
  let v =
    parse_json "{\"rows\":[{\"k\":1},{\"k\":2}],\"name\":\"qvisor\"}"
  in
  Alcotest.check json_eq "pretty form reparses"
    v (parse_json (Engine.Json.to_string ~pretty:true v))

let prop_json_round_trip =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self size ->
          if size <= 0 then
            oneof
              [
                return Engine.Json.Null;
                map (fun b -> Engine.Json.Bool b) bool;
                map (fun n -> Engine.Json.Number (float_of_int n)) (int_range (-1000) 1000);
                map (fun s -> Engine.Json.String s) (string_size ~gen:printable (int_range 0 10));
              ]
          else
            oneof
              [
                map (fun l -> Engine.Json.List l) (list_size (int_range 0 4) (self (size / 2)));
                map
                  (fun kvs ->
                    (* Duplicate keys break assoc-based comparison. *)
                    let kvs =
                      List.mapi (fun i (k, v) -> (Printf.sprintf "%d%s" i k, v)) kvs
                    in
                    Engine.Json.Obj kvs)
                  (list_size (int_range 0 4)
                     (pair (string_size ~gen:printable (int_range 0 6)) (self (size / 2))));
              ]))
  in
  QCheck.Test.make ~name:"json to_string/of_string round-trips" ~count:300
    (QCheck.make gen) (fun v ->
      match Engine.Json.of_string (Engine.Json.to_string v) with
      | Ok v' -> v = v'
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "int_range coverage" `Quick test_rng_int_range;
          Alcotest.test_case "int_range singleton" `Quick test_rng_int_range_singleton;
          Alcotest.test_case "int_range invalid" `Quick test_rng_int_range_invalid;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "pareto minimum" `Quick test_rng_pareto_minimum;
          Alcotest.test_case "pair_distinct" `Quick test_rng_pair_distinct;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "empirical",
        [
          Alcotest.test_case "point mass" `Quick test_empirical_point_mass;
          Alcotest.test_case "uniform mean" `Quick test_empirical_mean_uniform;
          Alcotest.test_case "sample support" `Quick test_empirical_sample_range;
          Alcotest.test_case "invalid inputs" `Quick test_empirical_invalid;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "peek/size" `Quick test_eq_peek;
          Alcotest.test_case "interleaved" `Quick test_eq_interleaved;
          qc prop_eq_sorted;
        ] );
      ( "timer_wheel",
        [
          Alcotest.test_case "ordering" `Quick test_tw_ordering;
          Alcotest.test_case "same-instant FIFO" `Quick test_tw_same_instant_fifo;
          Alcotest.test_case "far-future overflow" `Quick
            test_tw_far_future_overflow;
          qc prop_tw_matches_event_queue;
        ] );
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "cascade" `Quick test_sim_cascade;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "same-time FIFO" `Quick test_sim_same_time_fifo;
          Alcotest.test_case "handle-free same-time FIFO" `Quick
            test_sim_handle_free_fifo;
          Alcotest.test_case "cancel far-future" `Quick
            test_sim_cancel_far_future;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge momentwise" `Quick test_stats_merge_momentwise;
          Alcotest.test_case "merge momentwise empty" `Quick
            test_stats_merge_momentwise_empty;
          qc prop_stats_merge_moments_match_samples;
          qc prop_stats_mean_matches_naive;
          qc prop_stats_minmax;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "basic" `Quick test_ts_basic;
          Alcotest.test_case "rate" `Quick test_ts_rate;
          Alcotest.test_case "rate multi-bucket" `Quick test_ts_rate_multi_bucket;
          Alcotest.test_case "empty" `Quick test_ts_empty;
          Alcotest.test_case "invalid" `Quick test_ts_invalid;
          Alcotest.test_case "out of order" `Quick test_ts_out_of_order;
          Alcotest.test_case "merge" `Quick test_ts_merge;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "default jobs" `Quick test_parallel_default_jobs;
          Alcotest.test_case "empty input" `Quick test_parallel_empty;
          Alcotest.test_case "ordering preserved" `Quick test_parallel_ordering;
          Alcotest.test_case "try_map errors" `Quick test_parallel_try_map_errors;
          Alcotest.test_case "map re-raises first" `Quick
            test_parallel_map_reraises;
          Alcotest.test_case "rng derive" `Quick test_rng_derive;
        ] );
      ( "json",
        [
          Alcotest.test_case "atoms" `Quick test_json_atoms;
          Alcotest.test_case "structures" `Quick test_json_structures;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "pretty reparses" `Quick test_json_pretty_reparses;
          qc prop_json_round_trip;
        ] );
      ( "p2_quantile",
        [
          Alcotest.test_case "median uniform" `Quick test_p2_median_uniform;
          Alcotest.test_case "p99 uniform" `Quick test_p2_p99_uniform;
          Alcotest.test_case "small stream exact" `Quick test_p2_small_stream_exact;
          Alcotest.test_case "empty" `Quick test_p2_empty;
          Alcotest.test_case "invalid q" `Quick test_p2_invalid_q;
          Alcotest.test_case "merge small exact" `Quick test_p2_merge_small_exact;
          Alcotest.test_case "merge deterministic" `Quick
            test_p2_merge_deterministic;
          Alcotest.test_case "merge empty/mismatch" `Quick
            test_p2_merge_empty_and_mismatch;
          qc prop_p2_within_range;
        ] );
    ]
