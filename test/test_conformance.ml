(* Tests for the conformance subsystem: the seeded scenario generator,
   the ideal-PIFO oracle, the differential runner, the shrinker, and the
   generator-driven property tests the subsystem makes possible. *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Qvisor.Error.to_string e)

let scenario_of_seed seed = Conformance.Scenario.generate ~seed

(* ------------------------------------------------------------------ *)
(* Generator                                                          *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      let a = scenario_of_seed seed and b = scenario_of_seed seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d reproduces" seed)
        true
        (Conformance.Scenario.equal a b))
    [ 0; 1; 42; 4096 ]

let test_generator_valid_specs () =
  (* Every generated scenario must synthesize: the generator is not
     allowed to emit specs the synthesizer rejects. *)
  for seed = 0 to 199 do
    let sc = scenario_of_seed seed in
    ignore (ok (Conformance.Scenario.plan sc))
  done

let test_generator_shape () =
  let sc = scenario_of_seed 42 in
  let n_events = Conformance.Scenario.num_events sc in
  let n_enq = Conformance.Scenario.num_enqueues sc in
  Alcotest.(check bool) "has events" true (n_events >= 16);
  Alcotest.(check bool) "has enqueues" true (n_enq > 0);
  Alcotest.(check bool) "has dequeues" true (n_events > n_enq);
  Alcotest.(check bool)
    "capacity in range" true
    (sc.Conformance.Scenario.capacity_pkts >= 4
    && sc.Conformance.Scenario.capacity_pkts <= 64)

let test_scenario_json_roundtrip () =
  (* Derived seeds are full 63-bit values — they must survive the wire
     format exactly (a JSON number would round through a float). *)
  let seeds =
    List.init 50 Fun.id
    @ List.init 4 (fun i -> Engine.Rng.derive ~seed:42 i)
  in
  List.iter
    (fun seed ->
      let sc = scenario_of_seed seed in
    let json = Conformance.Scenario.to_json sc in
    (* Through the wire format and back. *)
    let reparsed =
      match Engine.Json.of_string (Engine.Json.to_string json) with
      | Ok j -> j
      | Error e -> Alcotest.failf "json re-parse: %s" e
    in
      let sc' = ok (Conformance.Scenario.of_json reparsed) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d round-trips" seed)
        true
        (Conformance.Scenario.equal sc sc'))
    seeds

(* ------------------------------------------------------------------ *)
(* Oracle self-consistency: oracle vs the real PIFO backend            *)
(* ------------------------------------------------------------------ *)

let replay_ideal sc =
  let plan = ok (Conformance.Scenario.plan sc) in
  let qdisc =
    ok
      (Qvisor.Deploy.instantiate ~plan
         (Qvisor.Deploy.Ideal_pifo
            { capacity_pkts = sc.Conformance.Scenario.capacity_pkts }))
  in
  ( Conformance.Oracle.run ~plan sc,
    Conformance.Differential.replay ~plan ~qdisc sc )

let test_oracle_matches_pifo_200_cases () =
  (* The committed self-consistency claim: on 200 seeded cases the oracle
     and the production exact backend (the FFS bucket queue, via
     [Deploy.Ideal_pifo]) agree byte-for-byte (served order and drop
     decisions). *)
  for seed = 0 to 199 do
    let sc = scenario_of_seed seed in
    let oracle, rep = replay_ideal sc in
    let v = Conformance.Differential.compare_to_oracle oracle rep in
    if not v.Conformance.Differential.matches then
      Alcotest.failf "seed %d: oracle vs bucket queue diverged: %s" seed
        (Option.value v.Conformance.Differential.divergence ~default:"?")
  done

let test_oracle_served_sorted_after_batch () =
  (* Rearranged so every enqueue precedes every dequeue, the oracle's
     served sequence must be globally (rank, sid)-sorted — no later
     arrival can jump ahead once nothing else arrives. *)
  for seed = 0 to 49 do
    let sc = scenario_of_seed seed in
    let enqs, n_deq =
      List.fold_left
        (fun (enqs, d) ev ->
          match ev with
          | Conformance.Scenario.Enqueue _ -> (ev :: enqs, d)
          | Conformance.Scenario.Dequeue -> (enqs, d + 1))
        ([], 0) sc.Conformance.Scenario.events
    in
    let batched =
      {
        sc with
        Conformance.Scenario.events =
          List.rev enqs
          @ List.init (max n_deq (List.length enqs)) (fun _ ->
                Conformance.Scenario.Dequeue);
      }
    in
    let plan = ok (Conformance.Scenario.plan batched) in
    let outcome = Conformance.Oracle.run ~plan batched in
    let keys =
      List.map
        (fun it -> (it.Conformance.Oracle.rank, it.Conformance.Oracle.sid))
        outcome.Conformance.Oracle.served
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d batched serve order sorted" seed)
      true
      (List.sort compare keys = keys)
  done

(* ------------------------------------------------------------------ *)
(* Generator-driven invariants on the scheduler substrate              *)
(* ------------------------------------------------------------------ *)

(* Feed a scenario's raw labels straight into a qdisc (no plan), applying
   dequeues as they come; return (accepted, served, dropped, final). *)
let drive_qdisc q sc =
  let accepted = ref 0 in
  let served = ref [] in
  let dropped = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Conformance.Scenario.Enqueue { tenant; label; size } ->
        let p = Sched.Packet.make ~tenant ~rank:label ~flow:tenant ~size () in
        let victims = q.Sched.Qdisc.enqueue p in
        if Sched.Qdisc.accepted q p victims then incr accepted;
        dropped := !dropped + List.length victims
      | Conformance.Scenario.Dequeue -> (
        match q.Sched.Qdisc.dequeue () with
        | None -> ()
        | Some p -> served := p :: !served))
    sc.Conformance.Scenario.events;
  (!accepted, List.rev !served, !dropped)

let test_pifo_heap_order_under_interleavings () =
  (* After any interleaving of enqueues and dequeues, draining a PIFO
     yields (rank, uid)-sorted output, and packet conservation holds. *)
  for seed = 0 to 99 do
    let sc = scenario_of_seed seed in
    let q =
      Sched.Pifo_queue.create
        ~capacity_pkts:sc.Conformance.Scenario.capacity_pkts ()
    in
    let accepted, served, dropped = drive_qdisc q sc in
    let rest = Sched.Qdisc.drain q in
    let keys =
      List.map (fun p -> (p.Sched.Packet.rank, p.Sched.Packet.uid)) rest
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d drain sorted" seed)
      true
      (List.sort compare keys = keys);
    (* Conservation: every enqueue was accepted or dropped; every accepted
       packet was either served or still queued.  Eviction makes these two
       accountings differ, so check totals against enqueue count. *)
    let enq = Conformance.Scenario.num_enqueues sc in
    Alcotest.(check int)
      (Printf.sprintf "seed %d conservation" seed)
      enq
      (List.length served + List.length rest + dropped);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d accepted bound" seed)
      true (accepted >= List.length served + List.length rest)
  done

let test_sp_pifo_bound_monotonicity () =
  (* SP-PIFO's per-queue bounds must stay non-decreasing from the
     highest-priority queue down, across arbitrary push-up/push-down
     sequences. *)
  for seed = 0 to 99 do
    let sc = scenario_of_seed seed in
    let q, bounds =
      Sched.Sp_pifo.create_with_bounds ~num_queues:8
        ~queue_capacity_pkts:sc.Conformance.Scenario.capacity_pkts ()
    in
    List.iter
      (fun ev ->
        (match ev with
        | Conformance.Scenario.Enqueue { tenant; label; size } ->
          let p =
            Sched.Packet.make ~tenant ~rank:label ~flow:tenant ~size ()
          in
          ignore (q.Sched.Qdisc.enqueue p)
        | Conformance.Scenario.Dequeue -> ignore (q.Sched.Qdisc.dequeue ()));
        let b = Array.to_list (bounds ()) in
        if List.sort compare b <> b then
          Alcotest.failf "seed %d: SP-PIFO bounds not monotone" seed)
      sc.Conformance.Scenario.events
  done

(* ------------------------------------------------------------------ *)
(* Differential runner                                                *)
(* ------------------------------------------------------------------ *)

let test_run_cases_exact_backend_conformant () =
  let res =
    Conformance.Differential.run_cases ~jobs:2 ~seed:42 ~cases:50 ()
  in
  Alcotest.(check int) "no errors" 0 (List.length res.Conformance.Differential.errors);
  Alcotest.(check int) "no failures" 0
    (List.length res.Conformance.Differential.failures);
  let ideal = List.hd res.Conformance.Differential.stats in
  Alcotest.(check string) "first backend" "ideal-pifo"
    ideal.Conformance.Differential.backend;
  Alcotest.(check int) "ideal exact on all cases" 50
    ideal.Conformance.Differential.exact_cases;
  Alcotest.(check int) "ideal has zero inversions" 0
    ideal.Conformance.Differential.inversions

let test_run_cases_jobs_invariant () =
  let strip (r : Conformance.Differential.run_result) =
    ( r.Conformance.Differential.total_events,
      r.Conformance.Differential.stats,
      r.Conformance.Differential.failures,
      r.Conformance.Differential.errors )
  in
  let r1 = Conformance.Differential.run_cases ~jobs:1 ~seed:7 ~cases:24 () in
  let r4 = Conformance.Differential.run_cases ~jobs:4 ~seed:7 ~cases:24 () in
  Alcotest.(check bool) "jobs=1 and jobs=4 agree" true (strip r1 = strip r4)

let test_injected_fault_detected () =
  (* Each injected fault must be caught by the oracle within a small
     seeded fleet. *)
  List.iter
    (fun fault ->
      let backends =
        Conformance.Differential.standard_backends ()
        @ [ Conformance.Differential.faulty_backend fault ]
      in
      let res =
        Conformance.Differential.run_cases ~jobs:2 ~backends ~seed:42
          ~cases:50 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "fault %s detected" (Conformance.Fault.to_string fault))
        true
        (res.Conformance.Differential.failures <> []);
      (* and every failure names the injected backend, not a real one *)
      List.iter
        (fun f ->
          Alcotest.(check string) "failure is the injected backend"
            ("injected:" ^ Conformance.Fault.to_string fault)
            f.Conformance.Differential.backend)
        res.Conformance.Differential.failures)
    Conformance.Fault.all

let test_shrinker_minimizes_injected_fault () =
  List.iter
    (fun fault ->
      let backend = Conformance.Differential.faulty_backend fault in
      let fails = Conformance.Differential.fails_oracle ~backend in
      (* Find the first failing seeded case, as the CLI does. *)
      let rec first_failing i =
        if i >= 200 then Alcotest.failf "no failing case found"
        else begin
          let sc = scenario_of_seed (Engine.Rng.derive ~seed:42 i) in
          if fails sc then sc else first_failing (i + 1)
        end
      in
      let sc = first_failing 0 in
      let small = Conformance.Shrink.minimize ~fails sc in
      Alcotest.(check bool)
        (Printf.sprintf "%s reproducer still fails"
           (Conformance.Fault.to_string fault))
        true (fails small);
      let n = Conformance.Scenario.num_events small in
      if n > 20 then
        Alcotest.failf "fault %s shrank to %d events (> 20)"
          (Conformance.Fault.to_string fault)
          n;
      (* The reproducer must survive serialization. *)
      let json = Conformance.Scenario.to_json small in
      let small' =
        ok
          (Conformance.Scenario.of_json
             (Result.get_ok (Engine.Json.of_string (Engine.Json.to_string json))))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s reproducer replayable after round-trip"
           (Conformance.Fault.to_string fault))
        true (fails small'))
    Conformance.Fault.all

let test_strict_violation_scoring () =
  (* A hand-built strict scenario on a FIFO-degenerate backend: T0 >> T1,
     enqueue T1 first then T0, dequeue twice.  A FIFO serves T1 while T0
     waits — exactly one violation on the (T0, T1) edge. *)
  let tenants =
    [
      Qvisor.Tenant.make ~rank_lo:0 ~rank_hi:100 ~id:0 ~name:"T0" ();
      Qvisor.Tenant.make ~rank_lo:0 ~rank_hi:100 ~id:1 ~name:"T1" ();
    ]
  in
  let policy = Qvisor.Policy.parse_exn "T0 >> T1" in
  let sc =
    {
      Conformance.Scenario.seed = 0;
      tenants;
      policy;
      config = Qvisor.Synthesizer.default_config;
      capacity_pkts = 8;
      events =
        [
          Conformance.Scenario.Enqueue { tenant = 1; label = 50; size = 100 };
          Conformance.Scenario.Enqueue { tenant = 0; label = 50; size = 100 };
          Conformance.Scenario.Dequeue;
          Conformance.Scenario.Dequeue;
        ];
    }
  in
  let plan = ok (Conformance.Scenario.plan sc) in
  let fifo = Sched.Fifo_queue.create ~capacity_pkts:8 () in
  let rep = Conformance.Differential.replay ~plan ~qdisc:fifo sc in
  Alcotest.(check int) "one inversion" 1 rep.Conformance.Differential.inversions;
  let total_viol =
    List.fold_left (fun a (_, c) -> a + c) 0
      rep.Conformance.Differential.violations
  in
  Alcotest.(check int) "one strict violation" 1 total_viol;
  (* The oracle, by contrast, serves T0 first. *)
  let oracle = Conformance.Oracle.run ~plan sc in
  let first = List.hd oracle.Conformance.Oracle.served in
  Alcotest.(check int) "oracle serves T0 first" 0
    first.Conformance.Oracle.tenant

let test_fault_qdisc_basics () =
  (* lifo-ties really is LIFO among equals. *)
  let q = Conformance.Fault.qdisc Conformance.Fault.Lifo_ties ~capacity_pkts:4 in
  let mk r = Sched.Packet.make ~rank:r ~flow:0 ~size:100 () in
  let a = mk 5 and b = mk 5 in
  ignore (q.Sched.Qdisc.enqueue a);
  ignore (q.Sched.Qdisc.enqueue b);
  let first = Option.get (q.Sched.Qdisc.dequeue ()) in
  Alcotest.(check int) "newest equal-rank first" b.Sched.Packet.uid
    first.Sched.Packet.uid;
  (* drop-newest never evicts. *)
  let q = Conformance.Fault.qdisc Conformance.Fault.Drop_newest ~capacity_pkts:1 in
  ignore (q.Sched.Qdisc.enqueue (mk 10));
  let dropped = q.Sched.Qdisc.enqueue (mk 1) in
  Alcotest.(check int) "better arrival tail-dropped" 1 (List.length dropped)

let () =
  Alcotest.run "conformance"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "valid specs" `Quick test_generator_valid_specs;
          Alcotest.test_case "shape" `Quick test_generator_shape;
          Alcotest.test_case "json round-trip" `Quick
            test_scenario_json_roundtrip;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "matches bucket queue on 200 cases" `Quick
            test_oracle_matches_pifo_200_cases;
          Alcotest.test_case "serves in (rank, sid) order" `Quick
            test_oracle_served_sorted_after_batch;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "pifo heap order under interleavings" `Quick
            test_pifo_heap_order_under_interleavings;
          Alcotest.test_case "sp-pifo bound monotonicity" `Quick
            test_sp_pifo_bound_monotonicity;
        ] );
      ( "differential",
        [
          Alcotest.test_case "exact backend conformant" `Quick
            test_run_cases_exact_backend_conformant;
          Alcotest.test_case "jobs-invariant results" `Quick
            test_run_cases_jobs_invariant;
          Alcotest.test_case "injected faults detected" `Quick
            test_injected_fault_detected;
          Alcotest.test_case "strict violation scoring" `Quick
            test_strict_violation_scoring;
          Alcotest.test_case "fault qdisc basics" `Quick
            test_fault_qdisc_basics;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "minimizes injected faults to <= 20 events"
            `Quick test_shrinker_minimizes_injected_fault;
        ] );
    ]
