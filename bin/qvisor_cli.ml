(* qvisor-cli: synthesize and inspect joint scheduling plans from the
   command line.

   Example:
     qvisor-cli plan --tenant 'T1:pfabric:0:30000' --tenant 'T2:edf:0:100' \
                     --policy 'T1 >> T2' --queues 8
*)

open Cmdliner

(* Tenant spec syntax: NAME:ALGO:LO:HI[:WEIGHT].  A typed Cmdliner
   converter, so a malformed spec is a one-line argument error instead of
   an uncaught exception. *)
type tenant_spec = {
  ts_name : string;
  ts_algo : string;
  ts_lo : int;
  ts_hi : int;
  ts_weight : float option;
}

let tenant_conv =
  let parse spec =
    let bad what field =
      Error
        (`Msg
           (Printf.sprintf "tenant spec %S: %s %S is not a number" spec what
              field))
    in
    let int_field what s k =
      match int_of_string_opt s with Some v -> k v | None -> bad what s
    in
    match String.split_on_char ':' spec with
    | [ name; algo; lo; hi ] ->
      int_field "rank bound" lo (fun ts_lo ->
          int_field "rank bound" hi (fun ts_hi ->
              Ok { ts_name = name; ts_algo = algo; ts_lo; ts_hi; ts_weight = None }))
    | [ name; algo; lo; hi; w ] ->
      int_field "rank bound" lo (fun ts_lo ->
          int_field "rank bound" hi (fun ts_hi ->
              match float_of_string_opt w with
              | None -> bad "weight" w
              | Some weight ->
                Ok
                  {
                    ts_name = name;
                    ts_algo = algo;
                    ts_lo;
                    ts_hi;
                    ts_weight = Some weight;
                  }))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad tenant spec %S (expected NAME:ALGO:LO:HI[:WEIGHT])" spec))
  in
  let print ppf ts =
    Format.fprintf ppf "%s:%s:%d:%d%s" ts.ts_name ts.ts_algo ts.ts_lo ts.ts_hi
      (match ts.ts_weight with
      | None -> ""
      | Some w -> Printf.sprintf ":%g" w)
  in
  Arg.conv (parse, print)

let tenant_of_spec idx ts =
  Qvisor.Tenant.make ~algorithm:ts.ts_algo ~rank_lo:ts.ts_lo ~rank_hi:ts.ts_hi
    ?weight:ts.ts_weight ~id:idx ~name:ts.ts_name ()

let tenants_arg =
  let doc = "Tenant spec NAME:ALGO:LO:HI[:WEIGHT]; repeatable." in
  Arg.(
    value & opt_all tenant_conv [] & info [ "tenant"; "t" ] ~docv:"TENANT" ~doc)

let spec_file_arg =
  let doc =
    "Read the tenants and policy from a JSON spec file (the format \
     emitted under \"spec\" by `plan --json`); overrides --tenant/--policy."
  in
  Arg.(value & opt (some string) None & info [ "spec-file" ] ~docv:"FILE" ~doc)

(* Resolve the (tenants, policy) inputs from either a spec file or the
   command-line flags. *)
let resolve_spec spec_file tenant_specs policy_str =
  match spec_file with
  | Some path -> (
    let contents =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error e ->
        Format.eprintf "cannot read %s: %s@." path e;
        exit 1
    in
    match Engine.Json.of_string contents with
    | Error e ->
      Format.eprintf "json error in %s: %s@." path e;
      exit 1
    | Ok json -> (
      match Qvisor.Serialize.spec_of_json json with
      | Ok spec -> spec
      | Error e ->
        Format.eprintf "spec error in %s: %s@." path (Qvisor.Error.to_string e);
        exit 1))
  | None ->
    if tenant_specs = [] then begin
      Format.eprintf "no tenants: pass --tenant or --spec-file@.";
      exit 1
    end;
    let policy_str =
      match policy_str with
      | Some s -> s
      | None ->
        Format.eprintf "no policy: pass --policy or --spec-file@.";
        exit 1
    in
    let tenants = List.mapi tenant_of_spec tenant_specs in
    let policy =
      match Qvisor.Policy.parse policy_str with
      | Ok p -> p
      | Error e ->
        Format.eprintf "policy error: %s@." (Qvisor.Error.to_string e);
        exit 1
    in
    (tenants, policy)

let policy_arg =
  let doc = "Operator policy, e.g. 'T1 >> T2 + T3'." in
  Arg.(value & opt (some string) None & info [ "policy"; "p" ] ~docv:"POLICY" ~doc)

let queues_arg =
  let doc = "Also derive a strict-priority queue mapping for this many queues." in
  Arg.(value & opt (some int) None & info [ "queues"; "q" ] ~docv:"N" ~doc)

let levels_arg =
  let doc = "Quantization levels per tenant." in
  Arg.(value & opt (some int) None & info [ "levels" ] ~docv:"L" ~doc)

let json_arg =
  let doc = "Emit the plan and analysis as JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let pipeline_arg =
  let doc =
    "Also compile the plan to a match-action pipeline (multiply-shift-add      actions) and print the table with its worst-case rank error."
  in
  Arg.(value & flag & info [ "pipeline" ] ~doc)

let telemetry_arg =
  let doc =
    "Dry-run the synthesized pre-processor over each tenant's declared rank \
     range (plus one unknown-tenant packet) and report the telemetry \
     registry: match-table vs fallback hit counts and the live \
     rank-approximation error distribution."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let trace_arg =
  let doc =
    "With --telemetry, write the dry-run's per-packet \"preprocess\" events \
     to $(docv) as NDJSON (the \"t\" field is the packet index — there is \
     no simulation clock in the control plane)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_sample_arg =
  let doc = "Probability that a dry-run event is recorded in the trace." in
  Arg.(value & opt float 1.0 & info [ "trace-sample" ] ~docv:"RATE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the telemetry dry run (floor 1; default: the \
     machine's recommended domain count minus one)."
  in
  Arg.(
    value
    & opt int (Engine.Parallel.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let profile_arg =
  let doc =
    "Write a span profile of the run to $(docv) as Chrome trace-event JSON \
     (load in Perfetto or chrome://tracing); a sorted self/total-time table \
     is printed to stderr.  The profiled span structure is identical for \
     any --jobs value."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let make_profiler profile =
  match profile with
  | Some _ -> Engine.Span.create ()
  | None -> Engine.Span.disabled

let write_profile profile profiler =
  match profile with
  | None -> ()
  | Some path ->
    (try
       Out_channel.with_open_text path (fun oc ->
           Engine.Span.write_chrome profiler oc)
     with Sys_error e ->
       Format.eprintf "cannot write profile: %s@." e;
       exit 1);
    Format.eprintf "%a@." Engine.Span.pp_table profiler;
    Format.eprintf "wrote %s@." path

(* Cap the per-tenant label sweep so wide rank ranges stay cheap. *)
let max_sweep_labels = 4096

(* One dry-run partition: a contiguous slice of the packet sequence that
   can run on its own domain with its own registry.  Sequence offsets are
   precomputed from the tenants' declared ranges, so the trace's "t"
   field (the packet index) is identical for any worker count. *)
type dry_run_part = {
  part_index : int;
  seq_offset : int;
  shots : (int * int) list;  (* (tenant id, raw label) *)
}

let dry_run_parts tenants =
  let max_id =
    List.fold_left (fun m t -> Stdlib.max m t.Qvisor.Tenant.id) (-1) tenants
  in
  let parts_rev, next_index, next_seq =
    List.fold_left
      (fun (parts, index, seq) t ->
        let lo = t.Qvisor.Tenant.rank_lo and hi = t.Qvisor.Tenant.rank_hi in
        let stride = Stdlib.max 1 ((hi - lo + 1) / max_sweep_labels) in
        let shots = ref [] in
        let label = ref lo in
        while !label <= hi do
          shots := (t.Qvisor.Tenant.id, !label) :: !shots;
          label := !label + stride
        done;
        let shots = List.rev !shots in
        ( { part_index = index; seq_offset = seq; shots } :: parts,
          index + 1,
          seq + List.length shots ))
      ([], 0, 0) tenants
  in
  (* One packet from a tenant the plan does not know: the fallback path. *)
  let fallback =
    { part_index = next_index; seq_offset = next_seq; shots = [ (max_id + 1, 0) ] }
  in
  List.rev (fallback :: parts_rev)

(* Runs on a worker domain: a private registry, a private pre-processor
   over the shared (immutable) plan, and — when tracing — a private sink
   on a temp file whose sampler is seeded from the partition index.  When
   profiling, the part also carries a private span profiler, merged back
   in partition order. *)
let run_dry_run_part ~plan ~trace ~trace_sample ~profiled part =
  let prof = if profiled then Engine.Span.create () else Engine.Span.disabled in
  Engine.Span.with_ prof ~name:"plan.dry_run_part" @@ fun () ->
  let tel = Engine.Telemetry.create () in
  let sink =
    match trace with
    | None -> None
    | Some _ ->
      let path, oc = Filename.open_temp_file "qvisor-trace" ".ndjson" in
      Engine.Telemetry.attach_sink tel ~sample:trace_sample
        ~seed:(Engine.Rng.derive ~seed:0 part.part_index)
        oc;
      Some (path, oc)
  in
  let pre = Qvisor.Preprocessor.of_plan ~profiler:prof ~telemetry:tel plan in
  List.iteri
    (fun i (tenant, label) ->
      let p = Sched.Packet.make ~tenant ~rank:label ~flow:0 ~size:1500 () in
      Qvisor.Preprocessor.process pre p;
      if Engine.Telemetry.tracing tel then
        Engine.Telemetry.event tel
          ~time:(float_of_int (part.seq_offset + i))
          ~kind:"preprocess" ~tenant ~uid:p.Sched.Packet.uid
          ~rank_before:p.Sched.Packet.label ~rank:p.Sched.Packet.rank ())
    part.shots;
  (tel, sink, prof)

let plan_cmd =
  let run tenant_specs policy_str queues levels json spec_file pipeline
      telemetry trace trace_sample jobs profile =
    let tenants, policy = resolve_spec spec_file tenant_specs policy_str in
    let config = { Qvisor.Synthesizer.default_config with levels } in
    let profiler = make_profiler profile in
    (* Exercise the pre-processor and return its registry snapshot (None
       when telemetry is off). *)
    if trace_sample < 0. || trace_sample > 1. then begin
      Format.eprintf "--trace-sample must be within [0,1] (got %g)@."
        trace_sample;
      exit 1
    end;
    let run_telemetry plan =
      if (not telemetry) && trace = None then None
      else begin
        (* Fan the per-tenant label sweeps out over worker domains; every
           partition has its own registry (and trace temp file), merged
           back in partition order so the snapshot and the trace are
           identical for any --jobs value. *)
        let parts = dry_run_parts tenants in
        let results =
          Engine.Parallel.map ~jobs:(max 1 jobs)
            (run_dry_run_part ~plan ~trace ~trace_sample
               ~profiled:(Engine.Span.is_enabled profiler))
            parts
        in
        let merged = Engine.Telemetry.create () in
        let final =
          match trace with
          | None -> None
          | Some path ->
            let oc =
              try open_out path
              with Sys_error e ->
                Format.eprintf "cannot write trace: %s@." e;
                exit 1
            in
            Engine.Telemetry.attach_sink merged ~sample:trace_sample oc;
            Some (path, oc)
        in
        List.iteri
          (fun i (tel, sink, prof) ->
            Engine.Telemetry.merge_into ~into:merged tel;
            Engine.Span.merge_into ~into:profiler ~tid:(i + 1) prof;
            match (sink, final) with
            | Some (tmp, tmp_oc), Some (_, oc) ->
              Engine.Telemetry.detach_sink tel;
              close_out tmp_oc;
              let ic = open_in_bin tmp in
              let len = in_channel_length ic in
              output_string oc (really_input_string ic len);
              close_in ic;
              Sys.remove tmp
            | Some (tmp, tmp_oc), None ->
              Engine.Telemetry.detach_sink tel;
              close_out tmp_oc;
              Sys.remove tmp
            | None, _ -> ())
          results;
        (* Snapshot before detaching so the trace stats are included. *)
        let snap = Engine.Telemetry.snapshot merged in
        (match final with
        | None -> ()
        | Some (path, oc) ->
          Engine.Telemetry.detach_sink merged;
          close_out oc;
          Format.eprintf "wrote %s@." path);
        Some snap
      end
    in
    match Qvisor.Synthesizer.synthesize ~profiler ~config ~tenants ~policy () with
    | Error e ->
      Format.eprintf "synthesis error: %s@." (Qvisor.Error.to_string e);
      exit 1
    | Ok plan when json ->
      let report = Qvisor.Analysis.check plan in
      let telemetry_fields =
        match run_telemetry plan with
        | None -> []
        | Some snap -> [ ("telemetry", snap) ]
      in
      let payload =
        Engine.Json.Obj
          ([
             ("spec", Qvisor.Serialize.spec_to_json ~tenants ~policy);
             ("plan", Qvisor.Serialize.plan_to_json plan);
             ("analysis", Qvisor.Serialize.report_to_json report);
           ]
          @ telemetry_fields)
      in
      print_endline (Engine.Json.to_string ~pretty:true payload);
      write_profile profile profiler;
      if not report.Qvisor.Analysis.feasible then exit 2
    | Ok plan ->
      Format.printf "%a@.@." Qvisor.Synthesizer.pp_plan plan;
      let report = Qvisor.Analysis.check plan in
      Format.printf "%a@.@." Qvisor.Analysis.pp_report report;
      (match Qvisor.Analysis.starvation_risk plan with
      | [] -> Format.printf "starvation risk: none@."
      | at_risk ->
        Format.printf "starvation risk (by design of >>): %s@."
          (String.concat ", "
             (List.map (fun t -> t.Qvisor.Tenant.name) at_risk)));
      (match queues with
      | None -> ()
      | Some n -> (
        match Qvisor.Deploy.queue_bounds_of_plan ~plan ~num_queues:n with
        | Error e ->
          Format.eprintf "queue mapping error: %s@." (Qvisor.Error.to_string e);
          exit 1
        | Ok bounds ->
          Format.printf "@.queue mapping (%d strict-priority queues):@." n;
          Array.iteri
            (fun i b ->
              let lo =
                if i = 0 then plan.Qvisor.Synthesizer.rank_lo
                else bounds.(i - 1) + 1
              in
              Format.printf "  queue %d: ranks [%d, %d]@." i lo b)
            bounds));
      (if pipeline then
         match Qvisor.Pipeline.compile plan with
         | Ok program ->
           Format.printf "@.%a@." Qvisor.Pipeline.pp_program program
         | Error e -> Format.printf "@.pipeline compilation failed: %s@." e);
      (match run_telemetry plan with
      | None -> ()
      | Some snap ->
        if telemetry then
          Format.printf "@.telemetry:@.%s@."
            (Engine.Json.to_string ~pretty:true snap));
      write_profile profile profiler;
      if not report.Qvisor.Analysis.feasible then exit 2
  in
  let doc = "Synthesize a joint scheduling plan and analyze its guarantees." in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(
      const run $ tenants_arg $ policy_arg $ queues_arg $ levels_arg $ json_arg
      $ spec_file_arg $ pipeline_arg $ telemetry_arg $ trace_arg
      $ trace_sample_arg $ jobs_arg $ profile_arg)

let fit_cmd =
  let queues_required =
    let doc = "Strict-priority queues available on the target switch." in
    Arg.(required & opt (some int) None & info [ "queues"; "q" ] ~docv:"N" ~doc)
  in
  let run tenant_specs policy_str num_queues spec_file =
    let tenants, policy = resolve_spec spec_file tenant_specs policy_str in
    let resources = { Qvisor.Search.num_queues; queue_capacity_pkts = 64 } in
    match Qvisor.Search.fit ~tenants ~policy ~resources () with
    | Error e ->
      Format.eprintf "fit error: %s@." (Qvisor.Error.to_string e);
      exit 1
    | Ok proposal ->
      Format.printf "%a@." Qvisor.Search.pp_proposal proposal;
      if not proposal.Qvisor.Search.exact_fit then exit 3
  in
  let doc =
    "Fit a policy onto limited scheduler resources, proposing the closest \
     deployable relaxation (exit 3 when guarantees had to be weakened)."
  in
  Cmd.v (Cmd.info "fit" ~doc)
    Term.(const run $ tenants_arg $ policy_arg $ queues_required $ spec_file_arg)

let check_cmd =
  let run policy_str =
    let policy_str =
      match policy_str with
      | Some s -> s
      | None ->
        Format.eprintf "no policy: pass --policy@.";
        exit 1
    in
    match Qvisor.Policy.parse policy_str with
    | Ok p ->
      Format.printf "ok: %s@." (Qvisor.Policy.to_string p);
      Format.printf "tenants: %s@."
        (String.concat ", " (Qvisor.Policy.tenant_names p));
      Format.printf "strict tiers: %d@." (List.length (Qvisor.Policy.strict_tiers p))
    | Error e ->
      Format.eprintf "parse error: %s@." (Qvisor.Error.to_string e);
      exit 1
  in
  let doc =
    "Statically parse and echo an operator policy (syntax only). To verify \
     that deployed backends actually $(i,behave) according to a policy, use \
     the $(b,conformance) command, which replays generated workloads against \
     an ideal-PIFO oracle."
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ policy_arg)

(* ------------------------------------------------------------------ *)
(* conformance: seeded differential fuzzing against the ideal oracle  *)
(* ------------------------------------------------------------------ *)

let fault_conv =
  let parse s =
    match Conformance.Fault.of_string s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg e)
  in
  let print ppf f = Format.pp_print_string ppf (Conformance.Fault.to_string f) in
  Arg.conv (parse, print)

let conformance_cmd =
  let seed_arg =
    let doc = "Root seed; case $(i,i) uses the derived seed for (SEED, i)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let cases_arg =
    let doc = "Number of generated scenarios to verify." in
    Arg.(value & opt int 200 & info [ "cases"; "n" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains verifying cases in parallel (floor 1; results are \
       identical for any value)."
    in
    Arg.(
      value
      & opt int (Engine.Parallel.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let replay_arg =
    let doc =
      "Replay a serialized reproducer (written by a failing run) through \
       every backend instead of fuzzing; prints per-backend verdicts and \
       per-edge policy violations."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let inject_arg =
    let doc =
      "Also verify a deliberately broken backend (one of: lifo-ties, \
       drop-newest) — an end-to-end check that the oracle catches bugs and \
       the shrinker minimizes them."
    in
    Arg.(
      value & opt (some fault_conv) None & info [ "inject" ] ~docv:"FAULT" ~doc)
  in
  let repro_arg =
    let doc = "Where to write the shrunk reproducer of the first failure." in
    Arg.(
      value
      & opt string "conformance-repro.json"
      & info [ "repro" ] ~docv:"FILE" ~doc)
  in
  let metrics_out_arg =
    let doc =
      "Write the fuzz run's telemetry (cases, events, divergences, \
       per-backend inversion counters) to $(docv) as Prometheus text \
       exposition — written even when the run fails, so a CI scrape sees \
       the divergence counters."
    in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let backends_for inject =
    Conformance.Differential.standard_backends ()
    @
    match inject with
    | None -> []
    | Some fault -> [ Conformance.Differential.faulty_backend fault ]
  in
  let read_scenario path =
    let contents =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error e ->
        Format.eprintf "cannot read %s: %s@." path e;
        exit 1
    in
    match Engine.Json.of_string contents with
    | Error e ->
      Format.eprintf "json error in %s: %s@." path e;
      exit 1
    | Ok json -> (
      match Conformance.Scenario.of_json json with
      | Ok sc -> sc
      | Error e ->
        Format.eprintf "reproducer error in %s: %s@." path
          (Qvisor.Error.to_string e);
        exit 1)
  in
  let run_replay backends path =
    let sc = read_scenario path in
    Format.printf "replaying %s@.  %a@.@." path Conformance.Scenario.pp sc;
    match Conformance.Differential.run_scenario ~backends sc with
    | Error e ->
      Format.eprintf "replay error: %s@." (Qvisor.Error.to_string e);
      exit 1
    | Ok (oracle, replays) ->
      Format.printf "oracle: %d served, %d dropped, %d left queued@.@."
        (List.length oracle.Conformance.Oracle.served)
        (List.length oracle.Conformance.Oracle.dropped)
        (List.length oracle.Conformance.Oracle.remaining);
      let exact_failed = ref false in
      List.iter
        (fun ((spec, rep, verdict) :
               Conformance.Differential.backend_spec
               * Conformance.Differential.replay
               * Conformance.Differential.verdict) ->
          let open Conformance.Differential in
          Format.printf "%-14s %s@." spec.bname
            (if verdict.matches then "matches oracle"
             else
               Printf.sprintf "DIVERGES: %s"
                 (Option.value verdict.divergence ~default:"?"));
          if spec.expect_exact && not verdict.matches then exact_failed := true;
          if not verdict.matches then begin
            Format.printf
              "  inversions %d/%d dequeues (magnitude sum %d, max %d)@."
              rep.inversions rep.dequeues rep.magnitude_sum rep.magnitude_max;
            List.iter
              (fun ((hi, lo), count) ->
                if count > 0 then
                  Format.printf "  strict-edge violation  %s >> %s: %d@." hi lo
                    count)
              rep.violations
          end)
        replays;
      if !exact_failed then begin
        Format.eprintf
          "@.FAIL: an exact-guarantee backend diverged from the oracle@.";
        exit 1
      end
  in
  (* Replay the shrunk reproducer once more with a flight recorder armed
     and dump the packet-level story of the divergence next to it. *)
  let dump_flight backend small repro =
    let flight = Filename.remove_extension repro ^ ".flight.ndjson" in
    match Conformance.Scenario.plan small with
    | Error _ -> ()
    | Ok plan -> (
      match
        backend.Conformance.Differential.make ~plan
          ~capacity_pkts:small.Conformance.Scenario.capacity_pkts
      with
      | Error _ -> ()
      | Ok qdisc ->
        let recorder = Engine.Recorder.create () in
        ignore
          (Conformance.Differential.replay ~recorder ~plan ~qdisc small);
        (try
           Out_channel.with_open_text flight (fun oc ->
               Engine.Recorder.dump recorder oc);
           Format.printf
             "  flight recorder: %s (inspect with: qvisor-cli trace query \
              --file %s)@."
             flight flight
         with Sys_error e ->
           Format.eprintf "cannot write flight dump: %s@." e))
  in
  let run_fuzz backends seed cases jobs repro profile metrics_out =
    let profiler = make_profiler profile in
    let tel = Option.map (fun _ -> Engine.Telemetry.create ()) metrics_out in
    let res =
      Conformance.Differential.run_cases ~jobs ~profiler ?telemetry:tel
        ~backends ~seed ~cases ()
    in
    (* Before any failure exit: CI scrapes the divergence counters. *)
    (match (metrics_out, tel) with
    | Some path, Some tel ->
      (* Atomic: a CI scraper racing the writer must never read a
         truncated exposition file. *)
      (try
         Engine.Perf.write_atomic path (fun oc ->
             output_string oc (Engine.Exposition.render tel))
       with Sys_error e ->
         Format.eprintf "cannot write metrics: %s@." e;
         exit 1);
      Format.eprintf "wrote %s@." path
    | _ -> ());
    Format.printf "%a@." Conformance.Differential.pp_run res;
    List.iter
      (fun (i, e) -> Format.eprintf "case %d: synthesis error: %s@." i e)
      res.Conformance.Differential.errors;
    match res.Conformance.Differential.failures with
    | [] ->
      write_profile profile profiler;
      if res.Conformance.Differential.errors <> [] then exit 1;
      Format.printf
        "all %d cases conform: exact backends match the oracle verbatim@."
        cases
    | f :: _ as failures ->
      let open Conformance.Differential in
      Format.printf "@.%d oracle divergence(s) on exact backends; first:@."
        (List.length failures);
      Format.printf "  case %d (seed %d) backend %s@.  %s@." f.case_index
        f.case_seed f.backend f.divergence;
      (* Shrink the first failing case to a committed-size reproducer. *)
      let backend =
        List.find (fun b -> b.bname = f.backend) backends
      in
      let sc = Conformance.Scenario.generate ~seed:f.case_seed in
      let fails = fails_oracle ~backend in
      let small = Conformance.Shrink.minimize ~fails sc in
      let json = Conformance.Scenario.to_json small in
      (try
         Out_channel.with_open_text repro (fun oc ->
             output_string oc (Engine.Json.to_string ~pretty:true json);
             output_char oc '\n')
       with Sys_error e ->
         Format.eprintf "cannot write reproducer: %s@." e);
      Format.printf
        "  shrunk %d events -> %d events (capacity %d); reproducer: %s@."
        (Conformance.Scenario.num_events sc)
        (Conformance.Scenario.num_events small)
        small.Conformance.Scenario.capacity_pkts repro;
      dump_flight backend small repro;
      Format.printf "  replay with: qvisor-cli conformance --replay %s@." repro;
      write_profile profile profiler;
      exit 1
  in
  let run seed cases jobs replay inject repro profile metrics_out =
    if cases <= 0 then begin
      Format.eprintf "--cases must be positive@.";
      exit 1
    end;
    let backends = backends_for inject in
    match replay with
    | Some path -> run_replay backends path
    | None -> run_fuzz backends seed cases (max 1 jobs) repro profile metrics_out
  in
  let doc =
    "Differentially verify scheduler backends against an ideal-PIFO oracle \
     on seeded random scenarios. Unlike $(b,check) (static policy parsing), \
     this is dynamic verification: every case replays a generated \
     multi-tenant workload through the synthesized pre-processor and each \
     deployed backend, requires exact-guarantee backends to match the \
     oracle's dequeue order and drop decisions verbatim, and quantifies \
     approximate backends by inversion rate and per->>-edge policy \
     violations. Failing cases are shrunk to a small JSON reproducer."
  in
  Cmd.v (Cmd.info "conformance" ~doc)
    Term.(
      const run $ seed_arg $ cases_arg $ jobs_arg $ replay_arg $ inject_arg
      $ repro_arg $ profile_arg $ metrics_out_arg)

(* ------------------------------------------------------------------ *)
(* metrics: Prometheus text exposition of a control-plane dry run     *)
(* ------------------------------------------------------------------ *)

let metrics_cmd =
  let validate_arg =
    let doc =
      "Parse $(docv) with the strict exposition reader (every sample must \
       belong to a declared $(b,# TYPE) family) and report family/sample \
       counts instead of running anything.  Exits 1 with the offending \
       line number on the first malformed line."
    in
    Arg.(value & opt (some string) None & info [ "validate" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the exposition text to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run_validate path =
    let contents =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error e ->
        Format.eprintf "cannot read %s: %s@." path e;
        exit 1
    in
    match Engine.Exposition.parse contents with
    | Error e ->
      Format.eprintf "%s: %s@." path e;
      exit 1
    | Ok lines ->
      let count p = List.length (List.filter p lines) in
      Format.printf "%s: ok (%d families, %d samples)@." path
        (count (function Engine.Exposition.Type _ -> true | _ -> false))
        (count (function Engine.Exposition.Sample _ -> true | _ -> false))
  in
  let run tenant_specs policy_str levels spec_file jobs validate out =
    match validate with
    | Some path -> run_validate path
    | None -> (
      let tenants, policy = resolve_spec spec_file tenant_specs policy_str in
      let config = { Qvisor.Synthesizer.default_config with levels } in
      match Qvisor.Synthesizer.synthesize ~config ~tenants ~policy () with
      | Error e ->
        Format.eprintf "synthesis error: %s@." (Qvisor.Error.to_string e);
        exit 1
      | Ok plan ->
        (* Same partitioned dry run as `plan --telemetry`, rendered as
           exposition text instead of a JSON snapshot. *)
        let results =
          Engine.Parallel.map ~jobs:(max 1 jobs)
            (run_dry_run_part ~plan ~trace:None ~trace_sample:1.0
               ~profiled:false)
            (dry_run_parts tenants)
        in
        let merged = Engine.Telemetry.create () in
        List.iter
          (fun (tel, _, _) -> Engine.Telemetry.merge_into ~into:merged tel)
          results;
        let text =
          Engine.Exposition.render
            ~tenant_names:
              (List.map
                 (fun t -> (t.Qvisor.Tenant.id, t.Qvisor.Tenant.name))
                 tenants)
            merged
        in
        (match out with
        | None -> print_string text
        | Some path ->
          (try Engine.Perf.write_atomic path (fun oc -> output_string oc text)
           with Sys_error e ->
             Format.eprintf "cannot write metrics: %s@." e;
             exit 1);
          Format.eprintf "wrote %s@." path))
  in
  let doc =
    "Render a pre-processor dry run as Prometheus text exposition (or, with \
     $(b,--validate), strictly parse an existing exposition file such as an \
     experiment runner's --metrics-out output)."
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const run $ tenants_arg $ policy_arg $ levels_arg $ spec_file_arg
      $ jobs_arg $ validate_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* bench: statistically-gated comparison of benchmark reports         *)
(* ------------------------------------------------------------------ *)

let bench_cmd =
  let old_arg =
    let doc = "Baseline benchmark report (a committed BENCH_engine.json)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD" ~doc)
  in
  let new_arg =
    let doc = "Candidate benchmark report to compare against $(i,OLD)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW" ~doc)
  in
  let threshold_arg =
    let doc =
      "Relative regression threshold: a metric regresses when its median \
       worsens by at least this fraction (the boundary counts) $(i,and) the \
       change exceeds the noise band."
    in
    Arg.(
      value & opt Cliopts.pos_float 0.15 & info [ "threshold" ] ~docv:"FRAC" ~doc)
  in
  let noise_k_arg =
    let doc =
      "Noise-band width: a change only gates when its magnitude exceeds \
       $(docv) times the sum of the two trials' median absolute deviations."
    in
    Arg.(value & opt Cliopts.pos_float 3.0 & info [ "noise-k" ] ~docv:"K" ~doc)
  in
  let json_out_arg =
    let doc =
      "Also write the machine-readable verdict (schema qvisor-bench-diff/1) \
       to $(docv); written atomically and even when the diff fails, so CI \
       can upload it from a failing step."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let diff_cmd =
    let run old_file new_file threshold noise_k json_out =
      let read path =
        match Engine.Perf.Bench.read_report path with
        | Ok entries -> entries
        | Error e ->
          Format.eprintf "%s@." e;
          exit 2
      in
      let baseline = read old_file in
      let current = read new_file in
      let report =
        Engine.Perf.Diff.compare ~threshold ~noise_k ~baseline ~current ()
      in
      Format.printf "%a@." Engine.Perf.Diff.pp_report report;
      (match json_out with
      | None -> ()
      | Some path ->
        (try
           Engine.Perf.write_atomic path (fun oc ->
               output_string oc
                 (Engine.Json.to_string ~pretty:true
                    (Engine.Perf.Diff.report_to_json report));
               output_char oc '\n')
         with Sys_error e ->
           Format.eprintf "cannot write verdict: %s@." e;
           exit 2);
        Format.eprintf "wrote %s@." path);
      let n = Engine.Perf.Diff.regressions report in
      if n > 0 then begin
        Format.eprintf "FAIL: %d metric(s) regressed by >= %g%% beyond noise@."
          n (100. *. threshold);
        exit 1
      end
    in
    let doc =
      "Compare two benchmark reports and fail on statistically significant \
       regressions.  Each metric (ns/op and alloc B/op per benchmark) is \
       judged by its median: a regression needs both a relative change of at \
       least --threshold and a magnitude outside the MAD-derived noise band, \
       so trial jitter alone cannot fail a build.  Exits 1 when any metric \
       regresses, 2 when a report cannot be read."
    in
    Cmd.v (Cmd.info "diff" ~doc)
      Term.(
        const run $ old_arg $ new_arg $ threshold_arg $ noise_k_arg
        $ json_out_arg)
  in
  let doc =
    "Benchmark-report tooling (reports are produced by `qvisor-bench -- \
     engine`)."
  in
  Cmd.group (Cmd.info "bench" ~doc) [ diff_cmd ]

(* ------------------------------------------------------------------ *)
(* trace: packet-lineage forensics over NDJSON event files            *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let file_arg =
    let doc =
      "NDJSON event file: a --trace output of $(b,plan)/the experiment \
       runner, or a flight-recorder dump ($(i,*.flight.ndjson))."
    in
    Arg.(
      required & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc)
  in
  let uid_arg =
    let doc = "Select one packet by uid (the scenario sid in conformance dumps)." in
    Arg.(value & opt (some int) None & info [ "uid" ] ~docv:"UID" ~doc)
  in
  let flow_arg =
    let doc = "Select all packets of a flow." in
    Arg.(value & opt (some int) None & info [ "flow" ] ~docv:"FLOW" ~doc)
  in
  let tenant_arg =
    let doc = "Select all packets of a tenant." in
    Arg.(value & opt (some int) None & info [ "tenant" ] ~docv:"TENANT" ~doc)
  in
  let query_cmd =
    let run file uid flow tenant =
      match Engine.Lineage.load_file file with
      | Error e ->
        Format.eprintf "%s: %s@." file e;
        exit 1
      | Ok events -> (
        match Engine.Lineage.lineage ?uid ?flow ?tenant events with
        | [] ->
          Format.printf "no events match (%d in file)@." (List.length events)
        | selected -> Format.printf "%a@." Engine.Lineage.pp_lineage selected)
    in
    let doc =
      "Join an NDJSON trace or flight-recorder dump by packet uid, flow, or \
       tenant and print each matching packet's stage-by-stage rank journey \
       (preprocess, enqueue, dequeue, drop, evict)."
    in
    Cmd.v (Cmd.info "query" ~doc)
      Term.(const run $ file_arg $ uid_arg $ flow_arg $ tenant_arg)
  in
  let doc =
    "Packet-lineage forensics over the NDJSON events written by telemetry \
     trace sinks and flight-recorder dumps."
  in
  Cmd.group (Cmd.info "trace" ~doc) [ query_cmd ]

(* ------------------------------------------------------------------ *)
(* serve: the long-running scheduling-hypervisor daemon               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let socket_arg =
    let doc = "Unix-domain control socket path (unlinked and re-bound)." in
    Arg.(value & opt string "qvisor.sock" & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let http_arg =
    let doc =
      "TCP port for $(b,GET /metrics) and $(b,/healthz) on 127.0.0.1 \
       ($(b,0) picks an ephemeral port, printed on startup)."
    in
    Arg.(value & opt int 0 & info [ "http" ] ~docv:"PORT" ~doc)
  in
  let seed_arg =
    let doc = "Root seed for the daemon's per-tenant traffic generators." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let load_arg =
    let doc = "Per-tenant offered load on the access capacity." in
    Arg.(value & opt Cliopts.pos_float 0.3 & info [ "load" ] ~docv:"LOAD" ~doc)
  in
  let slice_arg =
    let doc =
      "Simulated time served per event-loop iteration (e.g. 10ms, 1s)."
    in
    Arg.(
      value & opt Cliopts.duration 0.01 & info [ "slice" ] ~docv:"DURATION" ~doc)
  in
  let cooldown_arg =
    let doc =
      "Base cooldown between remediation attempts for one tenant; each \
       further attempt backs off exponentially (e.g. 500ms, 5s, 1m)."
    in
    Arg.(
      value
      & opt Cliopts.duration
          Daemon.Remediation.default_config.Daemon.Remediation.cooldown
      & info [ "remediation-cooldown" ] ~docv:"DURATION" ~doc)
  in
  let drain_arg =
    let doc =
      "Simulated time granted to in-flight flows at shutdown (e.g. 500ms)."
    in
    Arg.(
      value
      & opt Cliopts.duration 0.5
      & info [ "drain-timeout" ] ~docv:"DURATION" ~doc)
  in
  let alerts_arg =
    let doc =
      "Write the health machine's NDJSON alert stream (one line per \
       per-tenant state transition) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "alerts" ] ~docv:"FILE" ~doc)
  in
  let audit_arg =
    let doc =
      "Write the remediation audit log (one NDJSON line per guarded \
       resynthesis attempt) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "audit" ] ~docv:"FILE" ~doc)
  in
  let inject_serve_arg =
    let doc =
      "Replace every port's queue discipline with a deliberately broken one \
       (lifo-ties | drop-newest) — the fault that drives the SLO auditor to \
       Violating and exercises auto-remediation end to end."
    in
    Arg.(
      value & opt (some fault_conv) None & info [ "inject" ] ~docv:"FAULT" ~doc)
  in
  let pace_arg =
    let doc =
      "Pace the slice loop to the wall clock (one simulated second per real \
       second) instead of free-running; waiting happens inside the socket \
       poll, so the control plane stays live."
    in
    Arg.(value & flag & info [ "pace" ] ~doc)
  in
  let snapshot_arg =
    let doc =
      "Simulated time between retention-store snapshots of the live registry \
       (e.g. 1s, 500ms) — the resolution floor of $(b,GET /query)."
    in
    Arg.(
      value
      & opt Cliopts.duration 1.0
      & info [ "snapshot-interval" ] ~docv:"DURATION" ~doc)
  in
  let run tenant_specs policy_str levels spec_file socket_path http_port seed
      load slice cooldown drain_timeout alerts audit inject pace
      snapshot_interval =
    let default = Daemon.Server.default_config in
    let tenants, policy =
      (* Unlike the one-shot commands, serving something is more useful
         than erroring out: with no spec at all, serve the paper's two
         default tenants. *)
      if spec_file = None && tenant_specs = [] && policy_str = None then
        (default.Daemon.Server.tenants, default.Daemon.Server.policy)
      else resolve_spec spec_file tenant_specs policy_str
    in
    let open_sink =
      Option.map (fun path ->
          try open_out path
          with Sys_error e ->
            Format.eprintf "cannot write %s: %s@." path e;
            exit 1)
    in
    let alerts_oc = open_sink alerts in
    let audit_oc = open_sink audit in
    let config =
      {
        default with
        Daemon.Server.socket_path;
        http_port;
        tenants;
        policy;
        levels;
        seed;
        load;
        slice;
        drain_timeout;
        remediation =
          {
            Daemon.Remediation.default_config with
            Daemon.Remediation.cooldown;
          };
        alerts = alerts_oc;
        audit = audit_oc;
        inject_qdisc = Option.map Conformance.Fault.qdisc inject;
        pace;
        snapshot_interval;
      }
    in
    match Daemon.Server.create config with
    | Error e ->
      Format.eprintf "cannot start daemon: %s@." (Qvisor.Error.to_string e);
      exit 1
    | Ok server ->
      (* SIGINT/SIGTERM stop the loop; serve's own epilogue then drains
         in-flight flows, flushes the sinks, and unlinks the socket. *)
      Cliopts.on_signal (fun _ -> Daemon.Server.stop server);
      Format.printf "control socket: %s@." socket_path;
      Format.printf "metrics: http://127.0.0.1:%d/metrics@."
        (Daemon.Server.http_port server);
      Format.print_flush ();
      Daemon.Server.serve server;
      List.iter
        (fun (oc, path) ->
          match (oc, path) with
          | Some oc, Some path ->
            close_out oc;
            Format.eprintf "wrote %s@." path
          | _ -> ())
        [ (alerts_oc, alerts); (audit_oc, audit) ]
  in
  let doc =
    "Run the scheduling hypervisor as a persistent daemon: continuous \
     multi-tenant traffic through the synthesized plan, a line-oriented \
     JSON control socket (tenant-add | tenant-remove | policy-update | \
     status | drain | shutdown), a live Prometheus scrape surface, and \
     SLO-driven auto-remediation (observed-range refresh, then \
     quantization coarsening) for violating tenants."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ tenants_arg $ policy_arg $ levels_arg $ spec_file_arg
      $ socket_arg $ http_arg $ seed_arg $ load_arg $ slice_arg $ cooldown_arg
      $ drain_arg $ alerts_arg $ audit_arg $ inject_serve_arg $ pace_arg
      $ snapshot_arg)

(* ------------------------------------------------------------------ *)
(* top / report: live dashboard and incident post-mortem over /query  *)
(* ------------------------------------------------------------------ *)

let dash_http_arg =
  let doc = "HTTP port of the running $(b,qvisor-cli serve) daemon." in
  Arg.(value & opt int 9109 & info [ "http" ] ~docv:"PORT" ~doc)

let dash_host_arg =
  let doc = "Daemon host." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let dash_window_arg =
  let doc = "History window to query (e.g. 60s, 5m)." in
  Arg.(
    value & opt Cliopts.duration 60. & info [ "window" ] ~docv:"DURATION" ~doc)

let dash_series_arg =
  let doc =
    "Series selection pattern ($(b,*) is a wildcard), e.g. \
     $(b,net.tenant.*)."
  in
  Arg.(value & opt string "*" & info [ "series" ] ~docv:"PATTERN" ~doc)

let dash_query ~window ~series ~step =
  let encode s =
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' | '*' ->
             String.make 1 c
           | c -> Printf.sprintf "%%%02X" (Char.code c))
         (List.init (String.length s) (String.get s)))
  in
  Printf.sprintf "start=-%g&series=%s%s" window (encode series)
    (match step with None -> "" | Some s -> Printf.sprintf "&step=%g" s)

let top_cmd =
  let once_arg =
    let doc = "Render a single frame and exit (no ANSI screen clearing)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let interval_arg =
    let doc = "Wall-clock refresh interval in live mode (e.g. 2s)." in
    Arg.(
      value & opt Cliopts.duration 2. & info [ "interval" ] ~docv:"DURATION" ~doc)
  in
  let color_arg =
    let doc = "Force ANSI colors on ($(b,always)) or off ($(b,never))." in
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("always", `Always); ("never", `Never) ])
          `Auto
      & info [ "color" ] ~docv:"WHEN" ~doc)
  in
  let run host port window series once interval color =
    let color =
      match color with
      | `Always -> true
      | `Never -> false
      | `Auto -> (not once) && Unix.isatty Unix.stdout
    in
    let query = dash_query ~window ~series ~step:None in
    let frame () =
      match Daemon.Dash.fetch ~host ~port ~query () with
      | Error e ->
        Format.eprintf "top: %s@." e;
        exit 1
      | Ok data -> Daemon.Dash.render_top ~color data
    in
    if once then print_string (frame ())
    else begin
      let running = ref true in
      Cliopts.on_signal (fun _ -> running := false);
      while !running do
        let body = frame () in
        (* Clear + home, draw the frame atomically to cut flicker. *)
        print_string ("\027[2J\027[H" ^ body);
        flush stdout;
        Unix.sleepf interval
      done;
      print_newline ()
    end
  in
  let doc =
    "Live terminal dashboard over a running daemon's $(b,GET /query) range \
     API: per-tenant throughput / drop / delay-p99 / burn-rate sparklines \
     with health badges and recent incident annotations."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run $ dash_host_arg $ dash_http_arg $ dash_window_arg
      $ dash_series_arg $ once_arg $ interval_arg $ color_arg)

let report_cmd =
  let top_n_arg =
    let doc = "Ranked movers to keep per incident." in
    Arg.(value & opt Cliopts.pos_int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let report_window_arg =
    let doc = "History window to post-mortem (e.g. 10m; default: all 4h)." in
    Arg.(
      value
      & opt Cliopts.duration 14400.
      & info [ "window" ] ~docv:"DURATION" ~doc)
  in
  let run host port window series top_n =
    let query = dash_query ~window ~series ~step:None in
    match Daemon.Dash.fetch ~host ~port ~query () with
    | Error e ->
      Format.eprintf "report: %s@." e;
      exit 1
    | Ok data -> print_string (Daemon.Dash.render_report ~top_n data)
  in
  let doc =
    "Incident post-mortem from a running daemon's retention store: for each \
     annotation (health transition, remediation attempt, drop spike) in the \
     window, the before/after deltas of every series that moved, ranked by \
     relative change."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ dash_host_arg $ dash_http_arg $ report_window_arg
      $ dash_series_arg $ top_n_arg)

let () =
  let doc = "QVISOR control-plane tools" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "qvisor-cli" ~doc)
          [
            plan_cmd;
            fit_cmd;
            check_cmd;
            conformance_cmd;
            metrics_cmd;
            bench_cmd;
            trace_cmd;
            serve_cmd;
            top_cmd;
            report_cmd;
          ]))
