(* qvisor-cli: synthesize and inspect joint scheduling plans from the
   command line.

   Example:
     qvisor-cli plan --tenant 'T1:pfabric:0:30000' --tenant 'T2:edf:0:100' \
                     --policy 'T1 >> T2' --queues 8
*)

open Cmdliner

(* Tenant spec syntax: NAME:ALGO:LO:HI[:WEIGHT]. *)
let parse_tenant idx spec =
  match String.split_on_char ':' spec with
  | [ name; algo; lo; hi ] ->
    Qvisor.Tenant.make ~algorithm:algo ~rank_lo:(int_of_string lo)
      ~rank_hi:(int_of_string hi) ~id:idx ~name ()
  | [ name; algo; lo; hi; w ] ->
    Qvisor.Tenant.make ~algorithm:algo ~rank_lo:(int_of_string lo)
      ~rank_hi:(int_of_string hi) ~weight:(float_of_string w) ~id:idx ~name ()
  | _ ->
    failwith
      (Printf.sprintf
         "bad tenant spec %S (expected NAME:ALGO:LO:HI[:WEIGHT])" spec)

let tenants_arg =
  let doc = "Tenant spec NAME:ALGO:LO:HI[:WEIGHT]; repeatable." in
  Arg.(value & opt_all string [] & info [ "tenant"; "t" ] ~docv:"TENANT" ~doc)

let spec_file_arg =
  let doc =
    "Read the tenants and policy from a JSON spec file (the format \
     emitted under \"spec\" by `plan --json`); overrides --tenant/--policy."
  in
  Arg.(value & opt (some string) None & info [ "spec-file" ] ~docv:"FILE" ~doc)

(* Resolve the (tenants, policy) inputs from either a spec file or the
   command-line flags. *)
let resolve_spec spec_file tenant_specs policy_str =
  match spec_file with
  | Some path -> (
    let contents =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error e ->
        Format.eprintf "cannot read %s: %s@." path e;
        exit 1
    in
    match Engine.Json.of_string contents with
    | Error e ->
      Format.eprintf "json error in %s: %s@." path e;
      exit 1
    | Ok json -> (
      match Qvisor.Serialize.spec_of_json json with
      | Ok spec -> spec
      | Error e ->
        Format.eprintf "spec error in %s: %s@." path e;
        exit 1))
  | None ->
    if tenant_specs = [] then begin
      Format.eprintf "no tenants: pass --tenant or --spec-file@.";
      exit 1
    end;
    let policy_str =
      match policy_str with
      | Some s -> s
      | None ->
        Format.eprintf "no policy: pass --policy or --spec-file@.";
        exit 1
    in
    let tenants = List.mapi parse_tenant tenant_specs in
    let policy =
      match Qvisor.Policy.parse policy_str with
      | Ok p -> p
      | Error e ->
        Format.eprintf "policy error: %s@." e;
        exit 1
    in
    (tenants, policy)

let policy_arg =
  let doc = "Operator policy, e.g. 'T1 >> T2 + T3'." in
  Arg.(value & opt (some string) None & info [ "policy"; "p" ] ~docv:"POLICY" ~doc)

let queues_arg =
  let doc = "Also derive a strict-priority queue mapping for this many queues." in
  Arg.(value & opt (some int) None & info [ "queues"; "q" ] ~docv:"N" ~doc)

let levels_arg =
  let doc = "Quantization levels per tenant." in
  Arg.(value & opt (some int) None & info [ "levels" ] ~docv:"L" ~doc)

let json_arg =
  let doc = "Emit the plan and analysis as JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let pipeline_arg =
  let doc =
    "Also compile the plan to a match-action pipeline (multiply-shift-add      actions) and print the table with its worst-case rank error."
  in
  Arg.(value & flag & info [ "pipeline" ] ~doc)

let telemetry_arg =
  let doc =
    "Dry-run the synthesized pre-processor over each tenant's declared rank \
     range (plus one unknown-tenant packet) and report the telemetry \
     registry: match-table vs fallback hit counts and the live \
     rank-approximation error distribution."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let trace_arg =
  let doc =
    "With --telemetry, write the dry-run's per-packet \"preprocess\" events \
     to $(docv) as NDJSON (the \"t\" field is the packet index — there is \
     no simulation clock in the control plane)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_sample_arg =
  let doc = "Probability that a dry-run event is recorded in the trace." in
  Arg.(value & opt float 1.0 & info [ "trace-sample" ] ~docv:"RATE" ~doc)

(* Cap the per-tenant label sweep so wide rank ranges stay cheap. *)
let max_sweep_labels = 4096

let telemetry_dry_run tel plan tenants =
  let pre = Qvisor.Preprocessor.of_plan ~telemetry:tel plan in
  let seq = ref 0 in
  let shoot ~tenant ~label =
    let p = Sched.Packet.make ~tenant ~rank:label ~flow:0 ~size:1500 () in
    Qvisor.Preprocessor.process pre p;
    if Engine.Telemetry.tracing tel then
      Engine.Telemetry.event tel
        ~time:(float_of_int !seq)
        ~kind:"preprocess" ~tenant ~rank_before:p.Sched.Packet.label
        ~rank:p.Sched.Packet.rank ();
    incr seq
  in
  let max_id = ref (-1) in
  List.iter
    (fun t ->
      let lo = t.Qvisor.Tenant.rank_lo and hi = t.Qvisor.Tenant.rank_hi in
      if t.Qvisor.Tenant.id > !max_id then max_id := t.Qvisor.Tenant.id;
      let stride = Stdlib.max 1 ((hi - lo + 1) / max_sweep_labels) in
      let label = ref lo in
      while !label <= hi do
        shoot ~tenant:t.Qvisor.Tenant.id ~label:!label;
        label := !label + stride
      done)
    tenants;
  (* One packet from a tenant the plan does not know: the fallback path. *)
  shoot ~tenant:(!max_id + 1) ~label:0

let plan_cmd =
  let run tenant_specs policy_str queues levels json spec_file pipeline
      telemetry trace trace_sample =
    let tenants, policy = resolve_spec spec_file tenant_specs policy_str in
    let config = { Qvisor.Synthesizer.default_config with levels } in
    (* Exercise the pre-processor and return its registry snapshot (None
       when telemetry is off). *)
    if trace_sample < 0. || trace_sample > 1. then begin
      Format.eprintf "--trace-sample must be within [0,1] (got %g)@."
        trace_sample;
      exit 1
    end;
    let run_telemetry plan =
      if (not telemetry) && trace = None then None
      else begin
        let tel = Engine.Telemetry.create () in
        let snap =
          match trace with
          | None ->
            telemetry_dry_run tel plan tenants;
            Engine.Telemetry.snapshot tel
          | Some path ->
            let oc =
              try open_out path
              with Sys_error e ->
                Format.eprintf "cannot write trace: %s@." e;
                exit 1
            in
            Engine.Telemetry.attach_sink tel ~sample:trace_sample oc;
            telemetry_dry_run tel plan tenants;
            (* Snapshot before detaching so the trace stats are included. *)
            let snap = Engine.Telemetry.snapshot tel in
            Engine.Telemetry.detach_sink tel;
            close_out oc;
            Format.eprintf "wrote %s@." path;
            snap
        in
        Some snap
      end
    in
    match Qvisor.Synthesizer.synthesize ~config ~tenants ~policy () with
    | Error e ->
      Format.eprintf "synthesis error: %s@." e;
      exit 1
    | Ok plan when json ->
      let report = Qvisor.Analysis.check plan in
      let telemetry_fields =
        match run_telemetry plan with
        | None -> []
        | Some snap -> [ ("telemetry", snap) ]
      in
      let payload =
        Engine.Json.Obj
          ([
             ("spec", Qvisor.Serialize.spec_to_json ~tenants ~policy);
             ("plan", Qvisor.Serialize.plan_to_json plan);
             ("analysis", Qvisor.Serialize.report_to_json report);
           ]
          @ telemetry_fields)
      in
      print_endline (Engine.Json.to_string ~pretty:true payload);
      if not report.Qvisor.Analysis.feasible then exit 2
    | Ok plan ->
      Format.printf "%a@.@." Qvisor.Synthesizer.pp_plan plan;
      let report = Qvisor.Analysis.check plan in
      Format.printf "%a@.@." Qvisor.Analysis.pp_report report;
      (match Qvisor.Analysis.starvation_risk plan with
      | [] -> Format.printf "starvation risk: none@."
      | at_risk ->
        Format.printf "starvation risk (by design of >>): %s@."
          (String.concat ", "
             (List.map (fun t -> t.Qvisor.Tenant.name) at_risk)));
      (match queues with
      | None -> ()
      | Some n ->
        let bounds = Qvisor.Deploy.queue_bounds_of_plan ~plan ~num_queues:n in
        Format.printf "@.queue mapping (%d strict-priority queues):@." n;
        Array.iteri
          (fun i b ->
            let lo = if i = 0 then plan.Qvisor.Synthesizer.rank_lo else bounds.(i - 1) + 1 in
            Format.printf "  queue %d: ranks [%d, %d]@." i lo b)
          bounds);
      (if pipeline then
         match Qvisor.Pipeline.compile plan with
         | Ok program ->
           Format.printf "@.%a@." Qvisor.Pipeline.pp_program program
         | Error e -> Format.printf "@.pipeline compilation failed: %s@." e);
      (match run_telemetry plan with
      | None -> ()
      | Some snap ->
        if telemetry then
          Format.printf "@.telemetry:@.%s@."
            (Engine.Json.to_string ~pretty:true snap));
      if not report.Qvisor.Analysis.feasible then exit 2
  in
  let doc = "Synthesize a joint scheduling plan and analyze its guarantees." in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(
      const run $ tenants_arg $ policy_arg $ queues_arg $ levels_arg $ json_arg
      $ spec_file_arg $ pipeline_arg $ telemetry_arg $ trace_arg
      $ trace_sample_arg)

let fit_cmd =
  let queues_required =
    let doc = "Strict-priority queues available on the target switch." in
    Arg.(required & opt (some int) None & info [ "queues"; "q" ] ~docv:"N" ~doc)
  in
  let run tenant_specs policy_str num_queues spec_file =
    let tenants, policy = resolve_spec spec_file tenant_specs policy_str in
    let resources = { Qvisor.Search.num_queues; queue_capacity_pkts = 64 } in
    match Qvisor.Search.fit ~tenants ~policy ~resources () with
    | Error e ->
      Format.eprintf "fit error: %s@." e;
      exit 1
    | Ok proposal ->
      Format.printf "%a@." Qvisor.Search.pp_proposal proposal;
      if not proposal.Qvisor.Search.exact_fit then exit 3
  in
  let doc =
    "Fit a policy onto limited scheduler resources, proposing the closest \
     deployable relaxation (exit 3 when guarantees had to be weakened)."
  in
  Cmd.v (Cmd.info "fit" ~doc)
    Term.(const run $ tenants_arg $ policy_arg $ queues_required $ spec_file_arg)

let check_cmd =
  let run policy_str =
    let policy_str =
      match policy_str with
      | Some s -> s
      | None ->
        Format.eprintf "no policy: pass --policy@.";
        exit 1
    in
    match Qvisor.Policy.parse policy_str with
    | Ok p ->
      Format.printf "ok: %s@." (Qvisor.Policy.to_string p);
      Format.printf "tenants: %s@."
        (String.concat ", " (Qvisor.Policy.tenant_names p));
      Format.printf "strict tiers: %d@." (List.length (Qvisor.Policy.strict_tiers p))
    | Error e ->
      Format.eprintf "parse error: %s@." e;
      exit 1
  in
  let doc = "Parse and echo an operator policy." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ policy_arg)

let () =
  let doc = "QVISOR control-plane tools" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "qvisor-cli" ~doc) [ plan_cmd; fit_cmd; check_cmd ]))
