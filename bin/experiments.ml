(* Experiment driver: regenerates every figure of the paper plus the
   ablations documented in DESIGN.md.  See EXPERIMENTS.md for recorded
   outputs. *)

open Cmdliner

(* A typed converter instead of a failwith: bad values produce a one-line
   Cmdliner error plus usage, not a backtrace. *)
let scale_arg =
  let scale_conv =
    Arg.enum
      [
        ("quick", Experiments.Fig4.quick);
        ("default", Experiments.Fig4.default);
        ("paper", Experiments.Fig4.paper_scale);
      ]
  in
  let doc = "Fabric scale: quick (8 hosts), default (24 hosts), paper (144 hosts)." in
  Arg.(
    value
    & opt scale_conv Experiments.Fig4.default
    & info [ "scale" ] ~docv:"SCALE" ~doc)

let seed_arg =
  let doc = "Deterministic seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

(* [Arg.list float] validates each element, so "0.2,oops" is a clean
   argument error instead of an uncaught [float_of_string] failure. *)
let loads_arg =
  let doc = "Comma-separated loads (default: the paper's 0.2..0.8)." in
  Arg.(
    value
    & opt (some (list float)) None
    & info [ "loads" ] ~docv:"LOADS" ~doc)

let parse_loads = function
  | None -> Experiments.Fig4.paper_loads
  | Some loads -> loads

let jobs_arg =
  let doc =
    "Worker domains for parallel runs (floor 1; default: \
     the machine's recommended domain count minus one)."
  in
  Arg.(
    value
    & opt int (Engine.Parallel.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Progress lines can now be emitted from worker domains; serialize them. *)
let progress_mutex = Mutex.create ()

let progress fmt =
  Mutex.lock progress_mutex;
  Format.kfprintf
    (fun ppf ->
      Format.pp_print_flush ppf ();
      Mutex.unlock progress_mutex)
    Format.err_formatter fmt

let or_die = function
  | Ok v -> v
  | Error e ->
    Format.eprintf "error: %s@." (Qvisor.Error.to_string e);
    exit 1

let config_arg =
  let doc = "Load experiment parameters from a key=value config file (see Experiments.Config); --scale is ignored when given." in
  Arg.(value & opt (some string) None & info [ "config" ] ~docv:"FILE" ~doc)

let resolve_params scale config seed =
  match config with
  | None -> { scale with Experiments.Fig4.seed }
  | Some path -> (
    match Experiments.Config.load path with
    | Ok params -> { params with Experiments.Fig4.seed }
    | Error e ->
      Format.eprintf "config error: %s@." e;
      exit 1)

let csv_arg =
  let doc = "Also write the raw series to this CSV file." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

(* --------------------------------------------------------------- *)
(* Telemetry flags (shared by fig4 / single / churn)               *)
(* --------------------------------------------------------------- *)

let telemetry_arg =
  let doc =
    "Enable the metric registry (per-tenant/per-port counters, queue-depth \
     and sojourn histograms, pre-processor hit counts) and print its JSON \
     snapshot on stdout after the results."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let trace_arg =
  let doc =
    "Write a sampled NDJSON packet-event trace (enqueue/dequeue/drop/ \
     preprocess) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_sample_arg =
  let doc =
    "Probability that any given packet event is recorded in the trace \
     (deterministic for a fixed --seed)."
  in
  Arg.(value & opt float 1.0 & info [ "trace-sample" ] ~docv:"RATE" ~doc)

let profile_arg =
  let doc =
    "Write a span profile of the run to $(docv) as Chrome trace-event JSON \
     (load in Perfetto or chrome://tracing); a sorted self/total-time table \
     is printed to stderr.  The profiled span structure is identical for \
     any --jobs value."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let make_profiler profile =
  match profile with
  | Some _ -> Engine.Span.create ()
  | None -> Engine.Span.disabled

let write_profile profile profiler =
  match profile with
  | None -> ()
  | Some path ->
    (try
       Out_channel.with_open_text path (fun oc ->
           Engine.Span.write_chrome profiler oc)
     with Sys_error e ->
       Format.eprintf "cannot write profile: %s@." e;
       exit 1);
    Format.eprintf "%a@." Engine.Span.pp_table profiler;
    progress "wrote %s@." path

let flight_arg =
  let doc =
    "Arm the always-on per-port flight recorders and write an NDJSON dump \
     of the recent packet events of any port whose drop rate spikes \
     (trigger: >= 50% drops over a 128-enqueue window, with cooldown) into \
     $(docv) (created if missing).  Inspect dumps with `qvisor-cli trace \
     query'."
  in
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"DIR" ~doc)

(* Returns the (flight config, on_anomaly hook) pair for Fig4.run plus a
   [finish] closure that reports how many dumps were written. *)
let setup_flight dir =
  match dir with
  | None -> (None, None, fun () -> ())
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let fired = ref 0 in
    let dumped = Hashtbl.create 8 in
    (* One dump per link: a sustained incident keeps re-firing its port's
       trigger every cooldown window, and the first ring snapshot is the
       one that shows the onset — later ones only repeat the steady
       state.  Subsequent fires are counted, not written. *)
    let on_anomaly ~link_id recorder =
      incr fired;
      if not (Hashtbl.mem dumped link_id) then begin
        Hashtbl.add dumped link_id ();
        let path =
          Filename.concat dir (Printf.sprintf "anomaly-link%d.ndjson" link_id)
        in
        Out_channel.with_open_text path (fun oc ->
            Engine.Recorder.dump recorder oc);
        progress "flight recorder: drop-rate anomaly on link %d -> %s@."
          link_id path
      end
    in
    ( Some Netsim.Net.default_flight,
      Some on_anomaly,
      fun () ->
        if !fired = 0 then
          progress "flight recorder: no drop-rate anomalies fired@."
        else
          progress
            "flight recorder: %d anomalies across %d link(s), dumps in %s@."
            !fired (Hashtbl.length dumped) dir )

(* --------------------------------------------------------------- *)
(* Prometheus exposition / SLO flags (fig4 / single / churn)       *)
(* --------------------------------------------------------------- *)

(* The Fig. 4 harness always runs tenant 0 = pfabric, tenant 1 = edf;
   the map turns [net.tenant.0.*] into [{tenant="pfabric"}] labels. *)
let fig4_tenant_names = [ (0, "pfabric"); (1, "edf") ]

let metrics_out_arg =
  let doc =
    "Write the metric registry (plus the SLO burn-rate and health gauges \
     when --slo is on) to $(docv) in Prometheus text exposition format; \
     implies a registry even without --telemetry.  Validate or inspect the \
     file with `qvisor-cli metrics --validate'."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Atomic (temp file + rename): a scraper tailing the file, or a run
   killed mid-write, can never observe a truncated exposition. *)
let write_metrics path tel =
  try
    Engine.Perf.write_atomic path (fun oc ->
        output_string oc
          (Engine.Exposition.render ~tenant_names:fig4_tenant_names tel))
  with Sys_error e ->
    Format.eprintf "cannot write metrics: %s@." e;
    exit 1

let finish_metrics metrics_out tel =
  match (metrics_out, tel) with
  | Some path, Some tel ->
    write_metrics path tel;
    progress "wrote %s@." path
  | _ -> ()

(* Returns the registry to thread through the run (None when all three
   knobs are off) and a [finish] closure that flushes the trace and
   prints the snapshot.  [force] creates a registry even when neither
   --telemetry nor --trace asked for one (the --metrics-out case). *)
let setup_telemetry ?(force = false) ~telemetry ~trace ~trace_sample ~seed () =
  if trace_sample < 0. || trace_sample > 1. then begin
    Format.eprintf "--trace-sample must be within [0,1] (got %g)@."
      trace_sample;
    exit 1
  end;
  if (not telemetry) && trace = None && not force then (None, fun () -> ())
  else begin
    let tel = Engine.Telemetry.create () in
    let close_trace =
      match trace with
      | None -> fun () -> ()
      | Some path ->
        let oc =
          try open_out path
          with Sys_error e ->
            Format.eprintf "cannot write trace: %s@." e;
            exit 1
        in
        Engine.Telemetry.attach_sink tel ~sample:trace_sample ~seed oc;
        fun () ->
          Engine.Telemetry.detach_sink tel;
          close_out oc;
          progress "wrote %s@." path
    in
    ( Some tel,
      fun () ->
        let snap = Engine.Telemetry.snapshot tel in
        close_trace ();
        if telemetry then
          print_endline (Engine.Json.to_string ~pretty:true snap) )
  end

(* Per-job telemetry for the parallel sweep: every job gets a private
   registry (and, under --trace, a private temp sink seeded from the
   job's derived stream); after the join everything is merged in job
   order, so the snapshot and the trace file do not depend on the worker
   count. *)
let setup_job_telemetry ~telemetry ~trace ~trace_sample ~metrics_out
    (grid : Experiments.Fig4.job list) =
  if trace_sample < 0. || trace_sample > 1. then begin
    Format.eprintf "--trace-sample must be within [0,1] (got %g)@."
      trace_sample;
    exit 1
  end;
  if (not telemetry) && trace = None && metrics_out = None then
    ((fun (_ : Experiments.Fig4.job) -> Engine.Telemetry.disabled), fun () -> ())
  else begin
    let slots =
      List.map
        (fun (job : Experiments.Fig4.job) ->
          let tel = Engine.Telemetry.create () in
          let tmp =
            match trace with
            | None -> None
            | Some _ ->
              let path = Filename.temp_file "qvisor-trace" ".ndjson" in
              let oc = open_out path in
              Engine.Telemetry.attach_sink tel ~sample:trace_sample
                ~seed:job.Experiments.Fig4.job_seed oc;
              Some (path, oc)
          in
          (job.Experiments.Fig4.index, tel, tmp))
        grid
    in
    let by_index = Hashtbl.create 64 in
    List.iter (fun (i, tel, _) -> Hashtbl.replace by_index i tel) slots;
    let telemetry_for (job : Experiments.Fig4.job) =
      Hashtbl.find by_index job.Experiments.Fig4.index
    in
    let finish () =
      let merged = Engine.Telemetry.create () in
      let final =
        match trace with
        | None -> None
        | Some path -> (
          match open_out path with
          | oc ->
            Engine.Telemetry.attach_sink merged ~sample:trace_sample oc;
            Some (path, oc)
          | exception Sys_error e ->
            Format.eprintf "cannot write trace: %s@." e;
            exit 1)
      in
      List.iter
        (fun (_, tel, tmp) ->
          Engine.Telemetry.merge_into ~into:merged tel;
          match tmp with
          | None -> ()
          | Some (path, oc) ->
            Engine.Telemetry.detach_sink tel;
            close_out oc;
            (match final with
            | None -> ()
            | Some (_, final_oc) ->
              let ic = open_in_bin path in
              let len = in_channel_length ic in
              output_string final_oc (really_input_string ic len);
              close_in ic);
            Sys.remove path)
        slots;
      let snap =
        if telemetry then Some (Engine.Telemetry.snapshot merged) else None
      in
      finish_metrics metrics_out (Some merged);
      (match final with
      | None -> ()
      | Some (path, oc) ->
        Engine.Telemetry.detach_sink merged;
        close_out oc;
        progress "wrote %s@." path);
      Option.iter
        (fun snap -> print_endline (Engine.Json.to_string ~pretty:true snap))
        snap
    in
    (telemetry_for, finish)
  end

let fig4_cmd =
  let run scale seed loads csv config telemetry trace trace_sample jobs profile
      metrics_out =
    let params = resolve_params scale config seed in
    let loads = parse_loads loads in
    let jobs = max 1 jobs in
    let grid =
      Experiments.Fig4.jobs_of_grid params ~loads
        ~schemes:Experiments.Fig4.paper_schemes
    in
    let telemetry_for, finish_telemetry =
      setup_job_telemetry ~telemetry ~trace ~trace_sample ~metrics_out grid
    in
    (* Per-job span profilers, merged in job order after the join — the
       merged span structure is identical for any --jobs value. *)
    let profiler = make_profiler profile in
    let profiler_slots =
      if Engine.Span.is_enabled profiler then
        List.map
          (fun (job : Experiments.Fig4.job) ->
            (job.Experiments.Fig4.index, Engine.Span.create ()))
          grid
      else []
    in
    let profiler_for (job : Experiments.Fig4.job) =
      match List.assoc_opt job.Experiments.Fig4.index profiler_slots with
      | Some p -> p
      | None -> Engine.Span.disabled
    in
    let on_start (job : Experiments.Fig4.job) =
      progress "running load %.2f %s...@." job.Experiments.Fig4.job_load
        (Experiments.Fig4.scheme_name job.Experiments.Fig4.job_scheme)
    in
    let results =
      or_die
        (Experiments.Fig4.run_jobs ~jobs ~telemetry_for ~profiler_for
           ~on_start params grid)
    in
    Format.printf "%a@." Experiments.Fig4.print_fig4 results;
    (match csv with
    | None -> ()
    | Some path ->
      Experiments.Export.save_fig4 path results;
      progress "wrote %s@." path);
    finish_telemetry ();
    List.iter
      (fun (i, p) -> Engine.Span.merge_into ~into:profiler ~tid:(i + 1) p)
      profiler_slots;
    write_profile profile profiler
  in
  let doc = "Regenerate Fig. 4 (both panels): pFabric FCT vs load, six schemes." in
  Cmd.v (Cmd.info "fig4" ~doc)
    Term.(
      const run $ scale_arg $ seed_arg $ loads_arg $ csv_arg $ config_arg
      $ telemetry_arg $ trace_arg $ trace_sample_arg $ jobs_arg $ profile_arg
      $ metrics_out_arg)

let ablation_quant_cmd =
  let run scale seed jobs =
    let params = { scale with Experiments.Fig4.seed } in
    let results =
      Engine.Parallel.map ~jobs:(max 1 jobs)
        (fun levels ->
          progress "running quantization levels %d...@." levels;
          ( levels,
            Experiments.Fig4.run
              { params with Experiments.Fig4.levels = Some levels }
              (Experiments.Fig4.Qvisor_policy "pfabric + edf") ))
        [ 4; 8; 16; 32; 64; 128; 256 ]
      |> List.map (fun (levels, r) -> (levels, or_die r))
    in
    Format.printf
      "@[<v>Ablation A1 — normalization quantization (QVISOR pfabric + edf, \
       load %.2f)@,%-8s | %14s | %14s | %10s@,"
      params.Experiments.Fig4.load "levels" "small FCT (ms)" "large FCT (ms)"
      "cbr-ok";
    List.iter
      (fun (levels, r) ->
        Format.printf "%-8d | %14.3f | %14.3f | %10.3f@," levels
          r.Experiments.Fig4.small_mean_ms r.Experiments.Fig4.large_mean_ms
          r.Experiments.Fig4.cbr_deadline_fraction)
      results;
    Format.printf "@]@."
  in
  let doc = "Ablation A1: FCT sensitivity to rank-normalization quantization." in
  Cmd.v (Cmd.info "ablation-quant" ~doc)
    Term.(const run $ scale_arg $ seed_arg $ jobs_arg)

let ablation_backend_cmd =
  let run scale seed jobs =
    let params = { scale with Experiments.Fig4.seed } in
    let cap = params.Experiments.Fig4.queue_capacity_pkts in
    let backends =
      [
        ("ideal PIFO", None);
        ( "SP bank, 2 queues",
          Some (Qvisor.Deploy.Sp_bank { num_queues = 2; queue_capacity_pkts = cap }) );
        ( "SP bank, 4 queues",
          Some (Qvisor.Deploy.Sp_bank { num_queues = 4; queue_capacity_pkts = cap }) );
        ( "SP bank, 8 queues",
          Some (Qvisor.Deploy.Sp_bank { num_queues = 8; queue_capacity_pkts = cap }) );
        ( "SP bank, 32 queues",
          Some (Qvisor.Deploy.Sp_bank { num_queues = 32; queue_capacity_pkts = cap }) );
        ( "SP-PIFO, 8 queues",
          Some (Qvisor.Deploy.Sp_pifo { num_queues = 8; queue_capacity_pkts = cap }) );
        ( "AIFO",
          Some (Qvisor.Deploy.Aifo { capacity_pkts = cap; window = 8 * cap; k = 0.1 }) );
        ( "DRR bank, 8 queues",
          Some
            (Qvisor.Deploy.Drr_bank
               { num_queues = 8; queue_capacity_pkts = cap; quantum_bytes = 1518 }) );
        ( "calendar, 32 buckets",
          Some
            (Qvisor.Deploy.Calendar
               { num_buckets = 32; bucket_width = 2048; capacity_pkts = cap }) );
      ]
    in
    Format.printf
      "@[<v>Ablation A2 — deployment backend fidelity (QVISOR pfabric >> edf, \
       load %.2f)@,%-20s | %14s | %14s | %8s@,"
      params.Experiments.Fig4.load "backend" "small FCT (ms)" "large FCT (ms)"
      "drops";
    let cases =
      List.map
        (fun (name, backend) ->
          (name, { params with Experiments.Fig4.backend }))
        backends
      @ [ ("PIFO tree (direct)",
           { params with Experiments.Fig4.tree_backend = true }) ]
    in
    let results =
      Engine.Parallel.map ~jobs:(max 1 jobs)
        (fun (name, case_params) ->
          progress "running backend %s...@." name;
          ( name,
            Experiments.Fig4.run case_params
              (Experiments.Fig4.Qvisor_policy "pfabric >> edf") ))
        cases
      |> List.map (fun (name, r) -> (name, or_die r))
    in
    List.iter
      (fun (name, r) ->
        Format.printf "%-20s | %14.3f | %14.3f | %8d@," name
          r.Experiments.Fig4.small_mean_ms r.Experiments.Fig4.large_mean_ms
          r.Experiments.Fig4.drops)
      results;
    Format.printf "@]@."
  in
  let doc =
    "Ablation A2: ideal PIFO vs commodity schedulers under QVISOR. For \
     oracle-exact verification of the same backends on adversarial \
     workloads (rather than end-to-end FCT), see `qvisor-cli conformance'."
  in
  Cmd.v (Cmd.info "ablation-backend" ~doc)
    Term.(const run $ scale_arg $ seed_arg $ jobs_arg)

let churn_cmd =
  let run seed telemetry trace trace_sample jobs profile metrics_out =
    let params = { Experiments.Churn.default with Experiments.Churn.seed } in
    let tel, finish_telemetry =
      setup_telemetry
        ~force:(metrics_out <> None)
        ~telemetry ~trace ~trace_sample ~seed ()
    in
    (* Telemetry instruments only the qvisor run (as before), so the
       single registry is touched by exactly one worker. *)
    let telemetry_for ~qvisor =
      if qvisor then Option.value tel ~default:Engine.Telemetry.disabled
      else Engine.Telemetry.disabled
    in
    (* One private profiler per scheme, merged naive-then-qvisor. *)
    let profiler = make_profiler profile in
    let prof_of_scheme ~qvisor:_ =
      if Engine.Span.is_enabled profiler then Engine.Span.create ()
      else Engine.Span.disabled
    in
    let prof_naive = prof_of_scheme ~qvisor:false in
    let prof_qvisor = prof_of_scheme ~qvisor:true in
    let profiler_for ~qvisor = if qvisor then prof_qvisor else prof_naive in
    progress "running churn (naive + qvisor)...@.";
    match
      Experiments.Churn.compare_schemes ~jobs:(max 1 jobs) ~telemetry_for
        ~profiler_for params
    with
    | [ naive; qvisor ] ->
      Format.printf "%a@.@.%a@." Experiments.Churn.print [ naive; qvisor ]
        Experiments.Churn.print_activity qvisor;
      finish_telemetry ();
      finish_metrics metrics_out tel;
      Engine.Span.merge_into ~into:profiler ~tid:1 prof_naive;
      Engine.Span.merge_into ~into:profiler ~tid:2 prof_qvisor;
      write_profile profile profiler
    | _ -> assert false
  in
  let doc = "Ablation A3: tenant churn (the paper's Fig. 2 timeline)." in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(
      const run $ seed_arg $ telemetry_arg $ trace_arg $ trace_sample_arg
      $ jobs_arg $ profile_arg $ metrics_out_arg)

let single_cmd =
  let scheme_arg =
    let doc =
      "Scheme: fifo | pifo-naive | pifo-ideal | a QVISOR policy string such \
       as 'pfabric >> edf'."
    in
    Arg.(value & opt string "pfabric >> edf" & info [ "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let load_arg =
    let doc = "pFabric tenant load." in
    Arg.(value & opt float 0.5 & info [ "load" ] ~docv:"LOAD" ~doc)
  in
  let slo_arg =
    let doc =
      "Derive per-tenant SLOs from the synthesized plan (worst-case delay \
       bound, drop budget, rank-error budget), audit them online against \
       the run, print the per-tenant verdict table, and exit 4 when any \
       tenant ends the run Violating.  QVISOR pre-processor schemes only."
    in
    Arg.(value & flag & info [ "slo" ] ~doc)
  in
  let inject_arg =
    let fault_conv =
      let parse s =
        match Conformance.Fault.of_string s with
        | Ok f -> Ok f
        | Error e -> Error (`Msg e)
      in
      let print ppf f =
        Format.pp_print_string ppf (Conformance.Fault.to_string f)
      in
      Arg.conv (parse, print)
    in
    let doc =
      "Replace every port's queue discipline with a deliberately broken one \
       (lifo-ties | drop-newest), whatever the scheme chose — the negative \
       control for the --slo gate."
    in
    Arg.(
      value & opt (some fault_conv) None & info [ "inject" ] ~docv:"FAULT" ~doc)
  in
  let alerts_arg =
    let doc =
      "With --slo, write the health machine's NDJSON alert stream (one line \
       per per-tenant state transition) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "alerts" ] ~docv:"FILE" ~doc)
  in
  let metrics_interval_arg =
    let doc =
      "With --slo and --metrics-out, rewrite the metrics file every $(docv) \
       of simulated time (e.g. 500ms, 2s, 1m) during the run — periodic \
       exposition for a scraper tailing the file, not just at the end."
    in
    Arg.(
      value
      & opt (some Cliopts.duration) None
      & info [ "metrics-interval" ] ~docv:"DURATION" ~doc)
  in
  let run scale seed scheme load config telemetry trace trace_sample profile
      flight slo inject alerts metrics_out metrics_interval =
    let params =
      {
        (resolve_params scale config seed) with
        Experiments.Fig4.load;
        inject_qdisc = Option.map Conformance.Fault.qdisc inject;
      }
    in
    let scheme =
      match scheme with
      | "fifo" -> Experiments.Fig4.Fifo_both
      | "pifo-naive" -> Experiments.Fig4.Pifo_naive
      | "pifo-ideal" -> Experiments.Fig4.Pifo_pfabric_only
      | policy -> Experiments.Fig4.Qvisor_policy policy
    in
    (* Positivity is enforced by the Cliopts.pos_float converter; only the
       flag-combination constraint is left to check here. *)
    (match metrics_interval with
    | Some _ when (not slo) || metrics_out = None ->
      Format.eprintf "--metrics-interval needs --slo and --metrics-out@.";
      exit 1
    | _ -> ());
    let tel, finish_telemetry =
      setup_telemetry
        ~force:(metrics_out <> None)
        ~telemetry ~trace ~trace_sample ~seed ()
    in
    let alerts_oc =
      Option.map
        (fun path ->
          try open_out path
          with Sys_error e ->
            Format.eprintf "cannot write alerts: %s@." e;
            exit 1)
        alerts
    in
    (* Graceful shutdown: an interrupted run must not truncate an NDJSON
       record mid-line or leave a stale metrics file — flush the alert
       sink and rewrite the exposition one last time, then exit through
       Stdlib.exit so at_exit channel flushes still run. *)
    Cliopts.at_signal_exit (fun () ->
        Option.iter flush alerts_oc;
        match (metrics_out, tel) with
        | Some path, Some tel -> write_metrics path tel
        | _ -> ());
    Cliopts.exit_on_signal ();
    (* Periodic exposition: rewritten whole each time, so a scraper always
       sees a complete, parseable document. *)
    let last_metrics = ref neg_infinity in
    let on_tick now =
      match (metrics_interval, metrics_out, tel) with
      | Some iv, Some path, Some tel when now -. !last_metrics >= iv ->
        last_metrics := now;
        write_metrics path tel
      | _ -> ()
    in
    let profiler = make_profiler profile in
    let flight_config, on_anomaly, finish_flight = setup_flight flight in
    let r =
      or_die
        (Experiments.Fig4.run ?telemetry:tel ~profiler ?flight:flight_config
           ?on_anomaly ~slo ?alerts:alerts_oc ~on_tick params scheme)
    in
    Format.printf
      "@[<v>%s @ load %.2f@,small mean %.3f ms (p99 %.3f)@,large mean %.3f ms \
       (p99 %.3f)@,completed %d/%d, drops %d, cbr-ok %s@,engine %d events in \
       %.3f s (%.3g events/s)@]@."
      r.Experiments.Fig4.scheme r.Experiments.Fig4.load
      r.Experiments.Fig4.small_mean_ms r.Experiments.Fig4.small_p99_ms
      r.Experiments.Fig4.large_mean_ms r.Experiments.Fig4.large_p99_ms
      r.Experiments.Fig4.flows_completed r.Experiments.Fig4.flows_started
      r.Experiments.Fig4.drops
      (if Float.is_nan r.Experiments.Fig4.cbr_deadline_fraction then "-"
       else Printf.sprintf "%.3f" r.Experiments.Fig4.cbr_deadline_fraction)
      r.Experiments.Fig4.events_fired r.Experiments.Fig4.wall_seconds
      (float_of_int r.Experiments.Fig4.events_fired
      /. r.Experiments.Fig4.wall_seconds);
    (match r.Experiments.Fig4.slo with
    | None -> ()
    | Some report ->
      Format.printf "@.@[<v>SLO objectives (derived from the plan):@,";
      List.iter
        (fun o -> Format.printf "  %a@," Qvisor.Slo.pp_objective o)
        report.Experiments.Fig4.objectives;
      Format.printf "@]@.@[<v>SLO verdicts (%d health transition(s)):@,"
        report.Experiments.Fig4.health_alerts;
      List.iter
        (fun (tn, state, st) ->
          Format.printf "  %-10s %-10s %a@," tn.Qvisor.Tenant.name
            (Engine.Health.state_to_string state)
            Qvisor.Slo.pp_status st)
        report.Experiments.Fig4.verdicts;
      Format.printf "@]@.");
    (* A compact percentile summary of the port histograms (the live
       registry's P^2 sketches, via Telemetry.Histogram.quantile). *)
    (match tel with
    | Some tel when telemetry ->
      let q = Engine.Telemetry.Histogram.quantile in
      let depth = Engine.Telemetry.histogram tel "net.queue_depth_pkts" in
      let sojourn = Engine.Telemetry.histogram tel "net.sojourn_seconds" in
      Format.printf "@[<v>%-24s %10s %10s %10s@," "histogram" "p50" "p90"
        "p99";
      Format.printf "%-24s %10.1f %10.1f %10.1f@," "queue depth (pkts)"
        (q depth 0.5) (q depth 0.9) (q depth 0.99);
      Format.printf "%-24s %10.4f %10.4f %10.4f@]@." "sojourn (ms)"
        (1e3 *. q sojourn 0.5)
        (1e3 *. q sojourn 0.9)
        (1e3 *. q sojourn 0.99)
    | _ -> ());
    finish_telemetry ();
    finish_flight ();
    (match (alerts_oc, alerts) with
    | Some oc, Some path ->
      close_out oc;
      progress "wrote %s@." path
    | _ -> ());
    finish_metrics metrics_out tel;
    write_profile profile profiler;
    match r.Experiments.Fig4.slo with
    | Some report
      when List.exists
             (fun (_, state, _) -> state = Engine.Health.Violating)
             report.Experiments.Fig4.verdicts ->
      progress "SLO gate: FAIL (a tenant ended the run violating)@.";
      exit 4
    | Some _ -> progress "SLO gate: pass@."
    | None -> ()
  in
  let doc =
    "Run a single (scheme, load) point, optionally auditing derived \
     per-tenant SLOs (--slo exits 4 on a violating tenant)."
  in
  Cmd.v (Cmd.info "single" ~doc)
    Term.(
      const run $ scale_arg $ seed_arg $ scheme_arg $ load_arg $ config_arg
      $ telemetry_arg $ trace_arg $ trace_sample_arg $ profile_arg
      $ flight_arg $ slo_arg $ inject_arg $ alerts_arg $ metrics_out_arg
      $ metrics_interval_arg)

let validate_cmd =
  let run seed =
    (* Isolated flows of fixed sizes across the quick fabric, measured in
       simulation vs the analytic fluid model. *)
    let params = { Experiments.Fig4.quick with Experiments.Fig4.seed } in
    Format.printf
      "@[<v>Simulator cross-validation: isolated flow FCT, packet sim vs        fluid model@,%-12s | %12s | %12s | %6s@," "size" "sim (ms)"
      "fluid (ms)" "ratio";
    List.iter
      (fun size ->
        let topo =
          Netsim.Topology.leaf_spine ~leaves:params.Experiments.Fig4.leaves
            ~spines:params.Experiments.Fig4.spines
            ~hosts_per_leaf:params.Experiments.Fig4.hosts_per_leaf
            ~access_rate:params.Experiments.Fig4.access_rate
            ~fabric_rate:params.Experiments.Fig4.fabric_rate
            ~link_delay:params.Experiments.Fig4.link_delay
        in
        let routing = Netsim.Routing.compute topo in
        let sim = Engine.Sim.create () in
        let transport = Netsim.Transport.create ~sim () in
        let net =
          Netsim.Net.create ~sim ~topo ~routing
            ~make_qdisc:(fun _ ->
              Sched.Fifo_queue.create
                ~capacity_pkts:params.Experiments.Fig4.queue_capacity_pkts ())
            ~deliver:(Netsim.Transport.deliver transport)
            ()
        in
        Netsim.Transport.attach transport net;
        let measured = ref nan in
        ignore
          (Netsim.Transport.start_flow transport ~tenant:0
             ~ranker:(Sched.Ranker.pfabric ())
             ~src:0
             ~dst:(params.Experiments.Fig4.hosts_per_leaf + 1)
             ~size ~window:params.Experiments.Fig4.window
             ~on_complete:(fun r -> measured := Netsim.Transport.fct r)
             ());
        Engine.Sim.run sim;
        let predicted =
          Netsim.Fluid.estimate_fct ~size ~mtu_payload:1460
            ~window:params.Experiments.Fig4.window
            ~rates:
              (Netsim.Fluid.leaf_spine_path_rates ~intra_leaf:false
                 ~access_rate:params.Experiments.Fig4.access_rate
                 ~fabric_rate:params.Experiments.Fig4.fabric_rate)
            ~link_delay:params.Experiments.Fig4.link_delay ~load:0.
        in
        Format.printf "%-12d | %12.4f | %12.4f | %6.2f@," size
          (1e3 *. !measured) (1e3 *. predicted) (!measured /. predicted))
      [ 1_500; 10_000; 100_000; 1_000_000; 10_000_000 ];
    Format.printf "@]@."
  in
  let doc = "Cross-validate the packet simulator against the fluid FCT model." in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ seed_arg)

let () =
  let doc = "QVISOR evaluation harness (paper figures and ablations)" in
  let info = Cmd.info "experiments" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig4_cmd;
            ablation_quant_cmd;
            ablation_backend_cmd;
            churn_cmd;
            single_cmd;
            validate_cmd;
          ]))
