(* Flow-size CDFs in bytes.  Shapes follow the distributions shipped with
   Netbench/pFabric; tails are capped at 30 MB (see DESIGN.md). *)

let data_mining () =
  Engine.Rng.Empirical.of_points
    [
      (180., 0.10);
      (216., 0.20);
      (560., 0.30);
      (900., 0.40);
      (1_100., 0.50);
      (60_000., 0.60);
      (380_000., 0.70);
      (2_000_000., 0.80);
      (10_000_000., 0.90);
      (30_000_000., 1.00);
    ]

let web_search () =
  Engine.Rng.Empirical.of_points
    [
      (6_000., 0.15);
      (13_000., 0.20);
      (19_000., 0.30);
      (33_000., 0.40);
      (53_000., 0.53);
      (133_000., 0.60);
      (667_000., 0.70);
      (1_467_000., 0.80);
      (3_333_000., 0.90);
      (6_667_000., 0.95);
      (20_000_000., 0.98);
      (30_000_000., 1.00);
    ]

let flow_arrival_rate ~load ~num_hosts ~access_rate ~mean_flow_size =
  load *. float_of_int num_hosts *. access_rate /. (8. *. mean_flow_size)

type arrivals = { mutable flows_started : int; mutable bytes_offered : int }

let poisson_open_loop ~sim ~rng ~transport ~tenant ~ranker ~num_hosts ~load
    ~access_rate ~dist ?window ?rto ~until ~on_complete () =
  if num_hosts < 2 then invalid_arg "Workload.poisson_open_loop: < 2 hosts";
  if load <= 0. then invalid_arg "Workload.poisson_open_loop: load <= 0";
  let mean_size = Engine.Rng.Empirical.mean dist in
  let rate = flow_arrival_rate ~load ~num_hosts ~access_rate ~mean_flow_size:mean_size in
  let mean_gap = 1. /. rate in
  let acc = { flows_started = 0; bytes_offered = 0 } in
  let rec next_arrival () =
    let gap = Engine.Rng.exponential rng ~mean:mean_gap in
    Engine.Sim.schedule_after_ sim ~delay:gap (fun () ->
        if Engine.Sim.now sim < until then begin
          let src, dst = Engine.Rng.pair_distinct rng ~n:num_hosts in
          let size =
            max 1 (int_of_float (Engine.Rng.Empirical.sample dist rng))
          in
          acc.flows_started <- acc.flows_started + 1;
          acc.bytes_offered <- acc.bytes_offered + size;
          ignore
            (Transport.start_flow transport ~tenant ~ranker ~src ~dst ~size
               ?window ?rto ~on_complete ());
          next_arrival ()
        end)
  in
  next_arrival ();
  acc

let incast ~sim ~rng ~transport ~tenant ~ranker ~num_hosts ~fanin
    ~bytes_per_sender ?window ?rto ?receiver ~at ~on_complete () =
  if fanin < 1 || fanin + 1 > num_hosts then
    invalid_arg "Workload.incast: fanin out of range";
  if bytes_per_sender <= 0 then invalid_arg "Workload.incast: bytes <= 0";
  let receiver =
    match receiver with
    | Some r ->
      if r < 0 || r >= num_hosts then invalid_arg "Workload.incast: receiver";
      r
    | None -> Engine.Rng.int_range rng ~lo:0 ~hi:(num_hosts - 1)
  in
  (* Pick [fanin] distinct senders != receiver. *)
  let candidates =
    Array.of_list
      (List.filter (fun h -> h <> receiver) (List.init num_hosts Fun.id))
  in
  Engine.Rng.shuffle rng candidates;
  let senders = Array.sub candidates 0 fanin in
  Engine.Sim.schedule_at_ sim ~time:at (fun () ->
      Array.iter
        (fun src ->
          ignore
            (Transport.start_flow transport ~tenant ~ranker ~src ~dst:receiver
               ~size:bytes_per_sender ?window ?rto ~on_complete ()))
        senders)

let permutation ~sim ~rng ~transport ~tenant ~ranker ~num_hosts
    ~bytes_per_flow ?window ?rto ~at ~on_complete () =
  if num_hosts < 2 then invalid_arg "Workload.permutation: < 2 hosts";
  if bytes_per_flow <= 0 then invalid_arg "Workload.permutation: bytes <= 0";
  let targets = Array.init num_hosts Fun.id in
  Engine.Rng.shuffle rng targets;
  Engine.Sim.schedule_at_ sim ~time:at (fun () ->
      Array.iteri
        (fun src dst ->
          if src <> dst then
            ignore
              (Transport.start_flow transport ~tenant ~ranker ~src ~dst
                 ~size:bytes_per_flow ?window ?rto ~on_complete ()))
        targets)

let cbr_tenant ~sim ~rng ~transport ~tenant ~ranker ~num_hosts ~flows ~rate
    ?(deadline_budget = 1e-3) ?(budget_spread = 0.5) ?(jitter = true) ~until
    () =
  if num_hosts < 2 then invalid_arg "Workload.cbr_tenant: < 2 hosts";
  if flows <= 0 then invalid_arg "Workload.cbr_tenant: flows <= 0";
  if budget_spread < 0. || budget_spread >= 1. then
    invalid_arg "Workload.cbr_tenant: budget_spread outside [0,1)";
  let _ = sim in
  List.init flows (fun _ ->
      let src, dst = Engine.Rng.pair_distinct rng ~n:num_hosts in
      let budget =
        Engine.Rng.float_range rng
          ~lo:(deadline_budget *. (1. -. budget_spread))
          ~hi:(deadline_budget *. (1. +. budget_spread))
      in
      Transport.start_cbr transport ~tenant ~ranker ~src ~dst ~rate
        ~deadline_budget:budget
        ?jitter:(if jitter then Some (Engine.Rng.split rng) else None)
        ~until ())
