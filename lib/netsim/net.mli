(** The packet-switched fabric: output-queued ports, store-and-forward
    links, and ECMP forwarding.

    Every unidirectional link has an output port at its source holding a
    queue discipline.  Transmitting a packet occupies the link for
    [size * 8 / rate] seconds; the packet then arrives at the far end after
    the propagation delay and is either forwarded (switch) or delivered
    (host).

    The [preprocess] hook runs on every packet immediately before it is
    offered to a port's queue — this is where QVISOR's pre-processor
    rewrites ranks.  The [on_dequeue] hook runs as a packet starts
    transmission (used by STFQ-style rankers to advance their virtual
    clock). *)

type t

type shaper = {
  shaper_rate : float;  (** token refill rate, bytes/s *)
  shaper_burst : float;  (** bucket depth, bytes *)
}
(** Token-bucket egress shaping: a port holding a shaper transmits a
    packet only when the bucket holds its size in tokens, making the port
    non-work-conserving (it can idle with a backlog).  This is the
    mechanism behind rate-limited tenants and the paper's
    "non-work-conserving scheduling algorithms" direction. *)

type flight_config = {
  ring_capacity : int;  (** events each port's ring retains *)
  trigger_window : int;  (** enqueue attempts per sliding window *)
  drop_threshold : float;  (** drop fraction in the window that fires *)
  trigger_cooldown : int;  (** attempts suppressed after a fire *)
}
(** Flight-recorder configuration: one always-on
    {!Engine.Recorder} ring per port, paired with a drop-rate
    {!Engine.Recorder.Trigger} with hysteresis. *)

val default_flight : flight_config
(** [{ring_capacity = 512; trigger_window = 128; drop_threshold = 0.5;
     trigger_cooldown = 128}]. *)

val create :
  sim:Engine.Sim.t ->
  topo:Topology.t ->
  routing:Routing.t ->
  make_qdisc:(Topology.link -> Sched.Qdisc.t) ->
  ?shaper_of:(Topology.link -> shaper option) ->
  ?preprocess:(Sched.Packet.t -> unit) ->
  ?on_enqueue:(Sched.Packet.t -> unit) ->
  ?on_dequeue:(Sched.Packet.t -> unit) ->
  ?on_drop:(Sched.Packet.t -> unit) ->
  ?on_tie_inversion:(Sched.Packet.t -> unit) ->
  ?telemetry:Engine.Telemetry.t ->
  ?profiler:Engine.Span.t ->
  ?flight:flight_config ->
  ?on_anomaly:(link_id:int -> Engine.Recorder.t -> unit) ->
  ?meters:Engine.Perf.Meters.t ->
  deliver:(Sched.Packet.t -> unit) ->
  unit ->
  t
(** [deliver] fires when a packet reaches its destination host.
    [shaper_of] (default: none anywhere) attaches token-bucket shapers to
    selected ports.

    [on_enqueue] (default: nothing) runs on every packet as it is offered
    to a port's queue, after [preprocess] — per hop, so a packet crossing
    four links fires it four times.  With [on_drop] this gives exact
    offered-vs-lost accounting per hop: the SLO auditor's tap.

    [on_tie_inversion] (default: nothing) fires when a port serves a
    packet that shares the previously served packet's rank, precedes it
    in both tie orders (global uid and arrival at that port), and was
    already queued when that packet left — an equal-rank FIFO-order
    violation.  A uid-stable PIFO never fires it (it would have served
    the lower uid first), nor does a pure FIFO (earlier arrival first);
    a scheduler that serves ties newest-first does so constantly, which
    makes the hook the online conformance tap for the SLO auditor.
    With telemetry, each firing also increments the
    [net.tie_inversions] counter.

    [profiler] (default: off) wraps fabric construction in a ["net.build"]
    span.  The per-packet path is deliberately not spanned — the flight
    recorder is the packet-granularity layer.

    [flight] (default: off) arms a per-port flight recorder: every
    preprocess / enqueue / drop / evict / dequeue is appended to the
    port's ring (unsampled, unconditionally — the ring is the cheap
    always-on layer), and each enqueue attempt feeds the port's drop-rate
    trigger.  When a trigger fires, [on_anomaly] (default: nothing) runs
    with the port's recorder — the hook dumps the last-N events as NDJSON
    next to whatever reproducer the caller is writing.

    [meters] (default: {!Engine.Perf.Meters.disabled}) brackets the
    per-hop stages with throughput meters: [enqueue] spans the whole
    admission path of a hop (with nested [preprocess], [slo_audit] and
    [recorder] meters attributing its components), [dequeue] spans a
    packet's start-of-transmission path, [slo_audit] additionally counts
    the [on_dequeue]/[on_drop]/[on_tie_inversion] hook calls, and
    [recorder] the flight-recorder appends.  The caller publishes the
    meters into a registry at window close
    ({!Engine.Perf.Meters.publish}).

    [telemetry] (default: off) instruments every port: per-port and
    per-tenant enqueue/dequeue/drop counters ([net.port.<id>.*],
    [net.tenant.<id>.*], plus [net.enqueue]/[net.dequeue]/[net.drop]
    aggregates), a queue-depth histogram [net.queue_depth_pkts] sampled
    after each enqueue, and a sojourn-time histogram [net.sojourn_seconds]
    observed as packets start transmission.  When the registry carries a
    trace sink, each enqueue/dequeue/drop — and, if a [preprocess] hook is
    installed, each rank rewrite — is offered as a sampled NDJSON event.
    @raise Invalid_argument on a shaper with non-positive rate or a burst
    smaller than one full packet (1518 bytes). *)

val inject : t -> Sched.Packet.t -> unit
(** A host hands a packet to its NIC: the packet is routed onto the host's
    uplink queue.  The packet's [src] must be a host. *)

val port_recorder : t -> link_id:int -> Engine.Recorder.t option
(** The port's flight-recorder ring ([None] when [flight] is off). *)

val anomalies_fired : t -> int
(** Drop-rate anomalies fired across all ports so far. *)

val total_drops : t -> int
(** Packets dropped across all ports so far. *)

val port_qdisc : t -> link_id:int -> Sched.Qdisc.t
(** The queue discipline serving a given link's output port (for tests
    and instrumentation). *)

val queued_packets : t -> int
(** Packets currently sitting in any port queue. *)

val port_tx_bytes : t -> link_id:int -> int
(** Bytes transmitted on a link so far. *)

val link_utilization : t -> link_id:int -> now:float -> float
(** Average utilization of a link over [\[0, now\]]:
    [bytes * 8 / (rate * now)].  Returns [0.] at time zero. *)

val busiest_links : t -> now:float -> top:int -> (int * float) list
(** The [top] most-utilized links as [(link_id, utilization)], most
    utilized first. *)
