type flow_spec = {
  start : float;
  src : int;
  dst : int;
  size : int;
  tenant : int;
}

let to_string specs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# start_time src dst size_bytes tenant\n";
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%.9f %d %d %d %d\n" f.start f.src f.dst f.size
           f.tenant))
    specs;
  Buffer.contents buf

let is_ws = function ' ' | '\t' | '\r' -> true | _ -> false

(* Split on runs of any whitespace, so tab-separated (or CRLF) trace
   files parse the same as space-separated ones. *)
let split_ws s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else if is_ws s.[i] then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && not (is_ws s.[!j]) do
        incr j
      done;
      go !j (String.sub s i (!j - i) :: acc)
    end
  in
  go 0 []

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let fields = split_ws line in
  match fields with
  | [] -> Ok None
  | [ start; src; dst; size; tenant ] -> (
    try
      Ok
        (Some
           {
             start = float_of_string start;
             src = int_of_string src;
             dst = int_of_string dst;
             size = int_of_string size;
             tenant = int_of_string tenant;
           })
    with Failure _ -> Error (Printf.sprintf "line %d: malformed field" lineno))
  | _ -> Error (Printf.sprintf "line %d: expected 5 fields" lineno)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line lineno line with
      | Error e -> Error e
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some f) ->
        if f.size <= 0 then
          Error (Printf.sprintf "line %d: non-positive size" lineno)
        else if f.start < 0. then
          Error (Printf.sprintf "line %d: negative start time" lineno)
        else if f.src = f.dst then
          Error (Printf.sprintf "line %d: src = dst" lineno)
        else go (lineno + 1) (f :: acc) rest)
  in
  go 1 [] lines

let save path specs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string specs))

let load path =
  match
    In_channel.with_open_text path (fun ic -> In_channel.input_all ic)
  with
  | contents -> of_string contents
  | exception Sys_error e -> Error e

let synthesize ~rng ~dist ~num_hosts ~load ~access_rate ~tenant ~until =
  if num_hosts < 2 then invalid_arg "Trace.synthesize: < 2 hosts";
  if load <= 0. then invalid_arg "Trace.synthesize: load <= 0";
  let mean_size = Engine.Rng.Empirical.mean dist in
  let rate =
    Workload.flow_arrival_rate ~load ~num_hosts ~access_rate
      ~mean_flow_size:mean_size
  in
  let rec go now acc =
    let now = now +. Engine.Rng.exponential rng ~mean:(1. /. rate) in
    if now >= until then List.rev acc
    else begin
      let src, dst = Engine.Rng.pair_distinct rng ~n:num_hosts in
      let size = max 1 (int_of_float (Engine.Rng.Empirical.sample dist rng)) in
      go now ({ start = now; src; dst; size; tenant } :: acc)
    end
  in
  go 0. []

let replay ~sim ~transport ~ranker_of_tenant ?window ?rto ~on_complete specs =
  List.iter
    (fun f ->
      ignore
        (Engine.Sim.schedule_at sim ~time:f.start (fun () ->
             ignore
               (Transport.start_flow transport ~tenant:f.tenant
                  ~ranker:(ranker_of_tenant f.tenant) ~src:f.src ~dst:f.dst
                  ~size:f.size ?window ?rto ~on_complete ()))))
    specs
