type shaper = { shaper_rate : float; shaper_burst : float }

type bucket = {
  config : shaper;
  mutable tokens : float;
  mutable refilled_at : float;
  mutable wakeup_pending : bool;
}

type port = {
  link : Topology.link;
  qdisc : Sched.Qdisc.t;
  mutable busy : bool;
  mutable tx_bytes : int;
  bucket : bucket option;
  (* The port's previous dequeue, for the equal-rank FIFO-order
     conformance check: rank, uid ([-1] = no dequeue yet), and the
     enqueue/dequeue instants as IEEE-754 bit patterns.  Non-negative
     floats compare monotonically as integer bits, so the check needs
     only int compares and the per-dequeue stores stay allocation- and
     write-barrier-free (no tuple, no boxed floats). *)
  mutable last_rank : int;
  mutable last_uid : int;
  mutable last_enq_bits : int;
  mutable last_deq_bits : int;
  (* Preallocated end-of-transmission continuation, installed right after
     the net is built so the per-packet hot path schedules it without
     allocating a fresh closure. *)
  mutable tx_done : unit -> unit;
}

module Tel = Engine.Telemetry
module Perf = Engine.Perf

(* Per-tenant counter triple, created lazily the first time a tenant's
   packet crosses the fabric. *)
type tenant_counters = {
  t_enq : Tel.Counter.t;
  t_deq : Tel.Counter.t;
  t_drop : Tel.Counter.t;
}

type instruments = {
  tel : Tel.t;
  port_enq : Tel.Counter.t array;
  port_deq : Tel.Counter.t array;
  port_drop : Tel.Counter.t array;
  enq_total : Tel.Counter.t;
  deq_total : Tel.Counter.t;
  drop_total : Tel.Counter.t;
  tie_total : Tel.Counter.t;
  depth : Tel.Histogram.t; (* queue length (pkts) sampled after enqueue *)
  sojourn : Tel.Histogram.t; (* seconds from enqueue to start-of-tx *)
  by_tenant : (int, tenant_counters) Hashtbl.t;
}

type flight_config = {
  ring_capacity : int;
  trigger_window : int;
  drop_threshold : float;
  trigger_cooldown : int;
}

let default_flight =
  {
    ring_capacity = 512;
    trigger_window = 128;
    drop_threshold = 0.5;
    trigger_cooldown = 128;
  }

(* Per-port flight recorders plus one drop-rate anomaly trigger each. *)
type flight = {
  recorders : Engine.Recorder.t array;
  triggers : Engine.Recorder.Trigger.t array;
  on_anomaly : link_id:int -> Engine.Recorder.t -> unit;
  mutable anomalies : int;
}

type t = {
  sim : Engine.Sim.t;
  topo : Topology.t;
  num_hosts : int; (* cached: node ids below this are hosts (per-hop check) *)
  routing : Routing.t;
  ports : port array; (* indexed by link id *)
  preprocess : Sched.Packet.t -> unit;
  has_preprocess : bool;
  on_enqueue : Sched.Packet.t -> unit;
  on_dequeue : Sched.Packet.t -> unit;
  on_drop : Sched.Packet.t -> unit;
  on_tie_inversion : Sched.Packet.t -> unit;
  deliver : Sched.Packet.t -> unit;
  ins : instruments option;
  flight : flight option;
  (* Stage meters, pre-extracted so the hot path pays one field load per
     bracket (all are [Perf.Meter.disabled] unless the caller passed
     enabled meters). *)
  m_enq : Perf.Meter.t;
  m_deq : Perf.Meter.t;
  m_pre : Perf.Meter.t;
  m_rec : Perf.Meter.t;
  m_slo : Perf.Meter.t;
  (* Allocation-free drop plumbing for [Qdisc.enqueue_drop]: one callback
     per net, reading the in-flight enqueue's context from these fields.
     Safe because a discipline's enqueue is synchronous and non-reentrant
     (scheduled callbacks are deferred to the event loop). *)
  mutable drop_cb : Sched.Packet.t -> unit;
  mutable cur_uid : int;
  mutable cur_link : int;
  mutable dropped_any : bool;
}

let make_instruments tel ~num_ports =
  let per_port what =
    Array.init num_ports (fun id ->
        Tel.counter tel (Printf.sprintf "net.port.%d.%s" id what))
  in
  {
    tel;
    port_enq = per_port "enqueue";
    port_deq = per_port "dequeue";
    port_drop = per_port "drop";
    enq_total = Tel.counter tel "net.enqueue";
    deq_total = Tel.counter tel "net.dequeue";
    drop_total = Tel.counter tel "net.drop";
    tie_total = Tel.counter tel "net.tie_inversions";
    depth = Tel.histogram tel "net.queue_depth_pkts";
    sojourn = Tel.histogram tel "net.sojourn_seconds";
    by_tenant = Hashtbl.create 8;
  }

let tenant_counters ins id =
  match Hashtbl.find_opt ins.by_tenant id with
  | Some c -> c
  | None ->
    let name what = Printf.sprintf "net.tenant.%d.%s" id what in
    let c =
      {
        t_enq = Tel.counter ins.tel (name "enqueue");
        t_deq = Tel.counter ins.tel (name "dequeue");
        t_drop = Tel.counter ins.tel (name "drop");
      }
    in
    Hashtbl.add ins.by_tenant id c;
    c

let build ~sim ~topo ~routing ~make_qdisc ?(shaper_of = fun _ -> None)
    ?preprocess ?(on_enqueue = fun _ -> ()) ?(on_dequeue = fun _ -> ())
    ?(on_drop = fun _ -> ()) ?(on_tie_inversion = fun _ -> ())
    ?telemetry ?(profiler = Engine.Span.disabled) ?flight
    ?(on_anomaly = fun ~link_id:_ _ -> ()) ?(meters = Perf.Meters.disabled)
    ~deliver () =
  Engine.Span.with_ profiler ~name:"net.build" @@ fun () ->
  let ports =
    Array.init (Topology.num_links topo) (fun id ->
        let link = Topology.link topo id in
        let bucket =
          match shaper_of link with
          | None -> None
          | Some config ->
            if config.shaper_rate <= 0. then
              invalid_arg "Net.create: shaper rate <= 0";
            if config.shaper_burst < 1518. then
              invalid_arg "Net.create: shaper burst below one packet";
            Some
              {
                config;
                tokens = config.shaper_burst;
                refilled_at = 0.;
                wakeup_pending = false;
              }
        in
        {
          link;
          qdisc = make_qdisc link;
          busy = false;
          tx_bytes = 0;
          bucket;
          last_rank = 0;
          last_uid = -1;
          last_enq_bits = 0;
          last_deq_bits = 0;
          tx_done = ignore;
        })
  in
  let ins =
    match telemetry with
    | Some tel when Tel.is_enabled tel ->
      Some (make_instruments tel ~num_ports:(Array.length ports))
    | Some _ | None -> None
  in
  let flight =
    match flight with
    | None -> None
    | Some cfg ->
      let n = Array.length ports in
      Some
        {
          recorders =
            Array.init n (fun _ ->
                Engine.Recorder.create ~capacity:cfg.ring_capacity ());
          triggers =
            Array.init n (fun _ ->
                Engine.Recorder.Trigger.create ~window:cfg.trigger_window
                  ~threshold:cfg.drop_threshold ~cooldown:cfg.trigger_cooldown
                  ());
          on_anomaly;
          anomalies = 0;
        }
  in
  {
    sim;
    topo;
    num_hosts = Topology.num_hosts topo;
    routing;
    ports;
    preprocess = Option.value preprocess ~default:(fun _ -> ());
    has_preprocess = preprocess <> None;
    on_enqueue;
    on_dequeue;
    on_drop;
    on_tie_inversion;
    deliver;
    ins;
    flight;
    m_enq = Perf.Meters.enqueue meters;
    m_deq = Perf.Meters.dequeue meters;
    m_pre = Perf.Meters.preprocess meters;
    m_rec = Perf.Meters.recorder meters;
    m_slo = Perf.Meters.slo_audit meters;
    drop_cb = ignore;
    cur_uid = -1;
    cur_link = -1;
    dropped_any = false;
  }

(* A dropped (or evicted) packet from the in-flight enqueue: hooks, flight
   record, telemetry — all without materializing a drop list. *)
let handle_drop t (d : Sched.Packet.t) =
  t.dropped_any <- true;
  Perf.Meter.before t.m_slo;
  t.on_drop d;
  Perf.Meter.after t.m_slo;
  (match t.flight with
  | None -> ()
  | Some fl ->
    Perf.Meter.before t.m_rec;
    Engine.Recorder.record
      fl.recorders.(t.cur_link)
      ~time:(Engine.Sim.now t.sim)
      ~kind:
        (if d.Sched.Packet.uid = t.cur_uid then Engine.Recorder.Drop
         else Engine.Recorder.Evict)
      ~uid:d.Sched.Packet.uid ~link:t.cur_link ~tenant:d.Sched.Packet.tenant
      ~flow:d.Sched.Packet.flow ~rank_before:(-1) ~rank:d.Sched.Packet.rank;
    Perf.Meter.after t.m_rec);
  match t.ins with
  | None -> ()
  | Some ins ->
    Tel.Counter.incr ins.drop_total;
    Tel.Counter.incr ins.port_drop.(t.cur_link);
    Tel.Counter.incr (tenant_counters ins d.Sched.Packet.tenant).t_drop;
    if Tel.tracing ins.tel then
      Tel.event ins.tel ~time:(Engine.Sim.now t.sim) ~kind:"drop"
        ~uid:d.Sched.Packet.uid ~link:t.cur_link ~tenant:d.Sched.Packet.tenant
        ~flow:d.Sched.Packet.flow ~rank:d.Sched.Packet.rank ()

let refill t bucket =
  let now = Engine.Sim.now t.sim in
  let elapsed = now -. bucket.refilled_at in
  bucket.tokens <-
    Float.min bucket.config.shaper_burst
      (bucket.tokens +. (elapsed *. bucket.config.shaper_rate));
  bucket.refilled_at <- now

(* Start transmitting the next queued packet if the link is idle and, on
   shaped ports, the bucket covers the head packet (otherwise sleep until
   it will). *)
let rec pump t port =
  if not port.busy then begin
    let admitted =
      match port.bucket with
      | None -> true
      | Some bucket -> (
        match port.qdisc.Sched.Qdisc.peek () with
        | None -> true (* nothing queued; dequeue below returns None *)
        | Some head ->
          refill t bucket;
          let need = float_of_int head.Sched.Packet.size in
          (* Half-a-byte tolerance: floating-point refills can approach
             [need] asymptotically, which without slack would re-arm
             ever-shorter wakeups forever. *)
          if bucket.tokens +. 0.5 >= need then true
          else begin
            if not bucket.wakeup_pending then begin
              bucket.wakeup_pending <- true;
              let wait =
                ((need -. bucket.tokens) /. bucket.config.shaper_rate) +. 1e-9
              in
              Engine.Sim.schedule_after_ t.sim ~delay:wait (fun () ->
                  bucket.wakeup_pending <- false;
                  pump t port)
            end;
            false
          end)
    in
    match if admitted then port.qdisc.Sched.Qdisc.dequeue () else None with
    | None -> ()
    | Some p ->
      Perf.Meter.before t.m_deq;
      (match port.bucket with
      | Some bucket ->
        bucket.tokens <-
          Float.max 0. (bucket.tokens -. float_of_int p.Sched.Packet.size)
      | None -> ());
      port.busy <- true;
      port.tx_bytes <- port.tx_bytes + p.Sched.Packet.size;
      (* Equal-rank FIFO-order conformance: this packet shares the
         previous dequeue's rank, precedes it in BOTH tie orders (global
         uid and arrival at this port), and was already queued when the
         previous packet left.  A uid-stable PIFO never trips this (it
         would have served the lower uid first), nor does a pure FIFO
         (it would have served the earlier arrival first) — but a
         serve-ties-newest-first backend does so constantly.  Demanding
         both orders inverted keeps cross-hop reordering, where uid
         order and port-arrival order legitimately disagree, from
         counting against a conforming scheduler. *)
      let deq_now = Engine.Sim.now t.sim in
      let enq_bits =
        Int64.to_int (Int64.bits_of_float p.Sched.Packet.enqueued_at)
      in
      if
        port.last_uid >= 0
        && p.Sched.Packet.rank = port.last_rank
        && p.Sched.Packet.uid < port.last_uid
        && enq_bits < port.last_enq_bits
        && enq_bits < port.last_deq_bits
      then begin
        (match t.ins with
        | Some ins -> Tel.Counter.incr ins.tie_total
        | None -> ());
        Perf.Meter.before t.m_slo;
        t.on_tie_inversion p;
        Perf.Meter.after t.m_slo
      end;
      port.last_rank <- p.Sched.Packet.rank;
      port.last_uid <- p.Sched.Packet.uid;
      port.last_enq_bits <- enq_bits;
      port.last_deq_bits <- Int64.to_int (Int64.bits_of_float deq_now);
      Perf.Meter.before t.m_slo;
      t.on_dequeue p;
      Perf.Meter.after t.m_slo;
      (match t.flight with
      | None -> ()
      | Some fl ->
        let link_id = port.link.Topology.id in
        Perf.Meter.before t.m_rec;
        Engine.Recorder.record
          fl.recorders.(link_id)
          ~time:(Engine.Sim.now t.sim) ~kind:Engine.Recorder.Dequeue
          ~uid:p.Sched.Packet.uid ~link:link_id ~tenant:p.Sched.Packet.tenant
          ~flow:p.Sched.Packet.flow ~rank_before:(-1)
          ~rank:p.Sched.Packet.rank;
        Perf.Meter.after t.m_rec);
      (match t.ins with
      | None -> ()
      | Some ins ->
        let link_id = port.link.Topology.id in
        let tenant = p.Sched.Packet.tenant in
        Tel.Counter.incr ins.deq_total;
        Tel.Counter.incr ins.port_deq.(link_id);
        Tel.Counter.incr (tenant_counters ins tenant).t_deq;
        let now = Engine.Sim.now t.sim in
        Tel.Histogram.observe ins.sojourn (now -. p.Sched.Packet.enqueued_at);
        if Tel.tracing ins.tel then
          Tel.event ins.tel ~time:now ~kind:"dequeue" ~uid:p.Sched.Packet.uid
            ~link:link_id ~tenant ~flow:p.Sched.Packet.flow
            ~rank:p.Sched.Packet.rank ());
      let tx_time = 8. *. float_of_int p.Sched.Packet.size /. port.link.Topology.rate in
      let arrival = tx_time +. port.link.Topology.delay in
      Engine.Sim.schedule_after_ t.sim ~delay:tx_time port.tx_done;
      Engine.Sim.schedule_after_ t.sim ~delay:arrival (fun () ->
          receive t port.link.Topology.dst p);
      Perf.Meter.after t.m_deq
  end

and enqueue t port p =
  (* The enqueue meter brackets the whole per-hop admission path
     (preprocess and audit hooks included); the nested preprocess /
     slo_audit / recorder meters attribute its components. *)
  Perf.Meter.before t.m_enq;
  Perf.Meter.before t.m_pre;
  t.preprocess p;
  Perf.Meter.after t.m_pre;
  Perf.Meter.before t.m_slo;
  t.on_enqueue p;
  Perf.Meter.after t.m_slo;
  p.Sched.Packet.enqueued_at <- Engine.Sim.now t.sim;
  let link_id = port.link.Topology.id in
  (* Admission-side flight records and telemetry are written before the
     qdisc call so the drop callback's Drop/Evict entries land after the
     Enqueue entry, preserving the ring's event order. *)
  (match t.flight with
  | None -> ()
  | Some fl ->
    let now = Engine.Sim.now t.sim in
    let rec_ = fl.recorders.(link_id) in
    Perf.Meter.before t.m_rec;
    if t.has_preprocess then
      Engine.Recorder.record rec_ ~time:now
        ~kind:Engine.Recorder.Preprocess ~uid:p.Sched.Packet.uid
        ~link:link_id ~tenant:p.Sched.Packet.tenant ~flow:p.Sched.Packet.flow
        ~rank_before:p.Sched.Packet.label ~rank:p.Sched.Packet.rank;
    Engine.Recorder.record rec_ ~time:now ~kind:Engine.Recorder.Enqueue
      ~uid:p.Sched.Packet.uid ~link:link_id ~tenant:p.Sched.Packet.tenant
      ~flow:p.Sched.Packet.flow ~rank_before:(-1) ~rank:p.Sched.Packet.rank;
    Perf.Meter.after t.m_rec);
  (match t.ins with
  | None -> ()
  | Some ins ->
    let tenant = p.Sched.Packet.tenant in
    Tel.Counter.incr ins.enq_total;
    Tel.Counter.incr ins.port_enq.(link_id);
    Tel.Counter.incr (tenant_counters ins tenant).t_enq;
    if Tel.tracing ins.tel then begin
      let now = Engine.Sim.now t.sim in
      if t.has_preprocess then
        Tel.event ins.tel ~time:now ~kind:"preprocess" ~uid:p.Sched.Packet.uid
          ~link:link_id ~tenant ~flow:p.Sched.Packet.flow
          ~rank_before:p.Sched.Packet.label ~rank:p.Sched.Packet.rank ();
      Tel.event ins.tel ~time:now ~kind:"enqueue" ~uid:p.Sched.Packet.uid
        ~link:link_id ~tenant ~flow:p.Sched.Packet.flow
        ~rank:p.Sched.Packet.rank ()
    end);
  t.cur_uid <- p.Sched.Packet.uid;
  t.cur_link <- link_id;
  t.dropped_any <- false;
  port.qdisc.Sched.Qdisc.enqueue_drop p t.drop_cb;
  (match t.flight with
  | None -> ()
  | Some fl ->
    if
      Engine.Recorder.Trigger.observe fl.triggers.(link_id)
        ~dropped:t.dropped_any
    then begin
      fl.anomalies <- fl.anomalies + 1;
      fl.on_anomaly ~link_id fl.recorders.(link_id)
    end);
  (match t.ins with
  | None -> ()
  | Some ins ->
    Tel.Histogram.observe ins.depth
      (float_of_int (port.qdisc.Sched.Qdisc.length ())));
  Perf.Meter.after t.m_enq;
  pump t port

and forward t node p =
  let link =
    Routing.next_link t.routing ~node ~dst:p.Sched.Packet.dst
      ~flow:p.Sched.Packet.flow
  in
  enqueue t t.ports.(link.Topology.id) p

and receive t node p =
  if node = p.Sched.Packet.dst then t.deliver p
  else if node >= t.num_hosts then forward t node p
  else
    (* A host is never a transit node in sane topologies. *)
    invalid_arg "Net.receive: packet transited a host"

let create ~sim ~topo ~routing ~make_qdisc ?shaper_of ?preprocess ?on_enqueue
    ?on_dequeue ?on_drop ?on_tie_inversion ?telemetry ?profiler ?flight
    ?on_anomaly ?meters ~deliver () =
  let t =
    build ~sim ~topo ~routing ~make_qdisc ?shaper_of ?preprocess ?on_enqueue
      ?on_dequeue ?on_drop ?on_tie_inversion ?telemetry ?profiler ?flight
      ?on_anomaly ?meters ~deliver ()
  in
  t.drop_cb <- handle_drop t;
  Array.iter
    (fun port ->
      port.tx_done <-
        (fun () ->
          port.busy <- false;
          pump t port))
    t.ports;
  t

let inject t p =
  let src = p.Sched.Packet.src in
  (match Topology.kind t.topo src with
  | Topology.Host -> ()
  | Topology.Switch -> invalid_arg "Net.inject: src is not a host");
  forward t src p

let port_recorder t ~link_id =
  match t.flight with
  | None -> None
  | Some fl -> Some fl.recorders.(link_id)

let anomalies_fired t =
  match t.flight with None -> 0 | Some fl -> fl.anomalies

let total_drops t =
  Array.fold_left (fun acc port -> acc + port.qdisc.Sched.Qdisc.drops ()) 0 t.ports

let port_qdisc t ~link_id = t.ports.(link_id).qdisc

let queued_packets t =
  Array.fold_left (fun acc port -> acc + port.qdisc.Sched.Qdisc.length ()) 0 t.ports

let port_tx_bytes t ~link_id = t.ports.(link_id).tx_bytes

let link_utilization t ~link_id ~now =
  if now <= 0. then 0.
  else begin
    let port = t.ports.(link_id) in
    8. *. float_of_int port.tx_bytes /. (port.link.Topology.rate *. now)
  end

let busiest_links t ~now ~top =
  let all =
    Array.to_list
      (Array.mapi
         (fun link_id _ -> (link_id, link_utilization t ~link_id ~now))
         t.ports)
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take top sorted
