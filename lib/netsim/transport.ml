type flow_result = {
  flow_id : int;
  tenant : int;
  size : int;
  started_at : float;
  completed_at : float;
}

let fct r = r.completed_at -. r.started_at

type cbr_stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable deadline_met : int;
  delay : Engine.Stats.t;
}

type wflow = {
  id : int;
  tenant : int;
  src : int;
  dst : int;
  size : int;
  ranker : Sched.Ranker.t;
  window : int;
  rto : float;
  mtu : int;
  deadline : float;
  started_at : float;
  on_complete : flow_result -> unit;
  mutable next_offset : int;
  mutable acked_bytes : int;
  (* Per-segment state, indexed by [seq / mtu] — a flow's seqs are the
     dense MTU multiples [0, mtu, 2*mtu, ...], so flat arrays replace
     the sets and hash tables a sparse seq space would need.  Every
     per-packet update is then an O(1) store with no allocation and no
     write barrier ([sent_at] is an unboxed float array; nan = not
     outstanding). *)
  acked : Bytes.t;
  received : Bytes.t;
  sent_at : float array;
  mutable outstanding : int; (* segments with a non-nan [sent_at] *)
  retx : Bytes.t; (* segments queued for retransmission *)
  mutable retx_count : int;
  mutable retx_min : int; (* lower bound on the lowest set [retx] bit *)
  mutable rto_handle : Engine.Sim.handle option;
  mutable received_bytes : int;
  mutable completed : bool;
}

type cbr = { stats : cbr_stats }

type flow = Windowed of wflow | Cbr of cbr

type t = {
  sim : Engine.Sim.t;
  mutable net : Net.t option;
  (* Flow ids are dense (allocated by [fresh_flow_id]), so the registry
     is a growable array: delivery dispatch is one bounds check and one
     load per packet instead of a hash + structural key compare. *)
  mutable flows : flow option array;
  mutable next_flow_id : int;
  mutable active : int;
}

let create ~sim () =
  { sim; net = None; flows = Array.make 256 None; next_flow_id = 0; active = 0 }

let register t id fl =
  let n = Array.length t.flows in
  if id >= n then begin
    let bigger = Array.make (max (2 * n) (id + 1)) None in
    Array.blit t.flows 0 bigger 0 n;
    t.flows <- bigger
  end;
  t.flows.(id) <- Some fl

let attach t net =
  match t.net with
  | Some _ -> invalid_arg "Transport.attach: already attached"
  | None -> t.net <- Some net

let net t =
  match t.net with
  | Some n -> n
  | None -> invalid_arg "Transport: not attached to a fabric"

let fresh_flow_id t =
  let id = t.next_flow_id in
  t.next_flow_id <- id + 1;
  id

let active_flows t = t.active

(* ------------------------------------------------------------------ *)
(* Windowed transport                                                 *)
(* ------------------------------------------------------------------ *)

let payload_at f seq =
  let rest = f.size - seq in
  if f.mtu < rest then f.mtu else rest
let num_segments ~size ~mtu = (size + mtu - 1) / mtu

let retx_add f seg =
  if Bytes.unsafe_get f.retx seg = '\000' then begin
    Bytes.unsafe_set f.retx seg '\001';
    f.retx_count <- f.retx_count + 1;
    if seg < f.retx_min then f.retx_min <- seg
  end

(* Lowest segment queued for retransmission; caller checks the count.
   [retx_min] only ever lags the true minimum downward, so the scan
   resumes where the last take left off (amortized O(1)). *)
let retx_take_min f =
  let n = Bytes.length f.retx in
  let seg = ref f.retx_min in
  while !seg < n && Bytes.unsafe_get f.retx !seg = '\000' do incr seg done;
  Bytes.unsafe_set f.retx !seg '\000';
  f.retx_count <- f.retx_count - 1;
  f.retx_min <- !seg;
  !seg * f.mtu

let send_data t f seq =
  let now = Engine.Sim.now t.sim in
  let payload = payload_at f seq in
  let p =
    Sched.Packet.make ~kind:Sched.Packet.Data ~tenant:f.tenant ~src:f.src
      ~dst:f.dst ~seq ~payload
      ~remaining:(f.size - f.acked_bytes)
      ~deadline:f.deadline ~created_at:now ~flow:f.id
      ~size:(payload + Sched.Packet.header_bytes)
      ()
  in
  ignore (Sched.Ranker.tag f.ranker ~now p);
  let seg = seq / f.mtu in
  if Float.is_nan f.sent_at.(seg) then f.outstanding <- f.outstanding + 1;
  f.sent_at.(seg) <- now;
  Net.inject (net t) p

let rec arm_rto t f =
  match f.rto_handle with
  | Some _ -> ()
  | None ->
    if f.outstanding > 0 then
      f.rto_handle <-
        Some (Engine.Sim.schedule_after t.sim ~delay:f.rto (fun () -> on_rto t f))

and on_rto t f =
  f.rto_handle <- None;
  let now = Engine.Sim.now t.sim in
  for seg = 0 to Array.length f.sent_at - 1 do
    let sent = f.sent_at.(seg) in
    if (not (Float.is_nan sent)) && now -. sent >= f.rto -. 1e-12 then begin
      f.sent_at.(seg) <- Float.nan;
      f.outstanding <- f.outstanding - 1;
      retx_add f seg
    end
  done;
  fill t f;
  arm_rto t f

and fill t f =
  if f.outstanding < f.window then begin
    let seq =
      if f.retx_count > 0 then Some (retx_take_min f)
      else if f.next_offset < f.size then begin
        let seq = f.next_offset in
        f.next_offset <- seq + payload_at f seq;
        Some seq
      end
      else None
    in
    match seq with
    | None -> ()
    | Some seq ->
      send_data t f seq;
      fill t f
  end;
  arm_rto t f

let start_flow t ~tenant ~ranker ~src ~dst ~size ?(window = 12) ?(rto = 1e-3)
    ?(mtu_payload = 1460) ?(deadline = infinity) ~on_complete () =
  if size <= 0 then invalid_arg "Transport.start_flow: size <= 0";
  if window <= 0 then invalid_arg "Transport.start_flow: window <= 0";
  if rto <= 0. then invalid_arg "Transport.start_flow: rto <= 0";
  if mtu_payload <= 0 then invalid_arg "Transport.start_flow: mtu <= 0";
  if src = dst then invalid_arg "Transport.start_flow: src = dst";
  let id = fresh_flow_id t in
  let nseg = num_segments ~size ~mtu:mtu_payload in
  let f =
    {
      id;
      tenant;
      src;
      dst;
      size;
      ranker;
      window;
      rto;
      mtu = mtu_payload;
      deadline;
      started_at = Engine.Sim.now t.sim;
      on_complete;
      next_offset = 0;
      acked = Bytes.make nseg '\000';
      acked_bytes = 0;
      received = Bytes.make nseg '\000';
      sent_at = Array.make nseg Float.nan;
      outstanding = 0;
      retx = Bytes.make nseg '\000';
      retx_count = 0;
      retx_min = 0;
      rto_handle = None;
      received_bytes = 0;
      completed = false;
    }
  in
  register t id (Windowed f);
  t.active <- t.active + 1;
  fill t f;
  id

let send_ack t f (data : Sched.Packet.t) =
  let now = Engine.Sim.now t.sim in
  let ack =
    Sched.Packet.make ~kind:Sched.Packet.Ack ~tenant:f.tenant ~src:f.dst
      ~dst:f.src ~seq:data.Sched.Packet.seq ~payload:0 ~remaining:0
      ~deadline:f.deadline ~created_at:now ~flow:f.id
      ~size:Sched.Packet.header_bytes ()
  in
  ignore (Sched.Ranker.tag f.ranker ~now ack);
  Net.inject (net t) ack

let receive_data t f (p : Sched.Packet.t) =
  let seg = p.Sched.Packet.seq / f.mtu in
  if Bytes.unsafe_get f.received seg = '\000' then begin
    Bytes.unsafe_set f.received seg '\001';
    f.received_bytes <- f.received_bytes + p.Sched.Packet.payload
  end;
  if (not f.completed) && f.received_bytes >= f.size then begin
    f.completed <- true;
    t.active <- t.active - 1;
    f.on_complete
      {
        flow_id = f.id;
        tenant = f.tenant;
        size = f.size;
        started_at = f.started_at;
        completed_at = Engine.Sim.now t.sim;
      }
  end;
  send_ack t f p

let receive_ack t f (p : Sched.Packet.t) =
  let seq = p.Sched.Packet.seq in
  let seg = seq / f.mtu in
  if not (Float.is_nan f.sent_at.(seg)) then begin
    f.sent_at.(seg) <- Float.nan;
    f.outstanding <- f.outstanding - 1
  end;
  if Bytes.unsafe_get f.retx seg = '\001' then begin
    Bytes.unsafe_set f.retx seg '\000';
    f.retx_count <- f.retx_count - 1
  end;
  if Bytes.unsafe_get f.acked seg = '\000' then begin
    Bytes.unsafe_set f.acked seg '\001';
    f.acked_bytes <- f.acked_bytes + payload_at f seq
  end;
  if f.acked_bytes >= f.size then begin
    (* Everything delivered and acknowledged: quiesce the sender. *)
    (match f.rto_handle with
    | Some h ->
      Engine.Sim.cancel h;
      f.rto_handle <- None
    | None -> ())
  end
  else fill t f

(* ------------------------------------------------------------------ *)
(* CBR transport                                                      *)
(* ------------------------------------------------------------------ *)

let start_cbr t ~tenant ~ranker ~src ~dst ~rate ?(mtu_payload = 1460)
    ?(deadline_budget = 1e-3) ?jitter ~until () =
  if rate <= 0. then invalid_arg "Transport.start_cbr: rate <= 0";
  if mtu_payload <= 0 then invalid_arg "Transport.start_cbr: mtu <= 0";
  if deadline_budget <= 0. then invalid_arg "Transport.start_cbr: budget <= 0";
  if src = dst then invalid_arg "Transport.start_cbr: src = dst";
  let id = fresh_flow_id t in
  let stats =
    { sent = 0; delivered = 0; deadline_met = 0; delay = Engine.Stats.create ~keep_samples:false () }
  in
  register t id (Cbr { stats });
  let wire = mtu_payload + Sched.Packet.header_bytes in
  let mean_gap = 8. *. float_of_int wire /. rate in
  let seq = ref 0 in
  let rec send_one () =
    let now = Engine.Sim.now t.sim in
    if now < until then begin
      let p =
        Sched.Packet.make ~kind:Sched.Packet.Data ~tenant ~src ~dst ~seq:!seq
          ~payload:mtu_payload ~remaining:mtu_payload
          ~deadline:(now +. deadline_budget) ~created_at:now ~flow:id
          ~size:wire ()
      in
      seq := !seq + mtu_payload;
      ignore (Sched.Ranker.tag ranker ~now p);
      stats.sent <- stats.sent + 1;
      Net.inject (net t) p;
      let gap =
        match jitter with
        | None -> mean_gap
        | Some rng -> Engine.Rng.exponential rng ~mean:mean_gap
      in
      Engine.Sim.schedule_after_ t.sim ~delay:gap send_one
    end
  in
  send_one ();
  stats

let receive_cbr t c (p : Sched.Packet.t) =
  let now = Engine.Sim.now t.sim in
  c.stats.delivered <- c.stats.delivered + 1;
  Engine.Stats.add c.stats.delay (now -. p.Sched.Packet.created_at);
  if now <= p.Sched.Packet.deadline then
    c.stats.deadline_met <- c.stats.deadline_met + 1

(* ------------------------------------------------------------------ *)
(* Delivery dispatch                                                  *)
(* ------------------------------------------------------------------ *)

let deliver t (p : Sched.Packet.t) =
  let id = p.Sched.Packet.flow in
  if id >= 0 && id < Array.length t.flows then
    match t.flows.(id) with
    | None -> () (* stale packet of a forgotten flow *)
    | Some (Windowed f) -> (
      match p.Sched.Packet.kind with
      | Sched.Packet.Data -> receive_data t f p
      | Sched.Packet.Ack -> receive_ack t f p)
    | Some (Cbr c) -> (
      match p.Sched.Packet.kind with
      | Sched.Packet.Data -> receive_cbr t c p
      | Sched.Packet.Ack -> ())
