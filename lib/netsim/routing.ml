type t = {
  topo : Topology.t;
  (* candidates.(node).(dst_host): links on shortest paths towards dst. *)
  candidates : Topology.link array array array;
}

(* Deterministic splitmix-style mix for per-flow ECMP hashing: must differ
   across nodes so consecutive hops don't all make the same choice.  Native
   int arithmetic (wrapping mod 2^63) — an Int64 version boxes three
   intermediates per routed packet. *)
let hash_flow ~node ~flow =
  let z = (flow * 0x9E3779B9) lxor (node * 0x85EBCA6B) in
  let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
  let z = z lxor (z lsr 27) in
  (z lsr 8) land max_int

let compute topo =
  let n = Topology.num_nodes topo in
  let num_hosts = Topology.num_hosts topo in
  (* Reverse adjacency for BFS from each destination. *)
  let incoming = Array.make n [] in
  for id = 0 to Topology.num_links topo - 1 do
    let l = Topology.link topo id in
    incoming.(l.Topology.dst) <- l :: incoming.(l.Topology.dst)
  done;
  let candidates =
    Array.init n (fun _ -> Array.make num_hosts [||])
  in
  let dist = Array.make n max_int in
  for dst = 0 to num_hosts - 1 do
    Array.fill dist 0 n max_int;
    dist.(dst) <- 0;
    let queue = Queue.create () in
    Queue.push dst queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun l ->
          let u = l.Topology.src in
          if dist.(u) = max_int then begin
            dist.(u) <- dist.(v) + 1;
            Queue.push u queue
          end)
        incoming.(v)
    done;
    for node = 0 to n - 1 do
      if node <> dst && dist.(node) <> max_int then begin
        let outs =
          List.filter
            (fun l ->
              dist.(l.Topology.dst) <> max_int
              && dist.(l.Topology.dst) = dist.(node) - 1)
            (Topology.links_from topo node)
        in
        candidates.(node).(dst) <- Array.of_list outs
      end
    done
  done;
  { topo; candidates }

let candidates t ~node ~dst =
  if dst < 0 || dst >= Topology.num_hosts t.topo then
    invalid_arg "Routing.candidates: dst is not a host";
  Array.to_list t.candidates.(node).(dst)

let next_link t ~node ~dst ~flow =
  if dst < 0 || dst >= Topology.num_hosts t.topo then
    invalid_arg "Routing.next_link: dst is not a host";
  if node = dst then invalid_arg "Routing.next_link: already at destination";
  let cands = t.candidates.(node).(dst) in
  let n = Array.length cands in
  if n = 0 then invalid_arg "Routing.next_link: destination unreachable";
  cands.(hash_flow ~node ~flow mod n)

let path t ~src ~dst ~flow =
  let rec walk node acc =
    if node = dst then List.rev (dst :: acc)
    else begin
      let l = next_link t ~node ~dst ~flow in
      walk l.Topology.dst (node :: acc)
    end
  in
  walk src []
