open Cmdliner

let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some v when v > 0 -> Ok v
    | Some _ | None ->
      Error
        (`Msg
          (Printf.sprintf "expected a strictly positive integer, got '%s'" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let pos_float =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v > 0. -> Ok v
    | Some _ | None ->
      Error
        (`Msg
          (Printf.sprintf "expected a strictly positive number, got '%s'" s))
  in
  Arg.conv ~docv:"X" (parse, Format.pp_print_float)
