open Cmdliner

let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some v when v > 0 -> Ok v
    | Some _ | None ->
      Error
        (`Msg
          (Printf.sprintf "expected a strictly positive integer, got '%s'" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let pos_float =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v > 0. -> Ok v
    | Some _ | None ->
      Error
        (`Msg
          (Printf.sprintf "expected a strictly positive number, got '%s'" s))
  in
  Arg.conv ~docv:"X" (parse, Format.pp_print_float)

let duration_of_string s =
  let scaled num unit_ =
    match float_of_string_opt num with
    | Some v when Float.is_finite v && v > 0. -> Some (v *. unit_)
    | Some _ | None -> None
  in
  let n = String.length s in
  let v =
    if n >= 2 && String.sub s (n - 2) 2 = "ms" then
      scaled (String.sub s 0 (n - 2)) 1e-3
    else if n >= 1 && s.[n - 1] = 's' then
      scaled (String.sub s 0 (n - 1)) 1.
    else if n >= 1 && s.[n - 1] = 'm' then
      scaled (String.sub s 0 (n - 1)) 60.
    else scaled s 1.
  in
  match v with
  | Some v -> Ok v
  | None ->
    Error
      (Printf.sprintf
         "expected a strictly positive duration ('500ms', '2s', '1m' or bare \
          seconds), got '%s'"
         s)

let pp_duration ppf seconds =
  if seconds < 1. && Float.is_integer (seconds *. 1000.) then
    Format.fprintf ppf "%.0fms" (seconds *. 1000.)
  else if Float.is_integer (seconds /. 60.) && seconds >= 60. then
    Format.fprintf ppf "%.0fm" (seconds /. 60.)
  else Format.fprintf ppf "%gs" seconds

let duration =
  let parse s = Result.map_error (fun m -> `Msg m) (duration_of_string s) in
  Arg.conv ~docv:"DURATION" (parse, pp_duration)

(* ------------------------------------------------------------------ *)
(* Graceful shutdown                                                  *)
(* ------------------------------------------------------------------ *)

let default_signals = [ Sys.sigint; Sys.sigterm ]

let on_signal ?(signals = default_signals) f =
  List.iter
    (fun signo ->
      (* Some signals cannot be trapped on some platforms; a CLI that
         merely loses graceful shutdown should still start. *)
      try ignore (Sys.signal signo (Sys.Signal_handle f))
      with Sys_error _ | Invalid_argument _ -> ())
    signals

let cleanups : (unit -> unit) list ref = ref []

let at_signal_exit f = cleanups := f :: !cleanups

let run_cleanups () =
  let fs = !cleanups in
  cleanups := [];
  List.iter (fun f -> try f () with _ -> ()) fs

let exit_on_signal ?signals () =
  on_signal ?signals (fun signo ->
      run_cleanups ();
      (* [Stdlib.exit], not [Unix._exit]: at_exit handlers run, so open
         channels (NDJSON sinks, --metrics-out files) flush instead of
         truncating their last record mid-line. *)
      Stdlib.exit (128 + signo))
