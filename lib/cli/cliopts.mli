(** Shared [Cmdliner] argument converters for the qvisor executables.

    Flags that denote counts, intervals or thresholds must be strictly
    positive; these converters reject 0, negative and non-finite values
    at parse time with a clear message (rather than silently accepting a
    value the tool would misbehave on), e.g.:

    {v qvisor-experiments: option '--metrics-interval': expected a
       strictly positive number, got '0' v} *)

val pos_int : int Cmdliner.Arg.conv
(** A strictly positive integer ([>= 1]). *)

val pos_float : float Cmdliner.Arg.conv
(** A strictly positive, finite number ([> 0]). *)

val duration : float Cmdliner.Arg.conv
(** A strictly positive duration in seconds, accepting the suffixes
    [ms], [s] and [m] — ["500ms"], ["2s"], ["1.5m"] — or a bare number
    of seconds for backward compatibility.  Used by
    [--metrics-interval], [--remediation-cooldown] and
    [--drain-timeout]. *)

val duration_of_string : string -> (float, string) result
(** The parsing half of {!duration}, usable outside [Cmdliner]. *)

(** {1 Graceful shutdown}

    One-shot CLIs die mid-write when interrupted: a [SIGINT] during
    [experiments single --alerts] can truncate the final NDJSON record.
    These helpers install handlers that run registered cleanups and then
    exit through [Stdlib.exit], so [at_exit]-registered channel flushes
    still happen. *)

val on_signal : ?signals:int list -> (int -> unit) -> unit
(** Install [f] as the handler for each signal (default
    [[Sys.sigint; Sys.sigterm]]).  Signals that cannot be trapped on the
    platform are skipped silently. *)

val at_signal_exit : (unit -> unit) -> unit
(** Register a cleanup (flush a sink, finalize a metrics file) to run —
    LIFO, exceptions swallowed — when {!exit_on_signal}'s handler
    fires. *)

val exit_on_signal : ?signals:int list -> unit -> unit
(** Install a terminating handler: on delivery it runs every
    {!at_signal_exit} cleanup and calls [Stdlib.exit (128 + signo)]
    (the conventional fatal-signal exit status), which also runs
    [at_exit] handlers and flushes open channels. *)
