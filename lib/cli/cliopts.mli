(** Shared [Cmdliner] argument converters for the qvisor executables.

    Flags that denote counts, intervals or thresholds must be strictly
    positive; these converters reject 0, negative and non-finite values
    at parse time with a clear message (rather than silently accepting a
    value the tool would misbehave on), e.g.:

    {v qvisor-experiments: option '--metrics-interval': expected a
       strictly positive number, got '0' v} *)

val pos_int : int Cmdliner.Arg.conv
(** A strictly positive integer ([>= 1]). *)

val pos_float : float Cmdliner.Arg.conv
(** A strictly positive, finite number ([> 0]). *)
