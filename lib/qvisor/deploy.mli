(** Deploying a synthesized plan onto schedulers (§3.4).

    The ideal target is a PIFO queue, which serves transformed ranks
    perfectly.  Commodity targets provide weaker guarantees: a bank of
    strict-priority FIFO queues sorts only between queues, SP-PIFO adapts
    queue bounds but still admits inversions, and AIFO approximates with a
    single queue.  [instantiate] builds the configured scheduler;
    [queue_bounds_of_plan] derives the static rank-to-queue mapping that
    dedicates queues to strict tiers (the paper's "allocating dedicated
    queues" example); [guarantees] states what survives the mapping. *)

type backend =
  | Ideal_pifo of { capacity_pkts : int }
  | Sp_bank of { num_queues : int; queue_capacity_pkts : int }
      (** static rank-range mapping derived from the plan's bands *)
  | Sp_pifo of { num_queues : int; queue_capacity_pkts : int }
      (** adaptive bounds, plan-agnostic *)
  | Aifo of { capacity_pkts : int; window : int; k : float }
  | Drr_bank of {
      num_queues : int;
      queue_capacity_pkts : int;
      quantum_bytes : int;
    }
      (** deficit round robin across rank-range queues: byte-fair between
          bands, FIFO within — suits [+]-heavy policies *)
  | Calendar of { num_buckets : int; bucket_width : int; capacity_pkts : int }
      (** rotating calendar queue over transformed ranks *)

type guarantee_level =
  | Exact  (** transformed rank order served exactly *)
  | Tiered of int
      (** strict tiers preserved via dedicated queues; ordering inside a
          tier degrades to FIFO across the given number of queues *)
  | Approximate
      (** statistical approximation only; no per-pair worst-case
          guarantee *)

val instantiate :
  plan:Synthesizer.plan -> backend -> (Sched.Qdisc.t, Error.t) result
(** Build the scheduler.  For [Sp_bank] the classifier maps transformed
    ranks to queues along the plan's strict-tier boundaries.  Fails with
    {!Error.Deploy} when the backend cannot host the plan (e.g. fewer
    queues than strict tiers). *)

val instantiate_exn : plan:Synthesizer.plan -> backend -> Sched.Qdisc.t
(** @raise Invalid_argument on deployment errors. *)

val queue_bounds_of_plan :
  plan:Synthesizer.plan -> num_queues:int -> (int array, Error.t) result
(** Upper rank bound per queue (non-decreasing).  Strict-tier boundaries
    are honoured first — each tier gets at least one dedicated queue —
    then remaining queues are spread across the widest tiers.  Fails with
    {!Error.Deploy} if [num_queues] is smaller than the number of strict
    tiers. *)

val guarantees : plan:Synthesizer.plan -> backend -> guarantee_level

val describe : backend -> string

val pifo_tree_of_policy :
  tenants:Tenant.t list ->
  policy:Policy.t ->
  capacity_pkts:int ->
  ?prefer_decay:float ->
  unit ->
  (Sched.Qdisc.t, Error.t) result
(** The §5 "PIFO trees" alternative to rank transformations: compile the
    operator policy {e directly} into a hierarchical scheduler — [>>]
    becomes a strict node, [+] a WFQ node over the members' weights, [>]
    a WFQ node with geometrically decaying weights ([prefer_decay],
    default 0.25, scales each successive operand's weight).  Each tenant
    gets a leaf scheduling its packets by their {e raw} ranks, so no
    pre-processor is needed at all — the tree itself realizes the
    multi-tenant composition.  Packets of unknown tenants share the last
    tenant's leaf. *)
