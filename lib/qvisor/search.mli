(** Resource-constrained synthesis (§5, "Compiling scheduling policies
    into hardware").

    When the target scheduler cannot realize the full specification —
    e.g. a strict-priority bank with fewer queues than the policy has
    strict tiers — the paper proposes that QVISOR should not simply fail
    but {e propose partial specifications implementable on the available
    resources}, together with the guarantees they still offer.

    This module implements that search.  Relaxation is a lattice walk:
    the weakest-impact relaxations are tried first (demoting the
    lowest-priority [>>] into [>], since the paper's operators are
    ordered by strength: [>>] ⊃ [>] ⊃ [+]), and each candidate is checked
    for deployability on the given backend. *)

type resources = {
  num_queues : int;  (** strict-priority queues available *)
  queue_capacity_pkts : int;
}

type proposal = {
  original : Policy.t;
  relaxed : Policy.t;  (** deployable policy ([= original] when it fits) *)
  demotions : (string * string) list;
      (** tier pairs whose [>>] was demoted to [>], highest priority
          first — the guarantees given up *)
  plan : Synthesizer.plan;  (** plan synthesized for [relaxed] *)
  bounds : int array;  (** queue mapping for the backend *)
  exact_fit : bool;  (** no relaxation was needed *)
}

val required_queues : Policy.t -> int
(** Strict tiers in the policy = minimum queues for a faithful
    strict-priority deployment. *)

val fit :
  ?config:Synthesizer.config ->
  tenants:Tenant.t list ->
  policy:Policy.t ->
  resources:resources ->
  unit ->
  (proposal, Error.t) result
(** Find the closest deployable policy.  Returns an error only when even
    the fully-relaxed policy (a single tier) cannot be synthesized, or
    the inputs are invalid ([num_queues <= 0], unknown tenants, ...). *)

val pp_proposal : Format.formatter -> proposal -> unit
