type reason = Out_of_range of float | Top_band_flooding of float

type verdict = Conforming | Suspicious of reason list | Malicious of reason list

type config = {
  window : int;
  out_of_range_threshold : float;
  flooding_threshold : float;
  flooding_exempt : string list;
}

let default_config =
  {
    window = 256;
    out_of_range_threshold = 0.05;
    flooding_threshold = 0.5;
    flooding_exempt = [ "pfabric"; "srpt"; "edf"; "lstf" ];
  }

type tenant_state = {
  spec : Tenant.t;
  mutable in_window : int; (* packets *)
  mutable window_bytes : int;
  mutable out_of_range : int; (* bytes *)
  mutable top_band : int; (* bytes *)
  mutable strikes : int;
  mutable last_reasons : reason list;
  (* The verdict's mitigation transform, recomputed only when a window
     closes — [process] sits on the per-packet hot path and must not
     rebuild (or even re-decide) it per packet. *)
  mutable conditioning : Transform.t;
}

(* Verdict-transition instruments: counters tick when a tenant *enters*
   Suspicious or Malicious (not on every dirty window). *)
type instruments = {
  tel : Engine.Telemetry.t;
  suspicious : Engine.Telemetry.Counter.t;
  malicious : Engine.Telemetry.Counter.t;
}

type t = {
  config : config;
  (* Dense by tenant id — [process] runs per packet per hop, and an
     array probe into preallocated option cells is allocation-free.
     [watch] grows the array as churn brings higher ids. *)
  mutable states : tenant_state option array;
  ins : instruments option;
  clock : unit -> float;
}

let fresh_state spec =
  {
    spec;
    in_window = 0;
    window_bytes = 0;
    out_of_range = 0;
    top_band = 0;
    strikes = 0;
    last_reasons = [];
    conditioning = Transform.Identity;
  }

let create ?(config = default_config) ?telemetry ?(clock = fun () -> 0.)
    ~tenants () =
  if config.window <= 0 then invalid_arg "Guard.create: window <= 0";
  let max_id =
    List.fold_left (fun m spec -> Stdlib.max m spec.Tenant.id) (-1) tenants
  in
  let states = Array.make (max_id + 1) None in
  List.iter
    (fun spec -> states.(spec.Tenant.id) <- Some (fresh_state spec))
    tenants;
  let ins =
    match telemetry with
    | Some tel when Engine.Telemetry.is_enabled tel ->
      Some
        {
          tel;
          suspicious = Engine.Telemetry.counter tel "guard.suspicious";
          malicious = Engine.Telemetry.counter tel "guard.malicious";
        }
    | Some _ | None -> None
  in
  { config; states; ins; clock }

let state t id =
  if id >= 0 && id < Array.length t.states then Array.unsafe_get t.states id
  else None

let watch t spec =
  let id = spec.Tenant.id in
  if id < 0 then invalid_arg "Guard.watch: negative tenant id";
  if id >= Array.length t.states then begin
    let grown = Array.make (id + 1) None in
    Array.blit t.states 0 grown 0 (Array.length t.states);
    t.states <- grown
  end;
  t.states.(id) <- Some (fresh_state spec)

let unwatch t ~tenant_id =
  if tenant_id >= 0 && tenant_id < Array.length t.states then
    t.states.(tenant_id) <- None

(* The "best decile": the lowest tenth of the tenant's declared range —
   the ranks that always win within the tenant's own band. *)
let top_band_cutoff spec =
  spec.Tenant.rank_lo + (max 1 (Tenant.range_width spec / 10)) - 1

let close_window t s =
  (* Fractions are byte-weighted so that small control packets (acks ride
     at the tenant's best rank by design) cannot trip the detectors. *)
  let n = float_of_int (max 1 s.window_bytes) in
  let oor = float_of_int s.out_of_range /. n in
  let flood = float_of_int s.top_band /. n in
  let flooding_applies =
    not (List.mem s.spec.Tenant.algorithm t.config.flooding_exempt)
  in
  let reasons =
    (if oor > t.config.out_of_range_threshold then [ Out_of_range oor ] else [])
    @
    if flooding_applies && flood > t.config.flooding_threshold then
      [ Top_band_flooding flood ]
    else []
  in
  let level strikes = if strikes >= 3 then 2 else if strikes >= 1 then 1 else 0 in
  let before = level s.strikes in
  (match reasons with
  | [] -> s.strikes <- max 0 (s.strikes - 1)
  | _ :: _ -> s.strikes <- s.strikes + 1);
  let after = level s.strikes in
  (match t.ins with
  | Some ins when after > before ->
    let verdict_name = if after = 2 then "malicious" else "suspicious" in
    Engine.Telemetry.Counter.incr
      (if after = 2 then ins.malicious else ins.suspicious);
    if Engine.Telemetry.tracing ins.tel then
      Engine.Telemetry.event ins.tel ~time:(t.clock ()) ~kind:"guard"
        ~tenant:s.spec.Tenant.id
        ~extra:
          [
            ("verdict", Engine.Json.String verdict_name);
            ( "reasons",
              Engine.Json.List
                (List.map
                   (fun r ->
                     Engine.Json.String
                       (match r with
                       | Out_of_range _ -> "out_of_range"
                       | Top_band_flooding _ -> "top_band_flooding"))
                   reasons) );
          ]
        ()
  | Some _ | None -> ());
  s.last_reasons <- reasons;
  s.in_window <- 0;
  s.window_bytes <- 0;
  s.out_of_range <- 0;
  s.top_band <- 0;
  let lo = s.spec.Tenant.rank_lo and hi = s.spec.Tenant.rank_hi in
  s.conditioning <-
    (if s.strikes >= 3 then
       (* Stop the attack: everything this tenant sends competes at its
          own worst declared rank. *)
       Transform.normalize ~src:(lo, hi) ~dst:(hi, hi) ~levels:1 ()
     else if s.strikes >= 1 then
       (* Clamp escapes back into the declared range. *)
       Transform.normalize ~src:(lo, hi) ~dst:(lo, hi) ()
     else Transform.Identity)

let observe_state t s (p : Sched.Packet.t) =
  let r = p.Sched.Packet.label in
  let size = p.Sched.Packet.size in
  s.in_window <- s.in_window + 1;
  s.window_bytes <- s.window_bytes + size;
  if r < s.spec.Tenant.rank_lo || r > s.spec.Tenant.rank_hi then
    s.out_of_range <- s.out_of_range + size
  else if r <= top_band_cutoff s.spec then s.top_band <- s.top_band + size;
  if s.in_window >= t.config.window then close_window t s

let observe t (p : Sched.Packet.t) =
  match state t p.Sched.Packet.tenant with
  | None -> () (* undeclared tenants are already parked by the fallback *)
  | Some s -> observe_state t s p

let verdict t ~tenant_id =
  match state t tenant_id with
  | None -> Conforming
  | Some s ->
    if s.strikes >= 3 then Malicious s.last_reasons
    else if s.strikes >= 1 then Suspicious s.last_reasons
    else Conforming

let mitigation t ~tenant_id =
  match state t tenant_id with
  | None -> Transform.Identity
  | Some s -> s.conditioning

let process t pre (p : Sched.Packet.t) =
  match state t p.Sched.Packet.tenant with
  | None ->
    (* Undeclared tenants are already parked by the fallback. *)
    Preprocessor.process pre p
  | Some s ->
    observe_state t s p;
    Preprocessor.process_conditioned pre ~conditioning:s.conditioning p

let strikes t ~tenant_id =
  match state t tenant_id with
  | None -> 0
  | Some s -> s.strikes
