(** The data-plane pre-processor (§3.3).

    For each incoming packet it reads the two labels (tenant id, rank),
    looks up the tenant's transformation from the synthesized plan, rewrites
    the rank, and hands the packet on to the hardware scheduler.  The
    lookup table is a dense array indexed by tenant id — a match-action
    table in the hardware realization — so the per-packet cost is O(depth
    of the transformation), independent of tenant count. *)

type t

val of_plan :
  ?profiler:Engine.Span.t -> ?telemetry:Engine.Telemetry.t ->
  ?on_rank_error:(int -> float -> unit) ->
  ?rank_error_sample:int ->
  Synthesizer.plan -> t
(** Compile a plan into a line-rate lookup table.  [profiler] (default:
    off) wraps the compilation in a ["preprocessor.compile"] span (the
    per-packet path is deliberately not spanned — it is the hot path the
    flight recorder covers instead).

    With [telemetry], every processed packet also feeds three metrics:
    [preprocessor.table_hits] / [preprocessor.fallback_hits] count
    match-table entry vs fallback lookups, and [preprocessor.rank_error]
    is the live distribution of [|applied - ideal|] where {e ideal} is the
    unquantized real-valued transformation ({!Transform.apply_exact}).

    [on_rank_error] (default: none) receives such [(tenant_id, error)]
    samples as they are computed — the SLO auditor's tap.  With
    [telemetry] it sees every packet (the histograms are exact anyway);
    without, only every [rank_error_sample]-th processed packet is
    audited (default [1], i.e. all), keeping the exact-error float
    recomputation off the per-packet hot path.  Plan distortion is
    systematic — every packet of a tenant shares the same transform — so
    a sampled maximum converges on the true one almost immediately.
    @raise Invalid_argument when [rank_error_sample <= 0]. *)

val process : t -> Sched.Packet.t -> unit
(** Compute the packet's scheduling rank from its (immutable) tenant
    label and store it in [rank].  Because the input is the label, the
    operation is idempotent — safe to install on every hop of a multi-hop
    QVISOR deployment. *)

val process_conditioned :
  t -> conditioning:Transform.t -> Sched.Packet.t -> unit
(** Like {!process} but applies [conditioning] to the label first — the
    hook the adversarial-workload guard uses to clamp or park offenders
    without touching the synthesized plan. *)

val transform_for : t -> tenant_id:int -> Transform.t
(** The transformation the table currently holds for a tenant
    ([fallback] when absent). *)

val processed : t -> int
(** Packets processed so far. *)

val per_tenant : t -> (int * int) list
(** [(tenant_id, packets)] counts for tenants seen, including unknown
    tenants handled by the fallback (reported with their own id). *)

val plan : t -> Synthesizer.plan

val swap_plan : t -> Synthesizer.plan -> unit
(** Atomically replace the transformation table — the runtime controller's
    re-deployment path.  Counters are preserved. *)
