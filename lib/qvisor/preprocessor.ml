type instruments = {
  table_hits : Engine.Telemetry.Counter.t;
  fallback_hits : Engine.Telemetry.Counter.t;
  rank_error : Engine.Telemetry.Histogram.t;
}

type t = {
  mutable table : Transform.t array; (* dense, indexed by tenant id *)
  mutable fallback : Transform.t;
  mutable current : Synthesizer.plan;
  (* Tenant ids are small and dense, so per-tenant packet counts live in a
     growable array — a hash lookup per packet was measurable in profiles.
     Negative (unknown) ids are rare and fall back to the side table. *)
  mutable counts : int array;
  neg_counts : (int, int ref) Hashtbl.t;
  mutable processed : int;
  ins : instruments option;
  on_rank_error : (int -> float -> unit) option;
  (* Without telemetry the exact-error recomputation exists only to feed
     [on_rank_error]; auditing every [rank_error_sample]-th packet keeps
     that float work off the hot path (plan distortion is systematic, so
     a sampled maximum converges on the true one almost immediately). *)
  rank_error_sample : int;
}

let table_of_plan (plan : Synthesizer.plan) =
  let max_id =
    List.fold_left
      (fun acc a -> max acc a.Synthesizer.tenant.Tenant.id)
      (-1) plan.Synthesizer.assignments
  in
  let table = Array.make (max_id + 1) plan.Synthesizer.fallback in
  List.iter
    (fun a -> table.(a.Synthesizer.tenant.Tenant.id) <- a.Synthesizer.transform)
    plan.Synthesizer.assignments;
  table

let of_plan ?(profiler = Engine.Span.disabled) ?telemetry ?on_rank_error
    ?(rank_error_sample = 1) plan =
  if rank_error_sample <= 0 then
    invalid_arg "Preprocessor.of_plan: rank_error_sample <= 0";
  Engine.Span.with_ profiler ~name:"preprocessor.compile" @@ fun () ->
  let ins =
    match telemetry with
    | Some tel when Engine.Telemetry.is_enabled tel ->
      Some
        {
          table_hits = Engine.Telemetry.counter tel "preprocessor.table_hits";
          fallback_hits =
            Engine.Telemetry.counter tel "preprocessor.fallback_hits";
          rank_error =
            Engine.Telemetry.histogram tel "preprocessor.rank_error";
        }
    | Some _ | None -> None
  in
  {
    table = table_of_plan plan;
    fallback = plan.Synthesizer.fallback;
    current = plan;
    counts = Array.make 16 0;
    neg_counts = Hashtbl.create 4;
    processed = 0;
    ins;
    on_rank_error;
    rank_error_sample;
  }

let transform_for t ~tenant_id =
  if tenant_id >= 0 && tenant_id < Array.length t.table then
    t.table.(tenant_id)
  else t.fallback

let process_conditioned t ~conditioning (p : Sched.Packet.t) =
  let id = p.Sched.Packet.tenant in
  (* Always recomputed from the immutable tenant label, so running the
     pre-processor at every QVISOR hop is idempotent. *)
  let conditioned = Transform.apply conditioning p.Sched.Packet.label in
  let transform = transform_for t ~tenant_id:id in
  p.Sched.Packet.rank <- Transform.apply transform conditioned;
  (match t.ins with
  | Some ins ->
    (* Telemetry histograms are exact: every packet is observed. *)
    let err =
      Float.abs
        (float_of_int p.Sched.Packet.rank
        -. Transform.apply_exact transform conditioned)
    in
    let in_table = id >= 0 && id < Array.length t.table in
    Engine.Telemetry.Counter.incr
      (if in_table then ins.table_hits else ins.fallback_hits);
    Engine.Telemetry.Histogram.observe ins.rank_error err;
    (match t.on_rank_error with None -> () | Some f -> f id err)
  | None -> (
    match t.on_rank_error with
    | Some f when t.processed mod t.rank_error_sample = 0 ->
      f id
        (Float.abs
           (float_of_int p.Sched.Packet.rank
           -. Transform.apply_exact transform conditioned))
    | Some _ | None -> ()));
  t.processed <- t.processed + 1;
  if id < 0 then (
    match Hashtbl.find_opt t.neg_counts id with
    | Some r -> incr r
    | None -> Hashtbl.add t.neg_counts id (ref 1))
  else begin
    let n = Array.length t.counts in
    if id >= n then begin
      let bigger = Array.make (max (2 * n) (id + 1)) 0 in
      Array.blit t.counts 0 bigger 0 n;
      t.counts <- bigger
    end;
    t.counts.(id) <- t.counts.(id) + 1
  end

let process t p = process_conditioned t ~conditioning:Transform.Identity p

let processed t = t.processed

let per_tenant t =
  let acc = Hashtbl.fold (fun id r acc -> (id, !r) :: acc) t.neg_counts [] in
  let acc = ref acc in
  for id = Array.length t.counts - 1 downto 0 do
    if t.counts.(id) > 0 then acc := (id, t.counts.(id)) :: !acc
  done;
  List.sort compare !acc

let plan t = t.current

let swap_plan t plan =
  t.table <- table_of_plan plan;
  t.fallback <- plan.Synthesizer.fallback;
  t.current <- plan
