type t =
  | Identity
  | Shift of int
  | Normalize of {
      src_lo : int;
      src_hi : int;
      dst_lo : int;
      dst_hi : int;
      levels : int;
    }
  | Compose of t * t

let shift k = Shift k

let normalize ~src:(src_lo, src_hi) ~dst:(dst_lo, dst_hi) ?levels () =
  if src_lo > src_hi then invalid_arg "Transform.normalize: empty source range";
  if dst_lo > dst_hi then invalid_arg "Transform.normalize: empty destination";
  let levels =
    match levels with
    | Some l when l <= 0 -> invalid_arg "Transform.normalize: levels <= 0"
    | Some l -> l
    | None -> dst_hi - dst_lo + 1
  in
  Normalize { src_lo; src_hi; dst_lo; dst_hi; levels }

let compose f g = match (f, g) with
  | Identity, h | h, Identity -> h
  | _ -> Compose (f, g)

(* Int-specialized clamp: polymorphic [min]/[max] cost a structural-compare
   call per packet on this path. *)
let[@inline] iclamp lo hi (r : int) = if r < lo then lo else if r > hi then hi else r

let level_of ~src_lo ~src_hi ~levels r =
  let r = iclamp src_lo src_hi r in
  let width = src_hi - src_lo + 1 in
  let l = (r - src_lo) * levels / width in
  if l > levels - 1 then levels - 1 else l

let rec apply t r =
  match t with
  | Identity -> r
  | Shift k -> r + k
  | Normalize { src_lo; src_hi; dst_lo; dst_hi; levels } ->
    let level = level_of ~src_lo ~src_hi ~levels r in
    if levels = 1 then dst_lo
    else dst_lo + (level * (dst_hi - dst_lo) / (levels - 1))
  | Compose (f, g) -> apply g (apply f r)

(* The idealized (real-valued, unquantized) counterpart of [apply]: the
   same clamp-and-scale geometry, but with exact linear interpolation in
   place of level quantization and integer division.  The gap between the
   two is the rank-approximation error telemetry reports. *)
let rec exactf t x =
  match t with
  | Identity -> x
  | Shift k -> x +. float_of_int k
  | Normalize { src_lo; src_hi; dst_lo; dst_hi; levels = _ } ->
    let x =
      Float.max (float_of_int src_lo) (Float.min (float_of_int src_hi) x)
    in
    if src_hi = src_lo then float_of_int dst_lo
    else
      float_of_int dst_lo
      +. (x -. float_of_int src_lo)
         *. float_of_int (dst_hi - dst_lo)
         /. float_of_int (src_hi - src_lo)
  | Compose (f, g) -> exactf g (exactf f x)

let apply_exact t r = exactf t (float_of_int r)

let rec range t (lo, hi) =
  if lo > hi then invalid_arg "Transform.range: empty interval";
  match t with
  | Identity -> (lo, hi)
  | Shift k -> (lo + k, hi + k)
  | Normalize _ ->
    (* Monotone, so the image interval is the image of the endpoints. *)
    (apply t lo, apply t hi)
  | Compose (f, g) -> range g (range f (lo, hi))

let is_monotone _ = true

let rec pp ppf = function
  | Identity -> Format.pp_print_string ppf "id"
  | Shift k -> Format.fprintf ppf "shift(%+d)" k
  | Normalize { src_lo; src_hi; dst_lo; dst_hi; levels } ->
    Format.fprintf ppf "normalize([%d,%d]->[%d,%d]/%d)" src_lo src_hi dst_lo
      dst_hi levels
  | Compose (f, g) -> Format.fprintf ppf "%a;%a" pp f pp g
