type observation = {
  mutable seen : bool;
  mutable min_rank : int;
  mutable max_rank : int;
  p50 : Engine.P2_quantile.t;
  p99 : Engine.P2_quantile.t;
}

let fresh_observation () =
  {
    seen = false;
    min_rank = 0;
    max_rank = 0;
    p50 = Engine.P2_quantile.create ~q:0.5;
    p99 = Engine.P2_quantile.create ~q:0.99;
  }

type t = {
  mutable config : Synthesizer.config;
  mutable tenants : Tenant.t list;
  mutable policy : Policy.t;
  pre : Preprocessor.t;
  observations : (int, observation) Hashtbl.t;
  mutable resyntheses : int;
  tel : Engine.Telemetry.t;
  clock : unit -> float;
  resynthesis_count : Engine.Telemetry.Counter.t;
}

let synthesize_now config tenants policy =
  Synthesizer.synthesize ~config ~tenants ~policy ()

let create ?(config = Synthesizer.default_config)
    ?(telemetry = Engine.Telemetry.disabled) ?(clock = fun () -> 0.) ~tenants
    ~policy () =
  match synthesize_now config tenants policy with
  | Error e -> Error e
  | Ok plan ->
    Ok
      {
        config;
        tenants;
        policy;
        pre = Preprocessor.of_plan ~telemetry plan;
        observations = Hashtbl.create 16;
        resyntheses = 0;
        tel = telemetry;
        clock;
        resynthesis_count =
          Engine.Telemetry.counter telemetry "runtime.resyntheses";
      }

let create_exn ?config ?telemetry ?clock ~tenants ~policy () =
  match create ?config ?telemetry ?clock ~tenants ~policy () with
  | Ok t -> t
  | Error e -> invalid_arg ("Runtime.create: " ^ Error.to_string e)

let observe t (p : Sched.Packet.t) =
  let id = p.Sched.Packet.tenant in
  let obs =
    match Hashtbl.find_opt t.observations id with
    | Some o -> o
    | None ->
      let o = fresh_observation () in
      Hashtbl.add t.observations id o;
      o
  in
  let r = p.Sched.Packet.label in
  if obs.seen then begin
    if r < obs.min_rank then obs.min_rank <- r;
    if r > obs.max_rank then obs.max_rank <- r
  end
  else begin
    obs.seen <- true;
    obs.min_rank <- r;
    obs.max_rank <- r
  end;
  Engine.P2_quantile.add obs.p50 (float_of_int r);
  Engine.P2_quantile.add obs.p99 (float_of_int r)

let process t p =
  observe t p;
  Preprocessor.process t.pre p

let preprocessor t = t.pre

let plan t = Preprocessor.plan t.pre

let resyntheses t = t.resyntheses

let observed_range t ~tenant_id =
  match Hashtbl.find_opt t.observations tenant_id with
  | Some o when o.seen -> Some (o.min_rank, o.max_rank)
  | Some _ | None -> None

let redeploy t tenants policy =
  match synthesize_now t.config tenants policy with
  | Error e -> Error e
  | Ok plan ->
    t.tenants <- tenants;
    t.policy <- policy;
    Preprocessor.swap_plan t.pre plan;
    t.resyntheses <- t.resyntheses + 1;
    Engine.Telemetry.Counter.incr t.resynthesis_count;
    if Engine.Telemetry.tracing t.tel then
      Engine.Telemetry.event t.tel ~time:(t.clock ()) ~kind:"resynthesis"
        ~extra:
          [
            ( "tenants",
              Engine.Json.Number (float_of_int (List.length tenants)) );
            ( "policy",
              Engine.Json.String (Policy.to_string policy) );
          ]
        ();
    Ok ()

let add_tenant t tenant ?policy () =
  if List.exists (fun x -> x.Tenant.id = tenant.Tenant.id) t.tenants then
    Error
      (Error.Config
         (Printf.sprintf "tenant id %d already present" tenant.Tenant.id))
  else begin
    let policy = Option.value policy ~default:t.policy in
    redeploy t (t.tenants @ [ tenant ]) policy
  end

let remove_tenant t ~tenant_id ?policy () =
  if not (List.exists (fun x -> x.Tenant.id = tenant_id) t.tenants) then
    Error (Error.Unknown_tenant (Printf.sprintf "id %d" tenant_id))
  else begin
    let tenants = List.filter (fun x -> x.Tenant.id <> tenant_id) t.tenants in
    let policy = Option.value policy ~default:t.policy in
    Hashtbl.remove t.observations tenant_id;
    redeploy t tenants policy
  end

let tenants t = t.tenants

let policy t = t.policy

let update_policy t policy = redeploy t t.tenants policy

let config t = t.config

let coarsen t ~levels =
  if levels < 2 then
    Error (Error.Config (Printf.sprintf "coarsen: levels %d < 2" levels))
  else begin
    let old = t.config in
    t.config <- { t.config with Synthesizer.levels = Some levels };
    match redeploy t t.tenants t.policy with
    | Ok () -> Ok ()
    | Error _ as e ->
      t.config <- old;
      e
  end

let refresh t =
  let tenants =
    List.map
      (fun tenant ->
        match observed_range t ~tenant_id:tenant.Tenant.id with
        | Some (lo, hi) -> { tenant with Tenant.rank_lo = lo; rank_hi = hi }
        | None -> tenant)
      t.tenants
  in
  match redeploy t tenants t.policy with
  | Error _ as e -> e
  | Ok () ->
    Hashtbl.reset t.observations;
    Ok ()
