(** Adversarial-workload detection (§2, Idea 2).

    A malicious or buggy tenant can attack a shared scheduler in two ways
    that its declared specification does not allow: emitting ranks outside
    its declared range (escaping its band before normalization clamps it,
    or distorting a refresh-from-observation cycle), and flooding the best
    slice of its own range (turning a fair-share band into a strict claim
    on the band's head).  The guard watches the {e raw} ranks of each
    tenant over fixed-size windows, issues verdicts with hysteresis, and
    offers a mitigation transform that conditions the offender's ranks
    before the pre-processor runs.

    Verdict ladder per evaluation window:
    - a clean window clears one strike;
    - a dirty window adds a strike: 1–2 strikes = [Suspicious],
      3 or more = [Malicious]. *)

type reason =
  | Out_of_range of float
      (** byte-weighted fraction of window traffic ranked outside the
          spec *)
  | Top_band_flooding of float
      (** byte-weighted fraction of window traffic ranked inside the best
          decile of the spec.  Byte weighting keeps small control packets
          (acks legitimately ride at a tenant's best rank) from tripping
          the detector. *)

type verdict = Conforming | Suspicious of reason list | Malicious of reason list

type config = {
  window : int;  (** packets per evaluation window (default 256) *)
  out_of_range_threshold : float;  (** dirty when above (default 0.05) *)
  flooding_threshold : float;  (** dirty when above (default 0.5) *)
  flooding_exempt : string list;
      (** algorithms whose {e legitimate} rank distribution concentrates
          at the best ranks, where flooding is indistinguishable from
          normal load by rank inspection alone — size-based (pFabric/SRPT:
          most flows are tiny) and deadline-based (EDF/LSTF: urgency
          clusters) policies.  Default
          [\["pfabric"; "srpt"; "edf"; "lstf"\]].  Progressive policies
          (STFQ, FIFO+, …) whose virtual clocks must keep advancing stay
          subject to the check. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?telemetry:Engine.Telemetry.t ->
  ?clock:(unit -> float) ->
  tenants:Tenant.t list ->
  unit ->
  t
(** With [telemetry], verdict {e transitions} feed the metrics layer:
    [guard.suspicious] / [guard.malicious] count each entry into the
    respective verdict (re-entry after recovery counts again), and a
    ["guard"] trace event carrying the verdict and reason kinds is
    offered to the trace sink.  [clock] (default: constant [0.])
    timestamps those events — pass the simulator clock. *)

val observe : t -> Sched.Packet.t -> unit
(** Feed one packet: the guard reads the tenant's immutable rank
    {e label}, so it can run before or after the pre-processor. *)

val verdict : t -> tenant_id:int -> verdict

val mitigation : t -> tenant_id:int -> Transform.t
(** The rank-conditioning transform the data plane should apply to this
    tenant {e before} the plan transform: [Identity] while conforming;
    a clamp into the declared range while suspicious; a collapse onto the
    tenant's very worst declared rank (stopping the attack, as the paper
    suggests) while malicious. *)

val process :
  t -> Preprocessor.t -> Sched.Packet.t -> unit
(** Guarded line-rate path: observe, apply the mitigation, then the
    plan's transformation. *)

val strikes : t -> tenant_id:int -> int

val watch : t -> Tenant.t -> unit
(** Start watching a tenant that joined at runtime (fresh, strike-free
    state; replaces any previous spec for the same id). *)

val unwatch : t -> tenant_id:int -> unit
(** Forget a departed tenant. *)
