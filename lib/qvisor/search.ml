type resources = { num_queues : int; queue_capacity_pkts : int }

type proposal = {
  original : Policy.t;
  relaxed : Policy.t;
  demotions : (string * string) list;
  plan : Synthesizer.plan;
  bounds : int array;
  exact_fit : bool;
}

let required_queues policy = List.length (Policy.strict_tiers policy)

(* Demote the lowest-priority [>>] into [>]: merge the last two strict
   tiers into one Prefer tier.  Lowest priority first because a demotion
   there perturbs the fewest worst-case guarantees (everything above keeps
   its isolation). *)
let demote_last policy =
  match policy with
  | Policy.Strict tiers when List.length tiers >= 2 ->
    let rec split_last_two acc = function
      | [ a; b ] -> (List.rev acc, a, b)
      | x :: rest -> split_last_two (x :: acc) rest
      | [] -> assert false
    in
    let front, a, b = split_last_two [] tiers in
    let flatten = function Policy.Prefer l -> l | other -> [ other ] in
    let merged = Policy.Prefer (flatten a @ flatten b) in
    let relaxed =
      match front with
      | [] -> merged
      | _ -> Policy.Strict (front @ [ merged ])
    in
    Some (relaxed, (Policy.to_string a, Policy.to_string b))
  | Policy.Strict _ | Policy.Tenant _ | Policy.Share _ | Policy.Prefer _ ->
    None

let fit ?config ~tenants ~policy ~resources () =
  if resources.num_queues <= 0 then Error (Error.Config "num_queues <= 0")
  else begin
    let rec search current demotions =
      if required_queues current <= resources.num_queues then begin
        match Synthesizer.synthesize ?config ~tenants ~policy:current () with
        | Error e -> Error e
        | Ok plan -> (
          match
            Deploy.queue_bounds_of_plan ~plan ~num_queues:resources.num_queues
          with
          | Error e -> Error e
          | Ok bounds ->
            Ok
              {
                original = policy;
                relaxed = current;
                demotions = List.rev demotions;
                plan;
                bounds;
                exact_fit = demotions = [];
              })
      end
      else begin
        match demote_last current with
        | Some (relaxed, demotion) -> search relaxed (demotion :: demotions)
        | None -> Error (Error.Deploy "policy cannot be relaxed further")
      end
    in
    search policy []
  end

let pp_proposal ppf p =
  Format.fprintf ppf "@[<v>original: %a@,deployable: %a%s" Policy.pp p.original
    Policy.pp p.relaxed
    (if p.exact_fit then "  (exact fit)" else "");
  List.iter
    (fun (a, b) ->
      Format.fprintf ppf "@,gave up: (%s) >> (%s) weakened to best-effort" a b)
    p.demotions;
  Format.fprintf ppf "@,queues: %d (bounds:" (Array.length p.bounds);
  Array.iter (fun b -> Format.fprintf ppf " %d" b) p.bounds;
  Format.fprintf ppf ")@]"
