type backend =
  | Ideal_pifo of { capacity_pkts : int }
  | Sp_bank of { num_queues : int; queue_capacity_pkts : int }
  | Sp_pifo of { num_queues : int; queue_capacity_pkts : int }
  | Aifo of { capacity_pkts : int; window : int; k : float }
  | Drr_bank of {
      num_queues : int;
      queue_capacity_pkts : int;
      quantum_bytes : int;
    }
  | Calendar of { num_buckets : int; bucket_width : int; capacity_pkts : int }

type guarantee_level = Exact | Tiered of int | Approximate

(* The transformed rank span of each top-level strict tier, in priority
   order. *)
let tier_spans (plan : Synthesizer.plan) =
  let band_of_name name =
    let a =
      List.find
        (fun a -> a.Synthesizer.tenant.Tenant.name = name)
        plan.Synthesizer.assignments
    in
    a.Synthesizer.band
  in
  Policy.strict_tiers plan.Synthesizer.policy
  |> List.map (fun tier ->
         let bands = List.map band_of_name (Policy.tenant_names tier) in
         let lo =
           List.fold_left (fun acc b -> min acc b.Synthesizer.lo) max_int bands
         in
         let hi =
           List.fold_left (fun acc b -> max acc b.Synthesizer.hi) min_int bands
         in
         (lo, hi))
  |> List.sort compare

let queue_bounds ~(plan : Synthesizer.plan) ~spans ~n_tiers ~num_queues =
  let widths = List.map (fun (lo, hi) -> hi - lo + 1) spans in
  let total_width = List.fold_left ( + ) 0 widths in
  (* Every tier gets one queue; extras go proportionally to width, with the
     remainder biased to the widest tiers. *)
  let extra = num_queues - n_tiers in
  let base_extra =
    List.map (fun w -> extra * w / max 1 total_width) widths
  in
  let remainder = extra - List.fold_left ( + ) 0 base_extra in
  let indexed = List.mapi (fun i w -> (i, w)) widths in
  let by_width =
    List.sort (fun (_, w1) (_, w2) -> compare w2 w1) indexed |> List.map fst
  in
  let bonus = Array.make n_tiers 0 in
  List.iteri (fun pos i -> if pos < remainder then bonus.(i) <- 1) by_width;
  let queues_per_tier =
    List.mapi (fun i be -> 1 + be + bonus.(i)) base_extra
  in
  let bounds = ref [] in
  List.iteri
    (fun i (lo, hi) ->
      let q = List.nth queues_per_tier i in
      let width = hi - lo + 1 in
      for j = 1 to q do
        let bound =
          if i = n_tiers - 1 && j = q then plan.Synthesizer.rank_hi
          else lo + (j * width / q) - 1
        in
        bounds := bound :: !bounds
      done)
    spans;
  Array.of_list (List.rev !bounds)

let queue_bounds_of_plan ~(plan : Synthesizer.plan) ~num_queues =
  let spans = tier_spans plan in
  let n_tiers = List.length spans in
  if num_queues < n_tiers then
    Error (Error.Deploy "fewer queues than strict tiers")
  else Ok (queue_bounds ~plan ~spans ~n_tiers ~num_queues)

let instantiate ~(plan : Synthesizer.plan) backend =
  let ( let* ) = Result.bind in
  match backend with
  | Ideal_pifo { capacity_pkts } ->
    (* Bucket_queue is the default exact backend: identical semantics to
       Pifo_queue with O(1) FFS-indexed operations.  The plan's transformed
       rank space is bounded by [rank_hi], so the bucket array covers every
       rank the synthesizer can emit. *)
    Ok
      (Sched.Bucket_queue.create ~name:"qvisor-pifo"
         ~rank_max:plan.Synthesizer.rank_hi ~capacity_pkts ())
  | Sp_bank { num_queues; queue_capacity_pkts } ->
    let* bounds = queue_bounds_of_plan ~plan ~num_queues in
    Ok
      (Sched.Sp_bank.create ~name:"qvisor-sp-bank" ~num_queues
         ~queue_capacity_pkts
         ~classify:(fun p ->
           Sched.Sp_bank.queue_of_rank ~bounds p.Sched.Packet.rank)
         ())
  | Sp_pifo { num_queues; queue_capacity_pkts } ->
    Ok
      (Sched.Sp_pifo.create ~name:"qvisor-sp-pifo" ~num_queues
         ~queue_capacity_pkts ())
  | Aifo { capacity_pkts; window; k } ->
    Ok (Sched.Aifo.create ~name:"qvisor-aifo" ~window ~k ~capacity_pkts ())
  | Drr_bank { num_queues; queue_capacity_pkts; quantum_bytes } ->
    let* bounds = queue_bounds_of_plan ~plan ~num_queues in
    Ok
      (Sched.Drr_bank.create ~name:"qvisor-drr" ~num_queues
         ~queue_capacity_pkts ~quantum_bytes
         ~classify:(fun p ->
           Sched.Sp_bank.queue_of_rank ~bounds p.Sched.Packet.rank)
         ())
  | Calendar { num_buckets; bucket_width; capacity_pkts } ->
    Ok
      (Sched.Calendar_queue.create ~name:"qvisor-calendar" ~num_buckets
         ~bucket_width ~capacity_pkts ())

let instantiate_exn ~plan backend =
  match instantiate ~plan backend with
  | Ok q -> q
  | Error e -> invalid_arg ("Deploy.instantiate: " ^ Error.to_string e)

let guarantees ~plan backend =
  match backend with
  | Ideal_pifo _ -> Exact
  | Sp_bank { num_queues; _ } ->
    let n_tiers = List.length (tier_spans plan) in
    Tiered (num_queues - n_tiers + 1)
  | Sp_pifo _ | Aifo _ | Drr_bank _ | Calendar _ -> Approximate

let pifo_tree_of_policy ~tenants ~policy ~capacity_pkts ?(prefer_decay = 0.25)
    () =
  if prefer_decay <= 0. || prefer_decay >= 1. then
    Error (Error.Config "prefer_decay outside (0, 1)")
  else begin
    let known = List.map (fun t -> t.Tenant.name) tenants in
    match Policy.validate policy ~known with
    | Error e -> Error e
    | Ok () ->
      (* Leaves come out in the policy's left-to-right tenant order, which
         matches the depth-first numbering [Pifo_tree.to_qdisc] uses. *)
      let weight_of name =
        (List.find (fun t -> t.Tenant.name = name) tenants).Tenant.weight
      in
      let rec build node =
        match node with
        | Policy.Tenant _ -> Sched.Pifo_tree.leaf ()
        | Policy.Strict tiers -> Sched.Pifo_tree.strict (List.map build tiers)
        | Policy.Share members ->
          Sched.Pifo_tree.wfq
            (List.map
               (fun m ->
                 let w =
                   match m with
                   | Policy.Tenant name -> weight_of name
                   | Policy.Share _ | Policy.Prefer _ | Policy.Strict _ -> 1.0
                 in
                 (build m, w))
               members)
        | Policy.Prefer groups ->
          Sched.Pifo_tree.wfq
            (List.mapi
               (fun i g -> (build g, prefer_decay ** float_of_int i))
               groups)
      in
      let tree = build policy in
      let names = Policy.tenant_names policy in
      let leaf_of_tenant = Hashtbl.create 8 in
      List.iteri
        (fun leaf_index name ->
          let tenant = List.find (fun t -> t.Tenant.name = name) tenants in
          Hashtbl.replace leaf_of_tenant tenant.Tenant.id leaf_index)
        names;
      let last_leaf = List.length names - 1 in
      let classify (p : Sched.Packet.t) =
        match Hashtbl.find_opt leaf_of_tenant p.Sched.Packet.tenant with
        | Some leaf -> leaf
        | None -> last_leaf
      in
      Ok
        (Sched.Pifo_tree.to_qdisc ~name:"qvisor-pifo-tree" ~classify
           ~capacity_pkts tree)
  end

let describe = function
  | Ideal_pifo { capacity_pkts } ->
    Printf.sprintf "ideal PIFO (capacity %d pkts)" capacity_pkts
  | Sp_bank { num_queues; queue_capacity_pkts } ->
    Printf.sprintf "strict-priority bank (%d queues x %d pkts, static bounds)"
      num_queues queue_capacity_pkts
  | Sp_pifo { num_queues; queue_capacity_pkts } ->
    Printf.sprintf "SP-PIFO (%d queues x %d pkts, adaptive bounds)" num_queues
      queue_capacity_pkts
  | Aifo { capacity_pkts; window; k } ->
    Printf.sprintf "AIFO (single queue %d pkts, window %d, k=%.2f)"
      capacity_pkts window k
  | Drr_bank { num_queues; queue_capacity_pkts; quantum_bytes } ->
    Printf.sprintf "DRR bank (%d queues x %d pkts, quantum %d B)" num_queues
      queue_capacity_pkts quantum_bytes
  | Calendar { num_buckets; bucket_width; capacity_pkts } ->
    Printf.sprintf "calendar queue (%d buckets x width %d, %d pkts)"
      num_buckets bucket_width capacity_pkts
