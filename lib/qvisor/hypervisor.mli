(** The assembled scheduling hypervisor — a batteries-included facade over
    the QVISOR stack for users who want the Fig. 1 box, not its parts.

    One [create] call parses the operator policy, synthesizes the joint
    scheduling function, compiles the pre-processor, arms the runtime
    monitor, and (optionally) the adversarial-workload guard.  [process]
    is the single line-rate entry point to install in front of the
    hardware scheduler; [make_scheduler] instantiates that scheduler for
    any supported backend. *)

type t

val create :
  ?config:Synthesizer.config ->
  ?guard:Guard.config ->
  ?guarded:bool ->
  tenants:Tenant.t list ->
  policy:string ->
  unit ->
  (t, Error.t) result
(** [guarded] (default [true]) arms the adversarial-workload guard with
    [guard] (default {!Guard.default_config}).  Fails with
    {!Error.Policy_parse} on a malformed policy string, otherwise with
    the synthesis error when the initial plan cannot be built. *)

val create_exn :
  ?config:Synthesizer.config ->
  ?guard:Guard.config ->
  ?guarded:bool ->
  tenants:Tenant.t list ->
  policy:string ->
  unit ->
  t

val process : t -> Sched.Packet.t -> unit
(** The data-plane path: guard observation and mitigation (when armed),
    runtime observation, rank transformation. *)

val make_scheduler : t -> Deploy.backend -> (Sched.Qdisc.t, Error.t) result
(** Instantiate the hardware scheduler for the current plan (see
    {!Deploy.instantiate}). *)

val make_scheduler_exn : t -> Deploy.backend -> Sched.Qdisc.t
(** @raise Invalid_argument on deployment errors. *)

val plan : t -> Synthesizer.plan

val analyze : t -> Analysis.report
(** Worst-case guarantee report for the current plan. *)

val delay_bounds :
  t ->
  envelopes:(int * Latency.envelope) list ->
  link_rate:float ->
  (Tenant.t * Latency.bound) list
(** Worst-case queueing-delay bounds per tenant under the current plan
    (see {!Latency.report}). *)

val compile_pipeline :
  t -> ?resources:Pipeline.resources -> unit -> (Pipeline.program, string) result
(** Compile the current plan to a match-action pipeline
    (see {!Pipeline.compile}). *)

val verdict : t -> tenant_id:int -> Guard.verdict
(** [Conforming] when the guard is not armed. *)

val add_tenant :
  t -> Tenant.t -> ?policy:string -> unit -> (unit, Error.t) result
(** Tenant joins; re-synthesizes and hot-swaps (see {!Runtime.add_tenant}).
    The guard, when armed, starts watching the newcomer. *)

val remove_tenant :
  t -> tenant_id:int -> ?policy:string -> unit -> (unit, Error.t) result

val refresh : t -> (unit, Error.t) result
(** Re-synthesize from observed rank ranges ({!Runtime.refresh}). *)

val packets_processed : t -> int
