(** The operator's inter-tenant policy language (§3.1).

    A policy is a string of tenant names combined with three operators:

    - [>>] — strict priority: everything on the left is {e isolated} from
      (always served before) everything on the right;
    - [>] — preferential, best-effort priority;
    - [+] — resource sharing.

    Binding tightness is [+] > [>] > [>>], so
    [{T1 >> T2 > T3 + T4 >> T5}] reads: T1 strictly above the middle tier;
    inside the middle tier T2 is preferred over the sharing group T3+T4;
    the whole middle tier is strictly above T5 — exactly the paper's
    worked example.

    As an extension beyond the paper's three flat operators (its
    "increasing specification expressivity" direction), parentheses allow
    arbitrary nesting: [T1 + (T2 >> T3)] shares the resources between T1
    and a sub-policy in which T2 is strictly above T3. *)

type t =
  | Tenant of string
  | Share of t list  (** [+], two or more members *)
  | Prefer of t list  (** [>], ordered, two or more members *)
  | Strict of t list  (** [>>], ordered, two or more members *)

val parse : string -> (t, Error.t) result
(** Parse a policy string.  Tenant names match [\[A-Za-z_\]\[A-Za-z0-9_\]*].
    Braces (as in the paper's notation [{T1 >> T2}]) are accepted and
    ignored; parentheses group.  Fails with {!Error.Policy_parse}. *)

val parse_exn : string -> t
(** @raise Invalid_argument on parse errors. *)

val to_string : t -> string
(** Render back to the operator syntax (canonical spacing, no braces,
    parentheses only where nesting requires them); [parse (to_string t)]
    yields [t] back. *)

val tenant_names : t -> string list
(** All tenant names, left to right. *)

val validate : t -> known:string list -> (unit, Error.t) result
(** Check that each policy name is a known tenant ({!Error.Unknown_tenant}
    otherwise — reported before any other defect, since an unknown name
    usually explains the rest), appears only once, and that every known
    tenant is covered by the policy (both {!Error.Synthesis}).  Runs in
    [O(n log n)] over the tenant count. *)

val strict_tiers : t -> t list
(** The top-level strict-priority tiers, highest priority first (a
    singleton list when the root is not [Strict]). *)

val pp : Format.formatter -> t -> unit
