type t =
  | Tenant of string
  | Share of t list
  | Prefer of t list
  | Strict of t list

(* ------------------------------------------------------------------ *)
(* Lexing                                                             *)
(* ------------------------------------------------------------------ *)

type token = Name of string | Op_share | Op_prefer | Op_strict | Lparen | Rparen

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let lex input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else begin
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' | '{' | '}' -> go (i + 1) acc
      | '+' -> go (i + 1) (Op_share :: acc)
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | '>' ->
        if i + 1 < n && input.[i + 1] = '>' then go (i + 2) (Op_strict :: acc)
        else go (i + 1) (Op_prefer :: acc)
      | c when is_name_start c ->
        let j = ref (i + 1) in
        while !j < n && is_name_char input.[!j] do
          incr j
        done;
        go !j (Name (String.sub input i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C at position %d" c i)
    end
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Recursive-descent parsing:                                         *)
(*   strict := prefer (">>" prefer)*                                  *)
(*   prefer := share (">" share)*                                     *)
(*   share  := atom ("+" atom)*                                       *)
(*   atom   := NAME | "(" strict ")"                                  *)
(* Parentheses enable arbitrary nesting (the paper's "more expressive *)
(* specifications" direction), e.g. "T1 + (T2 >> T3)".                *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let group ctor = function [ single ] -> single | many -> ctor many

let parse_tokens tokens =
  let stream = ref tokens in
  let peek () = match !stream with [] -> None | tok :: _ -> Some tok in
  let advance () =
    match !stream with
    | [] -> raise (Parse_error "unexpected end of policy")
    | tok :: rest ->
      stream := rest;
      tok
  in
  (* Parse one binary level: [sub] parses the tighter-binding operand,
     [op] is the token that continues this level, [ctor] builds the node. *)
  let rec level sub op ctor () =
    let first = sub () in
    let rec more acc =
      match peek () with
      | Some tok when tok = op ->
        ignore (advance ());
        more (sub () :: acc)
      | _ -> List.rev acc
    in
    group ctor (more [ first ])
  and strict () = level prefer Op_strict (fun l -> Strict l) ()
  and prefer () = level share Op_prefer (fun l -> Prefer l) ()
  and share () = level atom Op_share (fun l -> Share l) ()
  and atom () =
    match advance () with
    | Name n -> Tenant n
    | Lparen ->
      let inner = strict () in
      (match advance () with
      | Rparen -> inner
      | _ -> raise (Parse_error "expected ')'"))
    | Op_share | Op_prefer | Op_strict ->
      raise (Parse_error "operator where a tenant name was expected")
    | Rparen -> raise (Parse_error "unexpected ')'")
  in
  match tokens with
  | [] -> Error "empty policy"
  | _ -> (
    try
      let t = strict () in
      match !stream with
      | [] -> Ok t
      | Rparen :: _ -> Error "unbalanced ')'"
      | _ -> Error "trailing tokens after a complete policy"
    with Parse_error e -> Error e)

let parse input =
  let wrap = Result.map_error (fun e -> Error.Policy_parse e) in
  match lex input with
  | Error e -> Error (Error.Policy_parse e)
  | Ok tokens -> wrap (parse_tokens tokens)

let parse_exn input =
  match parse input with
  | Ok t -> t
  | Error (Error.Policy_parse e) -> invalid_arg ("Policy.parse: " ^ e)
  | Error e -> invalid_arg ("Policy.parse: " ^ Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Rendering and queries                                              *)
(* ------------------------------------------------------------------ *)

(* Precedence-aware rendering: parenthesize a child that binds looser
   than its context so that [parse (to_string t) = Ok t]. *)
let prec = function Strict _ -> 0 | Prefer _ -> 1 | Share _ -> 2 | Tenant _ -> 3

let rec render ~min_prec t =
  let self = prec t in
  let body =
    match t with
    | Tenant n -> n
    | Share l -> String.concat " + " (List.map (render ~min_prec:3) l)
    | Prefer l -> String.concat " > " (List.map (render ~min_prec:2) l)
    | Strict l -> String.concat " >> " (List.map (render ~min_prec:1) l)
  in
  if self < min_prec then "(" ^ body ^ ")" else body

let to_string t = render ~min_prec:0 t

let rec tenant_names = function
  | Tenant n -> [ n ]
  | Share l | Prefer l | Strict l -> List.concat_map tenant_names l

module StringSet = Set.Make (String)

let validate t ~known =
  let names = tenant_names t in
  let known_set = StringSet.of_list known in
  (* Report an unknown name before a duplicate: "TX appears twice" is a
     red herring when the real problem is that TX is not a tenant at
     all. *)
  match List.find_opt (fun n -> not (StringSet.mem n known_set)) names with
  | Some n -> Error (Error.Unknown_tenant n)
  | None -> (
    let rec find_dup seen = function
      | [] -> None
      | n :: rest ->
        if StringSet.mem n seen then Some n
        else find_dup (StringSet.add n seen) rest
    in
    match find_dup StringSet.empty names with
    | Some n ->
      Error
        (Error.Synthesis (Printf.sprintf "tenant %s appears more than once" n))
    | None -> (
      let name_set = StringSet.of_list names in
      match List.find_opt (fun n -> not (StringSet.mem n name_set)) known with
      | Some n ->
        Error
          (Error.Synthesis
             (Printf.sprintf "tenant %s not covered by policy" n))
      | None -> Ok ()))

let strict_tiers = function Strict l -> l | other -> [ other ]

let pp ppf t = Format.pp_print_string ppf (to_string t)
