(** Rank transformation functions (§3.2).

    The synthesizer expresses the joint scheduling function as per-tenant
    transformations applied to packet ranks at line rate.  Two primitives
    are supported, as in the paper: {e rank-shift} (prioritize one tenant
    over another by displacing its rank band) and {e rank-normalization}
    (bound a rank function's range and quantize it so different tenants
    compare fairly).  Transformations compose. *)

type t =
  | Identity
  | Shift of int  (** add a constant to the rank *)
  | Normalize of {
      src_lo : int;
      src_hi : int;
      dst_lo : int;
      dst_hi : int;
      levels : int;
          (** number of discrete output levels spread evenly across
              [dst_lo..dst_hi]; ranks outside the source range clamp *)
    }
  | Compose of t * t  (** apply the first, then the second *)

val shift : int -> t

val normalize :
  src:int * int -> dst:int * int -> ?levels:int -> unit -> t
(** Affine map of the source interval onto the destination interval with
    clamping, quantized to [levels] (default: the full destination width).
    @raise Invalid_argument on empty intervals or [levels <= 0]. *)

val compose : t -> t -> t
(** [compose f g] applies [f] first. *)

val apply : t -> int -> int
(** Transform one rank. *)

val apply_exact : t -> int -> float
(** The idealized real-valued transformation: the same clamped affine
    map, but without level quantization or integer rounding.
    [|float (apply t r) -. apply_exact t r|] is the rank-approximation
    error the quantized data path introduces for rank [r] — the
    distribution telemetry tracks live. *)

val range : t -> int * int -> int * int
(** Image interval of an input rank interval (interval analysis used by
    the static analyzer).  Both bounds inclusive. *)

val is_monotone : t -> bool
(** All primitive transformations preserve intra-tenant rank order (the
    paper's requirement that tenants keep their own scheduling
    behaviour); always true today, kept for future primitives. *)

val pp : Format.formatter -> t -> unit
