type band = { lo : int; hi : int }

type assignment = { tenant : Tenant.t; band : band; transform : Transform.t }

type plan = {
  policy : Policy.t;
  rank_lo : int;
  rank_hi : int;
  assignments : assignment list;
  fallback : Transform.t;
}

type config = {
  rank_lo : int;
  rank_hi : int;
  levels : int option;
  prefer_bias : float;
}

let default_config =
  { rank_lo = 0; rank_hi = 65535; levels = None; prefer_bias = 0.5 }

let rec tenant_count = function
  | Policy.Tenant _ -> 1
  | Policy.Share l | Policy.Prefer l | Policy.Strict l ->
    List.fold_left (fun acc n -> acc + tenant_count n) 0 l

let width b = b.hi - b.lo + 1

(* One tenant mapped onto a band: normalize its declared raw range onto
   the band, quantized to the configured number of levels. *)
let assign config tenants_by_name name band =
  let tenant = List.assoc name tenants_by_name in
  let levels =
    let full = width band in
    match config.levels with None -> full | Some l -> min l full
  in
  let transform =
    Transform.normalize
      ~src:(tenant.Tenant.rank_lo, tenant.Tenant.rank_hi)
      ~dst:(band.lo, band.hi) ~levels ()
  in
  { tenant; band; transform }

(* Weighted member of a share group: weight w compresses the member into
   the top (best) 1/w of the band. *)
let share_band band weight =
  let w = width band in
  let span = max 1 (int_of_float (Float.round (float_of_int w /. weight))) in
  { band with hi = min band.hi (band.lo + span - 1) }

(* Split a band into disjoint tiers with widths proportional to tenant
   counts (at least one rank per tenant). *)
let split_strict band counts =
  let total = List.fold_left ( + ) 0 counts in
  let w = width band in
  let rec go lo remaining_counts remaining_total acc =
    match remaining_counts with
    | [] -> List.rev acc
    | [ _last ] -> List.rev ({ lo; hi = band.hi } :: acc)
    | c :: rest ->
      let share = max c (w * c / total) in
      let hi = min band.hi (lo + share - 1) in
      go (hi + 1) rest (remaining_total - c) ({ lo; hi } :: acc)
  in
  go band.lo counts total []

let rec allocate config tenants_by_name node band =
  match node with
  | Policy.Tenant name -> [ assign config tenants_by_name name band ]
  | Policy.Share members ->
    List.concat_map
      (fun member ->
        match member with
        | Policy.Tenant name ->
          let tenant = List.assoc name tenants_by_name in
          let sub = share_band band tenant.Tenant.weight in
          [ assign config tenants_by_name name sub ]
        | _ ->
          (* The grammar only nests atoms under '+', but stay total. *)
          allocate config tenants_by_name member band)
      members
  | Policy.Prefer groups ->
    let n = List.length groups in
    let step =
      if n <= 1 then 0
      else
        int_of_float (config.prefer_bias *. float_of_int (width band))
        / n
    in
    List.concat
      (List.mapi
         (fun i g ->
           let lo = min band.hi (band.lo + (i * step)) in
           allocate config tenants_by_name g { lo; hi = band.hi })
         groups)
  | Policy.Strict tiers ->
    let counts = List.map tenant_count tiers in
    let bands = split_strict band counts in
    List.concat (List.map2 (allocate config tenants_by_name) tiers bands)

let synthesize ?(profiler = Engine.Span.disabled) ?(config = default_config)
    ~tenants ~policy () =
  Engine.Span.with_ profiler ~name:"synthesizer.synthesize" @@ fun () ->
  let ( let* ) r f = Result.bind r f in
  let* () =
    if config.rank_lo > config.rank_hi then Error (Error.Config "empty rank space")
    else if config.prefer_bias <= 0. || config.prefer_bias > 1. then
      Error (Error.Config "prefer_bias outside (0, 1]")
    else Ok ()
  in
  let known = List.map (fun t -> t.Tenant.name) tenants in
  let* () =
    if List.length (List.sort_uniq compare known) <> List.length known then
      Error (Error.Synthesis "duplicate tenant names")
    else Ok ()
  in
  let* () = Policy.validate policy ~known in
  let* () =
    let ids = List.map (fun t -> t.Tenant.id) tenants in
    if List.length (List.sort_uniq compare ids) <> List.length ids then
      Error (Error.Synthesis "duplicate tenant ids")
    else Ok ()
  in
  let* () =
    let needed = List.length tenants in
    if config.rank_hi - config.rank_lo + 1 < needed then
      Error (Error.Synthesis "rank space narrower than the tenant count")
    else Ok ()
  in
  let tenants_by_name = List.map (fun t -> (t.Tenant.name, t)) tenants in
  let root_band = { lo = config.rank_lo; hi = config.rank_hi } in
  let assignments =
    allocate config tenants_by_name policy root_band
    |> List.sort (fun a b -> compare a.tenant.Tenant.id b.tenant.Tenant.id)
  in
  let fallback =
    Transform.normalize ~src:(0, 1) ~dst:(config.rank_hi, config.rank_hi)
      ~levels:1 ()
  in
  Ok
    {
      policy;
      rank_lo = config.rank_lo;
      rank_hi = config.rank_hi;
      assignments;
      fallback;
    }

let synthesize_exn ?profiler ?config ~tenants ~policy () =
  match synthesize ?profiler ?config ~tenants ~policy () with
  | Ok plan -> plan
  | Error e -> invalid_arg ("Synthesizer.synthesize: " ^ Error.to_string e)

let find plan ~tenant_id =
  List.find_opt (fun a -> a.tenant.Tenant.id = tenant_id) plan.assignments

let transform_of plan ~tenant_id =
  match find plan ~tenant_id with
  | Some a -> a.transform
  | None -> plan.fallback

let band_of plan ~tenant_id = Option.map (fun a -> a.band) (find plan ~tenant_id)

let pp_plan ppf plan =
  Format.fprintf ppf "@[<v>policy: %a@,rank space: [%d,%d]" Policy.pp
    plan.policy plan.rank_lo plan.rank_hi;
  List.iter
    (fun a ->
      Format.fprintf ppf "@,%s -> band [%d,%d] via %a" a.tenant.Tenant.name
        a.band.lo a.band.hi Transform.pp a.transform)
    plan.assignments;
  Format.fprintf ppf "@]"
