type t =
  | Policy_parse of string
  | Unknown_tenant of string
  | Synthesis of string
  | Deploy of string
  | Config of string
  | Unavailable of string

let to_string = function
  | Policy_parse msg -> "policy: " ^ msg
  | Unknown_tenant name -> "unknown tenant " ^ name
  | Synthesis msg -> "synthesis: " ^ msg
  | Deploy msg -> "deploy: " ^ msg
  | Config msg -> "config: " ^ msg
  | Unavailable msg -> "unavailable: " ^ msg

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal (a : t) b = a = b
