type t = {
  runtime : Runtime.t;
  guard : Guard.t option;
  mutable processed : int;
}

let create ?config ?guard ?(guarded = true) ~tenants ~policy () =
  let ( let* ) = Result.bind in
  let* policy = Policy.parse policy in
  let* runtime = Runtime.create ?config ~tenants ~policy () in
  let guard =
    if guarded then Some (Guard.create ?config:guard ~tenants ()) else None
  in
  Ok { runtime; guard; processed = 0 }

let create_exn ?config ?guard ?guarded ~tenants ~policy () =
  match create ?config ?guard ?guarded ~tenants ~policy () with
  | Ok t -> t
  | Error e -> invalid_arg ("Hypervisor.create: " ^ Error.to_string e)

let process t p =
  t.processed <- t.processed + 1;
  match t.guard with
  | Some guard ->
    Runtime.observe t.runtime p;
    Guard.process guard (Runtime.preprocessor t.runtime) p
  | None -> Runtime.process t.runtime p

let make_scheduler t backend =
  Deploy.instantiate ~plan:(Runtime.plan t.runtime) backend

let make_scheduler_exn t backend =
  Deploy.instantiate_exn ~plan:(Runtime.plan t.runtime) backend

let plan t = Runtime.plan t.runtime

let analyze t = Analysis.check (plan t)

let delay_bounds t ~envelopes ~link_rate =
  Latency.report ~plan:(plan t) ~envelopes ~link_rate ()

let compile_pipeline t ?resources () = Pipeline.compile ?resources (plan t)

let verdict t ~tenant_id =
  match t.guard with
  | None -> Guard.Conforming
  | Some guard -> Guard.verdict guard ~tenant_id

let parse_policy_opt = function
  | None -> Ok None
  | Some s -> Result.map Option.some (Policy.parse s)

let add_tenant t tenant ?policy () =
  match parse_policy_opt policy with
  | Error e -> Error e
  | Ok policy -> (
    match Runtime.add_tenant t.runtime tenant ?policy () with
    | Ok () ->
      Option.iter (fun guard -> Guard.watch guard tenant) t.guard;
      Ok ()
    | Error _ as e -> e)

let remove_tenant t ~tenant_id ?policy () =
  match parse_policy_opt policy with
  | Error e -> Error e
  | Ok policy -> (
    match Runtime.remove_tenant t.runtime ~tenant_id ?policy () with
    | Ok () ->
      Option.iter (fun guard -> Guard.unwatch guard ~tenant_id) t.guard;
      Ok ()
    | Error _ as e -> e)

let refresh t = Runtime.refresh t.runtime

let packets_processed t = t.processed
