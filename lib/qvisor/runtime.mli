(** The runtime controller (the paper's Idea 2, online flavour).

    An event-driven controller in the spirit of the paper's SDN analogy:
    it observes the raw ranks each tenant actually emits (constant-memory
    quantile sketches), supports tenants joining and leaving at runtime,
    and re-synthesizes + hot-swaps the pre-processor's plan when the
    population or the observed distributions change. *)

type t

val create :
  ?config:Synthesizer.config ->
  ?telemetry:Engine.Telemetry.t ->
  ?clock:(unit -> float) ->
  tenants:Tenant.t list ->
  policy:Policy.t ->
  unit ->
  (t, Error.t) result
(** Build the controller, synthesize the initial plan, and compile the
    pre-processor.  Fails with the initial synthesis error when there is
    one.

    [telemetry] (default: off) is threaded to the pre-processor and
    counts every successful re-synthesis under [runtime.resyntheses];
    when the registry carries a trace sink, each re-synthesis is offered
    as a ["resynthesis"] event stamped with [clock ()] (default [0.] —
    pass [fun () -> Engine.Sim.now sim] inside a simulation). *)

val create_exn :
  ?config:Synthesizer.config ->
  ?telemetry:Engine.Telemetry.t ->
  ?clock:(unit -> float) ->
  tenants:Tenant.t list ->
  policy:Policy.t ->
  unit ->
  t
(** @raise Invalid_argument if the initial synthesis fails. *)

val process : t -> Sched.Packet.t -> unit
(** The line-rate path: observe the packet's rank label for its tenant's
    sketch, then apply the current transformation.  Install this as the
    fabric's [preprocess] hook. *)

val observe : t -> Sched.Packet.t -> unit
(** Only the observation half of {!process} — for callers that route the
    transformation through their own path (e.g. the guarded hypervisor). *)

val preprocessor : t -> Preprocessor.t

val plan : t -> Synthesizer.plan

val resyntheses : t -> int
(** Number of plan recomputations so far (initial synthesis excluded). *)

val observed_range : t -> tenant_id:int -> (int * int) option
(** Smallest and largest raw rank seen from a tenant since the last
    [refresh] reset ([None] before any packet). *)

val add_tenant :
  t -> Tenant.t -> ?policy:Policy.t -> unit -> (unit, Error.t) result
(** A tenant joins (the paper's t1 moment in Fig. 2).  A new policy
    covering the extended population must be supplied via [?policy] unless
    the current one already names the tenant.  On success the plan is
    re-synthesized and swapped in. *)

val remove_tenant :
  t -> tenant_id:int -> ?policy:Policy.t -> unit -> (unit, Error.t) result
(** A tenant leaves.  [?policy] replaces the operator policy when the
    current one would still name the departed tenant (which it normally
    does). *)

val tenants : t -> Tenant.t list
(** The currently-deployed tenant population, in deployment order. *)

val policy : t -> Policy.t
(** The currently-deployed operator policy. *)

val update_policy : t -> Policy.t -> (unit, Error.t) result
(** Re-synthesize under a new operator policy for the unchanged tenant
    population and atomically swap the plan in.  On failure the old plan
    keeps serving — the daemon's admission pipeline leans on this. *)

val config : t -> Synthesizer.config
(** The synthesizer configuration future redeploys will use. *)

val coarsen : t -> levels:int -> (unit, Error.t) result
(** Remediation fallback: lower the quantization resolution to [levels]
    and re-synthesize.  Atomic like every redeploy — on failure both the
    plan {e and} the previous configuration are kept.
    Fails with [Config] when [levels < 2]. *)

val refresh : t -> (unit, Error.t) result
(** Re-synthesize using the {e observed} rank ranges instead of the
    declared ones (tenants that emitted nothing keep their declaration),
    then reset the observation window.  This is the paper's "compute
    transformation functions … based on the distribution of the latest
    packets". *)
