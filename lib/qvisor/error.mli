(** Typed errors for the QVISOR public API.

    Every fallible constructor in the library ({!Runtime.create},
    {!Hypervisor.create}, {!Deploy.instantiate}, {!Synthesizer.synthesize},
    the experiment harnesses) reports failure as [(_, Error.t) result]
    rather than a bare string or a stray [Invalid_argument].  Typed errors
    matter once work is fanned out across domains: a worker returns its
    failure as a value, the caller pattern-matches on the variant, and no
    exception ever crosses a domain boundary. *)

type t =
  | Policy_parse of string
      (** the operator policy string does not lex/parse *)
  | Unknown_tenant of string
      (** the policy names a tenant that was never declared *)
  | Synthesis of string
      (** the synthesizer cannot build a joint scheduling function
          (coverage, duplicates, rank-space too narrow, ...) *)
  | Deploy of string
      (** a plan cannot be instantiated on the requested backend *)
  | Config of string
      (** malformed configuration: synthesizer config, experiment
          parameters, CLI arguments *)
  | Unavailable of string
      (** the service cannot take the request right now: a draining or
          shutting-down daemon refusing control-plane mutations *)

val to_string : t -> string
(** Human-readable rendering, prefixed with the variant's domain,
    e.g. ["policy: unexpected character ..."] or
    ["deploy: fewer queues than strict tiers"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
