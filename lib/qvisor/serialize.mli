(** JSON serialization of control-plane artifacts.

    A production hypervisor exchanges its configuration and its decisions
    with orchestration systems; this module gives every control-plane
    object a stable JSON form: tenants and policies round-trip, and
    synthesized plans / analysis reports / latency bounds export (they are
    re-derivable from the inputs, so no importer is provided for them). *)

val tenant_to_json : Tenant.t -> Engine.Json.t

val tenant_of_json : Engine.Json.t -> (Tenant.t, Error.t) result

val policy_to_json : Policy.t -> Engine.Json.t
(** Encoded as the operator-syntax string (the canonical form). *)

val policy_of_json : Engine.Json.t -> (Policy.t, Error.t) result

val transform_to_json : Transform.t -> Engine.Json.t

val config_to_json : Synthesizer.config -> Engine.Json.t
(** Rank space, quantization levels ([null] for full resolution) and
    prefer bias — everything needed to re-synthesize a plan from a spec,
    e.g. in a conformance reproducer file. *)

val config_of_json : Engine.Json.t -> (Synthesizer.config, Error.t) result

val plan_to_json : Synthesizer.plan -> Engine.Json.t
(** Policy, rank space, and per-tenant band + transformation. *)

val report_to_json : Analysis.report -> Engine.Json.t

val spec_to_json : tenants:Tenant.t list -> policy:Policy.t -> Engine.Json.t
(** The full input specification: what an operator would persist. *)

val spec_of_json :
  Engine.Json.t -> (Tenant.t list * Policy.t, Error.t) result

val error_to_json : Error.t -> Engine.Json.t
(** [{"kind": "synthesis", "message": ...}] — the form failure replies of
    the daemon wire protocol carry.  Round-trips through
    {!error_of_json}. *)

val error_of_json : Engine.Json.t -> (Error.t, Error.t) result
(** Inverse of {!error_to_json}; [Error] (a [Config]) on a malformed or
    unknown-kind object. *)
