(** Per-tenant service-level objectives: derivation and online audit.

    The judgment layer between the offline analysis and the running data
    plane.  {!derive} turns a synthesized plan (plus optional arrival
    envelopes) into one {!objective} per tenant:

    - a {e worst-case delay bound} from the network-calculus analysis
      ({!Latency.delay_bound}) when envelopes and a link rate are given —
      [None] when the tenant's tier is unstable or no envelope exists;
    - a {e drop budget}: the fraction of enqueue attempts the tenant may
      lose before its error budget is spent;
    - a {e rank-error budget} measured from the plan itself: the plan's
      own quantization error (sampled over the tenant's declared range)
      with headroom, so a healthy run never trips it but a buggy
      transform or an unmitigated attack does.

    An {!t} (auditor) then checks the objectives online against samples
    streamed from the data plane — enqueue attempts, drops, per-hop
    sojourn delays, pre-processor rank errors — in constant memory per
    tenant: one {!P2_quantile} sketch for the delay quantile plus
    window/EWMA drop accounting in the style of SRE burn-rate alerting:

    - {e fast burn} — last closed window's drop rate over the budget
      (catches an acute failure within one window);
    - {e slow burn} — EWMA of window burns (catches sustained slow leak);
    - {e budget remaining} — the run-cumulative error budget left.

    {!evaluate} folds a tenant's current status into one
    {!Engine.Health.signal} plus a human-readable detail string, ready to
    feed a {!Engine.Health} state machine. *)

type objective = {
  tenant : Tenant.t;
  delay_bound : float option;
      (** worst-case per-hop queueing delay, seconds; [None] when
          unbounded (unstable tier) or underived (no envelope) *)
  delay_quantile : float;  (** audited delay quantile, e.g. [0.99] *)
  drop_budget : float;  (** allowed drop fraction of enqueue attempts *)
  rank_error_budget : float;
      (** allowed [|applied - ideal|] rank distortion *)
}

val derive :
  plan:Synthesizer.plan ->
  ?envelopes:(int * Latency.envelope) list ->
  ?link_rate:float ->
  ?mtu_bytes:int ->
  ?delay_quantile:float ->
  ?drop_budget:float ->
  ?delay_headroom:float ->
  unit ->
  objective list
(** One objective per plan tenant, in tenant-id order.  Delay bounds are
    derived only when both [envelopes] and [link_rate] are given
    ([mtu_bytes] defaults to 1518 as in {!Latency}), then multiplied by
    [delay_headroom] (default [2.], at least [1.]): the calculus bound
    assumes FIFO service within the aggregate, but a tenant's own
    scheduler (pFabric's SRPT, say) reorders within the band, so a
    low-priority packet can be overtaken by roughly one extra backlog
    drain.  [delay_quantile] defaults to [0.99], [drop_budget] to
    [0.02]; a tenant below a strict edge keeps only a sanity-floor drop
    budget of [0.5] — starvation of a strictly-lower tier is [>>]
    working as specified, not an incident, so its drop objective guards
    against total collapse rather than promising service.
    The rank-error budget is [1.5 x + 1] where [x] is the plan's measured
    worst quantization error over (at most 1024 samples of) the tenant's
    declared range.
    @raise Invalid_argument when [drop_budget <= 0], [delay_quantile]
    is outside (0, 1), or [delay_headroom < 1]. *)

type audit_config = {
  window : int;  (** enqueue attempts per burn window (default 256) *)
  ewma_alpha : float;  (** slow-burn smoothing factor (default 0.2) *)
  fast_breach : float;
      (** fast-burn multiple that counts as a breach (default 4.0) *)
}

val default_audit_config : audit_config

type status = {
  objective : objective;
  attempts : int;  (** enqueue attempts observed (all hops) *)
  drops : int;
  drop_rate : float;  (** run-cumulative [drops / attempts] *)
  fast_burn : float;  (** last closed window's burn rate; [0.] initially *)
  slow_burn : float;  (** EWMA of window burn rates *)
  budget_remaining : float;  (** fraction of the error budget left, in [0, 1] *)
  observed_delay : float;
      (** live estimate of the audited delay quantile; [nan] when no
          samples yet *)
  delay_samples : int;
  max_rank_error : float;
  rank_samples : int;
  tie_inversions : int;
      (** equal-rank FIFO-order violations observed at the tenant's
          queues — see {!Net.create}'s [on_tie_inversion] *)
}

type t

val create : ?config:audit_config -> objectives:objective list -> unit -> t
(** @raise Invalid_argument on a non-positive window, [ewma_alpha]
    outside (0, 1], or [fast_breach < 1]. *)

val on_enqueue : t -> Sched.Packet.t -> unit
(** Count one enqueue attempt for the packet's tenant (closing a burn
    window every [window] attempts).  Unknown tenants are ignored —
    hook this to {!Net}'s per-hop enqueue path. *)

val on_drop : t -> Sched.Packet.t -> unit

val on_delay : t -> tenant_id:int -> float -> unit
(** Feed one per-hop sojourn sample (seconds), e.g.
    [now - enqueued_at] from a dequeue hook. *)

val on_rank_error : t -> tenant_id:int -> float -> unit
(** Feed one pre-processor [|applied - ideal|] sample. *)

val on_tie_inversion : t -> tenant_id:int -> unit
(** Count one equal-rank FIFO-order violation against the tenant — hook
    this to {!Net}'s [on_tie_inversion] conformance tap.  A conforming
    (arrival-stable) scheduler never produces these, so any non-zero
    count is a breach. *)

val status : t -> tenant_id:int -> status option
(** [None] for tenants without an objective. *)

val statuses : t -> status list
(** Every audited tenant, in tenant-id order. *)

val evaluate : t -> tenant_id:int -> Engine.Health.signal * string
(** The tenant's current signal plus a detail string explaining it
    (["within objectives"] on a pass; the first violated condition
    otherwise).  Breach: drop budget exhausted, fast burn at or above
    [fast_breach], observed delay quantile above the derived bound (once
    five samples exist), rank error above budget, or any equal-rank
    FIFO-order inversion (a conforming scheduler produces none).  Warn:
    any burn rate at or above 1, or under a quarter of the error budget
    left.  Unknown tenants pass. *)

val objectives : t -> objective list

val pp_objective : Format.formatter -> objective -> unit

val pp_status : Format.formatter -> status -> unit
