(** The control-plane synthesizer (§3.2).

    Given the tenants' scheduling specifications and the operator's policy,
    the synthesizer produces a {e joint scheduling function}: one rank
    transformation per tenant, built from rank-shift and
    rank-normalization primitives, such that scheduling all transformed
    ranks in a single PIFO realizes the per-tenant policies under the
    operator's constraints.

    Band allocation over the global rank space [\[rank_lo, rank_hi\]]:

    - [>>] partitions the current band into disjoint sub-bands (widths
      proportional to the number of tenants in each tier) — even a
      worst-case rank of a higher tier beats the best rank of a lower
      tier, which is exactly the paper's isolation-by-shifting argument;
    - [>] gives successive groups bands whose {e start} is pushed down by
      [prefer_bias] of the band width but whose {e end} stays put — the
      preferred group wins head-to-head comparisons, later groups can
      still compete (best-effort);
    - [+] gives every member the same band, normalized per member; a
      member with weight [w] is compressed into the top [1/w] of the band,
      biasing the share in its favour. *)

type band = { lo : int; hi : int }

type assignment = {
  tenant : Tenant.t;
  band : band;
  transform : Transform.t;
}

type plan = {
  policy : Policy.t;
  rank_lo : int;
  rank_hi : int;
  assignments : assignment list;  (** ordered by tenant id *)
  fallback : Transform.t;
      (** applied to packets of tenants absent from the plan: parks them
          at the worst rank so strangers cannot jump the queue *)
}

type config = {
  rank_lo : int;  (** bottom of the joint rank space *)
  rank_hi : int;  (** top of the joint rank space *)
  levels : int option;
      (** quantization levels per tenant ([None]: full band resolution) *)
  prefer_bias : float;
      (** fraction of a band by which [>] pushes down successive groups
          (0 < bias <= 1, default 0.5) *)
}

val default_config : config
(** [{rank_lo = 0; rank_hi = 65535; levels = None; prefer_bias = 0.5}] —
    a 16-bit rank space, as on programmable hardware. *)

val synthesize :
  ?profiler:Engine.Span.t ->
  ?config:config -> tenants:Tenant.t list -> policy:Policy.t -> unit ->
  (plan, Error.t) result
(** Build the joint scheduling function.  [profiler] (default: off) wraps
    the synthesis in a ["synthesizer.synthesize"] span.  Fails with
    {!Error.Unknown_tenant} when the policy names a tenant that was not
    declared, {!Error.Synthesis} when the policy misses or repeats a
    tenant, tenant ids collide, or the rank space is too narrow for the
    tenant count, and {!Error.Config} for an invalid [config]. *)

val synthesize_exn :
  ?profiler:Engine.Span.t ->
  ?config:config -> tenants:Tenant.t list -> policy:Policy.t -> unit -> plan
(** @raise Invalid_argument on any synthesis error. *)

val transform_of : plan -> tenant_id:int -> Transform.t
(** The transformation for a tenant id ([fallback] when absent). *)

val band_of : plan -> tenant_id:int -> band option

val pp_plan : Format.formatter -> plan -> unit
