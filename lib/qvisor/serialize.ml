module J = Engine.Json

let ( let* ) = Result.bind

let field name json ~conv ~what =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None ->
    Error
      (Error.Config
         (Printf.sprintf "missing or ill-typed field %S in %s" name what))

let tenant_to_json (t : Tenant.t) =
  J.Obj
    [
      ("id", J.Number (float_of_int t.Tenant.id));
      ("name", J.String t.Tenant.name);
      ("algorithm", J.String t.Tenant.algorithm);
      ("rank_lo", J.Number (float_of_int t.Tenant.rank_lo));
      ("rank_hi", J.Number (float_of_int t.Tenant.rank_hi));
      ("weight", J.Number t.Tenant.weight);
    ]

let tenant_of_json json =
  let* id = field "id" json ~conv:J.to_int ~what:"tenant" in
  let* name = field "name" json ~conv:J.to_str ~what:"tenant" in
  let* algorithm = field "algorithm" json ~conv:J.to_str ~what:"tenant" in
  let* rank_lo = field "rank_lo" json ~conv:J.to_int ~what:"tenant" in
  let* rank_hi = field "rank_hi" json ~conv:J.to_int ~what:"tenant" in
  (* Optional on the wire: Tenant.make has a sensible default, and
     control-plane clients (tenant-add over the daemon socket) should not
     have to invent one. *)
  let* weight =
    match J.member "weight" json with
    | None -> Ok None
    | Some j -> (
      match J.to_float j with
      | Some w -> Ok (Some w)
      | None ->
        Error (Error.Config "missing or ill-typed field \"weight\" in tenant"))
  in
  match Tenant.make ~algorithm ~rank_lo ~rank_hi ?weight ~id ~name () with
  | t -> Ok t
  | exception Invalid_argument e -> Error (Error.Config e)

let policy_to_json policy = J.String (Policy.to_string policy)

let policy_of_json json =
  match J.to_str json with
  | None -> Error (Error.Config "policy must be a string")
  | Some s -> Policy.parse s

let rec transform_to_json = function
  | Transform.Identity -> J.Obj [ ("kind", J.String "identity") ]
  | Transform.Shift k ->
    J.Obj [ ("kind", J.String "shift"); ("by", J.Number (float_of_int k)) ]
  | Transform.Normalize { src_lo; src_hi; dst_lo; dst_hi; levels } ->
    J.Obj
      [
        ("kind", J.String "normalize");
        ("src_lo", J.Number (float_of_int src_lo));
        ("src_hi", J.Number (float_of_int src_hi));
        ("dst_lo", J.Number (float_of_int dst_lo));
        ("dst_hi", J.Number (float_of_int dst_hi));
        ("levels", J.Number (float_of_int levels));
      ]
  | Transform.Compose (f, g) ->
    J.Obj
      [
        ("kind", J.String "compose");
        ("first", transform_to_json f);
        ("then", transform_to_json g);
      ]

let config_to_json (c : Synthesizer.config) =
  J.Obj
    [
      ("rank_lo", J.Number (float_of_int c.Synthesizer.rank_lo));
      ("rank_hi", J.Number (float_of_int c.Synthesizer.rank_hi));
      ( "levels",
        match c.Synthesizer.levels with
        | None -> J.Null
        | Some l -> J.Number (float_of_int l) );
      ("prefer_bias", J.Number c.Synthesizer.prefer_bias);
    ]

let config_of_json json =
  let* rank_lo = field "rank_lo" json ~conv:J.to_int ~what:"config" in
  let* rank_hi = field "rank_hi" json ~conv:J.to_int ~what:"config" in
  let* prefer_bias = field "prefer_bias" json ~conv:J.to_float ~what:"config" in
  let* levels =
    match J.member "levels" json with
    | None | Some J.Null -> Ok None
    | Some v -> (
      match J.to_int v with
      | Some l -> Ok (Some l)
      | None -> Error (Error.Config "ill-typed field \"levels\" in config"))
  in
  Ok { Synthesizer.rank_lo; rank_hi; levels; prefer_bias }

let plan_to_json (plan : Synthesizer.plan) =
  J.Obj
    [
      ("policy", policy_to_json plan.Synthesizer.policy);
      ("rank_lo", J.Number (float_of_int plan.Synthesizer.rank_lo));
      ("rank_hi", J.Number (float_of_int plan.Synthesizer.rank_hi));
      ( "assignments",
        J.List
          (List.map
             (fun a ->
               J.Obj
                 [
                   ("tenant", tenant_to_json a.Synthesizer.tenant);
                   ( "band",
                     J.Obj
                       [
                         ( "lo",
                           J.Number (float_of_int a.Synthesizer.band.Synthesizer.lo) );
                         ( "hi",
                           J.Number (float_of_int a.Synthesizer.band.Synthesizer.hi) );
                       ] );
                   ("transform", transform_to_json a.Synthesizer.transform);
                 ])
             plan.Synthesizer.assignments) );
    ]

let relation_to_json = function
  | Analysis.Isolated -> J.Obj [ ("kind", J.String "isolated") ]
  | Analysis.Preferred f ->
    J.Obj [ ("kind", J.String "preferred"); ("contested", J.Number f) ]
  | Analysis.Shared f ->
    J.Obj [ ("kind", J.String "shared"); ("aligned", J.Number f) ]
  | Analysis.Inverted -> J.Obj [ ("kind", J.String "inverted") ]

let report_to_json (r : Analysis.report) =
  J.Obj
    [
      ("feasible", J.Bool r.Analysis.feasible);
      ( "pairs",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("high", J.String p.Analysis.high.Analysis.label);
                   ("low", J.String p.Analysis.low.Analysis.label);
                   ( "required",
                     J.String
                       (match p.Analysis.required with
                       | `Strict -> "strict"
                       | `Prefer -> "prefer"
                       | `Share -> "share") );
                   ("actual", relation_to_json p.Analysis.actual);
                   ("satisfied", J.Bool p.Analysis.satisfied);
                 ])
             r.Analysis.pairs) );
      ("violations", J.List (List.map (fun v -> J.String v) r.Analysis.violations));
    ]

let spec_to_json ~tenants ~policy =
  J.Obj
    [
      ("tenants", J.List (List.map tenant_to_json tenants));
      ("policy", policy_to_json policy);
    ]

let spec_of_json json =
  let* tenant_items = field "tenants" json ~conv:J.to_list ~what:"spec" in
  let* tenants =
    List.fold_right
      (fun item acc ->
        let* acc = acc in
        let* t = tenant_of_json item in
        Ok (t :: acc))
      tenant_items (Ok [])
  in
  let* policy_json =
    match J.member "policy" json with
    | Some p -> Ok p
    | None -> Error (Error.Config "missing field \"policy\" in spec")
  in
  let* policy = policy_of_json policy_json in
  Ok (tenants, policy)

(* ------------------------------------------------------------------ *)
(* Errors (the daemon wire protocol carries them in failure replies)  *)
(* ------------------------------------------------------------------ *)

let error_kind = function
  | Error.Policy_parse _ -> "policy"
  | Error.Unknown_tenant _ -> "unknown-tenant"
  | Error.Synthesis _ -> "synthesis"
  | Error.Deploy _ -> "deploy"
  | Error.Config _ -> "config"
  | Error.Unavailable _ -> "unavailable"

let error_to_json (e : Error.t) =
  let message =
    match e with
    | Error.Policy_parse m
    | Error.Unknown_tenant m
    | Error.Synthesis m
    | Error.Deploy m
    | Error.Config m
    | Error.Unavailable m -> m
  in
  J.Obj [ ("kind", J.String (error_kind e)); ("message", J.String message) ]

let error_of_json json =
  let* kind = field "kind" json ~conv:J.to_str ~what:"error" in
  let* message = field "message" json ~conv:J.to_str ~what:"error" in
  match kind with
  | "policy" -> Ok (Error.Policy_parse message)
  | "unknown-tenant" -> Ok (Error.Unknown_tenant message)
  | "synthesis" -> Ok (Error.Synthesis message)
  | "deploy" -> Ok (Error.Deploy message)
  | "config" -> Ok (Error.Config message)
  | "unavailable" -> Ok (Error.Unavailable message)
  | k -> Error (Error.Config (Printf.sprintf "unknown error kind %S" k))
