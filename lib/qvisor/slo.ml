type objective = {
  tenant : Tenant.t;
  delay_bound : float option;
  delay_quantile : float;
  drop_budget : float;
  rank_error_budget : float;
}

(* The plan's own worst quantization error over the tenant's declared
   range: what the data plane is expected to do when healthy.  Sampled,
   not exhaustive — ranges can span the whole 16-bit space. *)
let measured_rank_error plan (tenant : Tenant.t) =
  let transform = Synthesizer.transform_of plan ~tenant_id:tenant.Tenant.id in
  let lo = tenant.Tenant.rank_lo and hi = tenant.Tenant.rank_hi in
  let width = hi - lo in
  let samples = min 1024 (width + 1) in
  let worst = ref 0. in
  for i = 0 to samples - 1 do
    let r =
      if samples = 1 then lo
      else lo + (i * width / (samples - 1))
    in
    let err =
      Float.abs
        (float_of_int (Transform.apply transform r)
        -. Transform.apply_exact transform r)
    in
    if err > !worst then worst := err
  done;
  !worst

(* How many strict tiers sit above the tenant in the operator policy
   (0 for the top tier, and for every tenant under a non-strict root). *)
let strict_depth policy (tenant : Tenant.t) =
  let tiers = Policy.strict_tiers policy in
  let rec find k = function
    | [] -> 0
    | tier :: rest ->
      if List.mem tenant.Tenant.name (Policy.tenant_names tier) then k
      else find (k + 1) rest
  in
  find 0 tiers

let derive ~plan ?(envelopes = []) ?link_rate ?mtu_bytes
    ?(delay_quantile = 0.99) ?(drop_budget = 0.02) ?(delay_headroom = 2.)
    () =
  if drop_budget <= 0. then invalid_arg "Slo.derive: drop_budget <= 0";
  if delay_quantile <= 0. || delay_quantile >= 1. then
    invalid_arg "Slo.derive: delay_quantile outside (0, 1)";
  if delay_headroom < 1. then invalid_arg "Slo.derive: delay_headroom < 1";
  List.map
    (fun (a : Synthesizer.assignment) ->
      let tenant = a.Synthesizer.tenant in
      let delay_bound =
        match link_rate with
        | Some link_rate when envelopes <> [] -> (
          match
            Latency.delay_bound ~plan ~envelopes ~link_rate ?mtu_bytes
              ~tenant_id:tenant.Tenant.id ()
          with
          | Latency.Bounded d -> Some (delay_headroom *. d)
          | Latency.Unstable -> None)
        | _ -> None
      in
      (* A tenant below a strict edge is promised nothing by >> while the
         tiers above it burst — starvation there is the policy working,
         not an incident.  Its drop objective is therefore a sanity floor
         (half the offered packets) rather than a service promise. *)
      let drop_budget =
        if strict_depth plan.Synthesizer.policy tenant = 0 then drop_budget
        else Float.max drop_budget 0.5
      in
      {
        tenant;
        delay_bound;
        delay_quantile;
        drop_budget;
        rank_error_budget = (1.5 *. measured_rank_error plan tenant) +. 1.;
      })
    plan.Synthesizer.assignments

type audit_config = { window : int; ewma_alpha : float; fast_breach : float }

let default_audit_config = { window = 256; ewma_alpha = 0.2; fast_breach = 4.0 }

type tenant_audit = {
  objective : objective;
  sketch : Engine.P2_quantile.t;
  mutable delay_samples : int;
  mutable attempts : int;
  mutable drops : int;
  mutable win_attempts : int;
  mutable win_drops : int;
  mutable windows_closed : int;
  mutable fast_burn : float;
  mutable slow_burn : float;
  mutable max_rank_error : float;
  mutable rank_samples : int;
  mutable tie_inversions : int;
}

type t = {
  config : audit_config;
  (* Dense by tenant id: every hook below sits on the per-packet-hop hot
     path, and an array probe (the option cells are preallocated) keeps
     the audit out of the run's profile in a way a hashtable cannot. *)
  audits : tenant_audit option array;
  ordered : tenant_audit list;  (* tenant-id order, for iteration *)
}

let create ?(config = default_audit_config) ~objectives () =
  if config.window <= 0 then invalid_arg "Slo.create: window <= 0";
  if config.ewma_alpha <= 0. || config.ewma_alpha > 1. then
    invalid_arg "Slo.create: ewma_alpha outside (0, 1]";
  if config.fast_breach < 1. then invalid_arg "Slo.create: fast_breach < 1";
  let audit o =
    {
      objective = o;
      sketch = Engine.P2_quantile.create ~q:o.delay_quantile;
      delay_samples = 0;
      attempts = 0;
      drops = 0;
      win_attempts = 0;
      win_drops = 0;
      windows_closed = 0;
      fast_burn = 0.;
      slow_burn = 0.;
      max_rank_error = 0.;
      rank_samples = 0;
      tie_inversions = 0;
    }
  in
  let ordered =
    List.sort
      (fun a b -> compare a.objective.tenant.Tenant.id b.objective.tenant.Tenant.id)
      (List.map audit objectives)
  in
  let max_id =
    List.fold_left
      (fun m s -> Stdlib.max m s.objective.tenant.Tenant.id)
      (-1) ordered
  in
  let audits = Array.make (max_id + 1) None in
  List.iter (fun s -> audits.(s.objective.tenant.Tenant.id) <- Some s) ordered;
  { config; audits; ordered }

let audit t id =
  if id >= 0 && id < Array.length t.audits then Array.unsafe_get t.audits id
  else None

let find t (p : Sched.Packet.t) = audit t p.Sched.Packet.tenant

let close_window t s =
  let rate = float_of_int s.win_drops /. float_of_int (max 1 s.win_attempts) in
  let burn = rate /. s.objective.drop_budget in
  s.fast_burn <- burn;
  s.slow_burn <-
    (if s.windows_closed = 0 then burn
     else
       (t.config.ewma_alpha *. burn)
       +. ((1. -. t.config.ewma_alpha) *. s.slow_burn));
  s.windows_closed <- s.windows_closed + 1;
  s.win_attempts <- 0;
  s.win_drops <- 0

let on_enqueue t p =
  match find t p with
  | None -> ()
  | Some s ->
    s.attempts <- s.attempts + 1;
    s.win_attempts <- s.win_attempts + 1;
    if s.win_attempts >= t.config.window then close_window t s

let on_drop t p =
  match find t p with
  | None -> ()
  | Some s ->
    s.drops <- s.drops + 1;
    s.win_drops <- s.win_drops + 1

let on_delay t ~tenant_id d =
  match audit t tenant_id with
  | None -> ()
  | Some s ->
    Engine.P2_quantile.add s.sketch d;
    s.delay_samples <- s.delay_samples + 1

let on_rank_error t ~tenant_id e =
  match audit t tenant_id with
  | None -> ()
  | Some s ->
    if e > s.max_rank_error then s.max_rank_error <- e;
    s.rank_samples <- s.rank_samples + 1

let on_tie_inversion t ~tenant_id =
  match audit t tenant_id with
  | None -> ()
  | Some s -> s.tie_inversions <- s.tie_inversions + 1

type status = {
  objective : objective;
  attempts : int;
  drops : int;
  drop_rate : float;
  fast_burn : float;
  slow_burn : float;
  budget_remaining : float;
  observed_delay : float;
  delay_samples : int;
  max_rank_error : float;
  rank_samples : int;
  tie_inversions : int;
}

let status_of (s : tenant_audit) =
  let drop_rate =
    if s.attempts = 0 then 0.
    else float_of_int s.drops /. float_of_int s.attempts
  in
  {
    objective = s.objective;
    attempts = s.attempts;
    drops = s.drops;
    drop_rate;
    fast_burn = s.fast_burn;
    slow_burn = s.slow_burn;
    budget_remaining =
      (if s.attempts = 0 then 1.
       else Float.max 0. (1. -. (drop_rate /. s.objective.drop_budget)));
    observed_delay = Engine.P2_quantile.estimate s.sketch;
    delay_samples = s.delay_samples;
    max_rank_error = s.max_rank_error;
    rank_samples = s.rank_samples;
    tie_inversions = s.tie_inversions;
  }

let status t ~tenant_id = Option.map status_of (audit t tenant_id)

let statuses t = List.map status_of t.ordered

let evaluate t ~tenant_id =
  match status t ~tenant_id with
  | None -> (Engine.Health.Pass, "no objective")
  | Some st ->
    let o = st.objective in
    let delay_over =
      st.delay_samples >= 5
      &&
      match o.delay_bound with
      | Some bound -> st.observed_delay > bound
      | None -> false
    in
    if st.budget_remaining <= 0. && st.attempts >= t.config.window then
      ( Engine.Health.Breach,
        Printf.sprintf "drop budget exhausted (%d/%d dropped, budget %.3g)"
          st.drops st.attempts o.drop_budget )
    else if st.fast_burn >= t.config.fast_breach then
      ( Engine.Health.Breach,
        Printf.sprintf "fast burn %.1fx over drop budget" st.fast_burn )
    else if delay_over then
      ( Engine.Health.Breach,
        Printf.sprintf "p%g delay %.3gs over bound %.3gs"
          (100. *. o.delay_quantile)
          st.observed_delay
          (Option.value o.delay_bound ~default:Float.nan) )
    else if st.max_rank_error > o.rank_error_budget then
      ( Engine.Health.Breach,
        Printf.sprintf "rank error %.1f over budget %.1f" st.max_rank_error
          o.rank_error_budget )
    else if st.tie_inversions > 0 then
      ( Engine.Health.Breach,
        Printf.sprintf
          "%d equal-rank FIFO-order inversions (non-conforming scheduler)"
          st.tie_inversions )
    else if st.fast_burn >= 1. then
      ( Engine.Health.Warn,
        Printf.sprintf "fast burn %.1fx of drop budget" st.fast_burn )
    else if st.slow_burn >= 1. then
      ( Engine.Health.Warn,
        Printf.sprintf "slow burn %.1fx of drop budget" st.slow_burn )
    else if st.budget_remaining < 0.25 then
      ( Engine.Health.Warn,
        Printf.sprintf "%.0f%% of drop error budget left"
          (100. *. st.budget_remaining) )
    else (Engine.Health.Pass, "within objectives")

let objectives t = List.map (fun (s : tenant_audit) -> s.objective) t.ordered

let pp_objective ppf o =
  Format.fprintf ppf
    "%-10s p%g delay %s  drop budget %.3g  rank-error budget %.1f"
    o.tenant.Tenant.name
    (100. *. o.delay_quantile)
    (match o.delay_bound with
    | Some d -> Printf.sprintf "<= %.4gs" d
    | None -> "unbounded")
    o.drop_budget o.rank_error_budget

let pp_status ppf st =
  Format.fprintf ppf
    "delay p%g %.4gs  drops %d/%d  fast %.2fx slow %.2fx  budget %.0f%%  \
     rank err %.1f  ties %d"
    (100. *. st.objective.delay_quantile)
    st.observed_delay st.drops st.attempts st.fast_burn st.slow_burn
    (100. *. st.budget_remaining)
    st.max_rank_error st.tie_inversions
