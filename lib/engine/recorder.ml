type kind = Enqueue | Dequeue | Drop | Evict | Preprocess

let kind_to_string = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Drop -> "drop"
  | Evict -> "evict"
  | Preprocess -> "preprocess"

type event = {
  time : float;
  kind : kind;
  uid : int;
  link : int;
  tenant : int;
  flow : int;
  rank_before : int;
  rank : int;
}

let kind_to_char = function
  | Enqueue -> '\000'
  | Dequeue -> '\001'
  | Drop -> '\002'
  | Evict -> '\003'
  | Preprocess -> '\004'

let kind_of_char = function
  | '\000' -> Enqueue
  | '\001' -> Dequeue
  | '\002' -> Drop
  | '\003' -> Evict
  | _ -> Preprocess

(* The ring stores events as unboxed scalars rather than an
   [event array]: recording is then pure scalar stores, and the ring
   retains no heap blocks — a boxed ring would promote every recorded
   event to the major heap (the ring outlives minor collections) and the
   resulting GC churn dominates an allocation-heavy simulation.  Rows are
   kept compact (32 bytes: uid, the two ranks, and one word packing
   kind/link/tenant/flow into bitfields) because the recorder's cost at
   simulation rates is store bandwidth, not instructions — halving the
   row halves the cache lines each event dirties. *)

let fields_per_event = 4 (* uid rank_before rank meta *)

(* [meta] word: bits 0-2 kind, 3-22 link+1, 23-42 tenant+1, 43-62 flow+1
   (the +1 maps the [-1] "unknown" sentinel to 0; ids are masked to 20
   bits, far above any simulated port or tenant count). *)
let id_mask = 0xFFFFF

let[@inline] pack_meta ~kind_code ~link ~tenant ~flow =
  kind_code
  lor (((link + 1) land id_mask) lsl 3)
  lor (((tenant + 1) land id_mask) lsl 23)
  lor (((flow + 1) land id_mask) lsl 43)

type t = {
  times : float array; (* [[||]] for [disabled] *)
  fields : int array; (* [capacity * fields_per_event], row-major *)
  mutable next : int; (* slot the next event lands in *)
  mutable seen : int;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity < 1";
  {
    times = Array.make capacity 0.;
    fields = Array.make (capacity * fields_per_event) (-1);
    next = 0;
    seen = 0;
  }

let disabled = { times = [||]; fields = [||]; next = 0; seen = 0 }

let is_enabled t = Array.length t.times > 0

let capacity t = Array.length t.times

let length t = min t.seen (Array.length t.times)

let seen t = t.seen

let[@inline] record t ~time ~kind ~uid ~link ~tenant ~flow ~rank_before ~rank =
  let cap = Array.length t.times in
  if cap > 0 then begin
    let i = t.next in
    Array.unsafe_set t.times i time;
    let r = i * fields_per_event in
    Array.unsafe_set t.fields r uid;
    Array.unsafe_set t.fields (r + 1) rank_before;
    Array.unsafe_set t.fields (r + 2) rank;
    Array.unsafe_set t.fields (r + 3)
      (pack_meta
         ~kind_code:(Char.code (kind_to_char kind))
         ~link ~tenant ~flow);
    t.next <- (if i + 1 = cap then 0 else i + 1);
    t.seen <- t.seen + 1
  end

let clear t =
  t.next <- 0;
  t.seen <- 0

let to_list t =
  let cap = Array.length t.times in
  let n = length t in
  (* Oldest event sits at [next - n] (mod cap). *)
  List.init n (fun i ->
      let j = (((t.next - n + i) mod cap) + cap) mod cap in
      let r = j * fields_per_event in
      let meta = t.fields.(r + 3) in
      {
        time = t.times.(j);
        kind = kind_of_char (Char.chr (meta land 7));
        uid = t.fields.(r);
        link = ((meta lsr 3) land id_mask) - 1;
        tenant = ((meta lsr 23) land id_mask) - 1;
        flow = ((meta lsr 43) land id_mask) - 1;
        rank_before = t.fields.(r + 1);
        rank = t.fields.(r + 2);
      })

let event_to_json ev =
  let opt name v rest =
    if v < 0 then rest else (name, Json.Number (float_of_int v)) :: rest
  in
  Json.Obj
    (("t", Json.Number ev.time)
    :: ("ev", Json.String (kind_to_string ev.kind))
    :: opt "uid" ev.uid
         (opt "link" ev.link
            (opt "tenant" ev.tenant
               (opt "flow" ev.flow
                  (opt "rank_before" ev.rank_before (opt "rank" ev.rank []))))))

let dump t oc =
  List.iter
    (fun ev ->
      output_string oc (Json.to_string (event_to_json ev));
      output_char oc '\n')
    (to_list t);
  flush oc

(* ------------------------------------------------------------------ *)
(* Anomaly trigger                                                    *)
(* ------------------------------------------------------------------ *)

module Trigger = struct
  type t = {
    window : int;
    fire_at : int; (* drops in a full window that trip the trigger *)
    cooldown : int;
    outcomes : Bytes.t; (* circular: 1 = dropped *)
    mutable pos : int;
    mutable filled : int; (* observations so far, saturating at window *)
    mutable drops_in_window : int;
    mutable cooldown_left : int;
    mutable fired : int;
  }

  let create ?(window = 128) ?threshold ?cooldown () =
    let threshold = Option.value threshold ~default:0.5 in
    let cooldown = Option.value cooldown ~default:window in
    if window < 1 then invalid_arg "Recorder.Trigger.create: window < 1";
    if cooldown < 0 then invalid_arg "Recorder.Trigger.create: cooldown < 0";
    if threshold <= 0. || threshold > 1. then
      invalid_arg "Recorder.Trigger.create: threshold outside (0, 1]";
    {
      window;
      fire_at =
        Float.to_int (Float.ceil (threshold *. float_of_int window))
        |> Int.max 1;
      cooldown;
      outcomes = Bytes.make window '\000';
      pos = 0;
      filled = 0;
      drops_in_window = 0;
      cooldown_left = 0;
      fired = 0;
    }

  let[@inline] observe t ~dropped =
    (* Evict the outcome leaving the window, admit the new one.
       [pos < window] by construction, so unsafe access is fine. *)
    if t.filled = t.window then begin
      if Bytes.unsafe_get t.outcomes t.pos = '\001' then
        t.drops_in_window <- t.drops_in_window - 1
    end
    else t.filled <- t.filled + 1;
    Bytes.unsafe_set t.outcomes t.pos (if dropped then '\001' else '\000');
    if dropped then t.drops_in_window <- t.drops_in_window + 1;
    t.pos <- (if t.pos + 1 = t.window then 0 else t.pos + 1);
    if t.cooldown_left > 0 then begin
      t.cooldown_left <- t.cooldown_left - 1;
      false
    end
    else if t.filled = t.window && t.drops_in_window >= t.fire_at then begin
      t.fired <- t.fired + 1;
      t.cooldown_left <- t.cooldown;
      true
    end
    else false

  let force t =
    if t.cooldown_left > 0 then false
    else begin
      t.fired <- t.fired + 1;
      t.cooldown_left <- t.cooldown;
      true
    end

  let fired t = t.fired
end
