type state = Healthy | Degraded | Violating

type signal = Pass | Warn | Breach

let state_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Violating -> "violating"

let signal_to_string = function
  | Pass -> "pass"
  | Warn -> "warn"
  | Breach -> "breach"

let pp_state ppf s = Format.pp_print_string ppf (state_to_string s)

type config = { degraded_strikes : int; violating_strikes : int }

let default_config = { degraded_strikes = 2; violating_strikes = 4 }

type subject = {
  name : string;
  mutable strikes : int;
  mutable current : state;
}

type transition = {
  tr_id : int;
  tr_name : string;
  tr_time : float;
  tr_source : string;
  tr_detail : string;
  tr_from : state;
  tr_to : state;
}

type t = {
  config : config;
  alerts : out_channel option;
  on_transition : (transition -> unit) option;
  subjects : (int, subject) Hashtbl.t;
  mutable transitions : int;
}

let create ?(config = default_config) ?alerts ?on_transition () =
  if config.degraded_strikes <= 0 then
    invalid_arg "Health.create: degraded_strikes <= 0";
  if config.violating_strikes <= config.degraded_strikes then
    invalid_arg "Health.create: violating_strikes <= degraded_strikes";
  { config; alerts; on_transition; subjects = Hashtbl.create 8; transitions = 0 }

let watch t ~id ~name =
  Hashtbl.replace t.subjects id { name; strikes = 0; current = Healthy }

let unwatch t ~id = Hashtbl.remove t.subjects id

let state_of_strikes t strikes =
  if strikes >= t.config.violating_strikes then Violating
  else if strikes >= t.config.degraded_strikes then Degraded
  else Healthy

let emit_alert t ~id ~time ~source ~detail subject ~from ~to_ =
  t.transitions <- t.transitions + 1;
  (match t.on_transition with
  | None -> ()
  | Some f ->
    f
      {
        tr_id = id;
        tr_name = subject.name;
        tr_time = time;
        tr_source = source;
        tr_detail = detail;
        tr_from = from;
        tr_to = to_;
      });
  match t.alerts with
  | None -> ()
  | Some oc ->
    let line =
      Json.Obj
        [
          ("t", Json.Number time);
          ("id", Json.Number (float_of_int id));
          ("name", Json.String subject.name);
          ("from", Json.String (state_to_string from));
          ("to", Json.String (state_to_string to_));
          ("source", Json.String source);
          ("detail", Json.String detail);
        ]
    in
    output_string oc (Json.to_string line);
    output_char oc '\n';
    (* Flushed per transition: alerts are rare by construction, and a
       crashing run must still leave its stream behind. *)
    flush oc

let observe t ~id ~time ?(source = "health") ?(detail = "") signal =
  match Hashtbl.find_opt t.subjects id with
  | None -> ()
  | Some s ->
    (match signal with
    | Pass -> s.strikes <- max 0 (s.strikes - 1)
    | Warn -> s.strikes <- s.strikes + 1
    | Breach -> s.strikes <- s.strikes + 2);
    let next = state_of_strikes t s.strikes in
    if next <> s.current then begin
      let from = s.current in
      s.current <- next;
      emit_alert t ~id ~time ~source ~detail s ~from ~to_:next
    end

let state t ~id =
  match Hashtbl.find_opt t.subjects id with
  | None -> Healthy
  | Some s -> s.current

let strikes t ~id =
  match Hashtbl.find_opt t.subjects id with None -> 0 | Some s -> s.strikes

let states t =
  Hashtbl.fold (fun id s acc -> (id, s.name, s.current) :: acc) t.subjects []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let severity = function Healthy -> 0 | Degraded -> 1 | Violating -> 2

let worst t =
  Hashtbl.fold
    (fun _ s acc -> if severity s.current > severity acc then s.current else acc)
    t.subjects Healthy

let alerts_emitted t = t.transitions
