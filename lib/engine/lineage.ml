type event = {
  t : float;
  ev : string;
  uid : int option;
  link : int option;
  tenant : int option;
  flow : int option;
  rank_before : int option;
  rank : int option;
}

let int_field name json =
  match Json.member name json with
  | None -> Ok None
  | Some v -> (
    match Json.to_int v with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "field %S is not an integer" name))

let of_json json =
  let ( let* ) = Result.bind in
  let* t =
    match Option.bind (Json.member "t" json) Json.to_float with
    | Some t -> Ok t
    | None -> Error "missing numeric field \"t\""
  in
  let* ev =
    match Option.bind (Json.member "ev" json) Json.to_str with
    | Some e -> Ok e
    | None -> Error "missing string field \"ev\""
  in
  let* uid = int_field "uid" json in
  let* link = int_field "link" json in
  let* tenant = int_field "tenant" json in
  let* flow = int_field "flow" json in
  let* rank_before = int_field "rank_before" json in
  let* rank = int_field "rank" json in
  Ok { t; ev; uid; link; tenant; flow; rank_before; rank }

let of_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok json -> of_json json

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    let lines = String.split_on_char '\n' contents in
    let rec go lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else (
          match of_line line with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok e -> go (lineno + 1) (e :: acc) rest)
    in
    go 1 [] lines

let field_matches filter field =
  match filter with
  | None -> true
  | Some want -> ( match field with Some got -> got = want | None -> false)

let matches ?uid ?flow ?tenant e =
  field_matches uid e.uid
  && field_matches flow e.flow
  && field_matches tenant e.tenant

let lineage ?uid ?flow ?tenant events =
  let kept = List.filter (matches ?uid ?flow ?tenant) events in
  (* Stable, so same-time stages of one packet keep file order
     (preprocess before enqueue). *)
  List.stable_sort
    (fun a b ->
      match (a.uid, b.uid) with
      | Some ua, Some ub when ua <> ub -> compare ua ub
      | Some _, None -> -1
      | None, Some _ -> 1
      | _ -> compare a.t b.t)
    kept

let pp_opt_int ppf ~label = function
  | None -> ()
  | Some v -> Format.fprintf ppf "  %s=%d" label v

let pp_event ppf e =
  Format.fprintf ppf "t=%-10.6f %-12s" e.t e.ev;
  pp_opt_int ppf ~label:"link" e.link;
  (match (e.rank_before, e.rank) with
  | Some before, Some after when before <> after ->
    Format.fprintf ppf "  rank %d -> %d" before after
  | _, Some r -> Format.fprintf ppf "  rank=%d" r
  | Some before, None -> Format.fprintf ppf "  rank_before=%d" before
  | None, None -> ())

let pp_lineage ppf events =
  (* Partition into per-uid journeys, preserving lineage order. *)
  let groups : (int option, event list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt groups e.uid with
      | Some r -> r := e :: !r
      | None ->
        Hashtbl.add groups e.uid (ref [ e ]);
        order := e.uid :: !order)
    events;
  let first = ref true in
  List.iter
    (fun uid ->
      let evs = List.rev !(Hashtbl.find groups uid) in
      if not !first then Format.fprintf ppf "@,";
      first := false;
      let head = List.hd evs in
      Format.fprintf ppf "@[<v 2>packet %s"
        (match uid with
        | Some u -> Printf.sprintf "uid=%d" u
        | None -> "uid=?");
      (match (head.tenant, head.flow) with
      | Some t, Some f -> Format.fprintf ppf " (tenant %d, flow %d)" t f
      | Some t, None -> Format.fprintf ppf " (tenant %d)" t
      | None, Some f -> Format.fprintf ppf " (flow %d)" f
      | None, None -> ());
      Format.fprintf ppf ": %d event%s" (List.length evs)
        (if List.length evs = 1 then "" else "s");
      List.iter (fun e -> Format.fprintf ppf "@,%a" pp_event e) evs;
      Format.fprintf ppf "@]")
    (List.rev !order)
