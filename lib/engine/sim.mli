(** Discrete-event simulation driver.

    A simulation owns a virtual clock and an event queue of thunks.
    Components schedule callbacks at absolute or relative virtual times;
    [run] drains the queue in time order.  Events scheduled for the same
    instant fire in scheduling order. *)

type t

type handle
(** Cancellation handle for a scheduled event.

    A handle is only worth paying for when the event may be {!cancel}ed
    before it fires — retransmission timeouts disarmed by an ACK
    ([Netsim.Transport]'s RTO), watchdogs, leases.  Fire-and-forget events
    (per-packet transmit/arrival, open-loop arrival processes, periodic
    ticks) should use {!schedule_at_} / {!schedule_after_}, which skip the
    handle allocation entirely. *)

val create : ?profiler:Span.t -> unit -> t
(** [profiler] (default: off) wraps every {!run} call in a ["sim.run"]
    span. *)

val now : t -> float
(** Current virtual time, in seconds.  Starts at [0.]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] when the clock reaches [time].
    @raise Invalid_argument if [time] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule_at t ~time:(now t +. delay) f].
    @raise Invalid_argument if [delay < 0.]. *)

val schedule_at_ : t -> time:float -> (unit -> unit) -> unit
(** Handle-free fast path: like {!schedule_at} but the event cannot be
    cancelled and no handle is allocated.  Use for fire-and-forget events
    on hot paths (see {!type:handle} for when a handle is warranted).
    @raise Invalid_argument if [time] is in the past. *)

val schedule_after_ : t -> delay:float -> (unit -> unit) -> unit
(** [schedule_after_ t ~delay f] is
    [schedule_at_ t ~time:(now t +. delay) f].
    @raise Invalid_argument if [delay < 0.]. *)

val cancel : handle -> unit
(** Cancel a pending event; cancelling an already-fired or already-cancelled
    event is a no-op. *)

val is_pending : handle -> bool

val run : ?until:float -> t -> unit
(** Drain the event queue.  With [~until], stop once the next event would
    fire strictly after [until] and advance the clock to [until]. *)

val step : t -> bool
(** Fire the single earliest event.  Returns [false] if the queue was
    empty. *)

val pending_events : t -> int
(** Number of scheduled (possibly cancelled) events still queued. *)

val events_fired : t -> int
(** Events whose action actually ran so far (cancelled events excluded) —
    the denominator-free half of an events/sec figure. *)

val busy_seconds : t -> float
(** Cumulative wall-clock seconds spent inside [run] calls.  With
    {!events_fired} this yields the engine's events/sec throughput. *)
