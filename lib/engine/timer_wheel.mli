(** Timer-wheel event queue — a drop-in replacement for {!Event_queue} on
    the simulation hot path.

    Virtual times quantize to integer ticks (default [2^-24] s ≈ 59.6 ns —
    a power of two so tick arithmetic is exact float scaling); events
    within the wheel's horizon ([2^slots_pow2] ticks, ~244 µs at the
    defaults) get O(1) push and near-O(1) pop via a hierarchical
    find-first-set bitmap over the slots, while farther events overflow to
    a binary heap and are merged back by a head-to-head comparison at pop
    time.  Quantization never reorders: ticks are monotone in time and
    within a tick events sort by exact (time, push order).

    Ordering is {e identical} to {!Event_queue}: events pop in
    non-decreasing time, FIFO among equal times (global push order), which
    keeps every simulation byte-identical when swapped in. *)

type 'a t

val create : ?tick:float -> ?slots_pow2:int -> unit -> 'a t
(** [tick] is the quantization step in seconds (default [2^-24]);
    [slots_pow2] the log2 slot count (default [12], keeping the slot
    anchors L2-resident).
    @raise Invalid_argument if [tick <= 0] or [slots_pow2] outside
    [\[5, 24\]]. *)

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event to fire at [time].  Times must be non-negative and not
    precede the last popped event's time (both hold for {!Sim}, whose
    clock never runs backwards). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, FIFO among equal times. *)

val pop_before : 'a t -> horizon:float -> (float * 'a) option
(** [pop] only if the earliest event's time is [<= horizon]; one head
    lookup instead of a peek-then-pop pair. *)

val peek_time : 'a t -> float option

val size : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit
