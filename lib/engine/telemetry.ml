module Counter = struct
  type t = { mutable n : int }

  let incr t = t.n <- t.n + 1

  let add t k = t.n <- t.n + k

  let value t = t.n
end

module Gauge = struct
  type t = { mutable v : float }

  let set t x = t.v <- x

  let value t = t.v
end

module Histogram = struct
  type t = {
    stats : Stats.t;
    p50 : P2_quantile.t;
    p90 : P2_quantile.t;
    p99 : P2_quantile.t;
  }

  let make () =
    {
      stats = Stats.create ~keep_samples:false ();
      p50 = P2_quantile.create ~q:0.5;
      p90 = P2_quantile.create ~q:0.9;
      p99 = P2_quantile.create ~q:0.99;
    }

  let observe t x =
    Stats.add t.stats x;
    P2_quantile.add t.p50 x;
    P2_quantile.add t.p90 x;
    P2_quantile.add t.p99 x

  let count t = Stats.count t.stats

  let mean t = Stats.mean t.stats

  let sum t = Stats.sum t.stats

  let quantile t q =
    let sketch =
      if q = 0.5 then t.p50
      else if q = 0.9 then t.p90
      else if q = 0.99 then t.p99
      else
        invalid_arg
          (Printf.sprintf
             "Telemetry.Histogram.quantile: only 0.5/0.9/0.99 are tracked \
              (got %g)"
             q)
    in
    P2_quantile.estimate sketch
end

module Series = struct
  type t = { ts : Timeseries.t option }

  let record t ~time v =
    match t.ts with None -> () | Some ts -> Timeseries.add ts ~time v
end

type sink = {
  oc : out_channel;
  sample : float;
  rng : Rng.t;
  mutable seen : int;
  mutable written : int;
}

type t = {
  enabled : bool;
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  series_tbl : (string, float * Timeseries.t) Hashtbl.t; (* bucket, data *)
  mutable sink : sink option;
}

let create () =
  {
    enabled = true;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    series_tbl = Hashtbl.create 4;
    sink = None;
  }

(* The shared no-op registry.  Its tables stay empty because interning is
   skipped when [enabled] is false. *)
let disabled =
  {
    enabled = false;
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    histograms = Hashtbl.create 1;
    series_tbl = Hashtbl.create 1;
    sink = None;
  }

let is_enabled t = t.enabled

let intern tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add tbl name m;
    m

let counter t name =
  if not t.enabled then { Counter.n = 0 }
  else intern t.counters name (fun () -> { Counter.n = 0 })

let gauge t name =
  if not t.enabled then { Gauge.v = 0. }
  else intern t.gauges name (fun () -> { Gauge.v = 0. })

let histogram t name =
  if not t.enabled then Histogram.make ()
  else intern t.histograms name Histogram.make

let series t ?(bucket = 0.01) name =
  if not t.enabled then { Series.ts = None }
  else begin
    let _, ts =
      intern t.series_tbl name (fun () ->
          (bucket, Timeseries.create ~bucket ()))
    in
    { Series.ts = Some ts }
  end

(* ------------------------------------------------------------------ *)
(* Trace sink                                                         *)
(* ------------------------------------------------------------------ *)

let attach_sink t ?(sample = 1.0) ?(seed = 0) oc =
  if sample < 0. || sample > 1. then
    invalid_arg "Telemetry.attach_sink: sample outside [0,1]";
  if t.enabled then begin
    (* Flush the sink being replaced so its buffered lines reach the old
       channel before the registry forgets it. *)
    (match t.sink with None -> () | Some old -> flush old.oc);
    t.sink <-
      Some { oc; sample; rng = Rng.create ~seed; seen = 0; written = 0 }
  end

let detach_sink t =
  match t.sink with
  | None -> ()
  | Some s ->
    flush s.oc;
    t.sink <- None

let tracing t = t.sink <> None

let events_seen t = match t.sink with Some s -> s.seen | None -> 0

let events_written t = match t.sink with Some s -> s.written | None -> 0

let event t ~time ~kind ?uid ?link ?tenant ?flow ?rank_before ?rank
    ?(extra = []) () =
  match t.sink with
  | None -> ()
  | Some s ->
    s.seen <- s.seen + 1;
    let keep = s.sample >= 1.0 || Rng.float s.rng < s.sample in
    if keep then begin
      s.written <- s.written + 1;
      let opt name v rest =
        match v with
        | None -> rest
        | Some x -> (name, Json.Number (float_of_int x)) :: rest
      in
      let fields =
        ("t", Json.Number time)
        :: ("ev", Json.String kind)
        :: opt "uid" uid
             (opt "link" link
                (opt "tenant" tenant
                   (opt "flow" flow
                      (opt "rank_before" rank_before (opt "rank" rank extra)))))
      in
      output_string s.oc (Json.to_string (Json.Obj fields));
      output_char s.oc '\n'
    end

(* ------------------------------------------------------------------ *)
(* Merge                                                              *)
(* ------------------------------------------------------------------ *)

let sorted_bindings tbl =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_into ~into src =
  if into.enabled && src.enabled then begin
    List.iter
      (fun (name, (c : Counter.t)) -> Counter.add (counter into name) c.n)
      (sorted_bindings src.counters);
    (* Gauges are last-write-wins: the source (later in submission order)
       overwrites, matching what a serial run would have left behind. *)
    List.iter
      (fun (name, (g : Gauge.t)) -> Gauge.set (gauge into name) g.v)
      (sorted_bindings src.gauges);
    List.iter
      (fun (name, (h : Histogram.t)) ->
        let dst = histogram into name in
        Stats.merge_into ~into:dst.Histogram.stats h.Histogram.stats;
        P2_quantile.merge_into ~into:dst.Histogram.p50 h.Histogram.p50;
        P2_quantile.merge_into ~into:dst.Histogram.p90 h.Histogram.p90;
        P2_quantile.merge_into ~into:dst.Histogram.p99 h.Histogram.p99)
      (sorted_bindings src.histograms);
    List.iter
      (fun (name, (bucket, ts)) ->
        match (series into ~bucket name).Series.ts with
        | Some dst_ts -> Timeseries.merge_into ~into:dst_ts ts
        | None -> ())
      (sorted_bindings src.series_tbl);
    match (into.sink, src.sink) with
    | Some d, Some s ->
      d.seen <- d.seen + s.seen;
      d.written <- d.written + s.written
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Export                                                             *)
(* ------------------------------------------------------------------ *)

let exported_counters t =
  List.map (fun (name, c) -> (name, Counter.value c)) (sorted_bindings t.counters)

let exported_gauges t =
  List.map (fun (name, g) -> (name, Gauge.value g)) (sorted_bindings t.gauges)

let exported_histograms t = sorted_bindings t.histograms

let exported_series t =
  List.map
    (fun (name, (_, ts)) -> (name, Timeseries.total ts))
    (sorted_bindings t.series_tbl)

(* ------------------------------------------------------------------ *)
(* Snapshot                                                           *)
(* ------------------------------------------------------------------ *)

let num_or_null x =
  if Float.is_nan x || x = infinity || x = neg_infinity then Json.Null
  else Json.Number x

let sorted_fields tbl render =
  Hashtbl.fold (fun name m acc -> (name, render m) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  let counters =
    sorted_fields t.counters (fun c ->
        Json.Number (float_of_int (Counter.value c)))
  in
  let gauges = sorted_fields t.gauges (fun g -> num_or_null (Gauge.value g)) in
  let histograms =
    sorted_fields t.histograms (fun (h : Histogram.t) ->
        Json.Obj
          [
            ("count", Json.Number (float_of_int (Stats.count h.stats)));
            ("mean", num_or_null (Stats.mean h.stats));
            ("min", num_or_null (Stats.min h.stats));
            ("max", num_or_null (Stats.max h.stats));
            ("sum", num_or_null (Stats.sum h.stats));
            ("p50", num_or_null (P2_quantile.estimate h.p50));
            ("p90", num_or_null (P2_quantile.estimate h.p90));
            ("p99", num_or_null (P2_quantile.estimate h.p99));
          ])
  in
  let series_json =
    sorted_fields t.series_tbl (fun (bucket, ts) ->
        Json.Obj
          [
            ("bucket", Json.Number bucket);
            ("total", num_or_null (Timeseries.total ts));
            ( "points",
              Json.List
                (List.map
                   (fun (time, v) ->
                     Json.List [ Json.Number time; num_or_null v ])
                   (Timeseries.buckets ts)) );
          ])
  in
  let trace =
    match t.sink with
    | None -> []
    | Some s ->
      [
        ( "trace",
          Json.Obj
            [
              ("sample", Json.Number s.sample);
              ("seen", Json.Number (float_of_int s.seen));
              ("written", Json.Number (float_of_int s.written));
            ] );
      ]
  in
  Json.Obj
    ([
       ("counters", Json.Obj counters);
       ("gauges", Json.Obj gauges);
       ("histograms", Json.Obj histograms);
       ("series", Json.Obj series_json);
     ]
    @ trace)
