(** Fixed-size domain pool with a deterministic fan-out/fan-in map.

    Work items are claimed from a shared atomic counter by [jobs] workers
    ([jobs - 1] spawned domains plus the calling domain), and results are
    written into a slot array indexed by the item's submission position, so
    the returned list is always in input order regardless of scheduling.
    With [jobs = 1] no domain is spawned and items run serially in order,
    which keeps single-worker runs exactly equivalent to a plain
    [List.map].

    Workers must not share mutable state through closures unless that
    state is safe under parallel access; the intended pattern is for each
    item to carry its own seed (see {!Rng.derive}) and its own telemetry
    registry, merged after the join. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], floored at 1: leave one
    core for the OS/collector, never go below a single worker. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item on a pool of [jobs]
    workers and returns the results in input order.  If any application
    raises, the exception raised by the lowest-indexed failing item is
    re-raised in the calling domain after all workers have joined.
    [jobs] defaults to {!default_jobs}; values below 1 are clamped to 1. *)

val try_map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!map} but captures each item's outcome as a [result] instead of
    re-raising, so a worker failure is data for the caller to inspect —
    no exception crosses a domain boundary. *)
