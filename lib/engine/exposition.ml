type mtype = Counter | Gauge | Summary

let mtype_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Summary -> "summary"

type sample = {
  sample_name : string;
  labels : (string * string) list;
  value : float;
}

type family = {
  family_name : string;
  help : string;
  mtype : mtype;
  samples : sample list;
}

(* ------------------------------------------------------------------ *)
(* Identifiers, escaping, values                                      *)
(* ------------------------------------------------------------------ *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let is_label_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_label_char c = is_label_start c || (c >= '0' && c <= '9')

let valid_metric_name s =
  String.length s > 0
  && is_name_start s.[0]
  && String.for_all is_name_char s

let valid_label_name s =
  String.length s > 0
  && is_label_start s.[0]
  && String.for_all is_label_char s

let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Buffer.create (String.length s + 1) in
    if not (is_name_start s.[0]) && is_name_char s.[0] then
      Buffer.add_char b '_';
    String.iter (fun c -> Buffer.add_char b (if is_name_char c then c else '_')) s;
    Buffer.contents b
  end

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let string_of_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let family ~name ~help mtype samples =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Exposition.family: invalid name %S" name);
  List.iter
    (fun s ->
      if not (valid_metric_name s.sample_name) then
        invalid_arg
          (Printf.sprintf "Exposition.family %s: invalid sample name %S" name
             s.sample_name);
      List.iter
        (fun (k, _) ->
          if not (valid_label_name k) then
            invalid_arg
              (Printf.sprintf "Exposition.family %s: invalid label name %S"
                 name k))
        s.labels)
    samples;
  { family_name = name; help; mtype; samples }

(* ------------------------------------------------------------------ *)
(* Dotted names -> families                                           *)
(* ------------------------------------------------------------------ *)

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* [net.port.3.enqueue] -> name parts [net; port; enqueue] and label
   [("port", "3")]: a purely numeric component labels the component
   before it.  A leading numeric component has nothing to key on and
   stays in the name (sanitized). *)
let split_dotted ?(tenant_names = []) dotted =
  let components = String.split_on_char '.' dotted in
  let rec walk parts labels = function
    | [] -> (List.rev parts, List.rev labels)
    | num :: rest when is_digits num && parts <> [] ->
      let key = List.hd parts in
      let value =
        if key = "tenant" then
          match List.assoc_opt (int_of_string num) tenant_names with
          | Some name -> name
          | None -> num
        else num
      in
      walk parts ((key, value) :: labels) rest
    | c :: rest -> walk (sanitize_name c :: parts) labels rest
  in
  let parts, labels = walk [] [] components in
  (String.concat "_" parts, labels)

let base_name ?(namespace = "qvisor") dotted_head =
  if namespace = "" then dotted_head
  else sanitize_name namespace ^ "_" ^ dotted_head

let with_total name =
  if String.length name >= 6 && String.sub name (String.length name - 6) 6 = "_total"
  then name
  else name ^ "_total"

(* Accumulate samples under their family, keeping first-appearance order
   (inputs arrive name-sorted, so output is deterministic). *)
type builder = {
  mutable order : string list; (* reversed *)
  tbl : (string, string * mtype * sample list ref) Hashtbl.t;
}

let builder () = { order = []; tbl = Hashtbl.create 32 }

let add_sample b ~name ~help ~mtype s =
  match Hashtbl.find_opt b.tbl name with
  | Some (_, t, samples) when t = mtype -> samples := s :: !samples
  | Some _ ->
    (* Same collapsed name, different kind: disambiguate rather than
       emit a malformed family. *)
    let name' = name ^ "_" ^ mtype_to_string mtype in
    (match Hashtbl.find_opt b.tbl name' with
    | Some (_, _, samples) -> samples := s :: !samples
    | None ->
      b.order <- name' :: b.order;
      Hashtbl.add b.tbl name' (help, mtype, ref [ s ]))
  | None ->
    b.order <- name :: b.order;
    Hashtbl.add b.tbl name (help, mtype, ref [ s ])

let finish b =
  List.rev b.order
  |> List.map (fun name ->
         let help, mtype, samples = Hashtbl.find b.tbl name in
         family ~name ~help mtype (List.rev !samples))
  |> List.sort (fun a b -> compare a.family_name b.family_name)

(* Help text: the dotted name with numeric components generalized, so
   [net.port.0.drop] and [net.port.1.drop] share one help line. *)
let generalize dotted =
  String.split_on_char '.' dotted
  |> List.map (fun c -> if is_digits c then "*" else c)
  |> String.concat "."

let quantile_labels = [ 0.5; 0.9; 0.99 ]

let families_of_registry ?namespace ?tenant_names tel =
  let b = builder () in
  let collapse dotted =
    let head, labels = split_dotted ?tenant_names dotted in
    (base_name ?namespace head, labels)
  in
  List.iter
    (fun (dotted, v) ->
      let name, labels = collapse dotted in
      let name = with_total name in
      add_sample b ~name ~help:(generalize dotted) ~mtype:Counter
        { sample_name = name; labels; value = float_of_int v })
    (Telemetry.exported_counters tel);
  List.iter
    (fun (dotted, v) ->
      let name, labels = collapse dotted in
      add_sample b ~name ~help:(generalize dotted) ~mtype:Gauge
        { sample_name = name; labels; value = v })
    (Telemetry.exported_gauges tel);
  List.iter
    (fun (dotted, h) ->
      let name, labels = collapse dotted in
      let help = generalize dotted in
      List.iter
        (fun q ->
          add_sample b ~name ~help ~mtype:Summary
            {
              sample_name = name;
              labels = labels @ [ ("quantile", string_of_value q) ];
              value = Telemetry.Histogram.quantile h q;
            })
        quantile_labels;
      add_sample b ~name ~help ~mtype:Summary
        {
          sample_name = name ^ "_sum";
          labels;
          value = Telemetry.Histogram.sum h;
        };
      add_sample b ~name ~help ~mtype:Summary
        {
          sample_name = name ^ "_count";
          labels;
          value = float_of_int (Telemetry.Histogram.count h);
        })
    (Telemetry.exported_histograms tel);
  List.iter
    (fun (dotted, total) ->
      let name, labels = collapse dotted in
      let name = with_total name in
      add_sample b ~name ~help:(generalize dotted ^ " (series total)")
        ~mtype:Counter
        { sample_name = name; labels; value = total })
    (Telemetry.exported_series tel);
  finish b

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let header = "# qvisor text exposition"

let render_sample buf s =
  Buffer.add_string buf s.sample_name;
  (match s.labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_value s.value);
  Buffer.add_char buf '\n'

let render_families families =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" f.family_name (escape_help f.help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" f.family_name
           (mtype_to_string f.mtype));
      List.iter (render_sample buf) f.samples)
    families;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* Wall-clock scrape stamps must never run backwards (NTP steps, frozen
   test clocks): clamp to the highest value handed out so far. *)
let last_scrape_stamp = ref neg_infinity

let scrape_timestamp_family ?namespace ?(now = Unix.gettimeofday) () =
  let stamp = Float.max !last_scrape_stamp (now ()) in
  last_scrape_stamp := stamp;
  let name = base_name ?namespace "scrape_timestamp_seconds" in
  family ~name ~help:"wall-clock time of this render (monotonic per process)"
    Gauge
    [ { sample_name = name; labels = []; value = stamp } ]

let render ?namespace ?tenant_names ?(extra = []) ?now tel =
  render_families
    (families_of_registry ?namespace ?tenant_names tel
    @ extra
    @ [ scrape_timestamp_family ?namespace ?now () ])

(* ------------------------------------------------------------------ *)
(* Strict parser                                                      *)
(* ------------------------------------------------------------------ *)

type line =
  | Help of { name : string; text : string }
  | Type of { name : string; mtype : mtype }
  | Sample of sample
  | Comment of string
  | Blank

let mtype_of_string = function
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | "summary" -> Some Summary
  | _ -> None

let unescape_help s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents b)
    else if s.[i] = '\\' then
      if i + 1 >= n then Error "dangling backslash in help text"
      else begin
        (match s.[i + 1] with
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | c -> Buffer.add_char b c);
        go (i + 2)
      end
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

let value_of_string s =
  match s with
  | "NaN" -> Ok Float.nan
  | "+Inf" -> Ok infinity
  | "-Inf" -> Ok neg_infinity
  | s -> (
    match float_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "invalid sample value %S" s))

let ( let* ) = Result.bind

(* name '{' k="v" (',' k="v")* '}' — strict: no interior whitespace. *)
let parse_labels s pos =
  let n = String.length s in
  let rec pairs acc pos =
    let start = pos in
    let pos = ref pos in
    while !pos < n && is_label_char s.[!pos] do
      incr pos
    done;
    let key = String.sub s start (!pos - start) in
    if not (valid_label_name key) then
      Error (Printf.sprintf "invalid label name %S" key)
    else if !pos + 1 >= n || s.[!pos] <> '=' || s.[!pos + 1] <> '"' then
      Error "expected =\" after label name"
    else begin
      let b = Buffer.create 16 in
      let pos = ref (!pos + 2) in
      let err = ref None in
      let closed = ref false in
      while (not !closed) && !err = None && !pos < n do
        match s.[!pos] with
        | '"' ->
          closed := true;
          incr pos
        | '\\' ->
          if !pos + 1 >= n then err := Some "dangling backslash in label value"
          else begin
            (match s.[!pos + 1] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | c ->
              err :=
                Some (Printf.sprintf "invalid escape \\%c in label value" c));
            pos := !pos + 2
          end
        | '\n' -> err := Some "raw newline in label value"
        | c ->
          Buffer.add_char b c;
          incr pos
      done;
      match !err with
      | Some e -> Error e
      | None ->
        if not !closed then Error "unterminated label value"
        else
          let acc = (key, Buffer.contents b) :: acc in
          if !pos < n && s.[!pos] = ',' then pairs acc (!pos + 1)
          else if !pos < n && s.[!pos] = '}' then Ok (List.rev acc, !pos + 1)
          else Error "expected , or } after label value"
    end
  in
  pairs [] pos

let parse_sample s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n && is_name_char s.[!pos] do
    incr pos
  done;
  let name = String.sub s 0 !pos in
  if not (valid_metric_name name) then
    Error (Printf.sprintf "invalid metric name at %S" s)
  else
    let* labels, pos =
      if !pos < n && s.[!pos] = '{' then parse_labels s (!pos + 1)
      else Ok ([], !pos)
    in
    if pos >= n || s.[pos] <> ' ' then
      Error "expected single space before sample value"
    else
      let rest = String.sub s (pos + 1) (n - pos - 1) in
      if rest = "" || String.contains rest ' ' then
        Error "expected exactly one value after the space"
      else
        let* value = value_of_string rest in
        Ok (Sample { sample_name = name; labels; value })

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let parse_line s =
  if s = "" then Ok Blank
  else if starts_with ~prefix:"# HELP " s then begin
    let rest = String.sub s 7 (String.length s - 7) in
    let name, text =
      match String.index_opt rest ' ' with
      | Some i ->
        ( String.sub rest 0 i,
          String.sub rest (i + 1) (String.length rest - i - 1) )
      | None -> (rest, "")
    in
    if not (valid_metric_name name) then
      Error (Printf.sprintf "HELP: invalid metric name %S" name)
    else
      let* text = unescape_help text in
      Ok (Help { name; text })
  end
  else if starts_with ~prefix:"# TYPE " s then begin
    let rest = String.sub s 7 (String.length s - 7) in
    match String.split_on_char ' ' rest with
    | [ name; kind ] -> (
      if not (valid_metric_name name) then
        Error (Printf.sprintf "TYPE: invalid metric name %S" name)
      else
        match mtype_of_string kind with
        | Some mtype -> Ok (Type { name; mtype })
        | None -> Error (Printf.sprintf "TYPE: unknown metric type %S" kind))
    | _ -> Error "TYPE: expected '# TYPE <name> <type>'"
  end
  else if s.[0] = '#' then
    Ok (Comment (String.sub s 1 (String.length s - 1)))
  else parse_sample s

let render_line = function
  | Blank -> ""
  | Comment text -> "#" ^ text
  | Help { name; text } ->
    Printf.sprintf "# HELP %s %s" name (escape_help text)
  | Type { name; mtype } ->
    Printf.sprintf "# TYPE %s %s" name (mtype_to_string mtype)
  | Sample s ->
    let buf = Buffer.create 64 in
    render_sample buf s;
    (* render_sample terminates the line; lines here carry no newline. *)
    String.sub (Buffer.contents buf) 0 (Buffer.length buf - 1)

(* Strip a known suffix, or return the name unchanged. *)
let strip_suffix name suffix =
  let n = String.length name and k = String.length suffix in
  if n > k && String.sub name (n - k) k = suffix then
    Some (String.sub name 0 (n - k))
  else None

let parse text =
  let lines = String.split_on_char '\n' text in
  (* A trailing newline yields one empty final chunk, which is an
     artifact of the split, not a Blank line of the document. *)
  let lines =
    match List.rev lines with
    | "" :: rest -> List.rev rest
    | _ -> lines
  in
  let types : (string, mtype) Hashtbl.t = Hashtbl.create 32 in
  let helps : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let family_of name =
    match Hashtbl.find_opt types name with
    | Some t -> Some (name, t)
    | None -> (
      let via suffix =
        match strip_suffix name suffix with
        | Some base -> (
          match Hashtbl.find_opt types base with
          | Some Summary -> Some (base, Summary)
          | _ -> None)
        | None -> None
      in
      match via "_sum" with Some f -> Some f | None -> via "_count")
  in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
      match parse_line raw with
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      | Ok line -> (
        let continue () = go (line :: acc) (lineno + 1) rest in
        match line with
        | Comment " EOF" ->
          if rest <> [] then
            Error (Printf.sprintf "line %d: content after # EOF" (lineno + 1))
          else continue ()
        | Help { name; _ } ->
          if Hashtbl.mem helps name then
            Error (Printf.sprintf "line %d: duplicate HELP for %s" lineno name)
          else begin
            Hashtbl.add helps name ();
            continue ()
          end
        | Type { name; mtype } ->
          if Hashtbl.mem types name then
            Error (Printf.sprintf "line %d: duplicate TYPE for %s" lineno name)
          else begin
            Hashtbl.add types name mtype;
            continue ()
          end
        | Sample s -> (
          match family_of s.sample_name with
          | None ->
            Error
              (Printf.sprintf "line %d: sample %s has no preceding # TYPE"
                 lineno s.sample_name)
          | Some (base, mtype) ->
            let has_quantile = List.mem_assoc "quantile" s.labels in
            if has_quantile && (mtype <> Summary || base <> s.sample_name)
            then
              Error
                (Printf.sprintf
                   "line %d: quantile label outside a summary sample" lineno)
            else continue ())
        | Comment _ | Blank -> continue ()))
  in
  go [] 1 lines
