(** Cross-cutting telemetry: a named metric registry and a sampled
    structured trace sink.

    Every data-plane component takes an optional registry; the registry is
    either {e enabled} (metrics are interned by name and accumulate) or the
    shared {!disabled} value, in which case every handle returned is a
    detached dummy and every operation degenerates to a single unobserved
    store — near-zero cost, no branches in callers.

    Four metric kinds cover the repro's needs:

    - {b counters} — monotone event counts (enqueues, drops, table hits);
    - {b gauges} — last-written values (events fired, wall-clock seconds);
    - {b histograms} — constant-memory distributions: Welford moments
      ({!Stats}) plus P² sketches ({!P2_quantile}) for p50/p90/p99;
    - {b series} — bucketed time series ({!Timeseries}) for rate plots.

    Orthogonally, a registry may carry one {e trace sink}: an NDJSON
    [out_channel] receiving one JSON object per sampled packet-level event
    (enqueue / dequeue / drop / preprocess / resynthesis).  Sampling draws
    from a dedicated {!Rng} stream, so traces are deterministic for a fixed
    seed.  Line schema (fields absent when not supplied):

    {v {"t":1.25e-3,"ev":"enqueue","link":4,"tenant":0,"flow":7,"rank":311} v} *)

type t
(** A metric registry (plus optional trace sink). *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [nan] when empty, like {!Stats.mean}. *)

  val quantile : t -> float -> float
  (** [quantile t q] is the live P² estimate of the [q]-quantile for the
      three sketches a histogram maintains: [q] must be [0.5], [0.9] or
      [0.99].  [nan] when empty, exact below five observations
      ({!P2_quantile.estimate}).
      @raise Invalid_argument for any other [q]. *)

  val sum : t -> float
  (** Sum of the observations ([0.] when empty) — with {!count} this is
      what a Prometheus summary exposes as [_sum]/[_count]. *)
end

module Series : sig
  type t

  val record : t -> time:float -> float -> unit
end

val create : unit -> t
(** A fresh, enabled registry. *)

val disabled : t
(** The shared no-op registry: handles created from it are inert dummies,
    [event] and [attach_sink] do nothing, and [snapshot] is empty. *)

val is_enabled : t -> bool

val counter : t -> string -> Counter.t
(** Intern (or retrieve) the counter registered under a name.  Two calls
    with the same name return the same accumulator. *)

val gauge : t -> string -> Gauge.t

val histogram : t -> string -> Histogram.t

val series : t -> ?bucket:float -> string -> Series.t
(** [bucket] (default [0.01] s) is only used on first interning. *)

(** {1 Trace sink} *)

val attach_sink : t -> ?sample:float -> ?seed:int -> out_channel -> unit
(** Attach an NDJSON event sink.  [sample] (default [1.0]) is the
    probability that any given event is written; draws come from a
    splitmix64 stream seeded with [seed] (default [0]), so the set of
    sampled events is a deterministic function of the seed.  The channel
    stays owned by the caller.  Replaces any previous sink; the replaced
    sink's channel is flushed first, so buffered NDJSON lines are never
    lost by a swap (the old channel is not closed — it stays owned by
    whoever attached it).
    @raise Invalid_argument unless [0. <= sample <= 1.]. *)

val detach_sink : t -> unit
(** Flush and forget the sink.  The channel is flushed so every buffered
    line reaches it, but it is not closed — the caller that attached it
    closes it. Detaching when no sink is attached is a no-op. *)

val tracing : t -> bool
(** [true] when a sink is attached — callers use this to skip building
    event payloads that would not be written. *)

val event :
  t ->
  time:float ->
  kind:string ->
  ?uid:int ->
  ?link:int ->
  ?tenant:int ->
  ?flow:int ->
  ?rank_before:int ->
  ?rank:int ->
  ?extra:(string * Json.t) list ->
  unit ->
  unit
(** Offer one event to the sink: counted, then written as one NDJSON line
    if the sampler keeps it.  No-op without a sink. *)

val events_seen : t -> int
(** Events offered to the sink since attach. *)

val events_written : t -> int
(** Events that survived sampling and were written. *)

(** {1 Merge} *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds every metric of [src] into [into]:
    counters add, gauges take [src]'s value (last-write-wins, matching a
    serial run where [src]'s work executed later), histograms combine
    moments via {!Stats.merge_into} and quantile sketches via
    {!P2_quantile.merge_into}, series sum bucket-wise, and trace
    seen/written counts add when both registries carry a sink.  The merge
    is deterministic: merging the same registries in the same order always
    produces the same snapshot, which is how parallel experiment runs keep
    [--telemetry] output independent of the worker count.  No-op when
    either registry is disabled.  [src] is left untouched. *)

(** {1 Export} *)

val exported_counters : t -> (string * int) list
(** Every interned counter as [(name, value)], sorted by name; empty for
    {!disabled}.  The read side used by {!Exposition}. *)

val exported_gauges : t -> (string * float) list

val exported_histograms : t -> (string * Histogram.t) list
(** Live handles, not copies: read them, do not observe into them. *)

val exported_series : t -> (string * float) list
(** [(name, total)] per interned time series. *)

val snapshot : t -> Json.t
(** The whole registry as one JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{..},"series":{..},
      "trace":{..}}], names sorted for stable output.  Empty-histogram
    moments are [null] rather than NaN so the result always serializes. *)
