(** Bucketed time series.

    Accumulates (time, value) observations into fixed-width buckets —
    e.g. per-tenant delivered bytes over time, to plot activity timelines
    like the paper's Fig. 2. *)

type t

val create : bucket:float -> unit -> t
(** [create ~bucket] aggregates into buckets of [bucket] seconds.
    @raise Invalid_argument if [bucket <= 0.]. *)

val add : t -> time:float -> float -> unit
(** Accumulate a value at a (non-negative) virtual time. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds every bucket of [src] into [into].
    The two series must share the same bucket width.
    @raise Invalid_argument otherwise. *)

val buckets : t -> (float * float) list
(** [(bucket_start_time, sum)] pairs in time order, empty buckets between
    the first and last observation included as zeros. *)

val rate : t -> (float * float) list
(** Like {!buckets} but values divided by the bucket width — a rate in
    units/second. *)

val total : t -> float

val pp : ?width:int -> unit -> Format.formatter -> t -> unit
(** Render an ASCII sparkline-style bar chart, [width] columns of
    resolution (default 50). *)
