(** Performance observability: allocation/GC telemetry, per-stage
    throughput meters, and a noise-aware micro-benchmark harness with a
    statistically-gated comparator.

    This is the measurement scaffolding the engine-rewrite roadmap item
    is judged against.  Four layers, cheapest first:

    - {!allocated_bytes} and {!sample_gc}: allocation counters and
      [Gc.quick_stat]-derived collection/heap/pause gauges pushed into a
      {!Telemetry} registry (and from there rendered by {!Exposition});
    - {!Meter} / {!Meters}: per-stage monotonic event counters with
      sampled allocation attribution, published as events/sec and
      alloc-bytes/event gauges at window close;
    - {!Bench}: repeated-trial micro-benchmarks reporting min/median/MAD
      for both ns/op and allocated bytes/op — the producer of
      [BENCH_engine.json];
    - {!Diff}: the comparator behind [qvisor-cli bench diff] — MAD-based
      noise bands, a configurable relative threshold, a regression table
      and a machine-readable verdict. *)

val word_bytes : float
(** Bytes per OCaml word on this platform ([Sys.word_size / 8]). *)

val allocated_bytes : unit -> float
(** Total bytes allocated by this domain since program start
    ([minor_words + major_words - promoted_words], scaled to bytes).
    Monotonic; differences measure allocation between two points. *)

val probe_overhead_bytes : float
(** Bytes one {!allocated_bytes} call itself allocates (calibrated once
    at module initialisation).  A delta of two probes includes exactly
    the first probe's own footprint — subtract this to correct. *)

val write_atomic : string -> (out_channel -> unit) -> unit
(** [write_atomic path f] runs [f] on a temporary file in [path]'s
    directory and renames it over [path] on success, so an interrupted
    writer can never leave a truncated file at [path].  On exception the
    temporary file is removed and the exception re-raised. *)

(** {1 GC telemetry} *)

(** Maximum GC-pause observation via [Runtime_events] (OCaml >= 5.0).
    Tracking is best-effort: {!start} returns [None] when the runtime
    ring cannot be set up (and the run proceeds unobserved). *)
module Pause : sig
  type t

  val start : unit -> t option
  (** Enable the runtime-events ring (placed under the system temp
      directory unless [OCAML_RUNTIME_EVENTS_DIR] is already set) and
      open a self-cursor. *)

  val poll : t -> unit
  (** Drain pending runtime events, updating the running maximum.  Call
      periodically — the ring is bounded and unread events are lost. *)

  val max_pause_seconds : t -> float
  (** Longest runtime phase (GC slice or pause) observed so far, in
      seconds; [0.] before any collection.  Approximate: the longest
      begin-to-end runtime-phase interval seen on any ring. *)
end

val sample_gc : ?pause:Pause.t -> Telemetry.t -> unit
(** Sample [Gc.quick_stat] into gauges: [gc.minor_collections],
    [gc.major_collections], [gc.compactions], [gc.heap_words],
    [gc.top_heap_words], [gc.minor_words], [gc.promoted_words],
    [gc.major_words] and [gc.allocated_bytes]; with [pause], also polls
    it and sets [gc.max_pause_seconds].  No-op on a disabled registry. *)

(** {1 Per-stage throughput meters} *)

(** A cheap monotonic event counter for one hot-path stage.  Every
    {!before}/{!after} bracket counts one event; every [sample]-th
    event additionally measures the bytes allocated inside the bracket,
    so allocs/event converges while the steady-state cost stays one
    increment, one mask and one branch. *)
module Meter : sig
  type t

  val create : ?sample:int -> string -> t
  (** [sample] (default 64) must be a power of two.
      @raise Invalid_argument otherwise. *)

  val disabled : t
  (** Shared no-op meter: both brackets degenerate to one branch. *)

  val name : t -> string
  val before : t -> unit
  val after : t -> unit

  val ops : t -> int
  (** Events counted so far. *)

  val alloc_bytes_per_op : t -> float
  (** Sampled mean bytes allocated per event ([nan] before the first
      sampled event). *)
end

(** The fixed stage set the fabric instruments: enqueue, dequeue,
    preprocess, recorder and SLO-audit paths. *)
module Meters : sig
  type t

  val create : unit -> t
  val disabled : t
  val is_enabled : t -> bool
  val enqueue : t -> Meter.t
  val dequeue : t -> Meter.t
  val preprocess : t -> Meter.t
  val recorder : t -> Meter.t
  val slo_audit : t -> Meter.t

  val all : t -> Meter.t list
  (** The five stage meters, fixed order. *)

  val publish : t -> Telemetry.t -> unit
  (** Window close: for each stage, add the window's event count to the
      [perf.stage.<stage>.events] counter and set
      [perf.stage.<stage>.events_per_sec] (events this window over
      wall-clock seconds since the previous publish) and
      [perf.stage.<stage>.alloc_bytes_per_event] gauges.  Stages idle in
      the window keep their last rate gauge.  No-op when either side is
      disabled. *)
end

(** {1 Micro-benchmark harness} *)

(** Order statistics over repeated trials. *)
module Summary : sig
  type t = {
    s_min : float;
    s_median : float;
    s_mad : float;  (** median absolute deviation from the median *)
    s_samples : float list;  (** per-trial values, trial order *)
  }

  val of_samples : float list -> t
  (** [nan] statistics on an empty list. *)

  val median : float list -> float
end

module Bench : sig
  type entry = {
    b_name : string;
    b_iters : int;  (** operations per trial (after calibration) *)
    b_trials : int;
    b_ns_per_op : Summary.t;
    b_alloc_per_op : Summary.t;  (** allocated bytes per operation *)
  }

  val run :
    ?trials:int -> ?min_time_s:float -> name:string -> (int -> unit) -> entry
  (** [run ~name f] calibrates an iteration count so [f iters] runs for
      at least [min_time_s] (default [0.05]) seconds, then executes
      [trials] (default 7) timed trials, each also measured with
      {!allocated_bytes} deltas (probe-corrected).  [f n] must perform
      the operation under test [n] times.
      @raise Invalid_argument when [trials] or [min_time_s] is not
      strictly positive. *)

  val schema : string
  (** ["qvisor-bench-engine/1"] — the [BENCH_engine.json] envelope. *)

  val report_to_json : mode:string -> entry list -> Json.t
  (** [{"schema":…,"mode":…,"benchmarks":[…]}] with non-finite numbers
      encoded as [null]. *)

  val report_of_json : Json.t -> (entry list, string) result
  val read_report : string -> (entry list, string) result
  (** Parse a report file; errors are prefixed with the path. *)
end

(** {1 Statistical comparator} *)

module Diff : sig
  type verdict =
    | Regression  (** slower/fatter by >= threshold, outside noise *)
    | Improvement
    | Within_noise
        (** change below threshold, or within [noise_k * (MAD + MAD)] *)
    | Missing_baseline  (** metric only in the current report *)
    | Missing_current  (** metric only in the baseline report *)
    | Incomparable  (** baseline median zero, negative or non-finite *)

  type row = {
    r_metric : string;  (** ["<bench> ns/op"] or ["<bench> alloc B/op"] *)
    r_old : float;  (** baseline median ([nan] when missing) *)
    r_new : float;
    r_change : float;  (** relative change ([nan] when not comparable) *)
    r_noise : float;  (** the absolute noise band around the baseline *)
    r_verdict : verdict;
  }

  type report = {
    d_threshold : float;
    d_noise_k : float;
    d_rows : row list;
  }

  val compare :
    ?threshold:float ->
    ?noise_k:float ->
    baseline:Bench.entry list ->
    current:Bench.entry list ->
    unit ->
    report
  (** Pair benchmarks by name and judge both dimensions of each pair.
      A dimension regresses when its median grew by at least
      [threshold] (default [0.15], relative — the boundary counts) {e
      and} the absolute change exceeds [noise_k] (default [3.]) times
      the sum of the two MADs; symmetrically for improvement; anything
      else is within noise.  Metrics present on one side only, and
      baselines with zero/NaN medians, are reported but never gate. *)

  val regressions : report -> int
  val verdict_name : verdict -> string

  val report_to_json : report -> Json.t
  (** [{"schema":"qvisor-bench-diff/1",…,"verdict":"pass"|"regression",
      "rows":[…]}] — the machine-readable verdict. *)

  val pp_report : Format.formatter -> report -> unit
  (** The regression table, worst relative change first. *)
end
