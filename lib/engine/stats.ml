type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations, Welford *)
  mutable minv : float;
  mutable maxv : float;
  mutable sum : float;
  samples : float Vec.t option;
}

let create ?(keep_samples = true) () =
  {
    n = 0;
    mean = 0.;
    m2 = 0.;
    minv = nan;
    maxv = nan;
    sum = 0.;
    samples = (if keep_samples then Some (Vec.create ()) else None);
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  t.sum <- t.sum +. x;
  if t.n = 1 then begin
    t.minv <- x;
    t.maxv <- x
  end
  else begin
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x
  end;
  match t.samples with None -> () | Some d -> Vec.add_last d x

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.minv

let max t = t.maxv

let sum t = t.sum

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0,1]";
  match t.samples with
  | None -> invalid_arg "Stats.quantile: samples not kept"
  | Some d ->
    let n = Vec.length d in
    if n = 0 then nan
    else begin
      let a = Vec.to_array d in
      Array.sort Float.compare a;
      let pos = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = int_of_float (Float.ceil pos) in
      if lo = hi then a.(lo)
      else begin
        let w = pos -. float_of_int lo in
        (a.(lo) *. (1. -. w)) +. (a.(hi) *. w)
      end
    end

let merge_into ~into:t src =
  match src.samples with
  | Some d -> Vec.iter (fun x -> add t x) d
  | None ->
    (* Without samples we can only merge moments. *)
    if src.n > 0 then begin
      let n0 = t.n in
      let n1 = src.n in
      let n = n0 + n1 in
      let delta = src.mean -. t.mean in
      let mean =
        ((t.mean *. float_of_int n0) +. (src.mean *. float_of_int n1))
        /. float_of_int n
      in
      let m2 =
        t.m2 +. src.m2
        +. (delta *. delta *. float_of_int n0 *. float_of_int n1
           /. float_of_int n)
      in
      t.n <- n;
      t.mean <- mean;
      t.m2 <- m2;
      t.sum <- t.sum +. src.sum;
      t.minv <-
        (if Float.is_nan t.minv then src.minv else Float.min t.minv src.minv);
      t.maxv <-
        (if Float.is_nan t.maxv then src.maxv else Float.max t.maxv src.maxv)
    end

let merge a b =
  let keep = a.samples <> None && b.samples <> None in
  let t = create ~keep_samples:keep () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else if t.samples <> None then
    Format.fprintf ppf "n=%d mean=%.6g p50=%.6g p99=%.6g max=%.6g" t.n (mean t)
      (quantile t 0.5) (quantile t 0.99) (max t)
  else
    Format.fprintf ppf "n=%d mean=%.6g min=%.6g max=%.6g" t.n (mean t) (min t)
      (max t)
