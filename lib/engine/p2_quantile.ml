(* P² keeps five markers: minimum, the q/2, q and (1+q)/2 quantile
   estimates, and maximum.  Marker heights are adjusted with a piecewise
   parabolic (hence "P squared") interpolation as observations stream in. *)

type t = {
  q : float;
  heights : float array; (* marker heights, 5 *)
  positions : float array; (* actual marker positions, 5 *)
  desired : float array; (* desired marker positions, 5 *)
  increments : float array; (* desired position increments, 5 *)
  mutable n : int;
}

let create ~q =
  if q <= 0. || q >= 1. then invalid_arg "P2_quantile.create: q outside (0,1)";
  {
    q;
    heights = Array.make 5 0.;
    positions = [| 1.; 2.; 3.; 4.; 5. |];
    desired = [| 1.; 1. +. (2. *. q); 1. +. (4. *. q); 3. +. (2. *. q); 5. |];
    increments = [| 0.; q /. 2.; q; (1. +. q) /. 2.; 1. |];
    n = 0;
  }

let count t = t.n

let parabolic t i d =
  let h = t.heights and p = t.positions in
  h.(i)
  +. d
     /. (p.(i + 1) -. p.(i - 1))
     *. (((p.(i) -. p.(i - 1) +. d) *. (h.(i + 1) -. h.(i)) /. (p.(i + 1) -. p.(i)))
        +. ((p.(i + 1) -. p.(i) -. d) *. (h.(i) -. h.(i - 1)) /. (p.(i) -. p.(i - 1))))

let linear t i d =
  let h = t.heights and p = t.positions in
  h.(i) +. (d *. (h.(i + int_of_float d) -. h.(i)) /. (p.(i + int_of_float d) -. p.(i)))

let add t x =
  t.n <- t.n + 1;
  if t.n <= 5 then begin
    t.heights.(t.n - 1) <- x;
    if t.n = 5 then Array.sort Float.compare t.heights
  end
  else begin
    (* Find cell k such that heights.(k) <= x < heights.(k+1), clamping
       extremes. *)
    let k =
      if x < t.heights.(0) then begin
        t.heights.(0) <- x;
        0
      end
      else if x >= t.heights.(4) then begin
        t.heights.(4) <- x;
        3
      end
      else begin
        let rec find i = if x < t.heights.(i + 1) then i else find (i + 1) in
        find 0
      end
    in
    for i = k + 1 to 4 do
      t.positions.(i) <- t.positions.(i) +. 1.
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    (* Adjust the three interior markers if needed. *)
    for i = 1 to 3 do
      let d = t.desired.(i) -. t.positions.(i) in
      if
        (d >= 1. && t.positions.(i + 1) -. t.positions.(i) > 1.)
        || (d <= -1. && t.positions.(i - 1) -. t.positions.(i) < -1.)
      then begin
        let d = if d >= 0. then 1. else -1. in
        let candidate = parabolic t i d in
        let h =
          if t.heights.(i - 1) < candidate && candidate < t.heights.(i + 1)
          then candidate
          else linear t i d
        in
        t.heights.(i) <- h;
        t.positions.(i) <- t.positions.(i) +. d
      end
    done
  end

let merge_into ~into src =
  if into.q <> src.q then invalid_arg "P2_quantile.merge_into: quantiles differ";
  if src.n = 0 then ()
  else if src.n <= 5 then
    (* Below five observations the heights are the raw samples. *)
    for i = 0 to src.n - 1 do
      add into src.heights.(i)
    done
  else begin
    (* Replay the five marker heights, each with the multiplicity implied
       by the gap between adjacent marker positions.  This is approximate
       (the sketch cannot be merged exactly) but deterministic: the same
       source state always replays the same stream. *)
    let round p = int_of_float (Float.round p) in
    let prev = ref 0 in
    for i = 0 to 4 do
      let upto = round src.positions.(i) in
      for _ = !prev + 1 to upto do
        add into src.heights.(i)
      done;
      prev := max !prev upto
    done
  end

let estimate t =
  if t.n = 0 then nan
  else if t.n >= 5 then t.heights.(2)
  else begin
    let a = Array.sub t.heights 0 t.n in
    Array.sort Float.compare a;
    let pos = t.q *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then a.(lo)
    else begin
      let w = pos -. float_of_int lo in
      (a.(lo) *. (1. -. w)) +. (a.(hi) *. w)
    end
  end
