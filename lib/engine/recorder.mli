(** Always-on flight recorder: a fixed-size ring buffer of recent
    packet-level events.

    Aggregate telemetry ({!Telemetry}) averages transient behavior away;
    the recorder is the complementary layer beneath it, answering "what
    happened to the packets {e just before} things went wrong".  Recording
    an event is a handful of array stores — cheap enough to leave enabled
    on every port — and the buffer silently overwrites its oldest entries,
    so memory is constant regardless of run length.

    On an {e anomaly} (a drop-rate spike detected by {!Trigger}, a guard
    violation, or a conformance divergence) the caller dumps the last-N
    events as NDJSON ({!dump}), giving every failure a causal packet
    history next to its reproducer.

    Line schema (fields are omitted when not supplied, i.e. negative):

    {v {"t":1.25e-3,"ev":"enqueue","uid":17,"link":4,"tenant":0,"flow":7,"rank":311} v} *)

type kind = Enqueue | Dequeue | Drop | Evict | Preprocess

val kind_to_string : kind -> string
(** ["enqueue"], ["dequeue"], ["drop"], ["evict"], ["preprocess"] — the
    same vocabulary the {!Telemetry} trace sink uses, so recorder dumps
    and sampled traces join in the same lineage tooling. *)

type event = {
  time : float;
  kind : kind;
  uid : int;  (** packet uid (or scenario sid); [-1] when unknown *)
  link : int;  (** port/link id; [-1] when not applicable *)
  tenant : int;  (** [-1] when unknown *)
  flow : int;  (** [-1] when unknown *)
  rank_before : int;  (** pre-transform rank; [-1] except on [Preprocess] *)
  rank : int;  (** rank as scheduled; [-1] when unknown *)
}

type t

val create : ?capacity:int -> unit -> t
(** A fresh ring holding the last [capacity] events (default [512]).
    @raise Invalid_argument when [capacity < 1]. *)

val disabled : t
(** The shared no-op recorder: {!record} does nothing, the ring stays
    empty.  Callers hold an unconditional [t] and never branch. *)

val is_enabled : t -> bool

val capacity : t -> int
(** [0] for {!disabled}. *)

val length : t -> int
(** Events currently held, [<= capacity]. *)

val seen : t -> int
(** Events offered since creation, including overwritten ones. *)

val record :
  t ->
  time:float ->
  kind:kind ->
  uid:int ->
  link:int ->
  tenant:int ->
  flow:int ->
  rank_before:int ->
  rank:int ->
  unit
(** Append one event, overwriting the oldest once full.  Takes scalar
    fields rather than an {!event} so the hot path allocates nothing —
    the ring stores plain unboxed columns.  Pass [-1] for fields that do
    not apply (see {!event} for their meaning). *)

val clear : t -> unit

val to_list : t -> event list
(** Held events, oldest first. *)

val event_to_json : event -> Json.t

val dump : t -> out_channel -> unit
(** Write the held events as NDJSON, oldest first, and flush.  The
    channel stays owned by the caller. *)

(** {1 Anomaly trigger}

    A sliding-window drop-rate detector with hysteresis.  Feed it one
    observation per enqueue attempt; it fires when the drop fraction over
    the last [window] attempts reaches [threshold], then stays silent for
    the next [cooldown] attempts so a sustained incident produces one
    dump, not a storm. *)

module Trigger : sig
  type t

  val create :
    ?window:int -> ?threshold:float -> ?cooldown:int -> unit -> t
  (** [window] (default [128]) attempts per sliding window; [threshold]
      (default [0.5]) is the firing drop fraction; [cooldown] (default
      [window]) attempts suppressed after a fire.  The trigger will not
      fire before a full window of observations has accumulated.
      @raise Invalid_argument when [window < 1], [cooldown < 0], or
      [threshold] is outside [(0, 1]]. *)

  val observe : t -> dropped:bool -> bool
  (** Record one enqueue outcome; [true] means "fire: dump now". *)

  val force : t -> bool
  (** An externally detected anomaly (guard violation, conformance
      divergence).  Returns [true] — and arms the cooldown — unless the
      cooldown is still running. *)

  val fired : t -> int
  (** Times the trigger has fired so far. *)
end
