type kind = Gauge | Counter

let kind_to_string = function Gauge -> "gauge" | Counter -> "counter"

type tier = { resolution : float; slots : int }

let default_tiers =
  [
    { resolution = 1.; slots = 120 };
    { resolution = 10.; slots = 180 };
    { resolution = 60.; slots = 240 };
  ]

(* One ring per (series, tier).  Parallel unboxed arrays rather than a
   record per slot: the whole ring is six flat blocks, no per-slot
   indirection, nothing for the GC to scan but the array headers.
   [epochs.(i)] holds the bucket index whose aggregates currently live
   in slot [i]; a mismatch means the slot's data belongs to a lapped,
   older bucket and reads as empty. *)
type ring = {
  resolution : float;
  inv_resolution : float;
  ring_slots : int;
  epochs : int array;  (* -1 = never written *)
  counts : float array;
  sums : float array;
  mins : float array;
  maxs : float array;
  lasts : float array;
}

type series = {
  s_name : string;
  s_kind : kind;
  rings : ring array;
  (* Counter state: the previous cumulative observation, NaN before the
     first one (whose increment is unknowable and therefore 0). *)
  mutable prev_raw : float;
}

type annotation = {
  a_time : float;
  a_kind : string;
  a_tenant : string option;
  a_detail : string;
}

type t = {
  tiers : tier list;
  by_name : (string, series) Hashtbl.t;
  mutable series_order : series list;  (* reversed interning order *)
  mutable max_time : float;
  (* Annotation ring: oldest overwritten first once full. *)
  ann : annotation option array;
  mutable ann_next : int;
  mutable ann_total : int;
}

let create ?(tiers = default_tiers) ?(annotation_capacity = 256) () =
  if tiers = [] then invalid_arg "Tsdb.create: no tiers";
  if annotation_capacity <= 0 then
    invalid_arg "Tsdb.create: annotation_capacity <= 0";
  List.iter
    (fun (tr : tier) ->
      if tr.resolution <= 0. || not (Float.is_finite tr.resolution) then
        invalid_arg "Tsdb.create: tier resolution must be positive";
      if tr.slots <= 0 then invalid_arg "Tsdb.create: tier slots must be positive")
    tiers;
  let rec check : tier list -> unit = function
    | a :: (b :: _ as rest) ->
      if b.resolution <= a.resolution then
        invalid_arg "Tsdb.create: tiers must be ordered finest first";
      if
        b.resolution *. float_of_int b.slots
        < a.resolution *. float_of_int a.slots
      then invalid_arg "Tsdb.create: coarser tiers must retain at least as long";
      check rest
    | _ -> ()
  in
  check tiers;
  {
    tiers;
    by_name = Hashtbl.create 64;
    series_order = [];
    max_time = 0.;
    ann = Array.make annotation_capacity None;
    ann_next = 0;
    ann_total = 0;
  }

let make_ring (tr : tier) =
  {
    resolution = tr.resolution;
    inv_resolution = 1. /. tr.resolution;
    ring_slots = tr.slots;
    epochs = Array.make tr.slots (-1);
    counts = Array.make tr.slots 0.;
    sums = Array.make tr.slots 0.;
    mins = Array.make tr.slots 0.;
    maxs = Array.make tr.slots 0.;
    lasts = Array.make tr.slots 0.;
  }

let series t ~kind name =
  match Hashtbl.find_opt t.by_name name with
  | Some s ->
    if s.s_kind <> kind then
      invalid_arg
        (Printf.sprintf "Tsdb.series: %S already interned as a %s" name
           (kind_to_string s.s_kind));
    s
  | None ->
    let s =
      {
        s_name = name;
        s_kind = kind;
        rings = Array.of_list (List.map make_ring t.tiers);
        prev_raw = Float.nan;
      }
    in
    Hashtbl.add t.by_name name s;
    t.series_order <- s :: t.series_order;
    s

let observe t s ~time value =
  if not (Float.is_nan value) then begin
    let time = if time < 0. then 0. else time in
    if time > t.max_time then t.max_time <- time;
    (* Counters carry cumulative totals on the wire; history stores the
       per-observation increment, reset-aware: a shrinking total means
       the counter restarted, and the whole post-reset value is new. *)
    let v =
      match s.s_kind with
      | Gauge -> value
      | Counter ->
        let prev = s.prev_raw in
        s.prev_raw <- value;
        if Float.is_nan prev then 0.
        else if value >= prev then value -. prev
        else value
    in
    let rings = s.rings in
    for i = 0 to Array.length rings - 1 do
      let r = Array.unsafe_get rings i in
      let bucket = int_of_float (time *. r.inv_resolution) in
      let slot = bucket mod r.ring_slots in
      let epoch = Array.unsafe_get r.epochs slot in
      if epoch = bucket then begin
        Array.unsafe_set r.counts slot (Array.unsafe_get r.counts slot +. 1.);
        Array.unsafe_set r.sums slot (Array.unsafe_get r.sums slot +. v);
        if v < Array.unsafe_get r.mins slot then Array.unsafe_set r.mins slot v;
        if v > Array.unsafe_get r.maxs slot then Array.unsafe_set r.maxs slot v;
        Array.unsafe_set r.lasts slot v
      end
      else if epoch < bucket then begin
        (* Fresh bucket: recycle the slot.  A write into a bucket older
           than the slot's occupant (epoch > bucket) is stale history —
           dropped rather than clobbering newer data. *)
        Array.unsafe_set r.epochs slot bucket;
        Array.unsafe_set r.counts slot 1.;
        Array.unsafe_set r.sums slot v;
        Array.unsafe_set r.mins slot v;
        Array.unsafe_set r.maxs slot v;
        Array.unsafe_set r.lasts slot v
      end
    done
  end

let names t =
  Hashtbl.fold (fun name s acc -> (name, s.s_kind) :: acc) t.by_name []
  |> List.sort compare

let series_count t = Hashtbl.length t.by_name

let last_time t = t.max_time

let per_series_bytes t =
  List.fold_left (fun acc (tr : tier) -> acc + (tr.slots * 6 * 8)) 0 t.tiers

let memory_bytes t = series_count t * per_series_bytes t

(* ------------------------------------------------------------------ *)
(* Range queries                                                      *)
(* ------------------------------------------------------------------ *)

type point = {
  p_count : int;
  p_sum : float;
  p_min : float;
  p_max : float;
  p_last : float;
}

type range = {
  r_name : string;
  r_kind : kind;
  r_start : float;
  r_step : float;
  r_points : point option array;
}

let max_points = 512

(* The serving tier: the finest one whose resolution does not exceed the
   requested step *and* whose retention window (counted back from the
   newest observation) still covers [start].  When nothing retains that
   far back, serve from the deepest-retention tier that fits the step —
   lapped buckets simply read as [None]. *)
let choose_ring t s ~start ~step =
  let now = t.max_time in
  let fits r = r.resolution <= step +. 1e-9 in
  let covers r =
    now -. (r.resolution *. float_of_int r.ring_slots) <= start +. 1e-9
  in
  let rings = Array.to_list s.rings in
  let fitting = List.filter fits rings in
  let fitting = if fitting = [] then [ List.hd rings ] else fitting in
  match List.find_opt covers fitting with
  | Some r -> r
  | None -> (
    (* No step-fitting tier retains that far back: escalate to the
       finest tier of any resolution that does (the step widens), else
       the deepest-retention tier. *)
    match List.find_opt covers rings with
    | Some r -> r
    | None -> List.nth rings (List.length rings - 1))

let query t ~name ~start ~stop ?step () =
  match Hashtbl.find_opt t.by_name name with
  | None -> None
  | Some s ->
    if not (stop > start) then None
    else begin
      let finest = s.rings.(0).resolution in
      let step = match step with Some v when v > 0. -> v | _ -> finest in
      let r = choose_ring t s ~start ~step in
      (* Round the step up to a whole number of tier buckets, then widen
         until the answer fits the hard cap. *)
      let per = max 1 (int_of_float (ceil (step /. r.resolution -. 1e-9))) in
      let span = stop -. start in
      let per =
        let needed bucket_step =
          int_of_float (ceil (span /. (bucket_step *. r.resolution) -. 1e-9))
        in
        let rec widen per = if needed (float_of_int per) > max_points then widen (per * 2) else per in
        widen per
      in
      let r_step = float_of_int per *. r.resolution in
      let r_start = Float.of_int (int_of_float (start /. r_step)) *. r_step in
      let n =
        max 1 (int_of_float (ceil ((stop -. r_start) /. r_step -. 1e-9)))
      in
      let n = min n max_points in
      let points = Array.make n None in
      for i = 0 to n - 1 do
        (* Merge the [per] tier buckets covering output bucket [i]. *)
        let first_bucket =
          int_of_float ((r_start +. (float_of_int i *. r_step)) /. r.resolution +. 0.5)
        in
        let acc = ref None in
        for j = 0 to per - 1 do
          let bucket = first_bucket + j in
          let slot = bucket mod r.ring_slots in
          if Array.unsafe_get r.epochs slot = bucket then begin
            let c = int_of_float r.counts.(slot) in
            let p =
              {
                p_count = c;
                p_sum = r.sums.(slot);
                p_min = r.mins.(slot);
                p_max = r.maxs.(slot);
                p_last = r.lasts.(slot);
              }
            in
            acc :=
              Some
                (match !acc with
                | None -> p
                | Some q ->
                  {
                    p_count = q.p_count + p.p_count;
                    p_sum = q.p_sum +. p.p_sum;
                    p_min = Float.min q.p_min p.p_min;
                    p_max = Float.max q.p_max p.p_max;
                    p_last = p.p_last;
                  })
          end
        done;
        points.(i) <- !acc
      done;
      Some { r_name = name; r_kind = s.s_kind; r_start; r_step; r_points = points }
    end

(* ------------------------------------------------------------------ *)
(* Annotations                                                        *)
(* ------------------------------------------------------------------ *)

let annotate t ~time ~kind ?tenant ~detail () =
  let a = { a_time = time; a_kind = kind; a_tenant = tenant; a_detail = detail } in
  t.ann.(t.ann_next) <- Some a;
  t.ann_next <- (t.ann_next + 1) mod Array.length t.ann;
  t.ann_total <- t.ann_total + 1

let annotations ?(start = neg_infinity) ?(stop = infinity) t =
  (* Walk the ring oldest-first so the sort is stable for equal stamps. *)
  let cap = Array.length t.ann in
  let out = ref [] in
  for i = 0 to cap - 1 do
    match t.ann.((t.ann_next + i) mod cap) with
    | Some a when a.a_time >= start && a.a_time < stop -> out := a :: !out
    | _ -> ()
  done;
  List.stable_sort (fun a b -> Float.compare a.a_time b.a_time) (List.rev !out)

let annotations_total t = t.ann_total
