(** Per-subject health state machine with hysteresis.

    The judgment layer above raw telemetry: each watched subject (a
    tenant, a port, a backend) is evaluated periodically, and each
    evaluation yields one {!signal} — [Pass], [Warn] or [Breach].  The
    machine folds signals into a strike counter with the same
    damped-ladder hysteresis as {!Guard} and {!Recorder.Trigger}:

    - [Pass] clears one strike;
    - [Warn] adds one strike;
    - [Breach] adds two strikes;

    and the state is derived from the strikes: [Healthy] below
    [degraded_strikes], [Degraded] from there up to [violating_strikes],
    [Violating] beyond.  Because a single [Warn] only reaches one strike
    and a [Pass] immediately clears it, alternating [Pass]/[Warn] windows
    can never flap the state — a subject has to be {e persistently} dirty
    to move, and persistently clean to recover.

    Every state {e transition} is emitted as one NDJSON line on the
    optional alert sink:

    {v {"t":0.12,"id":0,"name":"pfabric","from":"healthy","to":"degraded",
        "source":"slo","detail":"fast burn 3.2x over drop budget"} v}

    so a long run produces a compact, replayable alert stream rather than
    a log of every evaluation. *)

type state = Healthy | Degraded | Violating

type signal = Pass | Warn | Breach

val state_to_string : state -> string
(** ["healthy"], ["degraded"], ["violating"]. *)

val signal_to_string : signal -> string
(** ["pass"], ["warn"], ["breach"]. *)

val pp_state : Format.formatter -> state -> unit

type config = {
  degraded_strikes : int;  (** enter [Degraded] at this many strikes *)
  violating_strikes : int;  (** enter [Violating] at this many strikes *)
}

val default_config : config
(** [{degraded_strikes = 2; violating_strikes = 4}]. *)

type transition = {
  tr_id : int;
  tr_name : string;
  tr_time : float;
  tr_source : string;
  tr_detail : string;
  tr_from : state;
  tr_to : state;
}
(** One state change, as handed to the [on_transition] callback. *)

type t

val create :
  ?config:config ->
  ?alerts:out_channel ->
  ?on_transition:(transition -> unit) ->
  unit ->
  t
(** A fresh machine.  [alerts] (default: none) receives one NDJSON line
    per state transition; the channel stays owned by the caller and is
    flushed after every line, so a crashing run still leaves its alerts
    behind.  [on_transition] (default: none) is invoked synchronously on
    every transition, before the alert line is written — the daemon uses
    it to annotate its retention store ({!Tsdb}).
    @raise Invalid_argument unless [0 < degraded_strikes <
    violating_strikes]. *)

val watch : t -> id:int -> name:string -> unit
(** Start tracking a subject ([Healthy], zero strikes).  Re-watching an
    id resets it. *)

val unwatch : t -> id:int -> unit
(** Stop tracking a subject (its state and strikes are dropped; no alert
    is emitted).  Unwatching an untracked id is a no-op — the daemon
    calls this when a tenant leaves. *)

val observe :
  t ->
  id:int ->
  time:float ->
  ?source:string ->
  ?detail:string ->
  signal ->
  unit
(** Fold one evaluation into the subject's strikes.  [source] (default
    ["health"]) names the detector that produced the signal ("slo",
    "guard", "recorder"); [detail] is a free-text explanation.  Both are
    carried on the alert line if this observation causes a transition.
    Observing an unwatched id is a no-op (mirrors {!Guard.observe}). *)

val state : t -> id:int -> state
(** [Healthy] for unwatched ids. *)

val strikes : t -> id:int -> int

val states : t -> (int * string * state) list
(** Every watched subject, sorted by id. *)

val worst : t -> state
(** The most severe state over all watched subjects ([Healthy] when none
    are watched) — the run's overall pass/fail verdict. *)

val alerts_emitted : t -> int
(** State transitions so far (counted whether or not a sink is
    attached). *)
