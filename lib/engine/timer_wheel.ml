(* Timer-wheel event queue: a single-level wheel of 2^k tick slots over a
   near horizon, backed by the binary-heap {!Event_queue} for events beyond
   it.  Virtual times are quantized to integer ticks (floor division by the
   tick size, monotone in time); each slot holds a list sorted by
   (time, global push sequence), and pops compare the wheel head against
   the overflow head by the same key, so the pop order is exactly the
   (time, push-order) order the heap produced — a drop-in replacement with
   O(1) push and near-O(1) pop for the dense near-future traffic a network
   simulation generates.

   Invariants:
   - [base] is the tick of the last popped event; every queued wheel event
     has tick in [base, base + num_slots), so slot [tick land mask] is a
     bijection and one slot never mixes ticks.
   - Pushes beyond the horizon go to the overflow heap.  Overflow events
     are never migrated; they win the head-to-head comparison when their
     (time, seq) comes first, which preserves global FIFO-among-equals. *)

(* Slot lists use a bespoke Nil/Node variant rather than [option]:
   links are matched, never compared structurally, and no [Some] boxes
   churn on push/pop.  Nodes are deliberately NOT pooled — a fresh
   minor-heap node costs initializing stores only, while recycling one
   turns every field store into a caml_modify write barrier, which
   measures ~50% slower per event. *)
type 'a entry = {
  time : float;
  seq : int;
  payload : 'a;
  mutable next : 'a node;
}

and 'a node = Nil | Node of 'a entry

type 'a t = {
  tick : float;
  inv_tick : float; (* 1/tick: a multiply replaces a division per push *)
  num_slots : int;
  mask : int;
  slots : 'a node array;
  tails : 'a node array;
  levels : int array array; (* hierarchical slot-occupancy bitmaps *)
  num_levels : int;
  mutable base : int; (* tick of the last popped event *)
  (* Earliest occupied wheel tick, or -1 when unknown.  [Sim.run]'s
     horizon loop peeks before every pop; memoizing the head tick makes
     that peek/pop pair one bitmap descent instead of three (a slot
     never mixes ticks, so the cache stays valid until the head slot
     empties). *)
  mutable cached_tick : int;
  mutable wheel_count : int;
  mutable next_seq : int;
  overflow : (int * 'a) Event_queue.t; (* (global seq, payload) *)
}

(* Branch-free bit scan (see Sched.Bucket_queue for the derivation);
   a branchy scan mispredicts on every random slot index. *)
let debruijn32 = 0x077CB531

let ntz_table =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let ntz32 x = Array.unsafe_get ntz_table ((((x land -x) * debruijn32) lsr 27) land 31)

let create ?(tick = 0x1p-24) ?(slots_pow2 = 12) () =
  if tick <= 0. then invalid_arg "Timer_wheel.create: tick <= 0";
  if slots_pow2 < 5 || slots_pow2 > 24 then
    invalid_arg "Timer_wheel.create: slots_pow2 outside [5, 24]";
  let num_slots = 1 lsl slots_pow2 in
  let levels =
    let rec build acc size =
      let words = (size + 31) / 32 in
      let acc = Array.make words 0 :: acc in
      if words = 1 then acc else build acc words
    in
    Array.of_list (List.rev (build [] num_slots))
  in
  {
    tick;
    inv_tick = 1. /. tick;
    num_slots;
    mask = num_slots - 1;
    slots = Array.make num_slots Nil;
    tails = Array.make num_slots Nil;
    levels;
    num_levels = Array.length levels;
    base = 0;
    cached_tick = -1;
    wheel_count = 0;
    next_seq = 0;
    overflow = Event_queue.create ();
  }

let size t = t.wheel_count + Event_queue.size t.overflow

let is_empty t = size t = 0

(* Bitmap indices are always a slot index masked to [0, num_slots) (or a
   word index derived from one), so the unsafe accesses below cannot go
   out of bounds; the checks were measurable on the per-event path. *)
let rec set_bit t lvl idx =
  let w = idx lsr 5 and b = idx land 31 in
  let words = Array.unsafe_get t.levels lvl in
  let old = Array.unsafe_get words w in
  Array.unsafe_set words w (old lor (1 lsl b));
  if old = 0 && lvl + 1 < t.num_levels then set_bit t (lvl + 1) w

let rec clear_bit t lvl idx =
  let w = idx lsr 5 and b = idx land 31 in
  let words = Array.unsafe_get t.levels lvl in
  let nw = Array.unsafe_get words w land lnot (1 lsl b) in
  Array.unsafe_set words w nw;
  if nw = 0 && lvl + 1 < t.num_levels then clear_bit t (lvl + 1) w

(* First occupied slot at index >= [from], or -1: climb levels masking off
   bits behind the query point, then descend to the leaf. *)
let next_set t from =
  let rec down lvl idx =
    if lvl = 0 then idx
    else
      down (lvl - 1)
        ((idx lsl 5) lor ntz32 (Array.unsafe_get (Array.unsafe_get t.levels (lvl - 1)) idx))
  in
  let rec up lvl idx =
    if lvl >= t.num_levels then -1
    else
      let w = idx lsr 5 and b = idx land 31 in
      let words = Array.unsafe_get t.levels lvl in
      if w >= Array.length words then -1
      else
        let masked = Array.unsafe_get words w land ((-1) lsl b) in
        if masked <> 0 then down lvl ((w lsl 5) lor ntz32 masked)
        else up (lvl + 1) (w + 1)
  in
  up 0 from

(* Earliest occupied slot in tick order (circular from base), -1 if none. *)
let first_slot t =
  if t.wheel_count = 0 then -1
  else if t.cached_tick >= 0 then t.cached_tick land t.mask
  else begin
    let s_base = t.base land t.mask in
    let s = next_set t s_base in
    let s = if s >= 0 then s else next_set t 0 in
    t.cached_tick <- t.base + ((s - s_base) land t.mask);
    s
  end

(* Scaling by [inv_tick] is monotone in [time], so quantization can
   never invert cross-tick order (and is exact for power-of-two ticks). *)
let tick_of_time t time =
  let k = int_of_float (time *. t.inv_tick) in
  if k < t.base then t.base else k

let push t ~time payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let k = tick_of_time t time in
  if k - t.base >= t.num_slots then Event_queue.push t.overflow ~time (seq, payload)
  else begin
    let s = k land t.mask in
    let e = { time; seq; payload; next = Nil } in
    let n = Node e in
    (match Array.unsafe_get t.tails s with
    | Nil ->
      t.slots.(s) <- n;
      t.tails.(s) <- n;
      set_bit t 0 s
    | Node tl when tl.time < time || (tl.time = time && tl.seq < seq) ->
      (* Common case: monotone (time, seq) within a slot — append. *)
      tl.next <- n;
      t.tails.(s) <- n
    | Node _ ->
      (* Rare: an earlier float time mapping to the same tick arrived
         later.  Sorted insert keeps the slot list in (time, seq) order. *)
      let before a = a.time < time || (a.time = time && a.seq < seq) in
      let rec ins prev =
        match prev.next with
        | Node nx when before nx -> ins nx
        | rest ->
          e.next <- rest;
          prev.next <- n;
          (match rest with Nil -> t.tails.(s) <- n | Node _ -> ())
      in
      (match t.slots.(s) with
      | Node hd when not (before hd) ->
        e.next <- t.slots.(s);
        t.slots.(s) <- n
      | Node hd -> ins hd
      | Nil -> assert false));
    (* -1 means "unknown", not "none": after a pop empties the head slot
       the true minimum is some other occupied slot, so only a push into
       a verifiably empty wheel may claim the minimum outright. *)
    if t.wheel_count = 0 then t.cached_tick <- k
    else if t.cached_tick >= 0 && k < t.cached_tick then t.cached_tick <- k;
    t.wheel_count <- t.wheel_count + 1
  end

let pop_wheel t s =
  match Array.unsafe_get t.slots s with
  | Nil -> assert false
  | Node e ->
    t.slots.(s) <- e.next;
    (match e.next with
    | Nil ->
      t.tails.(s) <- Nil;
      clear_bit t 0 s;
      t.cached_tick <- -1
    | Node _ -> ());
    t.wheel_count <- t.wheel_count - 1;
    let s_base = t.base land t.mask in
    t.base <- t.base + ((s - s_base) land t.mask);
    (e.time, e.payload)

let pop t =
  let s = first_slot t in
  if s < 0 then
    match Event_queue.pop t.overflow with
    | None -> None
    | Some (time, (_, payload)) ->
      t.base <- tick_of_time t time;
      Some (time, payload)
  else
    match (t.slots.(s), Event_queue.peek t.overflow) with
    | Node e, Some (ot, (oseq, _))
      when ot < e.time || (ot = e.time && oseq < e.seq) -> (
      match Event_queue.pop t.overflow with
      | Some (time, (_, payload)) ->
        t.base <- tick_of_time t time;
        Some (time, payload)
      | None -> assert false)
    | Node _, _ -> Some (pop_wheel t s)
    | Nil, _ -> assert false

(* [pop] gated on the head's time: one head lookup decides both "is it
   due?" and "remove it", where a peek-then-pop pair would do the slot
   descent and overflow comparison twice per event. *)
let pop_before t ~horizon =
  let s = first_slot t in
  if s < 0 then
    match Event_queue.peek t.overflow with
    | Some (time, _) when time <= horizon -> (
      match Event_queue.pop t.overflow with
      | Some (time, (_, payload)) ->
        t.base <- tick_of_time t time;
        Some (time, payload)
      | None -> assert false)
    | Some _ | None -> None
  else
    match (t.slots.(s), Event_queue.peek t.overflow) with
    | Node e, Some (ot, (oseq, _))
      when ot < e.time || (ot = e.time && oseq < e.seq) ->
      if ot > horizon then None
      else begin
        match Event_queue.pop t.overflow with
        | Some (time, (_, payload)) ->
          t.base <- tick_of_time t time;
          Some (time, payload)
        | None -> assert false
      end
    | Node e, _ -> if e.time > horizon then None else Some (pop_wheel t s)
    | Nil, _ -> assert false

let peek_time t =
  let s = first_slot t in
  if s < 0 then Event_queue.peek_time t.overflow
  else
    match (t.slots.(s), Event_queue.peek t.overflow) with
    | Node e, Some (ot, (oseq, _))
      when ot < e.time || (ot = e.time && oseq < e.seq) ->
      Some ot
    | Node e, _ -> Some e.time
    | Nil, _ -> assert false

let clear t =
  Array.fill t.slots 0 t.num_slots Nil;
  Array.fill t.tails 0 t.num_slots Nil;
  Array.iter (fun words -> Array.fill words 0 (Array.length words) 0) t.levels;
  t.wheel_count <- 0;
  t.cached_tick <- -1;
  Event_queue.clear t.overflow
