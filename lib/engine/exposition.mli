(** Prometheus text exposition of a {!Telemetry} registry.

    The bridge between the repro's dotted metric names and the flat
    name-plus-labels model scrapers expect.  A dotted name is mapped by
    one rule: {e a purely numeric path component becomes a label keyed by
    the component before it}.  So

    {v net.port.3.enqueue   ->  qvisor_net_port_enqueue_total{port="3"}
       net.tenant.0.drop    ->  qvisor_net_tenant_drop_total{tenant="pfabric"}
       preprocessor.rank_error -> qvisor_preprocessor_rank_error  (summary) v}

    where the [tenant] label is resolved through the optional
    [tenant_names] map.  Counters (and per-series totals) get the
    conventional [_total] suffix; histograms render as Prometheus
    {e summaries}: one [quantile] sample per tracked sketch
    (0.5/0.9/0.99) plus [_sum]/[_count].

    Names are sanitized, never trusted: any character outside
    [[a-zA-Z0-9_:]] becomes [_], and a leading digit is prefixed with
    [_].  Label values are escaped per the format (backslash,
    double-quote, newline).  {!family} rejects (raises) names that are still invalid after that —
    the render side can only emit lines the strict {!parse} accepts.

    {!parse}/{!parse_line} implement a deliberately strict reader used by
    the tests and [qvisor-cli metrics --validate]: every sample must
    belong to a previously declared [# TYPE] family, label syntax is
    exact (no stray spaces), and {!render_line} is canonical, so
    [render_line (parse_line l)] round-trips every line this module
    emits. *)

type mtype = Counter | Gauge | Summary

val mtype_to_string : mtype -> string
(** ["counter"], ["gauge"], ["summary"]. *)

type sample = {
  sample_name : string;  (** full sample name, e.g. [foo_sum] *)
  labels : (string * string) list;  (** raw (unescaped) label pairs *)
  value : float;
}

type family = {
  family_name : string;
  help : string;
  mtype : mtype;
  samples : sample list;
}

val sanitize_name : string -> string
(** Map an arbitrary string to a valid Prometheus metric-name fragment:
    invalid characters become [_], a leading digit gains a [_] prefix,
    and the empty string becomes ["_"]. *)

val escape_label_value : string -> string
(** Escape backslash, double-quote and newline for use inside a
    [label="value"] pair. *)

val string_of_value : float -> string
(** Canonical sample-value rendering: ["NaN"], ["+Inf"], ["-Inf"],
    integers without a fractional part, everything else [%.17g] (enough
    digits to round-trip through [float_of_string]). *)

val family :
  name:string -> help:string -> mtype -> sample list -> family
(** Build a family after validating [name] and every sample name against
    the metric-name grammar ([[a-zA-Z_:][a-zA-Z0-9_:]*]) and every label
    name against [[a-zA-Z_][a-zA-Z0-9_]*].  Use {!sanitize_name} first
    when the name comes from outside.
    @raise Invalid_argument on any invalid identifier. *)

val families_of_registry :
  ?namespace:string ->
  ?tenant_names:(int * string) list ->
  Telemetry.t ->
  family list
(** Every metric of the registry as exposition families, sorted by family
    name.  [namespace] (default ["qvisor"]) prefixes every family;
    [tenant_names] maps the numeric component after a [tenant] path
    element to a human name.  Counters and series totals become
    [counter] families ([_total] suffix), gauges become [gauge] families,
    histograms become [summary] families.  Dotted names that collapse to
    the same family (e.g. [net.port.0.drop] / [net.port.1.drop]) merge
    into one family with one labelled sample each.  The disabled registry
    yields [[]]. *)

val render_families : family list -> string
(** The families as exposition text: one [# HELP] and [# TYPE] line then
    the samples of each family, preceded by a single
    ["# qvisor text exposition"] comment header and terminated by an
    [# EOF] line (so even an empty list renders a parseable, non-empty,
    visibly-complete document — a truncated scrape is detectable). *)

val scrape_timestamp_family : ?namespace:string -> ?now:(unit -> float) -> unit -> family
(** A one-sample gauge family [<namespace>_scrape_timestamp_seconds]
    carrying [now ()] (default [Unix.gettimeofday]) clamped to be
    monotonically non-decreasing across the whole process, so consecutive
    scrapes can be ordered even through wall-clock steps. *)

val render :
  ?namespace:string ->
  ?tenant_names:(int * string) list ->
  ?extra:family list ->
  ?now:(unit -> float) ->
  Telemetry.t ->
  string
(** [render_families (families_of_registry tel @ extra @ [stamp])], with
    [extra] families (SLO objectives, health states…) appended after the
    registry families and a {!scrape_timestamp_family} (driven by [now])
    always last. *)

(** {1 Strict parser (tests / [--validate])} *)

type line =
  | Help of { name : string; text : string }
  | Type of { name : string; mtype : mtype }
  | Sample of sample
  | Comment of string  (** text after [#], verbatim *)
  | Blank

val parse_line : string -> (line, string) result
(** Parse one line (without its newline).  [Error] carries a
    human-readable reason. *)

val render_line : line -> string
(** Canonical rendering; inverse of {!parse_line} on every line emitted
    by {!render_families}. *)

val parse : string -> (line list, string) result
(** Parse a whole document and enforce family discipline: every [Sample]
    must name a family declared by a preceding [# TYPE] (directly, or
    via its [_sum]/[_count] suffix for summaries), [quantile] labels may
    only appear on summary samples, duplicate [# TYPE] {e and} duplicate
    [# HELP] declarations are rejected (a repeated family means two
    renders were concatenated), and nothing may follow an [# EOF]
    terminator.  [Error] is prefixed with the 1-based offending line
    number. *)
