(** A binary min-heap of timestamped events.

    Ties in time are broken by insertion order (FIFO), which makes
    simulations deterministic regardless of heap internals. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event to fire at [time]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, FIFO among equal times. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val peek : 'a t -> (float * 'a) option
(** The earliest event without removing it. *)

val clear : 'a t -> unit
