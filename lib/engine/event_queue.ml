(* Array-backed binary min-heap ordered by (time, sequence number).  The
   sequence number makes equal-time pops FIFO and the whole simulation
   deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let size t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t ~time payload =
  let e = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then begin
    let ncap = max 16 (2 * Array.length t.heap) in
    let a = Array.make ncap e in
    Array.blit t.heap 0 a 0 t.size;
    t.heap <- a
  end;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then
          smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!smallest) in
          t.heap.(!smallest) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let peek t =
  if t.size = 0 then None else Some (t.heap.(0).time, t.heap.(0).payload)

let clear t =
  t.size <- 0;
  t.heap <- [||]
