let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Claim items from a shared counter; write each outcome into the slot
   matching its submission index so fan-in preserves input order. *)
let run_pool ~jobs f (items : 'a array) : ('b, exn) result array =
  let n = Array.length items in
  let results = Array.make n None in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then
      Array.iteri
        (fun i item ->
          results.(i) <-
            (match f item with
            | v -> Some (Ok v)
            | exception e -> Some (Error e)))
        items
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            results.(i) <-
              (match f items.(i) with
              | v -> Some (Ok v)
              | exception e -> Some (Error e))
        done
      in
      let domains =
        Array.init (jobs - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      Array.iter Domain.join domains
    end;
    Array.map
      (function
        | Some r -> r
        | None -> assert false)
      results
  end

let try_map ?jobs f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  Array.to_list (run_pool ~jobs f (Array.of_list items))

let map ?jobs f items =
  let results = try_map ?jobs f items in
  List.map
    (function
      | Ok v -> v
      | Error e -> raise e)
    results
