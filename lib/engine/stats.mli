(** Online summary statistics.

    [t] accumulates a stream of float observations with Welford's algorithm
    for numerically stable mean/variance, and optionally retains all samples
    for exact quantiles (the packet-level experiments produce at most a few
    hundred thousand flow completion times, which fit comfortably). *)

type t

val create : ?keep_samples:bool -> unit -> t
(** [keep_samples] defaults to [true]; set it to [false] for unbounded
    streams where only moments are needed. *)

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val sum : t -> float

val quantile : t -> float -> float
(** [quantile t q] is the exact [q]-quantile (nearest-rank with linear
    interpolation) of the retained samples.
    @raise Invalid_argument if [q] is outside [\[0, 1\]] or samples were
    not kept.  Returns [nan] when empty. *)

val merge : t -> t -> t
(** Combine two summaries (samples are concatenated when both kept). *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src] into [into] in place: samples are
    replayed when [src] kept them, otherwise the moments are combined
    pairwise (Chan et al.). *)

val pp : Format.formatter -> t -> unit
(** One-line [count/mean/p50/p99/max] rendering for logs. *)
