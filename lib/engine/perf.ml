let word_bytes = float_of_int (Sys.word_size / 8)

let allocated_bytes () =
  let minor, promoted, major = Gc.counters () in
  (minor +. major -. promoted) *. word_bytes

(* [Gc.counters] reads the allocation counters *before* allocating its
   result tuple, so the delta of two consecutive probes is exactly the
   first probe's own footprint.  Calibrate once (minimum of a few runs,
   in case a collection lands between two probes). *)
let probe_overhead_bytes =
  let sample () =
    let a0 = allocated_bytes () in
    let a1 = allocated_bytes () in
    a1 -. a0
  in
  ignore (sample ());
  let s = List.init 5 (fun _ -> sample ()) in
  Float.max 0. (List.fold_left Float.min infinity s)

let write_atomic path f =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  match f oc with
  | () ->
    close_out oc;
    Sys.rename tmp path
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(* ------------------------------------------------------------------ *)
(* GC telemetry                                                       *)
(* ------------------------------------------------------------------ *)

module Pause = struct
  type t = {
    cursor : Runtime_events.cursor;
    callbacks : Runtime_events.Callbacks.t;
    max_ns : int64 ref;
  }

  let start () =
    try
      (* Keep the runtime ring file out of the working directory unless
         the user already chose a spot. *)
      (match Sys.getenv_opt "OCAML_RUNTIME_EVENTS_DIR" with
      | Some _ -> ()
      | None ->
        Unix.putenv "OCAML_RUNTIME_EVENTS_DIR" (Filename.get_temp_dir_name ()));
      Runtime_events.start ();
      let cursor = Runtime_events.create_cursor None in
      let starts :
          ( int * Runtime_events.runtime_phase,
            Runtime_events.Timestamp.t )
          Hashtbl.t =
        Hashtbl.create 32
      in
      let max_ns = ref 0L in
      let runtime_begin ring ts phase = Hashtbl.replace starts (ring, phase) ts in
      let runtime_end ring ts phase =
        match Hashtbl.find_opt starts (ring, phase) with
        | None -> ()
        | Some t0 ->
          Hashtbl.remove starts (ring, phase);
          let d =
            Int64.sub
              (Runtime_events.Timestamp.to_int64 ts)
              (Runtime_events.Timestamp.to_int64 t0)
          in
          if Int64.compare d !max_ns > 0 then max_ns := d
      in
      let callbacks =
        Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ()
      in
      Some { cursor; callbacks; max_ns }
    with _ -> None

  let poll t =
    try ignore (Runtime_events.read_poll t.cursor t.callbacks None)
    with _ -> ()

  let max_pause_seconds t = Int64.to_float !(t.max_ns) *. 1e-9
end

let sample_gc ?pause tel =
  if Telemetry.is_enabled tel then begin
    let s = Gc.quick_stat () in
    let g name v = Telemetry.Gauge.set (Telemetry.gauge tel name) v in
    g "gc.minor_collections" (float_of_int s.Gc.minor_collections);
    g "gc.major_collections" (float_of_int s.Gc.major_collections);
    g "gc.compactions" (float_of_int s.Gc.compactions);
    g "gc.heap_words" (float_of_int s.Gc.heap_words);
    g "gc.top_heap_words" (float_of_int s.Gc.top_heap_words);
    g "gc.minor_words" s.Gc.minor_words;
    g "gc.promoted_words" s.Gc.promoted_words;
    g "gc.major_words" s.Gc.major_words;
    g "gc.allocated_bytes"
      ((s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words)
      *. word_bytes);
    match pause with
    | None -> ()
    | Some p ->
      Pause.poll p;
      g "gc.max_pause_seconds" (Pause.max_pause_seconds p)
  end

(* ------------------------------------------------------------------ *)
(* Per-stage throughput meters                                        *)
(* ------------------------------------------------------------------ *)

module Meter = struct
  type t = {
    m_name : string;
    m_enabled : bool;
    m_mask : int;
    mutable m_ops : int;
    (* Allocation counter (bytes, as an int) captured by [before] on a
       sampled event; [min_int] when no sample is in flight.  Stored as
       an int so the steady-state bracket never allocates a float box. *)
    mutable m_pending : int;
    mutable m_sampled : int;
    mutable m_sampled_bytes : int;
  }

  let create ?(sample = 64) name =
    if sample <= 0 || sample land (sample - 1) <> 0 then
      invalid_arg "Perf.Meter.create: sample must be a positive power of two";
    {
      m_name = name;
      m_enabled = true;
      m_mask = sample - 1;
      m_ops = 0;
      m_pending = min_int;
      m_sampled = 0;
      m_sampled_bytes = 0;
    }

  let disabled =
    {
      m_name = "disabled";
      m_enabled = false;
      m_mask = 0;
      m_ops = 0;
      m_pending = min_int;
      m_sampled = 0;
      m_sampled_bytes = 0;
    }

  let name t = t.m_name

  let before t =
    if t.m_enabled then begin
      t.m_ops <- t.m_ops + 1;
      if t.m_ops land t.m_mask = 0 then
        t.m_pending <- int_of_float (allocated_bytes ())
    end

  let after t =
    if t.m_enabled && t.m_pending <> min_int then begin
      let b = int_of_float (allocated_bytes ()) - t.m_pending in
      t.m_pending <- min_int;
      t.m_sampled <- t.m_sampled + 1;
      t.m_sampled_bytes <-
        t.m_sampled_bytes + max 0 (b - int_of_float probe_overhead_bytes)
    end

  let ops t = t.m_ops

  let alloc_bytes_per_op t =
    if t.m_sampled = 0 then Float.nan
    else float_of_int t.m_sampled_bytes /. float_of_int t.m_sampled
end

module Meters = struct
  type t = {
    ms_enabled : bool;
    ms_enqueue : Meter.t;
    ms_dequeue : Meter.t;
    ms_preprocess : Meter.t;
    ms_recorder : Meter.t;
    ms_slo : Meter.t;
    mutable ms_last_wall : float;
    ms_last_ops : int array;
  }

  let create () =
    {
      ms_enabled = true;
      ms_enqueue = Meter.create "enqueue";
      ms_dequeue = Meter.create "dequeue";
      ms_preprocess = Meter.create "preprocess";
      ms_recorder = Meter.create "recorder";
      ms_slo = Meter.create "slo_audit";
      ms_last_wall = Unix.gettimeofday ();
      ms_last_ops = Array.make 5 0;
    }

  let disabled =
    {
      ms_enabled = false;
      ms_enqueue = Meter.disabled;
      ms_dequeue = Meter.disabled;
      ms_preprocess = Meter.disabled;
      ms_recorder = Meter.disabled;
      ms_slo = Meter.disabled;
      ms_last_wall = 0.;
      ms_last_ops = Array.make 5 0;
    }

  let is_enabled t = t.ms_enabled
  let enqueue t = t.ms_enqueue
  let dequeue t = t.ms_dequeue
  let preprocess t = t.ms_preprocess
  let recorder t = t.ms_recorder
  let slo_audit t = t.ms_slo

  let all t =
    [ t.ms_enqueue; t.ms_dequeue; t.ms_preprocess; t.ms_recorder; t.ms_slo ]

  let publish t tel =
    if t.ms_enabled && Telemetry.is_enabled tel then begin
      let now = Unix.gettimeofday () in
      let dt = now -. t.ms_last_wall in
      List.iteri
        (fun i m ->
          let ops = Meter.ops m in
          let window = ops - t.ms_last_ops.(i) in
          t.ms_last_ops.(i) <- ops;
          let stage = Meter.name m in
          Telemetry.Counter.add
            (Telemetry.counter tel
               (Printf.sprintf "perf.stage.%s.events" stage))
            window;
          if window > 0 && dt > 0. then
            Telemetry.Gauge.set
              (Telemetry.gauge tel
                 (Printf.sprintf "perf.stage.%s.events_per_sec" stage))
              (float_of_int window /. dt);
          let bpe = Meter.alloc_bytes_per_op m in
          if Float.is_finite bpe then
            Telemetry.Gauge.set
              (Telemetry.gauge tel
                 (Printf.sprintf "perf.stage.%s.alloc_bytes_per_event" stage))
              bpe)
        (all t);
      t.ms_last_wall <- now
    end
end

(* ------------------------------------------------------------------ *)
(* Micro-benchmark harness                                            *)
(* ------------------------------------------------------------------ *)

module Summary = struct
  type t = {
    s_min : float;
    s_median : float;
    s_mad : float;
    s_samples : float list;
  }

  let median xs =
    match xs with
    | [] -> Float.nan
    | _ ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      if n land 1 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

  let of_samples samples =
    let m = median samples in
    let mad = median (List.map (fun x -> Float.abs (x -. m)) samples) in
    let mn =
      match samples with
      | [] -> Float.nan
      | x :: r -> List.fold_left Float.min x r
    in
    { s_min = mn; s_median = m; s_mad = mad; s_samples = samples }
end

module Bench = struct
  type entry = {
    b_name : string;
    b_iters : int;
    b_trials : int;
    b_ns_per_op : Summary.t;
    b_alloc_per_op : Summary.t;
  }

  let max_iters = 1 lsl 24

  let run ?(trials = 7) ?(min_time_s = 0.05) ~name f =
    if trials <= 0 then invalid_arg "Perf.Bench.run: trials must be positive";
    if not (min_time_s > 0.) then
      invalid_arg "Perf.Bench.run: min_time_s must be positive";
    (* Grow the per-trial iteration count until one trial is long enough
       for the wall clock to resolve; the first rounds double as warm-up. *)
    let rec calibrate iters =
      let t0 = Unix.gettimeofday () in
      f iters;
      let dt = Unix.gettimeofday () -. t0 in
      if dt >= min_time_s || iters >= max_iters then iters
      else
        let grow =
          if dt <= 0. then float_of_int iters *. 8.
          else
            Float.min
              (float_of_int iters *. 8.)
              (float_of_int iters *. min_time_s *. 1.25 /. dt)
        in
        calibrate (min max_iters (max (iters + 1) (int_of_float grow)))
    in
    let iters = calibrate 64 in
    let ns = ref [] and allocs = ref [] in
    for _ = 1 to trials do
      let a0 = allocated_bytes () in
      let t0 = Unix.gettimeofday () in
      f iters;
      let t1 = Unix.gettimeofday () in
      let a1 = allocated_bytes () in
      ns := (1e9 *. (t1 -. t0) /. float_of_int iters) :: !ns;
      allocs :=
        Float.max 0. (a1 -. a0 -. probe_overhead_bytes) /. float_of_int iters
        :: !allocs
    done;
    {
      b_name = name;
      b_iters = iters;
      b_trials = trials;
      b_ns_per_op = Summary.of_samples (List.rev !ns);
      b_alloc_per_op = Summary.of_samples (List.rev !allocs);
    }

  let schema = "qvisor-bench-engine/1"
  let num v = if Float.is_finite v then Json.Number v else Json.Null

  let summary_to_json (s : Summary.t) =
    Json.Obj
      [
        ("min", num s.Summary.s_min);
        ("median", num s.Summary.s_median);
        ("mad", num s.Summary.s_mad);
        ("samples", Json.List (List.map num s.Summary.s_samples));
      ]

  let entry_to_json e =
    Json.Obj
      [
        ("name", Json.String e.b_name);
        ("iters", Json.Number (float_of_int e.b_iters));
        ("trials", Json.Number (float_of_int e.b_trials));
        ("ns_per_op", summary_to_json e.b_ns_per_op);
        ("alloc_bytes_per_op", summary_to_json e.b_alloc_per_op);
      ]

  let report_to_json ~mode entries =
    Json.Obj
      [
        ("schema", Json.String schema);
        ("mode", Json.String mode);
        ("benchmarks", Json.List (List.map entry_to_json entries));
      ]

  let ( let* ) = Result.bind

  let field name j =
    Option.to_result
      ~none:(Printf.sprintf "missing field %S" name)
      (Json.member name j)

  let fnum = function
    | Json.Null -> Ok Float.nan
    | j -> Option.to_result ~none:"expected a number" (Json.to_float j)

  let fint j = Option.to_result ~none:"expected an integer" (Json.to_int j)

  let summary_of_json j =
    let* mn = field "min" j in
    let* mn = fnum mn in
    let* med = field "median" j in
    let* med = fnum med in
    let* mad = field "mad" j in
    let* mad = fnum mad in
    let* samples = field "samples" j in
    let* samples =
      match Json.to_list samples with
      | None -> Error "samples: expected a list"
      | Some l ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* v = fnum x in
            Ok (v :: acc))
          (Ok []) l
        |> Result.map List.rev
    in
    Ok
      Summary.
        { s_min = mn; s_median = med; s_mad = mad; s_samples = samples }

  let entry_of_json j =
    let* name = field "name" j in
    let* name =
      Option.to_result ~none:"name: expected a string" (Json.to_str name)
    in
    let ctx e = Printf.sprintf "benchmark %S: %s" name e in
    let* iters = field "iters" j |> Result.map_error ctx in
    let* iters = fint iters |> Result.map_error ctx in
    let* trials = field "trials" j |> Result.map_error ctx in
    let* trials = fint trials |> Result.map_error ctx in
    let* ns = field "ns_per_op" j |> Result.map_error ctx in
    let* ns = summary_of_json ns |> Result.map_error ctx in
    let* alloc = field "alloc_bytes_per_op" j |> Result.map_error ctx in
    let* alloc = summary_of_json alloc |> Result.map_error ctx in
    Ok
      {
        b_name = name;
        b_iters = iters;
        b_trials = trials;
        b_ns_per_op = ns;
        b_alloc_per_op = alloc;
      }

  let report_of_json j =
    match Json.member "schema" j with
    | Some (Json.String s) when s = schema -> (
      let* bs = field "benchmarks" j in
      match Json.to_list bs with
      | None -> Error "benchmarks: expected a list"
      | Some l ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* e = entry_of_json x in
            Ok (e :: acc))
          (Ok []) l
        |> Result.map List.rev)
    | Some (Json.String s) ->
      Error (Printf.sprintf "unsupported schema %S (expected %S)" s schema)
    | Some _ | None -> Error (Printf.sprintf "missing %S field" "schema")

  let read_report path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> Error e
    | raw -> (
      match Json.of_string raw with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j ->
        Result.map_error (Printf.sprintf "%s: %s" path) (report_of_json j))
end

(* ------------------------------------------------------------------ *)
(* Statistical comparator                                             *)
(* ------------------------------------------------------------------ *)

module Diff = struct
  type verdict =
    | Regression
    | Improvement
    | Within_noise
    | Missing_baseline
    | Missing_current
    | Incomparable

  type row = {
    r_metric : string;
    r_old : float;
    r_new : float;
    r_change : float;
    r_noise : float;
    r_verdict : verdict;
  }

  type report = { d_threshold : float; d_noise_k : float; d_rows : row list }

  let verdict_name = function
    | Regression -> "regression"
    | Improvement -> "improvement"
    | Within_noise -> "within-noise"
    | Missing_baseline -> "missing-in-baseline"
    | Missing_current -> "missing-in-current"
    | Incomparable -> "incomparable"

  let dims =
    [
      ("ns/op", fun (e : Bench.entry) -> e.Bench.b_ns_per_op);
      ("alloc B/op", fun (e : Bench.entry) -> e.Bench.b_alloc_per_op);
    ]

  let compare ?(threshold = 0.15) ?(noise_k = 3.) ~baseline ~current () =
    if not (threshold > 0.) then
      invalid_arg "Perf.Diff.compare: threshold must be positive";
    if not (noise_k >= 0.) then
      invalid_arg "Perf.Diff.compare: noise_k must be non-negative";
    let find name entries =
      List.find_opt (fun (e : Bench.entry) -> e.Bench.b_name = name) entries
    in
    let names =
      let base = List.map (fun (e : Bench.entry) -> e.Bench.b_name) baseline in
      base
      @ List.filter
          (fun n -> not (List.mem n base))
          (List.map (fun (e : Bench.entry) -> e.Bench.b_name) current)
    in
    let rows =
      List.concat_map
        (fun nm ->
          List.map
            (fun (dim, get) ->
              let metric = nm ^ " " ^ dim in
              match (find nm baseline, find nm current) with
              | None, None -> assert false
              | Some b, None ->
                {
                  r_metric = metric;
                  r_old = (get b).Summary.s_median;
                  r_new = Float.nan;
                  r_change = Float.nan;
                  r_noise = 0.;
                  r_verdict = Missing_current;
                }
              | None, Some c ->
                {
                  r_metric = metric;
                  r_old = Float.nan;
                  r_new = (get c).Summary.s_median;
                  r_change = Float.nan;
                  r_noise = 0.;
                  r_verdict = Missing_baseline;
                }
              | Some b, Some c ->
                let sb = get b and sc = get c in
                let old_m = sb.Summary.s_median
                and new_m = sc.Summary.s_median in
                let noise = noise_k *. (sb.Summary.s_mad +. sc.Summary.s_mad) in
                if
                  (not (Float.is_finite old_m))
                  || old_m <= 0.
                  || not (Float.is_finite new_m)
                then
                  {
                    r_metric = metric;
                    r_old = old_m;
                    r_new = new_m;
                    r_change = Float.nan;
                    r_noise = noise;
                    r_verdict = Incomparable;
                  }
                else
                  let delta = new_m -. old_m in
                  let rel = delta /. old_m in
                  let outside = Float.abs delta > noise in
                  let verdict =
                    if rel >= threshold && outside then Regression
                    else if rel <= -.threshold && outside then Improvement
                    else Within_noise
                  in
                  {
                    r_metric = metric;
                    r_old = old_m;
                    r_new = new_m;
                    r_change = rel;
                    r_noise = noise;
                    r_verdict = verdict;
                  })
            dims)
        names
    in
    { d_threshold = threshold; d_noise_k = noise_k; d_rows = rows }

  let regressions r =
    List.length (List.filter (fun row -> row.r_verdict = Regression) r.d_rows)

  let report_to_json r =
    let num v = if Float.is_finite v then Json.Number v else Json.Null in
    Json.Obj
      [
        ("schema", Json.String "qvisor-bench-diff/1");
        ("threshold", Json.Number r.d_threshold);
        ("noise_k", Json.Number r.d_noise_k);
        ("regressions", Json.Number (float_of_int (regressions r)));
        ( "verdict",
          Json.String (if regressions r > 0 then "regression" else "pass") );
        ( "rows",
          Json.List
            (List.map
               (fun row ->
                 Json.Obj
                   [
                     ("metric", Json.String row.r_metric);
                     ("old_median", num row.r_old);
                     ("new_median", num row.r_new);
                     ("rel_change", num row.r_change);
                     ("noise_band", num row.r_noise);
                     ("verdict", Json.String (verdict_name row.r_verdict));
                   ])
               r.d_rows) );
      ]

  let pp_report ppf r =
    let rows =
      List.stable_sort
        (fun a b ->
          match (Float.is_finite a.r_change, Float.is_finite b.r_change) with
          | true, true -> Float.compare b.r_change a.r_change
          | true, false -> -1
          | false, true -> 1
          | false, false -> 0)
        r.d_rows
    in
    let cell v = if Float.is_finite v then Printf.sprintf "%.2f" v else "-" in
    let change row =
      if Float.is_finite row.r_change then
        Printf.sprintf "%+.1f%%" (100. *. row.r_change)
      else "-"
    in
    Format.fprintf ppf "@[<v>%-42s %12s %12s %8s  %s@," "metric" "old median"
      "new median" "change" "verdict";
    List.iter
      (fun row ->
        Format.fprintf ppf "%-42s %12s %12s %8s  %s@," row.r_metric
          (cell row.r_old) (cell row.r_new) (change row)
          (verdict_name row.r_verdict))
      rows;
    Format.fprintf ppf
      "%d metric(s), %d regression(s); threshold %.0f%%, noise band %.1f x MAD@]"
      (List.length r.d_rows) (regressions r)
      (100. *. r.d_threshold)
      r.d_noise_k
end
