type entry = {
  begins : bool;
  name : string;
  ts : float;
  tid : int;
  minor_w : float;
  promoted_w : float;
  major_w : float;
}

(* Markers are stored as a structure of arrays — names and packed
   tid/begins words in ordinary arrays, the four per-marker floats
   (ts, minor, promoted, major words) unboxed in one [floatarray].
   The obvious [entry Vec.t] held four boxed floats plus a record
   header per marker: a million-span profile became ~10M small
   long-lived major-heap objects, enough heap fragmentation to abort
   OCaml 5.1 with "allocation failure during minor GC" once a
   simulation started allocating on top.  The flat layout keeps the
   same profile in three large arrays (and is smaller and faster). *)
type t = {
  enabled : bool;
  mutable names : string array;
  mutable meta : int array;  (* (tid lsl 1) lor (begins as bit 0) *)
  mutable data : floatarray;  (* 4 slots per marker *)
  mutable len : int;  (* markers recorded *)
  mutable closed : int;
}

let word_bytes = float_of_int (Sys.word_size / 8)

let create () =
  {
    enabled = true;
    names = [||];
    meta = [||];
    data = Float.Array.create 0;
    len = 0;
    closed = 0;
  }

let disabled = { (create ()) with enabled = false }

let is_enabled t = t.enabled

let ensure t extra =
  let need = t.len + extra in
  let cap = Array.length t.names in
  if need > cap then begin
    let cap' = max need (max 256 (2 * cap)) in
    let names = Array.make cap' "" in
    Array.blit t.names 0 names 0 t.len;
    t.names <- names;
    let meta = Array.make cap' 0 in
    Array.blit t.meta 0 meta 0 t.len;
    t.meta <- meta;
    let data = Float.Array.create (4 * cap') in
    Float.Array.blit t.data 0 data 0 (4 * t.len);
    t.data <- data
  end

let push t ~begins name =
  ensure t 1;
  (* Counters are read before anything else is allocated for this
     marker, so the end marker's own footprint stays outside its span;
     the begin marker's counters tuple (and the [Fun.protect] closure)
     land inside — a small constant self-allocation per span. *)
  let minor_w, promoted_w, major_w = Gc.counters () in
  let i = t.len in
  let d = 4 * i in
  t.names.(i) <- name;
  t.meta.(i) <- (if begins then 1 else 0);
  Float.Array.set t.data d (Unix.gettimeofday ());
  Float.Array.set t.data (d + 1) minor_w;
  Float.Array.set t.data (d + 2) promoted_w;
  Float.Array.set t.data (d + 3) major_w;
  t.len <- i + 1

let get t i : entry =
  let d = 4 * i in
  {
    begins = t.meta.(i) land 1 = 1;
    name = t.names.(i);
    tid = t.meta.(i) asr 1;
    ts = Float.Array.get t.data d;
    minor_w = Float.Array.get t.data (d + 1);
    promoted_w = Float.Array.get t.data (d + 2);
    major_w = Float.Array.get t.data (d + 3);
  }

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let alloc_bytes_between (b : entry) (e : entry) =
  (e.minor_w -. b.minor_w +. (e.major_w -. b.major_w)
  -. (e.promoted_w -. b.promoted_w))
  *. word_bytes

let with_ t ~name f =
  if not t.enabled then f ()
  else begin
    push t ~begins:true name;
    Fun.protect
      ~finally:(fun () ->
        push t ~begins:false name;
        t.closed <- t.closed + 1)
      f
  end

let entries t = List.init t.len (get t)

let span_count t = t.closed

let merge_into ~into ?tid src =
  if into.enabled && src.enabled then begin
    ensure into src.len;
    let base = into.len in
    for i = 0 to src.len - 1 do
      into.names.(base + i) <- src.names.(i);
      into.meta.(base + i) <-
        (match tid with
        | None -> src.meta.(i)
        | Some tid -> (tid lsl 1) lor (src.meta.(i) land 1))
    done;
    Float.Array.blit src.data 0 into.data (4 * base) (4 * src.len);
    into.len <- base + src.len;
    into.closed <- into.closed + src.closed
  end

(* ------------------------------------------------------------------ *)
(* Aggregation                                                        *)
(* ------------------------------------------------------------------ *)

type total = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  alloc_b : float;
  self_alloc_b : float;
}

type frame = {
  f_entry : entry;
  mutable f_child : float;
  mutable f_child_alloc : float;
}

let totals t =
  let agg : (string, total) Hashtbl.t = Hashtbl.create 16 in
  (* Balanced pairs are guaranteed per tid (with_ emits both markers and
     merge copies whole profiles), so a per-tid stack replay recovers the
     nesting. *)
  let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  iter
    (fun e ->
      let stack = stack_of e.tid in
      if e.begins then
        stack := { f_entry = e; f_child = 0.; f_child_alloc = 0. } :: !stack
      else begin
        match !stack with
        | [] -> () (* unbalanced input: ignore the stray end marker *)
        | f :: rest ->
          stack := rest;
          let dur = e.ts -. f.f_entry.ts in
          let alloc = alloc_bytes_between f.f_entry e in
          (match rest with
          | parent :: _ ->
            parent.f_child <- parent.f_child +. dur;
            parent.f_child_alloc <- parent.f_child_alloc +. alloc
          | [] -> ());
          let prev =
            Option.value
              (Hashtbl.find_opt agg f.f_entry.name)
              ~default:
                {
                  name = f.f_entry.name;
                  count = 0;
                  total_s = 0.;
                  self_s = 0.;
                  alloc_b = 0.;
                  self_alloc_b = 0.;
                }
          in
          Hashtbl.replace agg f.f_entry.name
            {
              prev with
              count = prev.count + 1;
              total_s = prev.total_s +. dur;
              self_s = prev.self_s +. Float.max 0. (dur -. f.f_child);
              alloc_b = prev.alloc_b +. alloc;
              self_alloc_b =
                prev.self_alloc_b +. Float.max 0. (alloc -. f.f_child_alloc);
            }
      end)
    t;
  Hashtbl.fold (fun _ v acc -> v :: acc) agg []
  |> List.sort (fun a b -> compare a.name b.name)

let pp_table ppf t =
  let rows =
    totals t
    |> List.sort (fun a b ->
           match compare b.total_s a.total_s with
           | 0 -> compare a.name b.name
           | c -> c)
  in
  Format.fprintf ppf "@[<v>%-36s %8s %12s %12s %14s %12s@," "span" "count"
    "total (s)" "self (s)" "alloc (B)" "alloc B/op";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-36s %8d %12.4f %12.4f %14.0f %12.1f@," r.name
        r.count r.total_s r.self_s r.alloc_b
        (r.alloc_b /. float_of_int r.count))
    rows;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                          *)
(* ------------------------------------------------------------------ *)

let to_chrome_json t =
  let base = ref infinity in
  iter (fun e -> base := Float.min !base e.ts) t;
  let base = !base in
  (* Replay the per-tid stacks once more so each "E" event can carry its
     span's allocation delta as args. *)
  let stacks : (int, entry list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  let events = ref [] in
  iter
    (fun e ->
      let stack = stack_of e.tid in
      let args =
        if e.begins then begin
          stack := e :: !stack;
          []
        end
        else
          match !stack with
          | [] -> []
          | b :: rest ->
            stack := rest;
            [
              ( "args",
                Json.Obj
                  [
                    ("minor_words", Json.Number (e.minor_w -. b.minor_w));
                    ( "promoted_words",
                      Json.Number (e.promoted_w -. b.promoted_w) );
                    ("major_words", Json.Number (e.major_w -. b.major_w));
                    ("alloc_bytes", Json.Number (alloc_bytes_between b e));
                  ] );
            ]
      in
      events :=
        Json.Obj
          ([
             ("name", Json.String e.name);
             ("cat", Json.String "qvisor");
             ("ph", Json.String (if e.begins then "B" else "E"));
             ("ts", Json.Number (1e6 *. (e.ts -. base)));
             ("pid", Json.Number 0.);
             ("tid", Json.Number (float_of_int e.tid));
           ]
          @ args)
        :: !events)
    t;
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List (List.rev !events));
    ]

let write_chrome t oc =
  output_string oc (Json.to_string ~pretty:true (to_chrome_json t));
  output_char oc '\n';
  flush oc
