type entry = { begins : bool; name : string; ts : float; tid : int }

type t = {
  enabled : bool;
  entries : entry Vec.t;
  mutable closed : int;
}

let create () = { enabled = true; entries = Vec.create (); closed = 0 }

let disabled = { enabled = false; entries = Vec.create (); closed = 0 }

let is_enabled t = t.enabled

let with_ t ~name f =
  if not t.enabled then f ()
  else begin
    Vec.add_last t.entries
      { begins = true; name; ts = Unix.gettimeofday (); tid = 0 };
    Fun.protect
      ~finally:(fun () ->
        Vec.add_last t.entries
          { begins = false; name; ts = Unix.gettimeofday (); tid = 0 };
        t.closed <- t.closed + 1)
      f
  end

let entries t = Vec.to_list t.entries

let span_count t = t.closed

let merge_into ~into ?tid src =
  if into.enabled && src.enabled then begin
    Vec.iter
      (fun e ->
        let e = match tid with None -> e | Some tid -> { e with tid } in
        Vec.add_last into.entries e)
      src.entries;
    into.closed <- into.closed + src.closed
  end

(* ------------------------------------------------------------------ *)
(* Aggregation                                                        *)
(* ------------------------------------------------------------------ *)

type total = { name : string; count : int; total_s : float; self_s : float }

type frame = { f_name : string; f_start : float; mutable f_child : float }

let totals t =
  let agg : (string, total) Hashtbl.t = Hashtbl.create 16 in
  (* Balanced pairs are guaranteed per tid (with_ emits both markers and
     merge copies whole profiles), so a per-tid stack replay recovers the
     nesting. *)
  let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  Vec.iter
    (fun e ->
      let stack = stack_of e.tid in
      if e.begins then
        stack := { f_name = e.name; f_start = e.ts; f_child = 0. } :: !stack
      else begin
        match !stack with
        | [] -> () (* unbalanced input: ignore the stray end marker *)
        | f :: rest ->
          stack := rest;
          let dur = e.ts -. f.f_start in
          (match rest with
          | parent :: _ -> parent.f_child <- parent.f_child +. dur
          | [] -> ());
          let prev =
            Option.value
              (Hashtbl.find_opt agg f.f_name)
              ~default:{ name = f.f_name; count = 0; total_s = 0.; self_s = 0. }
          in
          Hashtbl.replace agg f.f_name
            {
              prev with
              count = prev.count + 1;
              total_s = prev.total_s +. dur;
              self_s = prev.self_s +. Float.max 0. (dur -. f.f_child);
            }
      end)
    t.entries;
  Hashtbl.fold (fun _ v acc -> v :: acc) agg []
  |> List.sort (fun a b -> compare a.name b.name)

let pp_table ppf t =
  let rows =
    totals t
    |> List.sort (fun a b ->
           match compare b.total_s a.total_s with
           | 0 -> compare a.name b.name
           | c -> c)
  in
  Format.fprintf ppf "@[<v>%-36s %8s %12s %12s@," "span" "count" "total (s)"
    "self (s)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-36s %8d %12.4f %12.4f@," r.name r.count r.total_s
        r.self_s)
    rows;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                          *)
(* ------------------------------------------------------------------ *)

let to_chrome_json t =
  let base =
    Vec.fold_left
      (fun acc (e : entry) -> Float.min acc e.ts)
      infinity t.entries
  in
  let events =
    Vec.fold_left
      (fun acc (e : entry) ->
        Json.Obj
          [
            ("name", Json.String e.name);
            ("cat", Json.String "qvisor");
            ("ph", Json.String (if e.begins then "B" else "E"));
            ("ts", Json.Number (1e6 *. (e.ts -. base)));
            ("pid", Json.Number 0.);
            ("tid", Json.Number (float_of_int e.tid));
          ]
        :: acc)
      [] t.entries
    |> List.rev
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ("traceEvents", Json.List events);
    ]

let write_chrome t oc =
  output_string oc (Json.to_string ~pretty:true (to_chrome_json t));
  output_char oc '\n';
  flush oc
