(* Splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  State is a single 64-bit counter advanced by
   the golden gamma; output is a finalizing hash of the state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let derive ~seed index =
  if index < 0 then invalid_arg "Rng.derive: negative index";
  let open Int64 in
  let z =
    mix (add (mix (of_int seed)) (mul (of_int (index + 1)) golden_gamma))
  in
  to_int (shift_right_logical z 2)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let copy t = { state = t.state }

let float t =
  (* 53 high bits -> uniform in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.float_range: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_range: lo > hi";
  let span = hi - lo + 1 in
  lo + (int t mod span)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean <= 0";
  let u = 1.0 -. float t in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Rng.pareto: bad parameters";
  let u = 1.0 -. float t in
  scale /. (u ** (1.0 /. shape))

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int_range t ~lo:0 ~hi:(Array.length a - 1))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_range t ~lo:0 ~hi:i in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pair_distinct t ~n =
  if n < 2 then invalid_arg "Rng.pair_distinct: n < 2";
  let a = int_range t ~lo:0 ~hi:(n - 1) in
  let b = int_range t ~lo:0 ~hi:(n - 2) in
  (a, if b >= a then b + 1 else b)

module Empirical = struct
  type dist = { values : float array; cdf : float array; mean : float }

  let of_points points =
    match points with
    | [] -> invalid_arg "Empirical.of_points: empty"
    | _ ->
      let values = Array.of_list (List.map fst points) in
      let cdf = Array.of_list (List.map snd points) in
      let n = Array.length values in
      for i = 1 to n - 1 do
        if values.(i) <= values.(i - 1) then
          invalid_arg "Empirical.of_points: values not strictly increasing";
        if cdf.(i) < cdf.(i - 1) then
          invalid_arg "Empirical.of_points: cdf decreasing"
      done;
      if abs_float (cdf.(n - 1) -. 1.0) > 1e-9 then
        invalid_arg "Empirical.of_points: cdf must end at 1.0";
      if cdf.(0) < 0. then invalid_arg "Empirical.of_points: negative cdf";
      (* Point mass of cdf.(0) at values.(0); linear segments after. *)
      let mean = ref (cdf.(0) *. values.(0)) in
      for i = 1 to n - 1 do
        let p = cdf.(i) -. cdf.(i - 1) in
        mean := !mean +. (p *. 0.5 *. (values.(i) +. values.(i - 1)))
      done;
      { values; cdf; mean = !mean }

  let sample d t =
    let u = float t in
    let n = Array.length d.cdf in
    if u <= d.cdf.(0) then d.values.(0)
    else begin
      (* Binary search for the first index with cdf >= u. *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if d.cdf.(mid) < u then lo := mid else hi := mid
      done;
      let i = !hi in
      let c0 = d.cdf.(i - 1) and c1 = d.cdf.(i) in
      let v0 = d.values.(i - 1) and v1 = d.values.(i) in
      if c1 -. c0 <= 0. then v1
      else v0 +. ((v1 -. v0) *. ((u -. c0) /. (c1 -. c0)))
    end

  let mean d = d.mean
end
