type handle = { mutable live : bool; action : unit -> unit }

type t = {
  mutable clock : float;
  queue : handle Event_queue.t;
  mutable fired : int;
  mutable busy : float; (* wall-clock seconds spent inside [run] *)
  profiler : Span.t;
}

let create ?(profiler = Span.disabled) () =
  { clock = 0.; queue = Event_queue.create (); fired = 0; busy = 0.; profiler }

let now t = t.clock

let schedule_at t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let h = { live = true; action = f } in
  Event_queue.push t.queue ~time h;
  h

let schedule_after t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel h = h.live <- false

let is_pending h = h.live

let fire t time h =
  t.clock <- time;
  if h.live then begin
    h.live <- false;
    t.fired <- t.fired + 1;
    h.action ()
  end

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, h) ->
    fire t time h;
    true

let run ?until t =
  Span.with_ t.profiler ~name:"sim.run" (fun () ->
      let started = Unix.gettimeofday () in
      (match until with
      | None -> while step t do () done
      | Some horizon ->
        let continue = ref true in
        while !continue do
          match Event_queue.peek_time t.queue with
          | Some time when time <= horizon -> ignore (step t)
          | Some _ | None ->
            t.clock <- max t.clock horizon;
            continue := false
        done);
      t.busy <- t.busy +. (Unix.gettimeofday () -. started))

let pending_events t = Event_queue.size t.queue

let events_fired t = t.fired

let busy_seconds t = t.busy
