type handle = { mutable live : bool; action : unit -> unit }

(* Hot-path events skip the handle record entirely: the per-packet
   transmit/arrival events in the network simulator are never cancelled,
   so boxing a cancellation flag for each of them is pure overhead. *)
type ev = Fun of (unit -> unit) | H of handle

type t = {
  mutable clock : float;
  queue : ev Timer_wheel.t;
  mutable fired : int;
  mutable busy : float; (* wall-clock seconds spent inside [run] *)
  profiler : Span.t;
}

let create ?(profiler = Span.disabled) () =
  {
    clock = 0.;
    queue = Timer_wheel.create ();
    fired = 0;
    busy = 0.;
    profiler;
  }

let now t = t.clock

let check_time t time =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock)

let schedule_at t ~time f =
  check_time t time;
  let h = { live = true; action = f } in
  Timer_wheel.push t.queue ~time (H h);
  h

let schedule_after t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let schedule_at_ t ~time f =
  check_time t time;
  Timer_wheel.push t.queue ~time (Fun f)

let schedule_after_ t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at_ t ~time:(t.clock +. delay) f

let cancel h = h.live <- false

let is_pending h = h.live

let fire t time ev =
  t.clock <- time;
  match ev with
  | Fun f ->
    t.fired <- t.fired + 1;
    f ()
  | H h ->
    if h.live then begin
      h.live <- false;
      t.fired <- t.fired + 1;
      h.action ()
    end

let step t =
  match Timer_wheel.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    fire t time ev;
    true

let run ?until t =
  Span.with_ t.profiler ~name:"sim.run" (fun () ->
      let started = Unix.gettimeofday () in
      (match until with
      | None -> while step t do () done
      | Some horizon ->
        let continue = ref true in
        while !continue do
          match Timer_wheel.pop_before t.queue ~horizon with
          | Some (time, ev) -> fire t time ev
          | None ->
            t.clock <- max t.clock horizon;
            continue := false
        done);
      t.busy <- t.busy +. (Unix.gettimeofday () -. started))

let pending_events t = Timer_wheel.size t.queue

let events_fired t = t.fired

let busy_seconds t = t.busy
