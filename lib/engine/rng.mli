(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit [t]
    so that experiments are reproducible bit-for-bit from a seed.  The
    generator is splitmix64, which is fast, has a 64-bit state, and passes
    BigCrush; it is more than adequate for workload generation. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Two generators created with
    the same seed produce identical streams. *)

val derive : seed:int -> int -> int
(** [derive ~seed i] deterministically maps a root seed and a sub-stream
    index [i >= 0] to an independent non-negative seed.  Parallel jobs use
    this so that job [i] draws from the same stream no matter which domain
    executes it or in what order jobs complete. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use this to give each traffic source its own stream so that adding a
    source does not perturb the draws of the others. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> int
(** Non-negative uniform int over the full 62-bit range. *)

val int_range : t -> lo:int -> hi:int -> int
(** Uniform integer in the inclusive range [\[lo, hi\]].  Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean.  Requires
    [mean > 0.]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto draw: [scale] is the minimum value, [shape] the tail index. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pair_distinct : t -> n:int -> int * int
(** [pair_distinct t ~n] draws two distinct indices uniformly from
    [\[0, n)].  Requires [n >= 2]. *)

module Empirical : sig
  (** Sampling from an empirical CDF given as (value, cumulative
      probability) breakpoints, with linear interpolation between
      breakpoints — the standard way flow-size distributions from the
      pFabric/DCTCP papers are encoded in simulators. *)

  type dist

  val of_points : (float * float) list -> dist
  (** [of_points pts] builds a distribution from [(value, cdf)] pairs.
      The list must be non-empty, values strictly increasing, cdf values
      non-decreasing and ending at 1.0 (the first pair may have any cdf
      >= 0, interpreted as a point mass at the smallest value).
      @raise Invalid_argument if the points are malformed. *)

  val sample : dist -> t -> float
  (** Draw one value. *)

  val mean : dist -> float
  (** Analytic mean of the interpolated distribution (used to size Poisson
      arrival rates for a target load). *)
end
