(** Packet-lineage forensics over NDJSON event streams.

    Both the {!Telemetry} trace sink and {!Recorder} flight-recorder
    dumps write one JSON object per line with a shared schema
    ([{"t":…,"ev":…,"uid":…,"link":…,"tenant":…,"flow":…,
    "rank_before":…,"rank":…}]; all fields after ["ev"] optional).
    This module parses those files back and reconstructs per-packet
    journeys — the stage-by-stage rank story of a flow or packet — for
    the [qvisor-cli trace query] subcommand and for tests. *)

type event = {
  t : float;  (** event timestamp (sim seconds, or event index) *)
  ev : string;  (** stage: [preprocess], [enqueue], [dequeue], [drop], … *)
  uid : int option;  (** packet uid, when the writer recorded one *)
  link : int option;
  tenant : int option;
  flow : int option;
  rank_before : int option;  (** rank entering the stage (preprocess) *)
  rank : int option;  (** rank leaving the stage *)
}

val of_json : Json.t -> (event, string) result
(** Requires a ["t"] number and an ["ev"] string; every other field is
    optional and must be an integer when present. *)

val of_line : string -> (event, string) result

val load_file : string -> (event list, string) result
(** Parse an NDJSON file, skipping blank lines; errors carry the
    offending line number.  Events keep file order. *)

val matches : ?uid:int -> ?flow:int -> ?tenant:int -> event -> bool
(** Conjunction of the given filters; an event missing a filtered field
    does not match.  With no filters every event matches. *)

val lineage : ?uid:int -> ?flow:int -> ?tenant:int -> event list -> event list
(** Filter, then order by packet (events without a uid last) and, within
    a packet, by time — stably, so same-timestamp stages keep their
    recorded order (preprocess before enqueue). *)

val pp_event : Format.formatter -> event -> unit

val pp_lineage : Format.formatter -> event list -> unit
(** Group by packet uid and print each packet's journey:
    {v
    packet uid=12 (tenant 3, flow 5): 3 events
      t=0.000135  preprocess   link=4  rank 17 -> 42
      t=0.000135  enqueue      link=4  rank=42
      t=0.000481  dequeue      link=4  rank=42
    v} *)
