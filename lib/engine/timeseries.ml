type t = {
  bucket : float;
  sums : (int, float) Hashtbl.t;
  mutable min_index : int;
  mutable max_index : int;
  mutable total : float;
  mutable any : bool;
}

let create ~bucket () =
  if bucket <= 0. then invalid_arg "Timeseries.create: bucket <= 0";
  {
    bucket;
    sums = Hashtbl.create 64;
    min_index = 0;
    max_index = 0;
    total = 0.;
    any = false;
  }

let add t ~time v =
  if time < 0. then invalid_arg "Timeseries.add: negative time";
  let index = int_of_float (time /. t.bucket) in
  let prev = Option.value (Hashtbl.find_opt t.sums index) ~default:0. in
  Hashtbl.replace t.sums index (prev +. v);
  t.total <- t.total +. v;
  if t.any then begin
    if index < t.min_index then t.min_index <- index;
    if index > t.max_index then t.max_index <- index
  end
  else begin
    t.any <- true;
    t.min_index <- index;
    t.max_index <- index
  end

let merge_into ~into src =
  if into.bucket <> src.bucket then
    invalid_arg "Timeseries.merge_into: bucket widths differ";
  if src.any then begin
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) src.sums [] in
    let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
    List.iter
      (fun (index, sum) ->
        let prev = Option.value (Hashtbl.find_opt into.sums index) ~default:0. in
        Hashtbl.replace into.sums index (prev +. sum);
        into.total <- into.total +. sum;
        if into.any then begin
          if index < into.min_index then into.min_index <- index;
          if index > into.max_index then into.max_index <- index
        end
        else begin
          into.any <- true;
          into.min_index <- index;
          into.max_index <- index
        end)
      entries
  end

let buckets t =
  if not t.any then []
  else
    List.init
      (t.max_index - t.min_index + 1)
      (fun offset ->
        let index = t.min_index + offset in
        let sum = Option.value (Hashtbl.find_opt t.sums index) ~default:0. in
        (float_of_int index *. t.bucket, sum))

let rate t = List.map (fun (time, sum) -> (time, sum /. t.bucket)) (buckets t)

let total t = t.total

let pp ?(width = 50) () ppf t =
  match buckets t with
  | [] -> Format.pp_print_string ppf "(empty)"
  | data ->
    let peak = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. data in
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (time, v) ->
        let bar =
          if peak <= 0. then 0
          else int_of_float (v /. peak *. float_of_int width)
        in
        Format.fprintf ppf "%8.3f | %s %.3g@," time (String.make bar '#') v)
      data;
    Format.fprintf ppf "@]"
