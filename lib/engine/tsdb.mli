(** A fixed-memory, multi-resolution retention store (RRD-style).

    The bounded in-process history behind the daemon's [GET /query] range
    API and the [qvisor-cli top] dashboard: each named series owns one
    preallocated ring per {e tier} (e.g. 1 s raw → 10 s → 60 s), every
    observation lands in all tiers at once, and each ring slot keeps five
    aggregates — count / sum / min / max / last — so any later query can
    downsample without re-reading raw points.  Old buckets are never
    freed or moved: a slot is {e invalidated lazily} when its ring
    position is reused for a newer bucket, so the store's memory is a
    pure function of its shape ({!memory_bytes}), independent of run
    length.

    Two series kinds:

    - {b gauges} observe sampled values directly (a queue depth, a burn
      rate): a bucket's [last] is the latest sample, [sum/count] its
      mean.
    - {b counters} observe the {e cumulative} value of a monotonic
      counter (exactly what {!Telemetry.Counter.value} returns); the
      store converts consecutive observations into increments, treating
      a decrease as a {e counter reset} (the post-reset value counts as
      the increment, matching Prometheus [rate()] semantics).  A
      bucket's [sum] is then the total increase inside the bucket, so
      [sum /. step] is a rate.

    Orthogonally, an {e annotation track} timestamps discrete incidents
    (health transitions, remediation attempts, drop spikes) into the
    same timeline, kept in a fixed-capacity ring of the most recent
    entries.

    Time is the caller's clock (the daemon feeds simulated seconds).
    Observations are expected to be roughly monotonic; a stale write
    into a bucket whose slot was already recycled is dropped rather than
    corrupting newer data. *)

type kind = Gauge | Counter

val kind_to_string : kind -> string
(** ["gauge"] / ["counter"]. *)

type tier = {
  resolution : float;  (** bucket width, seconds *)
  slots : int;  (** ring length; retention = [resolution *. slots] *)
}

val default_tiers : tier list
(** [1 s x 120] (2 min raw), [10 s x 180] (30 min), [60 s x 240] (4 h):
    25 920 bytes of ring per series (see {!memory_bytes}). *)

type t

val create : ?tiers:tier list -> ?annotation_capacity:int -> unit -> t
(** [tiers] (default {!default_tiers}) must be ordered finest first with
    strictly increasing resolutions and non-decreasing retentions;
    [annotation_capacity] (default [256]) bounds the annotation ring.
    @raise Invalid_argument on an empty/ill-ordered tier list, a
    non-positive resolution or slot count, or a non-positive
    annotation capacity. *)

type series
(** A handle into one named series — intern once, observe on the hot
    path. *)

val series : t -> kind:kind -> string -> series
(** Intern (or retrieve) the series registered under a name.  Two calls
    with the same name return the same rings.
    @raise Invalid_argument when re-interning a name with a different
    kind. *)

val observe : t -> series -> time:float -> float -> unit
(** Fold one observation into every tier's ring.  Allocation-free.
    Negative times are clamped to [0.]; NaN values are dropped. *)

val names : t -> (string * kind) list
(** Every interned series, sorted by name. *)

val series_count : t -> int

val last_time : t -> float
(** The largest observation time seen so far ([0.] when empty) — the
    store's notion of "now" for retention decisions. *)

val memory_bytes : t -> int
(** The store's fixed ring footprint in bytes:
    [series_count * per_series] where [per_series] is
    [sum over tiers of slots * 6 * 8] (four float aggregates, one float
    count, one int epoch word per slot).  This is the documented memory
    bound of the retention store — it does not grow with run length,
    only with the number of interned series. *)

val per_series_bytes : t -> int
(** The [per_series] term of {!memory_bytes}. *)

(** {1 Range queries} *)

type point = {
  p_count : int;  (** observations aggregated into this bucket *)
  p_sum : float;
  p_min : float;
  p_max : float;
  p_last : float;  (** most recent sample (gauge) / increment (counter) *)
}

type range = {
  r_name : string;
  r_kind : kind;
  r_start : float;  (** aligned down to a [r_step] boundary *)
  r_step : float;  (** actual step: a multiple of the chosen tier's
                       resolution, >= the requested step *)
  r_points : point option array;
      (** bucket [i] covers [r_start +. float i *. r_step,
          r_start +. float (i+1) *. r_step); [None] where no live data *)
}

val max_points : int
(** Hard cap on [Array.length r_points] ([512]); a wider request gets a
    coarser step, never a longer answer. *)

val query :
  t -> name:string -> start:float -> stop:float -> ?step:float -> unit ->
  range option
(** Downsample one series over [[start, stop)].  [step] (default: the
    finest tier's resolution) is rounded up to a multiple of the serving
    tier's resolution and widened as needed to respect {!max_points}.
    The serving tier is the finest one whose resolution fits the step
    and whose retention still covers [start]; when no step-fitting tier
    retains that far back, the step widens to the finest tier that does
    (falling back to the deepest-retention tier).  [None] for an unknown series or an empty
    interval.  Alignment invariant: [r_start = floor (start /. r_step)
    *. r_step], and every bucket boundary is a multiple of [r_step]. *)

(** {1 Annotations} *)

type annotation = {
  a_time : float;
  a_kind : string;  (** e.g. ["health"], ["remediation"], ["drop-spike"] *)
  a_tenant : string option;
  a_detail : string;
}

val annotate :
  t -> time:float -> kind:string -> ?tenant:string -> detail:string -> unit ->
  unit
(** Append one incident; once the ring is full the oldest entry is
    overwritten. *)

val annotations : ?start:float -> ?stop:float -> t -> annotation list
(** Annotations with [start <= a_time < stop] (defaults: everything
    retained), sorted by time (stable for equal stamps) even when they
    were recorded out of order. *)

val annotations_total : t -> int
(** Annotations ever recorded (including overwritten ones). *)
