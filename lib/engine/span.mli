(** Hierarchical wall-clock span profiler.

    A profiler collects nested timed spans ({!with_}) from the code it is
    threaded through — synthesis, simulation runs, experiment phases,
    conformance replays — and exports them two ways:

    - {!to_chrome_json}: Chrome trace-event JSON (balanced ["B"]/["E"]
      event pairs), loadable in Perfetto / [chrome://tracing];
    - {!pp_table}: a per-name count / total / self wall-time table.

    Parallel runs give every job its own profiler and fold them back with
    {!merge_into} in submission order, each under its own [tid].  The
    {e structure} of the merged profile — the set of span names, their
    counts, and their nesting — is a deterministic function of the work,
    identical for any worker count; the wall-clock durations are real
    measurements and vary run to run. *)

type t

(** One raw profile entry: a begin or end marker.  Exposed for tests and
    custom exporters; {!with_} always emits balanced pairs.  This is a
    {e view} — markers are stored internally as flat unboxed arrays, so
    even million-span profiles stay a handful of large heap objects. *)
type entry = {
  begins : bool;
  name : string;
  ts : float;  (** absolute wall-clock seconds ([Unix.gettimeofday]) *)
  tid : int;  (** logical thread lane (0 until retagged by merge) *)
  minor_w : float;  (** cumulative [Gc] minor words at the marker *)
  promoted_w : float;
  major_w : float;
}

val create : unit -> t

val disabled : t
(** The shared no-op profiler: {!with_} just runs its thunk. *)

val is_enabled : t -> bool

val with_ : t -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  The end marker is emitted even when the
    thunk raises.  Each marker snapshots the domain's [Gc.counters], so a
    closed span knows the minor/promoted/major words allocated inside it;
    the instrumentation itself contributes a small constant (the begin
    marker's counters read and protect closure — well under 1 KB,
    amortized growth of the marker arrays aside) to its own span and
    nothing to enclosing ones beyond that. *)

val entries : t -> entry list
(** All entries in recording order (merged blocks follow the host's own
    entries, in merge order). *)

val span_count : t -> int
(** Closed spans recorded so far (balanced pairs). *)

val merge_into : into:t -> ?tid:int -> t -> unit
(** Append [src]'s entries to [into], retagged with [tid] (default: kept
    as recorded).  Merging the same profilers in the same order yields
    the same span names and counts — how parallel sweeps keep
    [--profile] output structure independent of [--jobs].  No-op when
    either side is disabled.  [src] is left untouched. *)

(** {1 Aggregation} *)

type total = {
  name : string;
  count : int;
  total_s : float;  (** summed span durations (children included) *)
  self_s : float;  (** summed durations minus time in child spans *)
  alloc_b : float;
      (** summed bytes allocated inside the spans (children included):
          [(minor + major - promoted) * word size] deltas *)
  self_alloc_b : float;  (** minus bytes allocated in child spans *)
}

val totals : t -> total list
(** Per-name aggregates, sorted by name — the deterministic skeleton two
    runs of the same work must agree on (counts and names; the times are
    measurements). *)

val pp_table : Format.formatter -> t -> unit
(** The totals as a table, largest [total_s] first, with per-span
    allocation columns (total bytes and bytes per span instance). *)

(** {1 Export} *)

val to_chrome_json : t -> Json.t
(** [{"displayTimeUnit":"ms","traceEvents":[...]}] with one ["B"] and one
    ["E"] event per span ([pid] 0, [tid] as tagged, [ts] microseconds
    rebased to the earliest entry).  Each ["E"] event carries the span's
    allocation delta as
    [args: {minor_words, promoted_words, major_words, alloc_bytes}]. *)

val write_chrome : t -> out_channel -> unit
(** {!to_chrome_json}, pretty-printed to the channel, flushed. *)
