(** Streaming quantile estimation with the P² algorithm
    (Jain & Chlamtac, CACM 1985).

    Constant memory (five markers), suitable for estimating rank-distribution
    quantiles of a live packet stream inside QVISOR's runtime monitor, where
    retaining samples is not an option. *)

type t

val create : q:float -> t
(** [create ~q] tracks the [q]-quantile, [0. < q < 1.].
    @raise Invalid_argument otherwise. *)

val add : t -> float -> unit

val count : t -> int

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src]'s state into [into].  When [src]
    holds five or fewer observations they are replayed exactly; beyond
    that the five marker heights are replayed with the multiplicities
    implied by the marker positions — an approximation, but a
    deterministic one, so merging the same sketches in the same order
    always yields the same estimate.  Both sketches must track the same
    quantile.
    @raise Invalid_argument if the quantiles differ. *)

val estimate : t -> float
(** Current estimate.  With fewer than five observations this is the exact
    quantile of what has been seen; [nan] when empty. *)
