type result = {
  scheme : string;
  before_join_ms : float;
  after_join_ms : float;
  degradation : float;
  t3_flows_completed : int;
  activity : (string * Engine.Timeseries.t) list;
}

type params = {
  leaves : int;
  spines : int;
  hosts_per_leaf : int;
  t1_load : float;
  t3_load : float;
  t_join : float;
  t_end : float;
  drain : float;
  seed : int;
}

let default =
  {
    leaves = 2;
    spines = 2;
    hosts_per_leaf = 4;
    t1_load = 0.35;
    t3_load = 0.6;
    t_join = 0.1;
    t_end = 0.25;
    drain = 0.3;
    seed = 1;
  }

let access_rate = 1e9

let fabric_rate = 4e9

let run ?(telemetry = Engine.Telemetry.disabled)
    ?(profiler = Engine.Span.disabled) params ~qvisor =
  Engine.Span.with_ profiler ~name:"churn.run" @@ fun () ->
  let num_hosts = params.leaves * params.hosts_per_leaf in
  let topo =
    Netsim.Topology.leaf_spine ~leaves:params.leaves ~spines:params.spines
      ~hosts_per_leaf:params.hosts_per_leaf ~access_rate ~fabric_rate
      ~link_delay:1e-6
  in
  let routing = Netsim.Routing.compute topo in
  let sim = Engine.Sim.create ~profiler () in
  let rng = Engine.Rng.create ~seed:params.seed in
  let transport = Netsim.Transport.create ~sim () in
  (* Tenant specs: T1 pFabric (KB ranks), T2 EDF (20 us ranks), T3 STFQ
     (KB-of-virtual-time ranks: small numbers that clash hard with T1's
     large-flow ranks when deployed naively). *)
  let cbr_deadline = 2e-3 in
  let tenants =
    [
      Qvisor.Tenant.make ~algorithm:"pfabric" ~rank_lo:0 ~rank_hi:30_000 ~id:0
        ~name:"T1" ();
      Qvisor.Tenant.make ~algorithm:"edf" ~rank_lo:0 ~rank_hi:150 ~id:1
        ~name:"T2" ();
      Qvisor.Tenant.make ~algorithm:"lstf" ~rank_lo:0 ~rank_hi:500 ~id:2
        ~name:"T3" ();
    ]
  in
  let preprocess =
    if qvisor then begin
      let plan =
        Qvisor.Synthesizer.synthesize_exn ~profiler ~tenants
          ~policy:(Qvisor.Policy.parse_exn "T1 + T2 >> T3")
          ()
      in
      let pre = Qvisor.Preprocessor.of_plan ~profiler ~telemetry plan in
      Some (Qvisor.Preprocessor.process pre)
    end
    else None
  in
  (* Per-tenant delivered-bytes timelines (the Fig. 2 activity plot). *)
  let activity =
    Array.init 3 (fun _ -> Engine.Timeseries.create ~bucket:0.01 ())
  in
  let deliver p =
    let tenant = p.Sched.Packet.tenant in
    if tenant >= 0 && tenant < Array.length activity then
      Engine.Timeseries.add activity.(tenant) ~time:(Engine.Sim.now sim)
        (float_of_int p.Sched.Packet.payload);
    Netsim.Transport.deliver transport p
  in
  let net =
    Netsim.Net.create ~sim ~topo ~routing
      ~make_qdisc:(fun _ -> Sched.Pifo_queue.create ~capacity_pkts:100 ())
      ?preprocess ~telemetry ~profiler ~deliver ()
  in
  Netsim.Transport.attach transport net;
  (* T1: interactive pFabric traffic for the whole run. *)
  let before = Engine.Stats.create () in
  let after = Engine.Stats.create () in
  let warmup = 0.02 in
  let t1_complete (r : Netsim.Transport.flow_result) =
    let s = r.Netsim.Transport.started_at in
    if s >= warmup && r.Netsim.Transport.size < 100_000 then begin
      if s < params.t_join then Engine.Stats.add before (Netsim.Transport.fct r)
      else Engine.Stats.add after (Netsim.Transport.fct r)
    end
  in
  ignore
    (Netsim.Workload.poisson_open_loop ~sim ~rng:(Engine.Rng.split rng)
       ~transport ~tenant:0
       ~ranker:(Sched.Ranker.pfabric ())
       ~num_hosts ~load:params.t1_load ~access_rate
       ~dist:(Netsim.Workload.data_mining ()) ~until:params.t_end
       ~on_complete:t1_complete ());
  (* T2: a light EDF CBR tenant, present throughout. *)
  ignore
    (Netsim.Workload.cbr_tenant ~sim ~rng:(Engine.Rng.split rng) ~transport
       ~tenant:1
       ~ranker:(Sched.Ranker.edf ~unit_seconds:2e-5 ~horizon:(1.5 *. cbr_deadline) ())
       ~num_hosts ~flows:(max 1 (num_hosts / 4))
       ~rate:0.25e9 ~deadline_budget:cbr_deadline ~until:params.t_end ());
  (* T3 joins at t_join: heavy deadline-driven bulk flows ranked by LSTF
     (slack in 10 us units).  As each flow's slack melts, its raw ranks
     sink towards 0 and — deployed naively — cut ahead of everything T1
     sends.  Under QVISOR, [>> T3] shifts the whole tenant below T1/T2
     regardless. *)
  let t3_completed = ref 0 in
  let t3_rng = Engine.Rng.split rng in
  let t3_ranker = Sched.Ranker.lstf ~unit_seconds:1e-5 ~line_rate:access_rate () in
  let t3_on_complete _ = incr t3_completed in
  ignore
    (Engine.Sim.schedule_at sim ~time:params.t_join (fun () ->
         (* A hand-rolled Poisson generator so each flow can carry an
            absolute deadline (slack budget of 5 ms). *)
         let dist = Netsim.Workload.web_search () in
         let mean_size = Engine.Rng.Empirical.mean dist in
         let rate =
           Netsim.Workload.flow_arrival_rate ~load:params.t3_load ~num_hosts
             ~access_rate ~mean_flow_size:mean_size
         in
         let rec arrival () =
           let gap = Engine.Rng.exponential t3_rng ~mean:(1. /. rate) in
           ignore
             (Engine.Sim.schedule_after sim ~delay:gap (fun () ->
                  if Engine.Sim.now sim < params.t_end then begin
                    let src, dst =
                      Engine.Rng.pair_distinct t3_rng ~n:num_hosts
                    in
                    let size =
                      max 1
                        (int_of_float (Engine.Rng.Empirical.sample dist t3_rng))
                    in
                    ignore
                      (Netsim.Transport.start_flow transport ~tenant:2
                         ~ranker:t3_ranker ~src ~dst ~size
                         ~deadline:(Engine.Sim.now sim +. 5e-3)
                         ~on_complete:t3_on_complete ());
                    arrival ()
                  end))
         in
         arrival ()));
  Engine.Sim.run ~until:(params.t_end +. params.drain) sim;
  let before_ms = 1e3 *. Engine.Stats.mean before in
  let after_ms = 1e3 *. Engine.Stats.mean after in
  {
    scheme = (if qvisor then "QVISOR (T1 + T2 >> T3)" else "naive PIFO");
    before_join_ms = before_ms;
    after_join_ms = after_ms;
    degradation = after_ms /. before_ms;
    t3_flows_completed = !t3_completed;
    activity =
      [
        ("T1 (pfabric)", activity.(0));
        ("T2 (edf)", activity.(1));
        ("T3 (background)", activity.(2));
      ];
  }

let compare_schemes ?jobs
    ?(telemetry_for = fun ~qvisor:_ -> Engine.Telemetry.disabled)
    ?(profiler_for = fun ~qvisor:_ -> Engine.Span.disabled) params =
  (* Two independent simulations — one worker each when jobs >= 2. *)
  Engine.Parallel.map ?jobs
    (fun qvisor ->
      run
        ~telemetry:(telemetry_for ~qvisor)
        ~profiler:(profiler_for ~qvisor)
        params ~qvisor)
    [ false; true ]

let print ppf results =
  Format.fprintf ppf
    "@[<v>Ablation A3 — tenant churn (Fig. 2 timeline): T1 small-flow FCT@,";
  Format.fprintf ppf "%-24s | %12s | %12s | %11s | %8s@," "scheme"
    "before (ms)" "after (ms)" "degradation" "T3 flows";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-24s | %12.3f | %12.3f | %10.2fx | %8d@," r.scheme
        r.before_join_ms r.after_join_ms r.degradation r.t3_flows_completed)
    results;
  Format.fprintf ppf "@]"

let print_activity ppf r =
  Format.fprintf ppf "@[<v>tenant activity under %s (delivered bytes/s):@," r.scheme;
  List.iter
    (fun (name, ts) ->
      Format.fprintf ppf "@,%s (total %.3g MB):@,%a@," name
        (Engine.Timeseries.total ts /. 1e6)
        (Engine.Timeseries.pp ~width:40 ())
        ts)
    r.activity;
  Format.fprintf ppf "@]"
