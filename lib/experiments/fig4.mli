(** The paper's evaluation (§4, Fig. 4), as a reusable harness.

    Two tenants share a leaf-spine fabric: tenant 0 runs a data-mining
    workload scheduled with pFabric; tenant 1 runs CBR flows scheduled
    with EDF.  The harness measures the pFabric tenant's mean FCT for
    small (< 100 KB, Fig. 4a) and large (>= 1 MB, Fig. 4b) flows under
    six scheduling configurations and a range of loads. *)

type scheme =
  | Fifo_both  (** one FIFO queue per port, both tenants *)
  | Pifo_naive  (** PIFO per port, raw (clashing) ranks, both tenants *)
  | Pifo_pfabric_only  (** PIFO per port, pFabric traffic alone (ideal) *)
  | Qvisor_policy of string
      (** PIFO per port behind QVISOR's pre-processor, with the given
          operator policy over tenants ["pfabric"] and ["edf"] *)

val scheme_name : scheme -> string

val paper_schemes : scheme list
(** The six configurations of Fig. 4, in the paper's legend order:
    FIFO both, PIFO naive, PIFO pFabric-only, QVISOR [edf >> pfabric],
    QVISOR [pfabric + edf], QVISOR [pfabric >> edf]. *)

type params = {
  leaves : int;
  spines : int;
  hosts_per_leaf : int;
  access_rate : float;
  fabric_rate : float;
  link_delay : float;
  queue_capacity_pkts : int;
  load : float;  (** pFabric tenant load on aggregate access capacity *)
  cbr_flows : int;
  cbr_rate : float;
  cbr_deadline : float;
  duration : float;  (** flow-arrival window, seconds *)
  warmup : float;  (** flows starting earlier are not measured *)
  drain : float;  (** extra simulated time for in-flight flows *)
  pfabric_unit_bytes : int;  (** pFabric rank granularity *)
  edf_unit_seconds : float;  (** EDF rank granularity *)
  window : int;
  rto : float;
  seed : int;
  levels : int option;  (** QVISOR quantization levels (ablation A1) *)
  backend : Qvisor.Deploy.backend option;
      (** override the port scheduler for QVISOR schemes (ablation A2);
          [None] = ideal PIFO *)
  tree_backend : bool;
      (** deploy QVISOR schemes as a policy-compiled PIFO tree instead of
          pre-processor + scheduler (mutually exclusive with [backend]) *)
  inject_qdisc : (capacity_pkts:int -> Sched.Qdisc.t) option;
      (** fault injection: when set, this factory replaces {e every}
          port's queue discipline, whatever the scheme chose — the knob
          the SLO gate's negative CI test turns (e.g.
          {!Conformance.Fault.qdisc}) *)
}

val quick : params
(** 8-host fabric, 80 ms of arrivals — CI-sized, seconds to run. *)

val default : params
(** 24-host fabric at the paper's 1:1 oversubscription, 200 ms of
    arrivals — minutes for a full sweep. *)

val paper_scale : params
(** The paper's exact fabric: 9 leaves x 16 hosts, 4 spines, 100 CBR
    flows at 0.5 Gb/s, 1/4 Gb/s links. *)

type slo_report = {
  objectives : Qvisor.Slo.objective list;
      (** the derived per-tenant objectives, in tenant-id order *)
  verdicts : (Qvisor.Tenant.t * Engine.Health.state * Qvisor.Slo.status) list;
      (** final health state and audit status per tenant — a run {e fails}
          its SLO gate when any tenant ends [Violating] *)
  health_alerts : int;  (** health state transitions over the run *)
}

type result = {
  scheme : string;
  load : float;
  small_mean_ms : float;
  small_p99_ms : float;
  large_mean_ms : float;
  large_p99_ms : float;
  overall_mean_ms : float;
  flows_started : int;
  flows_completed : int;
  drops : int;
  cbr_deadline_fraction : float;
      (** fraction of CBR packets delivered within deadline ([nan] when
          the scheme carries no CBR tenant) *)
  events_fired : int;  (** simulator events executed during the run *)
  wall_seconds : float;
      (** wall-clock seconds the engine spent draining the event queue —
          [events_fired / wall_seconds] is the engine's events/sec *)
  slo : slo_report option;  (** present iff the run audited SLOs *)
}

val run :
  ?telemetry:Engine.Telemetry.t ->
  ?profiler:Engine.Span.t ->
  ?flight:Netsim.Net.flight_config ->
  ?on_anomaly:(link_id:int -> Engine.Recorder.t -> unit) ->
  ?slo:bool ->
  ?alerts:out_channel ->
  ?slo_interval:float ->
  ?on_tick:(float -> unit) ->
  ?perf:bool ->
  params ->
  scheme ->
  (result, Qvisor.Error.t) Stdlib.result
(** Simulate one configuration.  [telemetry] (default: off) instruments
    the fabric ports and — for QVISOR schemes — the pre-processor, and
    records [sim.events_fired] / [sim.wall_seconds] gauges.  [profiler]
    (default: off) wraps the run in a ["fig4.run"] span with
    ["fig4.topology"], ["synthesizer.synthesize"],
    ["preprocessor.compile"], ["net.build"], and ["sim.run"] children.
    [flight]/[on_anomaly] arm the fabric's per-port flight recorders (see
    {!Netsim.Net.create}).

    [slo] (default [false]) turns on the online SLO audit, available only
    for QVISOR pre-processor schemes (objectives are derived from the
    synthesized plan): the run derives per-tenant objectives
    ({!Qvisor.Slo.derive}, with envelopes built from the queue capacity
    and offered loads), streams per-hop enqueue/drop/delay/rank-error
    samples into an auditor, runs the adversarial-workload {!Qvisor.Guard}
    on the pre-processor path, arms the flight recorder (unless [flight]
    was given), and folds all three signals into an {!Engine.Health}
    machine evaluated every [slo_interval] simulated seconds (default
    [0.01]).  [alerts] receives the health machine's NDJSON transition
    stream; [on_tick] runs after each evaluation with the current
    simulated time (the driver's periodic metrics-emission hook); the
    final per-tenant verdicts land in [result.slo].  With [telemetry],
    each evaluation also mirrors [slo.tenant.<id>.*] and
    [health.tenant.<id>.state] gauges into the registry.

    [perf] (default [true]) — with an enabled [telemetry] registry, the
    run also arms {!Engine.Perf}: per-stage throughput meters on the
    fabric's enqueue/dequeue/preprocess/recorder/SLO-audit paths
    (published as [perf.stage.*] counters and gauges at each SLO
    evaluation tick and at the end of the run) plus [gc.*] gauges
    sampled from [Gc.quick_stat] and a best-effort max-GC-pause monitor.
    [~perf:false] keeps the rest of the instrumentation identical while
    dropping this layer — how the overhead benchmark isolates its cost.
    Fails with the policy/synthesis/deployment error when the scheme's
    QVISOR configuration is invalid — never by raising, so a run can
    execute on a worker domain. *)

val run_exn :
  ?telemetry:Engine.Telemetry.t ->
  ?profiler:Engine.Span.t ->
  params ->
  scheme ->
  result
(** @raise Invalid_argument on configuration errors. *)

type job = {
  index : int;  (** position in the serial (load-major) grid order *)
  job_scheme : scheme;
  job_load : float;
  job_seed : int;
      (** splitmix64-derived from [params.seed] and [index] — a stable
          per-job stream for job-local concerns (e.g. trace sampling)
          regardless of which domain runs the job *)
}

val jobs_of_grid :
  params -> loads:float list -> schemes:scheme list -> job list
(** One job per (load, scheme) grid point, in the order the serial sweep
    used to run them (outer loads, inner schemes). *)

val run_jobs :
  ?jobs:int ->
  ?telemetry_for:(job -> Engine.Telemetry.t) ->
  ?profiler_for:(job -> Engine.Span.t) ->
  ?on_start:(job -> unit) ->
  ?slo:bool ->
  ?perf:bool ->
  params ->
  job list ->
  (result list, Qvisor.Error.t) Stdlib.result
(** Fan the jobs out over {!Engine.Parallel} ([jobs] workers, default
    {!Engine.Parallel.default_jobs}) and fan the results back in, in job
    order — for any worker count the result list is identical to a serial
    run.  [telemetry_for] supplies each job's private registry (merge
    them afterwards with {!Engine.Telemetry.merge_into} in job order for
    worker-count-independent snapshots); [profiler_for] likewise supplies
    each job's private span profiler (merge with {!Engine.Span.merge_into}
    in job order — the merged span {e structure} is then independent of
    the worker count); [on_start] is invoked in the {e worker} domain as a
    job begins, so the callback must be thread-safe.  [slo] (default
    [false]) audits every job's run as in {!run} — final verdicts are
    identical for any worker count.  [perf] defaults to [false] here,
    {e unlike} {!run}: the {!Engine.Perf} gauges are wall-clock rates,
    so publishing them would make merged snapshots differ across worker
    counts, breaking the invariance this function promises — opt in
    only when the registries are inspected per job.  The
    lowest-indexed failing job's error is returned. *)

val sweep :
  ?jobs:int ->
  ?telemetry_for:(job -> Engine.Telemetry.t) ->
  ?profiler_for:(job -> Engine.Span.t) ->
  ?on_start:(job -> unit) ->
  ?slo:bool ->
  ?perf:bool ->
  params ->
  loads:float list ->
  schemes:scheme list ->
  (result list, Qvisor.Error.t) Stdlib.result
(** [run_jobs] over [jobs_of_grid]. *)

val paper_loads : float list
(** 0.2 .. 0.8, the x-axis of Fig. 4. *)

val print_panel :
  Format.formatter -> title:string -> pick:(result -> float) -> result list -> unit
(** Render one Fig. 4 panel: rows = loads, columns = schemes, cells from
    [pick]. *)

val print_fig4 : Format.formatter -> result list -> unit
(** Both panels (small-flow and large-flow mean FCTs) plus a
    completion/drop appendix. *)
