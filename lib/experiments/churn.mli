(** Ablation A3: the paper's Fig. 2 timeline under congestion.

    An interactive pFabric tenant (T1) and a deadline EDF tenant (T2) run
    from the start; at [t_join] a background fair-queuing tenant (T3)
    starts blasting large flows.  The operator policy is
    [T1 + T2 >> T3]: the background tenant must never disturb the other
    two.

    We measure T1's small-flow FCT before and after T3 joins, under
    QVISOR (rank transformations in front of PIFO ports) and naively
    (raw ranks into the same PIFO ports).  QVISOR should hold T1's FCT
    steady across the join; the naive deployment lets T3's
    low-virtual-time STFQ ranks cut ahead of T1. *)

type result = {
  scheme : string;
  before_join_ms : float;  (** T1 small-flow mean FCT before [t_join] *)
  after_join_ms : float;  (** same, while T3 is active *)
  degradation : float;  (** [after /. before] *)
  t3_flows_completed : int;
  activity : (string * Engine.Timeseries.t) list;
      (** per-tenant delivered bytes over time — the Fig. 2 timeline *)
}

type params = {
  leaves : int;
  spines : int;
  hosts_per_leaf : int;
  t1_load : float;
  t3_load : float;
  t_join : float;
  t_end : float;
  drain : float;
  seed : int;
}

val default : params

val run :
  ?telemetry:Engine.Telemetry.t ->
  ?profiler:Engine.Span.t ->
  params ->
  qvisor:bool ->
  result
(** [telemetry] (default: off) instruments the fabric ports and — under
    [~qvisor:true] — the pre-processor.  [profiler] (default: off) wraps
    the run in a ["churn.run"] span with synthesis / net-build / sim
    children. *)

val compare_schemes :
  ?jobs:int ->
  ?telemetry_for:(qvisor:bool -> Engine.Telemetry.t) ->
  ?profiler_for:(qvisor:bool -> Engine.Span.t) ->
  params ->
  result list
(** Run both configurations — on separate domains when [jobs >= 2]
    (default {!Engine.Parallel.default_jobs}) — and return
    [naive; qvisor] results in that fixed order regardless of which
    finishes first.  [telemetry_for] supplies each run's private
    registry (default: off for both); [profiler_for] likewise each run's
    private span profiler. *)

val print : Format.formatter -> result list -> unit

val print_activity : Format.formatter -> result -> unit
(** ASCII rendering of each tenant's delivery-rate timeline. *)
